#!/usr/bin/env python3
"""Guard against silent cost-model / plan-choice / spill drift in the bench
JSONs.

CI's bench-smoke step runs `fig5_tpch_q7 --smoke` and `ablation`; the
spill-smoke step re-runs fig5 (smoke) and fig7 under a 32 KiB per-instance
memory budget (`--mem-budget 32768`), which makes every breaker actually
spill (DESIGN.md §2.3). All of it is deterministic — estimated costs, byte
meters (network / measured disk / per-instance peak), strategy-mix counters,
and the per-budget sweep rows are pure functions of the workload, the cost
model, and the budget — so any difference from the committed baseline is a
real behavior change. Intended changes must regenerate the baseline in the
same commit.

Usage:
  tools/bench_baseline.py write  [--out bench/BENCH_baseline.json] [--dir .]
      Compose a new baseline from the fresh bench JSONs.
  tools/bench_baseline.py check  [--baseline bench/BENCH_baseline.json] [--dir .]
      Diff fresh bench JSONs against the baseline; exit 1 on drift.

Compared per figure run (matched by rank): estimated_cost (relative 1e-6),
network/disk/peak bytes and udf_calls (exact). Compared per budget-sweep row
(matched by budget): disk/peak bytes (exact). Compared per ablation row
(matched by workload+config): plans, estimated_cost, byte meters,
strategy-mix counters. Rows from profiler-based configs are skipped —
profiled hints measure real per-call wall time and are not deterministic.
Wall-clock fields are never compared.

BENCH_serving.json (CI's serving-smoke step, DESIGN.md §2.4) is
schema-checked rather than baselined: its latency percentiles are genuine
wall-clock measurements of concurrent load and would drift on every run.
Check mode requires the file, the presence of every admission counter
(including the cancelled / deadline_exceeded lifecycle counters), ledger
field, and per-class latency key, and the run-invariant invariants — zero
ledger violations, outputs_match, zero failed queries, and both
cancellation probes counted.

BENCH_enum_time.json (CI's enum-smoke step, DESIGN.md §3.4) is split the
same way: the search counters (closure alternatives, ranked plans
enumerated / pruned / stopped_early at the default top_k budget) and best
costs are deterministic and pinned against the baseline; the wall-clock
fields are not compared, except the one wall-clock acceptance bar this
repo's ranked search carries — the TPC-H Q7 ranked-vs-closure optimize
speedup must stay >= 10x (closure costs ~17x more plans there, so the bar
has real slack). Check mode also re-asserts the binary's own invariants:
ok, every best_cost_equal, and every cache warm_hit.

BENCH_spec_smoke.json (CI's specialization-smoke step, DESIGN.md §2.6) is
fully deterministic: both modes, check and write re-assert byte-identical
outputs, the >= 2x interp_instructions reduction on the text-mining chain,
and fused_chains > 0, and the ablation G on/off rows must show the
specialized run saving instructions without moving any byte meter.
"""

import argparse
import json
import os
import sys

# Figure-shaped JSONs: the default bench-smoke fig5 plus the spill-smoke
# budgeted runs of fig5 and fig7.
FIG_FILES = [
    ("fig5_tpch_q7", "BENCH_fig5_tpch_q7.json"),
    ("fig5_tpch_q7_budget32768", "BENCH_fig5_tpch_q7_budget32768.json"),
    ("fig7_clickstream_budget32768",
     "BENCH_fig7_clickstream_budget32768.json"),
]
ABLATION = "BENCH_ablation.json"
SERVING = "BENCH_serving.json"
ENUM = "BENCH_enum_time.json"
SPEC = "BENCH_spec_smoke.json"

# Schema, not values: serving latencies are wall-clock and legitimately vary
# run to run. What CI pins is that the counters/fields exist and that the
# run-invariant invariants held.
SERVING_COUNTER_KEYS = [
    "submitted", "admitted", "completed", "failed", "cancelled",
    "deadline_exceeded", "rejected", "queue_high_water", "plan_cache_hits",
    "plan_cache_misses",
]
SERVING_LEDGER_KEYS = [
    "capacity_bytes", "carved_high_water_bytes", "live_high_water_bytes",
    "ledger_violations",
]
SERVING_CLASS_KEYS = [
    "class", "count", "p50_s", "p99_s", "mean_s", "max_s",
    "exec_p50_s", "exec_p99_s",
]

FIG_TOP_KEYS = [
    "mem_budget_bytes",
    "alternatives",
    "truncated",
    "implemented_rank",
    "sort_merge_plans",
    "combiner_plans",
    "best_uses_sort_merge",
    "best_uses_combiner",
]
FIG_RUN_EXACT = ["network_bytes", "disk_bytes", "peak_bytes", "udf_calls",
                 "skipped_batches", "skipped_spill_bytes", "fused_chains",
                 "specialized_instructions_saved", "projected_fields_skipped"]
SWEEP_EXACT = ["disk_bytes", "peak_bytes", "skipped_batches",
               "skipped_spill_bytes"]
ABLATION_EXACT = [
    "plans",
    "network_bytes",
    "disk_bytes",
    "peak_bytes",
    "sort_merge_plans",
    "combiner_plans",
    "skipped_batches",
    "skipped_spill_bytes",
    "interp_instructions",
    "fused_chains",
]
# Deterministic per-workload search counters at the default enumeration /
# top_k budget — the ranked-search equivalent of the figure byte meters.
ENUM_CLOSURE_EXACT = ["alternatives", "plans_enumerated"]
ENUM_RANKED_EXACT = ["plans_enumerated", "plans_pruned", "stopped_early"]
# Wall-clock acceptance bar: ranked anytime search must keep TPC-H Q7's
# optimize wall >= 10x below the enumerate-all-then-cost closure.
ENUM_Q7_MIN_SPEEDUP = 10.0
REL_TOL = 1e-6


def load(path):
    with open(path) as f:
        return json.load(f)


def rel_close(a, b):
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1.0)


def nondeterministic(row):
    return "profiled" in row.get("config", "")


def extract_fig(fig):
    out = {k: fig[k] for k in FIG_TOP_KEYS}
    out["runs"] = [
        {k: run[k] for k in ["rank", "estimated_cost"] + FIG_RUN_EXACT}
        for run in fig["runs"]
    ]
    out["budget_sweep"] = [
        {k: row[k] for k in ["mem_budget_bytes"] + SWEEP_EXACT}
        for row in fig.get("budget_sweep", [])
    ]
    return out


def extract(dirname):
    ablation = load(os.path.join(dirname, ABLATION))
    base = {
        "comment": "Committed bench-smoke + spill-smoke baseline; regenerate "
                   "with tools/bench_baseline.py write when a cost-model, "
                   "plan-choice, or spill-behavior change is intended.",
        "ablation_rows": [
            {k: row[k] for k in ["workload", "config", "estimated_cost"]
             + ABLATION_EXACT}
            for row in ablation["rows"] if not nondeterministic(row)
        ],
    }
    for name, fname in FIG_FILES:
        base[name] = extract_fig(load(os.path.join(dirname, fname)))
    enum = load(os.path.join(dirname, ENUM))
    base["enum_time"] = {
        "top_k": enum["top_k"],
        "workloads": [
            {
                "workload": w["workload"],
                "closure": {k: w["closure"][k]
                            for k in ENUM_CLOSURE_EXACT + ["best_cost"]},
                "ranked": {k: w["ranked"][k]
                           for k in ENUM_RANKED_EXACT + ["best_cost"]},
                "best_cost_equal": w["best_cost_equal"],
            }
            for w in enum["workloads"]
        ],
    }
    return base


def check_fig(name, bf, ff, mismatch):
    for k in FIG_TOP_KEYS:
        if bf[k] != ff[k]:
            mismatch(name, k, bf[k], ff[k])
    fresh_runs = {r["rank"]: r for r in ff["runs"]}
    for want in bf["runs"]:
        got = fresh_runs.get(want["rank"])
        if got is None:
            mismatch(name, f"rank {want['rank']}", "present", "missing")
            continue
        if not rel_close(want["estimated_cost"], got["estimated_cost"]):
            mismatch(f"{name} rank {want['rank']}", "estimated_cost",
                     want["estimated_cost"], got["estimated_cost"])
        for k in FIG_RUN_EXACT:
            if want[k] != got[k]:
                mismatch(f"{name} rank {want['rank']}", k, want[k], got[k])
    if len(bf["runs"]) != len(ff["runs"]):
        mismatch(name, "run count", len(bf["runs"]), len(ff["runs"]))
    fresh_sweep = {r["mem_budget_bytes"]: r for r in ff["budget_sweep"]}
    for want in bf["budget_sweep"]:
        got = fresh_sweep.get(want["mem_budget_bytes"])
        where = f"{name} budget {want['mem_budget_bytes']:.0f}"
        if got is None:
            mismatch(name, f"sweep {want['mem_budget_bytes']:.0f}",
                     "present", "missing")
            continue
        for k in SWEEP_EXACT:
            if want[k] != got[k]:
                mismatch(where, k, want[k], got[k])
    if len(bf["budget_sweep"]) != len(ff["budget_sweep"]):
        mismatch(name, "sweep row count", len(bf["budget_sweep"]),
                 len(ff["budget_sweep"]))


def check_enum(baseline_enum, fresh_enum, mismatch):
    """Pins the deterministic search counters and best costs per workload."""
    if baseline_enum["top_k"] != fresh_enum["top_k"]:
        mismatch("enum_time", "top_k", baseline_enum["top_k"],
                 fresh_enum["top_k"])
    fresh_rows = {w["workload"]: w for w in fresh_enum["workloads"]}
    for want in baseline_enum["workloads"]:
        got = fresh_rows.get(want["workload"])
        where = f"enum_time [{want['workload']}]"
        if got is None:
            mismatch("enum_time", f"workload {want['workload']}", "present",
                     "missing")
            continue
        for mode, exact in [("closure", ENUM_CLOSURE_EXACT),
                            ("ranked", ENUM_RANKED_EXACT)]:
            for k in exact:
                if want[mode][k] != got[mode][k]:
                    mismatch(where, f"{mode}.{k}", want[mode][k], got[mode][k])
            if not rel_close(want[mode]["best_cost"], got[mode]["best_cost"]):
                mismatch(where, f"{mode}.best_cost", want[mode]["best_cost"],
                         got[mode]["best_cost"])
        if want["best_cost_equal"] != got["best_cost_equal"]:
            mismatch(where, "best_cost_equal", want["best_cost_equal"],
                     got["best_cost_equal"])
    if len(baseline_enum["workloads"]) != len(fresh_enum["workloads"]):
        mismatch("enum_time", "workload count",
                 len(baseline_enum["workloads"]),
                 len(fresh_enum["workloads"]))


def check_enum_invariants(dirname):
    """Re-asserts enum_time's run-invariant bars; returns error list."""
    path = os.path.join(dirname, ENUM)
    if not os.path.exists(path):
        return [f"enum_time: {ENUM} missing (did the enum-smoke step run?)"]
    errors = []
    enum = load(path)
    if enum.get("ok") is not True:
        errors.append("enum_time: ok is false — ranked top-1 missed the "
                      "closure best cost or a warm cache lookup missed")
    for w in enum.get("workloads", []):
        name = w.get("workload", "?")
        if w.get("best_cost_equal") is not True:
            errors.append(f"enum_time: {name} ranked top-1 cost != closure "
                          "best cost")
        if enum.get("cache_warm"):
            cache = w.get("cache")
            if cache is None:
                errors.append(f"enum_time: {name} lacks the cache section "
                              "despite --cache-warm")
            elif cache.get("warm_hit") is not True:
                errors.append(f"enum_time: {name} warm optimize missed the "
                              "plan cache")
        if (name == "tpch_q7"
                and w.get("ranked_speedup", 0) < ENUM_Q7_MIN_SPEEDUP):
            errors.append(
                f"enum_time: tpch_q7 ranked speedup {w.get('ranked_speedup')}"
                f"x fell below the {ENUM_Q7_MIN_SPEEDUP:.0f}x acceptance bar")
    return errors


def check_serving(dirname):
    """Schema + invariant check of BENCH_serving.json; returns error list."""
    path = os.path.join(dirname, SERVING)
    if not os.path.exists(path):
        return [f"serving: {SERVING} missing (did the serving-smoke "
                "step run?)"]
    errors = []
    serving = load(path)
    for section, keys in [("counters", SERVING_COUNTER_KEYS),
                          ("ledger", SERVING_LEDGER_KEYS)]:
        if section not in serving:
            errors.append(f"serving: section '{section}' missing")
            continue
        for k in keys:
            if k not in serving[section]:
                errors.append(f"serving: {section}.{k} missing")
    for k in ["outputs_match", "classes", "ok"]:
        if k not in serving:
            errors.append(f"serving: key '{k}' missing")
    for row in serving.get("classes", []):
        for k in SERVING_CLASS_KEYS:
            if k not in row:
                errors.append(
                    f"serving: class row {row.get('class', '?')} lacks {k}")
    if errors:
        return errors
    # The run-invariant invariants (wall-clock values are never compared).
    if serving["ledger"]["ledger_violations"] != 0:
        errors.append("serving: ledger_violations = "
                      f"{serving['ledger']['ledger_violations']} (must be 0: "
                      "aggregate live bytes exceeded the global budget)")
    if serving["outputs_match"] is not True:
        errors.append("serving: outputs_match is false — a served query's "
                      "output differed from its solo run")
    if serving["counters"]["failed"] != 0:
        errors.append(
            f"serving: {serving['counters']['failed']} queries failed")
    # The open-loop bench submits one deterministic cancel probe (fires its
    # token inside its first spill write) and one already-expired-deadline
    # probe on every run; both counters must show them.
    if serving["counters"]["cancelled"] < 1:
        errors.append("serving: cancel probe not counted — cancellation "
                      "propagation is dead")
    if serving["counters"]["deadline_exceeded"] < 1:
        errors.append("serving: expired-deadline probe not counted — "
                      "deadline enforcement is dead")
    if not serving.get("classes"):
        errors.append("serving: no per-class latency rows")
    return errors


def check_skipping_invariants(fresh):
    """Asserts zone-map data skipping is alive and sound (DESIGN.md §2.5).

    Two run-invariant bars, checked on the fresh JSONs so a regenerated
    baseline cannot silently wash them away: (1) the spill-smoke Q7 run at
    the 32 KiB budget must actually skip spilled build runs — a refactor
    that quietly stops skipping shows up as skipped_spill_bytes == 0 here;
    (2) the ablation's on/off pair must satisfy the conservation law
    disk(on) + skipped(on) == disk(off) with a real saving, which is what
    makes the skipped meter a true elided-read count rather than a free
    counter.
    """
    errors = []
    sweep = {r["mem_budget_bytes"]: r
             for r in fresh["fig5_tpch_q7_budget32768"]["budget_sweep"]}
    row = sweep.get(32768.0) or sweep.get(32768)
    if row is None:
        errors.append("skipping: fig5 budget sweep lacks the 32768 row")
    elif row["skipped_spill_bytes"] <= 0:
        errors.append("skipping: Q7 at the 32768 budget skipped no spill "
                      "bytes — zone-map run skipping is dead")
    rows = {r["config"]: r for r in fresh["ablation_rows"]
            if r["workload"] == "tpch_q7"}
    on, off = rows.get("data skipping"), rows.get("no data skipping")
    if on is None or off is None:
        errors.append("skipping: ablation F on/off rows missing")
        return errors
    if on["skipped_spill_bytes"] <= 0:
        errors.append("skipping: ablation F 'data skipping' row skipped no "
                      "spill bytes")
    if off["skipped_spill_bytes"] != 0 or off["skipped_batches"] != 0:
        errors.append("skipping: ablation F 'no data skipping' row has "
                      "nonzero skipped meters — the switch is not honored")
    if on["disk_bytes"] + on["skipped_spill_bytes"] != off["disk_bytes"]:
        errors.append(
            "skipping: disk(on) + skipped(on) != disk(off) "
            f"({on['disk_bytes']} + {on['skipped_spill_bytes']} vs "
            f"{off['disk_bytes']}) — a strategy decision leaked the "
            "skipping switch")
    if on["disk_bytes"] >= off["disk_bytes"]:
        errors.append("skipping: data skipping did not reduce disk_bytes")
    return errors


def check_specialization_invariants(dirname, fresh):
    """Asserts fused-chain specialization is alive and sound (§2.6).

    Checked on the fresh outputs so a regenerated baseline cannot wash them
    away: (1) the spec-smoke run must report byte-identical outputs and a
    >= 2x interp_instructions reduction on the text-mining chain; (2) the
    ablation G on/off pair must show the specialized run fusing at least
    one chain and saving instructions. Byte-meter equality across modes is
    NOT asserted here: ablation G ablates the cost-model weight too, so the
    interpreted run may legitimately execute a different winning plan — the
    exact-equality contract lives where the toggle is exec-only (spec_smoke
    and both differential oracles).
    """
    path = os.path.join(dirname, SPEC)
    if not os.path.exists(path):
        return [f"specialization: {SPEC} missing (did the "
                "specialization-smoke step run?)"]
    errors = []
    spec = load(path)
    if spec.get("outputs_match") is not True:
        errors.append("specialization: spec_smoke outputs differ between "
                      "specialized and interpreted runs")
    if spec.get("instruction_ratio", 0) < 2.0:
        errors.append("specialization: spec_smoke instruction ratio "
                      f"{spec.get('instruction_ratio')} fell below 2x")
    if spec.get("fused_chains", 0) <= 0:
        errors.append("specialization: spec_smoke fused no chains")
    for wl in ("textmining", "tpch_q7"):
        rows = {r["config"]: r for r in fresh["ablation_rows"]
                if r["workload"] == wl}
        on = rows.get(f"{wl.replace('tpch_q7', 'q7')} specialized (default)")
        off = rows.get(f"{wl.replace('tpch_q7', 'q7')} interpreted")
        if on is None or off is None:
            errors.append(f"specialization: ablation G rows missing for {wl}")
            continue
        if on["fused_chains"] <= 0:
            errors.append(f"specialization: ablation G {wl} specialized row "
                          "fused no chains")
        if off["fused_chains"] != 0:
            errors.append(f"specialization: ablation G {wl} interpreted row "
                          "fused chains — the switch is not honored")
        if on["interp_instructions"] >= off["interp_instructions"]:
            errors.append(f"specialization: ablation G {wl} saved no "
                          "instructions")
    return errors


def check(baseline, fresh):
    errors = []

    def mismatch(where, key, want, got):
        errors.append(f"{where}: {key} drifted: baseline {want} vs fresh {got}")

    for name, _ in FIG_FILES:
        check_fig(name, baseline[name], fresh[name], mismatch)
    check_enum(baseline["enum_time"], fresh["enum_time"], mismatch)

    fresh_rows = {(r["workload"], r["config"]): r
                  for r in fresh["ablation_rows"]}
    for want in baseline["ablation_rows"]:
        key = (want["workload"], want["config"])
        got = fresh_rows.get(key)
        where = f"ablation [{key[0]} / {key[1]}]"
        if got is None:
            mismatch("ablation", f"row {key}", "present", "missing")
            continue
        if not rel_close(want["estimated_cost"], got["estimated_cost"]):
            mismatch(where, "estimated_cost", want["estimated_cost"],
                     got["estimated_cost"])
        for k in ABLATION_EXACT:
            if want[k] != got[k]:
                mismatch(where, k, want[k], got[k])
    if len(baseline["ablation_rows"]) != len(fresh["ablation_rows"]):
        mismatch("ablation", "row count", len(baseline["ablation_rows"]),
                 len(fresh["ablation_rows"]))
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", choices=["write", "check"])
    ap.add_argument("--dir", default=".",
                    help="directory holding the fresh BENCH_*.json files")
    ap.add_argument("--baseline", default="bench/BENCH_baseline.json")
    ap.add_argument("--out", default="bench/BENCH_baseline.json")
    args = ap.parse_args()

    fresh = extract(args.dir)
    if args.mode == "write":
        errors = (check_skipping_invariants(fresh)
                  + check_specialization_invariants(args.dir, fresh))
        if errors:
            print("refusing to write a baseline that fails the skipping / "
                  "specialization invariants:")
            for e in errors:
                print("  " + e)
            return 1
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
        return 0

    baseline = load(args.baseline)
    errors = (check(baseline, fresh) + check_serving(args.dir)
              + check_enum_invariants(args.dir)
              + check_skipping_invariants(fresh)
              + check_specialization_invariants(args.dir, fresh))
    if errors:
        print("bench baseline drift detected "
              "(regenerate bench/BENCH_baseline.json if intended):")
        for e in errors:
            print("  " + e)
        return 1
    print(f"bench JSONs match {args.baseline} "
          f"({len(baseline['ablation_rows'])} ablation rows, "
          + ", ".join(f"{len(baseline[n]['runs'])} {n} runs"
                      for n, _ in FIG_FILES)
          + f", {len(baseline['enum_time']['workloads'])} enum_time "
          "workloads); serving + enum_time schema and invariants OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
