#!/usr/bin/env python3
"""Guard against silent cost-model / plan-choice drift in the bench JSONs.

The bench-smoke CI step runs `fig5_tpch_q7 --smoke` and `ablation`, producing
BENCH_fig5_tpch_q7.json and BENCH_ablation.json. Both are deterministic
(estimated costs, byte meters, strategy-mix counters are pure functions of the
workload and the cost model), so any difference from the committed baseline is
a real behavior change — intended changes must regenerate the baseline in the
same commit.

Usage:
  tools/bench_baseline.py write  [--out bench/BENCH_baseline.json] [--dir .]
      Compose a new baseline from the two fresh bench JSONs.
  tools/bench_baseline.py check  [--baseline bench/BENCH_baseline.json] [--dir .]
      Diff fresh bench JSONs against the baseline; exit 1 on drift.

Compared per fig5 run (matched by rank): estimated_cost (relative 1e-6),
network/disk/peak bytes (exact). Compared per ablation row (matched by
workload+config): plans, estimated_cost, byte meters, strategy-mix counters.
Rows from profiler-based configs are skipped — profiled hints measure real
per-call wall time and are not deterministic. Wall-clock fields are never
compared.
"""

import argparse
import json
import os
import sys

FIG5 = "BENCH_fig5_tpch_q7.json"
ABLATION = "BENCH_ablation.json"

FIG5_TOP_KEYS = [
    "alternatives",
    "truncated",
    "implemented_rank",
    "sort_merge_plans",
    "combiner_plans",
    "best_uses_sort_merge",
    "best_uses_combiner",
]
FIG5_RUN_EXACT = ["network_bytes", "disk_bytes", "peak_bytes", "udf_calls"]
ABLATION_EXACT = [
    "plans",
    "network_bytes",
    "disk_bytes",
    "peak_bytes",
    "sort_merge_plans",
    "combiner_plans",
]
REL_TOL = 1e-6


def load(path):
    with open(path) as f:
        return json.load(f)


def rel_close(a, b):
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1.0)


def nondeterministic(row):
    return "profiled" in row.get("config", "")


def extract(dirname):
    fig5 = load(os.path.join(dirname, FIG5))
    ablation = load(os.path.join(dirname, ABLATION))
    base = {
        "comment": "Committed bench-smoke baseline; regenerate with "
                   "tools/bench_baseline.py write when a cost-model or "
                   "plan-choice change is intended.",
        "fig5_tpch_q7": {k: fig5[k] for k in FIG5_TOP_KEYS},
        "ablation_rows": [
            {k: row[k] for k in ["workload", "config", "estimated_cost"]
             + ABLATION_EXACT}
            for row in ablation["rows"] if not nondeterministic(row)
        ],
    }
    base["fig5_tpch_q7"]["runs"] = [
        {k: run[k] for k in ["rank", "estimated_cost"] + FIG5_RUN_EXACT}
        for run in fig5["runs"]
    ]
    return base


def check(baseline, fresh):
    errors = []

    def mismatch(where, key, want, got):
        errors.append(f"{where}: {key} drifted: baseline {want} vs fresh {got}")

    bf, ff = baseline["fig5_tpch_q7"], fresh["fig5_tpch_q7"]
    for k in FIG5_TOP_KEYS:
        if bf[k] != ff[k]:
            mismatch("fig5", k, bf[k], ff[k])
    fresh_runs = {r["rank"]: r for r in ff["runs"]}
    for want in bf["runs"]:
        got = fresh_runs.get(want["rank"])
        if got is None:
            mismatch("fig5", f"rank {want['rank']}", "present", "missing")
            continue
        if not rel_close(want["estimated_cost"], got["estimated_cost"]):
            mismatch(f"fig5 rank {want['rank']}", "estimated_cost",
                     want["estimated_cost"], got["estimated_cost"])
        for k in FIG5_RUN_EXACT:
            if want[k] != got[k]:
                mismatch(f"fig5 rank {want['rank']}", k, want[k], got[k])
    if len(bf["runs"]) != len(ff["runs"]):
        mismatch("fig5", "run count", len(bf["runs"]), len(ff["runs"]))

    fresh_rows = {(r["workload"], r["config"]): r
                  for r in fresh["ablation_rows"]}
    for want in baseline["ablation_rows"]:
        key = (want["workload"], want["config"])
        got = fresh_rows.get(key)
        where = f"ablation [{key[0]} / {key[1]}]"
        if got is None:
            mismatch("ablation", f"row {key}", "present", "missing")
            continue
        if not rel_close(want["estimated_cost"], got["estimated_cost"]):
            mismatch(where, "estimated_cost", want["estimated_cost"],
                     got["estimated_cost"])
        for k in ABLATION_EXACT:
            if want[k] != got[k]:
                mismatch(where, k, want[k], got[k])
    if len(baseline["ablation_rows"]) != len(fresh["ablation_rows"]):
        mismatch("ablation", "row count", len(baseline["ablation_rows"]),
                 len(fresh["ablation_rows"]))
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", choices=["write", "check"])
    ap.add_argument("--dir", default=".",
                    help="directory holding the fresh BENCH_*.json files")
    ap.add_argument("--baseline", default="bench/BENCH_baseline.json")
    ap.add_argument("--out", default="bench/BENCH_baseline.json")
    args = ap.parse_args()

    fresh = extract(args.dir)
    if args.mode == "write":
        with open(args.out, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
        return 0

    baseline = load(args.baseline)
    errors = check(baseline, fresh)
    if errors:
        print("bench baseline drift detected "
              "(regenerate bench/BENCH_baseline.json if intended):")
        for e in errors:
            print("  " + e)
        return 1
    print(f"bench JSONs match {args.baseline} "
          f"({len(baseline['ablation_rows'])} ablation rows, "
          f"{len(baseline['fig5_tpch_q7']['runs'])} fig5 runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
