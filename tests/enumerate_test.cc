// Plan enumeration tests: the Section 6 worked example, Algorithm 1
// cross-validation against the closure enumerator, and memoization behaviour.

#include "enumerate/enumerate.h"

#include <gtest/gtest.h>

#include <set>

#include "dataflow/annotate.h"
#include "tests/test_flows.h"

namespace blackbox {
namespace enumerate {
namespace {

using dataflow::AnnotatedFlow;
using dataflow::Annotate;
using dataflow::AnnotationMode;
using dataflow::DataFlow;
using reorder::CanonicalString;

AnnotatedFlow MustAnnotate(const DataFlow& flow) {
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kSca);
  EXPECT_TRUE(af.ok()) << af.status().ToString();
  return std::move(af).value();
}

std::set<std::string> Canon(const EnumResult& r) {
  std::set<std::string> out;
  for (const auto& p : r.plans) out.insert(CanonicalString(p));
  return out;
}

TEST(Enumerate, Section6WorkedExampleYieldsThreeFlows) {
  // The paper's example: Src -> Map1 -> Map2 -> Map3 where all pairs reorder
  // except (Map2, Map3). Expected alternatives:
  //   [Src,Map1,Map2,Map3], [Src,Map2,Map1,Map3], [Src,Map2,Map3,Map1].
  // Our Section 3 flow has exactly this conflict structure with the roles
  // Map1=f1(abs B), Map2=f2(filter A), Map3=f3(A := A+B): f1/f2 commute,
  // f1/f3 conflict on B, f2/f3 conflict on A. The paper's example assumes
  // Map1/Map3 commute, so we relabel: here the reachable set is
  //   {123, 213} plus nothing else (f3 is pinned by both).
  DataFlow flow = testing::MakeSection3Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  StatusOr<EnumResult> r = EnumerateAlternatives(af);
  ASSERT_TRUE(r.ok());
  std::set<std::string> expected = {
      "4(3(2(1(0))))",  // original
      "4(3(1(2(0))))",  // Map1 and Map2 swapped
  };
  EXPECT_EQ(Canon(*r), expected);
}

TEST(Enumerate, Algorithm1MatchesClosureOnMapChains) {
  DataFlow flow = testing::MakeSection3Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  StatusOr<EnumResult> closure = EnumerateAlternatives(af);
  StatusOr<EnumResult> algo1 = EnumerateChainAlgorithm1(af);
  ASSERT_TRUE(closure.ok());
  ASSERT_TRUE(algo1.ok());
  EXPECT_EQ(Canon(*closure), Canon(*algo1));
}

TEST(Enumerate, FullyCommutingChainYieldsAllPermutations) {
  // Three Maps over disjoint attributes commute freely: 3! = 6 orders.
  DataFlow f;
  int src = f.AddSource("I", 3, 100, 27);
  auto make_map = [&](const std::string& name, int field) {
    tac::FunctionBuilder b(name, 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg v = b.GetField(ir, field);
    tac::Reg out = b.Copy(ir);
    b.SetField(out, field, b.Add(v, b.ConstInt(1)));
    b.Emit(out);
    b.Return();
    return testing::Built(std::move(b));
  };
  int m1 = f.AddMap("inc0", src, make_map("inc0", 0));
  int m2 = f.AddMap("inc1", m1, make_map("inc1", 1));
  int m3 = f.AddMap("inc2", m2, make_map("inc2", 2));
  f.SetSink("O", m3);

  AnnotatedFlow af = MustAnnotate(f);
  StatusOr<EnumResult> closure = EnumerateAlternatives(af);
  StatusOr<EnumResult> algo1 = EnumerateChainAlgorithm1(af);
  ASSERT_TRUE(closure.ok());
  ASSERT_TRUE(algo1.ok());
  EXPECT_EQ(closure->plans.size(), 6u);
  EXPECT_EQ(Canon(*closure), Canon(*algo1));
}

TEST(Enumerate, FullyConflictingChainYieldsOnlyOriginal) {
  // Three Maps all rewriting the same attribute: no reordering is valid.
  DataFlow f;
  int src = f.AddSource("I", 1, 100, 9);
  auto make_map = [&](const std::string& name) {
    tac::FunctionBuilder b(name, 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg v = b.GetField(ir, 0);
    tac::Reg out = b.Copy(ir);
    b.SetField(out, 0, b.Mul(v, b.ConstInt(2)));
    b.Emit(out);
    b.Return();
    return testing::Built(std::move(b));
  };
  int m1 = f.AddMap("dbl_a", src, make_map("dbl_a"));
  int m2 = f.AddMap("dbl_b", m1, make_map("dbl_b"));
  int m3 = f.AddMap("dbl_c", m2, make_map("dbl_c"));
  f.SetSink("O", m3);

  AnnotatedFlow af = MustAnnotate(f);
  StatusOr<EnumResult> r = EnumerateAlternatives(af);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->plans.size(), 1u);
  EXPECT_GT(r->rewrites_rejected, 0u);
}

TEST(Enumerate, LongCommutingChainStressesMemoization) {
  // 6 commuting Maps: 720 orders; both enumerators must agree.
  DataFlow f;
  int prev = f.AddSource("I", 6, 100, 54);
  for (int k = 0; k < 6; ++k) {
    tac::FunctionBuilder b("inc" + std::to_string(k), 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg v = b.GetField(ir, k);
    tac::Reg out = b.Copy(ir);
    b.SetField(out, k, b.Add(v, b.ConstInt(1)));
    b.Emit(out);
    b.Return();
    prev = f.AddMap("inc" + std::to_string(k), prev,
                    testing::Built(std::move(b)));
  }
  f.SetSink("O", prev);
  AnnotatedFlow af = MustAnnotate(f);
  StatusOr<EnumResult> closure = EnumerateAlternatives(af);
  StatusOr<EnumResult> algo1 = EnumerateChainAlgorithm1(af);
  ASSERT_TRUE(closure.ok());
  ASSERT_TRUE(algo1.ok());
  EXPECT_EQ(closure->plans.size(), 720u);
  EXPECT_EQ(Canon(*closure), Canon(*algo1));
}

TEST(Enumerate, MaxPlansTruncatesInsteadOfFailing) {
  DataFlow f;
  int prev = f.AddSource("I", 6, 100, 54);
  for (int k = 0; k < 6; ++k) {
    tac::FunctionBuilder b("inc" + std::to_string(k), 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg v = b.GetField(ir, k);
    tac::Reg out = b.Copy(ir);
    b.SetField(out, k, b.Add(v, b.ConstInt(1)));
    b.Emit(out);
    b.Return();
    prev = f.AddMap("inc" + std::to_string(k), prev,
                    testing::Built(std::move(b)));
  }
  f.SetSink("O", prev);
  AnnotatedFlow af = MustAnnotate(f);
  EnumOptions opts;
  opts.max_plans = 10;
  StatusOr<EnumResult> r = EnumerateAlternatives(af, opts);
  // Hitting the limit is not an error: the enumerator stops and hands back
  // the partial closure with the truncation surfaced explicitly.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->plans.size(), 10u);

  // Untruncated run for comparison: same prefix, flag off.
  StatusOr<EnumResult> full = EnumerateAlternatives(af);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_GT(full->plans.size(), 10u);
}

TEST(Enumerate, Algorithm1RejectsBinaryFlows) {
  DataFlow f;
  int a = f.AddSource("A", 2, 10, 18, {0});
  int b = f.AddSource("B", 2, 10, 18, {0});
  tac::FunctionBuilder jb("join", 2, tac::UdfKind::kRat);
  tac::Reg l = jb.InputRecord(0);
  tac::Reg r = jb.InputRecord(1);
  jb.Emit(jb.Concat(l, r));
  jb.Return();
  int j = f.AddMatch("join", a, b, {0}, {0}, testing::Built(std::move(jb)));
  f.SetSink("O", j);
  AnnotatedFlow af = MustAnnotate(f);
  StatusOr<EnumResult> r1 = EnumerateChainAlgorithm1(af);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), Status::Code::kNotSupported);
}

TEST(Enumerate, OriginalPlanIsAlwaysFirst) {
  DataFlow flow = testing::MakeSection3Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  StatusOr<EnumResult> r = EnumerateAlternatives(af);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CanonicalString(r->plans[0]), "4(3(2(1(0))))");
}

}  // namespace
}  // namespace enumerate
}  // namespace blackbox
