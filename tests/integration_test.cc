// Cross-module integration tests: deeper end-to-end scenarios that combine
// SCA, enumeration, physical optimization, profiling and execution in ways
// the per-module suites don't.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "optimizer/profiler.h"
#include "tests/test_flows.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using core::BlackBoxOptimizer;
using dataflow::AnnotationMode;
using dataflow::DataFlow;

TEST(Integration, MixedRelationalFlowWithSixOperatorsOptimizesAndRuns) {
  // A synthetic mixed flow: two filters, a join, an aggregation, and a
  // post-aggregation filter that the optimizer can move below the Reduce
  // (it reads only key attributes).
  DataFlow f;
  int orders = f.AddSource("orders", 3, 2000, 27);    // cust, amount, region
  int custs = f.AddSource("customers", 2, 100, 18, {0});  // cust, tier

  // Filter: amount >= 10.
  tac::FunctionBuilder fb("amount_filter", 1, tac::UdfKind::kRat);
  {
    tac::Reg ir = fb.InputRecord(0);
    tac::Reg v = fb.GetField(ir, 1);
    tac::Label skip = fb.NewLabel();
    fb.BranchIfFalse(fb.CmpGe(v, fb.ConstInt(10)), skip);
    fb.Emit(fb.Copy(ir));
    fb.Bind(skip);
    fb.Return();
  }
  dataflow::Hints filter_hints;
  filter_hints.selectivity = 0.8;
  int filt = f.AddMap("amount_filter", orders, testing::Built(std::move(fb)),
                      filter_hints);

  // Join with customers on cust id.
  dataflow::Hints join_hints;
  join_hints.distinct_keys = 100;
  int join = f.AddMatch("join_customers", filt, custs, {0}, {0},
                        workloads::MakeConcatJoinUdf("join_customers"),
                        join_hints);

  // Aggregate per customer: sum amount into field 5.
  tac::FunctionBuilder gb("sum_amount", 1, tac::UdfKind::kKat);
  {
    tac::Reg n = gb.InputCount(0);
    tac::Reg i = gb.ConstInt(0);
    tac::Reg sum = gb.ConstInt(0);
    tac::Label loop = gb.NewLabel();
    tac::Label done = gb.NewLabel();
    gb.Bind(loop);
    gb.BranchIfFalse(gb.CmpLt(i, n), done);
    tac::Reg r = gb.InputAt(0, i);
    gb.AccumAdd(sum, gb.GetField(r, 1));
    gb.AccumAdd(i, gb.ConstInt(1));
    gb.Goto(loop);
    gb.Bind(done);
    tac::Reg out = gb.Copy(gb.InputAt(0, gb.ConstInt(0)));
    gb.SetField(out, 5, sum);
    gb.Emit(out);
    gb.Return();
  }
  dataflow::Hints agg_hints;
  agg_hints.distinct_keys = 100;
  int agg = f.AddReduce("sum_amount", join, {0}, testing::Built(std::move(gb)),
                        agg_hints);

  // Key filter: keep even customer ids (movable past the Reduce: the emit
  // decision depends only on the Reduce key).
  tac::FunctionBuilder kb("even_cust", 1, tac::UdfKind::kRat);
  {
    tac::Reg ir = kb.InputRecord(0);
    tac::Reg k = kb.GetField(ir, 0);
    tac::Reg even = kb.CmpEq(kb.Mod(k, kb.ConstInt(2)), kb.ConstInt(0));
    tac::Label skip = kb.NewLabel();
    kb.BranchIfFalse(even, skip);
    kb.Emit(kb.Copy(ir));
    kb.Bind(skip);
    kb.Return();
  }
  int keyf = f.AddMap("even_cust", agg, testing::Built(std::move(kb)));
  f.SetSink("O", keyf);

  core::BlackBoxOptimizer::Options count_opts;
  count_opts.search = core::SearchMode::kClosure;  // count the full closure
  BlackBoxOptimizer optimizer(count_opts);
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The key filter can sit above the Reduce, below it, below the Match (on
  // the orders side AND the customers side — it only reads the join key,
  // which both sides carry)... at minimum several alternatives exist.
  EXPECT_GE(result->num_alternatives, 4u);

  // Generate data and check all alternatives agree.
  DataSet orders_data, cust_data;
  Rng rng(99);
  for (int i = 0; i < 1500; ++i) {
    orders_data.Add(Record({Value(rng.Uniform(0, 99)),
                            Value(rng.Uniform(0, 49)),
                            Value(rng.Uniform(0, 3))}));
  }
  for (int i = 0; i < 100; ++i) {
    cust_data.Add(Record({Value(int64_t{i}), Value(rng.Uniform(0, 2))}));
  }
  engine::Executor exec(&result->annotated);
  exec.BindSource(orders, &orders_data);
  exec.BindSource(custs, &cust_data);
  StatusOr<DataSet> ref = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_GT(ref->size(), 0u);
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    StatusOr<DataSet> out = exec.Execute(result->ranked[i].physical);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(ref->BagEquals(*out))
        << reorder::PlanToString(result->ranked[i].logical, f);
  }
}

TEST(Integration, DotExportContainsAllOperators) {
  workloads::Workload w = workloads::MakeTpchQ15({});
  reorder::PlanPtr plan = reorder::PlanFromFlow(w.flow);
  std::string dot = reorder::PlanToDot(plan, w.flow);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  for (int i = 0; i < w.flow.num_ops(); ++i) {
    EXPECT_NE(dot.find(w.flow.op(i).name), std::string::npos)
        << "missing operator " << w.flow.op(i).name;
  }
  // 7 nodes -> 6 edges.
  size_t edges = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 6u);
}

TEST(Integration, OptimizerIsDeterministic) {
  workloads::Workload w = workloads::MakeClickstream({});
  core::BlackBoxOptimizer::Options opts;
  opts.mode = AnnotationMode::kManual;
  BlackBoxOptimizer optimizer(opts);
  StatusOr<core::OptimizationResult> a = optimizer.Optimize(w.flow);
  StatusOr<core::OptimizationResult> b = optimizer.Optimize(w.flow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ranked.size(), b->ranked.size());
  for (size_t i = 0; i < a->ranked.size(); ++i) {
    EXPECT_EQ(reorder::CanonicalString(a->ranked[i].logical),
              reorder::CanonicalString(b->ranked[i].logical));
    EXPECT_DOUBLE_EQ(a->ranked[i].cost, b->ranked[i].cost);
  }
}

TEST(Integration, WorkloadGeneratorsAreDeterministic) {
  workloads::Workload a = workloads::MakeTpchQ15({});
  workloads::Workload b = workloads::MakeTpchQ15({});
  for (const auto& [id, data] : a.source_data) {
    EXPECT_TRUE(data.BagEquals(b.source_data.at(id)));
  }
}

TEST(Integration, EndToEndProfiledOptimizationOnQ7) {
  workloads::TpchScale scale;
  scale.lineitems = 3000;
  scale.orders = 600;
  scale.customers = 100;
  scale.suppliers = 30;
  workloads::Workload w = workloads::MakeTpchQ7(scale);

  // Wipe the hand-tuned hints and recover them by profiling.
  for (int i = 0; i < w.flow.num_ops(); ++i) {
    w.flow.op(i).hints = dataflow::Hints();
  }
  std::map<int, const DataSet*> srcs;
  for (const auto& [id, data] : w.source_data) srcs[id] = &data;
  StatusOr<optimizer::FlowProfile> profile =
      optimizer::ProfileFlow(w.flow, srcs);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  optimizer::ApplyProfile(*profile, &w.flow);

  core::BlackBoxOptimizer::Options opts;
  opts.search = core::SearchMode::kClosure;  // the >100 pin is a closure count
  BlackBoxOptimizer optimizer(opts);
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok());
  engine::Executor exec(&result->annotated);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);
  StatusOr<DataSet> out = exec.Execute(result->best().physical);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(result->num_alternatives, 100u);
}

}  // namespace
}  // namespace blackbox
