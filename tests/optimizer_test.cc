// Physical optimizer tests: strategy selection, interesting-property reuse,
// and the Q15 physical-plan flip discussed in §7.3.

#include "optimizer/physical.h"

#include <gtest/gtest.h>

#include <functional>

#include "core/optimizer_api.h"
#include "tests/test_flows.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace optimizer {
namespace {

using core::BlackBoxOptimizer;
using dataflow::AnnotationMode;

const PhysicalNode* FindOp(const PhysicalNode& root, int op_id) {
  if (root.op_id == op_id) return &root;
  for (const auto& c : root.children) {
    if (const PhysicalNode* hit = FindOp(*c, op_id)) return hit;
  }
  return nullptr;
}

TEST(Physical, CostsArePositiveAndMonotonic) {
  dataflow::DataFlow flow = testing::MakeSection3Flow();
  StatusOr<dataflow::AnnotatedFlow> af =
      dataflow::Annotate(flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  reorder::PlanPtr plan = reorder::PlanFromFlow(flow);
  StatusOr<PhysicalPlan> phys = OptimizePhysical(*af, plan);
  ASSERT_TRUE(phys.ok());
  EXPECT_GT(phys->total_cost, 0.0);
}

TEST(Physical, ReducePartitioningIsReusedByMatchOnSameKey) {
  // Q15 plan (a): Reduce below Match on the same key — the Match must reuse
  // the Reduce's partitioning instead of reshuffling (§7.3).
  workloads::TpchScale s;
  s.lineitems = 10000;
  s.suppliers = 50;
  workloads::Workload w = workloads::MakeTpchQ15(s);
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok());

  // Find the alternative whose logical shape is the original (Reduce feeds
  // Match), then check the Match's lineitem-side strategy.
  reorder::PlanPtr original = reorder::PlanFromFlow(w.flow);
  std::string orig_key = reorder::CanonicalString(original);
  const core::PlannedAlternative* orig_alt = nullptr;
  for (const auto& alt : result->ranked) {
    if (reorder::CanonicalString(alt.logical) == orig_key) {
      orig_alt = &alt;
      break;
    }
  }
  ASSERT_NE(orig_alt, nullptr);
  // Operator ids: 4 = q15_sum_revenue (Reduce), 5 = q15_join_supplier.
  const PhysicalNode* match = FindOp(*orig_alt->physical.root, 5);
  ASSERT_NE(match, nullptr);
  // The aggregated (right) input must be forwarded, reusing the Reduce's
  // hash partitioning on the supplier key.
  EXPECT_EQ(match->ships[1], ShipStrategy::kForward);
}

TEST(Physical, SmallSideIsBroadcastWhenJoinInputIsHuge) {
  // Q15 plan (b): Match below Reduce — the supplier side is tiny relative to
  // the filtered lineitems, so the optimizer should broadcast it (§7.3).
  workloads::TpchScale s;
  s.lineitems = 200000;
  s.suppliers = 20;
  workloads::Workload w = workloads::MakeTpchQ15(s);
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok());

  bool found_broadcast_plan = false;
  for (const auto& alt : result->ranked) {
    const PhysicalNode* match = FindOp(*alt.physical.root, 5);
    ASSERT_NE(match, nullptr);
    // A plan where the Match consumes unaggregated lineitems.
    const PhysicalNode* reduce = FindOp(*match, 4);
    if (reduce != nullptr) continue;  // reduce below match: skip
    if (match->ships[0] == ShipStrategy::kBroadcast) {
      found_broadcast_plan = true;
    }
  }
  EXPECT_TRUE(found_broadcast_plan);
}

TEST(Physical, RankingIsAscendingInCost) {
  workloads::Workload w = workloads::MakeTpchQ15({});
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_LE(result->ranked[i - 1].cost, result->ranked[i].cost);
    EXPECT_EQ(result->ranked[i].rank, static_cast<int>(i) + 1);
  }
}

TEST(Physical, PlanToStringMentionsStrategies) {
  workloads::Workload w = workloads::MakeTpchQ15({});
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok());
  std::string text = result->ranked[0].physical.ToString(w.flow);
  EXPECT_NE(text.find("hash"), std::string::npos);
  EXPECT_NE(text.find("total estimated cost"), std::string::npos);
}

TEST(Physical, BroadcastCostScalesWithDop) {
  workloads::TpchScale s;
  s.lineitems = 100000;
  s.suppliers = 10;
  workloads::Workload w = workloads::MakeTpchQ15(s);

  auto best_cost = [&](int dop) {
    BlackBoxOptimizer::Options opts;
    opts.weights.dop = dop;
    BlackBoxOptimizer optimizer(opts);
    StatusOr<core::OptimizationResult> r = optimizer.Optimize(w.flow);
    EXPECT_TRUE(r.ok());
    return r->ranked[0].cost;
  };
  // More parallel instances -> broadcasting gets pricier; total best cost
  // should not decrease drastically as DOP grows.
  EXPECT_GT(best_cost(64), 0.0);
  EXPECT_GT(best_cost(64), best_cost(4) * 0.5);
}

}  // namespace
}  // namespace optimizer
}  // namespace blackbox
