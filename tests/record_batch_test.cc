// Edge cases of the streaming data plane's record layer (DESIGN.md §2.2):
// RecordBatch size caching and the capacity boundary, BatchPool arena reuse,
// BatchWriter's uniform packing, DataSet's batch-view invariants, and the
// Record::SetField past-the-end growth the scan widening relies on.

#include "record/record_batch.h"

#include <gtest/gtest.h>

#include "record/record.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

Record IntRecord(int64_t a, int64_t b) {
  return Record({Value(a), Value(b)});
}

TEST(Record, SetFieldPastTheEndGrowsWithNulls) {
  Record r;
  r.SetField(0, Value(int64_t{1}));
  r.SetField(4, Value(std::string("x")));  // skips 1..3
  ASSERT_EQ(r.num_fields(), 5u);
  EXPECT_TRUE(r.field(1).is_null());
  EXPECT_TRUE(r.field(3).is_null());
  EXPECT_EQ(r.field(4).AsString(), "x");
  // Growing an already-grown record keeps earlier fields.
  r.SetField(6, Value(int64_t{7}));
  ASSERT_EQ(r.num_fields(), 7u);
  EXPECT_EQ(r.field(0).AsInt(), 1);
  EXPECT_TRUE(r.field(5).is_null());
}

TEST(RecordBatch, AppendCachesSerializedSizes) {
  RecordBatch b(4);
  Record r1 = IntRecord(1, 2);
  Record r2({Value(std::string("abcdef"))});
  size_t s1 = r1.SerializedSize(), s2 = r2.SerializedSize();
  b.Append(std::move(r1));
  b.Append(std::move(r2));
  EXPECT_EQ(b.record_bytes(0), s1);
  EXPECT_EQ(b.record_bytes(1), s2);
  EXPECT_EQ(b.bytes(), s1 + s2);
  EXPECT_EQ(b.bytes(), b.RecomputeBytes());
}

TEST(RecordBatch, CapacityBoundaryAndOverfill) {
  RecordBatch b(2);
  EXPECT_TRUE(b.empty());
  b.Append(IntRecord(1, 1));
  EXPECT_FALSE(b.full());
  b.Append(IntRecord(2, 2));
  EXPECT_TRUE(b.full());  // emit count == capacity: exactly full
  // full() is a flush signal, not a hard cap: one UDF call may emit past it.
  b.Append(IntRecord(3, 3));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.full());
  EXPECT_EQ(b.bytes(), b.RecomputeBytes());
}

TEST(RecordBatch, ClearEmptiesButKeepsCapacityWatermark) {
  RecordBatch b(8);
  b.Append(IntRecord(1, 1));
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.bytes(), 0u);
  EXPECT_EQ(b.capacity(), 8u);
}

TEST(RecordBatch, AppendWithSizeCarriesCachedSize) {
  RecordBatch src(4);
  src.Append(IntRecord(5, 6));
  RecordBatch dst(4);
  dst.AppendWithSize(Record(src.record(0)), src.record_bytes(0));
  EXPECT_EQ(dst.bytes(), src.bytes());
  EXPECT_EQ(dst.bytes(), dst.RecomputeBytes());
}

TEST(BatchPool, RecyclesAtMatchingCapacity) {
  BatchPool pool;
  RecordBatch b = pool.Acquire(4);
  b.Append(IntRecord(1, 2));
  pool.Release(std::move(b));
  EXPECT_EQ(pool.free_count(), 1u);
  RecordBatch again = pool.Acquire(4);
  EXPECT_TRUE(again.empty());  // released batches come back cleared
  EXPECT_EQ(again.capacity(), 4u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BatchPool, DropsMismatchedCapacity) {
  BatchPool pool;
  pool.Release(RecordBatch(4));
  RecordBatch b = pool.Acquire(16);  // watermark mismatch: fresh batch
  EXPECT_EQ(b.capacity(), 16u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BatchWriter, DrawsRecycledBatchesFromPool) {
  // The shuffle's drain-and-rewrite loop: consumed input batches released
  // into the pool come back as the writer's new tail batches.
  BatchPool pool;
  pool.Release(RecordBatch(2));
  pool.Release(RecordBatch(2));
  std::vector<RecordBatch> run;
  BatchWriter w(&run, 2, &pool);
  for (int64_t i = 0; i < 4; ++i) w.Append(IntRecord(i, i));
  EXPECT_EQ(run.size(), 2u);
  EXPECT_EQ(pool.free_count(), 0u);  // both recycled batches were reused
  EXPECT_EQ(BatchesRows(run), 4u);
  for (const RecordBatch& b : run) EXPECT_EQ(b.bytes(), b.RecomputeBytes());
}

TEST(BatchWriter, PacksBatchesToExactCapacity) {
  std::vector<RecordBatch> run;
  BatchWriter w(&run, 3);
  for (int64_t i = 0; i < 7; ++i) w.Append(IntRecord(i, i));
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run[0].size(), 3u);
  EXPECT_EQ(run[1].size(), 3u);
  EXPECT_EQ(run[2].size(), 1u);
  EXPECT_EQ(BatchesRows(run), 7u);
  size_t expect = 0;
  for (const RecordBatch& b : run) expect += b.RecomputeBytes();
  EXPECT_EQ(BatchesBytes(run), expect);
}

TEST(DataSet, BatchViewIndexingCrossesBatchBoundaries) {
  DataSet ds;
  const size_t n = RecordBatch::kDefaultCapacity * 2 + 3;
  for (size_t i = 0; i < n; ++i) {
    ds.Add(IntRecord(static_cast<int64_t>(i), 0));
  }
  ASSERT_EQ(ds.size(), n);
  ASSERT_EQ(ds.batches().size(), 3u);
  // Uniform packing: all but the last batch exactly full.
  EXPECT_EQ(ds.batches()[0].size(), RecordBatch::kDefaultCapacity);
  EXPECT_EQ(ds.batches()[1].size(), RecordBatch::kDefaultCapacity);
  EXPECT_EQ(ds.batches()[2].size(), 3u);
  EXPECT_EQ(ds.record(0).field(0).AsInt(), 0);
  EXPECT_EQ(ds.record(RecordBatch::kDefaultCapacity).field(0).AsInt(),
            static_cast<int64_t>(RecordBatch::kDefaultCapacity));
  EXPECT_EQ(ds.record(n - 1).field(0).AsInt(), static_cast<int64_t>(n - 1));
}

TEST(DataSet, AppendWithPartialTailRepacksUniformly) {
  DataSet a, b;
  const size_t half = RecordBatch::kDefaultCapacity / 2 + 1;
  for (size_t i = 0; i < half; ++i) a.Add(IntRecord(1, 0));
  for (size_t i = 0; i < half; ++i) b.Add(IntRecord(2, 0));
  a.Append(std::move(b));
  ASSERT_EQ(a.size(), 2 * half);
  // Both sources had partial tail batches; the append re-packed them.
  EXPECT_EQ(a.batches()[0].size(), RecordBatch::kDefaultCapacity);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(i).field(0).AsInt(), i < half ? 1 : 2);
  }
}

TEST(DataSet, SerializedBytesComesFromCachedSizes) {
  DataSet ds;
  ds.Add(IntRecord(1, 2));
  ds.Add(Record({Value(std::string("hello"))}));
  size_t expect = 0;
  for (size_t i = 0; i < ds.size(); ++i) expect += ds.record(i).SerializedSize();
  EXPECT_EQ(ds.SerializedBytes(), expect);
}

// Satellite micro-assertion for the shipping meter (ISSUE 4): on a seed
// workload's real source data, the batch-cached sizes the engine's Ship loop
// now meters from must equal the old per-record Record::SerializedSize()
// computation, record for record and in total.
TEST(RecordBatch, CachedSizesMatchOldComputationOnSeedWorkload) {
  workloads::TpchScale scale;
  scale.lineitems = 2000;
  scale.orders = 200;
  scale.customers = 50;
  scale.suppliers = 10;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  ASSERT_FALSE(w.source_data.empty());
  size_t checked = 0;
  for (const auto& [id, data] : w.source_data) {
    size_t old_total = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      old_total += data.record(i).SerializedSize();  // the old meter
    }
    size_t cached_total = 0;
    for (const RecordBatch& b : data.batches()) {
      EXPECT_EQ(b.bytes(), b.RecomputeBytes()) << "source op " << id;
      cached_total += b.bytes();
      checked += b.size();
    }
    EXPECT_EQ(cached_total, old_total) << "source op " << id;
    EXPECT_EQ(data.SerializedBytes(), old_total) << "source op " << id;
  }
  EXPECT_GT(checked, 2000u);
}

}  // namespace
}  // namespace blackbox
