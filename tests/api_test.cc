// Tests for the fluent pipeline API (src/api/): build-time validation on
// typed Stream handles, pluggable annotation providers, the runnable
// OptimizedProgram, and — most importantly — round-trip equivalence: a flow
// built through the Pipeline facade and the same flow built through the
// legacy DataFlow API must produce identical annotated summaries, plan
// counts, and ranked costs.

#include <gtest/gtest.h>

#include "api/pipeline.h"
#include "core/optimizer_api.h"
#include "reorder/plan.h"
#include "tests/test_flows.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using api::OpOptions;
using api::Pipeline;
using api::Stream;

const dataflow::Operator& FindOp(const dataflow::DataFlow& flow,
                                 const std::string& name) {
  for (int i = 0; i < flow.num_ops(); ++i) {
    if (flow.op(i).name == name) return flow.op(i);
  }
  ADD_FAILURE() << "operator not found: " << name;
  static dataflow::Operator missing;
  return missing;
}

// --- Round-trip equivalence ------------------------------------------------

/// Checks that the pipeline-built `flow` and a legacy-built `mirror` agree on
/// annotated summaries, plan counts, plan sets, and ranked costs, in both
/// annotation modes. The legacy side runs through core::BlackBoxOptimizer,
/// the pipeline side through api::OptimizeFlow, so the facade lowering itself
/// is under test.
void ExpectRoundTrip(const dataflow::DataFlow& pipeline_flow,
                     const dataflow::DataFlow& legacy_flow) {
  for (auto mode : {dataflow::AnnotationMode::kSca,
                    dataflow::AnnotationMode::kManual}) {
    SCOPED_TRACE(mode == dataflow::AnnotationMode::kSca ? "sca" : "manual");

    StatusOr<dataflow::AnnotatedFlow> af_pipe =
        dataflow::Annotate(pipeline_flow, mode);
    StatusOr<dataflow::AnnotatedFlow> af_legacy =
        dataflow::Annotate(legacy_flow, mode);
    ASSERT_TRUE(af_pipe.ok()) << af_pipe.status().ToString();
    ASSERT_TRUE(af_legacy.ok()) << af_legacy.status().ToString();
    EXPECT_EQ(af_pipe->ToString(), af_legacy->ToString());

    core::BlackBoxOptimizer::Options copts;
    copts.mode = mode;
    StatusOr<core::OptimizationResult> legacy =
        core::BlackBoxOptimizer(copts).Optimize(legacy_flow);
    ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

    api::OptimizeOptions aopts;
    aopts.cost_model_follows_exec = false;  // cost with the core defaults
    StatusOr<api::OptimizedProgram> program =
        mode == dataflow::AnnotationMode::kSca
            ? api::OptimizeFlow(pipeline_flow, api::ScaProvider(), aopts)
            : api::OptimizeFlow(pipeline_flow, api::ManualProvider(), aopts);
    ASSERT_TRUE(program.ok()) << program.status().ToString();

    ASSERT_EQ(program->num_alternatives(), legacy->num_alternatives);
    ASSERT_EQ(program->ranked().size(), legacy->ranked.size());
    for (size_t i = 0; i < legacy->ranked.size(); ++i) {
      EXPECT_DOUBLE_EQ(program->ranked()[i].cost, legacy->ranked[i].cost)
          << "rank " << i;
      EXPECT_EQ(reorder::CanonicalString(program->ranked()[i].logical),
                reorder::CanonicalString(legacy->ranked[i].logical))
          << "rank " << i;
    }
  }
}

TEST(PipelineRoundTrip, TpchQ7MatchesLegacyBuilder) {
  workloads::TpchScale scale;
  scale.lineitems = 800;
  scale.orders = 150;
  scale.customers = 40;
  scale.suppliers = 15;
  workloads::Workload w = workloads::MakeTpchQ7(scale);

  // The legacy mirror: the same flow hand-built through the DataFlow API
  // (the construction the workloads used before the facade existed). UDFs,
  // hints, and manual summaries are shared with the pipeline-built flow; the
  // operator structure — ids, inputs, keys — is written out by hand.
  dataflow::DataFlow legacy;
  int li = legacy.AddSource("lineitem", 5, scale.lineitems, 48);
  int s = legacy.AddSource("supplier", 2, scale.suppliers, 20, {0});
  int o = legacy.AddSource("orders", 2, scale.orders, 20, {0});
  int c = legacy.AddSource("customer", 2, scale.customers, 20, {0});
  int n1 = legacy.AddSource("nation1", 2, scale.nations, 24, {0});
  int n2 = legacy.AddSource("nation2", 2, scale.nations, 24, {0});

  auto add_map = [&](const char* name, int input) {
    const dataflow::Operator& op = FindOp(w.flow, name);
    int id = legacy.AddMap(name, input, op.udf, op.hints);
    legacy.op(id).manual_summary = op.manual_summary;
    return id;
  };
  auto add_match = [&](const char* name, int left, int right,
                       std::vector<int> lk, std::vector<int> rk) {
    const dataflow::Operator& op = FindOp(w.flow, name);
    int id = legacy.AddMatch(name, left, right, std::move(lk), std::move(rk),
                             op.udf, op.hints);
    legacy.op(id).manual_summary = op.manual_summary;
    return id;
  };

  int sig = add_map("q7_filter_prepare", li);
  int jls = add_match("q7_join_l_s", sig, s, {1}, {0});
  int jlo = add_match("q7_join_l_o", jls, o, {0}, {0});
  int joc = add_match("q7_join_o_c", jlo, c, {10}, {0});
  int jcn1 = add_match("q7_join_c_n1", joc, n1, {12}, {0});
  int jsn2 = add_match("q7_join_s_n2", jcn1, n2, {8}, {0});
  {
    const dataflow::Operator& op = FindOp(w.flow, "q7_sum_volume");
    int gam = legacy.AddReduce("q7_sum_volume", jsn2, {14, 16, 5}, op.udf,
                               op.hints);
    legacy.op(gam).manual_summary = op.manual_summary;
    int dis = add_map("q7_nation_pair_filter", gam);
    legacy.SetSink("q7_sink", dis);
  }

  ExpectRoundTrip(w.flow, legacy);
}

TEST(PipelineRoundTrip, ClickstreamMatchesLegacyBuilder) {
  workloads::ClickstreamScale scale;
  scale.sessions = 300;
  scale.users = 60;
  workloads::Workload w = workloads::MakeClickstream(scale);

  dataflow::DataFlow legacy;
  int64_t total_clicks = scale.sessions * scale.avg_clicks_per_session;
  int64_t logins =
      static_cast<int64_t>(scale.sessions * scale.logged_in_fraction);
  int click = legacy.AddSource("click", 4, total_clicks, 60);
  int login = legacy.AddSource("login", 2, logins, 18, {0});
  int user = legacy.AddSource("user", 4, scale.users, 46, {0});

  const dataflow::Operator& r1_op = FindOp(w.flow, "filter_buy_sessions");
  int r1 = legacy.AddReduce("filter_buy_sessions", click, {0}, r1_op.udf,
                            r1_op.hints);
  legacy.op(r1).manual_summary = r1_op.manual_summary;
  legacy.op(r1).kat_behavior = r1_op.kat_behavior;

  const dataflow::Operator& r2_op = FindOp(w.flow, "condense_sessions");
  int r2 = legacy.AddReduce("condense_sessions", r1, {0}, r2_op.udf,
                            r2_op.hints);
  legacy.op(r2).manual_summary = r2_op.manual_summary;

  const dataflow::Operator& m1_op =
      FindOp(w.flow, "filter_logged_in_sessions");
  int m1 = legacy.AddMatch("filter_logged_in_sessions", r2, login, {0}, {0},
                           m1_op.udf, m1_op.hints);
  legacy.op(m1).manual_summary = m1_op.manual_summary;

  const dataflow::Operator& m2_op = FindOp(w.flow, "append_user_info");
  int m2 = legacy.AddMatch("append_user_info", m1, user, {7}, {0}, m2_op.udf,
                           m2_op.hints);
  legacy.op(m2).manual_summary = m2_op.manual_summary;

  legacy.SetSink("clickstream_sink", m2);

  ExpectRoundTrip(w.flow, legacy);
}

// --- Build-time validation -------------------------------------------------

TEST(Pipeline, StreamsCarryArity) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  EXPECT_EQ(src.arity(), 2);

  // f1 copies the input: arity preserved.
  Stream m = src.Map("abs", testing::MakeAbsUdf());
  EXPECT_EQ(m.arity(), 2);
  EXPECT_TRUE(p.status().ok());
}

TEST(Pipeline, ArityGrowsAcrossJoins) {
  workloads::TpchScale scale;
  scale.lineitems = 10;
  Pipeline p;
  Stream a = p.Source("a", 3, {.rows = 10});
  Stream b = p.Source("b", 2, {.rows = 10, .unique_fields = {0}});
  Stream j = a.MatchWith("j", b, {0}, {0},
                         workloads::MakeConcatJoinUdf("j"),
                         {.summary = workloads::ConcatJoinSummary()});
  EXPECT_EQ(j.arity(), 5);  // concat of 3 + 2
}

TEST(Pipeline, RejectsOutOfRangeKeyAtBuildTime) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  // Key field 5 does not exist on an arity-2 stream: rejected immediately,
  // not at Validate() time.
  Stream bad = src.ReduceBy("group", {5}, testing::MakeAbsUdf());
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(p.status().ok());
  EXPECT_NE(p.status().ToString().find("key field 5"), std::string::npos)
      << p.status().ToString();

  // The error survives to Optimize(), and downstream use of the poisoned
  // handle is a silent no-op instead of a crash.
  Stream worse = bad.Map("after", testing::MakeAbsUdf());
  EXPECT_FALSE(worse.ok());
  StatusOr<api::OptimizedProgram> program = p.Optimize();
  EXPECT_FALSE(program.ok());
}

TEST(Pipeline, RejectsConsumingAStreamTwice) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  Stream m1 = src.Map("m1", testing::MakeAbsUdf());
  ASSERT_TRUE(m1.ok());
  Stream m2 = src.Map("m2", testing::MakeAbsUdf());
  EXPECT_FALSE(m2.ok());
  EXPECT_NE(p.status().ToString().find("already consumed"), std::string::npos)
      << p.status().ToString();
}

TEST(Pipeline, RejectsInconsistentCopyInputSummary) {
  // A hand-written summary claiming to copy input 1 of a unary operator must
  // be rejected at build time, not read out of bounds.
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  sca::LocalUdfSummary bogus;
  bogus.num_inputs = 1;
  bogus.out_kind = sca::OutputKind::kCopyOfInput;
  bogus.copy_input = 1;
  Stream m = src.Map("m", testing::MakeAbsUdf(), {.summary = bogus});
  EXPECT_FALSE(m.ok());
  EXPECT_NE(p.status().ToString().find("copy_input"), std::string::npos)
      << p.status().ToString();
}

TEST(Pipeline, RejectsForeignStreams) {
  Pipeline p1, p2;
  Stream a = p1.Source("a", 2, {.rows = 10});
  Stream b = p2.Source("b", 2, {.rows = 10});
  Stream j = a.MatchWith("j", b, {0}, {0}, workloads::MakeConcatJoinUdf("j"),
                         {.summary = workloads::ConcatJoinSummary()});
  EXPECT_FALSE(j.ok());
  EXPECT_FALSE(p1.status().ok());
}

TEST(Pipeline, RequiresASink) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m", testing::MakeAbsUdf());
  StatusOr<api::OptimizedProgram> program = p.Optimize();
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().ToString().find("no sink"), std::string::npos);
}

// --- Providers -------------------------------------------------------------

TEST(AnnotationProviders, ScaVsManualReproduceTable1OnClickstream) {
  workloads::ClickstreamScale scale;
  scale.sessions = 200;
  workloads::Workload w = workloads::MakeClickstream(scale);

  StatusOr<api::OptimizedProgram> manual =
      api::OptimizeFlow(w.flow, api::ManualProvider());
  StatusOr<api::OptimizedProgram> sca =
      api::OptimizeFlow(w.flow, api::ScaProvider());
  ASSERT_TRUE(manual.ok());
  ASSERT_TRUE(sca.ok());
  EXPECT_EQ(manual->num_alternatives(), 4u);
  EXPECT_EQ(sca->num_alternatives(), 3u);
}

TEST(AnnotationProviders, ManualProviderErrorsWithoutSummaries) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m", testing::MakeAbsUdf()).Sink("O");  // no manual summary
  StatusOr<api::OptimizedProgram> program = p.Optimize(api::ManualProvider());
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().ToString().find("manual annotation"),
            std::string::npos);
}

TEST(AnnotationProviders, ProfilerRefinesHints) {
  workloads::TpchScale scale;
  scale.lineitems = 2000;
  scale.suppliers = 30;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  api::ProfilerProvider provider({.reset_hints = true});
  StatusOr<dataflow::AnnotatedFlow> af = provider.Annotate(w.flow, sources);
  ASSERT_TRUE(af.ok()) << af.status().ToString();

  // The shipdate filter keeps ~25% of the records; the measured selectivity
  // must have replaced the reset (1.0) hint on the provider's snapshot while
  // the caller's flow is untouched.
  const dataflow::Operator& profiled =
      FindOp(*af->flow, "q15_filter_shipdate");
  EXPECT_LT(profiled.hints.selectivity, 0.6);
  EXPECT_GT(profiled.hints.selectivity, 0.05);
  EXPECT_DOUBLE_EQ(FindOp(w.flow, "q15_filter_shipdate").hints.selectivity,
                   0.25);

  // And the full optimize-and-run path works with profiled hints.
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, {}, sources);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<DataSet> out = program->RunBest();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->size(), 0u);
}

TEST(AnnotationProviders, ProfilerRequiresBoundSources) {
  workloads::TpchScale scale;
  scale.lineitems = 100;
  workloads::Workload w = workloads::MakeTpchQ15(scale);
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, api::ProfilerProvider());
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().ToString().find("no bound data"),
            std::string::npos);
}

// --- OptimizedProgram ------------------------------------------------------

TEST(OptimizedProgram, BuildsOptimizesAndRuns) {
  Pipeline p;
  dataflow::Hints filter_hints;
  filter_hints.selectivity = 0.5;
  Stream src = p.Source("I", 2, {.rows = 1000, .avg_bytes = 18});
  src.Map("map1_abs", testing::MakeAbsUdf())
      .Map("map2_filter", testing::MakeFilterNonNegUdf(),
           {.hints = filter_hints})
      .Map("map3_sum", testing::MakeSumUdf())
      .Sink("O");

  StatusOr<api::OptimizedProgram> program = p.Optimize();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_GT(program->num_alternatives(), 1u);
  EXPECT_GE(program->ImplementedIndex(), 0);

  DataSet data;
  data.Add(Record({Value(int64_t{2}), Value(int64_t{-3})}));
  data.Add(Record({Value(int64_t{-2}), Value(int64_t{-3})}));
  data.Add(Record({Value(int64_t{10}), Value(int64_t{5})}));
  ASSERT_TRUE(program->BindSource(src, &data).ok());

  // Every ranked alternative computes the same result.
  StatusOr<DataSet> best = program->RunBest();
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->size(), 2u);
  for (size_t i = 1; i < program->ranked().size(); ++i) {
    StatusOr<DataSet> alt = program->Run(i);
    ASSERT_TRUE(alt.ok()) << alt.status().ToString();
    EXPECT_EQ(alt->ToString(), best->ToString()) << "alternative " << i;
  }

  StatusOr<DataSet> oob = program->Run(program->ranked().size());
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code(), Status::Code::kOutOfRange);
}

TEST(OptimizedProgram, PipelineBindingsCarryThrough) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m", testing::MakeAbsUdf()).Sink("O");

  DataSet data;
  data.Add(Record({Value(int64_t{1}), Value(int64_t{-4})}));
  ASSERT_TRUE(p.BindSource(src, &data).ok());

  StatusOr<api::OptimizedProgram> program = p.Optimize();
  ASSERT_TRUE(program.ok());
  StatusOr<DataSet> out = program->RunBest();  // no re-binding needed
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 1u);
}

TEST(OptimizedProgram, RejectsHandlesFromOtherPipelines) {
  Pipeline p1, p2;
  Stream src1 = p1.Source("I", 2, {.rows = 10});
  src1.Map("m", testing::MakeAbsUdf()).Sink("O");
  Stream src2 = p2.Source("I", 2, {.rows = 10});  // same id, other pipeline
  src2.Map("m", testing::MakeAbsUdf()).Sink("O");

  StatusOr<api::OptimizedProgram> program = p1.Optimize();
  ASSERT_TRUE(program.ok());
  DataSet data;
  Status st = program->BindSource(src2, &data);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("different pipeline"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(program->BindSource(src1, &data).ok());
}

TEST(OptimizedProgram, FlowProgramsBindById) {
  // Programs optimized from a raw DataFlow have no pipeline provenance:
  // Stream-based binding is rejected, BindSources works.
  workloads::TextMiningScale scale;
  scale.documents = 50;
  workloads::Workload w = workloads::MakeTextMining(scale);
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, api::ScaProvider());
  ASSERT_TRUE(program.ok());

  Pipeline p;
  Stream foreign = p.Source("docs", 2, {.rows = 10});
  DataSet data;
  ASSERT_FALSE(program->BindSource(foreign, &data).ok());
  ASSERT_TRUE(program->BindSources(w.source_data).ok());
  StatusOr<DataSet> out = program->RunBest();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST(OptimizedProgram, RunWithoutBindingsFailsCleanly) {
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m", testing::MakeAbsUdf()).Sink("O");
  StatusOr<api::OptimizedProgram> program = p.Optimize();
  ASSERT_TRUE(program.ok());
  StatusOr<DataSet> out = program->RunBest();
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("no bound data"), std::string::npos);
}

TEST(OptimizedProgram, OutlivesThePipeline) {
  DataSet data;
  data.Add(Record({Value(int64_t{3}), Value(int64_t{4})}));
  StatusOr<api::OptimizedProgram> program = [&] {
    Pipeline p;
    Stream src = p.Source("I", 2, {.rows = 10});
    src.Map("m", testing::MakeAbsUdf()).Sink("O");
    auto prog = p.Optimize();
    if (prog.ok()) (void)prog->BindSource(src, &data);
    return prog;
  }();  // pipeline destroyed here
  ASSERT_TRUE(program.ok());
  StatusOr<DataSet> out = program->RunBest();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 1u);
}

// --- Zero-alternative guard (satellite fix) --------------------------------

TEST(Optimize, PrunedPlanSpaceIsAnErrorNotACrash) {
  // A reorderable chain whose plan space exceeds max_plans = 0: Optimize
  // must surface the pruning as a Status instead of handing back a program
  // whose best() would dereference an empty ranked list.
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m1", testing::MakeAbsUdf())
      .Map("m2", testing::MakeFilterNonNegUdf())
      .Map("m3", testing::MakeSumUdf())
      .Sink("O");
  api::OptimizeOptions options;
  options.enum_options.max_plans = 0;
  StatusOr<api::OptimizedProgram> program = p.Optimize(options);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), Status::Code::kOutOfRange);
}

TEST(Optimize, ContradictoryCostModelClusterIsRejected) {
  // cost_model_follows_exec would silently overwrite a deliberately
  // different weights.dop; that contradiction must surface as an error.
  Pipeline p;
  Stream src = p.Source("I", 2, {.rows = 10});
  src.Map("m", testing::MakeAbsUdf()).Sink("O");
  api::OptimizeOptions options;
  options.weights.dop = options.exec.dop * 2;
  StatusOr<api::OptimizedProgram> program = p.Optimize(options);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), Status::Code::kInvalidArgument);
}

TEST(OptimizationResultDeathTest, BestOnEmptyResultAborts) {
  core::OptimizationResult empty;
  EXPECT_DEATH(empty.best(), "no ranked alternatives");
}

}  // namespace
}  // namespace blackbox
