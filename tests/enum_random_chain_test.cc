// Randomized property test cross-validating the two enumerator
// implementations on generated unary-operator chains: the production closure
// enumerator (EnumerateAlternatives) and the paper's Algorithm 1 transcription
// (EnumerateChainAlgorithm1) must derive exactly the same plan set — compared
// by canonical form — for every randomly generated chain of Maps and Reduces.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "core/optimizer_api.h"
#include "dataflow/annotate.h"
#include "enumerate/enumerate.h"
#include "tests/test_flows.h"

namespace blackbox {
namespace enumerate {
namespace {

constexpr int kArity = 4;

/// A random RAT Map over kArity integer fields: optional filter on one field,
/// an in-place modification of another, optionally an appended field. The
/// generator is biased toward partially-overlapping read/write sets so chains
/// land between the extremes (fully commuting, fully conflicting).
std::shared_ptr<const tac::Function> RandomChainMap(Rng* rng,
                                                    const std::string& name) {
  tac::FunctionBuilder b(name, 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Label skip = b.NewLabel();
  bool filtered = rng->Chance(0.4);
  if (filtered) {
    tac::Reg v = b.GetField(ir, static_cast<int>(rng->Uniform(0, kArity - 1)));
    b.BranchIfFalse(b.CmpGe(v, b.ConstInt(rng->Uniform(-40, 10))), skip);
  }
  tac::Reg out = b.Copy(ir);
  int target = static_cast<int>(rng->Uniform(0, kArity - 1));
  tac::Reg a = b.GetField(ir, static_cast<int>(rng->Uniform(0, kArity - 1)));
  b.SetField(out, target, b.Add(a, b.ConstInt(rng->Uniform(1, 5))));
  if (rng->Chance(0.3)) {
    b.SetField(out, kArity, b.Mul(a, b.ConstInt(2)));
  }
  b.Emit(out);
  if (filtered) b.Bind(skip);
  b.Return();
  return testing::Built(std::move(b));
}

/// A Reduce that sums one field in place per group on a random key field —
/// the combinable shape, so closures can reorder KGP-compatible Maps past it.
std::shared_ptr<const tac::Function> RandomChainReduce(Rng* rng,
                                                       const std::string& name,
                                                       int* key_field) {
  *key_field = static_cast<int>(rng->Uniform(0, kArity - 1));
  int agg = (*key_field + 1 + static_cast<int>(rng->Uniform(0, kArity - 2))) %
            kArity;
  tac::FunctionBuilder b(name, 1, tac::UdfKind::kKat);
  tac::Reg n = b.InputCount(0);
  tac::Reg i = b.ConstInt(0);
  tac::Reg sum = b.ConstInt(0);
  tac::Label loop = b.NewLabel();
  tac::Label done = b.NewLabel();
  b.Bind(loop);
  b.BranchIfFalse(b.CmpLt(i, n), done);
  tac::Reg r = b.InputAt(0, i);
  b.AccumAdd(sum, b.GetField(r, agg));
  b.AccumAdd(i, b.ConstInt(1));
  b.Goto(loop);
  b.Bind(done);
  tac::Reg out = b.Copy(b.InputAt(0, b.ConstInt(0)));
  b.SetField(out, agg, sum);
  b.Emit(out);
  b.Return();
  return testing::Built(std::move(b));
}

std::set<std::string> Canon(const EnumResult& r) {
  std::set<std::string> out;
  for (const auto& p : r.plans) out.insert(reorder::CanonicalString(p));
  return out;
}

/// The seed-derived random chain shared by both differentials.
void BuildRandomChain(Rng* rng, dataflow::DataFlow* flow, int* chain_len_out,
                      int* reduce_at_out) {
  int prev = flow->AddSource("I", kArity, 1000, kArity * 9);
  int chain_len = static_cast<int>(rng->Uniform(3, 6));
  bool with_reduce = rng->Chance(0.5);
  int reduce_at = with_reduce
                      ? static_cast<int>(rng->Uniform(0, chain_len - 1))
                      : -1;
  for (int i = 0; i < chain_len; ++i) {
    std::string name = "op" + std::to_string(i);
    if (i == reduce_at) {
      int key_field = 0;
      auto udf = RandomChainReduce(rng, name, &key_field);
      dataflow::Hints hints;
      hints.distinct_keys = 50;
      prev = flow->AddReduce(name, prev, {key_field}, udf, hints);
    } else {
      prev = flow->AddMap(name, prev, RandomChainMap(rng, name));
    }
  }
  flow->SetSink("O", prev);
  *chain_len_out = chain_len;
  *reduce_at_out = reduce_at;
}

class RandomChainTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChainTest, Algorithm1MatchesClosureEnumerator) {
  uint64_t seed = GetParam();
  Rng rng(seed * 131 + 17);

  dataflow::DataFlow flow;
  int chain_len = 0, reduce_at = -1;
  BuildRandomChain(&rng, &flow, &chain_len, &reduce_at);

  StatusOr<dataflow::AnnotatedFlow> af =
      dataflow::Annotate(flow, dataflow::AnnotationMode::kSca);
  ASSERT_TRUE(af.ok()) << af.status().ToString();

  StatusOr<EnumResult> closure = EnumerateAlternatives(*af);
  StatusOr<EnumResult> algo1 = EnumerateChainAlgorithm1(*af);
  ASSERT_TRUE(closure.ok()) << closure.status().ToString();
  ASSERT_TRUE(algo1.ok()) << algo1.status().ToString();
  EXPECT_FALSE(closure->truncated);
  EXPECT_FALSE(algo1->truncated);

  std::set<std::string> closure_set = Canon(*closure);
  std::set<std::string> algo1_set = Canon(*algo1);
  EXPECT_EQ(closure_set, algo1_set)
      << "seed " << seed << ": enumerators disagree on chain of length "
      << chain_len << " (reduce at " << reduce_at << ")\n"
      << flow.ToString();
  // Both must contain the original plan.
  std::string original =
      reorder::CanonicalString(reorder::PlanFromFlow(flow));
  EXPECT_EQ(closure_set.count(original), 1u);
}

// The ranked anytime search against the exhaustive closure on the same
// random chains: the top-1 must agree in cost AND in canonical logical and
// physical (strategy) form. This is the empirical validation of the
// admissible lower bound (DESIGN.md §3.4) — any bound term that overshoots
// a real plan's cost shows up here as a pruned optimum.
TEST_P(RandomChainTest, RankedSearchMatchesClosureTopPlan) {
  uint64_t seed = GetParam();
  Rng rng(seed * 131 + 17);  // same stream → same chain as the test above

  dataflow::DataFlow flow;
  int chain_len = 0, reduce_at = -1;
  BuildRandomChain(&rng, &flow, &chain_len, &reduce_at);

  core::BlackBoxOptimizer::Options closure_opts;
  closure_opts.search = core::SearchMode::kClosure;
  StatusOr<core::OptimizationResult> closure =
      core::BlackBoxOptimizer(closure_opts).Optimize(flow);
  ASSERT_TRUE(closure.ok()) << closure.status().ToString();

  core::BlackBoxOptimizer::Options ranked_opts;
  ranked_opts.search = core::SearchMode::kRanked;
  StatusOr<core::OptimizationResult> ranked =
      core::BlackBoxOptimizer(ranked_opts).Optimize(flow);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();

  const std::string context = "seed " + std::to_string(seed) +
                              ", chain length " + std::to_string(chain_len) +
                              ", reduce at " + std::to_string(reduce_at);
  EXPECT_DOUBLE_EQ(ranked->best().cost, closure->best().cost)
      << context << ": ranked top-1 missed the closure best cost\n"
      << flow.ToString();
  EXPECT_EQ(reorder::CanonicalString(ranked->best().logical),
            reorder::CanonicalString(closure->best().logical))
      << context << ": ranked top-1 is a different logical plan";
  EXPECT_EQ(ranked->best().physical.ToString(flow),
            closure->best().physical.ToString(flow))
      << context << ": ranked top-1 chose different physical strategies";
  // The ranked search must never cost more plans than the closure holds.
  EXPECT_LE(ranked->plans_enumerated, closure->plans_enumerated) << context;
  // Counter bookkeeping: discovered = costed + pruned.
  EXPECT_EQ(ranked->num_alternatives,
            ranked->plans_enumerated + ranked->plans_pruned)
      << context;
}

INSTANTIATE_TEST_SUITE_P(RandomChains, RandomChainTest,
                         ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace enumerate
}  // namespace blackbox
