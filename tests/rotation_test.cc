// Structural tests for binary-binary rotations (Lemma 1): on a three-relation
// chain join R ⋈ S ⋈ T, the enumerator must produce exactly the valid
// association trees and reject rotations whose key would leave its subtree.

#include <gtest/gtest.h>

#include <set>

#include "core/optimizer_api.h"
#include "dataflow/annotate.h"
#include "enumerate/enumerate.h"
#include "engine/executor.h"
#include "tests/test_flows.h"
#include "workloads/workload.h"

namespace blackbox {
namespace {

using dataflow::DataFlow;
using dataflow::Hints;

/// R(a, x) ⋈_{a=b} S(b, c, y) ⋈_{c=d} T(d, z): a chain join where the second
/// join's key (S.c) lives on S — both associations are valid.
DataFlow MakeChainJoin() {
  DataFlow f;
  int r = f.AddSource("R", 2, 100, 18, {0});
  int s = f.AddSource("S", 3, 100, 27, {0});
  int t = f.AddSource("T", 2, 100, 18, {0});
  int rs = f.AddMatch("join_rs", r, s, {0}, {0},
                      workloads::MakeConcatJoinUdf("join_rs"));
  // Left schema: R 0-1 | S 2-4; S.c is local index 3.
  int rst = f.AddMatch("join_st", rs, t, {3}, {0},
                       workloads::MakeConcatJoinUdf("join_st"));
  f.SetSink("O", rst);
  (void)rst;
  return f;
}

std::set<std::string> EnumCanon(const DataFlow& f) {
  StatusOr<dataflow::AnnotatedFlow> af =
      dataflow::Annotate(f, dataflow::AnnotationMode::kSca);
  EXPECT_TRUE(af.ok()) << af.status().ToString();
  StatusOr<enumerate::EnumResult> r = enumerate::EnumerateAlternatives(*af);
  EXPECT_TRUE(r.ok());
  std::set<std::string> out;
  for (const auto& p : r->plans) out.insert(reorder::CanonicalString(p));
  return out;
}

TEST(Rotation, ChainJoinYieldsBothAssociations) {
  DataFlow f = MakeChainJoin();
  std::set<std::string> plans = EnumCanon(f);
  // Operators: 0=R 1=S 2=T 3=join_rs 4=join_st 5=sink.
  // (R ⋈ S) ⋈ T — the original — and R ⋈ (S ⋈ T) — the rotation.
  EXPECT_EQ(plans.size(), 2u);
  EXPECT_TRUE(plans.count("5(4(3(0,1),2))"));
  EXPECT_TRUE(plans.count("5(3(0,4(1,2)))"));
}

TEST(Rotation, KeyOnOuterRelationBlocksRotation) {
  // R(a,x) ⋈_{a=b} S(b,c) ⋈_{x=z} T(z): the second join's left key is R.x —
  // rotating it below would strand the key outside its subtree, so only the
  // original association is valid.
  DataFlow f;
  int r = f.AddSource("R", 2, 100, 18, {0});
  int s = f.AddSource("S", 2, 100, 18, {0});
  int t = f.AddSource("T", 1, 100, 9, {0});
  int rs = f.AddMatch("join_rs", r, s, {0}, {0},
                      workloads::MakeConcatJoinUdf("join_rs"));
  int rst = f.AddMatch("join_rt", rs, t, {1}, {0},  // key R.x (local 1)
                       workloads::MakeConcatJoinUdf("join_rt"));
  f.SetSink("O", rst);
  (void)rst;
  std::set<std::string> plans = EnumCanon(f);
  // The rotation R ⋈ (S ⋈ T) is invalid (S⋈T has no join predicate), but the
  // *other* rotation (R ⋈ T) ⋈ S is valid: join_rt's key R.x lives on R.
  EXPECT_EQ(plans.size(), 2u);
  EXPECT_TRUE(plans.count("5(4(3(0,1),2))"));   // original
  EXPECT_TRUE(plans.count("5(3(4(0,2),1))"));   // (R ⋈ T) ⋈ S
}

TEST(Rotation, RotatedChainExecutesIdentically) {
  DataFlow f = MakeChainJoin();
  core::BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->ranked.size(), 2u);

  DataSet r_data, s_data, t_data;
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    r_data.Add(Record({Value(int64_t{i}), Value(rng.Uniform(0, 9))}));
    s_data.Add(Record({Value(int64_t{i}), Value(rng.Uniform(0, 19)),
                       Value(rng.Uniform(0, 9))}));
  }
  for (int i = 0; i < 20; ++i) {
    t_data.Add(Record({Value(int64_t{i}), Value(rng.Uniform(0, 9))}));
  }
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &s_data);
  exec.BindSource(2, &t_data);
  StatusOr<DataSet> a = exec.Execute(result->ranked[0].physical);
  StatusOr<DataSet> b = exec.Execute(result->ranked[1].physical);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GT(a->size(), 0u);
  EXPECT_TRUE(a->BagEquals(*b));
}

TEST(Rotation, JoinUdfReadingOuterAttributeBlocksRotation) {
  // Like MakeChainJoin, but join_st's UDF additionally reads an R attribute:
  // its touched set now intersects the would-be "staying" subtree, so the
  // R ⋈ (S ⋈ T) association must disappear.
  DataFlow f;
  int r = f.AddSource("R", 2, 100, 18, {0});
  int s = f.AddSource("S", 3, 100, 27, {0});
  int t = f.AddSource("T", 2, 100, 18, {0});
  int rs = f.AddMatch("join_rs", r, s, {0}, {0},
                      workloads::MakeConcatJoinUdf("join_rs"));
  tac::FunctionBuilder jb("join_st_reads_rx", 2, tac::UdfKind::kRat);
  tac::Reg l = jb.InputRecord(0);
  tac::Reg rr = jb.InputRecord(1);
  tac::Reg rx = jb.GetField(l, 1);  // R.x — outside the S⋈T subtree
  tac::Reg out = jb.Concat(l, rr);
  jb.SetField(out, 7, jb.Add(rx, jb.ConstInt(1)));
  jb.Emit(out);
  jb.Return();
  int rst = f.AddMatch("join_st_reads_rx", rs, t, {3}, {0},
                       testing::Built(std::move(jb)));
  f.SetSink("O", rst);
  (void)rst;
  std::set<std::string> plans = EnumCanon(f);
  EXPECT_EQ(plans.size(), 1u);
}

TEST(Rotation, BushyPlansAppearForStarJoins) {
  // F(a, b) ⋈ D1(a) and ⋈ D2(b): the two dimension joins commute, and the
  // enumerator produces both orders (left-deep both ways). With a chain of
  // two independent dimensions there are exactly 2 trees.
  DataFlow f;
  int fact = f.AddSource("F", 2, 1000, 18);
  int d1 = f.AddSource("D1", 1, 10, 9, {0});
  int d2 = f.AddSource("D2", 1, 10, 9, {0});
  int j1 = f.AddMatch("join_d1", fact, d1, {0}, {0},
                      workloads::MakeConcatJoinUdf("join_d1"));
  int j2 = f.AddMatch("join_d2", j1, d2, {1}, {0},
                      workloads::MakeConcatJoinUdf("join_d2"));
  f.SetSink("O", j2);
  (void)j2;
  std::set<std::string> plans = EnumCanon(f);
  EXPECT_EQ(plans.size(), 2u);
  EXPECT_TRUE(plans.count("5(4(3(0,1),2))"));  // (F⋈D1)⋈D2
  EXPECT_TRUE(plans.count("5(3(4(0,2),1))"));  // (F⋈D2)⋈D1
}

}  // namespace
}  // namespace blackbox
