// Coverage for the two remaining PACTs: CoGroup (tagged-union reordering of
// §4.3.2) and Cross (Theorem 3 Map push-down, Theorem 4 single-row Reduce
// push-down), including execution.

#include <gtest/gtest.h>

#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "common/rng.h"
#include "tests/test_flows.h"
#include "workloads/workload.h"

namespace blackbox {
namespace {

using core::BlackBoxOptimizer;
using dataflow::DataFlow;
using dataflow::Hints;
using tac::FunctionBuilder;
using tac::Label;
using tac::Reg;
using tac::UdfKind;

/// CoGroup UDF: emits every left-group record with the right-group size
/// appended — record-preserving on the left input (copy semantics), so a
/// left-side Map can move past it.
std::shared_ptr<const tac::Function> MakeLeftCountCoGroup(int out_field) {
  FunctionBuilder b("left_count_cogroup", 2, UdfKind::kKat);
  Reg nl = b.InputCount(0);
  Reg nr = b.InputCount(1);
  Reg i = b.ConstInt(0);
  Label loop = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(loop);
  b.BranchIfFalse(b.CmpLt(i, nl), done);
  Reg r = b.InputAt(0, i);
  Reg out = b.Copy(r);
  b.SetField(out, out_field, nr);
  b.Emit(out);
  b.AccumAdd(i, b.ConstInt(1));
  b.Goto(loop);
  b.Bind(done);
  b.Return();
  return testing::Built(std::move(b));
}

/// Map over R(key, x, z): z := z * 2 (one-to-one, touches only z).
std::shared_ptr<const tac::Function> MakeDoubleZ() {
  FunctionBuilder b("double_z", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg z = b.GetField(ir, 2);
  Reg out = b.Copy(ir);
  b.SetField(out, 2, b.Mul(z, b.ConstInt(2)));
  b.Emit(out);
  b.Return();
  return testing::Built(std::move(b));
}

DataFlow MakeCoGroupFlow() {
  DataFlow f;
  int r = f.AddSource("R", 3, 100, 27);  // key, x, z
  int s = f.AddSource("S", 2, 50, 18);   // key, y
  Hints h;
  h.distinct_keys = 10;
  int cg = f.AddCoGroup("count_partners", r, s, {0}, {0},
                        MakeLeftCountCoGroup(3), h);
  int map = f.AddMap("double_z", cg, MakeDoubleZ());
  f.SetSink("O", map);
  return f;
}

TEST(CoGroup, MapPushesBelowCoGroupOnItsSide) {
  // §4.3.2: a Map whose UDF only touches R attributes can be pushed below
  // the CoGroup to the R input (via the tagged-union argument) — the KGP
  // condition holds because the Map is one-to-one.
  DataFlow f = MakeCoGroupFlow();
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Two orders: Map above CoGroup (original) and Map pushed to the R side.
  EXPECT_EQ(result->num_alternatives, 2u);
}

TEST(CoGroup, BothOrdersProduceSameOutput) {
  DataFlow f = MakeCoGroupFlow();
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->ranked.size(), 2u);

  DataSet r_data, s_data;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    r_data.Add(Record({Value(rng.Uniform(0, 9)), Value(rng.Uniform(0, 99)),
                       Value(rng.Uniform(0, 9))}));
  }
  for (int i = 0; i < 40; ++i) {
    s_data.Add(Record({Value(rng.Uniform(0, 9)), Value(rng.Uniform(0, 99))}));
  }
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &s_data);
  StatusOr<DataSet> a = exec.Execute(result->ranked[0].physical);
  StatusOr<DataSet> b = exec.Execute(result->ranked[1].physical);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->size(), 120u);  // every R record appears once
  EXPECT_TRUE(a->BagEquals(*b));
}

TEST(CoGroup, OuterKeysFormGroupsWithOneEmptySide) {
  // A key present only in S yields a group with an empty R side; the UDF
  // emits nothing for it (its loop runs zero times).
  DataFlow f = MakeCoGroupFlow();
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());

  DataSet r_data, s_data;
  r_data.Add(Record({Value(int64_t{1}), Value(int64_t{5}), Value(int64_t{2})}));
  s_data.Add(Record({Value(int64_t{99}), Value(int64_t{7})}));  // S-only key
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &s_data);
  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  // R's key-1 group saw zero partners on the right.
  EXPECT_EQ(out->record(0).field(3).AsInt(), 0);
}

TEST(CoGroup, MapTouchingBothSidesDoesNotMove) {
  // A Map reading an S attribute cannot be pushed to the R input (and vice
  // versa): the attribute-disjointness condition fails for both sides.
  DataFlow f;
  int r = f.AddSource("R", 3, 100, 27);
  int s = f.AddSource("S", 2, 50, 18);
  int cg = f.AddCoGroup("count_partners", r, s, {0}, {0},
                        MakeLeftCountCoGroup(3));
  // Reads the count attribute produced by the CoGroup itself.
  FunctionBuilder b("read_count", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg cnt = b.GetField(ir, 3);
  Reg out = b.Copy(ir);
  b.SetField(out, 4, b.Mul(cnt, b.ConstInt(10)));
  b.Emit(out);
  b.Return();
  int map = f.AddMap("read_count", cg, testing::Built(std::move(b)));
  f.SetSink("O", map);

  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_alternatives, 1u);
}

// ---------------------------------------------------------------------------
// Cross
// ---------------------------------------------------------------------------

DataFlow MakeCrossFlow(int64_t params_rows) {
  // R(x, z) × params(threshold) -> Map filter on x vs threshold.
  DataFlow f;
  int r = f.AddSource("R", 2, 200, 18);
  int p = f.AddSource("params", 1, params_rows, 9, {0});
  int cross = f.AddCross("combine", r, p,
                         workloads::MakeConcatJoinUdf("combine"));
  // Filter: keep records where x >= threshold (reads both sides!).
  FunctionBuilder b("filter_by_param", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg x = b.GetField(ir, 0);
  Reg t = b.GetField(ir, 2);
  Label skip = b.NewLabel();
  b.BranchIfFalse(b.CmpGe(x, t), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  int map = f.AddMap("filter_by_param", cross, testing::Built(std::move(b)));
  f.SetSink("O", map);
  return f;
}

TEST(Cross, MapReadingBothSidesStaysAbove) {
  DataFlow f = MakeCrossFlow(1);
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_alternatives, 1u);
}

TEST(Cross, SingleSidedMapPushesBelowProduct) {
  // Theorem 3: Map_f(R × S) == Map_f(R) × S iff (R_f ∪ W_f) ∩ S = ∅.
  DataFlow f;
  int r = f.AddSource("R", 2, 200, 18);
  int p = f.AddSource("params", 1, 1, 9, {0});
  int cross = f.AddCross("combine", r, p,
                         workloads::MakeConcatJoinUdf("combine"));
  FunctionBuilder b("halve_x", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg x = b.GetField(ir, 0);
  Reg out = b.Copy(ir);
  b.SetField(out, 0, b.Div(x, b.ConstInt(2)));
  b.Emit(out);
  b.Return();
  int map = f.AddMap("halve_x", cross, testing::Built(std::move(b)));
  f.SetSink("O", map);

  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_alternatives, 2u);

  // Both orders execute identically.
  DataSet r_data, p_data;
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    r_data.Add(Record({Value(rng.Uniform(0, 40)), Value(rng.Uniform(0, 5))}));
  }
  p_data.Add(Record({Value(int64_t{10})}));
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &p_data);
  StatusOr<DataSet> a = exec.Execute(result->ranked[0].physical);
  StatusOr<DataSet> bb = exec.Execute(result->ranked[1].physical);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(bb.ok());
  EXPECT_EQ(a->size(), 60u);
  EXPECT_TRUE(a->BagEquals(*bb));
}

TEST(Cross, CrossProductCardinalityIsProductOfInputs) {
  DataFlow f = MakeCrossFlow(3);
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok());
  DataSet r_data, p_data;
  for (int i = 0; i < 10; ++i) {
    r_data.Add(Record({Value(int64_t{i}), Value(int64_t{0})}));
  }
  for (int t : {0, 5, 8}) {
    p_data.Add(Record({Value(int64_t{t})}));
  }
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &p_data);
  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // x in 0..9 against thresholds {0,5,8}: 10 + 5 + 2 survivors.
  EXPECT_EQ(out->size(), 17u);
}

TEST(Cross, ReducePushesPastSingleRowCross) {
  // Theorem 4's practical special case: |R| = 1 (scalar subquery result).
  DataFlow f;
  int r = f.AddSource("R", 2, 500, 18);  // key, v
  int p = f.AddSource("param", 1, 1, 9, {0});
  int cross = f.AddCross("with_param", r, p,
                         workloads::MakeConcatJoinUdf("with_param"));
  // Reduce per key: sum v into a new attribute.
  FunctionBuilder b("sum_v", 1, UdfKind::kKat);
  Reg n = b.InputCount(0);
  Reg i = b.ConstInt(0);
  Reg sum = b.ConstInt(0);
  Label loop = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(loop);
  b.BranchIfFalse(b.CmpLt(i, n), done);
  Reg rec = b.InputAt(0, i);
  b.AccumAdd(sum, b.GetField(rec, 1));
  b.AccumAdd(i, b.ConstInt(1));
  b.Goto(loop);
  b.Bind(done);
  Reg out = b.Copy(b.InputAt(0, b.ConstInt(0)));
  b.SetField(out, 3, sum);
  b.Emit(out);
  b.Return();
  Hints h;
  h.distinct_keys = 20;
  int red = f.AddReduce("sum_v", cross, {0}, testing::Built(std::move(b)), h);
  f.SetSink("O", red);

  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_alternatives, 2u);

  DataSet r_data, p_data;
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    r_data.Add(Record({Value(rng.Uniform(0, 19)), Value(rng.Uniform(0, 9))}));
  }
  p_data.Add(Record({Value(int64_t{7})}));
  engine::Executor exec(&result->annotated);
  exec.BindSource(0, &r_data);
  exec.BindSource(1, &p_data);
  StatusOr<DataSet> a = exec.Execute(result->ranked[0].physical);
  StatusOr<DataSet> bb = exec.Execute(result->ranked[1].physical);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(bb.ok()) << bb.status().ToString();
  EXPECT_TRUE(a->BagEquals(*bb));
}

}  // namespace
}  // namespace blackbox
