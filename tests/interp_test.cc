#include "interp/interp.h"

#include <gtest/gtest.h>

namespace blackbox {
namespace interp {
namespace {

using tac::FunctionBuilder;
using tac::Label;
using tac::Reg;
using tac::UdfKind;

tac::Function MustBuild(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return std::move(fn).value();
}

std::vector<Record> RunRat(const tac::Function& fn, const Record& input,
                           const FieldTranslation& t = {}) {
  Interpreter interp(&fn);
  CallInputs ci;
  ci.groups = {{&input}};
  std::vector<Record> out;
  Status s = interp.Run(ci, t, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(Interp, PaperExampleF1AbsoluteValue) {
  // f1 from §3: B := |B|.
  FunctionBuilder b("f1", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg bval = b.GetField(ir, 1);
  Reg out = b.Copy(ir);
  Label done = b.NewLabel();
  b.BranchIfTrue(b.CmpGe(bval, b.ConstInt(0)), done);
  b.SetField(out, 1, b.Neg(bval));
  b.Bind(done);
  b.Emit(out);
  b.Return();
  tac::Function f1 = MustBuild(std::move(b));

  Record in({Value(int64_t{2}), Value(int64_t{-3})});
  std::vector<Record> out1 = RunRat(f1, in);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].field(0).AsInt(), 2);
  EXPECT_EQ(out1[0].field(1).AsInt(), 3);

  Record pos({Value(int64_t{2}), Value(int64_t{3})});
  std::vector<Record> out2 = RunRat(f1, pos);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].field(1).AsInt(), 3);
}

TEST(Interp, FilterEmitsNothingForNegative) {
  FunctionBuilder b("f2", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Label skip = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(a, b.ConstInt(0)), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  tac::Function f2 = MustBuild(std::move(b));

  EXPECT_EQ(RunRat(f2, Record({Value(int64_t{-2}), Value(int64_t{1})})).size(),
            0u);
  EXPECT_EQ(RunRat(f2, Record({Value(int64_t{2}), Value(int64_t{1})})).size(),
            1u);
}

TEST(Interp, ArithmeticIntAndDouble) {
  FunctionBuilder b("math", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg x = b.GetField(ir, 0);
  Reg y = b.GetField(ir, 1);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 2, b.Add(x, y));
  b.SetField(orec, 3, b.Mul(x, y));
  b.SetField(orec, 4, b.Div(x, y));
  b.SetField(orec, 5, b.Mod(x, y));
  b.Emit(orec);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));
  std::vector<Record> res =
      RunRat(fn, Record({Value(int64_t{7}), Value(int64_t{2})}));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].field(2).AsInt(), 9);
  EXPECT_EQ(res[0].field(3).AsInt(), 14);
  EXPECT_EQ(res[0].field(4).AsInt(), 3);
  EXPECT_EQ(res[0].field(5).AsInt(), 1);
}

TEST(Interp, DivisionByZeroYieldsZeroNotCrash) {
  FunctionBuilder b("div0", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg x = b.GetField(ir, 0);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 1, b.Div(x, b.ConstInt(0)));
  b.Emit(orec);
  b.Return();
  std::vector<Record> res =
      RunRat(MustBuild(std::move(b)), Record({Value(int64_t{5})}));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].field(1).AsInt(), 0);
}

TEST(Interp, StringOps) {
  FunctionBuilder b("strs", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg s = b.GetField(ir, 0);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 1, b.StrLen(s));
  b.SetField(orec, 2, b.StrContains(s, b.ConstStr("gene")));
  b.SetField(orec, 3, b.StrConcat(s, b.ConstStr("!")));
  b.Emit(orec);
  b.Return();
  std::vector<Record> res = RunRat(MustBuild(std::move(b)),
                                   Record({Value(std::string("a gene b"))}));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].field(1).AsInt(), 8);
  EXPECT_EQ(res[0].field(2).AsInt(), 1);
  EXPECT_EQ(res[0].field(3).AsString(), "a gene b!");
}

TEST(Interp, KatLoopSumsGroup) {
  FunctionBuilder b("sum", 1, UdfKind::kKat);
  Reg n = b.InputCount(0);
  Reg i = b.ConstInt(0);
  Reg sum = b.ConstInt(0);
  Label loop = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(loop);
  b.BranchIfFalse(b.CmpLt(i, n), done);
  Reg r = b.InputAt(0, i);
  b.AccumAdd(sum, b.GetField(r, 1));
  b.AccumAdd(i, b.ConstInt(1));
  b.Goto(loop);
  b.Bind(done);
  Reg orec = b.Copy(b.InputAt(0, b.ConstInt(0)));
  b.SetField(orec, 2, sum);
  b.Emit(orec);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));

  Record a({Value(int64_t{1}), Value(int64_t{10})});
  Record bb({Value(int64_t{1}), Value(int64_t{32})});
  Interpreter interp(&fn);
  CallInputs ci;
  ci.groups = {{&a, &bb}};
  std::vector<Record> out;
  ASSERT_TRUE(interp.Run(ci, {}, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].field(2).AsInt(), 42);
}

TEST(Interp, FieldTranslationRedirectsAccesses) {
  // The UDF reads local field 0 and writes local field 1; the redirection
  // map places them at global positions 3 and 5 of a width-6 global record.
  FunctionBuilder b("redirect", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg v = b.GetField(ir, 0);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 1, b.Add(v, b.ConstInt(1)));
  b.Emit(orec);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));

  FieldTranslation t;
  t.global_width = 6;
  t.input_maps = {{3, 5}};
  t.output_map = {3, 5};

  Record wide;
  wide.SetField(5, Value::Null());
  wide.SetField(3, Value(int64_t{41}));
  std::vector<Record> res = RunRat(fn, wide, t);
  ASSERT_EQ(res.size(), 1u);
  ASSERT_EQ(res[0].num_fields(), 6u);
  EXPECT_EQ(res[0].field(5).AsInt(), 42);
  EXPECT_EQ(res[0].field(3).AsInt(), 41);
}

TEST(Interp, ConcatMergesByOwnedPositions) {
  FunctionBuilder b("join", 2, UdfKind::kRat);
  Reg l = b.InputRecord(0);
  Reg r = b.InputRecord(1);
  b.Emit(b.Concat(l, r));
  b.Return();
  tac::Function fn = MustBuild(std::move(b));

  FieldTranslation t;
  t.global_width = 4;
  t.input_maps = {{0, 1}, {2, 3}};
  t.output_map = {0, 1, 2, 3};
  t.concat_positions = {{0, 1}, {2, 3}};

  Record left;
  left.SetField(3, Value::Null());
  left.SetField(0, Value(int64_t{1}));
  left.SetField(1, Value(int64_t{2}));
  Record right;
  right.SetField(3, Value(int64_t{4}));
  right.SetField(2, Value(int64_t{3}));

  Interpreter interp(&fn);
  CallInputs ci;
  ci.groups = {{&left}, {&right}};
  std::vector<Record> out;
  ASSERT_TRUE(interp.Run(ci, t, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].field(0).AsInt(), 1);
  EXPECT_EQ(out[0].field(1).AsInt(), 2);
  EXPECT_EQ(out[0].field(2).AsInt(), 3);
  EXPECT_EQ(out[0].field(3).AsInt(), 4);
}

TEST(Interp, RunBatchMatchesPerRecordRun) {
  // A filter+expand UDF under a non-trivial translation: batch execution
  // must emit exactly what record-at-a-time execution emits, with the same
  // accumulated stats (the determinism contract for fused chains).
  FunctionBuilder b("fe", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg v = b.GetField(ir, 0);
  Label skip = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(v, b.ConstInt(0)), skip);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 1, b.Add(v, b.ConstInt(1)));
  b.Emit(orec);
  b.Emit(orec);  // expands: two emits per surviving record
  b.Bind(skip);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));

  FieldTranslation t;
  t.global_width = 4;
  t.input_maps = {{2, 3}};
  t.output_map = {2, 3};

  std::vector<Record> in;
  for (int64_t i = -3; i < 5; ++i) {
    Record wide;
    wide.SetField(3, Value::Null());
    wide.SetField(2, Value(i));
    in.push_back(std::move(wide));
  }

  Interpreter interp(&fn);
  RunStats batch_stats;
  std::vector<Record> out;
  ASSERT_TRUE(interp.RunBatch(in, t, &out, &batch_stats).ok());

  std::vector<Record> expected;
  RunStats serial_stats;
  for (const Record& r : in) {
    CallInputs ci;
    ci.groups = {{&r}};
    ASSERT_TRUE(interp.Run(ci, t, &expected, &serial_stats).ok());
  }
  ASSERT_EQ(out.size(), expected.size());
  EXPECT_EQ(out.size(), 10u);  // 5 surviving records × 2 emits
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << "record " << i;
  }
  EXPECT_EQ(batch_stats.instructions, serial_stats.instructions);
  EXPECT_EQ(batch_stats.emits, serial_stats.emits);
}

TEST(Interp, RunBatchResetsWorkspaceBetweenRecords) {
  // The UDF writes a register only on some records and emits a fresh output
  // record built from it. If RunBatch leaked register or record-slot state
  // across records, the "else" path would see the previous record's values.
  FunctionBuilder b("leak", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg v = b.GetField(ir, 0);
  Reg orec = b.NewRecord();
  Label small = b.NewLabel();
  b.BranchIfFalse(b.CmpGe(v, b.ConstInt(10)), small);
  b.SetField(orec, 0, b.Add(v, b.ConstInt(100)));
  b.Bind(small);
  b.SetField(orec, 1, v);
  b.Emit(orec);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));

  std::vector<Record> in;
  in.push_back(Record({Value(int64_t{42})}));  // takes the >= 10 path
  in.push_back(Record({Value(int64_t{1})}));   // must NOT inherit field 0
  Interpreter interp(&fn);
  std::vector<Record> out;
  ASSERT_TRUE(interp.RunBatch(in, {}, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].field(0).AsInt(), 142);
  EXPECT_TRUE(out[1].field(0).is_null())
      << "workspace leaked across batch records: " << out[1].ToString();
  EXPECT_EQ(out[1].field(1).AsInt(), 1);
}

TEST(Interp, RunBatchOnEmptyBatchIsNoOp) {
  FunctionBuilder b("id", 1, UdfKind::kRat);
  b.Emit(b.Copy(b.InputRecord(0)));
  b.Return();
  tac::Function fn = MustBuild(std::move(b));
  Interpreter interp(&fn);
  std::vector<Record> in, out;
  RunStats rs;
  ASSERT_TRUE(interp.RunBatch(in, {}, &out, &rs).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rs.instructions, 0);
}

TEST(Interp, InfiniteLoopHitsStepLimit) {
  FunctionBuilder b("spin", 1, UdfKind::kRat);
  Label loop = b.NewLabel();
  b.Bind(loop);
  b.Goto(loop);
  tac::Function fn = MustBuild(std::move(b));
  Interpreter interp(&fn);
  Record in({Value(int64_t{1})});
  CallInputs ci;
  ci.groups = {{&in}};
  std::vector<Record> out;
  Status s = interp.Run(ci, {}, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

TEST(Interp, CpuBurnIsMetered) {
  FunctionBuilder b("burn", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  b.CpuBurn(123);
  b.Emit(b.Copy(ir));
  b.Return();
  tac::Function fn = MustBuild(std::move(b));
  Interpreter interp(&fn);
  Record in({Value(int64_t{1})});
  CallInputs ci;
  ci.groups = {{&in}};
  std::vector<Record> out;
  RunStats rs;
  ASSERT_TRUE(interp.Run(ci, {}, &out, &rs).ok());
  EXPECT_EQ(rs.cpu_burn_units, 123);
  EXPECT_EQ(rs.emits, 1);
}

TEST(Interp, DynamicFieldIndexReadsAtRuntime) {
  FunctionBuilder b("dyn", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg sel = b.GetField(ir, 0);  // selects which field to read
  Reg v = b.GetFieldDyn(ir, sel);
  Reg orec = b.Copy(ir);
  b.SetField(orec, 3, v);
  b.Emit(orec);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));
  std::vector<Record> res = RunRat(
      fn, Record({Value(int64_t{2}), Value(int64_t{7}), Value(int64_t{9})}));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].field(3).AsInt(), 9);  // field[field[0]] == field[2]
}

}  // namespace
}  // namespace interp
}  // namespace blackbox
