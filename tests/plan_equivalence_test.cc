// Differential plan-equivalence oracle (the safety net for the widened §7.1
// physical plan space AND the streaming data plane): enumerate the full
// reordering closure of each seed workload, execute EVERY costed alternative
// — whatever mix of ship strategies, hash vs sort-merge joins, sort-group vs
// combiner Reduces the physical optimizer picked for it — in fused-chain
// mode and in --no-chain mode, at 1 and at 8 worker threads, plus a
// data-skipping-off pass and a chain-specialization-off pass, and assert:
//   * the sorted sink output is byte-identical to the original plan's in
//     every (mode, threads, skipping, specialization) combination, and
//   * the network meter and the accounted disk traffic
//     (disk_bytes + skipped_spill_bytes) of each alternative are identical
//     across all combinations (fusion may only move peak_bytes; skipping
//     may only move read-back bytes into the skipped meter; specialization
//     may only drop interp_instructions — on the Map-chain-dominated
//     text-mining closure it must drop them by >= 2x on every rank).
//
// Registered under the `differential` ctest label with its own timeout (see
// CMakeLists.txt); CI runs it in the ASan/UBSan job as well.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "api/pipeline.h"
#include "engine/executor.h"
#include "reorder/plan.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using optimizer::LocalStrategy;
using optimizer::PhysicalNode;

/// Canonical byte string of a sink output: records sorted, then serialized.
/// Two plans are judged equivalent iff these strings are identical — bag
/// equality expressed as byte equality, per the determinism contract.
std::string SortedOutputBytes(const DataSet& ds) {
  std::vector<Record> sorted = ds.records();
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Record& r : sorted) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

void CountStrategies(const PhysicalNode& n, int* merge_joins, int* combiners) {
  if (n.local == LocalStrategy::kSortMergeJoin) ++*merge_joins;
  if (n.local == LocalStrategy::kPreAggregate) ++*combiners;
  for (const auto& c : n.children) CountStrategies(*c, merge_joins, combiners);
}

struct AltMeters {
  int64_t network_bytes = 0;
  int64_t disk_bytes = 0;
  int64_t skipped_spill_bytes = 0;
  int64_t interp_instructions = 0;
};

struct ClosureStats {
  size_t alternatives = 0;
  int merge_join_plans = 0;  // executed plans containing a sort-merge join
  int combiner_plans = 0;    // executed plans containing a combiner
  std::vector<AltMeters> meters;  // per executed rank, in ranked order
};

/// Optimizes `w` at the given worker-thread count and chain mode, executes
/// every ranked alternative, and asserts each one's sorted sink bytes equal
/// `*reference` (filling it from the original plan on first use).
ClosureStats RunClosure(const workloads::Workload& w,
                        const api::AnnotationProvider& provider, int threads,
                        bool fuse_chains, std::string* reference,
                        bool data_skipping = true, bool specialize = true) {
  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 1 << 20;
  options.exec.num_threads = threads;
  options.exec.fuse_chains = fuse_chains;
  options.exec.enable_data_skipping = data_skipping;
  // Exec-level toggle only: the cost weights keep their defaults so every
  // combination optimizes over the identical ranked plan set.
  options.exec.enable_chain_specialization = specialize;
  // Differential execution is linear in the closure size; the cap keeps the
  // oracle tractable if a workload's plan space ever explodes.
  options.enum_options.max_plans = 512;
  // The oracle quantifies over the FULL closure, and each (threads, chain)
  // combination must be an independent optimization, not a cache alias.
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  ClosureStats stats;
  if (!program.ok()) {
    ADD_FAILURE() << w.name << ": optimize failed: "
                  << program.status().ToString();
    return stats;
  }
  // A truncated closure would silently degrade the oracle to a partial
  // check; if a workload ever outgrows the cap, raise it deliberately.
  EXPECT_FALSE(program->truncated())
      << w.name << ": closure truncated at max_plans — oracle is partial";
  stats.alternatives = program->ranked().size();

  // The reference output is the *original* (implemented) plan's, which is
  // what the paper's semantics promise every reordering preserves.
  int original = program->ImplementedIndex();
  if (original < 0) {
    ADD_FAILURE() << w.name << ": original plan missing from closure";
    return stats;
  }
  if (reference->empty()) {
    StatusOr<DataSet> ref = program->Run(static_cast<size_t>(original));
    if (!ref.ok() || ref->empty()) {
      ADD_FAILURE() << w.name << ": reference run failed or empty: "
                    << ref.status().ToString();
      return stats;
    }
    *reference = SortedOutputBytes(*ref);
  }

  for (size_t i = 0; i < program->ranked().size(); ++i) {
    const core::PlannedAlternative& alt = program->ranked()[i];
    int merge = 0, comb = 0;
    CountStrategies(*alt.physical.root, &merge, &comb);
    if (merge > 0) ++stats.merge_join_plans;
    if (comb > 0) ++stats.combiner_plans;

    engine::ExecStats run_stats;
    StatusOr<DataSet> out = program->Run(i, &run_stats);
    if (!out.ok()) {
      ADD_FAILURE() << w.name << " rank " << alt.rank << ": "
                    << out.status().ToString();
      return stats;
    }
    stats.meters.push_back({run_stats.network_bytes, run_stats.disk_bytes,
                            run_stats.skipped_spill_bytes,
                            run_stats.interp_instructions});
    EXPECT_EQ(SortedOutputBytes(*out), *reference)
        << w.name << " rank " << alt.rank << " at " << threads
        << " thread(s), " << (fuse_chains ? "fused" : "no-chain")
        << " diverges from the original plan.\nlogical: "
        << reorder::PlanToString(alt.logical, w.flow)
        << "physical:\n" << alt.physical.ToString(w.flow);
    if (::testing::Test::HasFailure()) break;  // one dump is enough
  }
  return stats;
}

/// Runs the closure in all four (threads, chain-mode) combinations plus a
/// data-skipping-off pass against one shared reference output and asserts
/// the per-alternative network/disk meters are identical in every
/// combination — fusion and thread count may move wall time and peak_bytes,
/// never the byte meters. The disk invariant across chain modes is
/// disk_bytes + skipped_spill_bytes: fusion changes which batch boundaries
/// a join's run-skipping predicate sees, so the split between "read back"
/// and "provably skippable" may shift, while their sum (the traffic a
/// skipping-off run measures as disk_bytes alone) cannot.
struct ModeMatrix {
  ClosureStats serial_fused;
  ClosureStats parallel_fused;
  ClosureStats serial_unfused;
  ClosureStats parallel_unfused;
  ClosureStats serial_noskip;
  ClosureStats serial_nospec;
};

/// `min_instr_ratio` > 0 additionally asserts, per rank, that disabling
/// chain specialization multiplies interp_instructions by at least that
/// factor — the tentpole acceptance bar (2x) on the text-mining closure,
/// where every alternative is dominated by the fusable Map chain.
ModeMatrix RunAllModes(const workloads::Workload& w,
                       const api::AnnotationProvider& provider,
                       std::string* reference,
                       double min_instr_ratio = 0.0) {
  ModeMatrix m;
  m.serial_fused = RunClosure(w, provider, 1, /*fuse=*/true, reference);
  if (::testing::Test::HasFailure()) return m;
  m.parallel_fused = RunClosure(w, provider, 8, /*fuse=*/true, reference);
  if (::testing::Test::HasFailure()) return m;
  m.serial_unfused = RunClosure(w, provider, 1, /*fuse=*/false, reference);
  if (::testing::Test::HasFailure()) return m;
  m.parallel_unfused = RunClosure(w, provider, 8, /*fuse=*/false, reference);
  if (::testing::Test::HasFailure()) return m;
  m.serial_noskip = RunClosure(w, provider, 1, /*fuse=*/true, reference,
                               /*data_skipping=*/false);
  if (::testing::Test::HasFailure()) return m;
  m.serial_nospec = RunClosure(w, provider, 1, /*fuse=*/true, reference,
                               /*data_skipping=*/true, /*specialize=*/false);
  if (::testing::Test::HasFailure()) return m;

  EXPECT_EQ(m.serial_fused.alternatives, m.parallel_fused.alternatives);
  EXPECT_EQ(m.serial_fused.alternatives, m.serial_unfused.alternatives);
  EXPECT_EQ(m.serial_fused.alternatives, m.parallel_unfused.alternatives);
  EXPECT_EQ(m.serial_fused.alternatives, m.serial_noskip.alternatives);
  EXPECT_EQ(m.serial_fused.alternatives, m.serial_nospec.alternatives);
  EXPECT_EQ(m.serial_fused.meters.size(), m.serial_unfused.meters.size());
  EXPECT_EQ(m.serial_fused.meters.size(), m.serial_noskip.meters.size());
  EXPECT_EQ(m.serial_fused.meters.size(), m.serial_nospec.meters.size());
  if (::testing::Test::HasFailure()) return m;
  for (size_t i = 0; i < m.serial_fused.meters.size(); ++i) {
    const AltMeters& base = m.serial_fused.meters[i];
    for (const ClosureStats* other :
         {&m.parallel_fused, &m.serial_unfused, &m.parallel_unfused,
          &m.serial_noskip, &m.serial_nospec}) {
      EXPECT_EQ(base.network_bytes, other->meters[i].network_bytes)
          << w.name << " rank index " << i << ": network meter diverges";
      EXPECT_EQ(base.disk_bytes + base.skipped_spill_bytes,
                other->meters[i].disk_bytes +
                    other->meters[i].skipped_spill_bytes)
          << w.name << " rank index " << i
          << ": accounted disk traffic diverges";
    }
    // Skipping off must meter zero skipped bytes — its disk_bytes alone IS
    // the accounted traffic every skipping-on mode must reproduce.
    EXPECT_EQ(m.serial_noskip.meters[i].skipped_spill_bytes, 0)
        << w.name << " rank index " << i;
    if (min_instr_ratio > 0.0) {
      EXPECT_GE(static_cast<double>(m.serial_nospec.meters[i].interp_instructions),
                min_instr_ratio *
                    static_cast<double>(base.interp_instructions))
          << w.name << " rank index " << i
          << ": specialization fell below the " << min_instr_ratio
          << "x instruction-reduction bar";
    }
  }
  return m;
}

// The anytime ranked search must land on the same best-plan cost as the
// exhaustive closure for every seed workload — the cheap, execution-free
// half of the ranked-search acceptance bar (the randomized differential in
// enum_random_chain_test covers arbitrary chains).
TEST(PlanEquivalence, RankedSearchMatchesClosureBestCost) {
  api::ScaProvider sca;
  for (const workloads::Workload& w :
       {workloads::MakeTpchQ7({.suppliers = 20,
                               .customers = 80,
                               .orders = 400,
                               .lineitems = 2000}),
        workloads::MakeTextMining({.documents = 200}),
        workloads::MakeClickstream({.sessions = 200})}) {
    api::OptimizeOptions closure_opts;
    closure_opts.search = core::SearchMode::kClosure;
    closure_opts.use_plan_cache = false;
    StatusOr<api::OptimizedProgram> closure =
        api::OptimizeFlow(w.flow, sca, closure_opts);
    ASSERT_TRUE(closure.ok()) << w.name << ": "
                              << closure.status().ToString();

    api::OptimizeOptions ranked_opts;
    ranked_opts.search = core::SearchMode::kRanked;
    ranked_opts.use_plan_cache = false;
    StatusOr<api::OptimizedProgram> ranked =
        api::OptimizeFlow(w.flow, sca, ranked_opts);
    ASSERT_TRUE(ranked.ok()) << w.name << ": " << ranked.status().ToString();

    EXPECT_DOUBLE_EQ(closure->best().cost, ranked->best().cost)
        << w.name << ": ranked top-1 missed the closure best cost";
    EXPECT_EQ(reorder::CanonicalString(closure->best().logical),
              reorder::CanonicalString(ranked->best().logical))
        << w.name << ": ranked top-1 picked a different logical plan";
    EXPECT_LE(ranked->plans_enumerated(), closure->plans_enumerated())
        << w.name << ": ranked search costed more plans than the closure";
  }
}

TEST(PlanEquivalence, TpchQ7ClosureIsByteIdenticalAndCoversCombiner) {
  workloads::TpchScale scale;
  // Enough lineitems that γ's input comfortably exceeds nations²·dop, so
  // combiner plans actually win their slot in the costed closure; few
  // nations so the NATION3/NATION7 pair filter keeps a non-trivial output.
  scale.lineitems = 8000;
  scale.orders = 800;
  scale.customers = 120;
  scale.suppliers = 20;
  scale.nations = 8;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  std::string reference;
  ModeMatrix m = RunAllModes(w, sca, &reference);
  if (::testing::Test::HasFailure()) return;
  // The widened plan space must actually exercise the combiner.
  EXPECT_GT(m.serial_fused.combiner_plans, 0)
      << "no enumerated Q7 alternative chose a combiner plan";
  EXPECT_EQ(m.serial_fused.combiner_plans, m.parallel_fused.combiner_plans);
  EXPECT_EQ(m.serial_fused.combiner_plans, m.serial_unfused.combiner_plans);
}

TEST(PlanEquivalence, TextMiningClosureIsByteIdentical) {
  workloads::TextMiningScale scale;
  scale.documents = 800;
  workloads::Workload w = workloads::MakeTextMining(scale);
  api::ScaProvider sca;
  std::string reference;
  // The Map-chain-dominated workload carries the specialization bar: every
  // ranked alternative must run >= 2x fewer interp instructions specialized.
  ModeMatrix m = RunAllModes(w, sca, &reference, /*min_instr_ratio=*/2.0);
  if (::testing::Test::HasFailure()) return;
  EXPECT_GT(m.serial_fused.alternatives, 1u);
}

TEST(PlanEquivalence, ClickstreamClosureIsByteIdenticalAndCoversMergeJoin) {
  workloads::ClickstreamScale scale;
  scale.sessions = 600;
  scale.users = 80;
  workloads::Workload w = workloads::MakeClickstream(scale);
  // Manual annotations: SCA must treat the computed-index UDF conservatively,
  // which shrinks the clickstream plan space to the original plan only.
  api::ManualProvider manual;
  std::string reference;
  ModeMatrix m = RunAllModes(w, manual, &reference);
  if (::testing::Test::HasFailure()) return;
  // The widened plan space must actually exercise the sort-merge join.
  EXPECT_GT(m.serial_fused.merge_join_plans, 0)
      << "no enumerated clickstream alternative chose a sort-merge-join plan";
  EXPECT_EQ(m.serial_fused.merge_join_plans,
            m.parallel_fused.merge_join_plans);
}

}  // namespace
}  // namespace blackbox
