// Execution engine tests: the Section 3 example end to end, byte metering of
// shipping strategies, and estimate-vs-measured sanity.

#include "engine/executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer_api.h"
#include "tests/test_flows.h"

namespace blackbox {
namespace engine {
namespace {

using core::BlackBoxOptimizer;
using dataflow::AnnotationMode;

TEST(Engine, Section3FlowComputesExpectedOutput) {
  dataflow::DataFlow flow = testing::MakeSection3Flow();
  DataSet data = testing::MakeSection3Data();

  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExecOptions eo;
  eo.dop = 3;
  Executor exec(&result->annotated, eo);
  exec.BindSource(0, &data);

  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Input: (2,-3) -> (5,3); (-2,-3) filtered; (5,1) -> (6,1);
  // (0,0) -> (0,0); (-7,4) filtered.
  DataSet expected;
  expected.Add(Record({Value(int64_t{5}), Value(int64_t{3})}));
  expected.Add(Record({Value(int64_t{6}), Value(int64_t{1})}));
  expected.Add(Record({Value(int64_t{0}), Value(int64_t{0})}));
  EXPECT_TRUE(out->BagEquals(expected)) << out->ToString();
}

TEST(Engine, AllSection3AlternativesAgree) {
  dataflow::DataFlow flow = testing::MakeSection3Flow();
  DataSet data = testing::MakeSection3Data();
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->ranked.size(), 2u);

  Executor exec(&result->annotated);
  exec.BindSource(0, &data);
  StatusOr<DataSet> a = exec.Execute(result->ranked[0].physical);
  StatusOr<DataSet> b = exec.Execute(result->ranked[1].physical);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->BagEquals(*b));
}

TEST(Engine, StatsAreMetered) {
  dataflow::DataFlow flow = testing::MakeSection422Flow();
  DataSet data;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    data.Add(Record({Value(rng.Uniform(0, 20)), Value(rng.Uniform(0, 50))}));
  }
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok());

  ExecOptions eo;
  eo.dop = 4;
  Executor exec(&result->annotated, eo);
  exec.BindSource(0, &data);
  ExecStats stats;
  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical, &stats);
  ASSERT_TRUE(out.ok());
  // The Reduce repartitions by key: bytes must cross instances.
  EXPECT_GT(stats.network_bytes, 0);
  EXPECT_GT(stats.udf_calls, 0);
  EXPECT_GT(stats.records_processed, 0);
  EXPECT_EQ(stats.output_rows, static_cast<int64_t>(out->size()));
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(Engine, MissingSourceBindingFails) {
  dataflow::DataFlow flow = testing::MakeSection3Flow();
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok());
  Executor exec(&result->annotated);
  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), Status::Code::kInvalidArgument);
}

TEST(Engine, DopOneAndManyProduceSameResult) {
  dataflow::DataFlow flow = testing::MakeSection422Flow();
  DataSet data;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    data.Add(Record({Value(rng.Uniform(0, 10)), Value(rng.Uniform(0, 9))}));
  }
  BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok());

  StatusOr<DataSet> out1 = [&] {
    ExecOptions eo;
    eo.dop = 1;
    Executor exec(&result->annotated, eo);
    exec.BindSource(0, &data);
    return exec.Execute(result->ranked[0].physical);
  }();
  StatusOr<DataSet> out8 = [&] {
    ExecOptions eo;
    eo.dop = 8;
    Executor exec(&result->annotated, eo);
    exec.BindSource(0, &data);
    return exec.Execute(result->ranked[0].physical);
  }();
  ASSERT_TRUE(out1.ok());
  ASSERT_TRUE(out8.ok());
  EXPECT_TRUE(out1->BagEquals(*out8));
}

}  // namespace
}  // namespace engine
}  // namespace blackbox
