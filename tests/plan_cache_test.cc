// Tests for the process-wide plan cache (DESIGN.md §3.4): key construction
// (shape + annotation digest + resolved knobs), hit/miss/bypass accounting,
// LRU eviction, the api-layer wiring (cache-hit programs skip annotation and
// enumeration but execute byte-identically), and the ranked-search option
// validation that guards the cache key's search segment.

#include <gtest/gtest.h>

#include <string>

#include "api/optimized_program.h"
#include "api/pipeline.h"
#include "dataflow/annotate.h"
#include "optimizer/plan_cache.h"
#include "reorder/plan.h"
#include "tests/test_flows.h"
#include "workloads/clickstream.h"

namespace blackbox {
namespace {

using optimizer::PlanCache;
using optimizer::PlanCacheKey;
using optimizer::PlanCacheStats;

/// Every test starts from an empty global cache — the cache is process-wide
/// state and other suites in this binary use it too.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { PlanCache::Global().Clear(); }
};

std::string DefaultKey(const dataflow::DataFlow& flow) {
  return PlanCacheKey(flow, "sca", optimizer::CostWeights{},
                      enumerate::EnumOptions{}, /*search_mode=*/0,
                      /*top_k=*/8, /*cost_epsilon=*/0);
}

/// Order-sensitive serialization: cache-hit and cold programs must agree on
/// the exact record sequence, not just the bag.
std::string OutputBytes(const DataSet& ds) {
  std::string out;
  for (size_t i = 0; i < ds.size(); ++i) {
    out += ds.record(i).ToString();
    out += '\n';
  }
  return out;
}

// --- Key construction -------------------------------------------------------

TEST_F(PlanCacheTest, IdenticalFlowsProduceIdenticalKeys) {
  dataflow::DataFlow a = testing::MakeSection3Flow();
  dataflow::DataFlow b = testing::MakeSection3Flow();
  EXPECT_EQ(DefaultKey(a), DefaultKey(b));
}

TEST_F(PlanCacheTest, HintChangesTheKey) {
  dataflow::DataFlow a = testing::MakeSection3Flow();
  dataflow::DataFlow b = testing::MakeSection3Flow();
  b.op(1).hints.selectivity = 0.25;
  EXPECT_NE(DefaultKey(a), DefaultKey(b));
}

TEST_F(PlanCacheTest, UdfCodeChangesTheKey) {
  // Same shape, same names, same keys — only the UDF body differs. The TAC
  // digest must catch it: this is the "black box opened" invalidation.
  dataflow::DataFlow a = testing::MakeSection3Flow();
  dataflow::DataFlow b = testing::MakeSection3Flow();
  b.op(2).udf = testing::MakeAbsUdf();  // was the filter UDF
  EXPECT_NE(DefaultKey(a), DefaultKey(b));
}

TEST_F(PlanCacheTest, ProviderWeightsAndSearchKnobsChangeTheKey) {
  dataflow::DataFlow flow = testing::MakeSection3Flow();
  const std::string base = DefaultKey(flow);

  EXPECT_NE(base, PlanCacheKey(flow, "manual", optimizer::CostWeights{},
                               enumerate::EnumOptions{}, 0, 8, 0));

  optimizer::CostWeights heavy_net;
  heavy_net.net_per_byte = heavy_net.net_per_byte * 2;
  EXPECT_NE(base, PlanCacheKey(flow, "sca", heavy_net,
                               enumerate::EnumOptions{}, 0, 8, 0));

  optimizer::CostWeights no_combiner;
  no_combiner.enable_combiner = false;
  EXPECT_NE(base, PlanCacheKey(flow, "sca", no_combiner,
                               enumerate::EnumOptions{}, 0, 8, 0));

  enumerate::EnumOptions small;
  small.max_plans = 7;
  EXPECT_NE(base, PlanCacheKey(flow, "sca", optimizer::CostWeights{}, small,
                               0, 8, 0));

  EXPECT_NE(base, PlanCacheKey(flow, "sca", optimizer::CostWeights{},
                               enumerate::EnumOptions{}, 1, 8, 0));
  EXPECT_NE(base, PlanCacheKey(flow, "sca", optimizer::CostWeights{},
                               enumerate::EnumOptions{}, 0, 4, 0));
  EXPECT_NE(base, PlanCacheKey(flow, "sca", optimizer::CostWeights{},
                               enumerate::EnumOptions{}, 0, 8, 0.5));
}

// --- LRU cache mechanics ----------------------------------------------------

class Payload : public optimizer::PlanCacheValue {
 public:
  explicit Payload(int id) : id(id) {}
  int id;
};

TEST_F(PlanCacheTest, LruEvictsOldestAndRefreshesOnLookup) {
  PlanCache cache(/*capacity=*/2);
  cache.Insert("a", std::make_shared<Payload>(1));
  cache.Insert("b", std::make_shared<Payload>(2));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refreshes "a"; "b" is now LRU
  cache.Insert("c", std::make_shared<Payload>(3));
  EXPECT_EQ(cache.Lookup("b"), nullptr) << "LRU entry was not evicted";
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // A handed-out payload survives eviction of its entry (shared ownership).
  std::shared_ptr<const optimizer::PlanCacheValue> held = cache.Lookup("a");
  cache.Insert("d", std::make_shared<Payload>(4));
  cache.Insert("e", std::make_shared<Payload>(5));
  EXPECT_EQ(static_cast<const Payload&>(*held).id, 1);
}

// --- api-layer wiring -------------------------------------------------------

TEST_F(PlanCacheTest, SecondOptimizeIsAHitAndSkipsTheOptimizer) {
  workloads::ClickstreamScale scale;
  scale.sessions = 200;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::ScaProvider sca;

  StatusOr<api::OptimizedProgram> cold = api::OptimizeFlow(w.flow, sca);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->from_plan_cache());
  PlanCacheStats after_cold = PlanCache::Global().stats();
  EXPECT_EQ(after_cold.misses, 1u);
  EXPECT_EQ(after_cold.entries, 1u);

  StatusOr<api::OptimizedProgram> warm = api::OptimizeFlow(w.flow, sca);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->from_plan_cache());
  EXPECT_EQ(PlanCache::Global().stats().hits, 1u);

  // The hit aliases the cold result wholesale: same plans, same counters
  // (SCA + enumeration + costing all skipped, nothing re-derived).
  ASSERT_EQ(warm->ranked().size(), cold->ranked().size());
  for (size_t i = 0; i < cold->ranked().size(); ++i) {
    EXPECT_EQ(reorder::CanonicalString(warm->ranked()[i].logical),
              reorder::CanonicalString(cold->ranked()[i].logical));
    EXPECT_DOUBLE_EQ(warm->ranked()[i].cost, cold->ranked()[i].cost);
  }
  EXPECT_EQ(warm->plans_enumerated(), cold->plans_enumerated());
  EXPECT_EQ(&warm->annotated(), &cold->annotated())
      << "a hit must share the cold optimization's result, not copy it";
}

TEST_F(PlanCacheTest, CacheHitExecutesByteIdenticalToCold) {
  api::Pipeline build_a, build_b;
  std::string bytes[2];
  int i = 0;
  DataSet data = testing::MakeSection3Data();
  for (api::Pipeline* p : {&build_a, &build_b}) {
    api::Stream src = p->Source("I", 2, {.rows = 1000, .avg_bytes = 18});
    src.Map("map1_abs", testing::MakeAbsUdf())
        .Map("map2_filter", testing::MakeFilterNonNegUdf())
        .Map("map3_sum", testing::MakeSumUdf())
        .Sink("O");
    StatusOr<api::OptimizedProgram> program = p->Optimize();
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_EQ(program->from_plan_cache(), i == 1)
        << "second, identical pipeline must hit the first's entry";
    ASSERT_TRUE(program->BindSource(src, &data).ok());
    StatusOr<DataSet> out = program->RunBest();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    bytes[i++] = OutputBytes(*out);
  }
  EXPECT_EQ(bytes[0], bytes[1])
      << "cache-hit program produced different output than the cold one";
}

TEST_F(PlanCacheTest, DifferentHintsMissTheCache) {
  api::Pipeline a, b;
  dataflow::Hints filter_hints;
  filter_hints.selectivity = 0.5;
  for (api::Pipeline* p : {&a, &b}) {
    api::Stream src = p->Source("I", 2, {.rows = 1000, .avg_bytes = 18});
    auto chain = src.Map("map1_abs", testing::MakeAbsUdf());
    if (p == &b) {
      chain = chain.Map("map2_filter", testing::MakeFilterNonNegUdf(),
                        {.hints = filter_hints});
    } else {
      chain = chain.Map("map2_filter", testing::MakeFilterNonNegUdf());
    }
    chain.Sink("O");
    StatusOr<api::OptimizedProgram> program = p->Optimize();
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_FALSE(program->from_plan_cache());
  }
  EXPECT_EQ(PlanCache::Global().stats().misses, 2u);
}

TEST_F(PlanCacheTest, ProfilerProviderBypassesTheCache) {
  // Profiled hints are measured from bound data: serving another dataset a
  // cached plan ranked for this one would be wrong, so the provider's
  // deterministic() == false must route around the cache entirely.
  workloads::ClickstreamScale scale;
  scale.sessions = 120;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  api::ProfilerProvider profiler;
  for (int round = 0; round < 2; ++round) {
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(w.flow, profiler, {}, sources);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_FALSE(program->from_plan_cache());
  }
  PlanCacheStats stats = PlanCache::Global().stats();
  EXPECT_EQ(stats.bypasses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(PlanCacheTest, DisabledCacheNeitherHitsNorCounts) {
  workloads::ClickstreamScale scale;
  scale.sessions = 120;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::ScaProvider sca;
  api::OptimizeOptions options;
  options.use_plan_cache = false;
  for (int round = 0; round < 2; ++round) {
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(w.flow, sca, options);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_FALSE(program->from_plan_cache());
  }
  PlanCacheStats stats = PlanCache::Global().stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.bypasses + stats.entries, 0u);
}

// --- Ranked-search option validation ---------------------------------------

TEST_F(PlanCacheTest, InvalidSearchBudgetsAreRejected) {
  workloads::ClickstreamScale scale;
  scale.sessions = 120;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::ScaProvider sca;
  for (int bad_top_k : {0, -3}) {
    api::OptimizeOptions options;
    options.top_k = bad_top_k;
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(w.flow, sca, options);
    ASSERT_FALSE(program.ok()) << "top_k = " << bad_top_k;
    EXPECT_EQ(program.status().code(), Status::Code::kInvalidArgument);
  }
  api::OptimizeOptions options;
  options.cost_epsilon = -0.25;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, sca, options);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), Status::Code::kInvalidArgument);
  // Nothing was inserted on the rejected paths.
  EXPECT_EQ(PlanCache::Global().stats().entries, 0u);
}

}  // namespace
}  // namespace blackbox
