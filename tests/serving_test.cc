// Tests for the serving subsystem (DESIGN.md §2.4): the hierarchical
// BudgetPool, budget edge cases at the executor boundary, fair-share
// admission, spill-directory isolation, and the end-to-end differential
// oracle — concurrent queries through a QueryServer must produce outputs
// byte-identical to their solo runs while the global ledger records zero
// violations.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "engine/executor.h"
#include "engine/spill_manager.h"
#include "optimizer/plan_cache.h"
#include "record/spill_file.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/query_server.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

/// Small batches keep the bounded ledger slack small (one batch of the
/// widest workload records, rounded up) — same constants as the spill
/// equivalence oracle.
constexpr size_t kBatchCapacity = 16;
constexpr double kSlackBytes = 8 << 10;

std::string OutputBytes(const DataSet& ds) {
  // Exact record order: the engine gathers in partition index order, so the
  // same plan must produce byte-identical output served or solo.
  std::string out;
  for (size_t i = 0; i < ds.size(); ++i) EncodeRecord(ds.record(i), &out);
  return out;
}

StatusOr<api::OptimizedProgram> Optimize(const workloads::Workload& w,
                                         const engine::ExecOptions& exec) {
  api::ScaProvider provider;
  api::OptimizeOptions options;
  options.exec = exec;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  return api::OptimizeFlow(w.flow, provider, options, sources);
}

engine::ExecOptions SmallExec(double budget_bytes) {
  engine::ExecOptions exec;
  exec.dop = 4;
  exec.batch_capacity = kBatchCapacity;
  exec.mem_budget_bytes = budget_bytes;
  return exec;
}

workloads::Workload SmallClickstream() {
  workloads::ClickstreamScale scale;
  scale.sessions = 600;
  scale.users = 80;
  return workloads::MakeClickstream(scale);
}

// --- BudgetPool -------------------------------------------------------------

TEST(BudgetPoolTest, CarveReclaimAccounting) {
  engine::BudgetPool pool(1000);
  EXPECT_DOUBLE_EQ(pool.capacity_bytes(), 1000);
  ASSERT_TRUE(pool.Carve(400).ok());
  ASSERT_TRUE(pool.Carve(400).ok());
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 800);
  EXPECT_DOUBLE_EQ(pool.carved_high_water(), 800);

  // Exhausted: the third carve would exceed capacity.
  Status rejected = pool.Carve(400);
  EXPECT_EQ(rejected.code(), Status::Code::kOutOfRange);
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 800);

  pool.Reclaim(400);
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 400);
  // Reclaim frees room again; the high-water mark keeps the peak.
  ASSERT_TRUE(pool.Carve(500).ok());
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 900);
  EXPECT_DOUBLE_EQ(pool.carved_high_water(), 900);
}

TEST(BudgetPoolTest, ChildCarvesNeverExceedParentCapacity) {
  engine::BudgetPool pool(1000);
  ASSERT_TRUE(pool.Carve(1000).ok());  // exactly full is fine
  EXPECT_EQ(pool.Carve(1).code(), Status::Code::kOutOfRange);
  EXPECT_LE(pool.carved_bytes(), pool.capacity_bytes());
}

TEST(BudgetPoolTest, RejectsNonPositiveCarve) {
  engine::BudgetPool pool(1000);
  EXPECT_EQ(pool.Carve(0).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(pool.Carve(-5).code(), Status::Code::kInvalidArgument);
}

TEST(BudgetPoolTest, LiveTrackingAndViolations) {
  engine::BudgetPool pool(100);
  pool.AddLive(60);
  pool.AddLive(30);
  EXPECT_EQ(pool.live_bytes(), 90);
  EXPECT_EQ(pool.live_high_water(), 90);
  EXPECT_EQ(pool.violations(), 0);

  pool.AddLive(110);  // 200 live against a capacity of 100
  EXPECT_EQ(pool.live_high_water(), 200);
  EXPECT_GE(pool.violations(), 1);

  pool.AddLive(-200);
  EXPECT_EQ(pool.live_bytes(), 0);
  EXPECT_EQ(pool.live_high_water(), 200);  // high water is sticky
}

// A real spilling execution with a ledger parent attached: the pool's
// measured live high-water must be positive (the ledgers really report) and
// bounded by dop × (budget + slack) (the carve bound the serving layer
// relies on), with zero violations when capacity equals that bound.
TEST(BudgetPoolTest, HierarchicalAccountingDuringExecution) {
  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  const double bound = exec.dop * (exec.mem_budget_bytes + kSlackBytes);
  engine::BudgetPool pool(bound);
  exec.ledger_parent = &pool;

  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  engine::ExecStats stats;
  StatusOr<DataSet> out = program->RunWith(0, exec, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  EXPECT_GT(stats.disk_bytes, 0) << "expected the 8 KB budget to spill";
  EXPECT_GT(pool.live_high_water(), 0);
  EXPECT_LE(static_cast<double>(pool.live_high_water()), bound);
  EXPECT_EQ(pool.violations(), 0);
  // Execution finished: every reservation was released back to the parent.
  EXPECT_EQ(pool.live_bytes(), 0);
}

// --- Budget edge cases at the executor boundary -----------------------------

TEST(BudgetEdgeCaseTest, ZeroAndNegativeBudgetsAreCleanErrors) {
  workloads::Workload w = SmallClickstream();
  StatusOr<api::OptimizedProgram> program = Optimize(w, SmallExec(1 << 20));
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  for (double budget : {0.0, -1.0}) {
    StatusOr<DataSet> out = program->RunWith(0, SmallExec(budget));
    ASSERT_FALSE(out.ok()) << "budget " << budget << " must be rejected";
    EXPECT_EQ(out.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(BudgetEdgeCaseTest, BudgetSmallerThanOneBatchDegradesGracefully) {
  workloads::Workload w = SmallClickstream();
  engine::ExecOptions roomy = SmallExec(1 << 26);
  StatusOr<api::OptimizedProgram> program = Optimize(w, roomy);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<DataSet> reference = program->RunWith(0, roomy);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // 256 bytes holds a handful of records — far less than one 16-record
  // batch. The run must still complete (spilling roughly per budget-sized
  // slice) with byte-identical output, never assert or loop.
  engine::ExecStats stats;
  StatusOr<DataSet> tiny = program->RunWith(0, SmallExec(256), &stats);
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();
  EXPECT_GT(stats.disk_bytes, 0);
  EXPECT_EQ(OutputBytes(*tiny), OutputBytes(*reference));
}

// --- FairShareQueue ---------------------------------------------------------

TEST(FairShareQueueTest, FifoWithinOneTenant) {
  serve::FairShareQueue q(8);
  ASSERT_TRUE(q.Enqueue("a", 1).ok());
  ASSERT_TRUE(q.Enqueue("a", 2).ok());
  ASSERT_TRUE(q.Enqueue("a", 3).ok());
  for (uint64_t expect : {1, 2, 3}) {
    auto cand = q.Peek();
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->query_id, expect);
    q.PopAdmitted(cand->tenant);
  }
  EXPECT_FALSE(q.Peek().has_value());
}

TEST(FairShareQueueTest, LeastServedTenantGoesFirst) {
  serve::FairShareQueue q(8);
  ASSERT_TRUE(q.Enqueue("a", 1).ok());
  ASSERT_TRUE(q.Enqueue("a", 2).ok());
  ASSERT_TRUE(q.Enqueue("b", 3).ok());

  // Tie on (inflight, admitted) breaks on tenant name: "a" first.
  auto first = q.Peek();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, "a");
  q.PopAdmitted("a");

  // "a" now has one in flight; "b" is least served.
  auto second = q.Peek();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tenant, "b");
  EXPECT_EQ(second->query_id, 3u);
  q.PopAdmitted("b");

  // Both have one in flight and one lifetime admission; back to "a".
  auto third = q.Peek();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->query_id, 2u);

  // A completion for "b" does not change the candidate ("a" ties on
  // inflight 1... no: "a" has inflight 1, "b" inflight 0 after complete —
  // but "a" is the only tenant with waiting work, so it stays the head).
  q.OnComplete("b");
  auto still = q.Peek();
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->query_id, 2u);
}

TEST(FairShareQueueTest, LongRunShareBalancesAcrossTenants) {
  serve::FairShareQueue q(16);
  // "a" accrues 5 lifetime admissions while staying active — one query is
  // always waiting, so its lane is never idle and never garbage-collected.
  ASSERT_TRUE(q.Enqueue("a", 1).ok());
  for (uint64_t id = 2; id <= 6; ++id) {
    ASSERT_TRUE(q.Enqueue("a", id).ok());
    auto cand = q.Peek();
    ASSERT_TRUE(cand.has_value());
    q.PopAdmitted(cand->tenant);
    q.OnComplete(cand->tenant);
  }
  // A newcomer "b" must be preferred over the 5-admission "a" even though
  // neither has anything in flight right now.
  ASSERT_TRUE(q.Enqueue("b", 11).ok());
  auto cand = q.Peek();
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->tenant, "b");
}

TEST(FairShareQueueTest, IdleLanesAreCollected) {
  serve::FairShareQueue q(16);
  // A churn of one-shot tenants must not accumulate lanes forever — this
  // used to leak one map entry per tenant name for the queue's whole life.
  for (int i = 0; i < 50; ++i) {
    std::string tenant = "t" + std::to_string(i);
    ASSERT_TRUE(q.Enqueue(tenant, 100 + static_cast<uint64_t>(i)).ok());
    auto cand = q.Peek();
    ASSERT_TRUE(cand.has_value());
    EXPECT_EQ(cand->tenant, tenant);
    q.PopAdmitted(tenant);
    q.OnComplete(tenant);
  }
  EXPECT_EQ(q.num_lanes(), 0u);

  // Remove() collects too: a cancelled sole waiter leaves no lane behind.
  ASSERT_TRUE(q.Enqueue("x", 1).ok());
  EXPECT_EQ(q.num_lanes(), 1u);
  EXPECT_TRUE(q.Remove("x", 1));
  EXPECT_EQ(q.num_lanes(), 0u);
  EXPECT_EQ(q.size(), 0u);
  // Removing an id that is not waiting is a rejected no-op.
  EXPECT_FALSE(q.Remove("x", 1));

  // A lane with work in flight is NOT collected even with nothing waiting:
  // its inflight count is live fair-share state.
  ASSERT_TRUE(q.Enqueue("y", 2).ok());
  EXPECT_TRUE(q.PopAdmitted("y"));
  EXPECT_EQ(q.num_lanes(), 1u);
  EXPECT_TRUE(q.OnComplete("y"));
  EXPECT_EQ(q.num_lanes(), 0u);
}

TEST(FairShareQueueTest, CollectedLaneHistorySurvivesAsFloor) {
  serve::FairShareQueue q(16);
  // "a" gets 3 admissions, then goes idle and its lane is collected.
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(q.Enqueue("a", id).ok());
    EXPECT_TRUE(q.PopAdmitted("a"));
    EXPECT_TRUE(q.OnComplete("a"));
  }
  EXPECT_EQ(q.num_lanes(), 0u);
  // Both a returning "a" and a brand-new "b" start at the floor the erased
  // lane left behind: collection must not hand "a" a fresh-tenant advantage
  // over tenants admitted after it, so the two tie and the name order
  // decides, exactly as for two fresh tenants.
  ASSERT_TRUE(q.Enqueue("b", 10).ok());
  ASSERT_TRUE(q.Enqueue("a", 11).ok());
  auto cand = q.Peek();
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->tenant, "a");
  EXPECT_TRUE(q.PopAdmitted("a"));
  // After one admission "a" is behind again — the floor ratchets forward.
  auto next = q.Peek();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->tenant, "b");
}

TEST(FairShareQueueTest, BoundedQueueRejects) {
  serve::FairShareQueue q(2);
  ASSERT_TRUE(q.Enqueue("a", 1).ok());
  ASSERT_TRUE(q.Enqueue("b", 2).ok());
  EXPECT_EQ(q.Enqueue("c", 3).code(), Status::Code::kOutOfRange);
  EXPECT_EQ(q.size(), 2u);
  // Admission makes room again.
  auto cand = q.Peek();
  ASSERT_TRUE(cand.has_value());
  q.PopAdmitted(cand->tenant);
  EXPECT_TRUE(q.Enqueue("c", 3).ok());
}

TEST(FairShareQueueTest, MismatchedPopAndCompleteAreRejectedNoOps) {
  serve::FairShareQueue q(4);
  ASSERT_TRUE(q.Enqueue("a", 1).ok());

  // Popping a tenant with nothing waiting (unknown or drained) must refuse
  // without touching the queue — these used to be assert-only guards that
  // compiled out in Release and corrupted size_/inflight forever.
  EXPECT_FALSE(q.PopAdmitted("ghost"));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.PopAdmitted("a"));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.PopAdmitted("a")) << "lane is drained; a second pop must fail";
  EXPECT_EQ(q.size(), 0u);

  // Keep a query waiting in "a"'s lane across the completion below, so the
  // lane is not garbage-collected and its admission history stays directly
  // observable (a collected lane's history folds into the shared floor —
  // covered by CollectedLaneHistorySurvivesAsFloor).
  ASSERT_TRUE(q.Enqueue("a", 2).ok());

  // One completion succeeds; a double-complete (and a completion for a
  // tenant that never ran) must not underflow the in-flight counter...
  EXPECT_TRUE(q.OnComplete("a"));
  EXPECT_FALSE(q.OnComplete("a"));
  EXPECT_FALSE(q.OnComplete("ghost"));

  // ...which fair-share ordering would feel immediately: an underflowed
  // lane would win Peek() forever. After the failed double-complete, "a"
  // (admitted once) must NOT beat a fresh tenant.
  ASSERT_TRUE(q.Enqueue("b", 3).ok());
  auto cand = q.Peek();
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->tenant, "b");
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, SummarizeMatchesIndividualQueries) {
  serve::LatencyRecorder rec;
  serve::LatencySummary empty = rec.Summarize();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
  // Deliberately unsorted input; Summarize's single sorted pass must agree
  // with the one-off query methods on every statistic.
  for (double v : {0.9, 0.1, 0.5, 0.3, 0.7}) rec.Record(v);
  serve::LatencySummary s = rec.Summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.p50, rec.Percentile(50));
  EXPECT_DOUBLE_EQ(s.p99, rec.Percentile(99));
  EXPECT_DOUBLE_EQ(s.mean, rec.Mean());
  EXPECT_DOUBLE_EQ(s.max, rec.Max());
  EXPECT_DOUBLE_EQ(s.p50, 0.5);
  EXPECT_DOUBLE_EQ(s.p99, 0.9);
}

TEST(MetricsTest, PercentilesAndCounters) {
  serve::LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(i / 100.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(50), 0.50);
  EXPECT_DOUBLE_EQ(rec.Percentile(99), 0.99);
  EXPECT_DOUBLE_EQ(rec.Max(), 1.0);

  serve::ServerMetrics metrics;
  metrics.OnSubmitted();
  metrics.OnSubmitted();
  metrics.OnRejected();
  metrics.OnAdmitted();
  metrics.OnQueueDepth(3);
  metrics.OnQueueDepth(1);
  metrics.OnFinished("scan", Status::Code::kOk, 0.5, 1.0);
  metrics.OnFinished("scan", Status::Code::kInternal, 0.1, 0.2);
  // A query unwound mid-execution records latency (it occupied the server)
  // but routes to its own counter, not failed.
  metrics.OnFinished("scan", Status::Code::kCancelled, 0.05, 0.3);
  metrics.OnFinished("scan", Status::Code::kDeadlineExceeded, 0.05, 0.4);
  // Cancelled while still queued: counted, but no latency sample — the
  // query never occupied the server, so its queue wait must not pollute the
  // class percentiles.
  metrics.OnCancelledBeforeAdmission(Status::Code::kCancelled);
  metrics.OnCancelledBeforeAdmission(Status::Code::kDeadlineExceeded);
  serve::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.submitted, 2);
  EXPECT_EQ(snap.rejected, 1);
  EXPECT_EQ(snap.admitted, 1);
  EXPECT_EQ(snap.completed, 1);
  EXPECT_EQ(snap.failed, 1);
  EXPECT_EQ(snap.cancelled, 2);
  EXPECT_EQ(snap.deadline_exceeded, 2);
  EXPECT_EQ(snap.queue_high_water, 3u);
  ASSERT_EQ(snap.total_latency.count("scan"), 1u);
  EXPECT_EQ(snap.total_latency.at("scan").count, 4u);
  EXPECT_DOUBLE_EQ(snap.total_latency.at("scan").max, 1.0);
}

TEST(MetricsTest, MaxHandlesNegativeSamples) {
  serve::LatencyRecorder rec;
  EXPECT_DOUBLE_EQ(rec.Max(), 0.0);  // documented empty behavior
  // An all-negative sample set must return its true (negative) maximum —
  // the old fold from 0 reported 0 for any such set.
  rec.Record(-3.0);
  rec.Record(-1.5);
  rec.Record(-2.0);
  EXPECT_DOUBLE_EQ(rec.Max(), -1.5);
  // The sorted cache stays coherent across interleaved records and queries.
  rec.Record(2.0);
  EXPECT_DOUBLE_EQ(rec.Max(), 2.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(rec.Percentile(100), 2.0);
}

// --- Spill-directory isolation ----------------------------------------------

TEST(SpillDirectoryTest, SameTagStillUniqueAndSanitized) {
  StatusOr<SpillDirectory> a = SpillDirectory::Create("", "tenant/../q1 x");
  StatusOr<SpillDirectory> b = SpillDirectory::Create("", "tenant/../q1 x");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Uniqueness never depends on the tag.
  EXPECT_NE(a->path(), b->path());
  // The tag cannot escape the parent: no separators survive sanitization.
  std::string name = std::filesystem::path(a->path()).filename().string();
  EXPECT_EQ(name.find('/'), std::string::npos);
  EXPECT_EQ(name.find(".."), std::string::npos);
  EXPECT_EQ(name.find(' '), std::string::npos);
  EXPECT_NE(name.find("tenant"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(a->path()));
  EXPECT_TRUE(std::filesystem::exists(b->path()));
}

// --- QueryServer ------------------------------------------------------------

TEST(QueryServerTest, RejectsMalformedAndOversizedRequests) {
  serve::ServeOptions options;
  options.global_budget_bytes = 1 << 20;
  options.num_threads = 2;
  serve::QueryServer server(options);

  serve::QueryRequest no_program;
  EXPECT_EQ(server.Submit(std::move(no_program)).status().code(),
            Status::Code::kInvalidArgument);

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  serve::QueryRequest zero_budget;
  zero_budget.program = &*program;
  zero_budget.exec = SmallExec(0);
  EXPECT_EQ(server.Submit(std::move(zero_budget)).status().code(),
            Status::Code::kInvalidArgument);

  serve::QueryRequest bad_index;
  bad_index.program = &*program;
  bad_index.plan_index = program->ranked().size();
  bad_index.exec = exec;
  EXPECT_EQ(server.Submit(std::move(bad_index)).status().code(),
            Status::Code::kInvalidArgument);

  // A carve that can never fit the global budget is rejected up front
  // instead of waiting forever. Oversized via dop: the estimate-sized carve
  // can shrink a huge per-instance budget down to the plan's estimated
  // peak, but never below the floor, so a huge dop still overflows.
  serve::QueryRequest oversized;
  oversized.program = &*program;
  oversized.exec = SmallExec(options.global_budget_bytes);
  oversized.exec.dop = 4096;
  EXPECT_EQ(server.Submit(std::move(oversized)).status().code(),
            Status::Code::kOutOfRange);

  // With estimate-sizing disabled, a huge per-instance budget alone is
  // enough to overflow the pool — the pre-estimate admission behavior.
  serve::ServeOptions worst_case = options;
  worst_case.carve_from_estimate = false;
  serve::QueryServer worst_case_server(worst_case);
  serve::QueryRequest big_budget;
  big_budget.program = &*program;
  big_budget.exec = SmallExec(worst_case.global_budget_bytes);
  EXPECT_EQ(worst_case_server.Submit(std::move(big_budget)).status().code(),
            Status::Code::kOutOfRange);

  EXPECT_EQ(server.metrics().Snapshot().rejected, 4);
}

TEST(QueryServerTest, OverAdmissionRejectsWhenQueueFull) {
  // No execution slots and no waiting room: every submission bounces.
  serve::ServeOptions options;
  options.max_inflight = 0;
  options.max_queued = 0;
  options.num_threads = 1;
  serve::QueryServer server(options);

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  serve::QueryRequest request;
  request.program = &*program;
  request.exec = exec;
  EXPECT_EQ(server.Submit(std::move(request)).status().code(),
            Status::Code::kOutOfRange);
  serve::MetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.rejected, 1);
  EXPECT_EQ(snap.admitted, 0);
}

// --- Cancellation and deadlines ---------------------------------------------

TEST(QueryServerTest, CancelBeforeAdmissionFreesQueueSlot) {
  // No execution slots: submissions queue and stay queued, so Cancel() hits
  // a query that never started.
  serve::ServeOptions options;
  options.max_inflight = 0;
  options.max_queued = 2;
  options.num_threads = 1;
  serve::QueryServer server(options);

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto submit = [&]() {
    serve::QueryRequest request;
    request.program = &*program;
    request.exec = exec;
    return server.Submit(std::move(request));
  };
  StatusOr<std::shared_ptr<serve::QueryHandle>> first = submit();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE((*first)->Done());

  (*first)->Cancel();
  const serve::QueryResult& result = (*first)->Wait();
  EXPECT_EQ(result.status.code(), Status::Code::kCancelled);
  EXPECT_EQ(result.output.size(), 0u);

  // The queue slot is free again: with max_queued = 2, two more
  // submissions must be accepted, not rejected.
  StatusOr<std::shared_ptr<serve::QueryHandle>> second = submit();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  StatusOr<std::shared_ptr<serve::QueryHandle>> third = submit();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  (*second)->Cancel();
  (*third)->Cancel();
  EXPECT_EQ((*second)->Wait().status.code(), Status::Code::kCancelled);
  EXPECT_EQ((*third)->Wait().status.code(), Status::Code::kCancelled);

  // Drain must not hang on cancelled queued queries, and nothing was ever
  // admitted or carved.
  server.Drain();
  serve::MetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.submitted, 3);
  EXPECT_EQ(snap.cancelled, 3);
  EXPECT_EQ(snap.admitted, 0);
  EXPECT_EQ(snap.failed, 0);
  // Never-admitted queries record no latency samples.
  EXPECT_EQ(snap.total_latency.count("default"), 0u);
  EXPECT_DOUBLE_EQ(server.budget_pool().carved_bytes(), 0);

  // Cancelling an already-finished query is an idempotent no-op.
  (*first)->Cancel();
  EXPECT_EQ((*first)->Wait().status.code(), Status::Code::kCancelled);
}

TEST(QueryServerTest, DeadlineAlreadyExpiredAtSubmit) {
  serve::ServeOptions options;
  options.num_threads = 2;
  serve::QueryServer server(options);

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  serve::QueryRequest request;
  request.program = &*program;
  request.exec = exec;
  request.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
      server.Submit(std::move(request));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const serve::QueryResult& result = (*handle)->Wait();
  EXPECT_EQ(result.status.code(), Status::Code::kDeadlineExceeded);

  server.Drain();
  serve::MetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1);
  EXPECT_EQ(snap.admitted, 0);
  EXPECT_EQ(snap.failed, 0);
  EXPECT_DOUBLE_EQ(server.budget_pool().carved_bytes(), 0);
}

// A query cancelled in the middle of spilling must unwind completely: the
// Cancelled status comes back, the full carve is reclaimed, every ledger
// reservation flows back to the pool, the tagged spill directory is gone,
// and the pool records zero violations. The cancel point is deterministic:
// cancel_after_spill_bytes fires the token inside the first spill write.
TEST(QueryServerTest, CancelMidSpillReclaimsCarveAndRemovesSpillDir) {
  StatusOr<SpillDirectory> root = SpillDirectory::Create("", "cancel-test");
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);  // spills at this budget
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  serve::ServeOptions options;
  options.max_inflight = 1;
  options.num_threads = 2;
  options.per_instance_slack_bytes = kSlackBytes;
  options.spill_root = root->path();
  serve::QueryServer server(options);

  serve::QueryRequest request;
  request.program = &*program;
  request.exec = exec;
  request.exec.cancel_after_spill_bytes = 1;  // token fires mid-first-spill
  StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
      server.Submit(std::move(request));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const serve::QueryResult& result = (*handle)->Wait();
  EXPECT_EQ(result.status.code(), Status::Code::kCancelled)
      << result.status.ToString();
  server.Drain();

  const engine::BudgetPool& pool = server.budget_pool();
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 0) << "carve not fully reclaimed";
  EXPECT_EQ(pool.live_bytes(), 0) << "ledger reservations leaked";
  EXPECT_EQ(pool.violations(), 0);
  // The query's tagged spill directory removed itself during the unwind.
  EXPECT_TRUE(std::filesystem::is_empty(root->path()))
      << "cancelled query left spill files behind";
  serve::MetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.cancelled, 1);
  EXPECT_EQ(snap.failed, 0);
}

// Cancellation must never bleed into neighbors: queries sharing the server
// with a cancelled spilling query still produce byte-identical output to
// their solo runs.
TEST(QueryServerTest, SurvivorsAreByteIdenticalNextToCancelledQuery) {
  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(8 << 10);
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<DataSet> solo = program->RunWith(0, exec);
  ASSERT_TRUE(solo.ok()) << solo.status().ToString();
  const std::string solo_bytes = OutputBytes(*solo);

  serve::ServeOptions options;
  options.max_inflight = 3;
  options.num_threads = 4;
  options.per_instance_slack_bytes = kSlackBytes;
  const double carve =
      exec.dop * (exec.mem_budget_bytes + options.per_instance_slack_bytes);
  options.global_budget_bytes = carve * options.max_inflight;
  serve::QueryServer server(options);

  std::vector<std::shared_ptr<serve::QueryHandle>> handles;
  for (int i = 0; i < 3; ++i) {
    serve::QueryRequest request;
    request.program = &*program;
    request.tenant = "t" + std::to_string(i);
    request.exec = exec;
    if (i == 1) request.exec.cancel_after_spill_bytes = 1;
    StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
        server.Submit(std::move(request));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(std::move(handle).value());
  }
  for (int i = 0; i < 3; ++i) {
    const serve::QueryResult& result = handles[static_cast<size_t>(i)]->Wait();
    if (i == 1) {
      EXPECT_EQ(result.status.code(), Status::Code::kCancelled);
      continue;
    }
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(OutputBytes(result.output), solo_bytes)
        << "query " << i << " next to a cancelled neighbor diverged";
  }
  server.Drain();
  EXPECT_EQ(server.budget_pool().violations(), 0);
  EXPECT_DOUBLE_EQ(server.budget_pool().carved_bytes(), 0);
  EXPECT_EQ(server.budget_pool().live_bytes(), 0);
}

// Regression: driver threads used to accumulate in a vector joined only by
// Drain(), so a long-lived server leaked one OS thread per admitted query.
// Finished drivers are now reaped on the next Submit/Drain, keeping the
// live count bounded by max_inflight plus one sweep of lag.
TEST(QueryServerTest, DriverThreadsAreReapedEagerly) {
  serve::ServeOptions options;
  options.max_inflight = 1;
  options.num_threads = 2;
  serve::QueryServer server(options);

  workloads::Workload w = SmallClickstream();
  engine::ExecOptions exec = SmallExec(1 << 20);  // roomy: fast queries
  StatusOr<api::OptimizedProgram> program = Optimize(w, exec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  constexpr int kQueries = 6;
  for (int i = 0; i < kQueries; ++i) {
    serve::QueryRequest request;
    request.program = &*program;
    request.exec = exec;
    StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
        server.Submit(std::move(request));
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ASSERT_TRUE((*handle)->Wait().status.ok());
    // This query's driver may still await the next sweep, but drivers from
    // earlier iterations were joined by this iteration's Submit.
    EXPECT_LE(server.live_drivers(), 2u)
        << "driver threads are accumulating instead of being reaped";
  }
  server.Drain();
  EXPECT_EQ(server.live_drivers(), 0u);
}

// The end-to-end differential oracle: three workloads, two concurrent
// submissions each, spilling budgets, one shared worker pool and global
// ledger — every served output must be byte-identical to the solo run of
// the same plan, all reservations must flow back, and the global pool must
// record zero violations.
TEST(QueryServerTest, ConcurrentExecutionMatchesSoloByteForByte) {
  struct Entry {
    std::string tenant;
    workloads::Workload workload;
    api::OptimizedProgram program;         // cold optimization
    api::OptimizedProgram cached_program;  // plan-cache hit of the same key
    std::string solo_bytes;
  };
  optimizer::PlanCache::Global().Clear();
  std::vector<Entry> entries(3);
  entries[0].tenant = "analytics";
  {
    workloads::TpchScale scale;
    scale.lineitems = 1200;
    scale.orders = 300;
    scale.customers = 60;
    scale.suppliers = 12;
    scale.nations = 8;
    entries[0].workload = workloads::MakeTpchQ7(scale);
  }
  entries[1].tenant = "mining";
  {
    workloads::TextMiningScale scale;
    scale.documents = 500;
    entries[1].workload = workloads::MakeTextMining(scale);
  }
  entries[2].tenant = "web";
  entries[2].workload = SmallClickstream();

  engine::ExecOptions exec = SmallExec(8 << 10);
  for (Entry& e : entries) {
    StatusOr<api::OptimizedProgram> program = Optimize(e.workload, exec);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    e.program = std::move(program).value();
    EXPECT_FALSE(e.program.from_plan_cache());
    // Re-optimizing the identical pipeline must be a pure cache hit: no
    // annotation, no enumeration, no costing — just the shared plans.
    const uint64_t hits_before = optimizer::PlanCache::Global().stats().hits;
    StatusOr<api::OptimizedProgram> cached = Optimize(e.workload, exec);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    e.cached_program = std::move(cached).value();
    EXPECT_TRUE(e.cached_program.from_plan_cache());
    EXPECT_EQ(optimizer::PlanCache::Global().stats().hits, hits_before + 1);
    StatusOr<DataSet> solo = e.program.RunWith(0, exec);
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    e.solo_bytes = OutputBytes(*solo);
  }

  serve::ServeOptions options;
  options.max_inflight = 4;
  options.num_threads = 4;
  options.per_instance_slack_bytes = kSlackBytes;
  const double carve =
      exec.dop * (exec.mem_budget_bytes + options.per_instance_slack_bytes);
  options.global_budget_bytes = carve * options.max_inflight;

  constexpr int kRoundsPerEntry = 2;
  serve::QueryServer server(options);
  std::vector<std::shared_ptr<serve::QueryHandle>> handles;
  std::vector<const Entry*> owners;
  for (int round = 0; round < kRoundsPerEntry; ++round) {
    for (const Entry& e : entries) {
      serve::QueryRequest request;
      // Odd rounds serve the cache-hit program: its output must be
      // byte-identical to the cold program's under the same concurrency.
      request.program = round % 2 == 0 ? &e.program : &e.cached_program;
      request.tenant = e.tenant;
      request.workload_class = e.tenant;
      request.exec = exec;
      StatusOr<std::shared_ptr<serve::QueryHandle>> handle =
          server.Submit(std::move(request));
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      handles.push_back(std::move(handle).value());
      owners.push_back(&e);
    }
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    const serve::QueryResult& result = handles[i]->Wait();
    ASSERT_TRUE(result.status.ok())
        << owners[i]->tenant << ": " << result.status.ToString();
    EXPECT_EQ(OutputBytes(result.output), owners[i]->solo_bytes)
        << owners[i]->tenant << " query " << result.query_id
        << ": served output differs from the solo run";
  }
  server.Drain();

  const engine::BudgetPool& pool = server.budget_pool();
  EXPECT_EQ(pool.violations(), 0);
  EXPECT_GT(pool.live_high_water(), 0);
  EXPECT_LE(static_cast<double>(pool.live_high_water()),
            pool.capacity_bytes());
  // Completion reclaimed every carve and released every reservation.
  EXPECT_DOUBLE_EQ(pool.carved_bytes(), 0);
  EXPECT_EQ(pool.live_bytes(), 0);
  // The admission lifecycle adds up.
  serve::MetricsSnapshot snap = server.metrics().Snapshot();
  const int total = kRoundsPerEntry * static_cast<int>(entries.size());
  EXPECT_EQ(snap.submitted, total);
  EXPECT_EQ(snap.admitted, total);
  EXPECT_EQ(snap.completed, total);
  EXPECT_EQ(snap.failed, 0);
  EXPECT_EQ(snap.rejected, 0);
  // Plan-cache provenance counters: one round of cold programs, one round
  // of cache-hit programs per entry.
  EXPECT_EQ(snap.plan_cache_hits, static_cast<int>(entries.size()));
  EXPECT_EQ(snap.plan_cache_misses, static_cast<int>(entries.size()));
}

}  // namespace
}  // namespace blackbox
