#include "tac/tac.h"

#include <gtest/gtest.h>

namespace blackbox {
namespace tac {
namespace {

TEST(Builder, BuildsAndVerifiesSimpleFunction) {
  FunctionBuilder b("f", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg out = b.Copy(ir);
  b.Emit(out);
  b.Return();
  StatusOr<Function> fn = b.Build();
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  EXPECT_EQ(fn->num_inputs(), 1);
  EXPECT_EQ(fn->kind(), UdfKind::kRat);
  EXPECT_EQ(fn->instrs().size(), 4u);
}

TEST(Builder, RejectsEmptyFunction) {
  FunctionBuilder b("empty", 1, UdfKind::kRat);
  StatusOr<Function> fn = b.Build();
  EXPECT_FALSE(fn.ok());
}

TEST(Builder, RejectsUnboundLabel) {
  FunctionBuilder b("bad", 1, UdfKind::kRat);
  Label l = b.NewLabel();
  b.Goto(l);
  StatusOr<Function> fn = b.Build();
  EXPECT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), Status::Code::kInvalidArgument);
}

TEST(Builder, RejectsMissingTerminator) {
  FunctionBuilder b("noret", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  b.GetField(ir, 0);
  StatusOr<Function> fn = b.Build();
  EXPECT_FALSE(fn.ok());
}

TEST(Builder, RejectsTypeConfusion) {
  FunctionBuilder b("confused", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg v = b.GetField(ir, 0);
  // Emitting a value register is a type error.
  b.Emit(Reg{v.id});
  b.Return();
  StatusOr<Function> fn = b.Build();
  EXPECT_FALSE(fn.ok());
}

TEST(Builder, RejectsInputIndexOutOfRange) {
  FunctionBuilder b("bad_input", 1, UdfKind::kRat);
  b.InputRecord(1);  // only input 0 exists
  b.Return();
  StatusOr<Function> fn = b.Build();
  EXPECT_FALSE(fn.ok());
}

TEST(Builder, LabelsResolveToInstructionIndices) {
  FunctionBuilder b("branchy", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Label skip = b.NewLabel();
  b.BranchIfFalse(a, skip);
  Reg out = b.Copy(ir);
  b.Emit(out);
  b.Bind(skip);
  b.Return();
  StatusOr<Function> fn = b.Build();
  ASSERT_TRUE(fn.ok());
  const Instr& br = fn->instrs()[2];
  EXPECT_EQ(br.op, Opcode::kBranchIfFalse);
  EXPECT_EQ(br.target, 5);  // the return
}

TEST(Disassembly, ShowsLabelsAndFields) {
  FunctionBuilder b("pretty", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg v = b.GetField(ir, 3);
  Reg out = b.Copy(ir);
  b.SetField(out, 1, v);
  b.Emit(out);
  b.Return();
  StatusOr<Function> fn = b.Build();
  ASSERT_TRUE(fn.ok());
  std::string text = fn->ToString();
  EXPECT_NE(text.find("getField"), std::string::npos);
  EXPECT_NE(text.find("[3]"), std::string::npos);
  EXPECT_NE(text.find("emit"), std::string::npos);
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("boom");
  EXPECT_EQ(s.ToString(), "InvalidArgument: boom");
  EXPECT_TRUE(Status::OK().ok());
}

}  // namespace
}  // namespace tac
}  // namespace blackbox
