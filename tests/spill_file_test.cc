// Unit coverage of the spill file format (DESIGN.md §2.3): write/read
// round-trips of uniform and final short batches, cached-size preservation
// across the round-trip, BatchPool reuse on read-back, and clean Status (no
// crash — the ASan job runs this too) on truncated files and unwritable
// spill directories.

#include "record/spill_file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "record/record.h"
#include "record/record_batch.h"

namespace blackbox {
namespace {

Record MakeRecord(int64_t i) {
  Record r;
  r.Append(Value(i));
  r.Append(Value(static_cast<double>(i) * 0.5));
  r.Append(Value("value-" + std::to_string(i)));
  if (i % 3 == 0) r.Append(Value::Null());
  return r;
}

/// `rows` records packed into batches of `capacity` (uniform except a
/// possibly short final batch).
std::vector<RecordBatch> MakeBatches(size_t rows, size_t capacity) {
  std::vector<RecordBatch> batches;
  for (size_t i = 0; i < rows; ++i) {
    if (batches.empty() || batches.back().size() >= capacity) {
      batches.emplace_back(capacity);
    }
    batches.back().Append(MakeRecord(static_cast<int64_t>(i)));
  }
  return batches;
}

TEST(SpillFile, EncodeLengthMatchesSerializedSize) {
  for (int64_t i = 0; i < 20; ++i) {
    Record r = MakeRecord(i);
    std::string buf;
    EncodeRecord(r, &buf);
    EXPECT_EQ(buf.size(), r.SerializedSize());
    StatusOr<Record> back = DecodeRecord(buf.data(), buf.size());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, r);
  }
}

TEST(SpillFile, DecodeRejectsTrailingAndMissingBytes) {
  Record r = MakeRecord(7);
  std::string buf;
  EncodeRecord(r, &buf);
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size() - 1).status().code(),
            Status::Code::kCorruption);
  buf.push_back('\0');
  EXPECT_EQ(DecodeRecord(buf.data(), buf.size()).status().code(),
            Status::Code::kCorruption);
}

TEST(SpillFile, RoundTripUniformAndShortBatches) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  std::string path = dir->NewRunPath();

  // 10 records at capacity 4: two uniform batches plus a short final one.
  std::vector<RecordBatch> batches = MakeBatches(10, 4);
  ASSERT_EQ(batches.size(), 3u);
  ASSERT_EQ(batches.back().size(), 2u);

  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const RecordBatch& b : batches) {
    ASSERT_TRUE(writer->WriteBatch(b).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_GT(writer->bytes_written(), 0);

  StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  BatchPool pool;
  int64_t total_read = 0;
  for (const RecordBatch& want : batches) {
    RecordBatch got;
    int64_t fb = 0;
    StatusOr<bool> has = reader->ReadBatch(&pool, 4, &got, &fb);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    ASSERT_TRUE(*has);
    total_read += fb;
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(got.bytes(), want.bytes());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.record(i), want.record(i));
      // Cached sizes survive the round-trip without a payload re-walk...
      EXPECT_EQ(got.record_bytes(i), want.record_bytes(i));
    }
    // ...and still agree with a from-scratch recomputation.
    EXPECT_EQ(got.bytes(), got.RecomputeBytes());
    pool.Release(std::move(got));
  }
  RecordBatch extra;
  int64_t fb = 0;
  StatusOr<bool> has = reader->ReadBatch(&pool, 4, &extra, &fb);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has) << "expected clean EOF after the last batch";
  // Minus the header: 8-byte magic + 4-byte (empty) sketch-block length.
  EXPECT_EQ(total_read, writer->bytes_written() - 12)
      << "read meter must cover every written payload byte";
}

TEST(SpillFile, ReadBackReusesPooledBatches) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  std::vector<RecordBatch> batches = MakeBatches(8, 4);
  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (const RecordBatch& b : batches) ASSERT_TRUE(writer->WriteBatch(b).ok());
  ASSERT_TRUE(writer->Close().ok());

  BatchPool pool;
  pool.Release(RecordBatch(4));  // one recycled backing store available
  ASSERT_EQ(pool.free_count(), 1u);
  StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  RecordBatch got;
  int64_t fb = 0;
  StatusOr<bool> has = reader->ReadBatch(&pool, 4, &got, &fb);
  ASSERT_TRUE(has.ok() && *has);
  EXPECT_EQ(pool.free_count(), 0u) << "reader must draw from the pool";
  pool.Release(std::move(got));
  EXPECT_EQ(pool.free_count(), 1u);
  has = reader->ReadBatch(&pool, 4, &got, &fb);
  ASSERT_TRUE(has.ok() && *has);
  EXPECT_EQ(pool.free_count(), 0u) << "released batch must be recycled";
}

TEST(SpillFile, TruncatedFileIsCorruptionNotCrash) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  std::vector<RecordBatch> batches = MakeBatches(6, 4);
  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (const RecordBatch& b : batches) ASSERT_TRUE(writer->WriteBatch(b).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Chop a few bytes off the tail: the second batch is now cut mid-record.
  uintmax_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  BatchPool pool;
  Status last = Status::OK();
  for (;;) {
    RecordBatch got;
    int64_t fb = 0;
    StatusOr<bool> has = reader->ReadBatch(&pool, 4, &got, &fb);
    if (!has.ok()) {
      last = has.status();
      break;
    }
    if (!*has) break;
  }
  EXPECT_EQ(last.code(), Status::Code::kCorruption) << last.ToString();
}

TEST(SpillFile, RunSketchRoundTrips) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  std::vector<RecordBatch> batches = MakeBatches(10, 4);
  ZoneMapSketch sketch;
  for (const RecordBatch& b : batches) sketch.Merge(b.sketch());
  ASSERT_EQ(sketch.rows(), 10u);

  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(path, &sketch);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const RecordBatch& b : batches) ASSERT_TRUE(writer->WriteBatch(b).ok());
  ASSERT_TRUE(writer->Close().ok());

  StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_TRUE(reader->run_sketch().has_value());
  const ZoneMapSketch& back = *reader->run_sketch();
  EXPECT_EQ(back.rows(), sketch.rows());
  EXPECT_EQ(back.num_columns(), sketch.num_columns());
  // Column 0 held ints 0..9; the decoded range must admit exactly that.
  ValueRange c0 = back.ColumnRange(0);
  EXPECT_TRUE(c0.may_int);
  EXPECT_EQ(c0.int_lo, 0);
  EXPECT_EQ(c0.int_hi, 9);
  EXPECT_FALSE(c0.may_str);
  // Column 3 was present only on every third record → may_null.
  EXPECT_TRUE(back.ColumnRange(3).may_null);
  // Batches read back rebuild their own sketches from the decoded records.
  BatchPool pool;
  RecordBatch got;
  int64_t fb = 0;
  StatusOr<bool> has = reader->ReadBatch(&pool, 4, &got, &fb);
  ASSERT_TRUE(has.ok() && *has);
  EXPECT_EQ(got.sketch().rows(), got.size());
}

TEST(SpillFile, SketchlessRunHasNoSketch) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->WriteBatch(MakeBatches(4, 4)[0]).ok());
  ASSERT_TRUE(writer->Close().ok());
  StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->run_sketch().has_value())
      << "a streamed run must read back as unskippable";
}

TEST(SpillFile, OldFormatMagicIsCorruption) {
  // Spill files never outlive a process; the pre-sketch BBSPILL1 magic must
  // be rejected outright rather than misparsed.
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char magic[8] = {'B', 'B', 'S', 'P', 'I', 'L', 'L', '1'};
  std::fwrite(magic, 1, sizeof(magic), f);
  std::fclose(f);
  EXPECT_EQ(BatchSpillReader::Open(path).status().code(),
            Status::Code::kCorruption);
}

TEST(SpillFile, BadMagicIsCorruption) {
  StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->NewRunPath();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a spill file", f);
  std::fclose(f);
  EXPECT_EQ(BatchSpillReader::Open(path).status().code(),
            Status::Code::kCorruption);
}

TEST(SpillFile, UnwritableTempDirIsCleanStatus) {
  // A regular file as the parent "directory" defeats even a root test
  // runner (mkdir under a file is ENOTDIR; a plain missing path would just
  // be created when running with full privileges).
  std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "blackbox-spill-blocker";
  std::FILE* f = std::fopen(blocker.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::string bad_parent = (blocker / "sub").string();

  StatusOr<SpillDirectory> dir = SpillDirectory::Create(bad_parent);
  EXPECT_FALSE(dir.ok());
  EXPECT_EQ(dir.status().code(), Status::Code::kInvalidArgument);

  StatusOr<BatchSpillWriter> writer =
      BatchSpillWriter::Create(bad_parent + "/run.spill");
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), Status::Code::kInvalidArgument);
  std::filesystem::remove(blocker);
}

TEST(SpillFile, DirectoryRemovesItselfWithContents) {
  std::string kept;
  {
    StatusOr<SpillDirectory> dir = SpillDirectory::Create("");
    ASSERT_TRUE(dir.ok());
    kept = dir->path();
    // Leave an unconsumed run behind; the directory must still vanish.
    std::vector<RecordBatch> batches = MakeBatches(4, 4);
    StatusOr<BatchSpillWriter> writer =
        BatchSpillWriter::Create(dir->NewRunPath());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteBatch(batches[0]).ok());
    ASSERT_TRUE(writer->Close().ok());
    ASSERT_TRUE(std::filesystem::exists(kept));
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

}  // namespace
}  // namespace blackbox
