// Determinism contract of the partition-parallel runtime (DESIGN.md §2.1):
// for any num_threads, optimize+run must produce byte-identical sink output,
// identical ExecStats meters (everything except wall_seconds), and an
// identical ranked plan list — the thread count may only change how fast the
// answer arrives, never the answer. Exercised on TPC-H Q7 (bushy join tree,
// 442-plan space at full scale) and the clickstream task, plus a spill-path
// variant that forces the memory budget below the working set.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "reorder/plan.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

struct RunOutcome {
  std::vector<double> ranked_costs;
  std::vector<std::string> ranked_plans;  // canonical forms, rank order
  DataSet best_output;
  DataSet worst_output;
  engine::ExecStats best_stats;
  engine::ExecStats worst_stats;
};

RunOutcome OptimizeAndRun(const workloads::Workload& w, int num_threads,
                          double mem_budget_bytes) {
  api::ScaProvider provider;
  api::OptimizeOptions options;
  options.exec.num_threads = num_threads;  // costing inherits this
  options.exec.mem_budget_bytes = mem_budget_bytes;
  // The contract under test is that the PARALLEL closure-costing pipeline
  // ranks identically to the serial one — so use the closure search (the
  // ranked search is serial by construction) and force each call to be an
  // independent optimization rather than a plan-cache alias (thread count
  // is deliberately not part of the cache key).
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  EXPECT_TRUE(program.ok()) << program.status().ToString();

  RunOutcome outcome;
  for (const core::PlannedAlternative& alt : program->ranked()) {
    outcome.ranked_costs.push_back(alt.cost);
    outcome.ranked_plans.push_back(reorder::CanonicalString(alt.logical));
  }
  StatusOr<DataSet> best = program->Run(0, &outcome.best_stats);
  EXPECT_TRUE(best.ok()) << best.status().ToString();
  outcome.best_output = std::move(best).value();
  size_t worst = program->ranked().size() - 1;
  StatusOr<DataSet> worst_out = program->Run(worst, &outcome.worst_stats);
  EXPECT_TRUE(worst_out.ok()) << worst_out.status().ToString();
  outcome.worst_output = std::move(worst_out).value();
  return outcome;
}

/// Byte-identical: same record sequence, not just bag equality — partition
/// gather order is part of the determinism contract.
void ExpectIdenticalOutput(const DataSet& a, const DataSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.record(i), b.record(i)) << "record " << i << ": "
                                        << a.record(i).ToString() << " vs "
                                        << b.record(i).ToString();
  }
}

/// All meters and the derived simulated time must match exactly;
/// wall_seconds is the one field allowed to vary with thread count.
void ExpectIdenticalMeters(const engine::ExecStats& a,
                           const engine::ExecStats& b) {
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.disk_bytes, b.disk_bytes);
  EXPECT_EQ(a.udf_calls, b.udf_calls);
  EXPECT_EQ(a.interp_instructions, b.interp_instructions);
  EXPECT_EQ(a.cpu_burn_units, b.cpu_burn_units);
  EXPECT_EQ(a.records_processed, b.records_processed);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
}

void ExpectThreadCountInvariance(const workloads::Workload& w,
                                 double mem_budget_bytes) {
  RunOutcome baseline = OptimizeAndRun(w, 1, mem_budget_bytes);
  ASSERT_FALSE(baseline.ranked_costs.empty());
  for (int threads : {2, 8}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    RunOutcome parallel = OptimizeAndRun(w, threads, mem_budget_bytes);
    // Identical ranking: same costs in the same order, same plans.
    ASSERT_EQ(parallel.ranked_costs.size(), baseline.ranked_costs.size());
    for (size_t i = 0; i < baseline.ranked_costs.size(); ++i) {
      EXPECT_EQ(parallel.ranked_costs[i], baseline.ranked_costs[i])
          << "rank " << i + 1;
      EXPECT_EQ(parallel.ranked_plans[i], baseline.ranked_plans[i])
          << "rank " << i + 1;
    }
    ExpectIdenticalOutput(parallel.best_output, baseline.best_output);
    ExpectIdenticalOutput(parallel.worst_output, baseline.worst_output);
    ExpectIdenticalMeters(parallel.best_stats, baseline.best_stats);
    ExpectIdenticalMeters(parallel.worst_stats, baseline.worst_stats);
  }
}

workloads::Workload SmallQ7() {
  workloads::TpchScale scale;
  scale.lineitems = 2000;
  scale.orders = 500;
  scale.customers = 100;
  scale.suppliers = 25;
  return workloads::MakeTpchQ7(scale);
}

workloads::Workload SmallClickstream() {
  workloads::ClickstreamScale scale;
  scale.sessions = 300;
  return workloads::MakeClickstream(scale);
}

TEST(ParallelDeterminism, TpchQ7IsThreadCountInvariant) {
  ExpectThreadCountInvariance(SmallQ7(), /*mem_budget_bytes=*/16 << 20);
}

TEST(ParallelDeterminism, ClickstreamIsThreadCountInvariant) {
  ExpectThreadCountInvariance(SmallClickstream(),
                              /*mem_budget_bytes=*/16 << 20);
}

TEST(ParallelDeterminism, SpillPathIsThreadCountInvariant) {
  // A memory budget far below the working set forces real spills (external
  // sorts, spilled breaker buffers, the hash join's merge fallback) in every
  // partition task; the spilled bytes, the peak meter, and the output must
  // be identical under concurrency.
  workloads::Workload w = SmallQ7();
  RunOutcome serial = OptimizeAndRun(w, 1, /*mem_budget_bytes=*/4 << 10);
  // The cheapest plan may legitimately dodge the budget (that is the point
  // of costing spills); the worst-ranked plan cannot.
  EXPECT_GT(serial.worst_stats.disk_bytes, 0) << "budget did not force spills";
  ExpectThreadCountInvariance(w, /*mem_budget_bytes=*/4 << 10);
}

TEST(ParallelDeterminism, ForcedSpillAtEightThreadsRunsTheRealSpillPath) {
  // Since the spill-to-disk breakers landed (DESIGN.md §2.3) this exercises
  // the real external-operator path under concurrency, not just the meter:
  // at 8 worker threads the budgeted run must write+read actual spill runs,
  // keep every instance under budget (plus slack), and still produce the
  // same bag of records as an effectively unbounded run.
  workloads::Workload w = SmallQ7();
  const double budget = 4 << 10;
  RunOutcome spilled = OptimizeAndRun(w, 8, budget);
  RunOutcome unbounded = OptimizeAndRun(w, 8, /*mem_budget_bytes=*/1 << 30);
  ASSERT_FALSE(spilled.ranked_costs.empty());

  EXPECT_GT(spilled.worst_stats.disk_bytes, 0);
  EXPECT_EQ(unbounded.worst_stats.disk_bytes, 0);
  // peak respects the per-instance budget by construction; one default
  // batch (256 records) of the widest Q7 records is ample slack.
  const int64_t slack = 96 << 10;
  EXPECT_LE(spilled.worst_stats.peak_bytes,
            static_cast<int64_t>(budget) + slack);
  EXPECT_LT(spilled.worst_stats.peak_bytes, unbounded.worst_stats.peak_bytes);

  // Across budgets only the bag is invariant (a spilling hash join may
  // legally execute as an external merge join, permuting record order).
  EXPECT_TRUE(spilled.worst_output.BagEquals(unbounded.worst_output));
  EXPECT_TRUE(spilled.best_output.BagEquals(unbounded.best_output));
}

}  // namespace
}  // namespace blackbox
