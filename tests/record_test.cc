#include "record/record.h"

#include <gtest/gtest.h>

namespace blackbox {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("abc")).AsString(), "abc");
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{1}).type(), ValueType::kInt);
}

TEST(Value, EqualityIsTypeSensitive) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));  // int and double never equal
  EXPECT_NE(Value(std::string("3")), Value(int64_t{3}));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, CoercionToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).ToDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToDouble(), 0.0);
}

TEST(Value, HashDistinguishesValues) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_EQ(Value(std::string("x")).Hash(), Value(std::string("x")).Hash());
}

TEST(Value, SerializedSizeCountsPayload) {
  EXPECT_EQ(Value::Null().SerializedSize(), 1u);
  EXPECT_EQ(Value(int64_t{5}).SerializedSize(), 9u);
  EXPECT_EQ(Value(std::string("abcd")).SerializedSize(), 1u + 4u + 4u);
}

TEST(Value, TotalOrderAcrossTypes) {
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value(std::string("a")) < Value(std::string("b")));
}

TEST(Record, SetFieldGrowsWithNulls) {
  Record r;
  r.SetField(2, Value(int64_t{9}));
  EXPECT_EQ(r.num_fields(), 3u);
  EXPECT_TRUE(r.field(0).is_null());
  EXPECT_EQ(r.field(2).AsInt(), 9);
}

TEST(Record, ConcatPreservesOrder) {
  Record a({Value(int64_t{1}), Value(int64_t{2})});
  Record b({Value(std::string("x"))});
  Record c = Record::Concat(a, b);
  ASSERT_EQ(c.num_fields(), 3u);
  EXPECT_EQ(c.field(2).AsString(), "x");
}

TEST(Record, EqualityPerPaperDefinition) {
  // r1 ≡ r2 iff same arity and pairwise equal values (§2.2).
  Record a({Value(int64_t{1}), Value(int64_t{2})});
  Record b({Value(int64_t{1}), Value(int64_t{2})});
  Record c({Value(int64_t{1})});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DataSet, BagEqualityIgnoresOrder) {
  Record r1({Value(int64_t{1})});
  Record r2({Value(int64_t{2})});
  DataSet a({std::vector<Record>{r1, r2}});
  DataSet b({std::vector<Record>{r2, r1}});
  EXPECT_TRUE(a.BagEquals(b));
}

TEST(DataSet, BagEqualityCountsDuplicates) {
  Record r1({Value(int64_t{1})});
  Record r2({Value(int64_t{2})});
  DataSet a({std::vector<Record>{r1, r1, r2}});
  DataSet b({std::vector<Record>{r1, r2, r2}});
  EXPECT_FALSE(a.BagEquals(b));
}

TEST(DataSet, AppendMovesRecords) {
  DataSet a({std::vector<Record>{Record({Value(int64_t{1})})}});
  DataSet b({std::vector<Record>{Record({Value(int64_t{2})})}});
  a.Append(std::move(b));
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace blackbox
