// Data-skipping soundness (DESIGN.md §2.5), in three layers:
//
//  1. BatchRefuter unit cases: out-of-range batches are refuted, anything
//     the abstraction cannot model soundly — loops, KAT access, dynamic
//     setField, error paths, empty sketches — degrades to "cannot skip"
//     (or refuses construction), never the reverse.
//  2. A randomized never-wrongly-skips property: whenever the refuter
//     claims a batch sketch admits no emitting record, every record of the
//     batch is brute-force interpreted and must emit nothing and return OK.
//  3. Engine-level checks: a fused filter chain skips refuted batches with
//     identical output, and the block hash join charges its accumulated
//     build-side matches to the partition ledger (the skewed-join memory
//     contract this PR fixes — the peak assertion fails against the
//     pre-fix metering, which left the match table unaccounted).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/optimizer_api.h"
#include "dataflow/flow.h"
#include "engine/executor.h"
#include "interp/interp.h"
#include "optimizer/physical.h"
#include "record/record.h"
#include "record/zone_map.h"
#include "sca/refute.h"
#include "tac/tac.h"
#include "tests/test_flows.h"
#include "workloads/workload.h"

namespace blackbox {
namespace {

using interp::CallInputs;
using interp::FieldTranslation;
using interp::Interpreter;
using sca::BatchRefuter;

/// Per-global-position ranges of a batch, in the layout RefutesEmit takes
/// (mirrors the engine's SketchRanges helper).
std::vector<ValueRange> Ranges(const ZoneMapSketch& sketch) {
  std::vector<ValueRange> cols;
  for (size_t c = 0; c < sketch.num_columns(); ++c) {
    cols.push_back(sketch.ColumnRange(c));
  }
  return cols;
}

ZoneMapSketch SketchOf(const std::vector<Record>& recs) {
  ZoneMapSketch s;
  for (const Record& r : recs) s.Observe(r);
  return s;
}

// --- refuter unit cases ------------------------------------------------------

TEST(BatchRefuter, ThresholdFilterRefutesOutOfRangeBatches) {
  // f2 from §3: emit iff field0 >= 0.
  auto fn = testing::MakeFilterNonNegUdf();
  FieldTranslation t;
  std::optional<BatchRefuter> r = BatchRefuter::Make(*fn, t);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->read_positions(), std::vector<int>{0});

  // Every record negative: provably nothing emits.
  EXPECT_TRUE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{-5}), Value(int64_t{1})}),
       Record({Value(int64_t{-2}), Value(int64_t{9})})}))));
  // One admissible record: cannot skip.
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{-5}), Value(int64_t{1})}),
       Record({Value(int64_t{3}), Value(int64_t{9})})}))));
  // A null field0 coerces to 0 under the numeric compare, which emits —
  // may_null must block refutation even when all present ints are negative.
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{-5}), Value(int64_t{1})}),
       Record({Value::Null(), Value(int64_t{9})})}))));
  // The empty batch: zero columns, so every position is modeled null-only
  // — and null admits the emit here. Degrades to "cannot skip".
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf({}))));
}

TEST(BatchRefuter, UnconditionalEmitIsNeverRefuted) {
  // f1 (abs) emits on every path: no sketch can refute it, not even one
  // admitting nothing at all — an emit instruction is reachable regardless
  // of field contents.
  auto fn = testing::MakeAbsUdf();
  FieldTranslation t;
  std::optional<BatchRefuter> r = BatchRefuter::Make(*fn, t);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{1}), Value(int64_t{2})})}))));
  EXPECT_FALSE(r->RefutesEmit({}));  // empty sketch, zero columns
}

TEST(BatchRefuter, CoarseDivisionDegradesToCannotSkip) {
  // Division by zero is total in the interpreter (yields 0), and the
  // abstraction models kDiv as unbounded: emit iff 10 / field0 == 0 cannot
  // be refuted for ANY range — including ones ({0}) where the division
  // actually hits the zero-divisor case and emits. Coarseness only ever
  // loses skips, never output.
  tac::FunctionBuilder b("div_probe", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg q = b.Div(b.ConstInt(10), b.GetField(ir, 0));
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(b.CmpEq(q, b.ConstInt(0)), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  auto fn = testing::Built(std::move(b));
  FieldTranslation t;
  std::optional<BatchRefuter> r = BatchRefuter::Make(*fn, t);
  ASSERT_TRUE(r.has_value());
  // 10 / 0 == 0: this batch really does emit.
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{0})})}))));
  // 10 / 2 == 5: no record emits, but the unbounded div image still admits
  // 0 — the refuter declines rather than guessing.
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{2})})}))));
}

TEST(BatchRefuter, ColumnRangesOverApproximateAcrossFields) {
  // The sketch is a per-column box: records (0,10) and (10,0) both fail
  // "field0 >= 5 AND field1 >= 5" individually, but the box [0,10]×[0,10]
  // admits (10,10), which would emit. A batch whose every record is refuted
  // one-by-one may still be unskippable — skipping is whole-batch or not at
  // all, and only ever an over-approximation.
  tac::FunctionBuilder b("both_ge_5", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg five = b.ConstInt(5);
  tac::Reg cond = b.And(b.CmpGe(b.GetField(ir, 0), five),
                        b.CmpGe(b.GetField(ir, 1), five));
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(cond, skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  auto fn = testing::Built(std::move(b));
  FieldTranslation t;
  std::optional<BatchRefuter> r = BatchRefuter::Make(*fn, t);
  ASSERT_TRUE(r.has_value());

  std::vector<Record> batch = {
      Record({Value(int64_t{0}), Value(int64_t{10})}),
      Record({Value(int64_t{10}), Value(int64_t{0})})};
  // Brute force: no record of this batch emits...
  Interpreter interp(fn.get());
  for (const Record& rec : batch) {
    CallInputs ci;
    ci.groups = {{&rec}};
    std::vector<Record> out;
    ASSERT_TRUE(interp.Run(ci, t, &out).ok());
    EXPECT_TRUE(out.empty());
  }
  // ...yet the box admits an emitting point, so the batch must not skip.
  EXPECT_FALSE(r->RefutesEmit(Ranges(SketchOf(batch))));
  // With both columns strictly below the threshold the box itself is
  // refuted and the batch can skip.
  EXPECT_TRUE(r->RefutesEmit(Ranges(SketchOf(
      {Record({Value(int64_t{0}), Value(int64_t{1})}),
       Record({Value(int64_t{4}), Value(int64_t{2})})}))));
}

TEST(BatchRefuter, CannotAnalyzeDegradesToCannotSkip) {
  FieldTranslation t;

  // Backward branch (a loop): the step-limit error cannot be ruled out.
  {
    tac::FunctionBuilder b("loops", 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg v = b.GetField(ir, 0);
    tac::Label top = b.NewLabel();
    tac::Label done = b.NewLabel();
    b.Bind(top);
    b.BranchIfFalse(b.CmpGt(v, b.ConstInt(0)), done);
    v = b.Sub(v, b.ConstInt(1));
    b.Goto(top);
    b.Bind(done);
    b.Return();
    auto fn = testing::Built(std::move(b));
    EXPECT_FALSE(BatchRefuter::Make(*fn, t).has_value());
  }

  // KAT group access is not modeled.
  {
    tac::FunctionBuilder b("kat", 1, tac::UdfKind::kKat);
    b.InputCount(0);
    b.Return();
    auto fn = testing::Built(std::move(b));
    EXPECT_FALSE(BatchRefuter::Make(*fn, t).has_value());
  }

  // Dynamic setField: the written position is opaque, and an out-of-range
  // write is a runtime error skipping would hide.
  {
    tac::FunctionBuilder b("dynset", 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg out = b.Copy(ir);
    b.SetFieldDyn(out, b.GetField(ir, 0), b.ConstInt(1));
    b.Return();
    auto fn = testing::Built(std::move(b));
    EXPECT_FALSE(BatchRefuter::Make(*fn, t).has_value());
  }

  // A setField whose translated position resolves negative under this
  // placement's input map is an OutOfRange error at runtime.
  {
    tac::FunctionBuilder b("narrow", 1, tac::UdfKind::kRat);
    tac::Reg ir = b.InputRecord(0);
    tac::Reg out = b.Copy(ir);
    b.SetField(out, 2, b.ConstInt(1));
    b.Return();
    auto fn = testing::Built(std::move(b));
    FieldTranslation narrow;
    narrow.input_maps = {{0, 1}};  // local field 2 has no global position
    narrow.output_map = {0, 1};
    EXPECT_FALSE(BatchRefuter::Make(*fn, narrow).has_value());
  }
}

// --- randomized soundness ----------------------------------------------------

/// A random single- or two-predicate filter: emit iff cmp0(expr, c0)
/// [and/or cmp1(field, c1)], where expr is a field or a field sum. Shapes
/// chosen to exercise every comparison opcode, And/Or joins, arithmetic
/// widening, and mixed-type fields.
std::shared_ptr<const tac::Function> RandomFilter(Rng* rng) {
  tac::FunctionBuilder b("rand_filter", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  auto cmp = [&](tac::Reg a, tac::Reg c) {
    switch (rng->Uniform(0, 5)) {
      case 0: return b.CmpLt(a, c);
      case 1: return b.CmpLe(a, c);
      case 2: return b.CmpGt(a, c);
      case 3: return b.CmpGe(a, c);
      case 4: return b.CmpEq(a, c);
      default: return b.CmpNe(a, c);
    }
  };
  auto expr = [&]() {
    tac::Reg a = b.GetField(ir, static_cast<int>(rng->Uniform(0, 2)));
    if (rng->Chance(0.3)) {
      return b.Add(a, b.GetField(ir, static_cast<int>(rng->Uniform(0, 2))));
    }
    return a;
  };
  tac::Reg cond = cmp(expr(), b.ConstInt(rng->Uniform(-100, 100)));
  if (rng->Chance(0.4)) {
    tac::Reg c2 = cmp(expr(), b.ConstInt(rng->Uniform(-100, 100)));
    cond = rng->Chance(0.5) ? b.And(cond, c2) : b.Or(cond, c2);
  }
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(cond, skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  return testing::Built(std::move(b));
}

Record RandomRecord(Rng* rng) {
  std::vector<Value> fields;
  for (int f = 0; f < 3; ++f) {
    int64_t pick = rng->Uniform(0, 99);
    if (pick < 55) {
      fields.emplace_back(rng->Uniform(-40, 40));
    } else if (pick < 70) {
      fields.emplace_back(static_cast<double>(rng->Uniform(-40, 40)) + 0.5);
    } else if (pick < 85) {
      fields.emplace_back(rng->String(static_cast<size_t>(
          rng->Uniform(0, 6))));
    } else {
      fields.push_back(Value::Null());
    }
  }
  return Record(std::move(fields));
}

TEST(BatchRefuter, RandomizedRefutationsNeverWrong) {
  Rng rng(20260808);
  FieldTranslation t;
  int refuted = 0;
  int admitted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    auto fn = RandomFilter(&rng);
    std::optional<BatchRefuter> r = BatchRefuter::Make(*fn, t);
    ASSERT_TRUE(r.has_value()) << "straight-line RAT filters must analyze";

    std::vector<Record> batch;
    for (int i = 0; i < 24; ++i) batch.push_back(RandomRecord(&rng));
    if (!r->RefutesEmit(Ranges(SketchOf(batch)))) {
      ++admitted;
      continue;
    }
    ++refuted;
    // The refuter's claim, checked by brute force: every record of the
    // batch emits nothing and returns OK.
    Interpreter interp(fn.get());
    for (const Record& rec : batch) {
      CallInputs ci;
      ci.groups = {{&rec}};
      std::vector<Record> out;
      Status st = interp.Run(ci, t, &out);
      EXPECT_TRUE(st.ok()) << "wrongly skipped an erroring record: "
                           << st.ToString();
      EXPECT_TRUE(out.empty()) << "wrongly skipped an emitting record";
      if (!st.ok() || !out.empty()) return;  // one counterexample is enough
    }
  }
  // The test only means something if both verdicts actually occur.
  EXPECT_GT(refuted, 20);
  EXPECT_GT(admitted, 20);
}

// --- engine-level skipping ---------------------------------------------------

TEST(DataSkippingExec, FusedFilterChainSkipsRefutedBatches) {
  // A filter no input record can pass: with skipping on, whole batches are
  // refuted at the chain head and never interpreted; output is identical
  // (empty) either way and the meters prove the elision.
  dataflow::DataFlow flow;
  int src = flow.AddSource("I", 2, 500, 18);
  tac::FunctionBuilder b("f_ge_1000", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(b.CmpGe(b.GetField(ir, 0), b.ConstInt(1000)), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  int m = flow.AddMap("big_filter", src, testing::Built(std::move(b)));
  flow.SetSink("O", m);

  DataSet data;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    data.Add(Record({Value(rng.Uniform(-100, 100)),
                     Value(rng.Uniform(0, 50))}));
  }

  core::BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto run = [&](bool skipping, engine::ExecStats* stats) {
    engine::ExecOptions eo;
    eo.dop = 2;
    eo.enable_data_skipping = skipping;
    engine::Executor exec(&result->annotated, eo);
    exec.BindSource(0, &data);
    return exec.Execute(result->ranked[0].physical, stats);
  };
  engine::ExecStats on, off;
  StatusOr<DataSet> out_on = run(true, &on);
  StatusOr<DataSet> out_off = run(false, &off);
  ASSERT_TRUE(out_on.ok()) << out_on.status().ToString();
  ASSERT_TRUE(out_off.ok()) << out_off.status().ToString();

  EXPECT_TRUE(out_on->BagEquals(*out_off));
  EXPECT_EQ(out_on->size(), 0u);
  EXPECT_GT(on.skipped_batches, 0);
  EXPECT_EQ(off.skipped_batches, 0);
  // Skipped batches never reach the interpreter.
  EXPECT_LT(on.udf_calls, off.udf_calls);
  EXPECT_EQ(on.output_rows, off.output_rows);
  EXPECT_EQ(on.network_bytes, off.network_bytes);
}

// --- the skewed-join memory contract -----------------------------------------

/// Finds the (single) Match node in a physical plan.
optimizer::PhysicalNode* FindMatchNode(optimizer::PhysicalNode* n,
                                       const dataflow::DataFlow& flow) {
  if (flow.op(n->op_id).kind == dataflow::OpKind::kMatch) return n;
  for (auto& c : n->children) {
    if (optimizer::PhysicalNode* hit = FindMatchNode(c.get(), flow)) {
      return hit;
    }
  }
  return nullptr;
}

TEST(SkewedJoinMemoryContract, BlockJoinChargesAccumulatedMatches) {
  // One hot key on the build side: every probe record matches the entire
  // build partition, so the block hash join's per-probe-batch match table
  // holds build_rows × probe_batch copies — far beyond the instance budget.
  // Those copies are pinned working set and MUST be charged to the ledger
  // (DESIGN.md §2.3); against the pre-fix metering, which accumulated them
  // unaccounted, peak_bytes stays near the budget and this test fails.
  constexpr int kBuildRows = 300;
  constexpr int kProbeRows = 40;
  const std::string payload(40, 'p');

  dataflow::DataFlow flow;
  int build = flow.AddSource("build", 2, kBuildRows, 50);
  int probe = flow.AddSource("probe", 2, kProbeRows, 50);
  int join = flow.AddMatch("hot_join", build, probe, {0}, {0},
                           workloads::MakeConcatJoinUdf("hot_join"));
  flow.SetSink("O", join);

  DataSet build_data;
  for (int i = 0; i < kBuildRows; ++i) {
    build_data.Add(Record({Value(int64_t{7}), Value(payload)}));
  }
  DataSet probe_data;
  for (int i = 0; i < kProbeRows; ++i) {
    probe_data.Add(Record({Value(int64_t{7}), Value(std::string("q"))}));
  }

  core::BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Force the block-hash-join path deterministically: a hash join whose
  // output carries an order it must preserve, with a build side larger than
  // the budget. (The planner picks this combination itself when the probe
  // side's order is interesting downstream; pinning it here keeps the test
  // independent of cost-model tuning.)
  optimizer::PhysicalNode* match =
      FindMatchNode(result->ranked[0].physical.root.get(), flow);
  ASSERT_NE(match, nullptr);
  match->local = optimizer::LocalStrategy::kHashJoinBuildLeft;
  match->sort_order = {0};

  engine::ExecOptions eo;
  eo.dop = 1;
  eo.mem_budget_bytes = 4096;  // build payload ~15KB: forces the block join
  engine::Executor exec(&result->annotated, eo);
  exec.BindSource(0, &build_data);
  exec.BindSource(1, &probe_data);
  engine::ExecStats stats;
  StatusOr<DataSet> out = exec.Execute(result->ranked[0].physical, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Every probe record matches every build record.
  EXPECT_EQ(out->size(), static_cast<size_t>(kBuildRows) * kProbeRows);
  // The pinned match table is ~kProbeBatch × kBuildRows × ~50B — hundreds
  // of kilobytes. Pre-fix, nothing above a few budget multiples of batch
  // slack was ever charged, so this bound separates the two cleanly.
  EXPECT_GT(stats.peak_bytes, int64_t{64} * 1024)
      << "block-join matches are not charged to the partition ledger";
}

}  // namespace
}  // namespace blackbox
