// Unit coverage of zone-map sketches (DESIGN.md §2.5): the edge cases the
// soundness rule lives or dies by. A sketch may only ever over-approximate —
// empty batches admit nothing, mixed and non-comparable value types widen,
// long strings open the upper bound instead of guessing, and the encode/
// decode round-trip preserves exactly the ranges consumers refute against.

#include "record/zone_map.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "record/record.h"

namespace blackbox {
namespace {

TEST(ZoneMap, EmptySketchAdmitsNothing) {
  ZoneMapSketch s;
  EXPECT_EQ(s.rows(), 0u);
  ValueRange r = s.ColumnRange(0);
  EXPECT_TRUE(r.Nothing());
  EXPECT_FALSE(r.may_null);
  // Nothing intersects nothing — not even Top.
  EXPECT_FALSE(RangesMayIntersect(r, ValueRange::Top()));
  EXPECT_FALSE(RangesMayIntersect(ValueRange::Top(), r));
}

TEST(ZoneMap, IntBoundsAndOutOfWidthPositions) {
  ZoneMapSketch s;
  s.Observe(Record({Value(int64_t{5})}));
  s.Observe(Record({Value(int64_t{-3}), Value(int64_t{7})}));
  ValueRange c0 = s.ColumnRange(0);
  EXPECT_TRUE(c0.may_int);
  EXPECT_EQ(c0.int_lo, -3);
  EXPECT_EQ(c0.int_hi, 5);
  EXPECT_FALSE(c0.may_null);
  // Column 1 was absent on the first record: present values OR null.
  ValueRange c1 = s.ColumnRange(1);
  EXPECT_TRUE(c1.may_int);
  EXPECT_TRUE(c1.may_null);
  // Positions past every record's width are null-only — the kGetField /
  // KeyOf out-of-range semantics.
  ValueRange c9 = s.ColumnRange(9);
  EXPECT_TRUE(c9.may_null);
  EXPECT_FALSE(c9.may_int || c9.may_double || c9.may_str);
}

TEST(ZoneMap, MixedTypesKeepSeparateRanges) {
  // Value equality is exact-type: Int(5) never equals Double(5.0), so the
  // ranges must stay separate per type for the join refutation to be exact.
  ZoneMapSketch ints;
  ints.Observe(Record({Value(int64_t{5})}));
  ZoneMapSketch dbls;
  dbls.Observe(Record({Value(5.0)}));
  EXPECT_FALSE(RangesMayIntersect(ints.ColumnRange(0), dbls.ColumnRange(0)));

  // A column holding int AND double AND string AND null intersects each.
  ZoneMapSketch mixed;
  mixed.Observe(Record({Value(int64_t{5})}));
  mixed.Observe(Record({Value(5.0)}));
  mixed.Observe(Record({Value("five")}));
  mixed.Observe(Record({Value::Null()}));
  ValueRange m = mixed.ColumnRange(0);
  EXPECT_TRUE(m.may_int && m.may_double && m.may_str && m.may_null);
  EXPECT_TRUE(RangesMayIntersect(m, ints.ColumnRange(0)));
  EXPECT_TRUE(RangesMayIntersect(m, dbls.ColumnRange(0)));

  // Disjoint same-type ranges refute; null∧null intersects.
  ZoneMapSketch other;
  other.Observe(Record({Value(int64_t{100})}));
  EXPECT_FALSE(RangesMayIntersect(ints.ColumnRange(0), other.ColumnRange(0)));
  ZoneMapSketch null_only;
  null_only.Observe(Record({Value::Null()}));
  EXPECT_TRUE(RangesMayIntersect(m, null_only.ColumnRange(0)));
  EXPECT_FALSE(
      RangesMayIntersect(ints.ColumnRange(0), null_only.ColumnRange(0)));
}

TEST(ZoneMap, NanWidensTheDoubleRange) {
  ZoneMapSketch s;
  s.Observe(Record({Value(1.5)}));
  s.Observe(Record({Value(std::nan(""))}));
  ValueRange r = s.ColumnRange(0);
  ASSERT_TRUE(r.may_double);
  EXPECT_EQ(r.dbl_lo, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.dbl_hi, std::numeric_limits<double>::infinity());
  // The widened range intersects any double range — NaN can never be the
  // reason a batch is skipped.
  ZoneMapSketch probe;
  probe.Observe(Record({Value(1e300)}));
  EXPECT_TRUE(RangesMayIntersect(r, probe.ColumnRange(0)));
}

TEST(ZoneMap, LongStringsOpenTheUpperBound) {
  const std::string long_str(100, 'm');  // > kMaxTrackedStringBytes
  ZoneMapSketch s;
  s.Observe(Record({Value("banana")}));
  s.Observe(Record({Value(long_str)}));
  ValueRange r = s.ColumnRange(0);
  ASSERT_TRUE(r.may_str);
  EXPECT_TRUE(r.str_hi_open) << "a long string must open the upper bound";
  EXPECT_EQ(r.str_lo, "banana");
  EXPECT_LE(r.str_lo.size(), ZoneMapSketch::kMaxTrackedStringBytes);

  // Open-above intersects anything at or above the lower bound...
  ZoneMapSketch above;
  above.Observe(Record({Value("zzzz")}));
  EXPECT_TRUE(RangesMayIntersect(r, above.ColumnRange(0)));
  // ...but a range strictly below the lower bound still refutes.
  ZoneMapSketch below;
  below.Observe(Record({Value("aaaa")}));
  EXPECT_FALSE(RangesMayIntersect(r, below.ColumnRange(0)));

  // The truncated prefix is a valid (conservative) lower bound: a sketch of
  // only-long strings keeps the prefix as str_lo, which is <= the true min.
  ZoneMapSketch only_long;
  only_long.Observe(Record({Value(long_str)}));
  ValueRange ol = only_long.ColumnRange(0);
  EXPECT_EQ(ol.str_lo, long_str.substr(0, ZoneMapSketch::kMaxTrackedStringBytes));
  EXPECT_LE(ol.str_lo, long_str);
}

TEST(ZoneMap, MergeIsTheUnionOfAdmittedValues) {
  ZoneMapSketch a;
  a.Observe(Record({Value(int64_t{1}), Value("apple")}));
  ZoneMapSketch b;
  b.Observe(Record({Value(int64_t{9}), Value(std::string(64, 'z'))}));
  b.Observe(Record({Value::Null(), Value("kiwi")}));
  a.Merge(b);
  EXPECT_EQ(a.rows(), 3u);
  ValueRange c0 = a.ColumnRange(0);
  EXPECT_EQ(c0.int_lo, 1);
  EXPECT_EQ(c0.int_hi, 9);
  EXPECT_TRUE(c0.may_null);
  ValueRange c1 = a.ColumnRange(1);
  EXPECT_EQ(c1.str_lo, "apple");
  EXPECT_TRUE(c1.str_hi_open) << "merge must carry the open upper bound";
}

TEST(ZoneMap, EncodeDecodeRoundTripPreservesRanges) {
  ZoneMapSketch s;
  s.Observe(Record({Value(int64_t{-7}), Value(2.25), Value("pear")}));
  s.Observe(Record({Value(int64_t{42}), Value::Null(),
                    Value(std::string(80, 'x'))}));
  std::string buf;
  s.EncodeTo(&buf);
  size_t pos = 0;
  StatusOr<ZoneMapSketch> back = ZoneMapSketch::Decode(buf.data(), buf.size(),
                                                       &pos);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back->rows(), s.rows());
  ASSERT_EQ(back->num_columns(), s.num_columns());
  for (size_t c = 0; c < s.num_columns(); ++c) {
    ValueRange want = s.ColumnRange(c);
    ValueRange got = back->ColumnRange(c);
    EXPECT_EQ(got.may_null, want.may_null) << "column " << c;
    EXPECT_EQ(got.may_int, want.may_int);
    EXPECT_EQ(got.int_lo, want.int_lo);
    EXPECT_EQ(got.int_hi, want.int_hi);
    EXPECT_EQ(got.may_double, want.may_double);
    EXPECT_EQ(got.dbl_lo, want.dbl_lo);
    EXPECT_EQ(got.dbl_hi, want.dbl_hi);
    EXPECT_EQ(got.may_str, want.may_str);
    EXPECT_EQ(got.str_lo, want.str_lo);
    EXPECT_EQ(got.str_hi, want.str_hi);
    EXPECT_EQ(got.str_hi_open, want.str_hi_open);
  }

  // Every truncation of the encoding is Corruption, never a crash.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t p = 0;
    EXPECT_FALSE(ZoneMapSketch::Decode(buf.data(), cut, &p).ok());
  }
}

}  // namespace
}  // namespace blackbox
