// Golden-cost snapshots for the winning physical plans of TPC-H Q7 and the
// clickstream task at a fixed optimizer configuration. The full strategy
// string (ship + local strategy per operator, presorted-input markers) and
// the cost components are pinned, so silent cost-model drift — a changed
// weight, a lost interesting property, an accidentally disabled strategy —
// fails a test instead of only bending a benchmark curve.
//
// When a deliberate cost-model change moves these values, re-derive the
// goldens from the failure output (the test prints the actual summary and
// components) and update them together with a DESIGN.md note.

#include <gtest/gtest.h>

#include <string>

#include "api/optimized_program.h"
#include "api/pipeline.h"
#include "optimizer/physical.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

/// Compact preorder strategy summary: name[local|ship,...] per node, with a
/// '*' marking an input whose sort order the optimizer reused (presorted).
std::string Summary(const optimizer::PhysicalNode& n,
                    const dataflow::DataFlow& flow) {
  std::string out =
      flow.op(n.op_id).name + "[" + optimizer::LocalStrategyName(n.local);
  for (size_t i = 0; i < n.ships.size(); ++i) {
    out += "|";
    out += optimizer::ShipStrategyName(n.ships[i]);
    if (i < n.input_presorted.size() && n.input_presorted[i]) out += "*";
  }
  out += "]";
  for (const auto& c : n.children) out += " " + Summary(*c, flow);
  return out;
}

void Components(const optimizer::PhysicalNode& n, double* net, double* disk,
                double* cpu) {
  *net += n.cost_network;
  *disk += n.cost_disk;
  *cpu += n.cost_cpu;
  for (const auto& c : n.children) Components(*c, net, disk, cpu);
}

struct Snapshot {
  std::string summary;
  double total = 0, net = 0, disk = 0, cpu = 0;
};

Snapshot TakeSnapshot(const workloads::Workload& w,
                      const api::AnnotationProvider& provider) {
  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 1 << 20;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  Snapshot snap;
  if (!program.ok()) {
    ADD_FAILURE() << "optimize failed: " << program.status().ToString();
    return snap;
  }
  const core::PlannedAlternative& best = program->best();
  snap.summary = Summary(*best.physical.root, w.flow);
  snap.total = best.cost;
  Components(*best.physical.root, &snap.net, &snap.disk, &snap.cpu);
  return snap;
}

void ExpectNearRel(double actual, double golden, const char* what) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * 1e-9 + 1e-9)
      << what << " drifted: actual " << actual << " vs golden " << golden;
}

TEST(CostSnapshot, TpchQ7WinningPlan) {
  // The fig5 / ablation scale: large enough that γ's input dwarfs the
  // nations²·dop partial bound, so the combiner belongs in the winner.
  workloads::TpchScale scale;
  scale.lineitems = 60000;
  scale.orders = 15000;
  scale.customers = 1500;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  Snapshot snap = TakeSnapshot(w, sca);

  // The winner inserts a combiner below the aggregation's shuffle; the
  // lineitem spine stays forward with small sides broadcast.
  EXPECT_EQ(snap.summary,
            "q7_sink[stream|forward] "
            "q7_nation_pair_filter[stream|forward] "
            "q7_sum_volume[combine+sort-group|hash-partition] "
            "q7_join_l_s[hash-join(build=right)|forward|broadcast] "
            "q7_join_o_c[hash-join(build=right)|forward|broadcast] "
            "q7_join_l_o[hash-join(build=right)|hash-partition|hash-partition] "
            "q7_filter_prepare[stream|forward] "
            "lineitem[stream] "
            "orders[stream] "
            "q7_join_c_n1[hash-join(build=right)|forward|broadcast] "
            "customer[stream] "
            "nation1[stream] "
            "q7_join_s_n2[hash-join(build=right)|hash-partition|hash-partition] "
            "supplier[stream] "
            "nation2[stream]");
  // Goldens re-derived after the fused-chain specialization discount
  // (DESIGN.md §2.6): Maps on fused edges now pay cpu_per_call_unit × 0.5,
  // which removes 1212500 from the CPU component versus the PR 4 goldens
  // and lets the (byte-equivalent, previously tie-adjacent) plan that hangs
  // the supplier join above the customer join win the spine; network and
  // disk are untouched, as the discount is CPU-only.
  ExpectNearRel(snap.total, 5029400.964479, "q7 total cost");
  ExpectNearRel(snap.net, 2094750.0, "q7 network cost");
  ExpectNearRel(snap.disk, 0.0, "q7 disk cost");
  ExpectNearRel(snap.cpu, 2934650.964479, "q7 cpu cost");
}

TEST(CostSnapshot, ClickstreamWinningPlan) {
  workloads::ClickstreamScale scale;
  scale.sessions = 2000;
  scale.users = 200;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::ManualProvider manual;
  Snapshot snap = TakeSnapshot(w, manual);

  // The winner pushes both joins below the Reduces (broadcast login/user)
  // and condense_sessions reuses filter_buy_sessions' sort order — the
  // forward* marker pins the interesting-order reuse.
  EXPECT_EQ(snap.summary,
            "clickstream_sink[stream|forward] "
            "append_user_info[hash-join(build=right)|forward|broadcast] "
            "condense_sessions[sort-group|forward*] "
            "filter_buy_sessions[sort-group|hash-partition] "
            "filter_logged_in_sessions[hash-join(build=right)|forward|"
            "broadcast] "
            "click[stream] "
            "login[stream] "
            "user[stream]");
  ExpectNearRel(snap.total, 1390053.986657, "clickstream total cost");
  ExpectNearRel(snap.net, 711200.0, "clickstream network cost");
  ExpectNearRel(snap.disk, 0.0, "clickstream disk cost");
  ExpectNearRel(snap.cpu, 678853.986657, "clickstream cpu cost");
}

TEST(CostSnapshot, AblationSwitchesChangeTheWinner) {
  // Cross-check that the pinned winners actually depend on the new features:
  // disabling the combiner must strictly raise Q7's best estimated cost, and
  // the flag must flip the chosen Reduce strategy out of combine+sort-group.
  workloads::TpchScale scale;
  scale.lineitems = 60000;
  scale.orders = 15000;
  scale.customers = 1500;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  auto best_with = [&](bool combiner) {
    api::OptimizeOptions options;
    options.exec.dop = 8;
    options.exec.mem_budget_bytes = 1 << 20;
    options.weights.enable_combiner = combiner;
    StatusOr<api::OptimizedProgram> program =
        api::OptimizeFlow(w.flow, sca, options, sources);
    EXPECT_TRUE(program.ok());
    Snapshot snap;
    snap.total = program->best().cost;
    snap.summary = Summary(*program->best().physical.root, w.flow);
    return snap;
  };
  Snapshot on = best_with(true);
  Snapshot off = best_with(false);
  EXPECT_LT(on.total, off.total);
  EXPECT_NE(on.summary.find("combine+sort-group"), std::string::npos);
  EXPECT_EQ(off.summary.find("combine+sort-group"), std::string::npos);
}

}  // namespace
}  // namespace blackbox
