// Shared test fixtures: small data flows built around the paper's Section 3
// example and variants used across the reorder / enumerate / engine tests.

#ifndef BLACKBOX_TESTS_TEST_FLOWS_H_
#define BLACKBOX_TESTS_TEST_FLOWS_H_

#include <cassert>
#include <memory>

#include "dataflow/flow.h"
#include "record/record.h"
#include "tac/tac.h"

namespace blackbox {
namespace testing {

inline std::shared_ptr<const tac::Function> Built(tac::FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

/// f1 from §3: field1 := |field1|.
inline std::shared_ptr<const tac::Function> MakeAbsUdf() {
  tac::FunctionBuilder b("f1_abs", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg v = b.GetField(ir, 1);
  tac::Reg out = b.Copy(ir);
  tac::Label done = b.NewLabel();
  b.BranchIfTrue(b.CmpGe(v, b.ConstInt(0)), done);
  b.SetField(out, 1, b.Neg(v));
  b.Bind(done);
  b.Emit(out);
  b.Return();
  return Built(std::move(b));
}

/// f2 from §3: emit iff field0 >= 0.
inline std::shared_ptr<const tac::Function> MakeFilterNonNegUdf() {
  tac::FunctionBuilder b("f2_filter", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg a = b.GetField(ir, 0);
  tac::Label skip = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(a, b.ConstInt(0)), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  return Built(std::move(b));
}

/// f3 from §3: field0 := field0 + field1.
inline std::shared_ptr<const tac::Function> MakeSumUdf() {
  tac::FunctionBuilder b("f3_sum", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg a = b.GetField(ir, 0);
  tac::Reg bb = b.GetField(ir, 1);
  tac::Reg out = b.Copy(ir);
  b.SetField(out, 0, b.Add(a, bb));
  b.Emit(out);
  b.Return();
  return Built(std::move(b));
}

/// The Section 3 program: I -> Map1(f1) -> Map2(f2) -> Map3(f3) -> O over a
/// two-attribute input <A, B>.
inline dataflow::DataFlow MakeSection3Flow() {
  dataflow::DataFlow f;
  int src = f.AddSource("I", 2, 1000, 18);
  int m1 = f.AddMap("map1_abs", src, MakeAbsUdf());
  int m2 = f.AddMap("map2_filter", m1, MakeFilterNonNegUdf());
  int m3 = f.AddMap("map3_sum", m2, MakeSumUdf());
  f.SetSink("O", m3);
  return f;
}

/// Input data for the Section 3 flow.
inline DataSet MakeSection3Data() {
  DataSet ds;
  ds.Add(Record({Value(int64_t{2}), Value(int64_t{-3})}));
  ds.Add(Record({Value(int64_t{-2}), Value(int64_t{-3})}));
  ds.Add(Record({Value(int64_t{5}), Value(int64_t{1})}));
  ds.Add(Record({Value(int64_t{0}), Value(int64_t{0})}));
  ds.Add(Record({Value(int64_t{-7}), Value(int64_t{4})}));
  return ds;
}

/// The Map/Reduce counter-example of §4.2.2: Map filters odd A and B, Reduce
/// sums B per A-key into a new attribute C — NOT reorderable (KGP fails).
inline dataflow::DataFlow MakeSection422Flow() {
  dataflow::DataFlow f;
  int src = f.AddSource("I", 2, 1000, 18);

  tac::FunctionBuilder mb("f_odd_filter", 1, tac::UdfKind::kRat);
  tac::Reg ir = mb.InputRecord(0);
  tac::Reg a = mb.GetField(ir, 0);
  tac::Reg b2 = mb.GetField(ir, 1);
  tac::Reg two = mb.ConstInt(2);
  tac::Reg odd =
      mb.And(mb.CmpEq(mb.Mod(a, two), mb.ConstInt(1)),
             mb.CmpEq(mb.Mod(b2, two), mb.ConstInt(1)));
  tac::Label skip = mb.NewLabel();
  mb.BranchIfFalse(odd, skip);
  mb.Emit(mb.Copy(ir));
  mb.Bind(skip);
  mb.Return();
  int map = f.AddMap("odd_filter", src, Built(std::move(mb)));

  tac::FunctionBuilder rb("g_sum_b", 1, tac::UdfKind::kKat);
  tac::Reg n = rb.InputCount(0);
  tac::Reg i = rb.ConstInt(0);
  tac::Reg sum = rb.ConstInt(0);
  tac::Label loop = rb.NewLabel();
  tac::Label done = rb.NewLabel();
  rb.Bind(loop);
  rb.BranchIfFalse(rb.CmpLt(i, n), done);
  tac::Reg r = rb.InputAt(0, i);
  rb.AccumAdd(sum, rb.GetField(r, 1));
  rb.AccumAdd(i, rb.ConstInt(1));
  rb.Goto(loop);
  rb.Bind(done);
  // Emits every record of the group with the sum appended as attribute C.
  tac::Reg j = rb.ConstInt(0);
  tac::Label eloop = rb.NewLabel();
  tac::Label eout = rb.NewLabel();
  rb.Bind(eloop);
  rb.BranchIfFalse(rb.CmpLt(j, n), eout);
  tac::Reg r2 = rb.InputAt(0, j);
  tac::Reg out = rb.Copy(r2);
  rb.SetField(out, 2, sum);
  rb.Emit(out);
  rb.AccumAdd(j, rb.ConstInt(1));
  rb.Goto(eloop);
  rb.Bind(eout);
  rb.Return();
  dataflow::Hints h;
  h.distinct_keys = 100;
  int red = f.AddReduce("sum_b_per_a", map, {0}, Built(std::move(rb)), h);

  f.SetSink("O", red);
  return f;
}

}  // namespace testing
}  // namespace blackbox

#endif  // BLACKBOX_TESTS_TEST_FLOWS_H_
