// Annotation-layer tests: the global record (Definition 1), redirection
// schemas, write-set resolution including the complement representation for
// implicit projection, and manual-vs-SCA agreement.

#include "dataflow/annotate.h"

#include <gtest/gtest.h>

#include "tests/test_flows.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace dataflow {
namespace {

TEST(Annotate, Section3GlobalRecordHasTwoAttrs) {
  DataFlow flow = blackbox::testing::MakeSection3Flow();
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok()) << af.status().ToString();
  // The three maps only modify existing attributes: the global record is
  // exactly {A, B}.
  EXPECT_EQ(af->global.size(), 2);
  // R_f1 = {B}, W_f1 = {B}.
  EXPECT_TRUE(af->of(1).read.Contains(1));
  EXPECT_TRUE(af->of(1).write.Contains(1));
  EXPECT_FALSE(af->of(1).write.Contains(0));
  // R_f2 = {A}, W_f2 = {}.
  EXPECT_TRUE(af->of(2).read.Contains(0));
  EXPECT_TRUE(af->of(2).write.Empty());
  // W_f3 = {A}.
  EXPECT_TRUE(af->of(3).write.Contains(0));
}

TEST(Annotate, NewAttributesJoinTheGlobalRecord) {
  DataFlow flow = blackbox::testing::MakeSection422Flow();
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  // The Reduce appends attribute C: global record = {A, B, C}.
  EXPECT_EQ(af->global.size(), 3);
  const OpProperties& reduce = af->of(2);
  EXPECT_EQ(reduce.out_schema.size(), 3u);
  // C is newly created: in the write set and the introduced set (Def. 2
  // case 1).
  EXPECT_TRUE(reduce.write.Contains(2));
  EXPECT_TRUE(reduce.introduced.Contains(2));
}

TEST(Annotate, KeysAreInReadAndDecisionSets) {
  DataFlow flow = blackbox::testing::MakeSection422Flow();
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  const OpProperties& reduce = af->of(2);
  ASSERT_EQ(reduce.keys[0].size(), 1u);
  EXPECT_TRUE(reduce.read.Contains(reduce.keys[0][0]));
  EXPECT_TRUE(reduce.decision.Contains(reduce.keys[0][0]));
}

TEST(Annotate, ImplicitProjectionProducesComplementWriteSet) {
  DataFlow f;
  int src = f.AddSource("I", 3, 100, 27);
  tac::FunctionBuilder b("project_keep0", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg k = b.GetField(ir, 0);
  tac::Reg out = b.NewRecord();
  b.SetField(out, 0, k);
  b.Emit(out);
  b.Return();
  int map = f.AddMap("project_keep0", src,
                     blackbox::testing::Built(std::move(b)));
  f.SetSink("O", map);

  StatusOr<AnnotatedFlow> af = Annotate(f, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  const OpProperties& p = af->of(map);
  EXPECT_TRUE(p.write.is_complement());
  EXPECT_FALSE(p.write.Contains(0));  // the kept attribute
  EXPECT_TRUE(p.write.Contains(1));   // projected away
  EXPECT_TRUE(p.write.Contains(2));
  EXPECT_TRUE(p.write.Contains(999));  // and any future attribute
}

TEST(Annotate, RejectsReadsBeyondSchema) {
  // A UDF addressing a field its input schema does not have (e.g., after an
  // upstream projection narrowed the record) makes the program ill-formed;
  // annotation reports it instead of guessing.
  DataFlow f;
  int src = f.AddSource("I", 2, 10, 18);
  tac::FunctionBuilder b("reads_field_5", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg v = b.GetField(ir, 5);
  tac::Reg out = b.Copy(ir);
  b.SetField(out, 0, v);
  b.Emit(out);
  b.Return();
  int map = f.AddMap("reads_field_5", src,
                     blackbox::testing::Built(std::move(b)));
  f.SetSink("O", map);
  StatusOr<AnnotatedFlow> af = Annotate(f, AnnotationMode::kSca);
  EXPECT_FALSE(af.ok());
  EXPECT_EQ(af.status().code(), Status::Code::kInvalidArgument);
}

TEST(Annotate, ManualModeRequiresSummaries) {
  DataFlow flow = blackbox::testing::MakeSection3Flow();  // no annotations
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kManual);
  EXPECT_FALSE(af.ok());
  EXPECT_EQ(af.status().code(), Status::Code::kInvalidArgument);
}

TEST(Annotate, ScaIsSupersetOfManualOnWorkloads) {
  // Conservatism: for every operator, the SCA-derived read/write sets contain
  // the manually annotated (true) sets.
  for (workloads::Workload w :
       {workloads::MakeClickstream({}), workloads::MakeTpchQ15({})}) {
    StatusOr<AnnotatedFlow> manual = Annotate(w.flow, AnnotationMode::kManual);
    StatusOr<AnnotatedFlow> sca = Annotate(w.flow, AnnotationMode::kSca);
    ASSERT_TRUE(manual.ok()) << manual.status().ToString();
    ASSERT_TRUE(sca.ok()) << sca.status().ToString();
    for (int i = 0; i < w.flow.num_ops(); ++i) {
      EXPECT_TRUE(manual->of(i).read.IsSubsetOf(sca->of(i).read))
          << w.name << " op " << w.flow.op(i).name << ": manual R "
          << manual->of(i).read.ToString() << " vs SCA R "
          << sca->of(i).read.ToString();
      EXPECT_TRUE(manual->of(i).write.IsSubsetOf(sca->of(i).write))
          << w.name << " op " << w.flow.op(i).name;
    }
  }
}

TEST(Annotate, SchemasTrackConcatLayout) {
  workloads::Workload w = workloads::MakeTpchQ15({});
  StatusOr<AnnotatedFlow> af = Annotate(w.flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  // Join output schema = supplier (3 fields) + lineitem pipeline (6 fields).
  const OpProperties& join = af->of(5);
  EXPECT_EQ(join.out_schema.size(), 9u);
}

TEST(Annotate, ValidateRejectsDagShapedFlows) {
  DataFlow f;
  int src = f.AddSource("I", 2, 10, 18);
  int m1 = f.AddMap("a", src, blackbox::testing::MakeAbsUdf());
  // Consume m1 twice: not a tree.
  tac::FunctionBuilder jb("join", 2, tac::UdfKind::kRat);
  tac::Reg l = jb.InputRecord(0);
  tac::Reg r = jb.InputRecord(1);
  jb.Emit(jb.Concat(l, r));
  jb.Return();
  int j = f.AddMatch("self_join", m1, m1, {0}, {0},
                     blackbox::testing::Built(std::move(jb)));
  f.SetSink("O", j);
  EXPECT_FALSE(f.Validate().ok());
}

}  // namespace
}  // namespace dataflow
}  // namespace blackbox
