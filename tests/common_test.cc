// Tests for the common substrate: Status/StatusOr, deterministic RNG, and
// string helpers.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace blackbox {
namespace {

TEST(Status, CodesRoundTrip) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> s(std::string("hello"));
  std::string v = std::move(s).value();
  EXPECT_EQ(v, "hello");
}

TEST(ReturnNotOkMacro, PropagatesFailure) {
  auto inner = []() { return Status::InvalidArgument("bad"); };
  auto outer = [&]() -> Status {
    BLACKBOX_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kInvalidArgument);
}

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seed diverges immediately with overwhelming probability.
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit
  EXPECT_EQ(rng.Uniform(4, 4), 4);
  EXPECT_EQ(rng.Uniform(9, 2), 9);  // degenerate range clamps to lo
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ZipfBoundsAndSkew) {
  Rng rng(19);
  int64_t low_bucket = 0;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Zipf(100, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v <= 10) ++low_bucket;
  }
  // Skewed: the first decile gets far more than 10% of the mass.
  EXPECT_GT(low_bucket, 2500);
  EXPECT_EQ(rng.Zipf(1, 1.2), 1);
}

TEST(Rng, StringHasRequestedLengthAndAlphabet) {
  Rng rng(23);
  std::string s = rng.String(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(StrUtil, JoinFormatsWithSeparator) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ","), "");
}

TEST(StrUtil, SplitPreservesEmptyTokens) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

}  // namespace
}  // namespace blackbox
