// Tests for the reordering conditions of Section 4: ROC, KGP, and the
// per-pair predicates — validated against the paper's own examples.

#include "reorder/conditions.h"

#include <gtest/gtest.h>

#include "dataflow/annotate.h"
#include "tests/test_flows.h"

namespace blackbox {
namespace reorder {
namespace {

using dataflow::AnnotatedFlow;
using dataflow::Annotate;
using dataflow::AnnotationMode;
using dataflow::DataFlow;

AnnotatedFlow MustAnnotate(const DataFlow& flow) {
  StatusOr<AnnotatedFlow> af = Annotate(flow, AnnotationMode::kSca);
  EXPECT_TRUE(af.ok()) << af.status().ToString();
  return std::move(af).value();
}

TEST(Roc, Section3ExampleConflicts) {
  DataFlow flow = testing::MakeSection3Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  ReorderOracle oracle(&af);
  // Operator ids: 0 source, 1 map1(f1), 2 map2(f2), 3 map3(f3).
  // f1 (R={B}, W={B}) and f2 (R={A}, W={}) do not conflict.
  EXPECT_TRUE(oracle.Roc(1, 2));
  // f2 (R={A}) and f3 (W={A}) conflict on A.
  EXPECT_FALSE(oracle.Roc(2, 3));
  // f1 (W={B}) and f3 (R={A,B}) conflict on B.
  EXPECT_FALSE(oracle.Roc(1, 3));
}

TEST(Roc, SwapDecisionsMatchTheorem1) {
  DataFlow flow = testing::MakeSection3Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  ReorderOracle oracle(&af);
  EXPECT_TRUE(oracle.CanSwapUnaryUnary(2, 1));   // Map2 above Map1: swap ok
  EXPECT_FALSE(oracle.CanSwapUnaryUnary(3, 2));  // Map3 above Map2: conflict
  EXPECT_FALSE(oracle.CanSwapUnaryUnary(3, 1));
}

TEST(Kgp, Section422CounterExampleIsBlocked) {
  // The Map filters on both attributes; the Reduce keys on attribute A only.
  // KGP fails (the filter decision depends on B ∉ K), so Theorem 2 forbids
  // the swap even though ROC holds.
  DataFlow flow = testing::MakeSection422Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  ReorderOracle oracle(&af);
  const int map = 1, reduce = 2;
  EXPECT_TRUE(oracle.Roc(map, reduce));
  EXPECT_FALSE(oracle.Kgp(map, af.of(reduce).keys[0]));
  EXPECT_FALSE(oracle.CanSwapUnaryUnary(reduce, map));
}

TEST(Kgp, FilterOnKeyAttributeSatisfiesCase2) {
  // A Map filtering *on the Reduce key* preserves key groups (Definition 5
  // case 2): it drops whole groups or none.
  DataFlow f;
  int src = f.AddSource("I", 2, 100, 18);
  tac::FunctionBuilder b("key_filter", 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);
  tac::Reg a = b.GetField(ir, 0);
  tac::Label skip = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(a, b.ConstInt(10)), skip);
  b.Emit(b.Copy(ir));
  b.Bind(skip);
  b.Return();
  int map = f.AddMap("key_filter", src, testing::Built(std::move(b)));

  tac::FunctionBuilder rb("count", 1, tac::UdfKind::kKat);
  tac::Reg n = rb.InputCount(0);
  tac::Reg out = rb.Copy(rb.InputAt(0, rb.ConstInt(0)));
  rb.SetField(out, 2, n);
  rb.Emit(out);
  rb.Return();
  int red = f.AddReduce("count", map, {0}, testing::Built(std::move(rb)));
  f.SetSink("O", red);

  AnnotatedFlow af = MustAnnotate(f);
  ReorderOracle oracle(&af);
  EXPECT_TRUE(oracle.Kgp(map, af.of(red).keys[0]));
  EXPECT_TRUE(oracle.CanSwapUnaryUnary(red, map));
}

TEST(Kgp, OneToOneMapAlwaysSatisfiesCase1) {
  DataFlow f;
  int src = f.AddSource("I", 2, 100, 18);
  int map = f.AddMap("abs", src, testing::MakeAbsUdf());

  tac::FunctionBuilder rb("count", 1, tac::UdfKind::kKat);
  tac::Reg n = rb.InputCount(0);
  tac::Reg out = rb.Copy(rb.InputAt(0, rb.ConstInt(0)));
  rb.SetField(out, 2, n);
  rb.Emit(out);
  rb.Return();
  int red = f.AddReduce("count", map, {0}, testing::Built(std::move(rb)));
  f.SetSink("O", red);

  AnnotatedFlow af = MustAnnotate(f);
  ReorderOracle oracle(&af);
  // f1 emits exactly one record per input (Definition 5 case 1)...
  EXPECT_TRUE(oracle.Kgp(map, af.of(red).keys[0]));
  // ...and writes only B (not the key A), so ROC holds and the swap is valid.
  EXPECT_TRUE(oracle.CanSwapUnaryUnary(red, map));
}

TEST(Kgp, MapWritingTheKeyIsBlockedByRoc) {
  // A one-to-one Map that *rewrites the key attribute* must not move past a
  // Reduce keyed on it: the key attributes are in the Reduce's read set, so
  // ROC catches the conflict.
  DataFlow f;
  int src = f.AddSource("I", 2, 100, 18);
  int map = f.AddMap("sum_into_key", src, testing::MakeSumUdf());  // W = {A}

  tac::FunctionBuilder rb("count", 1, tac::UdfKind::kKat);
  tac::Reg n = rb.InputCount(0);
  tac::Reg out = rb.Copy(rb.InputAt(0, rb.ConstInt(0)));
  rb.SetField(out, 2, n);
  rb.Emit(out);
  rb.Return();
  int red = f.AddReduce("count", map, {0}, testing::Built(std::move(rb)));
  f.SetSink("O", red);

  AnnotatedFlow af = MustAnnotate(f);
  ReorderOracle oracle(&af);
  EXPECT_FALSE(oracle.Roc(map, red));
  EXPECT_FALSE(oracle.CanSwapUnaryUnary(red, map));
}

TEST(KatKgp, RequiresDeclaredBehaviour) {
  DataFlow flow = testing::MakeSection422Flow();
  AnnotatedFlow af = MustAnnotate(flow);
  ReorderOracle oracle(&af);
  // SCA mode leaves KAT behaviour unknown: conservative false.
  EXPECT_FALSE(oracle.KatKgp(2, af.of(2).keys[0]));
}

TEST(Plan, CanonicalStringIsStableAndStructural) {
  DataFlow flow = testing::MakeSection3Flow();
  PlanPtr p = PlanFromFlow(flow);
  EXPECT_EQ(CanonicalString(p), "4(3(2(1(0))))");
}

TEST(Plan, SubtreeAttrsCollectsSourceAndIntroduced) {
  DataFlow flow = testing::MakeSection3Flow();
  StatusOr<dataflow::AnnotatedFlow> af =
      Annotate(flow, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  PlanPtr p = PlanFromFlow(flow);
  dataflow::AttrSet attrs = SubtreeAttrs(p, *af);
  // The source introduces A (0) and B (1); the maps introduce nothing new.
  EXPECT_TRUE(attrs.Contains(0));
  EXPECT_TRUE(attrs.Contains(1));
  EXPECT_FALSE(attrs.Contains(2));
}

TEST(Plan, SubtreeUniquenessFromSourcePk) {
  DataFlow f;
  int src = f.AddSource("pk_src", 2, 100, 18, {0});
  int map = f.AddMap("abs", src, testing::MakeAbsUdf());
  f.SetSink("O", map);
  StatusOr<dataflow::AnnotatedFlow> af = Annotate(f, AnnotationMode::kSca);
  ASSERT_TRUE(af.ok());
  PlanPtr p = PlanFromFlow(f);
  const PlanPtr& map_node = p->children[0];
  const PlanPtr& src_node = map_node->children[0];
  dataflow::AttrId key0 = af->of(src).out_schema[0];
  dataflow::AttrId attr1 = af->of(src).out_schema[1];
  EXPECT_TRUE(SubtreeUniqueOnKey(src_node, *af, {key0}));
  EXPECT_FALSE(SubtreeUniqueOnKey(src_node, *af, {attr1}));
  // Uniqueness survives a 1:1 Map that doesn't write the key.
  EXPECT_TRUE(SubtreeUniqueOnKey(map_node, *af, {key0}));
}

}  // namespace
}  // namespace reorder
}  // namespace blackbox
