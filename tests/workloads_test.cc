// End-to-end tests over the four evaluation workloads: enumeration counts
// (Table 1), SCA-vs-manual agreement, and the key safety property — every
// enumerated alternative produces the same output data set.

#include <gtest/gtest.h>

#include <set>

#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using core::BlackBoxOptimizer;
using dataflow::AnnotationMode;
using workloads::Workload;

size_t CountAlternatives(const Workload& w, AnnotationMode mode) {
  BlackBoxOptimizer::Options opts;
  opts.mode = mode;
  // Table 1 counts the FULL closure; the default ranked search stops early.
  opts.search = core::SearchMode::kClosure;
  BlackBoxOptimizer optimizer(opts);
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return 0;
  return result->num_alternatives;
}

/// Executes every enumerated alternative and checks bag equality of outputs —
/// the safety contract of §5 ("all plans produce the same query result").
void CheckAllPlansEquivalent(const Workload& w, AnnotationMode mode,
                             size_t max_checked = 64) {
  BlackBoxOptimizer::Options opts;
  opts.mode = mode;
  // The safety contract quantifies over EVERY valid reordering.
  opts.search = core::SearchMode::kClosure;
  BlackBoxOptimizer optimizer(opts);
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(w.flow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  engine::ExecOptions eo;
  eo.dop = 4;
  engine::Executor exec(&result->annotated, eo);
  for (const auto& [src, data] : w.source_data) exec.BindSource(src, &data);

  StatusOr<DataSet> reference = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  size_t n = std::min(result->ranked.size(), max_checked);
  for (size_t i = 1; i < n; ++i) {
    StatusOr<DataSet> out = exec.Execute(result->ranked[i].physical);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(reference->BagEquals(*out))
        << "plan rank " << i + 1 << " produced a different result ("
        << out->size() << " vs " << reference->size() << " records):\n"
        << reorder::PlanToString(result->ranked[i].logical, w.flow);
  }
}

workloads::TpchScale SmallTpch() {
  workloads::TpchScale s;
  s.suppliers = 20;
  s.customers = 60;
  s.orders = 300;
  s.lineitems = 1200;
  return s;
}

workloads::ClickstreamScale SmallClicks() {
  workloads::ClickstreamScale s;
  s.sessions = 300;
  s.avg_clicks_per_session = 5;
  s.users = 50;
  return s;
}

workloads::TextMiningScale SmallText() {
  workloads::TextMiningScale s;
  s.documents = 400;
  s.preprocess_burn = 1;
  s.gene_burn = 1;
  s.drug_burn = 1;
  s.abbrev_burn = 1;
  s.sentence_burn = 1;
  s.relation_burn = 1;
  return s;
}

// --- Table 1: enumerated orders ---

TEST(Table1, ClickstreamManualEnumeratesFourOrders) {
  Workload w = workloads::MakeClickstream(SmallClicks());
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kManual), 4u);
}

TEST(Table1, ClickstreamScaEnumeratesThreeOrders) {
  // SCA cannot resolve the computed field index in "append user info" and
  // conservatively rejects the join rotation (75% of the manual plan count).
  Workload w = workloads::MakeClickstream(SmallClicks());
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kSca), 3u);
}

TEST(Table1, Q15EnumeratesFourOrdersBothModes) {
  Workload w = workloads::MakeTpchQ15(SmallTpch());
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kManual), 4u);
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kSca), 4u);
}

TEST(Table1, TextMiningEnumeratesTwentyFourOrdersBothModes) {
  Workload w = workloads::MakeTextMining(SmallText());
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kManual), 24u);
  EXPECT_EQ(CountAlternatives(w, AnnotationMode::kSca), 24u);
}

TEST(Table1, Q7ScaMatchesManualCount) {
  Workload w = workloads::MakeTpchQ7(SmallTpch());
  size_t manual = CountAlternatives(w, AnnotationMode::kManual);
  size_t sca = CountAlternatives(w, AnnotationMode::kSca);
  EXPECT_EQ(manual, sca);
  EXPECT_GT(manual, 100u);  // a rich bushy space (paper: 2518)
}

// --- Safety: all alternatives are output-equivalent ---

TEST(PlanEquivalence, Q15AllPlansProduceSameResult) {
  Workload w = workloads::MakeTpchQ15(SmallTpch());
  CheckAllPlansEquivalent(w, AnnotationMode::kSca);
}

TEST(PlanEquivalence, ClickstreamAllPlansProduceSameResult) {
  Workload w = workloads::MakeClickstream(SmallClicks());
  CheckAllPlansEquivalent(w, AnnotationMode::kManual);
}

TEST(PlanEquivalence, TextMiningAllPlansProduceSameResult) {
  Workload w = workloads::MakeTextMining(SmallText());
  CheckAllPlansEquivalent(w, AnnotationMode::kSca);
}

TEST(PlanEquivalence, Q7SampledPlansProduceSameResult) {
  workloads::TpchScale s = SmallTpch();
  s.lineitems = 600;
  Workload w = workloads::MakeTpchQ7(s);
  CheckAllPlansEquivalent(w, AnnotationMode::kSca, /*max_checked=*/24);
}

// --- SCA conservatism: the SCA plan set is a subset of the manual one ---

TEST(Conservatism, ScaPlanSetIsSubsetOfManual) {
  for (Workload w :
       {workloads::MakeClickstream(SmallClicks()),
        workloads::MakeTpchQ15(SmallTpch()),
        workloads::MakeTextMining(SmallText())}) {
    auto plans = [&](AnnotationMode mode) {
      BlackBoxOptimizer::Options opts;
      opts.mode = mode;
      // Subset inclusion must compare full closures, not ranked top-k's.
      opts.search = core::SearchMode::kClosure;
      StatusOr<core::OptimizationResult> r =
          BlackBoxOptimizer(opts).Optimize(w.flow);
      EXPECT_TRUE(r.ok());
      std::set<std::string> keys;
      for (const auto& alt : r->ranked) {
        keys.insert(reorder::CanonicalString(alt.logical));
      }
      return keys;
    };
    std::set<std::string> manual = plans(AnnotationMode::kManual);
    std::set<std::string> sca = plans(AnnotationMode::kSca);
    for (const std::string& k : sca) {
      EXPECT_TRUE(manual.count(k)) << w.name << ": SCA-only plan " << k;
    }
  }
}

}  // namespace
}  // namespace blackbox
