#include "dataflow/attr_set.h"

#include <gtest/gtest.h>

namespace blackbox {
namespace dataflow {
namespace {

TEST(AttrSet, PositiveBasics) {
  AttrSet s = AttrSet::Of({1, 2});
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Empty());
  EXPECT_TRUE(AttrSet::None().Empty());
}

TEST(AttrSet, PositiveIntersection) {
  EXPECT_TRUE(AttrSet::Of({1, 2}).Intersects(AttrSet::Of({2, 3})));
  EXPECT_FALSE(AttrSet::Of({1, 2}).Intersects(AttrSet::Of({3, 4})));
  EXPECT_FALSE(AttrSet::None().Intersects(AttrSet::Of({1})));
}

TEST(AttrSet, ComplementContains) {
  AttrSet w = AttrSet::AllExcept({5});
  EXPECT_TRUE(w.Contains(0));
  EXPECT_TRUE(w.Contains(1000));
  EXPECT_FALSE(w.Contains(5));
}

TEST(AttrSet, ComplementIntersection) {
  AttrSet w = AttrSet::AllExcept({5, 6});
  EXPECT_TRUE(w.Intersects(AttrSet::Of({1})));
  EXPECT_FALSE(w.Intersects(AttrSet::Of({5, 6})));
  EXPECT_TRUE(w.Intersects(AttrSet::Of({5, 7})));
  // Two cofinite sets always intersect.
  EXPECT_TRUE(w.Intersects(AttrSet::AllExcept({1})));
  // The empty set intersects nothing, even a complement.
  EXPECT_FALSE(AttrSet::None().Intersects(w));
}

TEST(AttrSet, UnionPositivePositive) {
  AttrSet u = AttrSet::Of({1}).Union(AttrSet::Of({2}));
  EXPECT_TRUE(u.Contains(1));
  EXPECT_TRUE(u.Contains(2));
  EXPECT_FALSE(u.Contains(3));
}

TEST(AttrSet, UnionWithComplement) {
  AttrSet u = AttrSet::Of({5}).Union(AttrSet::AllExcept({5, 6}));
  EXPECT_TRUE(u.Contains(5));   // added back by the positive side
  EXPECT_FALSE(u.Contains(6));  // still excluded
  EXPECT_TRUE(u.Contains(99));
}

TEST(AttrSet, UnionComplementComplement) {
  AttrSet u = AttrSet::AllExcept({1, 2}).Union(AttrSet::AllExcept({2, 3}));
  EXPECT_FALSE(u.Contains(2));  // excluded from both
  EXPECT_TRUE(u.Contains(1));
  EXPECT_TRUE(u.Contains(3));
}

TEST(AttrSet, SubsetChecks) {
  EXPECT_TRUE(AttrSet::Of({1}).IsSubsetOf(AttrSet::Of({1, 2})));
  EXPECT_FALSE(AttrSet::Of({1, 3}).IsSubsetOf(AttrSet::Of({1, 2})));
  EXPECT_TRUE(AttrSet::Of({7}).IsSubsetOf(AttrSet::AllExcept({5})));
  EXPECT_FALSE(AttrSet::Of({5}).IsSubsetOf(AttrSet::AllExcept({5})));
  // Cofinite is never a subset of a finite set.
  EXPECT_FALSE(AttrSet::AllExcept({1}).IsSubsetOf(AttrSet::Of({1, 2})));
  EXPECT_TRUE(
      AttrSet::AllExcept({1, 2}).IsSubsetOf(AttrSet::AllExcept({1})));
  EXPECT_TRUE(AttrSet::None().IsSubsetOf(AttrSet::None()));
}

TEST(AttrSet, AddOnComplementRemovesExclusion) {
  AttrSet w = AttrSet::AllExcept({4});
  EXPECT_FALSE(w.Contains(4));
  w.Add(4);
  EXPECT_TRUE(w.Contains(4));
}

TEST(AttrSet, AllIntersectsEverythingNonEmpty) {
  EXPECT_TRUE(AttrSet::All().Intersects(AttrSet::Of({0})));
  EXPECT_FALSE(AttrSet::All().Intersects(AttrSet::None()));
}

}  // namespace
}  // namespace dataflow
}  // namespace blackbox
