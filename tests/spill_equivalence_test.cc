// Differential memory-budget oracle for the spill-to-disk breakers
// (DESIGN.md §2.3): optimize each seed workload once, then execute EVERY
// ranked closure alternative at budgets {unbounded, 256 KB, 32 KB, 4 KB} ×
// {1, 8} worker threads, asserting
//   * the sorted sink bytes of every run equal the original plan's
//     unbounded-run output (spilling — including the hash-join's external
//     sort-merge fallback — may permute record order, never the bag),
//   * peak_bytes respects the per-instance budget (plus one batch of slack)
//     at every finite budget — the by-construction contract,
//   * disk_bytes == 0 on unbounded runs and > 0 whenever the workload's
//     working set cannot fit (every alternative at the 4 KB budget),
//   * both meters are identical at 1 and 8 worker threads, and
//   * re-running with fused-chain TAC specialization off (DESIGN.md §2.6)
//     reproduces the identical sorted sink and the EXACT same
//     network/disk/peak/skipped-spill meters at every budget — on the
//     Map-chain text-mining workload specialization must also cut
//     interp_instructions >= 2x at every budget point.
//
// Also pins the estimate/measurement coupling: the optimizer's spill cost
// term and the engine's measured disk bytes are zero/nonzero together at
// the same budget, and CostWeights::enable_spill ablates the term away.
//
// Registered under the `differential` ctest label (CMakeLists.txt); CI runs
// it in the ASan/UBSan job as well.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "api/pipeline.h"
#include "engine/executor.h"
#include "reorder/plan.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

/// Small batches so "one batch of slack" is small against the 4 KB budget.
constexpr size_t kBatchCapacity = 16;
/// One batch of the widest workload records, rounded up.
constexpr int64_t kSlackBytes = 8 << 10;
constexpr double kUnbounded = 1 << 30;

std::string SortedOutputBytes(const DataSet& ds) {
  std::vector<Record> sorted = ds.records();
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Record& r : sorted) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

struct SweepCounts {
  size_t runs = 0;
  size_t spilled_at_4k = 0;
};

/// Sum of the estimated disk (spill) cost components over a physical tree.
double TreeDiskCost(const optimizer::PhysicalNode& n) {
  double total = n.cost_disk;
  for (const auto& c : n.children) total += TreeDiskCost(*c);
  return total;
}

/// Optimizes once, then sweeps every ranked alternative across the budget ×
/// thread matrix against the original plan's unbounded reference output.
/// `min_instr_ratio` > 0 additionally requires every serial run to execute
/// at least that many times fewer interp instructions specialized than
/// interpreted (the §2.6 bar, held at EVERY budget point).
SweepCounts RunBudgetSweep(const workloads::Workload& w,
                           const api::AnnotationProvider& provider,
                           bool fuse_chains = true,
                           double min_instr_ratio = 0.0) {
  SweepCounts counts;
  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.batch_capacity = kBatchCapacity;
  options.exec.fuse_chains = fuse_chains;
  options.enum_options.max_plans = 512;
  // The oracle quantifies over the FULL closure and needs the implemented
  // plan in it; the ranked default keeps only a top-k.
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;

  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  StatusOr<api::OptimizedProgram> program =
      api::OptimizeFlow(w.flow, provider, options, sources);
  if (!program.ok()) {
    ADD_FAILURE() << w.name
                  << ": optimize failed: " << program.status().ToString();
    return counts;
  }
  EXPECT_FALSE(program->truncated())
      << w.name << ": closure truncated at max_plans — oracle is partial";

  int original = program->ImplementedIndex();
  if (original < 0) {
    ADD_FAILURE() << w.name << ": original plan missing from closure";
    return counts;
  }
  program->mutable_exec_options().mem_budget_bytes = kUnbounded;
  program->mutable_exec_options().num_threads = 1;
  StatusOr<DataSet> ref = program->Run(static_cast<size_t>(original));
  if (!ref.ok() || ref->empty()) {
    ADD_FAILURE() << w.name << ": reference run failed or empty: "
                  << ref.status().ToString();
    return counts;
  }
  std::string reference = SortedOutputBytes(*ref);

  const double budgets[] = {kUnbounded, 256 << 10, 32 << 10, 4 << 10};
  for (size_t i = 0; i < program->ranked().size(); ++i) {
    const core::PlannedAlternative& alt = program->ranked()[i];
    for (double budget : budgets) {
      SCOPED_TRACE(w.name + " rank " + std::to_string(alt.rank) +
                   " budget " + std::to_string(static_cast<int64_t>(budget)));
      program->mutable_exec_options().mem_budget_bytes = budget;

      program->mutable_exec_options().num_threads = 1;
      engine::ExecStats serial;
      StatusOr<DataSet> out1 = program->Run(i, &serial);
      if (!out1.ok()) {
        ADD_FAILURE() << out1.status().ToString();
        return counts;
      }
      program->mutable_exec_options().num_threads = 8;
      engine::ExecStats parallel;
      StatusOr<DataSet> out8 = program->Run(i, &parallel);
      if (!out8.ok()) {
        ADD_FAILURE() << out8.status().ToString();
        return counts;
      }
      ++counts.runs;

      // Bag-identical sinks at every budget, vs the unbounded original.
      EXPECT_EQ(SortedOutputBytes(*out1), reference)
          << "serial sorted sink diverges.\nlogical: "
          << reorder::PlanToString(alt.logical, w.flow);
      EXPECT_EQ(SortedOutputBytes(*out8), reference)
          << "parallel sorted sink diverges";

      // Thread-count invariance of both spill meters (and the rest).
      EXPECT_EQ(serial.disk_bytes, parallel.disk_bytes);
      EXPECT_EQ(serial.peak_bytes, parallel.peak_bytes);
      EXPECT_EQ(serial.network_bytes, parallel.network_bytes);
      EXPECT_EQ(serial.output_rows, parallel.output_rows);
      EXPECT_EQ(serial.skipped_batches, parallel.skipped_batches);
      EXPECT_EQ(serial.skipped_spill_bytes, parallel.skipped_spill_bytes);

      // Data-skipping differential (DESIGN.md §2.5): the same alternative
      // with skipping off must produce the identical sink at this budget,
      // and every file byte skipping elided from a run re-scan must be
      // accounted for: disk(on) + skipped_spill(on) == disk(off).
      program->mutable_exec_options().enable_data_skipping = false;
      engine::ExecStats noskip;
      StatusOr<DataSet> out_ns = program->Run(i, &noskip);
      program->mutable_exec_options().enable_data_skipping = true;
      if (!out_ns.ok()) {
        ADD_FAILURE() << out_ns.status().ToString();
        return counts;
      }
      EXPECT_EQ(SortedOutputBytes(*out_ns), reference)
          << "skipping-off sorted sink diverges";
      EXPECT_EQ(noskip.skipped_batches, 0);
      EXPECT_EQ(noskip.skipped_spill_bytes, 0);
      EXPECT_EQ(serial.disk_bytes + serial.skipped_spill_bytes,
                noskip.disk_bytes)
          << "skipped run bytes must exactly cover the disk traffic delta";
      EXPECT_EQ(serial.network_bytes, noskip.network_bytes);
      EXPECT_EQ(serial.output_rows, noskip.output_rows);

      // Chain-specialization differential (DESIGN.md §2.6): the fused TAC
      // program is a pure CPU-side rewrite, so turning it off must leave
      // every byte meter EXACTLY equal — not just the sink bag — at this
      // budget. (udf_calls and skipped_batches legitimately differ: the
      // fused path meters one call per record and refutes at an adapted
      // batch granularity.)
      program->mutable_exec_options().num_threads = 1;
      program->mutable_exec_options().enable_chain_specialization = false;
      engine::ExecStats nospec;
      StatusOr<DataSet> out_np = program->Run(i, &nospec);
      program->mutable_exec_options().enable_chain_specialization = true;
      if (!out_np.ok()) {
        ADD_FAILURE() << out_np.status().ToString();
        return counts;
      }
      EXPECT_EQ(SortedOutputBytes(*out_np), reference)
          << "specialization-off sorted sink diverges";
      EXPECT_EQ(serial.network_bytes, nospec.network_bytes);
      EXPECT_EQ(serial.disk_bytes, nospec.disk_bytes);
      EXPECT_EQ(serial.peak_bytes, nospec.peak_bytes);
      EXPECT_EQ(serial.skipped_spill_bytes, nospec.skipped_spill_bytes);
      EXPECT_EQ(serial.output_rows, nospec.output_rows);
      if (min_instr_ratio > 0.0) {
        EXPECT_GE(static_cast<double>(nospec.interp_instructions),
                  min_instr_ratio *
                      static_cast<double>(serial.interp_instructions))
            << "specialization fell below the " << min_instr_ratio
            << "x instruction bar at this budget";
      }

      if (budget >= kUnbounded) {
        EXPECT_EQ(serial.disk_bytes, 0)
            << "an unbounded run must never touch disk";
      } else {
        // The by-construction contract: no instance ever held more than the
        // budget plus the batch in flight, spill or no spill.
        EXPECT_LE(serial.peak_bytes,
                  static_cast<int64_t>(budget) + kSlackBytes);
      }
      if (budget == 4 << 10 && serial.disk_bytes > 0) ++counts.spilled_at_4k;
      if (::testing::Test::HasFailure()) return counts;
    }
  }
  return counts;
}

TEST(SpillEquivalence, TpchQ7ClosureSurvivesEveryBudget) {
  workloads::TpchScale scale;
  scale.lineitems = 1200;
  scale.orders = 300;
  scale.customers = 60;
  scale.suppliers = 12;
  scale.nations = 8;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  SweepCounts counts = RunBudgetSweep(w, sca);
  if (::testing::Test::HasFailure()) return;
  EXPECT_GT(counts.runs, 0u);
  // At 4 KB per instance the Q7 working set cannot fit: every alternative
  // must actually spill (disk_bytes > 0), not just meter.
  EXPECT_EQ(counts.spilled_at_4k, counts.runs / 4)
      << "every Q7 alternative must spill at the 4 KB budget";
}

TEST(SpillEquivalence, TextMiningClosureSurvivesEveryBudget) {
  workloads::TextMiningScale scale;
  scale.documents = 500;
  workloads::Workload w = workloads::MakeTextMining(scale);
  api::ScaProvider sca;

  // Fused, the 8-node pipeline has no breaker except the (heavily filtered,
  // tiny) sink gather: nothing to spill even at 4 KB — fusion eliminated
  // the very buffers a budget would have forced to disk. The Map-dominated
  // chain also carries the §2.6 specialization bar at every budget point.
  SweepCounts fused = RunBudgetSweep(w, sca, /*fuse_chains=*/true,
                                     /*min_instr_ratio=*/2.0);
  if (::testing::Test::HasFailure()) return;
  EXPECT_GT(fused.runs, 0u);
  EXPECT_EQ(fused.spilled_at_4k, 0u)
      << "the fused text-mining pipeline has no buffer worth spilling";

  // Unfused, every Map's full output materializes — at 4 KB per instance
  // those buffers must really spill, exercising the chain-output spill path
  // on the Map-heavy workload.
  SweepCounts unfused = RunBudgetSweep(w, sca, /*fuse_chains=*/false);
  if (::testing::Test::HasFailure()) return;
  EXPECT_EQ(unfused.spilled_at_4k, unfused.runs / 4)
      << "every unfused text-mining run must spill at the 4 KB budget";
}

TEST(SpillEquivalence, ClickstreamClosureSurvivesEveryBudget) {
  workloads::ClickstreamScale scale;
  scale.sessions = 600;
  scale.users = 80;
  workloads::Workload w = workloads::MakeClickstream(scale);
  api::ManualProvider manual;  // SCA loses the rotation; manual opens it
  SweepCounts counts = RunBudgetSweep(w, manual);
  if (::testing::Test::HasFailure()) return;
  EXPECT_GT(counts.runs, 0u);
  EXPECT_EQ(counts.spilled_at_4k, counts.runs / 4)
      << "every clickstream alternative must spill at the 4 KB budget";
}

// The optimizer's spill estimate and the engine's measurement must flip
// together at the same budget — and CostWeights::enable_spill must ablate
// the estimate (never the measured behavior).
TEST(SpillEquivalence, SpillCostEstimateTracksMeasurement) {
  workloads::TpchScale scale;
  scale.lineitems = 1200;
  scale.orders = 300;
  scale.customers = 60;
  scale.suppliers = 12;
  scale.nations = 8;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  auto optimize = [&](double budget, bool enable_spill) {
    api::OptimizeOptions options;
    options.exec.dop = 8;
    options.exec.mem_budget_bytes = budget;
    options.weights.enable_spill = enable_spill;
    // "Worst plan" below means worst of the FULL closure.
    options.search = core::SearchMode::kClosure;
    options.use_plan_cache = false;
    return api::OptimizeFlow(w.flow, sca, options, sources);
  };

  {  // Tight budget: the worst plan is priced with a disk term and measures
     // real disk traffic when run at that budget.
    StatusOr<api::OptimizedProgram> p = optimize(4 << 10, true);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    const core::PlannedAlternative& worst = p->ranked().back();
    EXPECT_GT(TreeDiskCost(*worst.physical.root), 0)
        << "worst Q7 plan at 4 KB must carry an estimated spill cost";
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->Run(p->ranked().size() - 1, &stats);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_GT(stats.disk_bytes, 0);
  }
  {  // Unbounded: estimate and measurement are both zero.
    StatusOr<api::OptimizedProgram> p = optimize(1 << 30, true);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    for (const core::PlannedAlternative& alt : p->ranked()) {
      EXPECT_EQ(TreeDiskCost(*alt.physical.root), 0);
    }
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->Run(p->ranked().size() - 1, &stats);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(stats.disk_bytes, 0);
  }
  {  // Ablation: enable_spill=false zeroes every estimated disk term while
     // the engine still spills (and meters) for real.
    StatusOr<api::OptimizedProgram> p = optimize(4 << 10, false);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    for (const core::PlannedAlternative& alt : p->ranked()) {
      EXPECT_EQ(TreeDiskCost(*alt.physical.root), 0);
    }
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->Run(p->ranked().size() - 1, &stats);
    ASSERT_TRUE(out.ok());
    EXPECT_GT(stats.disk_bytes, 0);
  }
}

// Satellite: a mid-spill write failure surfaces a clean Status and leaves no
// temp files behind (ExecOptions::spill_fault_after_bytes).
TEST(SpillEquivalence, SpillFaultSurfacesCleanStatusAndLeaksNothing) {
  workloads::TpchScale scale;
  scale.lineitems = 1200;
  scale.orders = 300;
  scale.customers = 60;
  scale.suppliers = 12;
  scale.nations = 8;
  workloads::Workload w = workloads::MakeTpchQ7(scale);
  api::ScaProvider sca;
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;

  std::filesystem::path sandbox =
      std::filesystem::temp_directory_path() / "blackbox-spill-fault-test";
  std::filesystem::remove_all(sandbox);
  ASSERT_TRUE(std::filesystem::create_directories(sandbox));

  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 4 << 10;
  options.exec.spill_dir = sandbox.string();
  // The fault is injected into the closure's WORST plan — the one sure to
  // spill at this budget; a ranked top-k might hold only non-spilling plans.
  options.search = core::SearchMode::kClosure;
  options.use_plan_cache = false;
  StatusOr<api::OptimizedProgram> p = api::OptimizeFlow(w.flow, sca, options,
                                                        sources);
  ASSERT_TRUE(p.ok()) << p.status().ToString();

  // Healthy run first: spills happen under the sandbox and are cleaned up.
  engine::ExecStats stats;
  StatusOr<DataSet> ok_run = p->Run(p->ranked().size() - 1, &stats);
  ASSERT_TRUE(ok_run.ok()) << ok_run.status().ToString();
  ASSERT_GT(stats.disk_bytes, 0) << "test needs a budget that forces spills";
  EXPECT_TRUE(std::filesystem::is_empty(sandbox))
      << "successful run left temp files behind";

  // Now fail the spill mid-way.
  p->mutable_exec_options().spill_fault_after_bytes = 8 << 10;
  StatusOr<DataSet> failed = p->Run(p->ranked().size() - 1);
  ASSERT_FALSE(failed.ok()) << "fault injection did not fire";
  EXPECT_EQ(failed.status().code(), Status::Code::kInternal);
  EXPECT_NE(failed.status().message().find("injected spill fault"),
            std::string::npos)
      << failed.status().ToString();
  EXPECT_TRUE(std::filesystem::is_empty(sandbox))
      << "failed run leaked temp files";

  std::filesystem::remove_all(sandbox);

  // An unwritable spill directory is a clean error too, not a crash. (A
  // regular file as the "directory" fails even for a root test runner.)
  std::filesystem::path blocker =
      std::filesystem::temp_directory_path() / "blackbox-spill-eq-blocker";
  std::FILE* bf = std::fopen(blocker.c_str(), "wb");
  ASSERT_NE(bf, nullptr);
  std::fclose(bf);
  p->mutable_exec_options().spill_fault_after_bytes = 0;
  p->mutable_exec_options().spill_dir = (blocker / "sub").string();
  StatusOr<DataSet> unwritable = p->Run(p->ranked().size() - 1);
  ASSERT_FALSE(unwritable.ok());
  EXPECT_EQ(unwritable.status().code(), Status::Code::kInvalidArgument);
  std::filesystem::remove(blocker);
}

}  // namespace
}  // namespace blackbox
