// Property-based tests (parameterized over RNG seeds) for the two safety
// theorems the whole system rests on:
//
// 1. SCA conservatism (§5): for *randomly generated* UDFs, the statically
//    derived read/write sets are supersets of the dynamically observed ones
//    (ground truth obtained by black-box probing with perturbed inputs —
//    literally Definitions 2 and 3 executed).
//
// 2. Reordering safety (§4): for randomly generated Map-chain flows, every
//    plan the enumerator derives produces a bag-equal output on random data.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "interp/interp.h"
#include "sca/analyzer.h"
#include "tac/tac.h"

namespace blackbox {
namespace {

constexpr int kArity = 5;

/// Generates a random RAT Map UDF over kArity integer fields. The generator
/// covers: filters on random fields, modifications from random field
/// combinations, appended fields, copy vs. projection constructors, and
/// multi-emit paths.
std::shared_ptr<const tac::Function> RandomMapUdf(uint64_t seed,
                                                  std::string name) {
  Rng rng(seed);
  tac::FunctionBuilder b(std::move(name), 1, tac::UdfKind::kRat);
  tac::Reg ir = b.InputRecord(0);

  // Optional filter on a random field.
  tac::Label skip = b.NewLabel();
  bool filtered = rng.Chance(0.5);
  if (filtered) {
    tac::Reg v = b.GetField(ir, static_cast<int>(rng.Uniform(0, kArity - 1)));
    tac::Reg cond = b.CmpGe(v, b.ConstInt(rng.Uniform(-50, 50)));
    b.BranchIfFalse(cond, skip);
  }

  bool projection = rng.Chance(0.3);
  tac::Reg out = projection ? b.NewRecord() : b.Copy(ir);
  if (projection) {
    // Keep a random subset of fields by explicit copy. The last field is
    // always kept so the output schema retains the full width — downstream
    // UDFs in a generated chain address fields by index and a narrowed
    // schema would make the chain ill-formed (the annotation layer rejects
    // such programs; see annotate_test AnnotationRejectsReadsBeyondSchema).
    for (int f = 0; f < kArity - 1; ++f) {
      if (rng.Chance(0.6)) {
        b.SetField(out, f, b.GetField(ir, f));
      }
    }
    b.SetField(out, kArity - 1, b.GetField(ir, kArity - 1));
  }
  // Random modifications.
  int mods = static_cast<int>(rng.Uniform(0, 2));
  for (int m = 0; m < mods; ++m) {
    int target = static_cast<int>(rng.Uniform(0, kArity - 1));
    tac::Reg a = b.GetField(ir, static_cast<int>(rng.Uniform(0, kArity - 1)));
    tac::Reg c = b.ConstInt(rng.Uniform(1, 9));
    tac::Reg v = rng.Chance(0.5) ? b.Add(a, c) : b.Mul(a, c);
    b.SetField(out, target, v);
  }
  // Optionally append a new field.
  if (rng.Chance(0.4)) {
    tac::Reg a = b.GetField(ir, static_cast<int>(rng.Uniform(0, kArity - 1)));
    b.SetField(out, kArity, b.Add(a, b.ConstInt(100)));
  }
  b.Emit(out);
  // Occasionally emit a second copy.
  if (rng.Chance(0.2)) {
    b.Emit(out);
  }
  if (filtered) b.Bind(skip);
  b.Return();

  StatusOr<tac::Function> fn = b.Build();
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

Record RandomRecord(Rng* rng) {
  Record r;
  for (int f = 0; f < kArity; ++f) {
    r.Append(Value(rng->Uniform(-60, 60)));
  }
  return r;
}

std::vector<Record> RunUdf(const tac::Function& fn, const Record& in) {
  interp::Interpreter interp(&fn);
  interp::CallInputs ci;
  ci.groups = {{&in}};
  std::vector<Record> out;
  Status s = interp.Run(ci, {}, &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

class UdfSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UdfSeedTest, ScaWriteSetIsSuperset) {
  // Definition 2 executed: field n is *truly* written if some probe input
  // yields an output whose field n differs from the input's.
  uint64_t seed = GetParam();
  auto fn = RandomMapUdf(seed, "w_probe");
  StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*fn);
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  std::set<int> statically_written;
  bool writes_everything = s->writes_all ||
                           s->out_kind == sca::OutputKind::kProjection;
  std::set<int> kept;  // projection: explicitly kept attrs are NOT written
  for (const sca::FieldWrite& w : s->writes) {
    if (w.kind == sca::FieldWrite::Kind::kExplicitCopy &&
        w.out_pos == w.from_field) {
      kept.insert(w.out_pos);
    } else {
      statically_written.insert(w.out_pos);
    }
  }

  Rng rng(seed ^ 0xABCD);
  for (int probe = 0; probe < 200; ++probe) {
    Record in = RandomRecord(&rng);
    for (const Record& out : RunUdf(*fn, in)) {
      for (size_t f = 0; f < out.num_fields(); ++f) {
        bool changed = f >= in.num_fields() || out.field(f) != in.field(f);
        if (!changed) continue;
        bool statically_covered =
            statically_written.count(static_cast<int>(f)) > 0 ||
            (writes_everything && kept.count(static_cast<int>(f)) == 0);
        EXPECT_TRUE(statically_covered)
            << "seed " << seed << ": field " << f
            << " changed dynamically but SCA did not report it\n"
            << fn->ToString() << s->ToString();
      }
    }
  }
}

TEST_P(UdfSeedTest, ScaReadSetIsSuperset) {
  // Definition 3 executed: field n truly influences the output if two inputs
  // differing only at n produce different outputs (cardinality or any field
  // other than n itself).
  uint64_t seed = GetParam();
  auto fn = RandomMapUdf(seed, "r_probe");
  StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*fn);
  ASSERT_TRUE(s.ok());

  Rng rng(seed ^ 0x1234);
  for (int probe = 0; probe < 120; ++probe) {
    Record base = RandomRecord(&rng);
    for (int n = 0; n < kArity; ++n) {
      Record tweaked = base;
      tweaked.SetField(n, Value(base.field(n).AsInt() + rng.Uniform(1, 40)));
      std::vector<Record> out_a = RunUdf(*fn, base);
      std::vector<Record> out_b = RunUdf(*fn, tweaked);
      bool influences = out_a.size() != out_b.size();
      if (!influences) {
        for (size_t i = 0; i < out_a.size() && !influences; ++i) {
          size_t width =
              std::max(out_a[i].num_fields(), out_b[i].num_fields());
          for (size_t f = 0; f < width; ++f) {
            if (f == static_cast<size_t>(n)) continue;  // Def. 3: k != n
            const Value va = f < out_a[i].num_fields() ? out_a[i].field(f)
                                                       : Value();
            const Value vb = f < out_b[i].num_fields() ? out_b[i].field(f)
                                                       : Value();
            if (va != vb) {
              influences = true;
              break;
            }
          }
        }
      }
      if (influences) {
        EXPECT_TRUE(s->reads[0].Contains(n))
            << "seed " << seed << ": field " << n
            << " influences the output but is not in the SCA read set\n"
            << fn->ToString() << s->ToString();
      }
    }
  }
}

TEST_P(UdfSeedTest, EmitBoundsEncloseObservedCounts) {
  uint64_t seed = GetParam();
  auto fn = RandomMapUdf(seed, "e_probe");
  StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*fn);
  ASSERT_TRUE(s.ok());
  Rng rng(seed ^ 0x7777);
  for (int probe = 0; probe < 200; ++probe) {
    Record in = RandomRecord(&rng);
    size_t emits = RunUdf(*fn, in).size();
    EXPECT_GE(static_cast<int>(emits), s->min_emits);
    if (s->max_emits >= 0) {
      EXPECT_LE(static_cast<int>(emits), s->max_emits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomUdfs, UdfSeedTest,
                         ::testing::Range<uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Whole-flow reordering safety on random chains.
// ---------------------------------------------------------------------------

class FlowSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowSeedTest, AllEnumeratedPlansAreOutputEquivalent) {
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);

  dataflow::DataFlow flow;
  int prev = flow.AddSource("I", kArity, 500, kArity * 9);
  int chain_len = static_cast<int>(rng.Uniform(3, 5));
  for (int i = 0; i < chain_len; ++i) {
    prev = flow.AddMap("m" + std::to_string(i), prev,
                       RandomMapUdf(rng.Next(), "m" + std::to_string(i)));
  }
  flow.SetSink("O", prev);

  core::BlackBoxOptimizer optimizer;
  StatusOr<core::OptimizationResult> result = optimizer.Optimize(flow);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  DataSet data;
  for (int i = 0; i < 300; ++i) data.Add(RandomRecord(&rng));

  engine::ExecOptions eo;
  eo.dop = 4;
  engine::Executor exec(&result->annotated, eo);
  exec.BindSource(0, &data);

  StatusOr<DataSet> reference = exec.Execute(result->ranked[0].physical);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    StatusOr<DataSet> out = exec.Execute(result->ranked[i].physical);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(reference->BagEquals(*out))
        << "seed " << seed << ", plan "
        << reorder::CanonicalString(result->ranked[i].logical)
        << " diverges from "
        << reorder::CanonicalString(result->ranked[0].logical);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFlows, FlowSeedTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace blackbox
