// Engine-level contract of the streaming data plane (DESIGN.md §2.2):
// chain-group formation on the seed workloads, byte-identity between fused
// and --no-chain execution, the peak-memory win fusion buys, and invariance
// of results under batch capacity and worker-thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/optimized_program.h"
#include "api/pipeline.h"
#include "engine/executor.h"
#include "optimizer/physical.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using optimizer::PhysicalNode;

api::OptimizeOptions BaseOptions() {
  api::OptimizeOptions options;
  options.exec.dop = 8;
  options.exec.mem_budget_bytes = 1 << 20;
  return options;
}

StatusOr<api::OptimizedProgram> Optimize(const workloads::Workload& w,
                                         const api::AnnotationProvider& prov,
                                         const api::OptimizeOptions& options) {
  api::SourceBindings sources;
  for (const auto& [id, data] : w.source_data) sources[id] = &data;
  return api::OptimizeFlow(w.flow, prov, options, sources);
}

/// Members per chain id, asserting every node carries one.
std::map<int, int> ChainSizes(const PhysicalNode& root) {
  std::map<int, int> sizes;
  std::function<void(const PhysicalNode&)> walk = [&](const PhysicalNode& n) {
    EXPECT_GE(n.chain_id, 0) << "node " << n.op_id << " has no chain id";
    sizes[n.chain_id]++;
    for (const auto& c : n.children) walk(*c);
  };
  walk(root);
  return sizes;
}

int MaxChainSize(const PhysicalNode& root) {
  int best = 0;
  for (const auto& [id, n] : ChainSizes(root)) best = std::max(best, n);
  return best;
}

std::string SortedBytes(const DataSet& ds) {
  std::vector<Record> sorted = ds.records();
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Record& r : sorted) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

workloads::Workload SmallQ7() {
  workloads::TpchScale scale;
  scale.lineitems = 4000;
  scale.orders = 400;
  scale.customers = 80;
  scale.suppliers = 16;
  scale.nations = 8;
  return workloads::MakeTpchQ7(scale);
}

// Acceptance gate: chains of length >= 2 must form on all three seed
// workloads' winning plans — the optimizer's chain ids are what the engine
// fuses, so this pins that fusion actually happens, not just that the
// machinery exists.
TEST(Streaming, ChainsFormOnAllSeedWorkloads) {
  {
    workloads::Workload q7 = SmallQ7();
    api::ScaProvider sca;
    StatusOr<api::OptimizedProgram> p = Optimize(q7, sca, BaseOptions());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    // Q7's winner fuses [scan lineitem → σ filter] below the join spine and
    // [γ reduce → nation-pair filter → sink] above it: both chains >= 2.
    EXPECT_GE(MaxChainSize(*p->ranked()[0].physical.root), 3);
  }
  {
    workloads::TextMiningScale scale;
    scale.documents = 200;
    workloads::Workload tm = workloads::MakeTextMining(scale);
    api::ScaProvider sca;
    StatusOr<api::OptimizedProgram> p = Optimize(tm, sca, BaseOptions());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    // The text-mining pipeline is one source, six Maps and a sink — with no
    // breaker in between it must fuse into a single chain of all 8 nodes.
    EXPECT_EQ(MaxChainSize(*p->ranked()[0].physical.root), 8);
  }
  {
    workloads::ClickstreamScale scale;
    scale.sessions = 200;
    scale.users = 40;
    workloads::Workload cs = workloads::MakeClickstream(scale);
    api::ManualProvider manual;
    StatusOr<api::OptimizedProgram> p = Optimize(cs, manual, BaseOptions());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    // Clickstream is breaker-heavy (two Reduces, two joins); the sink still
    // fuses onto the top join's probe stream.
    EXPECT_GE(MaxChainSize(*p->ranked()[0].physical.root), 2);
  }
}

TEST(Streaming, FusedAndUnfusedAreByteIdenticalAndFusionCutsPeakOnQ7) {
  workloads::Workload q7 = SmallQ7();
  api::ScaProvider sca;

  auto run = [&](bool fuse, int threads) {
    api::OptimizeOptions options = BaseOptions();
    options.exec.fuse_chains = fuse;
    options.exec.num_threads = threads;
    // Pin the fusion contract in isolation: chain specialization (§2.6)
    // legitimately cuts interp_instructions (and with it simulated_seconds)
    // in fused mode only; its own differential lives in fused_chain_test
    // and the two oracles.
    options.exec.enable_chain_specialization = false;
    StatusOr<api::OptimizedProgram> p = Optimize(q7, sca, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->RunBest(&stats);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(SortedBytes(*out), stats);
  };

  auto [fused_out, fused] = run(/*fuse=*/true, /*threads=*/1);
  auto [unfused_out, unfused] = run(/*fuse=*/false, /*threads=*/1);
  if (::testing::Test::HasFailure()) return;

  EXPECT_EQ(fused_out, unfused_out);
  EXPECT_EQ(fused.network_bytes, unfused.network_bytes);
  EXPECT_EQ(fused.disk_bytes, unfused.disk_bytes);
  EXPECT_EQ(fused.udf_calls, unfused.udf_calls);
  EXPECT_EQ(fused.records_processed, unfused.records_processed);
  EXPECT_EQ(fused.interp_instructions, unfused.interp_instructions);
  EXPECT_DOUBLE_EQ(fused.simulated_seconds, unfused.simulated_seconds);

  // The streaming contract: fused peak memory is bounded by breaker buffers
  // only, so it must drop strictly below the materialize-everything plan's.
  EXPECT_GT(unfused.peak_bytes, 0);
  EXPECT_LT(fused.peak_bytes, unfused.peak_bytes)
      << "fused=" << fused.peak_bytes << " unfused=" << unfused.peak_bytes;

  // peak_bytes is part of the determinism contract: identical per mode at
  // every worker-thread count.
  auto [fused_out8, fused8] = run(/*fuse=*/true, /*threads=*/8);
  EXPECT_EQ(fused_out8, fused_out);
  EXPECT_EQ(fused8.peak_bytes, fused.peak_bytes);
  auto [unfused_out8, unfused8] = run(/*fuse=*/false, /*threads=*/8);
  EXPECT_EQ(unfused_out8, unfused_out);
  EXPECT_EQ(unfused8.peak_bytes, unfused.peak_bytes);
}

TEST(Streaming, TextMiningFusionCollapsesIntermediatePeaks) {
  // The 6-Map pipeline is the worst case for materialize-everything: every
  // Map's full output is a live buffer. One fused chain should keep peak at
  // roughly a single materialization.
  workloads::TextMiningScale scale;
  scale.documents = 400;
  workloads::Workload tm = workloads::MakeTextMining(scale);
  api::ScaProvider sca;

  auto run = [&](bool fuse) {
    api::OptimizeOptions options = BaseOptions();
    options.exec.fuse_chains = fuse;
    StatusOr<api::OptimizedProgram> p = Optimize(tm, sca, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->RunBest(&stats);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(SortedBytes(*out), stats);
  };
  auto [fused_out, fused] = run(true);
  auto [unfused_out, unfused] = run(false);
  if (::testing::Test::HasFailure()) return;
  EXPECT_EQ(fused_out, unfused_out);
  EXPECT_EQ(fused.network_bytes, unfused.network_bytes);
  EXPECT_EQ(fused.disk_bytes, unfused.disk_bytes);
  // Expect a lot better than "slightly below": the unfused pipeline holds
  // adjacent Map outputs simultaneously; the fused one only the chain's
  // terminal sink buffer.
  EXPECT_LT(fused.peak_bytes * 2, unfused.peak_bytes)
      << "fused=" << fused.peak_bytes << " unfused=" << unfused.peak_bytes;
}

TEST(Streaming, BatchCapacityDoesNotChangeOutputOrMeters) {
  workloads::TextMiningScale scale;
  scale.documents = 64;  // 8 records per partition at dop 8
  workloads::Workload tm = workloads::MakeTextMining(scale);
  api::ScaProvider sca;

  auto run = [&](size_t capacity) {
    api::OptimizeOptions options = BaseOptions();
    options.exec.batch_capacity = capacity;
    StatusOr<api::OptimizedProgram> p = Optimize(tm, sca, options);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    engine::ExecStats stats;
    StatusOr<DataSet> out = p->RunBest(&stats);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::make_pair(SortedBytes(*out), stats);
  };

  // capacity 8 == records per partition: the end-of-partition flush sees an
  // exactly-drained pending batch (the empty-flush edge); capacity 1
  // degenerates to record-at-a-time; 3 leaves a partial tail batch.
  auto [ref_out, ref] = run(256);
  for (size_t capacity : {1u, 3u, 8u}) {
    auto [out, stats] = run(capacity);
    EXPECT_EQ(out, ref_out) << "capacity " << capacity;
    EXPECT_EQ(stats.network_bytes, ref.network_bytes) << capacity;
    EXPECT_EQ(stats.disk_bytes, ref.disk_bytes) << capacity;
    EXPECT_EQ(stats.udf_calls, ref.udf_calls) << capacity;
    EXPECT_EQ(stats.records_processed, ref.records_processed) << capacity;
  }
}

}  // namespace
}  // namespace blackbox
