// Differential tests for fused-chain TAC specialization (DESIGN.md §2.6):
// the fused program produced by tac::FuseMapChain must be byte-identical to
// interpreting the chain stage by stage, for every control-flow shape the
// fuser claims to handle — 0-emit paths, multi-emit with in-place mutation
// between emits (field aliasing), permuted field translations, and the
// terminal sink projection.

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "record/column_view.h"
#include "tac/fuse.h"
#include "tac/tac.h"

namespace blackbox {
namespace {

using interp::FieldTranslation;
using interp::Interpreter;
using tac::FunctionBuilder;
using tac::Label;
using tac::Reg;
using tac::UdfKind;

/// One chain stage for the differential: the program plus the maps its
/// FieldTranslation applies (empty = identity, the interpreter convention).
struct StageSpec {
  tac::Function fn;
  std::vector<int> input_map;   // local -> global; empty = identity
  std::vector<int> output_map;  // local -> global; empty = identity
};

FieldTranslation StageTranslation(const StageSpec& s, int width) {
  FieldTranslation t;
  t.global_width = width;
  if (!s.input_map.empty()) t.input_maps = {s.input_map};
  t.output_map = s.output_map;
  return t;
}

/// Reference semantics: one RunBatch per stage, records materialized between
/// stages, then the gather-time sink projection — exactly the staged
/// ChainRunner path the fused program replaces.
std::vector<Record> RunStaged(const std::vector<StageSpec>& stages,
                              const std::vector<Record>& input, int width,
                              const std::vector<int>* sink) {
  std::vector<Record> cur = input;
  for (const StageSpec& s : stages) {
    Interpreter interp(&s.fn);
    std::vector<Record> next;
    Status st = interp.RunBatch(cur, StageTranslation(s, width), &next);
    EXPECT_TRUE(st.ok()) << st.ToString();
    cur = std::move(next);
  }
  if (sink == nullptr) return cur;
  std::vector<Record> projected;
  for (const Record& wide : cur) {
    Record compact;
    for (int pos : *sink) {
      compact.Append(pos >= 0 && pos < static_cast<int>(wide.num_fields())
                         ? wide.field(pos)
                         : Value());
    }
    projected.push_back(std::move(compact));
  }
  return projected;
}

/// Fuses the chain and runs the fused program over the batch. Returns false
/// (leaving *out untouched) when the fuser bails — callers decide whether a
/// bail is acceptable for the shape under test.
bool RunFused(const std::vector<StageSpec>& stages,
              const std::vector<Record>& input, int width,
              const std::vector<int>* sink, std::vector<Record>* out) {
  std::vector<tac::FuseStage> fs;
  for (const StageSpec& s : stages) {
    tac::FuseStage f;
    f.fn = &s.fn;
    f.input_map = s.input_map.empty() ? nullptr : &s.input_map;
    f.output_map = s.output_map.empty() ? nullptr : &s.output_map;
    fs.push_back(f);
  }
  std::optional<tac::FusedChainProgram> fused =
      tac::FuseMapChain(fs, width, sink);
  if (!fused) return false;
  FieldTranslation t;
  t.global_width = sink ? static_cast<int>(sink->size()) : width;
  Interpreter interp(&fused->fn);
  Interpreter::ChainState state;
  ColumnView cols(input.data(), input.size(), static_cast<size_t>(width));
  Status st = interp.RunFusedChain(input, cols, t, fused->body_start, out,
                                   nullptr, &state);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return true;
}

void ExpectSameRecords(const std::vector<Record>& a,
                       const std::vector<Record>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString()) << what << " record " << i;
  }
}

tac::Function MustBuild(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return std::move(fn).value();
}

// --- Hand-written shapes -----------------------------------------------------

// A filter whose taken branch emits nothing: the fused program's non-emitting
// path must short-circuit and produce zero records for refuted rows only.
TEST(FusedChain, ZeroEmitPath) {
  FunctionBuilder b("filter", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Label drop = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(a, b.ConstInt(10)), drop);
  b.Emit(ir);
  b.Bind(drop);
  b.Return();
  std::vector<StageSpec> stages;
  stages.push_back({MustBuild(std::move(b)), {}, {}});

  std::vector<Record> input;
  for (int i = 0; i < 20; ++i) {
    input.push_back(Record({Value(int64_t{i}), Value(std::string("x"))}));
  }
  std::vector<Record> staged = RunStaged(stages, input, 2, nullptr);
  std::vector<Record> fused;
  ASSERT_TRUE(RunFused(stages, input, 2, nullptr, &fused));
  ASSERT_EQ(staged.size(), 10u);
  ExpectSameRecords(staged, fused, "zero-emit");
}

// Emit, mutate the same record register, emit again: the fused program must
// snapshot the symbolic overrides at each emit, not share them.
TEST(FusedChain, MultiEmitWithAliasing) {
  FunctionBuilder b("dup", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg out = b.Copy(ir);
  b.SetField(out, 1, b.ConstInt(111));
  b.Emit(out);
  b.SetField(out, 0, b.ConstStr("second"));
  b.Emit(out);
  b.Return();
  std::vector<StageSpec> stages;
  stages.push_back({MustBuild(std::move(b)), {}, {}});

  std::vector<Record> input = {
      Record({Value(int64_t{1}), Value(int64_t{2})}),
      Record({Value(std::string("a")), Value(3.5)}),
  };
  std::vector<Record> staged = RunStaged(stages, input, 2, nullptr);
  std::vector<Record> fused;
  ASSERT_TRUE(RunFused(stages, input, 2, nullptr, &fused));
  ASSERT_EQ(staged.size(), 4u);
  ExpectSameRecords(staged, fused, "multi-emit aliasing");
}

// Two stages with permuted translations and a sink projection: the full
// pipeline the engine fuses, including dead stores to fields the sink never
// reads (position 2's write must not change the projected output).
TEST(FusedChain, TwoStagePermutedWithSink) {
  FunctionBuilder b1("s1", 1, UdfKind::kRat);
  {
    Reg ir = b1.InputRecord(0);
    Reg v = b1.GetField(ir, 0);
    Reg out = b1.Copy(ir);
    b1.SetField(out, 1, b1.Add(v, b1.ConstInt(5)));
    b1.SetField(out, 2, b1.ConstStr("dead"));  // no downstream read
    b1.Emit(out);
    b1.Return();
  }
  FunctionBuilder b2("s2", 1, UdfKind::kRat);
  {
    Reg ir = b2.InputRecord(0);
    Reg v = b2.GetField(ir, 1);
    Label drop = b2.NewLabel();
    b2.BranchIfTrue(b2.CmpGe(v, b2.ConstInt(100)), drop);
    Reg out = b2.Copy(ir);
    b2.SetField(out, 0, b2.Mul(v, b2.ConstInt(2)));
    b2.Emit(out);
    b2.Bind(drop);
    b2.Return();
  }
  std::vector<StageSpec> stages;
  stages.push_back({MustBuild(std::move(b1)), {0, 1, 2}, {0, 1, 2}});
  stages.push_back({MustBuild(std::move(b2)), {3, 1, 0}, {3, 1, 0}});
  std::vector<int> sink = {3, 0};

  std::vector<Record> input;
  for (int i = 0; i < 60; ++i) {
    Record r;
    r.SetField(3, Value::Null());  // width-4 global rows
    r.SetField(0, Value(int64_t{i * 7 % 130}));
    input.push_back(std::move(r));
  }
  std::vector<Record> staged = RunStaged(stages, input, 4, &sink);
  std::vector<Record> fused;
  ASSERT_TRUE(RunFused(stages, input, 4, &sink, &fused));
  ExpectSameRecords(staged, fused, "two-stage sink");
}

// --- Randomized differential -------------------------------------------------

/// Generates one random RAT Map stage over `width`-wide global rows. Sticks
/// to constructs the fuser handles (forward branches, static field indices)
/// so most seeds exercise the fused path rather than the bail.
StageSpec RandomStage(std::mt19937* rng, int width) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> field(0, width - 1);
  std::uniform_int_distribution<int> lit(-20, 20);
  FunctionBuilder b("rand", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);

  // A few computed values off random fields and constants.
  std::vector<Reg> vals;
  int reads = 1 + static_cast<int>((*rng)() % 3);
  for (int i = 0; i < reads; ++i) vals.push_back(b.GetField(ir, field(*rng)));
  int ops = static_cast<int>((*rng)() % 4);
  for (int i = 0; i < ops; ++i) {
    Reg a = vals[(*rng)() % vals.size()];
    Reg c = coin(*rng) ? b.ConstInt(lit(*rng))
                       : b.ConstDouble(lit(*rng) / 4.0);
    switch ((*rng)() % 5) {
      case 0: vals.push_back(b.Add(a, c)); break;
      case 1: vals.push_back(b.Mul(a, c)); break;
      case 2: vals.push_back(b.Div(a, c)); break;
      case 3: vals.push_back(b.StrHashMod(a, 1 + (*rng)() % 7)); break;
      default: vals.push_back(b.CmpLt(a, c)); break;
    }
  }

  // Optional filter: branch over the emitting tail (a 0-emit path).
  Label drop = b.NewLabel();
  bool filtered = coin(*rng) == 1;
  if (filtered) {
    Reg cond = b.CmpLt(vals[(*rng)() % vals.size()], b.ConstInt(lit(*rng)));
    b.BranchIfTrue(cond, drop);
  }

  // Output: copy-and-mutate or a fresh projection; sometimes emit twice with
  // a mutation in between (aliasing).
  Reg out = coin(*rng) ? b.Copy(ir) : b.NewRecord();
  int writes = 1 + static_cast<int>((*rng)() % 3);
  for (int i = 0; i < writes; ++i) {
    b.SetField(out, field(*rng), vals[(*rng)() % vals.size()]);
  }
  b.Emit(out);
  if ((*rng)() % 4 == 0) {
    b.SetField(out, field(*rng), vals[(*rng)() % vals.size()]);
    b.Emit(out);
  }
  if (filtered) b.Bind(drop);
  b.Return();

  StageSpec s;
  s.fn = MustBuild(std::move(b));
  // Identity or a random permutation of the global positions, applied to
  // both maps (the engine's MakeTranslation always provides aligned maps).
  if (coin(*rng)) {
    std::vector<int> perm(static_cast<size_t>(width));
    for (int i = 0; i < width; ++i) perm[static_cast<size_t>(i)] = i;
    std::shuffle(perm.begin(), perm.end(), *rng);
    s.input_map = perm;
    s.output_map = perm;
  }
  return s;
}

Record RandomRecord(std::mt19937* rng, int width) {
  Record r;
  r.SetField(width - 1, Value::Null());
  for (int f = 0; f < width; ++f) {
    switch ((*rng)() % 4) {
      case 0: r.SetField(f, Value(static_cast<int64_t>((*rng)() % 200) - 100));
        break;
      case 1: r.SetField(f, Value(((*rng)() % 400) / 8.0 - 25.0)); break;
      case 2: r.SetField(f, Value(std::string(1 + (*rng)() % 6, 'a' + (*rng)() % 26)));
        break;
      default: break;  // leave the presized null
    }
  }
  return r;
}

// >= 100 seeds: random 1-3 stage chains, random rows, with and without a
// sink projection. Every seed the fuser accepts must match the staged
// interpretation byte for byte; the fuser must accept a healthy majority of
// seeds (otherwise the generator quietly stopped covering the fused path).
TEST(FusedChain, RandomizedDifferential) {
  int fused_seeds = 0;
  for (unsigned seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(seed);
    const int width = 3 + static_cast<int>(rng() % 4);
    const int num_stages = 1 + static_cast<int>(rng() % 3);
    std::vector<StageSpec> stages;
    for (int i = 0; i < num_stages; ++i) {
      stages.push_back(RandomStage(&rng, width));
    }
    std::vector<int> sink;
    const bool with_sink = rng() % 2 == 0;
    if (with_sink) {
      int s = 1 + static_cast<int>(rng() % width);
      for (int j = 0; j < s; ++j) {
        sink.push_back(static_cast<int>(rng() % width));
      }
    }
    std::vector<Record> input;
    size_t rows = 5 + rng() % 40;
    for (size_t i = 0; i < rows; ++i) {
      input.push_back(RandomRecord(&rng, width));
    }
    std::vector<Record> fused;
    if (!RunFused(stages, input, width, with_sink ? &sink : nullptr, &fused)) {
      continue;  // fuser bailed: staged path would run, nothing to compare
    }
    ++fused_seeds;
    std::vector<Record> staged =
        RunStaged(stages, input, width, with_sink ? &sink : nullptr);
    ExpectSameRecords(staged, fused, "seed " + std::to_string(seed));
  }
  EXPECT_GE(fused_seeds, 100) << "generator no longer covers the fused path";
}

}  // namespace
}  // namespace blackbox
