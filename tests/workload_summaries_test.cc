// Validates both annotation paths against each other on the real workload
// UDFs: for every operator whose UDF contains no SCA-opaque construct, the
// statically derived *global* read/write/decision sets must equal the ones
// resolved from the hand-written manual summary. (The clickstream
// "append_user_info" UDF is the deliberate exception — its computed field
// index is exactly what Table 1's 75% row is about.)

#include <gtest/gtest.h>

#include "dataflow/annotate.h"
#include "workloads/clickstream.h"
#include "workloads/textmining.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace {

using dataflow::AnnotatedFlow;
using dataflow::Annotate;
using dataflow::AnnotationMode;

void ExpectSameProperties(const workloads::Workload& w,
                          const std::set<std::string>& expected_diffs) {
  StatusOr<AnnotatedFlow> manual = Annotate(w.flow, AnnotationMode::kManual);
  StatusOr<AnnotatedFlow> sca = Annotate(w.flow, AnnotationMode::kSca);
  ASSERT_TRUE(manual.ok()) << manual.status().ToString();
  ASSERT_TRUE(sca.ok()) << sca.status().ToString();
  for (int i = 0; i < w.flow.num_ops(); ++i) {
    const dataflow::Operator& op = w.flow.op(i);
    if (op.kind == dataflow::OpKind::kSource ||
        op.kind == dataflow::OpKind::kSink) {
      continue;
    }
    bool expect_diff = expected_diffs.count(op.name) > 0;
    bool reads_equal = manual->of(i).read == sca->of(i).read;
    bool writes_equal = manual->of(i).write == sca->of(i).write;
    if (expect_diff) {
      EXPECT_FALSE(reads_equal && writes_equal)
          << w.name << "/" << op.name
          << ": expected SCA to be strictly coarser here";
    } else {
      EXPECT_TRUE(reads_equal)
          << w.name << "/" << op.name << ": manual R "
          << manual->of(i).read.ToString() << " vs SCA R "
          << sca->of(i).read.ToString();
      EXPECT_TRUE(writes_equal)
          << w.name << "/" << op.name << ": manual W "
          << manual->of(i).write.ToString() << " vs SCA W "
          << sca->of(i).write.ToString();
      EXPECT_EQ(manual->of(i).min_emits, sca->of(i).min_emits)
          << w.name << "/" << op.name;
      EXPECT_EQ(manual->of(i).max_emits, sca->of(i).max_emits)
          << w.name << "/" << op.name;
    }
  }
}

TEST(WorkloadSummaries, Q15ScaEqualsManual) {
  ExpectSameProperties(workloads::MakeTpchQ15({}), {});
}

TEST(WorkloadSummaries, Q7ScaEqualsManual) {
  workloads::TpchScale small;
  small.lineitems = 100;
  ExpectSameProperties(workloads::MakeTpchQ7(small), {});
}

TEST(WorkloadSummaries, TextMiningScaEqualsManual) {
  workloads::TextMiningScale s;
  s.documents = 10;
  ExpectSameProperties(workloads::MakeTextMining(s), {});
}

TEST(WorkloadSummaries, ClickstreamScaDiffersOnlyOnAppendUserInfo) {
  workloads::ClickstreamScale s;
  s.sessions = 10;
  ExpectSameProperties(workloads::MakeClickstream(s), {"append_user_info"});
}

TEST(WorkloadSummaries, AppendUserInfoScaReadSetCoversWholeLeftInput) {
  workloads::ClickstreamScale s;
  s.sessions = 10;
  workloads::Workload w = workloads::MakeClickstream(s);
  StatusOr<AnnotatedFlow> sca = Annotate(w.flow, AnnotationMode::kSca);
  ASSERT_TRUE(sca.ok());
  int m2 = -1;
  for (int i = 0; i < w.flow.num_ops(); ++i) {
    if (w.flow.op(i).name == "append_user_info") m2 = i;
  }
  ASSERT_GE(m2, 0);
  // append_user_info's left input carries the click attributes — SCA must
  // (conservatively) claim it reads them.
  const dataflow::OpProperties& p = sca->of(m2);
  for (dataflow::AttrId a : p.in_schemas[0]) {
    EXPECT_TRUE(p.read.Contains(a));
  }
}

}  // namespace
}  // namespace blackbox
