// SCA framework tests, including the paper's Section 3 running example:
// three Map UDFs f1 (B := |B|), f2 (filter A >= 0), f3 (A := A + B) with
// R_f1 = {B}, W_f1 = {B}; R_f2 = {A}, W_f2 = {}; R_f3 = {A,B}, W_f3 = {A}.

#include "sca/analyzer.h"

#include <gtest/gtest.h>

#include "sca/cfg.h"
#include "tac/tac.h"

namespace blackbox {
namespace sca {
namespace {

using tac::FunctionBuilder;
using tac::Label;
using tac::Reg;
using tac::UdfKind;

tac::Function MustBuild(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return std::move(fn).value();
}

// f1: replaces field 1 (B) with |B|.
tac::Function MakeF1() {
  FunctionBuilder b("f1", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg bval = b.GetField(ir, 1);
  Reg out = b.Copy(ir);
  Label done = b.NewLabel();
  b.BranchIfTrue(b.CmpGe(bval, b.ConstInt(0)), done);
  Reg neg = b.Neg(bval);
  b.SetField(out, 1, neg);
  b.Bind(done);
  b.Emit(out);
  b.Return();
  return MustBuild(std::move(b));
}

// f2: emits records with field 0 (A) >= 0.
tac::Function MakeF2() {
  FunctionBuilder b("f2", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Label skip = b.NewLabel();
  b.BranchIfTrue(b.CmpLt(a, b.ConstInt(0)), skip);
  Reg out = b.Copy(ir);
  b.Emit(out);
  b.Bind(skip);
  b.Return();
  return MustBuild(std::move(b));
}

// f3: replaces field 0 (A) with A + B.
tac::Function MakeF3() {
  FunctionBuilder b("f3", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Reg bb = b.GetField(ir, 1);
  Reg sum = b.Add(a, bb);
  Reg out = b.Copy(ir);
  b.SetField(out, 0, sum);
  b.Emit(out);
  b.Return();
  return MustBuild(std::move(b));
}

TEST(ScaExample, F1ReadsAndWritesB) {
  tac::Function f1 = MakeF1();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(f1);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->reads[0].Contains(1));
  EXPECT_FALSE(s->reads[0].Contains(0));
  EXPECT_EQ(s->out_kind, OutputKind::kCopyOfInput);
  ASSERT_EQ(s->writes.size(), 1u);
  EXPECT_EQ(s->writes[0].out_pos, 1);
  EXPECT_EQ(s->writes[0].kind, FieldWrite::Kind::kModify);
  EXPECT_EQ(s->min_emits, 1);
  EXPECT_EQ(s->max_emits, 1);
}

TEST(ScaExample, F2ReadsAOnlyNoWrites) {
  tac::Function f2 = MakeF2();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(f2);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->reads[0].Contains(0));
  EXPECT_FALSE(s->reads[0].Contains(1));
  EXPECT_TRUE(s->writes.empty());
  EXPECT_EQ(s->min_emits, 0);
  EXPECT_EQ(s->max_emits, 1);
  // A is a decision attribute: it controls whether the record is emitted.
  EXPECT_TRUE(s->decision_reads[0].Contains(0));
}

TEST(ScaExample, F3ReadsABWritesA) {
  tac::Function f3 = MakeF3();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(f3);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->reads[0].Contains(0));
  EXPECT_TRUE(s->reads[0].Contains(1));
  ASSERT_EQ(s->writes.size(), 1u);
  EXPECT_EQ(s->writes[0].out_pos, 0);
  EXPECT_EQ(s->min_emits, 1);
  EXPECT_EQ(s->max_emits, 1);
}

TEST(Sca, UnusedGetFieldIsNotARead) {
  FunctionBuilder b("dead_read", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  b.GetField(ir, 3);  // result never used
  Reg out = b.Copy(ir);
  b.Emit(out);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->reads[0].Contains(3));
}

TEST(Sca, ComputedIndexWidensReadSetToAll) {
  FunctionBuilder b("dyn_read", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg seg = b.GetField(ir, 0);
  Reg idx = b.Add(seg, b.ConstInt(1));
  Reg v = b.GetFieldDyn(ir, idx);
  Reg out = b.Copy(ir);
  b.SetField(out, 5, v);
  b.Emit(out);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->reads[0].all);
}

TEST(Sca, ConstantIndexThroughFinalVariableIsResolved) {
  // "field accesses with literals and final variables" (§7.3).
  FunctionBuilder b("const_idx", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg idx = b.ConstInt(2);
  Reg v = b.GetFieldDyn(ir, idx);
  Reg out = b.Copy(ir);
  b.SetField(out, 4, v);
  b.Emit(out);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->reads[0].all);
  EXPECT_TRUE(s->reads[0].Contains(2));
}

TEST(Sca, DefaultConstructorMeansImplicitProjection) {
  FunctionBuilder b("project", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg key = b.GetField(ir, 0);
  Reg out = b.NewRecord();
  b.SetField(out, 0, key);
  b.Emit(out);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->out_kind, OutputKind::kProjection);
  ASSERT_EQ(s->writes.size(), 1u);
  EXPECT_EQ(s->writes[0].kind, FieldWrite::Kind::kExplicitCopy);
  EXPECT_EQ(s->writes[0].from_field, 0);
}

TEST(Sca, MixedConstructorsDegradeToProjection) {
  // Different code paths use the copy and the default constructor: the safe
  // choice is implicit projection (§5).
  FunctionBuilder b("mixed", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);
  Label alt = b.NewLabel();
  Label out_l = b.NewLabel();
  b.BranchIfTrue(b.CmpGt(a, b.ConstInt(0)), alt);
  Reg copy = b.Copy(ir);
  b.Emit(copy);
  b.Goto(out_l);
  b.Bind(alt);
  Reg fresh = b.NewRecord();
  b.SetField(fresh, 0, a);
  b.Emit(fresh);
  b.Bind(out_l);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->out_kind, OutputKind::kProjection);
}

TEST(Sca, EmitInLoopIsUnbounded) {
  FunctionBuilder b("loop_emit", 1, UdfKind::kKat);
  Reg n = b.InputCount(0);
  Reg i = b.ConstInt(0);
  Label loop = b.NewLabel();
  Label done = b.NewLabel();
  b.Bind(loop);
  b.BranchIfFalse(b.CmpLt(i, n), done);
  Reg r = b.InputAt(0, i);
  Reg c = b.Copy(r);
  b.Emit(c);
  b.AccumAdd(i, b.ConstInt(1));
  b.Goto(loop);
  b.Bind(done);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->min_emits, 0);
  EXPECT_EQ(s->max_emits, -1);
}

TEST(Sca, BranchlessEmitCountsExactlyTwo) {
  FunctionBuilder b("two_emits", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg c1 = b.Copy(ir);
  b.Emit(c1);
  Reg c2 = b.Copy(ir);
  b.Emit(c2);
  b.Return();
  StatusOr<LocalUdfSummary> s = AnalyzeUdf(MustBuild(std::move(b)));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->min_emits, 2);
  EXPECT_EQ(s->max_emits, 2);
}

TEST(Cfg, UseDefChainsFindTheUniqueDefinition) {
  FunctionBuilder b("chains", 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg a = b.GetField(ir, 0);           // instr 1, defines a
  Reg c = b.Add(a, b.ConstInt(1));     // instr 3 uses a
  Reg out = b.Copy(ir);
  b.SetField(out, 0, c);
  b.Emit(out);
  b.Return();
  tac::Function fn = MustBuild(std::move(b));
  StatusOr<ControlFlowGraph> cfg = ControlFlowGraph::Build(fn);
  ASSERT_TRUE(cfg.ok());
  // Instruction 3 (the add) uses register a defined at instruction 1.
  const std::set<int>& defs = cfg->UseDefs(3, a.id);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(*defs.begin(), 1);
  EXPECT_TRUE(cfg->DefUses(1).count(3) > 0);
}

}  // namespace
}  // namespace sca
}  // namespace blackbox
