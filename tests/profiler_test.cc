// Tests for the runtime profiler (the paper's §9 future-work item): measured
// selectivities / key cardinalities must approximate the known ground truth
// of the workload generators, and the optimizer fed with profiled hints must
// agree with the manually hinted one on the best plan.

#include "optimizer/profiler.h"

#include <gtest/gtest.h>

#include "core/optimizer_api.h"
#include "reorder/plan.h"
#include "workloads/clickstream.h"
#include "workloads/tpch.h"

namespace blackbox {
namespace optimizer {
namespace {

std::map<int, const DataSet*> SourcePtrs(const workloads::Workload& w) {
  std::map<int, const DataSet*> out;
  for (const auto& [id, data] : w.source_data) out[id] = &data;
  return out;
}

TEST(Profiler, MeasuresQ15FilterSelectivity) {
  workloads::TpchScale scale;
  scale.lineitems = 20000;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  StatusOr<FlowProfile> profile = ProfileFlow(w.flow, SourcePtrs(w));
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  // Operator 2 is the shipdate filter; the generator draws dates uniformly
  // over one year and the filter keeps one quarter.
  const OperatorProfile& sigma = profile->per_op.at(2);
  EXPECT_GT(sigma.calls, 500);
  EXPECT_NEAR(sigma.selectivity(), 0.25, 0.08);

  // Operator 3 (prepare) is one-to-one.
  EXPECT_DOUBLE_EQ(profile->per_op.at(3).selectivity(), 1.0);
}

TEST(Profiler, ScalesDistinctKeysToFullDataSize) {
  workloads::TpchScale scale;
  scale.lineitems = 40000;
  scale.suppliers = 100;
  workloads::Workload w = workloads::MakeTpchQ15(scale);

  ProfileOptions opts;
  opts.sample_records = 4000;  // 10% sample
  StatusOr<FlowProfile> profile = ProfileFlow(w.flow, SourcePtrs(w), opts);
  ASSERT_TRUE(profile.ok());

  // The Reduce keys on l_suppkey with 100 distinct suppliers. Every supplier
  // appears in a 4000-record sample with near-certainty, so the *sample*
  // distinct count is ~100; the upscaling (division by the sample fraction)
  // over-estimates bounded by 1/frac.
  const OperatorProfile& gamma = profile->per_op.at(4);
  EXPECT_GE(gamma.distinct_keys_scaled, 100);
  EXPECT_LE(gamma.distinct_keys_scaled, 1000);
}

TEST(Profiler, ProfiledHintsReproduceTheManualBestPlan) {
  workloads::ClickstreamScale scale;
  scale.sessions = 4000;
  scale.users = 400;
  workloads::Workload w = workloads::MakeClickstream(scale);

  core::BlackBoxOptimizer::Options opts;
  opts.mode = dataflow::AnnotationMode::kManual;
  opts.weights.mem_budget_bytes = 64 << 10;
  core::BlackBoxOptimizer optimizer(opts);

  StatusOr<core::OptimizationResult> with_manual_hints =
      optimizer.Optimize(w.flow);
  ASSERT_TRUE(with_manual_hints.ok());

  // Strip all hints, profile, re-apply, re-optimize.
  workloads::Workload stripped = workloads::MakeClickstream(scale);
  for (int i = 0; i < stripped.flow.num_ops(); ++i) {
    stripped.flow.op(i).hints = dataflow::Hints();
  }
  StatusOr<FlowProfile> profile =
      ProfileFlow(stripped.flow, SourcePtrs(stripped));
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ApplyProfile(*profile, &stripped.flow);

  StatusOr<core::OptimizationResult> with_profiled_hints =
      optimizer.Optimize(stripped.flow);
  ASSERT_TRUE(with_profiled_hints.ok());

  EXPECT_EQ(
      reorder::CanonicalString(with_manual_hints->best().logical),
      reorder::CanonicalString(with_profiled_hints->best().logical));
}

TEST(Profiler, FailsWithoutSourceData) {
  workloads::Workload w = workloads::MakeTpchQ15({});
  std::map<int, const DataSet*> empty;
  StatusOr<FlowProfile> profile = ProfileFlow(w.flow, empty);
  EXPECT_FALSE(profile.ok());
}

TEST(Profiler, ApplyProfileNormalizesCpuCosts) {
  workloads::TpchScale scale;
  scale.lineitems = 5000;
  workloads::Workload w = workloads::MakeTpchQ15(scale);
  StatusOr<FlowProfile> profile = ProfileFlow(w.flow, SourcePtrs(w));
  ASSERT_TRUE(profile.ok());
  ApplyProfile(*profile, &w.flow);
  double min_cost = 1e100;
  for (int i = 0; i < w.flow.num_ops(); ++i) {
    const dataflow::Operator& op = w.flow.op(i);
    if (op.kind == dataflow::OpKind::kSource ||
        op.kind == dataflow::OpKind::kSink) {
      continue;
    }
    EXPECT_GT(op.hints.cpu_cost_per_call, 0.0);
    min_cost = std::min(min_cost, op.hints.cpu_cost_per_call);
  }
  EXPECT_NEAR(min_cost, 1.0, 1e-9);
}

}  // namespace
}  // namespace optimizer
}  // namespace blackbox
