// Plan-space enumeration (Section 6). Two implementations:
//
// 1. EnumerateAlternatives — the production enumerator: computes the closure
//    of the initial plan under all valid pairwise reorderings (unary swaps,
//    unary/binary pushes, binary rotations) with canonical-form
//    deduplication. Handles arbitrary tree-shaped flows with binary
//    operators, like the paper's implementation.
//
// 2. EnumerateChainAlgorithm1 — a faithful transcription of the paper's
//    Algorithm 1 (recursive root-removal with a memo table), restricted to
//    single-input operator chains as presented in the paper. Used to
//    cross-validate the closure enumerator.

#ifndef BLACKBOX_ENUMERATE_ENUMERATE_H_
#define BLACKBOX_ENUMERATE_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "reorder/conditions.h"
#include "reorder/plan.h"

namespace blackbox {
namespace enumerate {

struct EnumOptions {
  /// Safety valve against search-space explosions. Hitting the limit stops
  /// enumeration and marks the result truncated (it is NOT an error): the
  /// returned plans are a valid but partial closure.
  size_t max_plans = 1'000'000;
};

struct EnumResult {
  std::vector<reorder::PlanPtr> plans;  // first entry is the original plan
  size_t rewrites_applied = 0;          // total successful edge rewrites
  size_t rewrites_rejected = 0;         // reorderable() returned false
  bool truncated = false;               // max_plans hit; partial closure
};

/// Called once per discovered alternative, in discovery order, with its
/// position in EnumResult::plans. Lets the caller overlap downstream work
/// (costing) with enumeration instead of waiting for the full closure.
using PlanSink = std::function<void(const reorder::PlanPtr&, size_t index)>;

/// Enumerates all data flows derivable from the original flow by valid
/// pairwise reorderings (closure semantics). If `sink` is non-null it is
/// invoked synchronously for every plan as it is discovered (including the
/// original at index 0), before the function returns.
StatusOr<EnumResult> EnumerateAlternatives(const dataflow::AnnotatedFlow& af,
                                           const EnumOptions& options = {},
                                           const PlanSink& sink = nullptr);

/// Algorithm 1 from the paper, for chains of unary operators. Returns an
/// error if the flow contains binary operators.
StatusOr<EnumResult> EnumerateChainAlgorithm1(
    const dataflow::AnnotatedFlow& af, const EnumOptions& options = {});

/// The closure's edge relation: appends to `out` every plan obtainable from
/// `plan` by applying exactly one valid rewrite (unary swap, unary/binary
/// push, binary rotation) somewhere in the tree; `rejected` counts oracle
/// refusals. Shared by the closure enumerator (BFS over these edges) and the
/// ranked best-first search (ranked.h), so both walk the identical plan
/// space.
void PlanNeighbors(const reorder::PlanPtr& plan,
                   const dataflow::DataFlow& flow,
                   const reorder::ReorderOracle& oracle,
                   std::vector<reorder::PlanPtr>* out, size_t* rejected);

}  // namespace enumerate
}  // namespace blackbox

#endif  // BLACKBOX_ENUMERATE_ENUMERATE_H_
