#include "enumerate/ranked.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <unordered_set>
#include <utility>

#include "reorder/conditions.h"

namespace blackbox {
namespace enumerate {

using reorder::CanonicalString;
using reorder::PlanPtr;

namespace {

/// A discovered-but-uncosted plan. Frontier order is (bound, canonical form):
/// the bound drives the search, the canonical form makes pops deterministic
/// when bounds tie.
struct FrontierEntry {
  double bound;
  std::string canonical;
  PlanPtr plan;
};

struct FrontierOrder {
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    // std::priority_queue is a max-heap; invert for min-first.
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.canonical > b.canonical;
  }
};

struct Costed {
  double cost = 0;
  int num_chains = 0;
  RankedAlternative alt;
};

/// The final ranking order — identical to the closure path's sort in
/// core::BlackBoxOptimizer, so ranked top-1 and closure top-1 agree even on
/// cost ties.
bool CostLess(const Costed& a, const Costed& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.num_chains != b.num_chains) return a.num_chains < b.num_chains;
  return a.alt.canonical < b.alt.canonical;
}

}  // namespace

StatusOr<RankedResult> RankedEnumerate(const dataflow::AnnotatedFlow& af,
                                       const optimizer::CostWeights& weights,
                                       const RankedOptions& options) {
  if (options.top_k == 0) {
    return Status::InvalidArgument("RankedOptions::top_k must be positive");
  }
  if (options.cost_epsilon < 0) {
    return Status::InvalidArgument(
        "RankedOptions::cost_epsilon must be non-negative");
  }

  auto t0 = std::chrono::steady_clock::now();
  RankedResult result;
  if (options.max_plans == 0) {
    result.truncated = true;
    return result;
  }

  const dataflow::DataFlow& flow = *af.flow;
  reorder::ReorderOracle oracle(&af);

  std::priority_queue<FrontierEntry, std::vector<FrontierEntry>, FrontierOrder>
      frontier;
  std::unordered_set<std::string> seen;
  std::vector<Costed> costed;  // kept sorted by CostLess
  int64_t costing_nanos = 0;

  PlanPtr original = reorder::PlanFromFlow(flow);
  std::string canon = CanonicalString(original);
  seen.insert(canon);
  frontier.push({optimizer::LowerBoundCost(af, original, weights),
                 std::move(canon), std::move(original)});

  while (!frontier.empty()) {
    FrontierEntry top = frontier.top();
    frontier.pop();

    // Anytime stop rule: bounds only grow as we pop, so once the cheapest
    // remaining bound exceeds the k-th best COST (+ epsilon), no uncosted
    // plan can displace or tie into the top-k. `>` (not `>=`) keeps exact
    // cost ties alive so the chain/canonical tie-break sees every contender.
    if (costed.size() >= options.top_k &&
        top.bound > costed[options.top_k - 1].cost + options.cost_epsilon) {
      result.stopped_early = true;
      result.plans_pruned = frontier.size() + 1;
      break;
    }

    auto c0 = std::chrono::steady_clock::now();
    StatusOr<optimizer::PhysicalPlan> phys =
        optimizer::OptimizePhysical(af, top.plan, weights);
    costing_nanos += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - c0)
                         .count();
    if (!phys.ok()) return phys.status();
    Costed c;
    c.cost = phys->total_cost;
    c.num_chains = phys->num_chains;
    c.alt.logical = top.plan;
    c.alt.physical = std::move(phys).value();
    c.alt.canonical = top.canonical;
    costed.insert(std::upper_bound(costed.begin(), costed.end(), c, CostLess),
                  std::move(c));
    ++result.plans_enumerated;

    // Expand this plan's rewrite neighbors into the frontier.
    std::vector<PlanPtr> neighbors;
    PlanNeighbors(top.plan, flow, oracle, &neighbors,
                  &result.rewrites_rejected);
    for (PlanPtr& n : neighbors) {
      ++result.rewrites_applied;
      std::string key = CanonicalString(n);
      if (!seen.insert(key).second) continue;
      if (seen.size() > options.max_plans) {
        result.truncated = true;
        continue;
      }
      frontier.push({optimizer::LowerBoundCost(af, n, weights),
                     std::move(key), std::move(n)});
    }
  }

  size_t keep = std::min(options.top_k, costed.size());
  result.ranked.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    result.ranked.push_back(std::move(costed[i].alt));
  }
  result.costing_seconds = static_cast<double>(costing_nanos) * 1e-9;
  result.search_seconds =
      std::max(0.0, std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                            .count() -
                        result.costing_seconds);
  return result;
}

}  // namespace enumerate
}  // namespace blackbox
