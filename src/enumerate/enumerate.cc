#include "enumerate/enumerate.h"

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

namespace blackbox {
namespace enumerate {

using dataflow::OpKind;
using reorder::CanonicalString;
using reorder::PlanNode;
using reorder::PlanPtr;
using reorder::ReorderOracle;

namespace {

bool IsUnaryOp(const dataflow::DataFlow& flow, int id) {
  OpKind k = flow.op(id).kind;
  return k == OpKind::kMap || k == OpKind::kReduce;
}

bool IsBinaryOp(const dataflow::DataFlow& flow, int id) {
  OpKind k = flow.op(id).kind;
  return k == OpKind::kMatch || k == OpKind::kCross || k == OpKind::kCoGroup;
}

}  // namespace

/// Generates every subtree obtainable from `node` by applying exactly one
/// valid rewrite somewhere inside it.
void PlanNeighbors(const PlanPtr& node, const dataflow::DataFlow& flow,
                   const ReorderOracle& oracle, std::vector<PlanPtr>* out,
                   size_t* rejected) {
  // Rewrites inside children (path copying).
  for (size_t ci = 0; ci < node->children.size(); ++ci) {
    std::vector<PlanPtr> child_alts;
    PlanNeighbors(node->children[ci], flow, oracle, &child_alts, rejected);
    for (PlanPtr& alt : child_alts) {
      std::vector<PlanPtr> children = node->children;
      children[ci] = std::move(alt);
      out->push_back(PlanNode::Make(node->op_id, std::move(children)));
    }
  }

  const int r = node->op_id;

  // Rewrites at this node's root edge(s).
  if (IsUnaryOp(flow, r)) {
    const PlanPtr& s_node = node->children[0];
    const int s = s_node->op_id;
    if (IsUnaryOp(flow, s)) {
      if (oracle.CanSwapUnaryUnary(r, s)) {
        // r(s(X)) -> s(r(X))
        PlanPtr inner = PlanNode::Make(r, {s_node->children[0]});
        out->push_back(PlanNode::Make(s, {std::move(inner)}));
      } else {
        ++*rejected;
      }
    } else if (IsBinaryOp(flow, s)) {
      for (int side = 0; side < 2; ++side) {
        if (oracle.CanSwapUnaryBinary(r, s, side, s_node->children[side],
                                      s_node->children[1 - side])) {
          // r(s(X0, X1)) -> s(..., r(X_side), ...)
          std::vector<PlanPtr> children = s_node->children;
          children[side] = PlanNode::Make(r, {s_node->children[side]});
          out->push_back(PlanNode::Make(s, std::move(children)));
        } else {
          ++*rejected;
        }
      }
    }
  } else if (IsBinaryOp(flow, r)) {
    for (int k = 0; k < 2; ++k) {
      const PlanPtr& s_node = node->children[k];
      const int s = s_node->op_id;
      const PlanPtr& outer = node->children[1 - k];
      if (IsUnaryOp(flow, s)) {
        // Pull the unary child above the binary parent:
        // r(..., s(X), ...) -> s(r(..., X, ...))
        if (oracle.CanSwapUnaryBinary(s, r, k, s_node->children[0], outer)) {
          std::vector<PlanPtr> children = node->children;
          children[k] = s_node->children[0];
          PlanPtr inner = PlanNode::Make(r, std::move(children));
          out->push_back(PlanNode::Make(s, {std::move(inner)}));
        } else {
          ++*rejected;
        }
      } else if (IsBinaryOp(flow, s)) {
        const PlanPtr& a = s_node->children[0];
        const PlanPtr& b = s_node->children[1];
        if (k == 0) {
          // r(s(A,B), C): rot1 -> s(A, r(B,C)); rot2 -> s(r(A,C), B)
          if (oracle.CanRotateBinaryBinary(r, s, a, outer)) {
            PlanPtr inner = PlanNode::Make(r, {b, outer});
            out->push_back(PlanNode::Make(s, {a, std::move(inner)}));
          } else {
            ++*rejected;
          }
          if (oracle.CanRotateBinaryBinary(r, s, b, outer)) {
            PlanPtr inner = PlanNode::Make(r, {a, outer});
            out->push_back(PlanNode::Make(s, {std::move(inner), b}));
          } else {
            ++*rejected;
          }
        } else {
          // r(C, s(A,B)): rot3 -> s(r(C,A), B); rot4 -> s(A, r(C,B))
          if (oracle.CanRotateBinaryBinary(r, s, b, outer)) {
            PlanPtr inner = PlanNode::Make(r, {outer, a});
            out->push_back(PlanNode::Make(s, {std::move(inner), b}));
          } else {
            ++*rejected;
          }
          if (oracle.CanRotateBinaryBinary(r, s, a, outer)) {
            PlanPtr inner = PlanNode::Make(r, {outer, b});
            out->push_back(PlanNode::Make(s, {a, std::move(inner)}));
          } else {
            ++*rejected;
          }
        }
      }
    }
  }
}

StatusOr<EnumResult> EnumerateAlternatives(const dataflow::AnnotatedFlow& af,
                                           const EnumOptions& options,
                                           const PlanSink& sink) {
  const dataflow::DataFlow& flow = *af.flow;
  ReorderOracle oracle(&af);
  EnumResult result;

  PlanPtr original = reorder::PlanFromFlow(flow);
  if (options.max_plans == 0) {
    result.truncated = true;
    return result;
  }
  std::unordered_set<std::string> seen;
  std::deque<PlanPtr> work;
  seen.insert(CanonicalString(original));
  work.push_back(original);
  result.plans.push_back(original);
  if (sink) sink(original, 0);

  while (!work.empty() && !result.truncated) {
    PlanPtr plan = std::move(work.front());
    work.pop_front();
    std::vector<PlanPtr> neighbors;
    PlanNeighbors(plan, flow, oracle, &neighbors, &result.rewrites_rejected);
    for (PlanPtr& n : neighbors) {
      ++result.rewrites_applied;
      std::string key = CanonicalString(n);
      if (seen.insert(std::move(key)).second) {
        if (result.plans.size() >= options.max_plans) {
          result.truncated = true;
          break;
        }
        if (sink) sink(n, result.plans.size());
        result.plans.push_back(n);
        work.push_back(n);
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Algorithm 1 (paper, Section 6) for unary chains.
// ---------------------------------------------------------------------------

namespace {

/// Chains are represented bottom-up: element 0 is the source, the last
/// element is the root (the operator just below the sink).
using Chain = std::vector<int>;

std::string ChainKey(const Chain& c) {
  // The memo key is the *set* of operators (getMTabKey): any sub-flow
  // containing the same operators has the same alternatives.
  std::set<int> s(c.begin(), c.end());
  std::string key;
  for (int id : s) {
    key += std::to_string(id);
    key += ",";
  }
  return key;
}

class Algorithm1 {
 public:
  Algorithm1(const dataflow::AnnotatedFlow& af, const ReorderOracle& oracle)
      : flow_(*af.flow), oracle_(oracle) {}

  /// ENUM-ALTERNATIVES(D) — returns all reordered chains for flow D.
  std::vector<Chain> Enum(const Chain& d) {
    auto it = memo_.find(ChainKey(d));
    if (it != memo_.end()) return it->second;  // check memoTable (line 4)

    std::vector<Chain> alts;
    int r = d.back();  // getRoot(D) (line 7)
    if (flow_.op(r).kind == OpKind::kSource) {
      alts = {d};  // (lines 8-9)
    } else {
      std::set<int> cand;  // (line 16)
      Chain d_minus_r(d.begin(), d.end() - 1);  // rmRoot(D) (line 17)
      std::vector<Chain> alts_minus_r = Enum(d_minus_r);  // (line 18)
      for (const Chain& a_minus_r : alts_minus_r) {       // (line 19)
        int s = a_minus_r.back();  // candidate root s (line 20)
        Chain with_r = a_minus_r;
        with_r.push_back(r);
        alts.push_back(std::move(with_r));  // addRoot (line 21)
        if (flow_.op(s).kind == OpKind::kSource) continue;
        if (cand.count(s) == 0 && Reorderable(r, s)) {  // (line 22)
          cand.insert(s);                               // (line 23)
          Chain d_minus_s = a_minus_r;                  // setRoot (line 24)
          d_minus_s.back() = r;
          // Keep the operators below unchanged; replace s by r as root.
          // (a_minus_r without its root, plus r.)
          d_minus_s = Chain(a_minus_r.begin(), a_minus_r.end() - 1);
          d_minus_s.push_back(r);
          std::vector<Chain> alts_minus_s = Enum(d_minus_s);  // (line 25)
          for (const Chain& a_minus_s : alts_minus_s) {       // (line 26)
            Chain with_s = a_minus_s;
            with_s.push_back(s);
            alts.push_back(std::move(with_s));  // addRoot(A_-s, s) (line 27)
          }
        }
      }
    }
    memo_[ChainKey(d)] = alts;  // (line 28)
    return alts;
  }

 private:
  bool Reorderable(int r, int s) const {
    return oracle_.CanSwapUnaryUnary(r, s);
  }

  const dataflow::DataFlow& flow_;
  const ReorderOracle& oracle_;
  std::map<std::string, std::vector<Chain>> memo_;
};

}  // namespace

StatusOr<EnumResult> EnumerateChainAlgorithm1(const dataflow::AnnotatedFlow& af,
                                              const EnumOptions& options) {
  const dataflow::DataFlow& flow = *af.flow;
  // Extract the chain below the sink; reject non-chains.
  Chain chain;
  int at = flow.op(flow.sink_id()).inputs[0];
  while (true) {
    const dataflow::Operator& op = flow.op(at);
    chain.push_back(at);
    if (op.kind == OpKind::kSource) break;
    if (op.inputs.size() != 1) {
      return Status::NotSupported(
          "Algorithm 1 as presented handles single-input operators only");
    }
    at = op.inputs[0];
  }
  std::reverse(chain.begin(), chain.end());

  ReorderOracle oracle(&af);
  Algorithm1 algo(af, oracle);
  std::vector<Chain> alts = algo.Enum(chain);

  // Deduplicate (the recursion can re-derive the same order) and convert to
  // plan trees rooted at the sink.
  std::set<Chain> unique_alts(alts.begin(), alts.end());
  EnumResult result;
  for (const Chain& c : unique_alts) {
    if (result.plans.size() >= options.max_plans) {
      result.truncated = true;
      break;
    }
    PlanPtr node = PlanNode::Make(c[0]);
    for (size_t i = 1; i < c.size(); ++i) {
      node = PlanNode::Make(c[i], {std::move(node)});
    }
    node = PlanNode::Make(flow.sink_id(), {std::move(node)});
    result.plans.push_back(std::move(node));
  }
  return result;
}

}  // namespace enumerate
}  // namespace blackbox
