// Ranked, anytime plan enumeration (DESIGN.md §3.4). Instead of materializing
// the full reorder closure and costing every member (enumerate.h +
// optimizer/physical.h), RankedEnumerate walks the same rewrite graph
// best-first: a frontier of discovered-but-uncosted logical plans ordered by
// an admissible lower bound (optimizer::LowerBoundCost), popping the most
// promising plan, costing it fully, and expanding its rewrite neighbors.
// The search stops as soon as no frontier plan's bound can still displace the
// current top-k (within cost_epsilon) — the anytime guarantee of "Ranked
// Enumeration of Join Queries with Projections" (PAPERS.md) adapted to the
// paper's reorder closure. Equal-cost plans rank by (fewer operator chains,
// canonical form): fewer chains = fewer pipeline breakers, the chain-aware
// tie-break carried over from PR 4.

#ifndef BLACKBOX_ENUMERATE_RANKED_H_
#define BLACKBOX_ENUMERATE_RANKED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "enumerate/enumerate.h"
#include "optimizer/physical.h"
#include "reorder/plan.h"

namespace blackbox {
namespace enumerate {

struct RankedOptions {
  /// Ranked alternatives to return. The search keeps costing while any
  /// frontier bound could still enter (or tie into) the top-k.
  size_t top_k = 8;

  /// Anytime slack: stop once every frontier bound exceeds the current k-th
  /// best cost by more than this (absolute cost units). 0 = exact over the
  /// discovered space, including cost ties.
  double cost_epsilon = 0;

  /// Safety valve on DISCOVERED plans (frontier inserts), mirroring
  /// EnumOptions::max_plans. Hitting it marks the result truncated; already
  /// discovered plans are still costed under the stop rule.
  size_t max_plans = 1'000'000;
};

/// One fully costed alternative, in final rank order.
struct RankedAlternative {
  reorder::PlanPtr logical;
  optimizer::PhysicalPlan physical;
  std::string canonical;  // reorder::CanonicalString(logical)
};

struct RankedResult {
  /// Ascending (cost, num_chains, canonical); at most top_k entries.
  std::vector<RankedAlternative> ranked;

  size_t plans_enumerated = 0;  // popped from the frontier and fully costed
  size_t plans_pruned = 0;      // discovered but never costed (bound too high)
  size_t rewrites_applied = 0;
  size_t rewrites_rejected = 0;
  bool stopped_early = false;  // the bound fired before frontier exhaustion
  bool truncated = false;      // max_plans hit while discovering

  /// Wall seconds inside optimizer::OptimizePhysical vs everything else
  /// (neighbor generation, bounds, frontier bookkeeping).
  double costing_seconds = 0;
  double search_seconds = 0;
};

/// Best-first top-k search over the rewrite graph of `af`'s flow. The search
/// is serial and deterministic: frontier order is (lower bound, canonical
/// form) and the final ranking's tie-break is (num_chains, canonical form).
/// Exactness contract: every DISCOVERED plan whose bound is <= the k-th best
/// cost + cost_epsilon is costed before the search stops, so the returned
/// top-1 matches the full closure's best whenever the bound steers discovery
/// to it — validated empirically by the ranked-vs-closure differentials
/// (tests/enum_random_chain_test.cc, tests/plan_equivalence_test.cc).
StatusOr<RankedResult> RankedEnumerate(const dataflow::AnnotatedFlow& af,
                                       const optimizer::CostWeights& weights,
                                       const RankedOptions& options = {});

}  // namespace enumerate
}  // namespace blackbox

#endif  // BLACKBOX_ENUMERATE_RANKED_H_
