// OptimizedProgram — layer 3 of the fluent pipeline API (see DESIGN.md §4):
// the runnable result of Pipeline::Optimize(). Owns a snapshot of the logical
// flow, its annotation, and every ranked reordered alternative, and executes
// any of them on the simulated cluster — replacing the manual
// BlackBoxOptimizer + Executor + raw-operator-id dance of the core layer.

#ifndef BLACKBOX_API_OPTIMIZED_PROGRAM_H_
#define BLACKBOX_API_OPTIMIZED_PROGRAM_H_

#include <map>
#include <memory>
#include <vector>

#include "api/annotation_provider.h"
#include "common/status.h"
#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "enumerate/enumerate.h"
#include "optimizer/physical.h"
#include "record/record.h"

namespace blackbox {
namespace api {

class Stream;

/// Knobs for one optimization. The execution options describe the simulated
/// cluster Run() executes on; by default the cost model is derived from them
/// so estimates and measured runtimes describe the same machine.
struct OptimizeOptions {
  optimizer::CostWeights weights;
  enumerate::EnumOptions enum_options;
  engine::ExecOptions exec;

  /// Plan-space exploration (DESIGN.md §3.4). The default ranked search
  /// costs plans best-first under an admissible bound and stops as soon as
  /// the top_k cannot change; kClosure restores the materialize-everything
  /// behavior (the oracle differential tests iterate it).
  core::SearchMode search = core::SearchMode::kRanked;
  /// Ranked alternatives to keep in kRanked mode. OptimizeFlow() rejects
  /// top_k <= 0 with InvalidArgument.
  int top_k = 8;
  /// Anytime slack (absolute cost units) for the ranked stop rule; 0 keeps
  /// the top-k exact over the discovered space. Negative values are
  /// rejected with InvalidArgument.
  double cost_epsilon = 0;

  /// Consult the process-wide plan cache (optimizer/plan_cache.h): a
  /// pipeline whose canonical shape, annotations, and optimizer knobs match
  /// a previous optimization reuses its ranked plans outright — no UDF
  /// analysis, no enumeration, no costing. Automatically bypassed for
  /// providers whose annotations depend on bound data (the profiler).
  /// Disable for benchmarks that measure optimization itself.
  bool use_plan_cache = true;

  /// Copy exec.dop / exec.mem_budget_bytes into the cost weights. Disable to
  /// cost for a different cluster than the one Run() simulates. When set,
  /// OptimizeFlow() rejects caller-supplied weights that contradict exec.
  bool cost_model_follows_exec = true;

  /// Worker threads for costing the enumerated alternatives (streamed
  /// through a bounded queue, deterministically ranked — see
  /// core::BlackBoxOptimizer::Options::num_threads). 0 (the default)
  /// inherits exec.num_threads, so one knob drives both phases; set
  /// explicitly to use different costing and execution parallelism.
  int num_threads = 0;
};

/// An optimized, runnable program: the annotated flow plus all ranked
/// alternatives. Self-contained — it keeps the flow snapshot alive, so it may
/// outlive the Pipeline (or DataFlow) it was optimized from.
class OptimizedProgram {
 public:
  OptimizedProgram() = default;

  const dataflow::DataFlow& flow() const { return *flow_; }
  const dataflow::AnnotatedFlow& annotated() const { return res().annotated; }

  /// The ranked alternatives, ascending (cost, chain count, canonical form).
  /// kRanked search: the top_k best; kClosure: every costed alternative.
  const std::vector<core::PlannedAlternative>& ranked() const {
    return res().ranked;
  }
  /// Plans discovered by the search (kClosure: the closure size).
  size_t num_alternatives() const { return res().num_alternatives; }
  /// Plans fully costed (== num_alternatives in kClosure mode).
  size_t plans_enumerated() const { return res().plans_enumerated; }
  /// Ranked search only: plans discovered but pruned by the lower bound.
  size_t plans_pruned() const { return res().plans_pruned; }
  /// Ranked search only: the anytime stop rule fired — the fast path, not an
  /// error (the top-k is exact over the discovered space).
  bool stopped_early() const { return res().stopped_early; }
  /// True if enumeration hit EnumOptions::max_plans: ranked() covers only a
  /// partial closure and the true optimum may be missing. OptimizeFlow()
  /// also prints a warning to stderr when this happens.
  bool truncated() const { return res().truncated; }
  /// True if this program's plans came from the process-wide plan cache
  /// (annotation, enumeration, and costing were all skipped).
  bool from_plan_cache() const { return from_plan_cache_; }
  double enumeration_seconds() const { return res().enumeration_seconds; }
  double costing_seconds() const { return res().costing_seconds; }
  const core::PlannedAlternative& best() const { return res().best(); }

  /// Optimizer estimate of the peak per-instance buffered bytes of the
  /// alternative at `index`: the sum over its pipeline breakers of the
  /// input volume each one materializes (a broadcast side counts in full,
  /// a partitioned side divided by dop; dop <= 0 uses exec_options().dop).
  /// The serving layer sizes its admission carve from this instead of the
  /// worst-case configured budget. Returns 0 for an out-of-range index or
  /// an unoptimized program.
  double EstimatedPeakBytes(size_t index = 0, int dop = 0) const;

  /// Position of the originally authored operator order in ranked()
  /// (0-based), or -1 if it was pruned.
  int ImplementedIndex() const;

  /// Binds the data of one source, addressed by its Stream handle. Only
  /// valid on programs produced by Pipeline::Optimize(), and only with
  /// handles of that pipeline (handles from another pipeline could alias a
  /// source id here); programs from OptimizeFlow() bind via BindSources().
  Status BindSource(const Stream& source, const DataSet* data);

  /// Bulk binding for workloads that keep generated data per source operator
  /// id (the legacy bridge). The map must outlive this program.
  Status BindSources(const std::map<int, DataSet>& data);

  /// Executes the alternative at `index` in ranked order (0 = cheapest).
  /// All sources must be bound.
  StatusOr<DataSet> Run(size_t index = 0,
                        engine::ExecStats* stats = nullptr) const;
  StatusOr<DataSet> RunBest(engine::ExecStats* stats = nullptr) const {
    return Run(0, stats);
  }

  /// Like Run(), but with caller-supplied execution options instead of the
  /// stored ones. Const and reentrant: concurrent RunWith calls on one
  /// program are safe (each builds its own Executor), which is how the
  /// serving layer runs many admitted queries of the same program at once —
  /// each with its own spill tag, ledger parent, and shared worker pool.
  ///
  /// Cancellation: when exec.cancel is set, the engine polls it at batch
  /// boundaries, spill writes/reads, and merge passes; a fired token makes
  /// this return Status::Cancelled or DeadlineExceeded within about one
  /// batch of work, with all execution-owned memory and spill files already
  /// released by the unwind (RAII). The token is execution-only state — it
  /// never affects plan choice or the plan cache, and a token that never
  /// fires leaves the output byte-identical to running without one.
  StatusOr<DataSet> RunWith(size_t index, const engine::ExecOptions& exec,
                            engine::ExecStats* stats = nullptr) const;

  const engine::ExecOptions& exec_options() const { return exec_; }

  /// Mutable run options: lets a program optimized once be executed under
  /// different cluster conditions — most usefully a memory-budget sweep
  /// (exec_options().mem_budget_bytes) across Run() calls, the knob the
  /// spill-equivalence harness and the bench budget sweeps turn. Note the
  /// ranked plans keep the costs they were optimized with; changing the
  /// budget here changes measured behavior only.
  engine::ExecOptions& mutable_exec_options() { return exec_; }

 private:
  friend class Pipeline;
  friend StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow&,
                                                 const AnnotationProvider&,
                                                 const OptimizeOptions&,
                                                 const SourceBindings&);

  /// Unoptimized-program fallback for the accessors (never mutated).
  const core::OptimizationResult& res() const;

  std::shared_ptr<const dataflow::DataFlow> flow_;  // == annotated().owner
  /// Shared, immutable: a plan-cache hit aliases the cold optimization's
  /// result rather than copying plan trees, and concurrent RunWith() calls
  /// on programs sharing one result are safe (Executor takes it const).
  std::shared_ptr<const core::OptimizationResult> result_;
  bool from_plan_cache_ = false;
  SourceBindings sources_;
  engine::ExecOptions exec_;

  /// Identity of the Pipeline this program was optimized from (never
  /// dereferenced — only compared against Stream provenance in BindSource);
  /// null for programs built from a raw DataFlow.
  const void* origin_pipeline_ = nullptr;
};

/// Optimizes a pre-built logical flow: annotate via `provider`, enumerate all
/// valid reorderings, cost and rank them. This is the bridge the workload /
/// bench layers use for flows not built through a Pipeline; Pipeline::
/// Optimize() lowers to it.
StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow& flow,
                                        const AnnotationProvider& provider,
                                        const OptimizeOptions& options = {},
                                        const SourceBindings& sources = {});

}  // namespace api
}  // namespace blackbox

#endif  // BLACKBOX_API_OPTIMIZED_PROGRAM_H_
