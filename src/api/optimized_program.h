// OptimizedProgram — layer 3 of the fluent pipeline API (see DESIGN.md §4):
// the runnable result of Pipeline::Optimize(). Owns a snapshot of the logical
// flow, its annotation, and every ranked reordered alternative, and executes
// any of them on the simulated cluster — replacing the manual
// BlackBoxOptimizer + Executor + raw-operator-id dance of the core layer.

#ifndef BLACKBOX_API_OPTIMIZED_PROGRAM_H_
#define BLACKBOX_API_OPTIMIZED_PROGRAM_H_

#include <map>
#include <memory>
#include <vector>

#include "api/annotation_provider.h"
#include "common/status.h"
#include "core/optimizer_api.h"
#include "engine/executor.h"
#include "enumerate/enumerate.h"
#include "optimizer/physical.h"
#include "record/record.h"

namespace blackbox {
namespace api {

class Stream;

/// Knobs for one optimization. The execution options describe the simulated
/// cluster Run() executes on; by default the cost model is derived from them
/// so estimates and measured runtimes describe the same machine.
struct OptimizeOptions {
  optimizer::CostWeights weights;
  enumerate::EnumOptions enum_options;
  engine::ExecOptions exec;

  /// Copy exec.dop / exec.mem_budget_bytes into the cost weights. Disable to
  /// cost for a different cluster than the one Run() simulates. When set,
  /// OptimizeFlow() rejects caller-supplied weights that contradict exec.
  bool cost_model_follows_exec = true;

  /// Worker threads for costing the enumerated alternatives (streamed
  /// through a bounded queue, deterministically ranked — see
  /// core::BlackBoxOptimizer::Options::num_threads). 0 (the default)
  /// inherits exec.num_threads, so one knob drives both phases; set
  /// explicitly to use different costing and execution parallelism.
  int num_threads = 0;
};

/// An optimized, runnable program: the annotated flow plus all ranked
/// alternatives. Self-contained — it keeps the flow snapshot alive, so it may
/// outlive the Pipeline (or DataFlow) it was optimized from.
class OptimizedProgram {
 public:
  OptimizedProgram() = default;

  const dataflow::DataFlow& flow() const { return *flow_; }
  const dataflow::AnnotatedFlow& annotated() const {
    return result_.annotated;
  }

  /// All costed alternatives, ascending estimated cost.
  const std::vector<core::PlannedAlternative>& ranked() const {
    return result_.ranked;
  }
  size_t num_alternatives() const { return result_.num_alternatives; }
  /// True if enumeration hit EnumOptions::max_plans: ranked() covers only a
  /// partial closure and the true optimum may be missing. OptimizeFlow()
  /// also prints a warning to stderr when this happens.
  bool truncated() const { return result_.truncated; }
  double enumeration_seconds() const { return result_.enumeration_seconds; }
  double costing_seconds() const { return result_.costing_seconds; }
  const core::PlannedAlternative& best() const { return result_.best(); }

  /// Position of the originally authored operator order in ranked()
  /// (0-based), or -1 if it was pruned.
  int ImplementedIndex() const;

  /// Binds the data of one source, addressed by its Stream handle. Only
  /// valid on programs produced by Pipeline::Optimize(), and only with
  /// handles of that pipeline (handles from another pipeline could alias a
  /// source id here); programs from OptimizeFlow() bind via BindSources().
  Status BindSource(const Stream& source, const DataSet* data);

  /// Bulk binding for workloads that keep generated data per source operator
  /// id (the legacy bridge). The map must outlive this program.
  Status BindSources(const std::map<int, DataSet>& data);

  /// Executes the alternative at `index` in ranked order (0 = cheapest).
  /// All sources must be bound.
  StatusOr<DataSet> Run(size_t index = 0,
                        engine::ExecStats* stats = nullptr) const;
  StatusOr<DataSet> RunBest(engine::ExecStats* stats = nullptr) const {
    return Run(0, stats);
  }

  /// Like Run(), but with caller-supplied execution options instead of the
  /// stored ones. Const and reentrant: concurrent RunWith calls on one
  /// program are safe (each builds its own Executor), which is how the
  /// serving layer runs many admitted queries of the same program at once —
  /// each with its own spill tag, ledger parent, and shared worker pool.
  StatusOr<DataSet> RunWith(size_t index, const engine::ExecOptions& exec,
                            engine::ExecStats* stats = nullptr) const;

  const engine::ExecOptions& exec_options() const { return exec_; }

  /// Mutable run options: lets a program optimized once be executed under
  /// different cluster conditions — most usefully a memory-budget sweep
  /// (exec_options().mem_budget_bytes) across Run() calls, the knob the
  /// spill-equivalence harness and the bench budget sweeps turn. Note the
  /// ranked plans keep the costs they were optimized with; changing the
  /// budget here changes measured behavior only.
  engine::ExecOptions& mutable_exec_options() { return exec_; }

 private:
  friend class Pipeline;
  friend StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow&,
                                                 const AnnotationProvider&,
                                                 const OptimizeOptions&,
                                                 const SourceBindings&);

  std::shared_ptr<const dataflow::DataFlow> flow_;  // == annotated().owner
  core::OptimizationResult result_;
  SourceBindings sources_;
  engine::ExecOptions exec_;

  /// Identity of the Pipeline this program was optimized from (never
  /// dereferenced — only compared against Stream provenance in BindSource);
  /// null for programs built from a raw DataFlow.
  const void* origin_pipeline_ = nullptr;
};

/// Optimizes a pre-built logical flow: annotate via `provider`, enumerate all
/// valid reorderings, cost and rank them. This is the bridge the workload /
/// bench layers use for flows not built through a Pipeline; Pipeline::
/// Optimize() lowers to it.
StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow& flow,
                                        const AnnotationProvider& provider,
                                        const OptimizeOptions& options = {},
                                        const SourceBindings& sources = {});

}  // namespace api
}  // namespace blackbox

#endif  // BLACKBOX_API_OPTIMIZED_PROGRAM_H_
