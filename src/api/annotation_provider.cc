#include "api/annotation_provider.h"

#include <memory>
#include <utility>

namespace blackbox {
namespace api {

StatusOr<dataflow::AnnotatedFlow> ScaProvider::Annotate(
    const dataflow::DataFlow& flow, const SourceBindings& sources) const {
  (void)sources;
  return dataflow::Annotate(std::make_shared<const dataflow::DataFlow>(flow),
                            dataflow::AnnotationMode::kSca);
}

StatusOr<dataflow::AnnotatedFlow> ManualProvider::Annotate(
    const dataflow::DataFlow& flow, const SourceBindings& sources) const {
  (void)sources;
  return dataflow::Annotate(std::make_shared<const dataflow::DataFlow>(flow),
                            dataflow::AnnotationMode::kManual);
}

StatusOr<dataflow::AnnotatedFlow> ProfilerProvider::Annotate(
    const dataflow::DataFlow& flow, const SourceBindings& sources) const {
  for (int id = 0; id < flow.num_ops(); ++id) {
    if (flow.op(id).kind == dataflow::OpKind::kSource &&
        sources.find(id) == sources.end()) {
      return Status::InvalidArgument(
          "ProfilerProvider: source \"" + flow.op(id).name +
          "\" has no bound data (bind all sources before Optimize())");
    }
  }

  auto snapshot = std::make_shared<dataflow::DataFlow>(flow);
  if (options_.reset_hints) {
    for (int id = 0; id < snapshot->num_ops(); ++id) {
      snapshot->op(id).hints = dataflow::Hints();
    }
  }
  StatusOr<optimizer::FlowProfile> profile =
      optimizer::ProfileFlow(*snapshot, sources, options_.profile);
  if (!profile.ok()) return profile.status();
  optimizer::ApplyProfile(*profile, snapshot.get());

  return dataflow::Annotate(
      std::shared_ptr<const dataflow::DataFlow>(std::move(snapshot)),
      options_.base_mode);
}

}  // namespace api
}  // namespace blackbox
