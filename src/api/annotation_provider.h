// Pluggable annotation sources — layer 2 of the fluent pipeline API (see
// DESIGN.md §4). The paper obtains UDF read/write sets either from static
// code analysis (§5) or from hand-written annotations (Table 1), and names
// runtime profiling as a third source of optimizer hints (§7.1, §9). Each of
// these is a provider here: the optimizer asks the provider for an
// AnnotatedFlow and never hard-codes the knowledge source, so new providers
// (a language compiler, a feedback loop over past executions) drop in
// without touching the optimizer.

#ifndef BLACKBOX_API_ANNOTATION_PROVIDER_H_
#define BLACKBOX_API_ANNOTATION_PROVIDER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "dataflow/annotate.h"
#include "dataflow/flow.h"
#include "optimizer/profiler.h"
#include "record/record.h"

namespace blackbox {
namespace api {

/// Source operator id -> bound data. Assembled by Pipeline / OptimizedProgram
/// from Stream handles; fluent user code never constructs the ids by hand.
using SourceBindings = std::map<int, const DataSet*>;

/// Turns a logical data flow into an AnnotatedFlow — the interface the
/// black-box optimizer consumes. Implementations differ only in where the
/// per-UDF knowledge comes from.
class AnnotationProvider {
 public:
  virtual ~AnnotationProvider() = default;

  virtual std::string name() const = 0;

  /// True when Annotate() is a pure function of the flow — same flow, same
  /// annotation, regardless of bound data or timing. Deterministic providers
  /// are eligible for the plan cache (optimizer/plan_cache.h); providers
  /// that measure bound data (the profiler) must return false or stale
  /// data-dependent hints would be served to unrelated datasets.
  virtual bool deterministic() const { return true; }

  /// Derives the UDF annotations of `flow`. The result owns a private
  /// snapshot of the flow (AnnotatedFlow::owner), so providers that refine
  /// the flow first — e.g. writing profiled hints — do so without mutating
  /// the caller's flow. `sources` carries pre-optimization data bindings;
  /// providers that only inspect UDF code ignore it.
  virtual StatusOr<dataflow::AnnotatedFlow> Annotate(
      const dataflow::DataFlow& flow, const SourceBindings& sources) const = 0;
};

/// Opens the black boxes by statically analyzing each UDF's TAC code (§5).
class ScaProvider : public AnnotationProvider {
 public:
  std::string name() const override { return "sca"; }
  StatusOr<dataflow::AnnotatedFlow> Annotate(
      const dataflow::DataFlow& flow,
      const SourceBindings& sources) const override;
};

/// Uses the hand-written Operator::manual_summary annotations (the "Manual
/// Annotation" column of Table 1). Errors if any operator lacks one.
class ManualProvider : public AnnotationProvider {
 public:
  std::string name() const override { return "manual"; }
  StatusOr<dataflow::AnnotatedFlow> Annotate(
      const dataflow::DataFlow& flow,
      const SourceBindings& sources) const override;
};

/// Profiler-refined hints (§7.1 lists runtime profiling as a hint source;
/// §9 names it as future work): executes the original flow over a sample of
/// every bound source, writes the measured selectivity / CPU cost / distinct
/// keys into the operators' hints, then annotates with `base_mode`. Requires
/// data to be bound for every source before Optimize().
class ProfilerProvider : public AnnotationProvider {
 public:
  struct Options {
    optimizer::ProfileOptions profile;
    /// How the read/write sets themselves are obtained; profiling only
    /// refines the cost hints.
    dataflow::AnnotationMode base_mode = dataflow::AnnotationMode::kSca;
    /// Discard all hand-written hints first, so the optimizer sees measured
    /// values only. Operators the sampled run never reached then fall back
    /// to default hints; with reset_hints = false their hand-written hints
    /// survive instead.
    bool reset_hints = false;
  };

  ProfilerProvider() = default;
  explicit ProfilerProvider(Options options) : options_(options) {}

  std::string name() const override { return "profiler"; }
  /// Profiled hints are measured from the bound sample data — two pipelines
  /// with identical code but different data annotate differently, so the
  /// plan cache must not serve one the other's plans.
  bool deterministic() const override { return false; }
  StatusOr<dataflow::AnnotatedFlow> Annotate(
      const dataflow::DataFlow& flow,
      const SourceBindings& sources) const override;

 private:
  Options options_;
};

}  // namespace api
}  // namespace blackbox

#endif  // BLACKBOX_API_ANNOTATION_PROVIDER_H_
