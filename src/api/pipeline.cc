#include "api/pipeline.h"

#include <utility>

#include "sca/analyzer.h"

namespace blackbox {
namespace api {

namespace {

/// Output arity implied by a UDF summary, given the input arities — the same
/// layout rules ResolveOperator applies during annotation (annotate.cc), so
/// downstream key validation agrees with the eventual global schema.
int OutArity(const sca::LocalUdfSummary& summary,
             const std::vector<int>& in_arities) {
  int base = 0;
  switch (summary.out_kind) {
    case sca::OutputKind::kCopyOfInput: {
      size_t input = summary.copy_input < 0 ? 0 : summary.copy_input;
      base = in_arities[input < in_arities.size() ? input : 0];
      break;
    }
    case sca::OutputKind::kConcat:
      base = in_arities.size() < 2 ? in_arities[0]
                                   : in_arities[0] + in_arities[1];
      break;
    case sca::OutputKind::kProjection:
      base = 0;
      break;
  }
  return std::max(base, summary.max_out_pos + 1);
}

Status CheckKeys(const std::string& name, const char* side,
                 const std::vector<int>& key_fields, int arity) {
  for (int f : key_fields) {
    if (f < 0 || f >= arity) {
      return Status::InvalidArgument(
          name + ": " + side + " key field " + std::to_string(f) +
          " out of range for arity-" + std::to_string(arity) + " stream");
    }
  }
  return Status::OK();
}

}  // namespace

// --- Stream ---------------------------------------------------------------

Stream Stream::Map(std::string name, Udf udf, OpOptions options) const {
  if (!ok()) return Stream();
  return pipeline_->AddUnary(dataflow::OpKind::kMap, std::move(name), *this,
                             {}, std::move(udf), std::move(options));
}

Stream Stream::ReduceBy(std::string name, std::vector<int> key_fields, Udf udf,
                        OpOptions options) const {
  if (!ok()) return Stream();
  return pipeline_->AddUnary(dataflow::OpKind::kReduce, std::move(name), *this,
                             std::move(key_fields), std::move(udf),
                             std::move(options));
}

Stream Stream::MatchWith(std::string name, const Stream& right,
                         std::vector<int> left_key, std::vector<int> right_key,
                         Udf udf, OpOptions options) const {
  if (!ok()) return Stream();
  return pipeline_->AddBinary(dataflow::OpKind::kMatch, std::move(name), *this,
                              right, std::move(left_key), std::move(right_key),
                              std::move(udf), std::move(options));
}

Stream Stream::CrossWith(std::string name, const Stream& right, Udf udf,
                         OpOptions options) const {
  if (!ok()) return Stream();
  return pipeline_->AddBinary(dataflow::OpKind::kCross, std::move(name), *this,
                              right, {}, {}, std::move(udf),
                              std::move(options));
}

Stream Stream::CoGroupWith(std::string name, const Stream& right,
                           std::vector<int> left_key,
                           std::vector<int> right_key, Udf udf,
                           OpOptions options) const {
  if (!ok()) return Stream();
  return pipeline_->AddBinary(dataflow::OpKind::kCoGroup, std::move(name),
                              *this, right, std::move(left_key),
                              std::move(right_key), std::move(udf),
                              std::move(options));
}

void Stream::Sink(std::string name) const {
  if (!ok()) return;
  pipeline_->AddSink(std::move(name), *this);
}

// --- Pipeline -------------------------------------------------------------

Stream Pipeline::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
  return Stream();
}

Status Pipeline::CheckInput(const Stream& s) const {
  if (!s.ok() || s.pipeline_ != this) {
    return Status::InvalidArgument("stream handle belongs to another (or no) "
                                   "pipeline");
  }
  if (consumed_[s.id_]) {
    return Status::InvalidArgument(
        "stream of operator \"" + flow_.op(s.id_).name +
        "\" is already consumed (flows are trees: each stream feeds exactly "
        "one operator)");
  }
  return Status::OK();
}

Stream Pipeline::Source(std::string name, int arity, SourceOptions options) {
  return AddSource(std::move(name), arity, std::move(options));
}

Stream Pipeline::AddSource(std::string name, int arity,
                           SourceOptions options) {
  if (has_sink_) return Fail(Status::InvalidArgument("pipeline is sealed"));
  if (arity <= 0) {
    return Fail(Status::InvalidArgument("source \"" + name +
                                        "\": arity must be positive"));
  }
  for (int f : options.unique_fields) {
    if (f < 0 || f >= arity) {
      return Fail(Status::InvalidArgument(
          "source \"" + name + "\": unique field " + std::to_string(f) +
          " out of range for arity " + std::to_string(arity)));
    }
  }
  int id = flow_.AddSource(std::move(name), arity, options.rows,
                           options.avg_bytes, std::move(options.unique_fields));
  consumed_.resize(id + 1, false);
  return Stream(this, id, arity);
}

Stream Pipeline::AddUnary(dataflow::OpKind kind, std::string name,
                          const Stream& in, std::vector<int> key_fields,
                          Udf udf, OpOptions options) {
  if (has_sink_) return Fail(Status::InvalidArgument("pipeline is sealed"));
  Status st = CheckInput(in);
  if (!st.ok()) return Fail(std::move(st));
  if (!udf) {
    return Fail(Status::InvalidArgument(name + ": null UDF"));
  }
  st = CheckKeys(name, "grouping", key_fields, in.arity_);
  if (!st.ok()) return Fail(std::move(st));

  sca::LocalUdfSummary summary;
  if (options.summary.has_value()) {
    summary = *options.summary;
  } else {
    StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*udf);
    if (!s.ok()) return Fail(s.status());
    summary = std::move(s).value();
  }
  if (summary.num_inputs != 1) {
    return Fail(Status::InvalidArgument(name +
                                        ": unary operator with a UDF of " +
                                        std::to_string(summary.num_inputs) +
                                        " inputs"));
  }
  if (summary.out_kind == sca::OutputKind::kConcat) {
    return Fail(Status::InvalidArgument(
        name + ": concat output summary on a unary operator"));
  }
  if (summary.out_kind == sca::OutputKind::kCopyOfInput &&
      summary.copy_input != 0) {
    return Fail(Status::InvalidArgument(
        name + ": copy_input " + std::to_string(summary.copy_input) +
        " out of range for a unary operator"));
  }
  int arity = OutArity(summary, {in.arity_});

  int id;
  if (kind == dataflow::OpKind::kMap) {
    id = flow_.AddMap(std::move(name), in.id_, std::move(udf), options.hints);
  } else {
    id = flow_.AddReduce(std::move(name), in.id_, std::move(key_fields),
                         std::move(udf), options.hints);
  }
  flow_.op(id).manual_summary = std::move(options.summary);
  flow_.op(id).kat_behavior = options.kat_behavior;
  consumed_.resize(id + 1, false);
  consumed_[in.id_] = true;
  return Stream(this, id, arity);
}

Stream Pipeline::AddBinary(dataflow::OpKind kind, std::string name,
                           const Stream& left, const Stream& right,
                           std::vector<int> left_key,
                           std::vector<int> right_key, Udf udf,
                           OpOptions options) {
  if (has_sink_) return Fail(Status::InvalidArgument("pipeline is sealed"));
  Status st = CheckInput(left);
  if (!st.ok()) return Fail(std::move(st));
  if (!right.ok() || right.pipeline_ != this) {
    return Fail(Status::InvalidArgument(
        name + ": right stream belongs to another (or no) pipeline"));
  }
  if (right.id_ == left.id_) {
    return Fail(Status::InvalidArgument(
        name + ": joining a stream with itself (flows are trees)"));
  }
  st = CheckInput(right);
  if (!st.ok()) return Fail(std::move(st));
  if (!udf) {
    return Fail(Status::InvalidArgument(name + ": null UDF"));
  }
  st = CheckKeys(name, "left", left_key, left.arity_);
  if (!st.ok()) return Fail(std::move(st));
  st = CheckKeys(name, "right", right_key, right.arity_);
  if (!st.ok()) return Fail(std::move(st));
  if (left_key.size() != right_key.size()) {
    return Fail(Status::InvalidArgument(
        name + ": left and right key lists differ in length"));
  }

  sca::LocalUdfSummary summary;
  if (options.summary.has_value()) {
    summary = *options.summary;
  } else {
    StatusOr<sca::LocalUdfSummary> s = sca::AnalyzeUdf(*udf);
    if (!s.ok()) return Fail(s.status());
    summary = std::move(s).value();
  }
  if (summary.num_inputs != 2) {
    return Fail(Status::InvalidArgument(name +
                                        ": binary operator with a UDF of " +
                                        std::to_string(summary.num_inputs) +
                                        " inputs"));
  }
  if (summary.out_kind == sca::OutputKind::kCopyOfInput &&
      (summary.copy_input < 0 || summary.copy_input > 1)) {
    return Fail(Status::InvalidArgument(
        name + ": copy_input " + std::to_string(summary.copy_input) +
        " out of range for a binary operator"));
  }
  int arity = OutArity(summary, {left.arity_, right.arity_});

  int id;
  switch (kind) {
    case dataflow::OpKind::kMatch:
      id = flow_.AddMatch(std::move(name), left.id_, right.id_,
                          std::move(left_key), std::move(right_key),
                          std::move(udf), options.hints);
      break;
    case dataflow::OpKind::kCross:
      id = flow_.AddCross(std::move(name), left.id_, right.id_,
                          std::move(udf), options.hints);
      break;
    default:
      id = flow_.AddCoGroup(std::move(name), left.id_, right.id_,
                            std::move(left_key), std::move(right_key),
                            std::move(udf), options.hints);
      break;
  }
  flow_.op(id).manual_summary = std::move(options.summary);
  flow_.op(id).kat_behavior = options.kat_behavior;
  consumed_.resize(id + 1, false);
  consumed_[left.id_] = true;
  consumed_[right.id_] = true;
  return Stream(this, id, arity);
}

void Pipeline::AddSink(std::string name, const Stream& in) {
  if (has_sink_) {
    Fail(Status::InvalidArgument("pipeline already has a sink"));
    return;
  }
  Status st = CheckInput(in);
  if (!st.ok()) {
    Fail(std::move(st));
    return;
  }
  int id = flow_.SetSink(std::move(name), in.id_);
  consumed_.resize(id + 1, false);
  consumed_[in.id_] = true;
  has_sink_ = true;
}

Status Pipeline::BindSource(const Stream& source, const DataSet* data) {
  if (!source.ok() || source.pipeline_ != this) {
    return Status::InvalidArgument("stream handle belongs to another (or no) "
                                   "pipeline");
  }
  if (flow_.op(source.id_).kind != dataflow::OpKind::kSource) {
    return Status::InvalidArgument("stream handle is not a data source");
  }
  if (data == nullptr) return Status::InvalidArgument("null data set");
  bindings_[source.id_] = data;
  return Status::OK();
}

StatusOr<OptimizedProgram> Pipeline::Optimize(
    const AnnotationProvider& provider, const OptimizeOptions& options) const {
  if (!status_.ok()) return status_;
  if (!has_sink_) {
    return Status::InvalidArgument("pipeline has no sink");
  }
  StatusOr<OptimizedProgram> program =
      OptimizeFlow(flow_, provider, options, bindings_);
  if (program.ok()) program->origin_pipeline_ = this;
  return program;
}

StatusOr<OptimizedProgram> Pipeline::Optimize(
    const AnnotationProvider& provider) const {
  return Optimize(provider, OptimizeOptions());
}

StatusOr<OptimizedProgram> Pipeline::Optimize(
    const OptimizeOptions& options) const {
  return Optimize(ScaProvider(), options);
}

StatusOr<OptimizedProgram> Pipeline::Optimize() const {
  return Optimize(ScaProvider(), OptimizeOptions());
}

}  // namespace api
}  // namespace blackbox
