// Fluent pipeline builder — layer 1 of the public API (see DESIGN.md §4).
// Programs are assembled through typed Stream handles that carry their
// record arity, so key indices are validated at the call site instead of at
// DataFlow::Validate() time, and operator ids never surface in user code:
//
//   api::Pipeline p;
//   auto orders    = p.Source("orders", 2, {.rows = 15000});
//   auto lineitems = p.Source("lineitem", 5, {.rows = 60000});
//   auto joined    = lineitems.MatchWith("join", orders, {0}, {0}, join_udf)
//                             .Map("filter", filter_udf)
//                             .ReduceBy("sum", {1}, sum_udf);
//   joined.Sink("out");
//   auto program = p.Optimize(api::ScaProvider());   // -> OptimizedProgram
//   program->BindSource(orders, &orders_data);
//   ...
//   auto result = program->RunBest();
//
// Fluent calls never throw; the first invalid construction poisons the
// returned Stream and records a Status that Optimize() reports. The builder
// lowers to the legacy dataflow::DataFlow, which remains the optimizer's
// internal representation.

#ifndef BLACKBOX_API_PIPELINE_H_
#define BLACKBOX_API_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/annotation_provider.h"
#include "api/optimized_program.h"
#include "common/status.h"
#include "dataflow/flow.h"
#include "record/record.h"
#include "sca/summary.h"
#include "tac/tac.h"

namespace blackbox {
namespace api {

using Udf = std::shared_ptr<const tac::Function>;

struct SourceOptions {
  int64_t rows = 1000;        // cardinality hint
  double avg_bytes = 64;      // avg record bytes hint
  std::vector<int> unique_fields;  // primary key (empty: none)
};

/// Per-operator options attached at build time: optimizer hints (§7.1), an
/// optional manual annotation (the ManualProvider source), and declared
/// key-at-a-time behaviour for the KGP check.
struct OpOptions {
  dataflow::Hints hints;
  std::optional<sca::LocalUdfSummary> summary;
  dataflow::KatBehavior kat_behavior = dataflow::KatBehavior::kUnknown;
};

class Pipeline;

/// A typed handle to one operator's output. Copyable value type; carries the
/// record arity of the stream so downstream key indices are checked at build
/// time. A default-constructed or failed handle is poisoned (ok() == false)
/// and every operation on it is a recorded no-op.
class Stream {
 public:
  Stream() = default;

  bool ok() const { return pipeline_ != nullptr && id_ >= 0; }

  /// Number of fields in this stream's record layout.
  int arity() const { return arity_; }

  /// The underlying operator id — the lowering detail the workload layer
  /// uses to key generated source data; fluent user code never needs it.
  int id() const { return id_; }

  /// Unary record-at-a-time transformation.
  Stream Map(std::string name, Udf udf, OpOptions options = {}) const;

  /// Groups this stream on `key_fields` (validated against arity()) and
  /// calls the key-at-a-time UDF once per group.
  Stream ReduceBy(std::string name, std::vector<int> key_fields, Udf udf,
                  OpOptions options = {}) const;

  /// Equi-join with `right` on left_key = right_key (validated against the
  /// respective arities).
  Stream MatchWith(std::string name, const Stream& right,
                   std::vector<int> left_key, std::vector<int> right_key,
                   Udf udf, OpOptions options = {}) const;

  /// Cartesian product with `right`.
  Stream CrossWith(std::string name, const Stream& right, Udf udf,
                   OpOptions options = {}) const;

  /// Groups both sides on their keys and calls the UDF once per key.
  Stream CoGroupWith(std::string name, const Stream& right,
                     std::vector<int> left_key, std::vector<int> right_key,
                     Udf udf, OpOptions options = {}) const;

  /// Terminates the pipeline. Must be called exactly once.
  void Sink(std::string name) const;

 private:
  friend class Pipeline;
  friend class OptimizedProgram;
  Stream(Pipeline* pipeline, int id, int arity)
      : pipeline_(pipeline), id_(id), arity_(arity) {}

  Pipeline* pipeline_ = nullptr;
  int id_ = -1;
  int arity_ = 0;
};

/// Owns the flow being built. Non-copyable: Stream handles point back into
/// it. Optimize() may be called once the sink is set; the pipeline stays
/// usable afterwards (the program owns its own snapshot).
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Adds a data source with `arity` fields.
  Stream Source(std::string name, int arity, SourceOptions options = {});

  /// Pre-optimization data binding. Needed by providers that execute the
  /// flow (ProfilerProvider) and carried into the OptimizedProgram, so
  /// sources bound here need not be re-bound before Run().
  Status BindSource(const Stream& source, const DataSet* data);

  /// Lowers the pipeline, annotates it via `provider`, enumerates every
  /// valid reordering, costs and ranks them. Reports the first build error
  /// if any fluent call was invalid.
  StatusOr<OptimizedProgram> Optimize(const AnnotationProvider& provider,
                                      const OptimizeOptions& options) const;
  StatusOr<OptimizedProgram> Optimize(const AnnotationProvider& provider) const;

  /// Convenience: annotate via static code analysis (ScaProvider).
  StatusOr<OptimizedProgram> Optimize(const OptimizeOptions& options) const;
  StatusOr<OptimizedProgram> Optimize() const;

  /// First build error, OK if the pipeline is well-formed so far.
  const Status& status() const { return status_; }

  /// The lowered internal representation (read-only: direct mutation would
  /// desync the arity and consumption tracking behind the Stream handles).
  const dataflow::DataFlow& flow() const { return flow_; }

 private:
  friend class Stream;

  Stream AddSource(std::string name, int arity, SourceOptions options);
  Stream AddUnary(dataflow::OpKind kind, std::string name, const Stream& in,
                  std::vector<int> key_fields, Udf udf, OpOptions options);
  Stream AddBinary(dataflow::OpKind kind, std::string name, const Stream& left,
                   const Stream& right, std::vector<int> left_key,
                   std::vector<int> right_key, Udf udf, OpOptions options);
  void AddSink(std::string name, const Stream& in);

  /// Records the first error and returns a poisoned handle.
  Stream Fail(Status status);
  /// Checks that `s` is a live, unconsumed handle of this pipeline.
  Status CheckInput(const Stream& s) const;

  dataflow::DataFlow flow_;
  std::vector<bool> consumed_;  // by operator id
  bool has_sink_ = false;
  Status status_ = Status::OK();
  SourceBindings bindings_;
};

}  // namespace api
}  // namespace blackbox

#endif  // BLACKBOX_API_PIPELINE_H_
