#include "api/optimized_program.h"

#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "api/pipeline.h"
#include "common/defaults.h"
#include "optimizer/plan_cache.h"
#include "reorder/plan.h"

namespace blackbox {
namespace api {

namespace {

/// The plan cache's type-erased payload: the full (immutable) optimization
/// result. Insert and lookup both live in this translation unit, so the
/// static downcast in OptimizeFlow is always valid.
class CachedOptimization : public optimizer::PlanCacheValue {
 public:
  explicit CachedOptimization(
      std::shared_ptr<const core::OptimizationResult> result)
      : result(std::move(result)) {}
  std::shared_ptr<const core::OptimizationResult> result;
};

}  // namespace

const core::OptimizationResult& OptimizedProgram::res() const {
  if (result_) return *result_;
  static const core::OptimizationResult* empty =
      new core::OptimizationResult();
  return *empty;
}

int OptimizedProgram::ImplementedIndex() const {
  if (!flow_) return -1;
  std::string key = reorder::CanonicalString(reorder::PlanFromFlow(*flow_));
  const auto& ranked = res().ranked;
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (reorder::CanonicalString(ranked[i].logical) == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double OptimizedProgram::EstimatedPeakBytes(size_t index, int dop_in) const {
  const auto& ranked = res().ranked;
  if (index >= ranked.size()) return 0;
  const optimizer::PhysicalPlan& plan = ranked[index].physical;
  if (dop_in <= 0) dop_in = exec_.dop;
  double dop = dop_in > 0 ? dop_in : 1;
  double peak = 0;
  std::function<void(const optimizer::PhysicalNode&)> walk =
      [&](const optimizer::PhysicalNode& n) {
        if (n.local != optimizer::LocalStrategy::kNone) {
          // A breaker materializes its inputs; per instance a broadcast side
          // lands in full, a partitioned/forward side is spread across dop.
          for (size_t i = 0; i < n.children.size(); ++i) {
            const optimizer::PhysicalNode& c = *n.children[i];
            double bytes = c.est_rows * c.est_bytes_per_row;
            bool broadcast = i < n.ships.size() &&
                             n.ships[i] == optimizer::ShipStrategy::kBroadcast;
            peak += broadcast ? bytes : bytes / dop;
          }
        }
        for (const auto& c : n.children) walk(*c);
      };
  if (plan.root) walk(*plan.root);
  return peak;
}

Status OptimizedProgram::BindSource(const Stream& source, const DataSet* data) {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  if (!source.ok()) return Status::InvalidArgument("invalid stream handle");
  if (origin_pipeline_ == nullptr) {
    return Status::InvalidArgument(
        "program was optimized from a raw DataFlow; bind data with "
        "BindSources()");
  }
  if (source.pipeline_ != origin_pipeline_) {
    return Status::InvalidArgument(
        "stream handle belongs to a different pipeline than this program");
  }
  if (data == nullptr) return Status::InvalidArgument("null data set");
  int id = source.id();
  if (id < 0 || id >= flow_->num_ops() ||
      flow_->op(id).kind != dataflow::OpKind::kSource) {
    return Status::InvalidArgument("stream handle is not a data source");
  }
  sources_[id] = data;
  return Status::OK();
}

Status OptimizedProgram::BindSources(const std::map<int, DataSet>& data) {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  for (const auto& [id, ds] : data) {
    if (id < 0 || id >= flow_->num_ops() ||
        flow_->op(id).kind != dataflow::OpKind::kSource) {
      return Status::InvalidArgument("id " + std::to_string(id) +
                                     " is not a data source");
    }
    sources_[id] = &ds;
  }
  return Status::OK();
}

StatusOr<DataSet> OptimizedProgram::Run(size_t index,
                                        engine::ExecStats* stats) const {
  return RunWith(index, exec_, stats);
}

StatusOr<DataSet> OptimizedProgram::RunWith(size_t index,
                                            const engine::ExecOptions& exec,
                                            engine::ExecStats* stats) const {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  const core::OptimizationResult& result = res();
  if (index >= result.ranked.size()) {
    return Status::OutOfRange(
        "alternative index " + std::to_string(index) + " out of range (" +
        std::to_string(result.ranked.size()) + " ranked alternatives)");
  }
  for (int id = 0; id < flow_->num_ops(); ++id) {
    if (flow_->op(id).kind == dataflow::OpKind::kSource &&
        sources_.find(id) == sources_.end()) {
      return Status::InvalidArgument("source \"" + flow_->op(id).name +
                                     "\" has no bound data");
    }
  }
  engine::Executor executor(&result.annotated, exec);
  for (const auto& [id, data] : sources_) executor.BindSource(id, data);
  return executor.Execute(result.ranked[index].physical, stats);
}

StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow& flow,
                                        const AnnotationProvider& provider,
                                        const OptimizeOptions& options,
                                        const SourceBindings& sources) {
  if (options.top_k <= 0) {
    return Status::InvalidArgument("OptimizeOptions::top_k must be positive "
                                   "(got " +
                                   std::to_string(options.top_k) + ")");
  }
  if (options.cost_epsilon < 0) {
    return Status::InvalidArgument(
        "OptimizeOptions::cost_epsilon must be non-negative (got " +
        std::to_string(options.cost_epsilon) + ")");
  }

  core::BlackBoxOptimizer::Options copts;
  copts.weights = options.weights;
  copts.enum_options = options.enum_options;
  copts.search = options.search;
  copts.top_k = options.top_k;
  copts.cost_epsilon = options.cost_epsilon;
  copts.num_threads =
      options.num_threads > 0 ? options.num_threads : options.exec.num_threads;
  if (options.cost_model_follows_exec) {
    // Estimates and measured runs must describe the same simulated cluster.
    // A caller-supplied cost-model cluster that contradicts the exec cluster
    // is a configuration bug — surface it instead of silently overwriting.
    // (Best-effort: the shared default doubles as the "untouched" sentinel,
    // so explicitly setting a weight to its default value is indistinguishable
    // from leaving it alone; cost for a deliberately different cluster by
    // clearing cost_model_follows_exec instead.)
    if (options.weights.dop != kDefaultDop &&
        options.weights.dop != options.exec.dop) {
      return Status::InvalidArgument(
          "cost_model_follows_exec is set but weights.dop (" +
          std::to_string(options.weights.dop) + ") contradicts exec.dop (" +
          std::to_string(options.exec.dop) + ")");
    }
    if (options.weights.mem_budget_bytes != kDefaultMemBudgetBytes &&
        options.weights.mem_budget_bytes != options.exec.mem_budget_bytes) {
      return Status::InvalidArgument(
          "cost_model_follows_exec is set but weights.mem_budget_bytes "
          "contradicts exec.mem_budget_bytes");
    }
    copts.weights.dop = options.exec.dop;
    copts.weights.mem_budget_bytes = options.exec.mem_budget_bytes;
  }

  // Plan-cache lookup BEFORE annotation: a hit skips UDF analysis too. The
  // key is built from the resolved weights and search knobs, so any change
  // that could alter a plan or a cost misses. num_threads is execution-only
  // and deliberately absent (plans are thread-count-invariant by
  // construction).
  OptimizedProgram program;
  program.sources_ = sources;
  program.exec_ = options.exec;
  // The ablation switch lives on the weights (one flag per optimizer
  // feature); skipping runs only when neither side disabled it.
  program.exec_.enable_data_skipping =
      options.exec.enable_data_skipping && options.weights.enable_data_skipping;
  program.exec_.enable_chain_specialization =
      options.exec.enable_chain_specialization &&
      options.weights.enable_chain_specialization;
  const bool cacheable = options.use_plan_cache && provider.deterministic();
  std::string cache_key;
  if (cacheable) {
    cache_key = optimizer::PlanCacheKey(
        flow, provider.name(), copts.weights, copts.enum_options,
        static_cast<int>(copts.search), copts.top_k, copts.cost_epsilon);
    if (std::shared_ptr<const optimizer::PlanCacheValue> hit =
            optimizer::PlanCache::Global().Lookup(cache_key)) {
      program.result_ =
          static_cast<const CachedOptimization&>(*hit).result;
      program.flow_ = program.result_->annotated.owner;
      program.from_plan_cache_ = true;
      return program;
    }
  } else if (options.use_plan_cache) {
    optimizer::PlanCache::Global().RecordBypass();
  }

  StatusOr<dataflow::AnnotatedFlow> af = provider.Annotate(flow, sources);
  if (!af.ok()) return af.status();
  if (!af->owner) {
    return Status::Internal("provider \"" + provider.name() +
                            "\" returned an annotation without an owned "
                            "flow snapshot");
  }
  copts.mode = af->mode;

  StatusOr<core::OptimizationResult> result =
      core::BlackBoxOptimizer(copts).OptimizeAnnotated(std::move(af).value());
  if (!result.ok()) return result.status();
  if (result->truncated) {
    std::fprintf(stderr,
                 "warning: plan enumeration hit max_plans=%zu; ranking "
                 "covers a partial plan space of %zu alternatives\n",
                 options.enum_options.max_plans, result->ranked.size());
  }

  auto shared = std::make_shared<const core::OptimizationResult>(
      std::move(result).value());
  if (cacheable) {
    optimizer::PlanCache::Global().Insert(
        cache_key, std::make_shared<CachedOptimization>(shared));
  }
  program.result_ = std::move(shared);
  program.flow_ = program.result_->annotated.owner;
  return program;
}

}  // namespace api
}  // namespace blackbox
