#include "api/optimized_program.h"

#include <cstdio>
#include <string>
#include <utility>

#include "api/pipeline.h"
#include "common/defaults.h"
#include "reorder/plan.h"

namespace blackbox {
namespace api {

int OptimizedProgram::ImplementedIndex() const {
  if (!flow_) return -1;
  std::string key = reorder::CanonicalString(reorder::PlanFromFlow(*flow_));
  for (size_t i = 0; i < result_.ranked.size(); ++i) {
    if (reorder::CanonicalString(result_.ranked[i].logical) == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status OptimizedProgram::BindSource(const Stream& source, const DataSet* data) {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  if (!source.ok()) return Status::InvalidArgument("invalid stream handle");
  if (origin_pipeline_ == nullptr) {
    return Status::InvalidArgument(
        "program was optimized from a raw DataFlow; bind data with "
        "BindSources()");
  }
  if (source.pipeline_ != origin_pipeline_) {
    return Status::InvalidArgument(
        "stream handle belongs to a different pipeline than this program");
  }
  if (data == nullptr) return Status::InvalidArgument("null data set");
  int id = source.id();
  if (id < 0 || id >= flow_->num_ops() ||
      flow_->op(id).kind != dataflow::OpKind::kSource) {
    return Status::InvalidArgument("stream handle is not a data source");
  }
  sources_[id] = data;
  return Status::OK();
}

Status OptimizedProgram::BindSources(const std::map<int, DataSet>& data) {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  for (const auto& [id, ds] : data) {
    if (id < 0 || id >= flow_->num_ops() ||
        flow_->op(id).kind != dataflow::OpKind::kSource) {
      return Status::InvalidArgument("id " + std::to_string(id) +
                                     " is not a data source");
    }
    sources_[id] = &ds;
  }
  return Status::OK();
}

StatusOr<DataSet> OptimizedProgram::Run(size_t index,
                                        engine::ExecStats* stats) const {
  return RunWith(index, exec_, stats);
}

StatusOr<DataSet> OptimizedProgram::RunWith(size_t index,
                                            const engine::ExecOptions& exec,
                                            engine::ExecStats* stats) const {
  if (!flow_) return Status::InvalidArgument("program is not optimized");
  if (index >= result_.ranked.size()) {
    return Status::OutOfRange(
        "alternative index " + std::to_string(index) + " out of range (" +
        std::to_string(result_.ranked.size()) + " ranked alternatives)");
  }
  for (int id = 0; id < flow_->num_ops(); ++id) {
    if (flow_->op(id).kind == dataflow::OpKind::kSource &&
        sources_.find(id) == sources_.end()) {
      return Status::InvalidArgument("source \"" + flow_->op(id).name +
                                     "\" has no bound data");
    }
  }
  engine::Executor executor(&result_.annotated, exec);
  for (const auto& [id, data] : sources_) executor.BindSource(id, data);
  return executor.Execute(result_.ranked[index].physical, stats);
}

StatusOr<OptimizedProgram> OptimizeFlow(const dataflow::DataFlow& flow,
                                        const AnnotationProvider& provider,
                                        const OptimizeOptions& options,
                                        const SourceBindings& sources) {
  StatusOr<dataflow::AnnotatedFlow> af = provider.Annotate(flow, sources);
  if (!af.ok()) return af.status();
  if (!af->owner) {
    return Status::Internal("provider \"" + provider.name() +
                            "\" returned an annotation without an owned "
                            "flow snapshot");
  }

  core::BlackBoxOptimizer::Options copts;
  copts.mode = af->mode;
  copts.weights = options.weights;
  copts.enum_options = options.enum_options;
  copts.num_threads =
      options.num_threads > 0 ? options.num_threads : options.exec.num_threads;
  if (options.cost_model_follows_exec) {
    // Estimates and measured runs must describe the same simulated cluster.
    // A caller-supplied cost-model cluster that contradicts the exec cluster
    // is a configuration bug — surface it instead of silently overwriting.
    // (Best-effort: the shared default doubles as the "untouched" sentinel,
    // so explicitly setting a weight to its default value is indistinguishable
    // from leaving it alone; cost for a deliberately different cluster by
    // clearing cost_model_follows_exec instead.)
    if (options.weights.dop != kDefaultDop &&
        options.weights.dop != options.exec.dop) {
      return Status::InvalidArgument(
          "cost_model_follows_exec is set but weights.dop (" +
          std::to_string(options.weights.dop) + ") contradicts exec.dop (" +
          std::to_string(options.exec.dop) + ")");
    }
    if (options.weights.mem_budget_bytes != kDefaultMemBudgetBytes &&
        options.weights.mem_budget_bytes != options.exec.mem_budget_bytes) {
      return Status::InvalidArgument(
          "cost_model_follows_exec is set but weights.mem_budget_bytes "
          "contradicts exec.mem_budget_bytes");
    }
    copts.weights.dop = options.exec.dop;
    copts.weights.mem_budget_bytes = options.exec.mem_budget_bytes;
  }
  StatusOr<core::OptimizationResult> result =
      core::BlackBoxOptimizer(copts).OptimizeAnnotated(std::move(af).value());
  if (!result.ok()) return result.status();
  if (result->truncated) {
    std::fprintf(stderr,
                 "warning: plan enumeration hit max_plans=%zu; ranking "
                 "covers a partial closure of %zu alternatives\n",
                 options.enum_options.max_plans, result->ranked.size());
  }

  OptimizedProgram program;
  program.result_ = std::move(result).value();
  program.flow_ = program.result_.annotated.owner;
  program.sources_ = sources;
  program.exec_ = options.exec;
  return program;
}

}  // namespace api
}  // namespace blackbox
