// Process-wide plan cache (DESIGN.md §3.4): repeated pipelines skip UDF
// analysis, enumeration, and costing entirely. The key is the canonical flow
// shape — every operator's kind, keys, hints, source statistics, and a digest
// of its UDF's TAC code (or manual summary) — combined with the annotation
// provider's name and every knob that influences plan choice (resolved cost
// weights, enumeration budget, search mode / top_k / cost_epsilon). Anything
// semantically identical hits; anything that could change a single plan or
// cost misses. Execution-only knobs (thread count, spill directory, serving
// budget carves) are deliberately NOT part of the key: plans are
// deterministic functions of the key by construction, which the
// parallel-determinism suite pins.
//
// Values are type-erased: the optimizer layer cannot name the api layer's
// OptimizationResult, so callers store any immutable payload derived from
// PlanCacheValue. Entries are shared_ptr-held — a hit never copies a plan
// tree, and eviction never invalidates a program already handed out.
//
// Must-bypass rule: providers whose annotations depend on bound DATA (the
// profiler measures selectivities from samples) cannot use the cache — the
// key covers code and declared statistics, not data. The api layer routes
// those providers around the cache and counts the bypass.

#ifndef BLACKBOX_OPTIMIZER_PLAN_CACHE_H_
#define BLACKBOX_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dataflow/flow.h"
#include "enumerate/enumerate.h"
#include "optimizer/physical.h"

namespace blackbox {
namespace optimizer {

/// Base class for cached payloads (type erasure across layers).
class PlanCacheValue {
 public:
  virtual ~PlanCacheValue() = default;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bypasses = 0;  // lookups skipped (non-deterministic provider)
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Thread-safe bounded LRU cache. One process-wide instance (Global());
/// separate instances exist only for tests.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  static PlanCache& Global();

  /// Returns the cached payload and refreshes its LRU position, or null.
  /// Counts a hit or a miss.
  std::shared_ptr<const PlanCacheValue> Lookup(const std::string& key);

  /// Inserts (or replaces) the payload for `key`, evicting the least
  /// recently used entry beyond capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const PlanCacheValue> value);

  /// Counts a deliberate non-use (e.g. profiler-annotated optimization).
  void RecordBypass();

  PlanCacheStats stats() const;

  /// Drops all entries and resets the counters (test isolation).
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PlanCacheValue> value;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
};

/// Deterministic cache key for optimizing `flow` under the given provider
/// and knobs. `weights` must be the RESOLVED weights the optimizer will
/// actually run with (after any cost_model_follows_exec adjustment).
/// `search_mode`, `top_k`, `cost_epsilon` describe the plan search
/// (core::SearchMode passed as int to keep this layer core-agnostic).
std::string PlanCacheKey(const dataflow::DataFlow& flow,
                         const std::string& provider_name,
                         const CostWeights& weights,
                         const enumerate::EnumOptions& enum_options,
                         int search_mode, int top_k, double cost_epsilon);

}  // namespace optimizer
}  // namespace blackbox

#endif  // BLACKBOX_OPTIMIZER_PLAN_CACHE_H_
