// Runtime profiling of black-box operators — the paper lists "estimating the
// selectivity and execution cost of black box operators" as future work (§9)
// and names runtime profiling as one source of optimizer hints (§7.1). This
// profiler executes the *original* flow once over a sample of the source data
// and derives, per operator:
//
//   * selectivity            — emitted records per UDF call
//   * cpu_cost_per_call      — measured interpreter work per call
//   * distinct_keys          — sample-distinct count scaled to full size
//
// The measured values are written back into the operators' Hints, after
// which the cost-based optimizer runs as usual. Sampling both inputs of a
// join under-estimates the match rate; the scaling below corrects for the
// sampled key-space thinning under the uniform-key assumption.

#ifndef BLACKBOX_OPTIMIZER_PROFILER_H_
#define BLACKBOX_OPTIMIZER_PROFILER_H_

#include <map>

#include "common/status.h"
#include "dataflow/flow.h"
#include "record/record.h"

namespace blackbox {
namespace optimizer {

struct ProfileOptions {
  size_t sample_records = 2000;  // per source
  uint64_t seed = 1;
};

/// Measured hints for one operator.
struct OperatorProfile {
  int64_t calls = 0;
  int64_t emitted = 0;
  double seconds = 0;
  int64_t distinct_keys_scaled = -1;

  double selectivity() const {
    return calls > 0 ? static_cast<double>(emitted) / calls : 1.0;
  }
};

struct FlowProfile {
  std::map<int, OperatorProfile> per_op;
};

/// Runs the original flow on a uniform sample of each source and measures
/// per-operator behaviour. Requires data for every source.
StatusOr<FlowProfile> ProfileFlow(
    const dataflow::DataFlow& flow,
    const std::map<int, const DataSet*>& source_data,
    const ProfileOptions& options = {});

/// Writes measured selectivity / cpu cost / distinct keys into the flow's
/// operator hints (leaves operators the profiler could not observe — e.g.
/// ones whose sampled input was empty — untouched).
void ApplyProfile(const FlowProfile& profile, dataflow::DataFlow* flow);

}  // namespace optimizer
}  // namespace blackbox

#endif  // BLACKBOX_OPTIMIZER_PROFILER_H_
