#include "optimizer/plan_cache.h"

#include <cstdio>

#include "tac/fuse.h"
#include "tac/tac.h"

namespace blackbox {
namespace optimizer {

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const PlanCacheValue> PlanCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PlanCacheValue> value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::RecordBypass() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.bypasses;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = PlanCacheStats{};
}

namespace {

/// Appends a double with full round-trip precision — two weight sets hash
/// equal iff every bit matches.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g,", v);
  *out += buf;
}

void AppendInt(std::string* out, int64_t v) {
  *out += std::to_string(v);
  *out += ',';
}

}  // namespace

std::string PlanCacheKey(const dataflow::DataFlow& flow,
                         const std::string& provider_name,
                         const CostWeights& weights,
                         const enumerate::EnumOptions& enum_options,
                         int search_mode, int top_k, double cost_epsilon) {
  std::string key;
  key.reserve(1024);
  key += "v1|provider=";
  key += provider_name;
  key += '|';

  // --- Flow shape: one segment per operator, in id order. Ids are dense and
  // ordered by construction, so identical builder sequences produce
  // identical segments (and `inputs` references line up).
  for (int id = 0; id < flow.num_ops(); ++id) {
    const dataflow::Operator& op = flow.op(id);
    key += "op";
    AppendInt(&key, id);
    AppendInt(&key, static_cast<int>(op.kind));
    key += op.name;
    key += ';';
    for (const std::vector<int>& ks : op.key_fields) {
      key += 'k';
      for (int f : ks) AppendInt(&key, f);
    }
    AppendDouble(&key, op.hints.selectivity);
    AppendDouble(&key, op.hints.cpu_cost_per_call);
    AppendInt(&key, op.hints.distinct_keys);
    AppendInt(&key, static_cast<int>(op.kat_behavior));
    AppendInt(&key, op.source_arity);
    AppendInt(&key, op.source_rows);
    AppendDouble(&key, op.source_avg_bytes);
    for (int f : op.source_unique_fields) AppendInt(&key, f);
    key += 'i';
    for (int in : op.inputs) AppendInt(&key, in);
    if (op.manual_summary) {
      key += "m{";
      key += op.manual_summary->ToString();
      key += '}';
    }
    if (op.udf) {
      // The TAC disassembly is a faithful digest of the black box itself:
      // any change to the UDF's code changes the key.
      key += "u{";
      key += op.udf->ToString();
      key += '}';
    }
    key += '\n';
  }

  // --- Every knob that can change a plan or a cost.
  key += "|w=";
  AppendDouble(&key, weights.net_per_byte);
  AppendDouble(&key, weights.disk_per_byte);
  AppendDouble(&key, weights.cpu_per_call_unit);
  AppendDouble(&key, weights.cpu_per_record);
  AppendInt(&key, weights.dop);
  AppendDouble(&key, weights.mem_budget_bytes);
  AppendInt(&key, weights.enable_broadcast);
  AppendInt(&key, weights.enable_partition_reuse);
  AppendInt(&key, weights.enable_sort_merge);
  AppendInt(&key, weights.enable_combiner);
  AppendInt(&key, weights.enable_chain_fusion);
  AppendInt(&key, weights.enable_spill);
  AppendInt(&key, weights.enable_chain_specialization);
  // Cached plans execute through fused chain programs, so a change in the
  // fused-program compilation scheme must miss even when the logical plan
  // and every weight are unchanged (DESIGN.md §2.6).
  AppendInt(&key, tac::kFusedProgramFormatVersion);
  key += "|e=";
  AppendInt(&key, static_cast<int64_t>(enum_options.max_plans));
  key += "|s=";
  AppendInt(&key, search_mode);
  AppendInt(&key, top_k);
  AppendDouble(&key, cost_epsilon);
  return key;
}

}  // namespace optimizer
}  // namespace blackbox
