#include "optimizer/profiler.h"

#include <chrono>
#include <map>
#include <set>

#include "common/rng.h"
#include "dataflow/annotate.h"
#include "interp/interp.h"

namespace blackbox {
namespace optimizer {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using interp::CallInputs;
using interp::FieldTranslation;
using interp::Interpreter;

namespace {

std::vector<Value> KeyOf(const Record& r, const std::vector<AttrId>& key) {
  std::vector<Value> k;
  k.reserve(key.size());
  for (AttrId a : key) {
    k.push_back(a < static_cast<int>(r.num_fields()) ? r.field(a) : Value());
  }
  return k;
}

/// Sequential (dop = 1) evaluation of one operator over complete in-memory
/// inputs, with call/emit metering. Mirrors the engine's per-operator
/// semantics without partitioning.
class SampleRunner {
 public:
  SampleRunner(const dataflow::AnnotatedFlow& af, FlowProfile* profile)
      : af_(af), profile_(profile) {}

  StatusOr<std::vector<Record>> Eval(int op_id,
                                     std::vector<std::vector<Record>> inputs) {
    const dataflow::Operator& op = af_.flow->op(op_id);
    const OpProperties& p = af_.of(op_id);
    OperatorProfile& prof = profile_->per_op[op_id];

    FieldTranslation t;
    t.global_width = af_.global.size();
    t.input_maps.resize(p.in_schemas.size());
    for (size_t i = 0; i < p.in_schemas.size(); ++i) {
      t.input_maps[i].assign(p.in_schemas[i].begin(), p.in_schemas[i].end());
      for (size_t pos = t.input_maps[i].size(); pos < p.out_schema.size();
           ++pos) {
        t.input_maps[i].push_back(p.out_schema[pos]);
      }
    }
    t.output_map.assign(p.out_schema.begin(), p.out_schema.end());
    if (inputs.size() == 2) {
      t.concat_positions.resize(2);
      t.concat_positions[0].assign(p.in_schemas[0].begin(),
                                   p.in_schemas[0].end());
      t.concat_positions[1].assign(p.in_schemas[1].begin(),
                                   p.in_schemas[1].end());
    }

    Interpreter interp(op.udf.get());
    std::vector<Record> out;
    auto start = std::chrono::steady_clock::now();
    auto call = [&](const CallInputs& ci) -> Status {
      prof.calls++;
      size_t before = out.size();
      BLACKBOX_RETURN_NOT_OK(interp.Run(ci, t, &out));
      prof.emitted += static_cast<int64_t>(out.size() - before);
      return Status::OK();
    };

    switch (op.kind) {
      case OpKind::kMap: {
        for (const Record& r : inputs[0]) {
          CallInputs ci;
          ci.groups = {{&r}};
          BLACKBOX_RETURN_NOT_OK(call(ci));
        }
        break;
      }
      case OpKind::kReduce: {
        std::map<std::vector<Value>, std::vector<const Record*>> groups;
        for (const Record& r : inputs[0]) groups[KeyOf(r, p.keys[0])].push_back(&r);
        prof.distinct_keys_scaled = static_cast<int64_t>(groups.size());
        for (const auto& [k, members] : groups) {
          CallInputs ci;
          ci.groups = {members};
          BLACKBOX_RETURN_NOT_OK(call(ci));
        }
        break;
      }
      case OpKind::kMatch: {
        std::map<std::vector<Value>, std::vector<const Record*>> table;
        std::set<std::vector<Value>> keys;
        for (const Record& r : inputs[0]) {
          table[KeyOf(r, p.keys[0])].push_back(&r);
          keys.insert(KeyOf(r, p.keys[0]));
        }
        for (const Record& r : inputs[1]) keys.insert(KeyOf(r, p.keys[1]));
        prof.distinct_keys_scaled = static_cast<int64_t>(keys.size());
        for (const Record& r : inputs[1]) {
          auto it = table.find(KeyOf(r, p.keys[1]));
          if (it == table.end()) continue;
          for (const Record* l : it->second) {
            CallInputs ci;
            ci.groups = {{l}, {&r}};
            BLACKBOX_RETURN_NOT_OK(call(ci));
          }
        }
        break;
      }
      case OpKind::kCross: {
        for (const Record& l : inputs[0]) {
          for (const Record& r : inputs[1]) {
            CallInputs ci;
            ci.groups = {{&l}, {&r}};
            BLACKBOX_RETURN_NOT_OK(call(ci));
          }
        }
        break;
      }
      case OpKind::kCoGroup: {
        std::map<std::vector<Value>, CallInputs> groups;
        for (const Record& r : inputs[0]) {
          auto& ci = groups[KeyOf(r, p.keys[0])];
          if (ci.groups.empty()) ci.groups.resize(2);
          ci.groups[0].push_back(&r);
        }
        for (const Record& r : inputs[1]) {
          auto& ci = groups[KeyOf(r, p.keys[1])];
          if (ci.groups.empty()) ci.groups.resize(2);
          ci.groups[1].push_back(&r);
        }
        prof.distinct_keys_scaled = static_cast<int64_t>(groups.size());
        for (const auto& [k, ci] : groups) {
          BLACKBOX_RETURN_NOT_OK(call(ci));
        }
        break;
      }
      default:
        return Status::Internal("profiler cannot evaluate this operator");
    }
    auto end = std::chrono::steady_clock::now();
    prof.seconds = std::chrono::duration<double>(end - start).count();
    return out;
  }

 private:
  const dataflow::AnnotatedFlow& af_;
  FlowProfile* profile_;
};

}  // namespace

StatusOr<FlowProfile> ProfileFlow(
    const dataflow::DataFlow& flow,
    const std::map<int, const DataSet*>& source_data,
    const ProfileOptions& options) {
  StatusOr<dataflow::AnnotatedFlow> af =
      dataflow::Annotate(flow, dataflow::AnnotationMode::kSca);
  if (!af.ok()) return af.status();

  FlowProfile profile;
  SampleRunner runner(*af, &profile);
  Rng rng(options.seed);

  // Evaluate operators in topological (id) order, materializing sampled
  // intermediate results widened to the global record layout.
  std::map<int, std::vector<Record>> results;
  std::map<int, double> sample_fraction;  // per op: sample rows / true rows
  const int width = af->global.size();

  for (int id = 0; id < flow.num_ops(); ++id) {
    const dataflow::Operator& op = flow.op(id);
    if (op.kind == OpKind::kSource) {
      auto it = source_data.find(id);
      if (it == source_data.end()) {
        return Status::InvalidArgument("no data bound for source " + op.name);
      }
      const DataSet& full = *it->second;
      double keep = full.size() > options.sample_records
                        ? static_cast<double>(options.sample_records) /
                              full.size()
                        : 1.0;
      std::vector<Record> sample;
      const OpProperties& p = af->of(id);
      for (size_t ri = 0; ri < full.size(); ++ri) {
        const Record& src = full.record(ri);
        if (!rng.Chance(keep)) continue;
        Record wide;
        if (width > 0) wide.SetField(width - 1, Value::Null());
        for (size_t f = 0; f < src.num_fields() && f < p.out_schema.size();
             ++f) {
          wide.SetField(p.out_schema[f], src.field(f));
        }
        sample.push_back(std::move(wide));
      }
      sample_fraction[id] = keep;
      results[id] = std::move(sample);
      continue;
    }
    if (op.kind == OpKind::kSink) {
      sample_fraction[id] = sample_fraction[op.inputs[0]];
      results[id] = results[op.inputs[0]];
      continue;
    }
    std::vector<std::vector<Record>> inputs;
    double frac = 1.0;
    for (int in : op.inputs) {
      inputs.push_back(results[in]);
      frac = std::min(frac, sample_fraction[in]);
    }
    StatusOr<std::vector<Record>> out = runner.Eval(id, std::move(inputs));
    if (!out.ok()) return out.status();
    results[id] = std::move(out).value();
    sample_fraction[id] = frac;
    // Scale the sample-distinct key count to the full data size.
    OperatorProfile& prof = profile.per_op[id];
    if (prof.distinct_keys_scaled > 0 && frac > 0 && frac < 1.0) {
      prof.distinct_keys_scaled = static_cast<int64_t>(
          static_cast<double>(prof.distinct_keys_scaled) / frac);
    }
  }
  return profile;
}

void ApplyProfile(const FlowProfile& profile, dataflow::DataFlow* flow) {
  // Normalize cpu cost so the cheapest profiled operator has cost 1.
  double min_per_call = -1;
  for (const auto& [id, prof] : profile.per_op) {
    if (prof.calls == 0) continue;
    double per_call = prof.seconds / prof.calls;
    if (min_per_call < 0 || per_call < min_per_call) min_per_call = per_call;
  }
  if (min_per_call <= 0) min_per_call = 1e-9;

  for (const auto& [id, prof] : profile.per_op) {
    if (prof.calls == 0) continue;
    dataflow::Operator& op = flow->op(id);
    op.hints.selectivity = prof.selectivity();
    op.hints.cpu_cost_per_call = (prof.seconds / prof.calls) / min_per_call;
    if (prof.distinct_keys_scaled > 0) {
      op.hints.distinct_keys = prof.distinct_keys_scaled;
    }
  }
}

}  // namespace optimizer
}  // namespace blackbox
