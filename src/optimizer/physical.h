// Cost-based physical optimization (§7.1): for one logical alternative,
// choose data shipping strategies (forward / hash-partition / broadcast) and
// local execution strategies (sort-based grouping, hash join with build-side
// choice, sort-merge join, combiner insertion), exploiting interesting
// properties Volcano-style — both hash partitionings AND per-partition sort
// orders that survive key-preserving operators — and estimate a cost that
// combines network IO, disk IO, and the CPU cost of UDF calls.

#ifndef BLACKBOX_OPTIMIZER_PHYSICAL_H_
#define BLACKBOX_OPTIMIZER_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/defaults.h"
#include "common/status.h"
#include "reorder/plan.h"

namespace blackbox {
namespace optimizer {

enum class ShipStrategy {
  kForward,        // keep existing partitions (local forward)
  kPartitionHash,  // hash-repartition on the operator's key
  kBroadcast,      // replicate to every parallel instance
};

enum class LocalStrategy {
  kNone,               // per-record streaming (Map, sink)
  kSortGroup,          // sort-based grouping (Reduce)
  kHashJoinBuildLeft,  // hash join, build on left input
  kHashJoinBuildRight,
  kNestedLoop,     // Cross: nested loops against the broadcast side
  kSortCoGroup,    // CoGroup: sort both sides, merge groups
  kSortMergeJoin,  // Match: sort both sides by the join key (free for inputs
                   // that already carry a serving sort order), merge runs
  kPreAggregate,   // Reduce: combine partition-local groups *before* the
                   // shuffle, then sort-group the shipped partials (§7.1's
                   // combiner; legality from OpProperties::combinable)
};

const char* ShipStrategyName(ShipStrategy s);
const char* LocalStrategyName(LocalStrategy s);

/// Cost model weights; defaults calibrated so that shipping a byte across the
/// network dominates local CPU, mirroring a 1 GbE cluster (§7.1).
struct CostWeights {
  double net_per_byte = 1.0;
  double disk_per_byte = 0.6;
  double cpu_per_call_unit = 40.0;  // per UDF call × the op's cpu hint
  double cpu_per_record = 0.4;
  // Cluster shape: shared defaults with engine::ExecOptions (see
  // common/defaults.h) so estimates and measured runs describe the same
  // simulated cluster out of the box.
  int dop = kDefaultDop;                          // degree of parallelism
  double mem_budget_bytes = kDefaultMemBudgetBytes;  // per-instance memory

  // Ablation switches (see bench/ablation): disable individual optimizer
  // features to measure their contribution to plan quality.
  bool enable_broadcast = true;          // broadcast-join strategies
  bool enable_partition_reuse = true;    // partitioning-property reuse
  bool enable_sort_merge = true;   // sort-order tracking: merge joins and
                                   // sort reuse by Reduce / CoGroup
  bool enable_combiner = true;     // combiner insertion below the shuffle
  bool enable_chain_fusion = true;  // pipeline-aware costing: a forward edge
                                    // into a record-at-a-time stage is fused
                                    // (DESIGN.md §2.2), so the stage pays no
                                    // per-record engine overhead
                                    // (cpu_per_record) for its input
  bool enable_spill = true;  // charge disk cost for breakers whose estimated
                             // per-instance input exceeds mem_budget_bytes.
                             // Off: the optimizer prices spills at zero while
                             // the engine still performs (and meters) them —
                             // the ablation isolating how much plan quality
                             // the spill term buys (DESIGN.md §2.3)
  bool enable_data_skipping = true;  // zone-map data skipping in the engine
                                     // (DESIGN.md §2.5). An execution switch
                                     // surfaced here for the ablation matrix:
                                     // the API propagates it into
                                     // ExecOptions::enable_data_skipping, so
                                     // one flag flips both estimate and run.
                                     // No cost term reads it — skipping never
                                     // changes the byte meters the model
                                     // prices, only elided CPU work.
  bool enable_chain_specialization = true;  // fused-chain TAC specialization
                                            // (DESIGN.md §2.6): Map stages in
                                            // a fused chain execute as one
                                            // constant-folded program, so
                                            // their per-call CPU term is
                                            // discounted (see
                                            // kSpecializationCpuDiscount). The
                                            // API propagates it into
                                            // ExecOptions, so one flag flips
                                            // both estimate and run. Byte
                                            // meters are unchanged by
                                            // construction.
};

/// Fraction of a fused Map stage's per-call CPU cost the model keeps under
/// chain specialization: the fused program eliminates inter-stage record
/// handoff and dead stores, roughly halving executed instructions on the
/// measured workloads (BENCH_baseline.json pins the realized ratio). Applied
/// identically when costing candidates and when bounding partial plans, so
/// the bound stays admissible.
inline constexpr double kSpecializationCpuDiscount = 0.5;

/// A physical operator: one logical plan node with chosen strategies.
struct PhysicalNode {
  int op_id = -1;
  std::vector<std::unique_ptr<PhysicalNode>> children;
  std::vector<ShipStrategy> ships;  // one per input
  LocalStrategy local = LocalStrategy::kNone;

  /// kSortMergeJoin: per input, whether the optimizer established that the
  /// shipped input already arrives sorted on the join key (a reused sort
  /// order), so neither sort CPU nor a sort spill is charged/metered for it.
  /// The executor still runs a stable sort — a no-op on presorted data — so
  /// execution correctness never depends on the optimizer's claim.
  std::vector<uint8_t> input_presorted;

  /// Per-partition sort order of this node's output (attribute ids, most
  /// significant first; empty = none). Informational: mirrors the ordering
  /// interesting-property the planner tracked for this candidate.
  std::vector<int> sort_order;

  /// Operator-chain group (DESIGN.md §2.2): nodes sharing a chain_id execute
  /// as one fused streaming pass — a chain is a pipeline breaker (or scan)
  /// plus the maximal run of forward-shipped record-at-a-time stages above
  /// it. Assigned by AssignChainIds during physical optimization; -1 until
  /// then.
  int chain_id = -1;

  // Estimates at this node's output.
  double est_rows = 0;
  double est_bytes_per_row = 0;

  // Estimated cost components charged at THIS node (input shipping, local
  // spill, local CPU); the plan's total cost is their sum over the tree.
  double cost_network = 0;
  double cost_disk = 0;
  double cost_cpu = 0;

  double TotalCost() const { return cost_network + cost_disk + cost_cpu; }
};

struct PhysicalPlan {
  std::unique_ptr<PhysicalNode> root;
  double total_cost = 0;

  /// Number of operator chains (= pipeline breakers + scans) in this plan,
  /// as counted by AssignChainIds. The ranked enumerator uses it to break
  /// cost ties toward plans with fewer breakers.
  int num_chains = 0;

  std::string ToString(const dataflow::DataFlow& flow) const;
};

/// True if `n` is a record-at-a-time stage that fuses onto its (single)
/// forward-shipped input: a streaming Map or the sink's projection. Shared
/// chain-formation predicate — the engine's fused execution and
/// AssignChainIds both derive chain shapes from it, so the plan's chain ids
/// always describe what the executor actually fuses.
bool IsStreamingStage(const dataflow::Operator& op, const PhysicalNode& n);

/// Assigns chain-group ids over the plan tree (root-down DFS order): a node
/// joins its consumer's chain when the consumer is a streaming stage per
/// IsStreamingStage, otherwise it starts a new chain. Returns the number of
/// chains. Called by OptimizePhysical on the winning plan; idempotent.
int AssignChainIds(const dataflow::DataFlow& flow, PhysicalNode* root);

/// Optimizes one logical alternative. Returns the cheapest physical plan.
StatusOr<PhysicalPlan> OptimizePhysical(const dataflow::AnnotatedFlow& af,
                                        const reorder::PlanPtr& plan,
                                        const CostWeights& weights = {});

/// Admissible lower bound on OptimizePhysical(af, plan, weights).total_cost,
/// computed in one O(n) bottom-up pass without enumerating strategies.
/// Logical cardinalities are strategy-independent, so the bound charges, per
/// operator: the exact UDF-call CPU, the cheapest local strategy's residual
/// CPU (e.g. a merge join on two presorted inputs), and a shuffle term only
/// when NO physical candidate could possibly serve the operator's key from
/// an already-established partitioning (tracked as an over-approximated set
/// of partitionings each subtree might offer). Over-approximating the
/// serveable partitionings can only drop charges, never add them, so
/// LowerBoundCost(P) <= cost(any feasible physical plan of P). Disk (spill)
/// terms are bounded by zero. Used by the ranked enumerator to order its
/// best-first frontier and to prune plans that cannot enter the top-k
/// (DESIGN.md §3.4).
double LowerBoundCost(const dataflow::AnnotatedFlow& af,
                      const reorder::PlanPtr& plan,
                      const CostWeights& weights = {});

}  // namespace optimizer
}  // namespace blackbox

#endif  // BLACKBOX_OPTIMIZER_PHYSICAL_H_
