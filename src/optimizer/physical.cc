#include "optimizer/physical.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

namespace blackbox {
namespace optimizer {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using reorder::PlanPtr;

const char* ShipStrategyName(ShipStrategy s) {
  switch (s) {
    case ShipStrategy::kForward: return "forward";
    case ShipStrategy::kPartitionHash: return "hash-partition";
    case ShipStrategy::kBroadcast: return "broadcast";
  }
  return "?";
}

const char* LocalStrategyName(LocalStrategy s) {
  switch (s) {
    case LocalStrategy::kNone: return "stream";
    case LocalStrategy::kSortGroup: return "sort-group";
    case LocalStrategy::kHashJoinBuildLeft: return "hash-join(build=left)";
    case LocalStrategy::kHashJoinBuildRight: return "hash-join(build=right)";
    case LocalStrategy::kNestedLoop: return "nested-loop";
    case LocalStrategy::kSortCoGroup: return "sort-cogroup";
  }
  return "?";
}

namespace {

/// A partitioning property: the data is hash-partitioned on this attribute
/// set (empty = no useful partitioning / random).
using Partitioning = std::set<AttrId>;

struct Candidate {
  std::shared_ptr<PhysicalNode> node;  // shared: candidates share subtrees
  Partitioning partitioning;
  double cost = 0;
  double est_rows = 0;
  double est_bytes_per_row = 0;
};

std::unique_ptr<PhysicalNode> ClonePhysical(const PhysicalNode& n) {
  auto out = std::make_unique<PhysicalNode>();
  out->op_id = n.op_id;
  out->ships = n.ships;
  out->local = n.local;
  out->est_rows = n.est_rows;
  out->est_bytes_per_row = n.est_bytes_per_row;
  out->cost_network = n.cost_network;
  out->cost_disk = n.cost_disk;
  out->cost_cpu = n.cost_cpu;
  for (const auto& c : n.children) out->children.push_back(ClonePhysical(*c));
  return out;
}

class PhysicalPlanner {
 public:
  PhysicalPlanner(const dataflow::AnnotatedFlow& af, const CostWeights& w)
      : af_(af), w_(w) {}

  StatusOr<PhysicalPlan> Plan(const PlanPtr& plan) {
    StatusOr<std::vector<Candidate>> cands = PlanNodeCands(plan);
    if (!cands.ok()) return cands.status();
    if (cands->empty()) return Status::Internal("no physical candidates");
    const Candidate* best = &cands->front();
    for (const Candidate& c : *cands) {
      if (c.cost < best->cost) best = &c;
    }
    PhysicalPlan out;
    out.root = ClonePhysical(*best->node);
    out.total_cost = best->cost;
    return out;
  }

 private:
  /// True if `partitioning` guarantees co-location of groups keyed on `key`:
  /// a non-empty partitioning on a subset of the key attributes.
  static bool PartitioningServesKey(const Partitioning& partitioning,
                                    const std::vector<AttrId>& key) {
    if (partitioning.empty()) return false;
    for (AttrId a : partitioning) {
      if (std::find(key.begin(), key.end(), a) == key.end()) return false;
    }
    return true;
  }

  double ShipCost(ShipStrategy s, double rows, double bytes_per_row) const {
    double bytes = rows * bytes_per_row;
    switch (s) {
      case ShipStrategy::kForward:
        return 0;
      case ShipStrategy::kPartitionHash:
        // (dop-1)/dop of the data crosses the network.
        return w_.net_per_byte * bytes * (w_.dop - 1) / w_.dop;
      case ShipStrategy::kBroadcast:
        return w_.net_per_byte * bytes * (w_.dop - 1);
    }
    return 0;
  }

  /// Disk cost of materializing `bytes` per instance when it exceeds the
  /// memory budget (sort spill / hash-table spill): write + re-read.
  double SpillCost(double total_bytes) const {
    double per_instance = total_bytes / w_.dop;
    if (per_instance <= w_.mem_budget_bytes) return 0;
    return w_.disk_per_byte * 2 * total_bytes;
  }

  /// Keeps the cheapest candidate per distinct partitioning property plus the
  /// overall cheapest (principle of optimality with interesting properties).
  static void Prune(std::vector<Candidate>* cands) {
    std::vector<Candidate> kept;
    for (Candidate& c : *cands) {
      bool dominated = false;
      for (Candidate& k : kept) {
        if (k.partitioning == c.partitioning && k.cost <= c.cost) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      kept.erase(std::remove_if(kept.begin(), kept.end(),
                                [&](const Candidate& k) {
                                  return k.partitioning == c.partitioning &&
                                         k.cost > c.cost;
                                }),
                 kept.end());
      kept.push_back(std::move(c));
    }
    *cands = std::move(kept);
  }

  Candidate MakeCand(const PlanPtr& plan,
                     std::vector<const Candidate*> child_cands,
                     std::vector<ShipStrategy> ships, LocalStrategy local,
                     Partitioning out_partitioning, double est_rows,
                     double est_bpr, double local_net, double local_disk,
                     double local_cpu) const {
    auto node = std::make_shared<PhysicalNode>();
    node->op_id = plan->op_id;
    node->ships = ships;
    node->local = local;
    node->est_rows = est_rows;
    node->est_bytes_per_row = est_bpr;
    double child_cost = 0;
    for (size_t i = 0; i < child_cands.size(); ++i) {
      node->children.push_back(ClonePhysical(*child_cands[i]->node));
      child_cost += child_cands[i]->cost;
      local_net += ShipCost(ships[i], child_cands[i]->est_rows,
                            child_cands[i]->est_bytes_per_row);
    }
    node->cost_network = local_net;
    node->cost_disk = local_disk;
    node->cost_cpu = local_cpu;
    Candidate c;
    c.cost = child_cost + local_net + local_disk + local_cpu;
    c.node = std::move(node);
    c.partitioning = std::move(out_partitioning);
    c.est_rows = est_rows;
    c.est_bytes_per_row = est_bpr;
    return c;
  }

  StatusOr<std::vector<Candidate>> PlanNodeCands(const PlanPtr& plan) {
    const dataflow::Operator& op = af_.flow->op(plan->op_id);
    const OpProperties& p = af_.of(plan->op_id);
    std::vector<Candidate> out;

    switch (op.kind) {
      case OpKind::kSource: {
        out.push_back(MakeCand(plan, {}, {}, LocalStrategy::kNone, {},
                               static_cast<double>(op.source_rows),
                               op.source_avg_bytes, 0, 0, 0));
        break;
      }
      case OpKind::kSink: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        for (const Candidate& c : *child) {
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                 LocalStrategy::kNone, c.partitioning,
                                 c.est_rows, c.est_bytes_per_row, 0, 0, 0));
        }
        break;
      }
      case OpKind::kMap: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        for (const Candidate& c : *child) {
          double rows = c.est_rows * op.hints.selectivity;
          double bpr = c.est_bytes_per_row + 9.0 * p.introduced.listed().size();
          double cpu = w_.cpu_per_call_unit * c.est_rows *
                           op.hints.cpu_cost_per_call +
                       w_.cpu_per_record * c.est_rows;
          // A Map invalidates a partitioning if it rewrites partition attrs.
          Partitioning part = c.partitioning;
          for (AttrId a : part) {
            if (p.write.Contains(a)) {
              part.clear();
              break;
            }
          }
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                 LocalStrategy::kNone, part, rows, bpr, 0, 0,
                                 cpu));
        }
        break;
      }
      case OpKind::kReduce: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        const std::vector<AttrId>& key = p.keys[0];
        for (const Candidate& c : *child) {
          double groups = op.hints.distinct_keys > 0
                              ? std::min<double>(
                                    static_cast<double>(op.hints.distinct_keys),
                                    c.est_rows)
                              : std::max(1.0, c.est_rows / 16.0);
          double rows = groups * op.hints.selectivity;
          double bpr = c.est_bytes_per_row + 9.0 * p.introduced.listed().size();
          double in_bytes = c.est_rows * c.est_bytes_per_row;
          double sort_cpu = w_.cpu_per_record * c.est_rows *
                            std::max(1.0, std::log2(std::max(
                                              2.0, c.est_rows / w_.dop)));
          double cpu = w_.cpu_per_call_unit * groups *
                           op.hints.cpu_cost_per_call +
                       sort_cpu;
          double disk = SpillCost(in_bytes);
          Partitioning key_part(key.begin(), key.end());
          // (a) Reuse an existing partitioning that serves the key.
          if (w_.enable_partition_reuse &&
              PartitioningServesKey(c.partitioning, key)) {
            out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                   LocalStrategy::kSortGroup, c.partitioning,
                                   rows, bpr, 0, disk, cpu));
          }
          // (b) Hash-repartition on the key.
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kPartitionHash},
                                 LocalStrategy::kSortGroup, key_part, rows,
                                 bpr, 0, disk, cpu));
        }
        break;
      }
      case OpKind::kMatch:
      case OpKind::kCross:
      case OpKind::kCoGroup: {
        StatusOr<std::vector<Candidate>> left_or = PlanNodeCands(plan->children[0]);
        if (!left_or.ok()) return left_or.status();
        StatusOr<std::vector<Candidate>> right_or =
            PlanNodeCands(plan->children[1]);
        if (!right_or.ok()) return right_or.status();
        for (const Candidate& l : *left_or) {
          for (const Candidate& r : *right_or) {
            AppendBinaryCands(plan, op, p, l, r, &out);
          }
        }
        break;
      }
    }
    Prune(&out);
    // Cap the frontier to keep optimization linear in practice.
    if (out.size() > 12) {
      std::sort(out.begin(), out.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.cost < b.cost;
                });
      out.resize(12);
    }
    return out;
  }

  void AppendBinaryCands(const PlanPtr& plan, const dataflow::Operator& op,
                         const OpProperties& p, const Candidate& l,
                         const Candidate& r, std::vector<Candidate>* out) {
    double lrows = l.est_rows, rrows = r.est_rows;
    double out_bpr = l.est_bytes_per_row + r.est_bytes_per_row +
                     9.0 * p.introduced.listed().size();

    if (op.kind == OpKind::kCross) {
      double rows = lrows * rrows * op.hints.selectivity;
      double cpu = w_.cpu_per_call_unit * lrows * rrows *
                       op.hints.cpu_cost_per_call +
                   w_.cpu_per_record * (lrows + rrows);
      // Broadcast the smaller side; nested loops locally.
      bool bc_left = lrows * l.est_bytes_per_row <= rrows * r.est_bytes_per_row;
      std::vector<ShipStrategy> ships = {
          bc_left ? ShipStrategy::kBroadcast : ShipStrategy::kForward,
          bc_left ? ShipStrategy::kForward : ShipStrategy::kBroadcast};
      Partitioning part = bc_left ? r.partitioning : l.partitioning;
      out->push_back(MakeCand(plan, {&l, &r}, ships, LocalStrategy::kNestedLoop,
                              part, rows, out_bpr, 0, 0, cpu));
      return;
    }

    const std::vector<AttrId>& lkey = p.keys[0];
    const std::vector<AttrId>& rkey = p.keys[1];
    double domain = op.hints.distinct_keys > 0
                        ? static_cast<double>(op.hints.distinct_keys)
                        : std::max({lrows, rrows, 1.0});
    double rows = op.kind == OpKind::kCoGroup
                      ? domain * op.hints.selectivity
                      : lrows * rrows / domain * op.hints.selectivity;
    double calls = op.kind == OpKind::kCoGroup ? domain : rows;
    double cpu = w_.cpu_per_call_unit * calls * op.hints.cpu_cost_per_call +
                 w_.cpu_per_record * (lrows + rrows);

    bool l_served =
        w_.enable_partition_reuse && PartitioningServesKey(l.partitioning, lkey);
    bool r_served =
        w_.enable_partition_reuse && PartitioningServesKey(r.partitioning, rkey);

    LocalStrategy join_local =
        op.kind == OpKind::kCoGroup
            ? LocalStrategy::kSortCoGroup
            : (lrows * l.est_bytes_per_row <= rrows * r.est_bytes_per_row
                   ? LocalStrategy::kHashJoinBuildLeft
                   : LocalStrategy::kHashJoinBuildRight);

    double build_bytes = std::min(lrows * l.est_bytes_per_row,
                                  rrows * r.est_bytes_per_row);
    double disk = SpillCost(build_bytes);
    if (op.kind == OpKind::kCoGroup) {
      disk = SpillCost(lrows * l.est_bytes_per_row) +
             SpillCost(rrows * r.est_bytes_per_row);
    }

    // (a) Repartition both sides on the join keys (reusing served sides).
    {
      std::vector<ShipStrategy> ships = {
          l_served ? ShipStrategy::kForward : ShipStrategy::kPartitionHash,
          r_served ? ShipStrategy::kForward : ShipStrategy::kPartitionHash};
      // Result is co-partitioned on both key sets; emit one candidate per
      // declared property so downstream operators can reuse either.
      out->push_back(MakeCand(plan, {&l, &r}, ships, join_local,
                              Partitioning(lkey.begin(), lkey.end()), rows,
                              out_bpr, 0, disk, cpu));
      out->push_back(MakeCand(plan, {&l, &r}, ships, join_local,
                              Partitioning(rkey.begin(), rkey.end()), rows,
                              out_bpr, 0, disk, cpu));
    }

    // (b) Broadcast one side, preserve the other's partitioning. Not
    // applicable to CoGroup (a broadcast side would duplicate groups).
    if (op.kind == OpKind::kMatch && w_.enable_broadcast) {
      // Broadcast left.
      out->push_back(MakeCand(
          plan, {&l, &r},
          {ShipStrategy::kBroadcast, ShipStrategy::kForward},
          LocalStrategy::kHashJoinBuildLeft, r.partitioning, rows, out_bpr, 0,
          SpillCost(lrows * l.est_bytes_per_row * w_.dop), cpu));
      // Broadcast right.
      out->push_back(MakeCand(
          plan, {&l, &r},
          {ShipStrategy::kForward, ShipStrategy::kBroadcast},
          LocalStrategy::kHashJoinBuildRight, l.partitioning, rows, out_bpr, 0,
          SpillCost(rrows * r.est_bytes_per_row * w_.dop), cpu));
    }
  }

  const dataflow::AnnotatedFlow& af_;
  const CostWeights& w_;
};

}  // namespace

std::string PhysicalPlan::ToString(const dataflow::DataFlow& flow) const {
  std::ostringstream out;
  std::function<void(const PhysicalNode&, int)> walk = [&](const PhysicalNode& n,
                                                           int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
    const dataflow::Operator& op = flow.op(n.op_id);
    out << dataflow::OpKindName(op.kind) << " \"" << op.name << "\" ["
        << LocalStrategyName(n.local);
    for (size_t i = 0; i < n.ships.size(); ++i) {
      out << ", in" << i << "=" << ShipStrategyName(n.ships[i]);
    }
    out << "] rows~" << static_cast<int64_t>(n.est_rows) << "\n";
    for (const auto& c : n.children) walk(*c, depth + 1);
  };
  if (root) walk(*root, 0);
  out << "total estimated cost: " << total_cost << "\n";
  return out.str();
}

StatusOr<PhysicalPlan> OptimizePhysical(const dataflow::AnnotatedFlow& af,
                                        const reorder::PlanPtr& plan,
                                        const CostWeights& weights) {
  PhysicalPlanner planner(af, weights);
  return planner.Plan(plan);
}

}  // namespace optimizer
}  // namespace blackbox
