#include "optimizer/physical.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <sstream>

namespace blackbox {
namespace optimizer {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using reorder::PlanPtr;

// NOTE: the strategy-name switches are deliberately exhaustive with no
// default case and no trailing fallback return, so adding an enum value
// without a name is a compile error (-Wswitch / -Wreturn-type under -Werror).
const char* ShipStrategyName(ShipStrategy s) {
  switch (s) {
    case ShipStrategy::kForward: return "forward";
    case ShipStrategy::kPartitionHash: return "hash-partition";
    case ShipStrategy::kBroadcast: return "broadcast";
  }
  __builtin_unreachable();
}

const char* LocalStrategyName(LocalStrategy s) {
  switch (s) {
    case LocalStrategy::kNone: return "stream";
    case LocalStrategy::kSortGroup: return "sort-group";
    case LocalStrategy::kHashJoinBuildLeft: return "hash-join(build=left)";
    case LocalStrategy::kHashJoinBuildRight: return "hash-join(build=right)";
    case LocalStrategy::kNestedLoop: return "nested-loop";
    case LocalStrategy::kSortCoGroup: return "sort-cogroup";
    case LocalStrategy::kSortMergeJoin: return "sort-merge-join";
    case LocalStrategy::kPreAggregate: return "combine+sort-group";
  }
  __builtin_unreachable();
}

namespace {

/// A partitioning property: the data is hash-partitioned on this attribute
/// set (empty = no useful partitioning / random).
using Partitioning = std::set<AttrId>;

/// A per-partition sort order: records are sorted lexicographically by these
/// attributes, most significant first (empty = no useful order). Produced by
/// sort-based local strategies, destroyed by any shuffle, and truncated when
/// an operator rewrites one of the attributes.
using Ordering = std::vector<AttrId>;

struct Candidate {
  std::shared_ptr<PhysicalNode> node;  // shared: candidates share subtrees
  Partitioning partitioning;
  Ordering ordering;
  double cost = 0;
  double est_rows = 0;
  double est_bytes_per_row = 0;
};

std::unique_ptr<PhysicalNode> ClonePhysical(const PhysicalNode& n) {
  auto out = std::make_unique<PhysicalNode>();
  out->op_id = n.op_id;
  out->ships = n.ships;
  out->local = n.local;
  out->input_presorted = n.input_presorted;
  out->sort_order = n.sort_order;
  out->chain_id = n.chain_id;
  out->est_rows = n.est_rows;
  out->est_bytes_per_row = n.est_bytes_per_row;
  out->cost_network = n.cost_network;
  out->cost_disk = n.cost_disk;
  out->cost_cpu = n.cost_cpu;
  for (const auto& c : n.children) out->children.push_back(ClonePhysical(*c));
  return out;
}

/// Canonical strategy string of a physical subtree — the deterministic
/// tie-break key for equal-cost candidates (the new strategies routinely
/// produce cost ties, e.g. two merge-join candidates declaring the left vs
/// the right key property).
std::string PhysicalKey(const PhysicalNode& n) {
  std::string out = std::to_string(n.op_id);
  out += '/';
  out += std::to_string(static_cast<int>(n.local));
  for (ShipStrategy s : n.ships) {
    out += ',';
    out += std::to_string(static_cast<int>(s));
  }
  out += '[';
  for (AttrId a : n.sort_order) {
    out += std::to_string(a);
    out += ' ';
  }
  out += ']';
  out += '(';
  for (const auto& c : n.children) {
    out += PhysicalKey(*c);
    out += ';';
  }
  out += ')';
  return out;
}

class PhysicalPlanner {
 public:
  PhysicalPlanner(const dataflow::AnnotatedFlow& af, const CostWeights& w)
      : af_(af), w_(w) {}

  StatusOr<PhysicalPlan> Plan(const PlanPtr& plan) {
    StatusOr<std::vector<Candidate>> cands = PlanNodeCands(plan);
    if (!cands.ok()) return cands.status();
    if (cands->empty()) return Status::Internal("no physical candidates");
    // Cheapest wins; ties break on the canonical strategy string so the
    // choice is independent of candidate generation order.
    const Candidate* best = &cands->front();
    std::string best_key = PhysicalKey(*best->node);
    for (const Candidate& c : *cands) {
      if (&c == best) continue;
      if (c.cost > best->cost) continue;
      std::string key = PhysicalKey(*c.node);
      if (c.cost < best->cost || key < best_key) {
        best = &c;
        best_key = std::move(key);
      }
    }
    PhysicalPlan out;
    out.root = ClonePhysical(*best->node);
    out.total_cost = best->cost;
    out.num_chains = AssignChainIds(*af_.flow, out.root.get());
    return out;
  }

 private:
  /// True if `partitioning` guarantees co-location of groups keyed on `key`:
  /// a non-empty partitioning on a subset of the key attributes.
  static bool PartitioningServesKey(const Partitioning& partitioning,
                                    const std::vector<AttrId>& key) {
    if (partitioning.empty()) return false;
    for (AttrId a : partitioning) {
      if (std::find(key.begin(), key.end(), a) == key.end()) return false;
    }
    return true;
  }

  /// True if data sorted by `ordering` is also sorted by the key vector:
  /// the key must be an exact prefix of the ordering (the executor's sort
  /// comparator is lexicographic in key-vector order).
  static bool OrderingServesKey(const Ordering& ordering,
                                const std::vector<AttrId>& key) {
    if (key.empty() || key.size() > ordering.size()) return false;
    for (size_t i = 0; i < key.size(); ++i) {
      if (ordering[i] != key[i]) return false;
    }
    return true;
  }

  /// The longest prefix of `ordering` that survives an operator with the
  /// given write set (a rewritten attribute invalidates it and everything
  /// less significant).
  static Ordering SurvivingOrdering(const Ordering& ordering,
                                    const dataflow::AttrSet& write) {
    Ordering out;
    for (AttrId a : ordering) {
      if (write.Contains(a)) break;
      out.push_back(a);
    }
    return out;
  }

  double ShipCost(ShipStrategy s, double rows, double bytes_per_row) const {
    double bytes = rows * bytes_per_row;
    switch (s) {
      case ShipStrategy::kForward:
        return 0;
      case ShipStrategy::kPartitionHash:
        // (dop-1)/dop of the data crosses the network.
        return w_.net_per_byte * bytes * (w_.dop - 1) / w_.dop;
      case ShipStrategy::kBroadcast:
        return w_.net_per_byte * bytes * (w_.dop - 1);
    }
    return 0;
  }

  /// Disk cost of materializing `bytes` per instance when it exceeds the
  /// memory budget (sort spill / hash-table spill): write + re-read. This
  /// stays an estimate — the engine's measured disk_bytes may differ (it
  /// spills only the overflow, and merge passes re-read runs; DESIGN.md
  /// §2.3) — but both are zero/nonzero together at the same budget, which
  /// the spill-equivalence oracle checks.
  double SpillCost(double total_bytes) const {
    if (!w_.enable_spill) return 0;
    double per_instance = total_bytes / w_.dop;
    if (per_instance <= w_.mem_budget_bytes) return 0;
    return w_.disk_per_byte * 2 * total_bytes;
  }

  /// CPU of sorting `rows` per-partition (also the cost of the tree-based
  /// grouping the engine actually performs): n log(n/dop) comparisons.
  double SortCpu(double rows) const {
    return w_.cpu_per_record * rows *
           std::max(1.0, std::log2(std::max(2.0, rows / w_.dop)));
  }

  /// Per-lookup depth of the engine's tree-based join table built over
  /// `build_rows` per instance. Charged per build insert and per probe.
  double LookupFactor(double build_rows) const {
    return std::max(1.0, std::log2(std::max(2.0, build_rows / w_.dop)));
  }

  /// Keeps the cheapest candidate per distinct (partitioning, ordering)
  /// property pair plus the overall cheapest (principle of optimality with
  /// interesting properties).
  static void Prune(std::vector<Candidate>* cands) {
    std::vector<Candidate> kept;
    for (Candidate& c : *cands) {
      bool dominated = false;
      for (Candidate& k : kept) {
        if (k.partitioning == c.partitioning && k.ordering == c.ordering &&
            k.cost <= c.cost) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      kept.erase(std::remove_if(kept.begin(), kept.end(),
                                [&](const Candidate& k) {
                                  return k.partitioning == c.partitioning &&
                                         k.ordering == c.ordering &&
                                         k.cost > c.cost;
                                }),
                 kept.end());
      kept.push_back(std::move(c));
    }
    *cands = std::move(kept);
  }

  Candidate MakeCand(const PlanPtr& plan,
                     std::vector<const Candidate*> child_cands,
                     std::vector<ShipStrategy> ships, LocalStrategy local,
                     Partitioning out_partitioning, Ordering out_ordering,
                     double est_rows, double est_bpr, double local_net,
                     double local_disk, double local_cpu,
                     double ship_rows_override = -1,
                     double ship_bpr_override = -1,
                     std::vector<uint8_t> presorted = {}) const {
    auto node = std::make_shared<PhysicalNode>();
    node->op_id = plan->op_id;
    node->ships = ships;
    node->local = local;
    node->input_presorted = std::move(presorted);
    node->sort_order = out_ordering;
    node->est_rows = est_rows;
    node->est_bytes_per_row = est_bpr;
    double child_cost = 0;
    for (size_t i = 0; i < child_cands.size(); ++i) {
      node->children.push_back(ClonePhysical(*child_cands[i]->node));
      child_cost += child_cands[i]->cost;
      // A combiner shrinks the shipped volume below the child's output
      // estimate; the override carries the post-combine volume (input 0).
      double srows = child_cands[i]->est_rows;
      double sbpr = child_cands[i]->est_bytes_per_row;
      if (i == 0 && ship_rows_override >= 0) {
        srows = ship_rows_override;
        sbpr = ship_bpr_override;
      }
      local_net += ShipCost(ships[i], srows, sbpr);
    }
    node->cost_network = local_net;
    node->cost_disk = local_disk;
    node->cost_cpu = local_cpu;
    Candidate c;
    c.cost = child_cost + local_net + local_disk + local_cpu;
    c.node = std::move(node);
    c.partitioning = std::move(out_partitioning);
    c.ordering = std::move(out_ordering);
    c.est_rows = est_rows;
    c.est_bytes_per_row = est_bpr;
    return c;
  }

  StatusOr<std::vector<Candidate>> PlanNodeCands(const PlanPtr& plan) {
    const dataflow::Operator& op = af_.flow->op(plan->op_id);
    const OpProperties& p = af_.of(plan->op_id);
    std::vector<Candidate> out;

    switch (op.kind) {
      case OpKind::kSource: {
        out.push_back(MakeCand(plan, {}, {}, LocalStrategy::kNone, {}, {},
                               static_cast<double>(op.source_rows),
                               op.source_avg_bytes, 0, 0, 0));
        break;
      }
      case OpKind::kSink: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        for (const Candidate& c : *child) {
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                 LocalStrategy::kNone, c.partitioning,
                                 c.ordering, c.est_rows, c.est_bytes_per_row,
                                 0, 0, 0));
        }
        break;
      }
      case OpKind::kMap: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        for (const Candidate& c : *child) {
          double rows = c.est_rows * op.hints.selectivity;
          double bpr = c.est_bytes_per_row + 9.0 * p.introduced.listed().size();
          // A Map always consumes a forward-shipped stream, so with chain
          // fusion its input edge is fused: records flow through the chain
          // without a per-record materialize/dispatch step, and the engine
          // overhead term (cpu_per_record) is not charged (DESIGN.md §2.2).
          // The UDF's own cost is unchanged.
          // With specialization the Map runs inside the chain's fused TAC
          // program — no inter-stage handoff, dead stores folded away — so
          // its per-call term is discounted (DESIGN.md §2.6).
          double call_unit =
              w_.enable_chain_fusion && w_.enable_chain_specialization
                  ? w_.cpu_per_call_unit * optimizer::kSpecializationCpuDiscount
                  : w_.cpu_per_call_unit;
          double cpu = call_unit * c.est_rows * op.hints.cpu_cost_per_call +
                       (w_.enable_chain_fusion ? 0.0
                                               : w_.cpu_per_record * c.est_rows);
          // A Map invalidates a partitioning if it rewrites partition attrs;
          // a sort order survives up to the first rewritten attribute.
          Partitioning part = c.partitioning;
          for (AttrId a : part) {
            if (p.write.Contains(a)) {
              part.clear();
              break;
            }
          }
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                 LocalStrategy::kNone, part,
                                 SurvivingOrdering(c.ordering, p.write), rows,
                                 bpr, 0, 0, cpu));
        }
        break;
      }
      case OpKind::kReduce: {
        StatusOr<std::vector<Candidate>> child = PlanNodeCands(plan->children[0]);
        if (!child.ok()) return child.status();
        const std::vector<AttrId>& key = p.keys[0];
        for (const Candidate& c : *child) {
          double groups = op.hints.distinct_keys > 0
                              ? std::min<double>(
                                    static_cast<double>(op.hints.distinct_keys),
                                    c.est_rows)
                              : std::max(1.0, c.est_rows / 16.0);
          double rows = groups * op.hints.selectivity;
          double bpr = c.est_bytes_per_row + 9.0 * p.introduced.listed().size();
          double in_bytes = c.est_rows * c.est_bytes_per_row;
          double call_cpu = w_.cpu_per_call_unit * groups *
                            op.hints.cpu_cost_per_call;
          double disk = SpillCost(in_bytes);
          Partitioning key_part(key.begin(), key.end());
          // Sort-grouping emits groups in key order: the output carries the
          // key as its sort order (truncated if the UDF rewrites key attrs —
          // impossible for a valid Reduce, but keep the invariant uniform).
          Ordering out_order = SurvivingOrdering(key, p.write);
          // (a) Reuse an existing partitioning that serves the key. If the
          // input also arrives sorted on the key, the grouping sort is free
          // (the §7.1 interesting-order payoff).
          if (w_.enable_partition_reuse &&
              PartitioningServesKey(c.partitioning, key)) {
            bool presorted =
                w_.enable_sort_merge && OrderingServesKey(c.ordering, key);
            double sort_cpu = presorted ? 0 : SortCpu(c.est_rows);
            out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kForward},
                                   LocalStrategy::kSortGroup, c.partitioning,
                                   out_order, rows, bpr, 0,
                                   presorted ? 0 : disk, call_cpu + sort_cpu,
                                   -1, -1, {static_cast<uint8_t>(presorted)}));
          }
          // (b) Hash-repartition on the key (the shuffle destroys any
          // incoming order, so the grouping sort is always paid).
          out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kPartitionHash},
                                 LocalStrategy::kSortGroup, key_part,
                                 out_order, rows, bpr, 0, disk,
                                 call_cpu + SortCpu(c.est_rows)));
          // (c) Combiner: pre-aggregate partition-local groups before the
          // shuffle (legal iff the SCA summary proves combinability). Each
          // of the dop partitions holds at most `groups` distinct keys, so
          // at most groups*dop partials cross the network.
          if (w_.enable_combiner && p.combinable) {
            double partials = std::min(c.est_rows, groups * w_.dop);
            double pre_cpu = w_.cpu_per_call_unit * partials *
                                 op.hints.cpu_cost_per_call +
                             SortCpu(c.est_rows);
            double post_cpu = call_cpu + SortCpu(partials);
            double post_disk = SpillCost(partials * bpr);
            out.push_back(MakeCand(plan, {&c}, {ShipStrategy::kPartitionHash},
                                   LocalStrategy::kPreAggregate, key_part,
                                   out_order, rows, bpr, 0, disk + post_disk,
                                   pre_cpu + post_cpu, partials, bpr));
          }
        }
        break;
      }
      case OpKind::kMatch:
      case OpKind::kCross:
      case OpKind::kCoGroup: {
        StatusOr<std::vector<Candidate>> left_or = PlanNodeCands(plan->children[0]);
        if (!left_or.ok()) return left_or.status();
        StatusOr<std::vector<Candidate>> right_or =
            PlanNodeCands(plan->children[1]);
        if (!right_or.ok()) return right_or.status();
        for (const Candidate& l : *left_or) {
          for (const Candidate& r : *right_or) {
            AppendBinaryCands(plan, op, p, l, r, &out);
          }
        }
        break;
      }
    }
    Prune(&out);
    // Cap the frontier to keep optimization linear in practice. stable_sort:
    // equal-cost candidates keep generation order, so the surviving frontier
    // is deterministic.
    if (out.size() > 16) {
      std::stable_sort(out.begin(), out.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.cost < b.cost;
                       });
      out.resize(16);
    }
    return out;
  }

  void AppendBinaryCands(const PlanPtr& plan, const dataflow::Operator& op,
                         const OpProperties& p, const Candidate& l,
                         const Candidate& r, std::vector<Candidate>* out) {
    double lrows = l.est_rows, rrows = r.est_rows;
    double out_bpr = l.est_bytes_per_row + r.est_bytes_per_row +
                     9.0 * p.introduced.listed().size();

    if (op.kind == OpKind::kCross) {
      double rows = lrows * rrows * op.hints.selectivity;
      double cpu = w_.cpu_per_call_unit * lrows * rrows *
                       op.hints.cpu_cost_per_call +
                   w_.cpu_per_record * (lrows + rrows);
      // Broadcast the smaller side; nested loops locally.
      bool bc_left = lrows * l.est_bytes_per_row <= rrows * r.est_bytes_per_row;
      std::vector<ShipStrategy> ships = {
          bc_left ? ShipStrategy::kBroadcast : ShipStrategy::kForward,
          bc_left ? ShipStrategy::kForward : ShipStrategy::kBroadcast};
      Partitioning part = bc_left ? r.partitioning : l.partitioning;
      out->push_back(MakeCand(plan, {&l, &r}, ships, LocalStrategy::kNestedLoop,
                              part, {}, rows, out_bpr, 0, 0, cpu));
      return;
    }

    const std::vector<AttrId>& lkey = p.keys[0];
    const std::vector<AttrId>& rkey = p.keys[1];
    double domain = op.hints.distinct_keys > 0
                        ? static_cast<double>(op.hints.distinct_keys)
                        : std::max({lrows, rrows, 1.0});
    double rows = op.kind == OpKind::kCoGroup
                      ? domain * op.hints.selectivity
                      : lrows * rrows / domain * op.hints.selectivity;
    double calls = op.kind == OpKind::kCoGroup ? domain : rows;
    double call_cpu = w_.cpu_per_call_unit * calls * op.hints.cpu_cost_per_call;
    double record_cpu = w_.cpu_per_record * (lrows + rrows);

    bool l_served =
        w_.enable_partition_reuse && PartitioningServesKey(l.partitioning, lkey);
    bool r_served =
        w_.enable_partition_reuse && PartitioningServesKey(r.partitioning, rkey);
    std::vector<ShipStrategy> part_ships = {
        l_served ? ShipStrategy::kForward : ShipStrategy::kPartitionHash,
        r_served ? ShipStrategy::kForward : ShipStrategy::kPartitionHash};
    // Sort orders survive only a forward ship (a shuffle interleaves sorted
    // runs from all producer partitions).
    Ordering l_order = part_ships[0] == ShipStrategy::kForward ? l.ordering
                                                               : Ordering{};
    Ordering r_order = part_ships[1] == ShipStrategy::kForward ? r.ordering
                                                               : Ordering{};

    if (op.kind == OpKind::kCoGroup) {
      // Sort both sides, merge groups; a side arriving sorted on its key
      // skips its sort (and the sort's spill).
      bool l_pre = w_.enable_sort_merge && OrderingServesKey(l_order, lkey);
      bool r_pre = w_.enable_sort_merge && OrderingServesKey(r_order, rkey);
      double disk =
          (l_pre ? 0 : SpillCost(lrows * l.est_bytes_per_row)) +
          (r_pre ? 0 : SpillCost(rrows * r.est_bytes_per_row));
      double cpu = call_cpu + record_cpu + (l_pre ? 0 : SortCpu(lrows)) +
                   (r_pre ? 0 : SortCpu(rrows));
      std::vector<uint8_t> presorted = {static_cast<uint8_t>(l_pre),
                                        static_cast<uint8_t>(r_pre)};
      // Result is co-partitioned on both key sets and grouped in key order;
      // emit one candidate per declared property so downstream operators can
      // reuse either.
      out->push_back(MakeCand(plan, {&l, &r}, part_ships,
                              LocalStrategy::kSortCoGroup,
                              Partitioning(lkey.begin(), lkey.end()),
                              SurvivingOrdering(lkey, p.write), rows, out_bpr,
                              0, disk, cpu, -1, -1, presorted));
      out->push_back(MakeCand(plan, {&l, &r}, part_ships,
                              LocalStrategy::kSortCoGroup,
                              Partitioning(rkey.begin(), rkey.end()),
                              SurvivingOrdering(rkey, p.write), rows, out_bpr,
                              0, disk, cpu, -1, -1, presorted));
      return;
    }

    // --- Match ---
    bool build_left =
        lrows * l.est_bytes_per_row <= rrows * r.est_bytes_per_row;
    LocalStrategy join_local = build_left ? LocalStrategy::kHashJoinBuildLeft
                                          : LocalStrategy::kHashJoinBuildRight;
    double build_rows = build_left ? lrows : rrows;
    double build_bytes = std::min(lrows * l.est_bytes_per_row,
                                  rrows * r.est_bytes_per_row);
    double disk = SpillCost(build_bytes);
    // The engine's join table is an ordered tree: inserts and probes both
    // pay a log(build/dop) depth factor.
    double hash_cpu = call_cpu + record_cpu +
                      w_.cpu_per_record * (lrows + rrows) *
                          (LookupFactor(build_rows) - 1.0);

    // (a) Repartition both sides on the join keys (reusing served sides).
    // The join streams the probe side, so the probe side's surviving sort
    // order carries to the output.
    {
      Ordering probe_order = SurvivingOrdering(
          build_left ? r_order : l_order, p.write);
      out->push_back(MakeCand(plan, {&l, &r}, part_ships, join_local,
                              Partitioning(lkey.begin(), lkey.end()),
                              probe_order, rows, out_bpr, 0, disk, hash_cpu));
      out->push_back(MakeCand(plan, {&l, &r}, part_ships, join_local,
                              Partitioning(rkey.begin(), rkey.end()),
                              probe_order, rows, out_bpr, 0, disk, hash_cpu));
    }

    // (b) Sort-merge join: sort both sides by the join key and merge. A side
    // that already arrives sorted on its key (forward ship from a sort-based
    // producer) is merged for free — the payoff for tracking sort orders.
    if (w_.enable_sort_merge) {
      bool l_pre = OrderingServesKey(l_order, lkey);
      bool r_pre = OrderingServesKey(r_order, rkey);
      double merge_cpu = call_cpu + 0.5 * record_cpu +
                         (l_pre ? 0 : SortCpu(lrows)) +
                         (r_pre ? 0 : SortCpu(rrows));
      double merge_disk =
          (l_pre ? 0 : SpillCost(lrows * l.est_bytes_per_row)) +
          (r_pre ? 0 : SpillCost(rrows * r.est_bytes_per_row));
      std::vector<uint8_t> presorted = {static_cast<uint8_t>(l_pre),
                                        static_cast<uint8_t>(r_pre)};
      out->push_back(MakeCand(plan, {&l, &r}, part_ships,
                              LocalStrategy::kSortMergeJoin,
                              Partitioning(lkey.begin(), lkey.end()),
                              SurvivingOrdering(lkey, p.write), rows, out_bpr,
                              0, merge_disk, merge_cpu, -1, -1, presorted));
      out->push_back(MakeCand(plan, {&l, &r}, part_ships,
                              LocalStrategy::kSortMergeJoin,
                              Partitioning(rkey.begin(), rkey.end()),
                              SurvivingOrdering(rkey, p.write), rows, out_bpr,
                              0, merge_disk, merge_cpu, -1, -1, presorted));
    }

    // (c) Broadcast one side, preserve the other's partitioning and order.
    // Not applicable to CoGroup (a broadcast side would duplicate groups).
    // A broadcast build table holds the ENTIRE side in every instance, so
    // its lookup depth is log2(rows), not log2(rows/dop) — LookupFactor
    // divides by dop, hence the rows*dop argument.
    if (w_.enable_broadcast) {
      double bc_l_cpu = call_cpu + record_cpu +
                        w_.cpu_per_record * (lrows + rrows) *
                            (LookupFactor(lrows * w_.dop) - 1.0);
      double bc_r_cpu = call_cpu + record_cpu +
                        w_.cpu_per_record * (lrows + rrows) *
                            (LookupFactor(rrows * w_.dop) - 1.0);
      // Broadcast left.
      out->push_back(MakeCand(
          plan, {&l, &r},
          {ShipStrategy::kBroadcast, ShipStrategy::kForward},
          LocalStrategy::kHashJoinBuildLeft, r.partitioning,
          SurvivingOrdering(r.ordering, p.write), rows, out_bpr, 0,
          SpillCost(lrows * l.est_bytes_per_row * w_.dop), bc_l_cpu));
      // Broadcast right.
      out->push_back(MakeCand(
          plan, {&l, &r},
          {ShipStrategy::kForward, ShipStrategy::kBroadcast},
          LocalStrategy::kHashJoinBuildRight, l.partitioning,
          SurvivingOrdering(l.ordering, p.write), rows, out_bpr, 0,
          SpillCost(rrows * r.est_bytes_per_row * w_.dop), bc_r_cpu));
    }
  }

  const dataflow::AnnotatedFlow& af_;
  const CostWeights& w_;
};

}  // namespace

bool IsStreamingStage(const dataflow::Operator& op, const PhysicalNode& n) {
  if (n.children.size() != 1 || n.ships.size() != 1 ||
      n.ships[0] != ShipStrategy::kForward) {
    return false;
  }
  if (n.local != LocalStrategy::kNone) return false;
  return op.kind == OpKind::kMap || op.kind == OpKind::kSink;
}

int AssignChainIds(const dataflow::DataFlow& flow, PhysicalNode* root) {
  int next = 0;
  std::function<void(PhysicalNode&, int)> walk = [&](PhysicalNode& n,
                                                     int inherited) {
    n.chain_id = inherited >= 0 ? inherited : next++;
    // Children join this node's chain only when *this node* streams them
    // through; a breaker's children always open fresh chains.
    bool fuses_child = IsStreamingStage(flow.op(n.op_id), n);
    for (auto& c : n.children) {
      walk(*c, fuses_child ? n.chain_id : -1);
    }
  };
  if (root) walk(*root, -1);
  return next;
}

std::string PhysicalPlan::ToString(const dataflow::DataFlow& flow) const {
  std::ostringstream out;
  std::function<void(const PhysicalNode&, int)> walk = [&](const PhysicalNode& n,
                                                           int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
    const dataflow::Operator& op = flow.op(n.op_id);
    out << dataflow::OpKindName(op.kind) << " \"" << op.name << "\" ["
        << LocalStrategyName(n.local);
    for (size_t i = 0; i < n.ships.size(); ++i) {
      out << ", in" << i << "=" << ShipStrategyName(n.ships[i]);
      if (i < n.input_presorted.size() && n.input_presorted[i]) {
        out << "(presorted)";
      }
    }
    out << "] rows~" << static_cast<int64_t>(n.est_rows);
    if (n.chain_id >= 0) out << " chain=" << n.chain_id;
    out << "\n";
    for (const auto& c : n.children) walk(*c, depth + 1);
  };
  if (root) walk(*root, 0);
  out << "total estimated cost: " << total_cost << "\n";
  return out.str();
}

StatusOr<PhysicalPlan> OptimizePhysical(const dataflow::AnnotatedFlow& af,
                                        const reorder::PlanPtr& plan,
                                        const CostWeights& weights) {
  PhysicalPlanner planner(af, weights);
  return planner.Plan(plan);
}

// ---------------------------------------------------------------------------
// LowerBoundCost — admissible one-pass bound for the ranked enumerator.
//
// Mirrors the candidate generation above term by term, keeping only charges
// that EVERY candidate must pay: any edit to the cost model must keep each
// bound term <= the corresponding minimum over the candidates, or the ranked
// search loses its pruning guarantee (the ranked-vs-closure differential in
// tests/enum_random_chain_test.cc is the tripwire).
// ---------------------------------------------------------------------------

namespace {

/// Bottom-up bound state: exact logical cardinalities (strategy-independent)
/// plus an over-approximation of every partitioning some physical candidate
/// could offer at this subtree's output. Over-approximating can only zero a
/// shuffle charge that the bound might otherwise have made, never add one.
struct BoundInfo {
  double rows = 0;
  double bytes_per_row = 0;
  double lb = 0;                  // bound accumulated over the subtree
  std::set<Partitioning> parts;   // possibly-available partitionings
};

bool AnyPartitioningServes(const std::set<Partitioning>& parts,
                           const std::vector<AttrId>& key) {
  for (const Partitioning& p : parts) {
    if (p.empty()) continue;
    bool subset = true;
    for (AttrId a : p) {
      if (std::find(key.begin(), key.end(), a) == key.end()) {
        subset = false;
        break;
      }
    }
    if (subset) return true;
  }
  return false;
}

double HashShipLb(const CostWeights& w, double bytes) {
  return w.net_per_byte * bytes * (w.dop - 1) / w.dop;
}

/// Identical formula to PhysicalPlanner::SortCpu.
double SortCpuLb(const CostWeights& w, double rows) {
  return w.cpu_per_record * rows *
         std::max(1.0, std::log2(std::max(2.0, rows / w.dop)));
}

BoundInfo BoundNode(const dataflow::AnnotatedFlow& af,
                    const reorder::PlanPtr& plan, const CostWeights& w) {
  const dataflow::Operator& op = af.flow->op(plan->op_id);
  const OpProperties& p = af.of(plan->op_id);
  BoundInfo out;

  switch (op.kind) {
    case OpKind::kSource: {
      out.rows = static_cast<double>(op.source_rows);
      out.bytes_per_row = op.source_avg_bytes;
      return out;
    }
    case OpKind::kSink: {
      // Forward ship, no local work: the sink adds nothing to the bound.
      return BoundNode(af, plan->children[0], w);
    }
    case OpKind::kMap: {
      BoundInfo c = BoundNode(af, plan->children[0], w);
      // Exact: a Map's input is always forward-shipped and its CPU does not
      // depend on any strategy choice.
      // Same specialization discount as the candidate cost above — the bound
      // must price Maps identically to stay admissible.
      double call_unit = w.enable_chain_fusion && w.enable_chain_specialization
                             ? w.cpu_per_call_unit * kSpecializationCpuDiscount
                             : w.cpu_per_call_unit;
      out.lb = c.lb + call_unit * c.rows * op.hints.cpu_cost_per_call +
               (w.enable_chain_fusion ? 0.0 : w.cpu_per_record * c.rows);
      out.rows = c.rows * op.hints.selectivity;
      out.bytes_per_row =
          c.bytes_per_row + 9.0 * p.introduced.listed().size();
      for (const Partitioning& part : c.parts) {
        bool survives = true;
        for (AttrId a : part) {
          if (p.write.Contains(a)) {
            survives = false;
            break;
          }
        }
        if (survives) out.parts.insert(part);
      }
      return out;
    }
    case OpKind::kReduce: {
      BoundInfo c = BoundNode(af, plan->children[0], w);
      const std::vector<AttrId>& key = p.keys[0];
      double groups =
          op.hints.distinct_keys > 0
              ? std::min<double>(static_cast<double>(op.hints.distinct_keys),
                                 c.rows)
              : std::max(1.0, c.rows / 16.0);
      out.rows = groups * op.hints.selectivity;
      out.bytes_per_row =
          c.bytes_per_row + 9.0 * p.introduced.listed().size();
      double call_cpu =
          w.cpu_per_call_unit * groups * op.hints.cpu_cost_per_call;
      bool servable =
          w.enable_partition_reuse && AnyPartitioningServes(c.parts, key);
      // Cheapest case: partitioning reused AND input presorted on the key —
      // the UDF calls alone. Without a serveable partitioning (or without
      // sort-order tracking) every candidate pays the grouping sort.
      double cpu = call_cpu + ((servable && w.enable_sort_merge)
                                   ? 0.0
                                   : SortCpuLb(w, c.rows));
      double net = 0;
      if (!servable) {
        net = HashShipLb(w, c.rows * c.bytes_per_row);
        if (w.enable_combiner && p.combinable) {
          // A combiner ships only partition-local partials.
          double partials = std::min(c.rows, groups * w.dop);
          net = std::min(net, HashShipLb(w, partials * out.bytes_per_row));
        }
      }
      out.lb = c.lb + cpu + net;
      out.parts = std::move(c.parts);
      out.parts.insert(Partitioning(key.begin(), key.end()));
      return out;
    }
    case OpKind::kMatch:
    case OpKind::kCross:
    case OpKind::kCoGroup: {
      BoundInfo l = BoundNode(af, plan->children[0], w);
      BoundInfo r = BoundNode(af, plan->children[1], w);
      double lbytes = l.rows * l.bytes_per_row;
      double rbytes = r.rows * r.bytes_per_row;
      out.bytes_per_row = l.bytes_per_row + r.bytes_per_row +
                          9.0 * p.introduced.listed().size();

      if (op.kind == OpKind::kCross) {
        out.parts = std::move(l.parts);
        out.parts.insert(r.parts.begin(), r.parts.end());
        // Exact: one Cross strategy exists (broadcast the smaller side).
        out.rows = l.rows * r.rows * op.hints.selectivity;
        out.lb = l.lb + r.lb +
                 w.cpu_per_call_unit * l.rows * r.rows *
                     op.hints.cpu_cost_per_call +
                 w.cpu_per_record * (l.rows + r.rows) +
                 w.net_per_byte * std::min(lbytes, rbytes) * (w.dop - 1);
        return out;
      }

      const std::vector<AttrId>& lkey = p.keys[0];
      const std::vector<AttrId>& rkey = p.keys[1];
      double domain = op.hints.distinct_keys > 0
                          ? static_cast<double>(op.hints.distinct_keys)
                          : std::max({l.rows, r.rows, 1.0});
      out.rows = op.kind == OpKind::kCoGroup
                     ? domain * op.hints.selectivity
                     : l.rows * r.rows / domain * op.hints.selectivity;
      double calls = op.kind == OpKind::kCoGroup ? domain : out.rows;
      double call_cpu =
          w.cpu_per_call_unit * calls * op.hints.cpu_cost_per_call;
      double record_cpu = w.cpu_per_record * (l.rows + r.rows);
      bool l_served =
          w.enable_partition_reuse && AnyPartitioningServes(l.parts, lkey);
      bool r_served =
          w.enable_partition_reuse && AnyPartitioningServes(r.parts, rkey);
      double part_net = (l_served ? 0 : HashShipLb(w, lbytes)) +
                        (r_served ? 0 : HashShipLb(w, rbytes));
      double cpu, net;
      if (op.kind == OpKind::kCoGroup) {
        // Every CoGroup candidate pays call + record CPU; sorts may be free
        // (presorted inputs). No broadcast strategy exists.
        cpu = call_cpu + record_cpu;
        net = part_net;
      } else {
        // Match: the cheapest local strategy is a merge join of two
        // presorted inputs (call + half the record overhead); hash joins pay
        // the full record term plus lookup depth.
        cpu = call_cpu +
              (w.enable_sort_merge ? 0.5 : 1.0) * record_cpu;
        net = part_net;
        if (w.enable_broadcast) {
          net = std::min({net, w.net_per_byte * lbytes * (w.dop - 1),
                          w.net_per_byte * rbytes * (w.dop - 1)});
        }
      }
      out.lb = l.lb + r.lb + cpu + net;
      out.parts = std::move(l.parts);
      out.parts.insert(r.parts.begin(), r.parts.end());
      out.parts.insert(Partitioning(lkey.begin(), lkey.end()));
      out.parts.insert(Partitioning(rkey.begin(), rkey.end()));
      return out;
    }
  }
  __builtin_unreachable();
}

}  // namespace

double LowerBoundCost(const dataflow::AnnotatedFlow& af,
                      const reorder::PlanPtr& plan,
                      const CostWeights& weights) {
  return BoundNode(af, plan, weights).lb;
}

}  // namespace optimizer
}  // namespace blackbox
