#include "common/rng.h"

#include <cmath>

namespace blackbox {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  // Approximate inversion via the continuous Zipf CDF (Newman's method):
  // draw u in (0,1] and invert H(x) = (x^{1-s} - 1) / (1 - s).
  double u = NextDouble();
  if (u <= 0.0) u = 1e-12;
  if (s == 1.0) s = 1.0000001;  // avoid the harmonic singularity
  double hn = (std::pow(static_cast<double>(n), 1.0 - s) - 1.0) / (1.0 - s);
  double x = std::pow(u * hn * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
  int64_t k = static_cast<int64_t>(x);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

std::string Rng::String(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + (Next() % 26)));
  }
  return out;
}

}  // namespace blackbox
