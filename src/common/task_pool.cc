#include "common/task_pool.h"

#include <algorithm>

namespace blackbox {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

TaskPool::TaskPool(int num_threads) : num_threads_(ResolveThreads(num_threads)) {
  workers_.reserve(num_threads_ > 1 ? num_threads_ - 1 : 0);
  // The calling thread is worker 0; only the surplus gets real threads.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || !priority_queue_.empty() || !queue_.empty();
      });
      if (priority_queue_.empty() && queue_.empty()) {
        return;  // shutdown with drained queues
      }
      std::deque<std::function<void()>>& q =
          priority_queue_.empty() ? queue_ : priority_queue_;
      task = std::move(q.front());
      q.pop_front();
    }
    task();
  }
}

void TaskPool::Enqueue(std::function<void()> task, int priority) {
  std::lock_guard<std::mutex> lock(mu_);
  (priority > 0 ? priority_queue_ : queue_).push_back(std::move(task));
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& body,
                           int priority) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared per-call state: workers and the caller claim ascending indices
  // from `next`; the caller blocks until all n indices completed.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  auto drain = [state, n, &body] {
    size_t i;
    while ((i = state->next.fetch_add(1)) < n) {
      body(i);
      if (state->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min<size_t>(num_threads_ - 1, n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<std::function<void()>>& q =
        priority > 0 ? priority_queue_ : queue_;
    for (size_t i = 0; i < helpers; ++i) q.push_back(drain);
  }
  cv_.notify_all();

  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
  // Helper lambdas hold shared_ptr copies of the state, so stragglers that
  // wake after completion see a valid (exhausted) counter and exit.
}

std::future<void> TaskPool::Submit(std::function<void()> task, int priority) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (num_threads_ == 1) {
    (*packaged)();
    return future;
  }
  Enqueue([packaged] { (*packaged)(); }, priority);
  cv_.notify_one();
  return future;
}

}  // namespace blackbox
