// CancelToken — the shared interrupt signal threaded through an execution
// (DESIGN.md §2.4). One token is shared by everything that may want a query
// to stop (the serving layer's QueryHandle::Cancel, a deadline armed at
// submit) and everything that must notice (the executor's chain batch
// boundaries, the spill manager's evictions and reads, the external sort's
// merge passes, the interpreter's batch loops). The engine only ever *polls*
// — Check() at batch-granular points — so a cancelled execution unwinds
// through the ordinary Status propagation path within one batch of work,
// running every destructor on the way out: ledgers release their bytes,
// spill directories remove themselves, carves are reclaimed by the caller.
//
// Check() is designed for hot loops: one relaxed atomic load when no
// deadline is armed, plus a steady_clock read when one is. Callers inside
// per-record loops amortize it (e.g. every 64 records); per-batch callers
// call it directly.

#ifndef BLACKBOX_COMMON_CANCEL_H_
#define BLACKBOX_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace blackbox {

/// Shared cancel flag plus an optional steady-clock deadline. Thread-safe:
/// any thread may Cancel() or arm the deadline while others poll Check().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; visible to every subsequent Check().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the deadline. Checks fail with DeadlineExceeded once
  /// steady_clock::now() passes it.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when a deadline is armed and already in the past. Does not
  /// consult the cancel flag.
  bool deadline_expired() const {
    int64_t ns = deadline_ns_.load(std::memory_order_relaxed);
    return ns != kNoDeadline &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= ns;
  }

  /// The poll: OK while the execution may proceed, Cancelled after
  /// Cancel(), DeadlineExceeded once the armed deadline passed. An explicit
  /// cancel wins over an expired deadline (the caller asked first).
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (deadline_expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MIN;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace blackbox

#endif  // BLACKBOX_COMMON_CANCEL_H_
