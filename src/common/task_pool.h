// Shared concurrency substrate (DESIGN.md §2.1): a fixed worker pool with
// ParallelFor / futures plus a bounded MPMC queue for producer/consumer
// stages. Both the execution engine (per-partition operator work) and the
// optimizer (costing enumerated alternatives) run on this layer.
//
// Determinism contract: the pool schedules work in an unspecified order, so
// callers must make results independent of completion order — write into
// per-index slots, keep per-task state task-local, and merge in index order
// after Wait/ParallelFor returns. Under that discipline a computation's
// results are bit-identical for every pool size, which is what the engine's
// byte-identical-output guarantee and the optimizer's stable ranking build
// on (DESIGN.md §2.1).

#ifndef BLACKBOX_COMMON_TASK_POOL_H_
#define BLACKBOX_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace blackbox {

/// Fixed-size worker pool. With num_threads == 1 no workers are spawned and
/// every operation runs inline on the calling thread in index order — the
/// serial path stays exactly the code path the parallel one must match.
class TaskPool {
 public:
  /// num_threads <= 0 picks the hardware concurrency.
  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) and blocks until all calls returned.
  /// The calling thread participates, so progress is guaranteed even when all
  /// workers are busy with unrelated tasks. Indices are claimed in ascending
  /// order but may complete out of order; body must only touch state owned by
  /// its index. `priority` > 0 puts the helper tasks ahead of normal-priority
  /// work queued by other callers — the serving layer's lever for keeping
  /// short interactive queries ahead of long scans on a shared pool.
  /// Priority affects scheduling latency only, never results (the
  /// determinism contract above).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                   int priority = 0);

  /// Enqueues one task for the workers; `priority` > 0 jumps the queue.
  /// Pool-size 1 runs it inline before returning (the future is already
  /// ready).
  std::future<void> Submit(std::function<void()> task, int priority = 0);

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task, int priority);

  const int num_threads_;
  std::vector<std::thread> workers_;
  /// Two-level run queue: workers drain `priority_queue_` before `queue_`;
  /// FIFO within each level, so scheduling stays deterministic per level.
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> priority_queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// Bounded multi-producer/multi-consumer queue: Push blocks when full, Pop
/// blocks when empty and returns nullopt once the queue is closed and
/// drained. Used to stream enumerated plan alternatives into concurrent
/// costing without materializing a barrier between the stages.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// False if the queue was closed before the item could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all blocked producers/consumers; Pops drain remaining items.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  std::deque<T> items_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  bool closed_ = false;
};

}  // namespace blackbox

#endif  // BLACKBOX_COMMON_TASK_POOL_H_
