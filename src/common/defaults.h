// Shared defaults for the simulated cluster. The execution engine
// (engine::ExecOptions) and the cost model (optimizer::CostWeights) must
// describe the same machine by default — estimates and measured runs diverge
// silently otherwise (they once defaulted to dop 8 vs dop 32). Single source
// of truth lives here; OptimizeFlow() asserts the two agree whenever
// cost_model_follows_exec is set.

#ifndef BLACKBOX_COMMON_DEFAULTS_H_
#define BLACKBOX_COMMON_DEFAULTS_H_

namespace blackbox {

/// Default degree of parallelism of the simulated cluster (number of
/// simulated instances / hash partitions).
inline constexpr int kDefaultDop = 8;

/// Default per-instance memory budget in bytes before local strategies spill.
inline constexpr double kDefaultMemBudgetBytes = 16.0 * (1 << 20);

}  // namespace blackbox

#endif  // BLACKBOX_COMMON_DEFAULTS_H_
