// Deterministic pseudo-random number generation for data generators and
// property tests. All generators are seeded explicitly so every experiment is
// reproducible bit-for-bit.

#ifndef BLACKBOX_COMMON_RNG_H_
#define BLACKBOX_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace blackbox {

/// xorshift128+ generator: fast, deterministic, and good enough for workload
/// synthesis (we never need cryptographic quality).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to avoid the all-zero state.
    uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    auto mix = [](uint64_t& s) {
      s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
      s = (s ^ (s >> 27)) * 0x94D049BB133111EBULL;
      return s ^ (s >> 31);
    };
    s0_ = mix(z);
    z += 0x9E3779B97F4A7C15ULL;
    s1_ = mix(z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-distributed integer in [1, n]; s is the skew exponent.
  /// Uses rejection-inversion-free simple inversion over precomputable mass —
  /// adequate for our data sizes (n up to ~1e6).
  int64_t Zipf(int64_t n, double s);

  /// Random lowercase ASCII string of the given length.
  std::string String(size_t length);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace blackbox

#endif  // BLACKBOX_COMMON_RNG_H_
