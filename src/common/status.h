// RocksDB-style Status / StatusOr error handling. No exceptions cross the
// public API; every fallible operation returns a Status or StatusOr<T>.

#ifndef BLACKBOX_COMMON_STATUS_H_
#define BLACKBOX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace blackbox {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kNotSupported,
    kOutOfRange,
    kInternal,
    kCancelled,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Either a value of T or a non-OK Status. Dereferencing a non-OK StatusOr is
/// a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace blackbox

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define BLACKBOX_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::blackbox::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // BLACKBOX_COMMON_STATUS_H_
