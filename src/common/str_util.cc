#include "common/str_util.h"

namespace blackbox {

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace blackbox
