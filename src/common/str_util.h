// Small string helpers shared across modules (joining, formatting).

#ifndef BLACKBOX_COMMON_STR_UTIL_H_
#define BLACKBOX_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace blackbox {

/// Joins elements with a separator using operator<< for formatting.
template <typename Container>
std::string Join(const Container& items, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    out << item;
    first = false;
  }
  return out.str();
}

/// Splits on a single-character delimiter; empty tokens are preserved.
std::vector<std::string> Split(const std::string& text, char delim);

}  // namespace blackbox

#endif  // BLACKBOX_COMMON_STR_UTIL_H_
