// TPC-H-derived relational OLAP workloads (§7.2): the paper's modified
// queries 7 and 15, hand-crafted as PACT data flows over a synthetic TPC-H
// subset generator. Schemas are trimmed to the attributes the queries touch.
//
// Q7 (Figure 2a): lineitem shipdate filter -> five Match joins
// (l⋈s, l⋈o, o⋈c, c⋈n1, s⋈n2) -> disjunctive nation-pair filter Map ->
// Reduce with sum aggregation over (n1, n2, year).
//
// Q15 (Figure 3a): lineitem shipdate filter Map -> revenue-preparation Map ->
// Reduce summing revenue per supplier -> Match with supplier. The
// Match/Reduce exchange is the invariant-grouping (aggregation push-up)
// rewrite discussed in §7.3.

#ifndef BLACKBOX_WORKLOADS_TPCH_H_
#define BLACKBOX_WORKLOADS_TPCH_H_

#include "workloads/workload.h"

namespace blackbox {
namespace workloads {

struct TpchScale {
  int64_t suppliers = 100;
  int64_t customers = 1500;
  int64_t orders = 15000;
  int64_t lineitems = 60000;
  int64_t nations = 25;
  uint64_t seed = 42;
};

/// lineitem: 0 l_orderkey, 1 l_suppkey, 2 l_extendedprice, 3 l_discount,
///           4 l_shipdate (int yyyymmdd)
/// supplier: 0 s_suppkey, 1 s_nationkey
/// orders:   0 o_orderkey, 1 o_custkey
/// customer: 0 c_custkey, 1 c_nationkey
/// nation:   0 n_nationkey, 1 n_name
Workload MakeTpchQ7(const TpchScale& scale = {});

/// lineitem as above; supplier: 0 s_suppkey, 1 s_name, 2 s_acctbal.
Workload MakeTpchQ15(const TpchScale& scale = {});

}  // namespace workloads
}  // namespace blackbox

#endif  // BLACKBOX_WORKLOADS_TPCH_H_
