// Common scaffolding for the four evaluation workloads (§7.2): a Workload
// bundles a PACT data flow, generated source data, and expectations used by
// the benchmark harnesses. All workload UDFs are written in the TAC IR and
// carry hand-written manual annotations, so both annotation modes of Table 1
// can be exercised.

#ifndef BLACKBOX_WORKLOADS_WORKLOAD_H_
#define BLACKBOX_WORKLOADS_WORKLOAD_H_

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "dataflow/flow.h"
#include "record/record.h"
#include "sca/summary.h"

namespace blackbox {
namespace api {
class Pipeline;
}  // namespace api
}  // namespace blackbox

namespace blackbox {
namespace workloads {

/// Aborts with the builder's message if the pipeline recorded a build error.
/// Workload construction bugs must not survive into Release binaries, where
/// a plain assert would compile out.
void CheckBuild(const api::Pipeline& pipeline);

/// A complete evaluation task: flow + data.
struct Workload {
  std::string name;
  dataflow::DataFlow flow;
  /// Source operator id -> generated data (source-local record layout).
  std::map<int, DataSet> source_data;
};

/// Convenience: builds a manual LocalUdfSummary. Field writes and reads are
/// specified with the same local indices the UDF code uses.
class SummaryBuilder {
 public:
  explicit SummaryBuilder(int num_inputs) {
    s_.num_inputs = num_inputs;
    s_.reads.resize(num_inputs);
    s_.decision_reads.resize(num_inputs);
  }

  SummaryBuilder& Reads(int input, std::initializer_list<int> fields) {
    for (int f : fields) s_.reads[input].Add(f);
    return *this;
  }
  SummaryBuilder& DecisionReads(int input, std::initializer_list<int> fields) {
    for (int f : fields) {
      s_.reads[input].Add(f);
      s_.decision_reads[input].Add(f);
    }
    return *this;
  }
  SummaryBuilder& CopyOf(int input) {
    s_.out_kind = sca::OutputKind::kCopyOfInput;
    s_.copy_input = input;
    return *this;
  }
  SummaryBuilder& Projection() {
    s_.out_kind = sca::OutputKind::kProjection;
    return *this;
  }
  SummaryBuilder& Concat() {
    s_.out_kind = sca::OutputKind::kConcat;
    return *this;
  }
  SummaryBuilder& Modifies(int pos) {
    sca::FieldWrite w;
    w.out_pos = pos;
    w.kind = sca::FieldWrite::Kind::kModify;
    s_.writes.push_back(w);
    s_.max_out_pos = std::max(s_.max_out_pos, pos);
    return *this;
  }
  /// Explicit projection: setField(pos, null).
  SummaryBuilder& Projects(int pos) {
    sca::FieldWrite w;
    w.out_pos = pos;
    w.kind = sca::FieldWrite::Kind::kExplicitProject;
    s_.writes.push_back(w);
    s_.max_out_pos = std::max(s_.max_out_pos, pos);
    return *this;
  }
  SummaryBuilder& Keeps(int pos, int from_input, int from_field) {
    sca::FieldWrite w;
    w.out_pos = pos;
    w.kind = sca::FieldWrite::Kind::kExplicitCopy;
    w.from_input = from_input;
    w.from_field = from_field;
    s_.writes.push_back(w);
    s_.reads[from_input].Add(from_field);
    s_.max_out_pos = std::max(s_.max_out_pos, pos);
    return *this;
  }
  SummaryBuilder& Emits(int min_emits, int max_emits) {
    s_.min_emits = min_emits;
    s_.max_emits = max_emits;
    return *this;
  }

  sca::LocalUdfSummary Build() const { return s_; }

 private:
  sca::LocalUdfSummary s_;
};

/// Builds a Match UDF that concatenates both input records and emits the
/// result — the plain equi-join UDF used throughout the workloads.
std::shared_ptr<const tac::Function> MakeConcatJoinUdf(const std::string& name);

/// Manual summary of MakeConcatJoinUdf.
sca::LocalUdfSummary ConcatJoinSummary();

}  // namespace workloads
}  // namespace blackbox

#endif  // BLACKBOX_WORKLOADS_WORKLOAD_H_
