// Biomedical text-mining task (§7.2, Figure 6): a pipeline of Map operators
// applying (simulated) NLP components to a sentence corpus. Each extraction
// component both filters and annotates; dependencies between components limit
// the valid reorderings:
//
//   docs -> Preprocess (tokenize; everything depends on its output)
//        -> { GeneNER, DrugNER, AbbrevResolver, SentenceRefiner }  (free order)
//        -> RelationExtract (reads all four annotations; must run last)
//        -> sink
//
// The four middle components commute pairwise, giving 4! = 24 valid orders —
// the paper's Table 1 count for this task. Components carry calibrated CPU
// burn so that plan order dominates runtime (Figure 6's ~10x spread between
// running cheap selective filters first vs. expensive annotators first).

#ifndef BLACKBOX_WORKLOADS_TEXTMINING_H_
#define BLACKBOX_WORKLOADS_TEXTMINING_H_

#include "workloads/workload.h"

namespace blackbox {
namespace workloads {

struct TextMiningScale {
  int64_t documents = 20000;
  double gene_fraction = 0.30;  // sentences mentioning a gene
  double drug_fraction = 0.25;  // sentences mentioning a drug
  // Simulated per-call CPU work units of each component.
  int64_t preprocess_burn = 300;
  int64_t gene_burn = 1200;
  int64_t drug_burn = 1500;
  int64_t abbrev_burn = 25000;
  int64_t sentence_burn = 20000;
  int64_t relation_burn = 5000;
  uint64_t seed = 11;
};

Workload MakeTextMining(const TextMiningScale& scale = {});

}  // namespace workloads
}  // namespace blackbox

#endif  // BLACKBOX_WORKLOADS_TEXTMINING_H_
