// Weblog clickstream processing task (§7.2, Figure 4): extract click
// sessions that lead to buy actions and augment them with user information.
//
//   click(session_id, ts, action, url)
//     -> Reduce "filter buy sessions"   (key: session_id; emits the whole
//                                        session iff it contains a buy)
//     -> Reduce "condense sessions"     (key: session_id; one record per
//                                        session with count + first ts)
//     -> Match  "filter logged-in"      (⋈ login(session_id, user_id);
//                                        login.session_id is unique)
//     -> Match  "append user info"      (⋈ user(user_id, name, age, segment))
//     -> sink
//
// The "append user info" UDF reads one of the login-side fields through a
// *computed* field index. Its manual annotation states the true read set
// ({login.session_id, login.user_id}); static code analysis cannot resolve
// the index and conservatively widens the read set to the whole left input —
// which blocks one otherwise-valid join rotation. This reproduces the paper's
// Table 1 row (4 orders with manual annotations, 3 with SCA).

#ifndef BLACKBOX_WORKLOADS_CLICKSTREAM_H_
#define BLACKBOX_WORKLOADS_CLICKSTREAM_H_

#include "workloads/workload.h"

namespace blackbox {
namespace workloads {

struct ClickstreamScale {
  int64_t sessions = 4000;
  int64_t avg_clicks_per_session = 10;
  int64_t users = 800;
  double buy_fraction = 0.25;       // sessions containing a buy action
  double logged_in_fraction = 0.4;  // sessions with a login record
  uint64_t seed = 7;
};

Workload MakeClickstream(const ClickstreamScale& scale = {});

}  // namespace workloads
}  // namespace blackbox

#endif  // BLACKBOX_WORKLOADS_CLICKSTREAM_H_
