#include "workloads/clickstream.h"

#include <cassert>

#include "api/pipeline.h"

namespace blackbox {
namespace workloads {

using api::Pipeline;
using api::Stream;
using dataflow::Hints;
using dataflow::KatBehavior;
using tac::FunctionBuilder;
using tac::Reg;
using tac::UdfKind;

namespace {

std::shared_ptr<const tac::Function> Built(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

}  // namespace

Workload MakeClickstream(const ClickstreamScale& scale) {
  Workload w;
  w.name = "clickstream";
  Rng rng(scale.seed);

  Pipeline p;
  // click: 0 session_id, 1 ts, 2 action (1 = buy), 3 url
  int64_t total_clicks = scale.sessions * scale.avg_clicks_per_session;
  Stream click = p.Source("click", 4, {.rows = total_clicks,
                                       .avg_bytes = 60});
  // login: 0 session_id (unique), 1 user_id
  int64_t logins =
      static_cast<int64_t>(scale.sessions * scale.logged_in_fraction);
  Stream login = p.Source("login", 2, {.rows = logins,
                                       .avg_bytes = 18,
                                       .unique_fields = {0}});
  // user: 0 user_id (unique), 1 name, 2 age, 3 segment
  Stream user = p.Source("user", 4, {.rows = scale.users,
                                     .avg_bytes = 46,
                                     .unique_fields = {0}});

  // --- R1: filter buy sessions (all-or-nothing per key group). ---
  std::shared_ptr<const tac::Function> filter_buy;
  {
    FunctionBuilder b("filter_buy_sessions", 1, UdfKind::kKat);
    Reg n = b.InputCount(0);
    Reg i = b.ConstInt(0);
    Reg found = b.ConstInt(0);
    tac::Label scan = b.NewLabel();
    tac::Label scanned = b.NewLabel();
    b.Bind(scan);
    b.BranchIfFalse(b.CmpLt(i, n), scanned);
    Reg r = b.InputAt(0, i);
    Reg action = b.GetField(r, 2);
    Reg is_buy = b.CmpEq(action, b.ConstInt(1));
    tac::Label next = b.NewLabel();
    b.BranchIfFalse(is_buy, next);
    b.Assign(found, b.ConstInt(1));
    b.Bind(next);
    b.AccumAdd(i, b.ConstInt(1));
    b.Goto(scan);
    b.Bind(scanned);
    tac::Label out = b.NewLabel();
    b.BranchIfFalse(found, out);
    Reg j = b.ConstInt(0);
    tac::Label emit_loop = b.NewLabel();
    b.Bind(emit_loop);
    b.BranchIfFalse(b.CmpLt(j, n), out);
    Reg rec = b.InputAt(0, j);
    Reg copy = b.Copy(rec);
    b.Emit(copy);
    b.AccumAdd(j, b.ConstInt(1));
    b.Goto(emit_loop);
    b.Bind(out);
    b.Return();
    filter_buy = Built(std::move(b));
  }
  Hints r1_hints;
  r1_hints.selectivity =
      scale.buy_fraction * static_cast<double>(scale.avg_clicks_per_session);
  r1_hints.distinct_keys = scale.sessions;
  Stream r1 = click.ReduceBy("filter_buy_sessions", {0}, filter_buy,
                             {.hints = r1_hints,
                              .summary = SummaryBuilder(1)
                                             .CopyOf(0)
                                             .DecisionReads(0, {2})
                                             .Emits(0, -1)
                                             .Build(),
                              .kat_behavior = KatBehavior::kGroupWiseFilter});

  // --- R2: condense each session into one record: first record + click
  // count (field 4) + first timestamp (field 5). ---
  std::shared_ptr<const tac::Function> condense;
  {
    FunctionBuilder b("condense_sessions", 1, UdfKind::kKat);
    Reg n = b.InputCount(0);
    Reg i = b.ConstInt(1);
    Reg first = b.InputAt(0, b.ConstInt(0));
    Reg min_ts = b.GetField(first, 1);
    tac::Label loop = b.NewLabel();
    tac::Label done = b.NewLabel();
    b.Bind(loop);
    b.BranchIfFalse(b.CmpLt(i, n), done);
    Reg r = b.InputAt(0, i);
    Reg ts = b.GetField(r, 1);
    tac::Label keep = b.NewLabel();
    b.BranchIfFalse(b.CmpLt(ts, min_ts), keep);
    b.Assign(min_ts, ts);
    b.Bind(keep);
    b.AccumAdd(i, b.ConstInt(1));
    b.Goto(loop);
    b.Bind(done);
    Reg out = b.Copy(first);
    b.SetField(out, 4, n);
    b.SetField(out, 5, min_ts);
    b.Emit(out);
    b.Return();
    condense = Built(std::move(b));
  }
  Hints r2_hints;
  r2_hints.selectivity = 1.0;
  r2_hints.distinct_keys = scale.sessions;
  Stream r2 = r1.ReduceBy("condense_sessions", {0}, condense,
                          {.hints = r2_hints,
                           .summary = SummaryBuilder(1)
                                          .CopyOf(0)
                                          .Reads(0, {1})
                                          .Modifies(4)
                                          .Modifies(5)
                                          .Emits(1, 1)
                                          .Build()});

  // --- M1: keep only sessions of logged-in users (join with login). ---
  // Left schema: click 0-3 | condensed 4-5; right: login 0-1 (-> 6-7).
  Hints m1_hints;
  m1_hints.distinct_keys = scale.sessions;
  Stream m1 = r2.MatchWith("filter_logged_in_sessions", login, {0}, {0},
                           MakeConcatJoinUdf("filter_logged_in_sessions"),
                           {.hints = m1_hints,
                            .summary = ConcatJoinSummary()});

  // --- M2: append user info; computes an engagement attribute from a
  // login-side field selected by a *computed* index (6 + segment % 2). ---
  std::shared_ptr<const tac::Function> append_user;
  {
    FunctionBuilder b("append_user_info", 2, UdfKind::kRat);
    Reg l = b.InputRecord(0);
    Reg u = b.InputRecord(1);
    Reg seg = b.GetField(u, 3);
    Reg idx = b.Add(b.ConstInt(6), b.Mod(seg, b.ConstInt(2)));
    Reg v = b.GetFieldDyn(l, idx);
    Reg out = b.Concat(l, u);
    b.SetField(out, 12, b.Add(v, seg));
    b.Emit(out);
    b.Return();
    append_user = Built(std::move(b));
  }
  Hints m2_hints;
  m2_hints.distinct_keys = scale.users;
  // True read set: only the two login-side fields (local 6, 7) and the user
  // segment — what a developer (or a sharper analysis) would annotate.
  Stream m2 = m1.MatchWith("append_user_info", user, {7}, {0}, append_user,
                           {.hints = m2_hints,
                            .summary = SummaryBuilder(2)
                                           .Concat()
                                           .Reads(0, {6, 7})
                                           .Reads(1, {3})
                                           .Modifies(12)
                                           .Emits(1, 1)
                                           .Build()});

  m2.Sink("clickstream_sink");
  CheckBuild(p);
  w.flow = p.flow();

  // --- Data ---
  DataSet clicks;
  DataSet login_data;
  for (int64_t sid = 0; sid < scale.sessions; ++sid) {
    bool buys = rng.Chance(scale.buy_fraction);
    int64_t n = std::max<int64_t>(
        1, rng.Uniform(1, 2 * scale.avg_clicks_per_session - 1));
    int64_t buy_at = buys ? rng.Uniform(0, n - 1) : -1;
    for (int64_t k = 0; k < n; ++k) {
      Record r;
      r.Append(Value(sid));
      r.Append(Value(rng.Uniform(1'000'000, 2'000'000)));
      r.Append(Value(k == buy_at ? int64_t{1} : int64_t{0}));
      r.Append(Value("/shop/item/" + std::to_string(rng.Uniform(0, 9999))));
      clicks.Add(std::move(r));
    }
    if (rng.Chance(scale.logged_in_fraction)) {
      Record r;
      r.Append(Value(sid));
      r.Append(Value(rng.Uniform(0, scale.users - 1)));
      login_data.Add(std::move(r));
    }
  }
  w.source_data[click.id()] = std::move(clicks);
  w.source_data[login.id()] = std::move(login_data);

  DataSet users;
  for (int64_t uid = 0; uid < scale.users; ++uid) {
    Record r;
    r.Append(Value(uid));
    r.Append(Value("user_" + rng.String(8)));
    r.Append(Value(rng.Uniform(18, 80)));
    r.Append(Value(rng.Uniform(0, 5)));
    users.Add(std::move(r));
  }
  w.source_data[user.id()] = std::move(users);

  return w;
}

}  // namespace workloads
}  // namespace blackbox
