#include "workloads/workload.h"

namespace blackbox {
namespace workloads {

std::shared_ptr<const tac::Function> MakeConcatJoinUdf(
    const std::string& name) {
  tac::FunctionBuilder b(name, 2, tac::UdfKind::kRat);
  tac::Reg l = b.InputRecord(0);
  tac::Reg r = b.InputRecord(1);
  tac::Reg out = b.Concat(l, r);
  b.Emit(out);
  b.Return();
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

sca::LocalUdfSummary ConcatJoinSummary() {
  return SummaryBuilder(2).Concat().Emits(1, 1).Build();
}

}  // namespace workloads
}  // namespace blackbox
