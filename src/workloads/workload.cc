#include "workloads/workload.h"

#include <cstdio>
#include <cstdlib>

#include "api/pipeline.h"

namespace blackbox {
namespace workloads {

void CheckBuild(const api::Pipeline& pipeline) {
  if (!pipeline.status().ok()) {
    std::fprintf(stderr, "workload build error: %s\n",
                 pipeline.status().ToString().c_str());
    std::abort();
  }
}

std::shared_ptr<const tac::Function> MakeConcatJoinUdf(
    const std::string& name) {
  tac::FunctionBuilder b(name, 2, tac::UdfKind::kRat);
  tac::Reg l = b.InputRecord(0);
  tac::Reg r = b.InputRecord(1);
  tac::Reg out = b.Concat(l, r);
  b.Emit(out);
  b.Return();
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

sca::LocalUdfSummary ConcatJoinSummary() {
  return SummaryBuilder(2).Concat().Emits(1, 1).Build();
}

}  // namespace workloads
}  // namespace blackbox
