#include "workloads/tpch.h"

#include <cassert>

#include "api/pipeline.h"

namespace blackbox {
namespace workloads {

using api::OpOptions;
using api::Pipeline;
using api::SourceOptions;
using api::Stream;
using dataflow::Hints;
using tac::FunctionBuilder;
using tac::Reg;
using tac::UdfKind;

namespace {

constexpr int64_t kDateLo = 19950101;
constexpr int64_t kDateHi = 19951231;
// Q7 keeps a two-month shipdate window (~1/6 of the lineitems), which gives
// the filter placement the weight it has in the paper's evaluation.
constexpr int64_t kQ7FilterLo = 19950101;
constexpr int64_t kQ7FilterHi = 19950228;
// Q15 uses a one-quarter window.
constexpr int64_t kQ15FilterLo = 19950101;
constexpr int64_t kQ15FilterHi = 19950331;

std::shared_ptr<const tac::Function> Built(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

/// Map: emits a copy of the record iff lo <= shipdate(field) <= hi.
std::shared_ptr<const tac::Function> MakeShipdateFilter(
    const std::string& name, int field, int64_t lo, int64_t hi) {
  FunctionBuilder b(name, 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg d = b.GetField(ir, field);
  Reg ok = b.And(b.CmpGe(d, b.ConstInt(lo)), b.CmpLe(d, b.ConstInt(hi)));
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(ok, skip);
  Reg out = b.Copy(ir);
  b.Emit(out);
  b.Bind(skip);
  b.Return();
  return Built(std::move(b));
}

sca::LocalUdfSummary ShipdateFilterSummary(int field) {
  return SummaryBuilder(1)
      .CopyOf(0)
      .DecisionReads(0, {field})
      .Emits(0, 1)
      .Build();
}

DataSet GenNation(int64_t n) {
  DataSet ds;
  for (int64_t i = 0; i < n; ++i) {
    Record r;
    r.Append(Value(i));
    r.Append(Value("NATION" + std::to_string(i)));
    ds.Add(std::move(r));
  }
  return ds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Q7
// ---------------------------------------------------------------------------

Workload MakeTpchQ7(const TpchScale& scale) {
  Workload w;
  w.name = "tpch_q7";
  Rng rng(scale.seed);

  Pipeline p;

  // --- Sources ---
  Stream li = p.Source("lineitem", 5, {.rows = scale.lineitems,
                                       .avg_bytes = 48});
  Stream s = p.Source("supplier", 2, {.rows = scale.suppliers,
                                      .avg_bytes = 20,
                                      .unique_fields = {0}});
  Stream o = p.Source("orders", 2, {.rows = scale.orders,
                                    .avg_bytes = 20,
                                    .unique_fields = {0}});
  Stream c = p.Source("customer", 2, {.rows = scale.customers,
                                      .avg_bytes = 20,
                                      .unique_fields = {0}});
  Stream n1 = p.Source("nation1", 2, {.rows = scale.nations,
                                      .avg_bytes = 24,
                                      .unique_fields = {0}});
  Stream n2 = p.Source("nation2", 2, {.rows = scale.nations,
                                      .avg_bytes = 24,
                                      .unique_fields = {0}});

  // --- σ: shipdate filter + derived year and volume attributes ---
  // (fields 5 = year, 6 = volume appended to the lineitem record).
  std::shared_ptr<const tac::Function> sigma;
  {
    FunctionBuilder b("q7_filter_prepare", 1, UdfKind::kRat);
    Reg ir = b.InputRecord(0);
    Reg d = b.GetField(ir, 4);
    Reg ok = b.And(b.CmpGe(d, b.ConstInt(kQ7FilterLo)),
                   b.CmpLe(d, b.ConstInt(kQ7FilterHi)));
    tac::Label skip = b.NewLabel();
    b.BranchIfFalse(ok, skip);
    Reg out = b.Copy(ir);
    Reg year = b.Div(d, b.ConstInt(10000));
    b.SetField(out, 5, year);
    Reg price = b.GetField(ir, 2);
    Reg disc = b.GetField(ir, 3);
    Reg volume = b.Sub(price, b.Mul(price, disc));
    b.SetField(out, 6, volume);
    b.Emit(out);
    b.Bind(skip);
    b.Return();
    sigma = Built(std::move(b));
  }
  Hints sigma_hints;
  sigma_hints.selectivity = 0.165;
  Stream sig = li.Map("q7_filter_prepare", sigma,
                      {.hints = sigma_hints,
                       .summary = SummaryBuilder(1)
                                      .CopyOf(0)
                                      .DecisionReads(0, {4})
                                      .Reads(0, {2, 3})
                                      .Modifies(5)
                                      .Modifies(6)
                                      .Emits(0, 1)
                                      .Build()});

  // --- Join spine; every join UDF concatenates and emits. ---
  // Left-input widths: σ output = 7 fields; each join appends the right side.
  auto join_opts = [](int64_t distinct) {
    OpOptions opts;
    opts.hints.distinct_keys = distinct;
    opts.summary = ConcatJoinSummary();
    return opts;
  };
  Stream jls = sig.MatchWith("q7_join_l_s", s, {1}, {0},
                             MakeConcatJoinUdf("q7_join_l_s"),
                             join_opts(scale.suppliers));
  // schema now: lineitem 0-6 | supplier 7-8
  Stream jlo = jls.MatchWith("q7_join_l_o", o, {0}, {0},
                             MakeConcatJoinUdf("q7_join_l_o"),
                             join_opts(scale.orders));
  // schema: l 0-6 | s 7-8 | o 9-10
  Stream joc = jlo.MatchWith("q7_join_o_c", c, {10}, {0},
                             MakeConcatJoinUdf("q7_join_o_c"),
                             join_opts(scale.customers));
  // schema: l 0-6 | s 7-8 | o 9-10 | c 11-12
  Stream jcn1 = joc.MatchWith("q7_join_c_n1", n1, {12}, {0},
                              MakeConcatJoinUdf("q7_join_c_n1"),
                              join_opts(scale.nations));
  // schema: ... | n1 13-14
  Stream jsn2 = jcn1.MatchWith("q7_join_s_n2", n2, {8}, {0},
                               MakeConcatJoinUdf("q7_join_s_n2"),
                               join_opts(scale.nations));
  // schema: ... | n2 15-16

  // --- γ: group by (n1 name, n2 name, year), sum volume *in place* into
  // field 6 and null every carried non-key field. The in-place associative
  // aggregate makes the Reduce combinable (OpProperties::combinable), so the
  // optimizer may pre-aggregate below the shuffle — the γ input is the full
  // join output (~10k wide rows over nations² groups), so the combiner's
  // shuffled-byte reduction is the headline effect of the ablation bench.
  // The explicit projection of the other carried fields makes the output a
  // pure function of the group key and the aggregate, so every reordered /
  // re-strategized plan produces byte-identical sink rows (the differential
  // oracle's contract).
  constexpr int kQ7NulledFields[] = {0, 1, 2, 3, 4, 7, 8, 9, 10, 11, 12, 13,
                                     15};
  std::shared_ptr<const tac::Function> gamma;
  {
    FunctionBuilder b("q7_sum_volume", 1, UdfKind::kKat);
    Reg n = b.InputCount(0);
    Reg i = b.ConstInt(0);
    Reg sum = b.ConstInt(0);
    tac::Label loop = b.NewLabel();
    tac::Label done = b.NewLabel();
    b.Bind(loop);
    Reg cont = b.CmpLt(i, n);
    b.BranchIfFalse(cont, done);
    Reg r = b.InputAt(0, i);
    Reg v = b.GetField(r, 6);
    b.AccumAdd(sum, v);
    b.AccumAdd(i, b.ConstInt(1));
    b.Goto(loop);
    b.Bind(done);
    Reg first = b.InputAt(0, b.ConstInt(0));
    Reg out = b.Copy(first);
    b.SetField(out, 6, sum);
    Reg null = b.ConstNull();
    for (int f : kQ7NulledFields) b.SetField(out, f, null);
    b.Emit(out);
    b.Return();
    gamma = Built(std::move(b));
  }
  Hints gamma_hints;
  gamma_hints.distinct_keys = scale.nations * scale.nations;  // pair domain
  gamma_hints.selectivity = 1.0;
  SummaryBuilder gamma_summary(1);
  gamma_summary.CopyOf(0).Reads(0, {6}).Modifies(6).Emits(1, 1);
  for (int f : kQ7NulledFields) gamma_summary.Projects(f);
  Stream gam = jsn2.ReduceBy("q7_sum_volume", {14, 16, 5}, gamma,
                             {.hints = gamma_hints,
                              .summary = gamma_summary.Build()});

  // --- Disjunctive nation-pair filter over the aggregate (implemented as a
  // Map, like the paper's handling of the circular join predicate). It also
  // reads the aggregated volume (total != 0), so it is pinned above γ by a
  // read/write conflict on field 6. ---
  std::shared_ptr<const tac::Function> disj;
  {
    FunctionBuilder b("q7_nation_pair_filter", 1, UdfKind::kRat);
    Reg ir = b.InputRecord(0);
    Reg a = b.GetField(ir, 14);
    Reg bb = b.GetField(ir, 16);
    Reg tv = b.GetField(ir, 6);
    Reg x = b.ConstStr("NATION3");
    Reg y = b.ConstStr("NATION7");
    Reg c1 = b.And(b.CmpEq(a, x), b.CmpEq(bb, y));
    Reg c2 = b.And(b.CmpEq(a, y), b.CmpEq(bb, x));
    Reg ok = b.And(b.Or(c1, c2), b.CmpNe(tv, b.ConstInt(0)));
    tac::Label skip = b.NewLabel();
    b.BranchIfFalse(ok, skip);
    Reg out = b.Copy(ir);
    b.Emit(out);
    b.Bind(skip);
    b.Return();
    disj = Built(std::move(b));
  }
  Hints disj_hints;
  disj_hints.selectivity =
      2.0 / (static_cast<double>(scale.nations) * scale.nations);
  Stream dis = gam.Map("q7_nation_pair_filter", disj,
                       {.hints = disj_hints,
                        .summary = SummaryBuilder(1)
                                       .CopyOf(0)
                                       .DecisionReads(0, {14, 16, 6})
                                       .Emits(0, 1)
                                       .Build()});

  dis.Sink("q7_sink");
  CheckBuild(p);
  w.flow = p.flow();

  // --- Data ---
  {
    DataSet lineitem;
    for (int64_t i = 0; i < scale.lineitems; ++i) {
      Record r;
      // TPC-H lineitem is clustered by l_orderkey (an order's items are
      // generated together); keep that layout — the zone-map run skipping
      // on the l⋈o join (DESIGN.md §2.5) exists for exactly this kind of
      // key-clustered table.
      r.Append(Value(i * scale.orders / scale.lineitems));  // l_orderkey
      r.Append(Value(rng.Uniform(0, scale.suppliers - 1))); // l_suppkey
      r.Append(Value(rng.Uniform(100, 99999)));             // extendedprice
      r.Append(Value(rng.Uniform(0, 10)));                  // discount (%)
      r.Append(Value(rng.Uniform(kDateLo, kDateHi)));       // shipdate
      lineitem.Add(std::move(r));
    }
    w.source_data[li.id()] = std::move(lineitem);

    DataSet supplier;
    for (int64_t i = 0; i < scale.suppliers; ++i) {
      Record r;
      r.Append(Value(i));
      r.Append(Value(rng.Uniform(0, scale.nations - 1)));
      supplier.Add(std::move(r));
    }
    w.source_data[s.id()] = std::move(supplier);

    DataSet orders;
    for (int64_t i = 0; i < scale.orders; ++i) {
      Record r;
      r.Append(Value(i));
      r.Append(Value(rng.Uniform(0, scale.customers - 1)));
      orders.Add(std::move(r));
    }
    w.source_data[o.id()] = std::move(orders);

    DataSet customer;
    for (int64_t i = 0; i < scale.customers; ++i) {
      Record r;
      r.Append(Value(i));
      r.Append(Value(rng.Uniform(0, scale.nations - 1)));
      customer.Add(std::move(r));
    }
    w.source_data[c.id()] = std::move(customer);

    w.source_data[n1.id()] = GenNation(scale.nations);
    w.source_data[n2.id()] = GenNation(scale.nations);
  }
  return w;
}

// ---------------------------------------------------------------------------
// Q15
// ---------------------------------------------------------------------------

Workload MakeTpchQ15(const TpchScale& scale) {
  Workload w;
  w.name = "tpch_q15";
  Rng rng(scale.seed + 1);

  Pipeline p;
  Stream li = p.Source("lineitem", 4, {.rows = scale.lineitems,
                                       .avg_bytes = 40});
  Stream s = p.Source("supplier", 3, {.rows = scale.suppliers,
                                      .avg_bytes = 40,
                                      .unique_fields = {0}});

  // σ: shipdate filter on field 3 (must see the raw date format, hence it can
  // never move above the normalizing Map below).
  Hints sigma_hints;
  sigma_hints.selectivity = 0.25;
  Stream sig = li.Map("q15_filter_shipdate",
                      MakeShipdateFilter("q15_filter_shipdate", 3,
                                         kQ15FilterLo, kQ15FilterHi),
                      {.hints = sigma_hints,
                       .summary = ShipdateFilterSummary(3)});

  // π: normalizes the shipdate in place (writes field 3) and appends the
  // per-record revenue as field 4.
  std::shared_ptr<const tac::Function> prep;
  {
    FunctionBuilder b("q15_prepare", 1, UdfKind::kRat);
    Reg ir = b.InputRecord(0);
    Reg price = b.GetField(ir, 1);
    Reg disc = b.GetField(ir, 2);
    Reg date = b.GetField(ir, 3);
    Reg out = b.Copy(ir);
    Reg norm = b.Sub(date, b.ConstInt(kDateLo));
    b.SetField(out, 3, norm);
    Reg hundred = b.ConstInt(100);
    Reg rev = b.Sub(b.Mul(price, hundred), b.Mul(price, disc));
    b.SetField(out, 4, rev);
    b.Emit(out);
    b.Return();
    prep = Built(std::move(b));
  }
  Stream pre = sig.Map("q15_prepare", prep,
                       {.summary = SummaryBuilder(1)
                                       .CopyOf(0)
                                       .Reads(0, {1, 2, 3})
                                       .Modifies(3)
                                       .Modifies(4)
                                       .Emits(1, 1)
                                       .Build()});

  // γ: total revenue per supplier key, appended as field 5.
  std::shared_ptr<const tac::Function> gamma;
  {
    FunctionBuilder b("q15_sum_revenue", 1, UdfKind::kKat);
    Reg n = b.InputCount(0);
    Reg i = b.ConstInt(0);
    Reg sum = b.ConstInt(0);
    tac::Label loop = b.NewLabel();
    tac::Label done = b.NewLabel();
    b.Bind(loop);
    b.BranchIfFalse(b.CmpLt(i, n), done);
    Reg r = b.InputAt(0, i);
    b.AccumAdd(sum, b.GetField(r, 4));
    b.AccumAdd(i, b.ConstInt(1));
    b.Goto(loop);
    b.Bind(done);
    Reg out = b.Copy(b.InputAt(0, b.ConstInt(0)));
    b.SetField(out, 5, sum);
    b.Emit(out);
    b.Return();
    gamma = Built(std::move(b));
  }
  Hints gamma_hints;
  gamma_hints.distinct_keys = scale.suppliers;
  Stream gam = pre.ReduceBy("q15_sum_revenue", {0}, gamma,
                            {.hints = gamma_hints,
                             .summary = SummaryBuilder(1)
                                            .CopyOf(0)
                                            .Reads(0, {4})
                                            .Modifies(5)
                                            .Emits(1, 1)
                                            .Build()});

  // Match with supplier (PK side) on s_suppkey = l_suppkey.
  Hints join_hints;
  join_hints.distinct_keys = scale.suppliers;
  Stream join = s.MatchWith("q15_join_supplier", gam, {0}, {0},
                            MakeConcatJoinUdf("q15_join_supplier"),
                            {.hints = join_hints,
                             .summary = ConcatJoinSummary()});

  join.Sink("q15_sink");
  CheckBuild(p);
  w.flow = p.flow();

  // --- Data ---
  DataSet lineitem;
  for (int64_t i = 0; i < scale.lineitems; ++i) {
    Record r;
    r.Append(Value(rng.Uniform(0, scale.suppliers - 1)));  // l_suppkey
    r.Append(Value(rng.Uniform(100, 99999)));              // extendedprice
    r.Append(Value(rng.Uniform(0, 10)));                   // discount (%)
    r.Append(Value(rng.Uniform(kDateLo, kDateHi)));        // shipdate
    lineitem.Add(std::move(r));
  }
  w.source_data[li.id()] = std::move(lineitem);

  DataSet supplier;
  for (int64_t i = 0; i < scale.suppliers; ++i) {
    Record r;
    r.Append(Value(i));
    r.Append(Value("supplier_" + std::to_string(i)));
    r.Append(Value(rng.Uniform(0, 100000)));
    supplier.Add(std::move(r));
  }
  w.source_data[s.id()] = std::move(supplier);

  return w;
}

}  // namespace workloads
}  // namespace blackbox
