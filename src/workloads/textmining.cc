#include "workloads/textmining.h"

#include <cassert>

#include "api/pipeline.h"

namespace blackbox {
namespace workloads {

using api::Pipeline;
using api::Stream;
using dataflow::Hints;
using tac::FunctionBuilder;
using tac::Reg;
using tac::UdfKind;

namespace {

std::shared_ptr<const tac::Function> Built(FunctionBuilder&& b) {
  StatusOr<tac::Function> fn = b.Build();
  assert(fn.ok());
  return std::make_shared<const tac::Function>(std::move(fn).value());
}

/// An annotating NER-style component: burns CPU, reads the token field,
/// filters records lacking the marker substring, and appends a mention hash.
std::shared_ptr<const tac::Function> MakeNer(const std::string& name,
                                             const std::string& marker,
                                             int out_field, int64_t burn) {
  FunctionBuilder b(name, 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg tok = b.GetField(ir, 2);
  b.CpuBurn(burn);
  Reg hit = b.StrContains(tok, b.ConstStr(marker));
  tac::Label skip = b.NewLabel();
  b.BranchIfFalse(hit, skip);
  Reg out = b.Copy(ir);
  b.SetField(out, out_field, b.StrHashMod(tok, 1000));
  b.Emit(out);
  b.Bind(skip);
  b.Return();
  return Built(std::move(b));
}

/// A non-filtering annotator: burns CPU and appends a derived attribute.
std::shared_ptr<const tac::Function> MakeAnnotator(const std::string& name,
                                                   int out_field,
                                                   int64_t burn, int64_t mod) {
  FunctionBuilder b(name, 1, UdfKind::kRat);
  Reg ir = b.InputRecord(0);
  Reg tok = b.GetField(ir, 2);
  b.CpuBurn(burn);
  Reg out = b.Copy(ir);
  b.SetField(out, out_field, b.StrHashMod(tok, mod));
  b.Emit(out);
  b.Return();
  return Built(std::move(b));
}

sca::LocalUdfSummary NerSummary(int out_field) {
  return SummaryBuilder(1)
      .CopyOf(0)
      .DecisionReads(0, {2})
      .Modifies(out_field)
      .Emits(0, 1)
      .Build();
}

sca::LocalUdfSummary AnnotatorSummary(int out_field) {
  return SummaryBuilder(1)
      .CopyOf(0)
      .Reads(0, {2})
      .Modifies(out_field)
      .Emits(1, 1)
      .Build();
}

}  // namespace

Workload MakeTextMining(const TextMiningScale& scale) {
  Workload w;
  w.name = "textmining";
  Rng rng(scale.seed);

  Pipeline p;
  // docs: 0 doc_id, 1 text
  Stream docs = p.Source("docs", 2, {.rows = scale.documents,
                                     .avg_bytes = 180});

  // --- Preprocess: tokenization + POS tagging; appends the token field (2)
  // and filters empty sentences. Everything downstream reads field 2, so
  // Preprocess is pinned to the front by read/write conflicts alone. ---
  std::shared_ptr<const tac::Function> prep;
  {
    FunctionBuilder b("preprocess", 1, UdfKind::kRat);
    Reg ir = b.InputRecord(0);
    Reg text = b.GetField(ir, 1);
    b.CpuBurn(scale.preprocess_burn);
    Reg len = b.StrLen(text);
    tac::Label skip = b.NewLabel();
    b.BranchIfFalse(b.CmpGt(len, b.ConstInt(0)), skip);
    Reg out = b.Copy(ir);
    Reg toks = b.StrConcat(text, b.ConstStr("|tokenized"));
    b.SetField(out, 2, toks);
    b.Emit(out);
    b.Bind(skip);
    b.Return();
    prep = Built(std::move(b));
  }
  Hints prep_hints;
  prep_hints.selectivity = 1.0;
  prep_hints.cpu_cost_per_call = static_cast<double>(scale.preprocess_burn);
  Stream pre = docs.Map("preprocess", prep,
                        {.hints = prep_hints,
                         .summary = SummaryBuilder(1)
                                        .CopyOf(0)
                                        .DecisionReads(0, {1})
                                        .Modifies(2)
                                        .Emits(0, 1)
                                        .Build()});

  // --- Four independent components over the token field. ---
  Hints gene_hints;
  gene_hints.selectivity = scale.gene_fraction;
  gene_hints.cpu_cost_per_call = static_cast<double>(scale.gene_burn);
  Stream gene = pre.Map("gene_ner",
                        MakeNer("gene_ner", "gene", 3, scale.gene_burn),
                        {.hints = gene_hints, .summary = NerSummary(3)});

  Hints drug_hints;
  drug_hints.selectivity = scale.drug_fraction;
  drug_hints.cpu_cost_per_call = static_cast<double>(scale.drug_burn);
  Stream drug = gene.Map("drug_ner",
                         MakeNer("drug_ner", "drug", 4, scale.drug_burn),
                         {.hints = drug_hints, .summary = NerSummary(4)});

  Hints abbrev_hints;
  abbrev_hints.selectivity = 1.0;
  abbrev_hints.cpu_cost_per_call = static_cast<double>(scale.abbrev_burn);
  Stream abbrev = drug.Map("abbrev_resolver",
                           MakeAnnotator("abbrev_resolver", 5,
                                         scale.abbrev_burn, 500),
                           {.hints = abbrev_hints,
                            .summary = AnnotatorSummary(5)});

  Hints sent_hints;
  sent_hints.selectivity = 1.0;
  sent_hints.cpu_cost_per_call = static_cast<double>(scale.sentence_burn);
  Stream sent = abbrev.Map("sentence_refiner",
                           MakeAnnotator("sentence_refiner", 6,
                                         scale.sentence_burn, 300),
                           {.hints = sent_hints,
                            .summary = AnnotatorSummary(6)});

  // --- Relation extraction: reads all four annotations, filters by a
  // proximity heuristic, appends the relation score (field 7). ---
  std::shared_ptr<const tac::Function> relation;
  {
    FunctionBuilder b("relation_extract", 1, UdfKind::kRat);
    Reg ir = b.InputRecord(0);
    Reg g = b.GetField(ir, 3);
    Reg d = b.GetField(ir, 4);
    Reg a = b.GetField(ir, 5);
    Reg s = b.GetField(ir, 6);
    b.CpuBurn(scale.relation_burn);
    Reg prox = b.Mod(b.Add(g, d), b.ConstInt(7));
    tac::Label skip = b.NewLabel();
    b.BranchIfFalse(b.CmpLt(prox, b.ConstInt(2)), skip);
    Reg out = b.Copy(ir);
    Reg score = b.Add(b.Add(g, d), b.Add(a, s));
    b.SetField(out, 7, score);
    b.Emit(out);
    b.Bind(skip);
    b.Return();
    relation = Built(std::move(b));
  }
  Hints rel_hints;
  rel_hints.selectivity = 2.0 / 7.0;
  rel_hints.cpu_cost_per_call = static_cast<double>(scale.relation_burn);
  Stream rel = sent.Map("relation_extract", relation,
                        {.hints = rel_hints,
                         .summary = SummaryBuilder(1)
                                        .CopyOf(0)
                                        .DecisionReads(0, {3, 4})
                                        .Reads(0, {5, 6})
                                        .Modifies(7)
                                        .Emits(0, 1)
                                        .Build()});

  rel.Sink("textmining_sink");
  CheckBuild(p);
  w.flow = p.flow();

  // --- Data: synthetic sentences with marker tokens at calibrated rates. ---
  DataSet data;
  for (int64_t i = 0; i < scale.documents; ++i) {
    std::string text = "the " + rng.String(6) + " binds " + rng.String(5);
    if (rng.Chance(scale.gene_fraction)) text += " gene " + rng.String(4);
    if (rng.Chance(scale.drug_fraction)) text += " drug " + rng.String(4);
    Record r;
    r.Append(Value(i));
    r.Append(Value(std::move(text)));
    data.Add(std::move(r));
  }
  w.source_data[docs.id()] = std::move(data);

  return w;
}

}  // namespace workloads
}  // namespace blackbox
