// Parallel execution engine simulator — the Nephele substitute (see
// DESIGN.md §2). Executes a physical plan over real data with a configurable
// degree of parallelism: records live in hash partitions, shipping strategies
// move bytes between (simulated) instances with exact byte accounting, local
// strategies build real hash tables / sorted groups, and every UDF call runs
// through the TAC interpreter.
//
// Data plane (DESIGN.md §2.2): records flow in RecordBatches, and operators
// execute as fused chains — a pipeline breaker (shuffle, group build, join
// build, sort) plus the maximal run of forward-shipped record-at-a-time
// stages above it. Within a chain, each partition task pulls batches through
// every stage in one pass, so intermediate Map outputs never materialize;
// only breaker buffers do, and the peak_bytes meter proves it.
//
// Per-partition operator work (scan widening, chain runs, Map/Reduce loops,
// hash-join build/probe, sort-merge join, combiner pre-aggregation, cross,
// co-group) runs as independent partition tasks on a TaskPool of
// ExecOptions::num_threads workers. All per-partition state (hash tables,
// sorted groups, Interpreter instances, batch pools, meters) is task-local
// and merged in partition order, so sink output, meters, and
// simulated_seconds are byte-identical for every thread count — only
// wall_seconds (real elapsed time) varies (DESIGN.md §2.1).

#ifndef BLACKBOX_ENGINE_EXECUTOR_H_
#define BLACKBOX_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/defaults.h"
#include "common/status.h"
#include "common/task_pool.h"
#include "dataflow/annotate.h"
#include "optimizer/physical.h"
#include "record/record.h"
#include "record/record_batch.h"

namespace blackbox {
namespace engine {

class BudgetPool;

struct ExecOptions {
  int dop = kDefaultDop;  // number of simulated parallel instances

  /// Per-instance memory budget: the bytes one simulated instance may hold
  /// in materialized inter-operator buffers before its breakers spill whole
  /// RecordBatch runs to temp files (DESIGN.md §2.3). Enforced for real —
  /// ExecStats::peak_bytes stays within budget plus bounded slack (the
  /// record in flight, plus sub-quarter-budget holders the eviction floor
  /// leaves alone) by construction, and disk_bytes measures the traffic.
  /// Must be positive: Execute() rejects zero and negative budgets with a
  /// clean Status (a zero budget would degenerate into a run file per
  /// record); a budget smaller than one batch still runs, degrading to
  /// roughly one spill run per budget-sized slice.
  double mem_budget_bytes = kDefaultMemBudgetBytes;

  /// Directory for spill run files; "" uses the system temp directory. A
  /// per-execution subdirectory is created on first spill and removed —
  /// with everything in it — when the execution ends, successful or not.
  /// The subdirectory name is process-unique (pid + a process-wide
  /// counter), so concurrent executions sharing one spill root can never
  /// collide on run files.
  std::string spill_dir;

  /// Optional human-readable suffix for this execution's spill
  /// subdirectory (sanitized; the serving layer tags each query's spills
  /// with its query id so concurrent queries' disk usage is attributable).
  std::string spill_tag;

  /// Parent budget pool this execution's per-instance ledgers report their
  /// live bytes to (borrowed; may be null). The serving layer carves a
  /// per-query budget from the pool at admission and attaches it here, so
  /// aggregate peak memory across concurrent queries is bounded and
  /// measured (DESIGN.md §2.4). Accounting only — spill decisions still
  /// compare each instance against mem_budget_bytes.
  BudgetPool* ledger_parent = nullptr;

  /// Worker pool to run partition tasks on (borrowed; may be null). When
  /// set, Execute() submits onto it instead of creating a private pool —
  /// the serving layer shares one pool across all concurrent queries.
  /// Overrides num_threads. The determinism contract is unchanged: results
  /// are byte-identical whichever pool executes the tasks.
  TaskPool* worker_pool = nullptr;

  /// Priority of this execution's partition tasks on the (shared) worker
  /// pool: tasks with a higher class jump the queue (TaskPool::ParallelFor),
  /// which lets the serving layer keep short interactive queries ahead of
  /// long scans without affecting any result (scheduling order never
  /// changes output — DESIGN.md §2.1).
  int task_priority = 0;

  /// Cancellation / deadline token for this execution (borrowed; may be
  /// null). Polled at chain batch boundaries, spill-manager evictions and
  /// reads, external-sort merge passes, and (amortized) inside the
  /// interpreter's batch loops, so a cancelled or past-deadline execution
  /// unwinds within roughly one batch of work, returning Cancelled /
  /// DeadlineExceeded through the ordinary Status path. Cleanup is pure
  /// RAII — ledgers release their bytes and the spill directory removes
  /// itself — so early unwind leaves nothing behind. Polling is read-only:
  /// a token that never fires changes no output and no meter (the
  /// determinism contract is untouched). Execution-only, like worker_pool:
  /// never part of any plan-cache key.
  CancelToken* cancel = nullptr;

  /// Test-only fault injection: when > 0, spill writes fail with a clean
  /// Status once this many payload bytes were spilled across the execution.
  int64_t spill_fault_after_bytes = 0;

  /// Test-only: when > 0 (and `cancel` is set), the token is cancelled as
  /// soon as this many payload bytes were spilled — a deterministic way to
  /// cancel an execution *mid-spill*, independent of wall-clock timing.
  int64_t cancel_after_spill_bytes = 0;

  /// Real worker threads executing partition tasks. Independent of `dop`
  /// (the *simulated* cluster width): any thread count produces identical
  /// results; more threads only shrink wall_seconds. <= 0 picks the
  /// hardware concurrency.
  int num_threads = 1;

  /// Fused operator chains (the default). When false ("--no-chain"), every
  /// plan node materializes its full output before the next starts — the
  /// pre-streaming data plane, kept as the differential reference: sink
  /// output, byte meters, and simulated_seconds are byte-identical in both
  /// modes; only peak_bytes (and wall time) may differ — see DESIGN.md §2.2.
  bool fuse_chains = true;

  /// Records per RecordBatch flowing through a chain. Any value >= 1
  /// produces identical output and meters; this only trades batch-dispatch
  /// amortization against buffer footprint.
  size_t batch_capacity = RecordBatch::kDefaultCapacity;

  /// Zone-map data skipping (DESIGN.md §2.5): refute whole batches against
  /// filter chains and skip spilled build runs whose key ranges cannot
  /// intersect a probe batch. Sink output and the byte meters
  /// (network/disk/output) are identical either way — skipping only elides
  /// work that provably produces nothing; CPU-side meters (udf_calls,
  /// interp_instructions, records_processed, cpu_burn_units) shrink. Off
  /// reproduces the pre-skipping execution exactly (the ablation baseline).
  bool enable_data_skipping = true;

  /// Fused-chain TAC specialization (DESIGN.md §2.6, the default): at chain
  /// assignment, the TAC programs of a chain's record-at-a-time stages are
  /// constant-folded into one fused program per chain (tac::FuseMapChain),
  /// executed by Interpreter::RunFusedChain with chain-input reads served by
  /// a lazy ColumnView and a per-chain adaptive batch capacity derived from
  /// observed bytes-per-row. Sink output and the byte meters (network, disk,
  /// peak, skipped_spill) are identical either way — specialization never
  /// changes what records reach a breaker or the sink, only how many
  /// interpreter instructions produce them; CPU-side meters (udf_calls,
  /// interp_instructions, records_processed, skipped_batches) legitimately
  /// differ, because one fused call replaces a call per stage and batch
  /// refutation happens once per chain instead of once per stage. Chains the
  /// fuser cannot prove byte-identical fall back to staged interpretation.
  bool enable_chain_specialization = true;

  // Machine model for simulated time. Metered network/disk bytes are charged
  // against these bandwidths; metered compute (UDF calls, records, calibrated
  // CPU burn) is charged against the throughputs below. The defaults are
  // calibrated so that the compute/IO balance at our reduced data scale
  // resembles the paper's 1 GbE four-node cluster, where shipping and
  // spilling dominate (DESIGN.md §2).
  double net_bandwidth_bytes_per_s = 24.0 * (1 << 20);
  double disk_bandwidth_bytes_per_s = 48.0 * (1 << 20);
  double interp_instructions_per_s = 50e6;  // TAC instruction throughput
  double cpu_burn_units_per_s = 1e9;        // CpuBurn loop throughput
  double records_per_s = 2e6;               // per-record engine overhead
};

/// Metered resources of one plan execution. The same quantities the cost
/// model estimates, but measured. Every field except wall_seconds is a pure
/// function of (plan, data, dop, mem_budget, fuse_chains,
/// enable_data_skipping, enable_chain_specialization) — identical for every
/// num_threads. Across fused and unfused execution — and across chain
/// specialization on/off — network_bytes, disk_bytes, output_rows, and
/// simulated byte traffic are identical; the CPU-side meters (udf_calls,
/// interp_instructions, records_processed, cpu_burn_units, skipped_batches)
/// may legitimately differ between modes, because fusion/specialization
/// change which batch boundaries a refutation sees and how many interpreter
/// calls produce the same records.
struct ExecStats {
  int64_t network_bytes = 0;  // bytes crossing instance boundaries

  /// Measured spill traffic: file bytes actually written to and read back
  /// from spill runs (small batch headers included). Zero iff no breaker
  /// exceeded the memory budget anywhere in the run.
  int64_t disk_bytes = 0;
  int64_t udf_calls = 0;
  int64_t interp_instructions = 0;  // TAC instructions executed by UDF calls
  int64_t cpu_burn_units = 0;
  int64_t records_processed = 0;
  int64_t output_rows = 0;

  /// Whole batches refuted by a zone-map sketch and skipped without
  /// interpreting a record (fused chain stages, unfused Map inputs, and
  /// in-memory build batches a probe batch's key range cannot match).
  int64_t skipped_batches = 0;

  /// File bytes of spilled build-side runs NOT read back because the run
  /// header's key-column sketch cannot intersect the probe batch's. These
  /// bytes are charged here instead of disk_bytes, so
  /// disk_bytes(skipping on) + skipped_spill_bytes accounts for the same
  /// traffic disk_bytes alone measures with skipping off on re-scan paths.
  int64_t skipped_spill_bytes = 0;

  /// Chains executed through a fused specialized program (counted once per
  /// chain per partitioned execution pass). Zero when
  /// enable_chain_specialization is off or every chain fell back to staged
  /// interpretation.
  int64_t fused_chains = 0;

  /// Estimated interpreter instructions the fused programs avoided: the
  /// fuser's static per-record saving (stage program sizes minus fused body
  /// size) times the input records run through each fused chain.
  int64_t specialized_instructions_saved = 0;

  /// Chain-input columns never materialized by fused runs: per processed
  /// batch, the record width minus the columns the fused program actually
  /// touched through its ColumnView (the SCA-read-set projection win).
  int64_t projected_fields_skipped = 0;

  /// High-water mark of the serialized bytes any single simulated instance
  /// held in materialized inter-operator buffers (pipeline-breaker inputs
  /// and outputs) — the quantity ExecOptions::mem_budget_bytes bounds
  /// (DESIGN.md §2.3). Each instance's ledger is touched only by that
  /// partition's task (or the serial shuffle), so the maximum is
  /// deterministic for every num_threads; fused execution lowers it, never
  /// the other meters. Transient working state — in-flight chain batches,
  /// single read-back batches, one key group's members during a UDF call —
  /// is outside the ledger, like the bound source DataSets.
  int64_t peak_bytes = 0;

  double wall_seconds = 0;  // real elapsed time (varies with num_threads)

  /// The "execution runtime" the figure benchmarks report: modeled compute
  /// time (metered calls/records/burn over the machine-model throughputs)
  /// plus network_bytes / net_bandwidth + disk_bytes / disk_bandwidth.
  /// Deterministic — derived from meters, not from wall_seconds.
  double simulated_seconds = 0;

  /// Adds the additive meters (bytes, calls, records) of `other` into this;
  /// leaves the derived time fields and the peak_bytes high-water mark
  /// untouched. Used to merge per-partition task meters in partition order.
  void AddCounters(const ExecStats& other);

  std::string ToString() const;
};

/// Executes physical plans against source data sets. Source records use the
/// source's own layout (arity = source_arity); the executor widens them to
/// the global record layout at scan time.
class Executor {
 public:
  Executor(const dataflow::AnnotatedFlow* af, ExecOptions options = {})
      : af_(af), options_(options) {}

  /// Binds the data of a source operator.
  void BindSource(int source_op_id, const DataSet* data) {
    sources_[source_op_id] = data;
  }

  /// Runs the plan; returns the sink output projected onto the sink schema
  /// (so results of different reorderings of the same flow are comparable
  /// record-for-record).
  StatusOr<DataSet> Execute(const optimizer::PhysicalPlan& plan,
                            ExecStats* stats = nullptr);

 private:
  const dataflow::AnnotatedFlow* af_;
  ExecOptions options_;
  std::map<int, const DataSet*> sources_;
  /// Worker pool shared by every Execute() on this Executor (created on
  /// first use), so repeated runs don't respawn threads.
  std::unique_ptr<TaskPool> pool_;
};

}  // namespace engine
}  // namespace blackbox

#endif  // BLACKBOX_ENGINE_EXECUTOR_H_
