// Parallel execution engine simulator — the Nephele substitute (see
// DESIGN.md §2). Executes a physical plan over real data with a configurable
// degree of parallelism: records live in hash partitions, shipping strategies
// move bytes between (simulated) instances with exact byte accounting, local
// strategies build real hash tables / sorted groups, and every UDF call runs
// through the TAC interpreter. Wall-clock time of an execution therefore
// scales with the same quantities the cost model estimates (bytes shipped,
// records processed, UDF calls x their calibrated CPU burn), which is what
// makes the paper's estimate-vs-runtime plots (Figures 5-7) reproducible in
// shape.

#ifndef BLACKBOX_ENGINE_EXECUTOR_H_
#define BLACKBOX_ENGINE_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/annotate.h"
#include "optimizer/physical.h"
#include "record/record.h"

namespace blackbox {
namespace engine {

struct ExecOptions {
  int dop = 8;  // number of simulated parallel instances
  double mem_budget_bytes = 16 << 20;  // per-instance memory before spilling

  // Machine model for simulated time: metered network/disk bytes are charged
  // against these bandwidths and added to the measured compute time. The
  // defaults are calibrated so that the compute/IO balance at our reduced
  // data scale resembles the paper's 1 GbE four-node cluster, where shipping
  // and spilling dominate (DESIGN.md §2).
  double net_bandwidth_bytes_per_s = 24.0 * (1 << 20);
  double disk_bandwidth_bytes_per_s = 48.0 * (1 << 20);
};

/// Metered resources of one plan execution. The same quantities the cost
/// model estimates, but measured.
struct ExecStats {
  int64_t network_bytes = 0;  // bytes crossing instance boundaries
  int64_t disk_bytes = 0;     // spill write+read bytes
  int64_t udf_calls = 0;
  int64_t cpu_burn_units = 0;
  int64_t records_processed = 0;
  int64_t output_rows = 0;
  double wall_seconds = 0;  // measured compute time of the simulation

  /// wall_seconds plus the IO time implied by the machine model:
  /// network_bytes / net_bandwidth + disk_bytes / disk_bandwidth. This is
  /// the "execution runtime" the figure benchmarks report.
  double simulated_seconds = 0;

  std::string ToString() const;
};

/// Executes physical plans against source data sets. Source records use the
/// source's own layout (arity = source_arity); the executor widens them to
/// the global record layout at scan time.
class Executor {
 public:
  Executor(const dataflow::AnnotatedFlow* af, ExecOptions options = {})
      : af_(af), options_(options) {}

  /// Binds the data of a source operator.
  void BindSource(int source_op_id, const DataSet* data) {
    sources_[source_op_id] = data;
  }

  /// Runs the plan; returns the sink output projected onto the sink schema
  /// (so results of different reorderings of the same flow are comparable
  /// record-for-record).
  StatusOr<DataSet> Execute(const optimizer::PhysicalPlan& plan,
                            ExecStats* stats = nullptr);

 private:
  const dataflow::AnnotatedFlow* af_;
  ExecOptions options_;
  std::map<int, const DataSet*> sources_;
};

}  // namespace engine
}  // namespace blackbox

#endif  // BLACKBOX_ENGINE_EXECUTOR_H_
