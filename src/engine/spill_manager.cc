#include "engine/spill_manager.h"

#include <algorithm>
#include <cassert>

#include "engine/executor.h"

namespace blackbox {
namespace engine {

// --- key helpers -------------------------------------------------------------

std::vector<Value> KeyOf(const Record& r,
                         const std::vector<dataflow::AttrId>& key) {
  std::vector<Value> k;
  k.reserve(key.size());
  for (dataflow::AttrId a : key) {
    k.push_back(a < static_cast<int>(r.num_fields()) ? r.field(a) : Value());
  }
  return k;
}

uint64_t KeyHash(const std::vector<Value>& key) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// --- SpillManager ------------------------------------------------------------

Status SpillManager::EnsureDir() {
  if (dir_) return Status::OK();
  if (!dir_status_.ok()) return dir_status_;  // sticky: fail fast after first
  StatusOr<SpillDirectory> dir = SpillDirectory::Create(dir_hint_, tag_);
  if (!dir.ok()) {
    dir_status_ = dir.status();
    return dir_status_;
  }
  dir_ = std::move(dir).value();
  return Status::OK();
}

StatusOr<std::string> SpillManager::NewRunPath() {
  std::lock_guard<std::mutex> lock(mu_);
  BLACKBOX_RETURN_NOT_OK(EnsureDir());
  return dir_->NewRunPath();
}

Status SpillManager::CheckFault(int64_t about_to_write_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    written_total_ += about_to_write_bytes;
    // Test-only mid-spill cancellation: fire the shared token once the
    // execution has spilled past the trigger, so tests hit the cancel path
    // at a deterministic point inside an eviction or merge pass.
    if (cancel_ != nullptr && cancel_after_bytes_ > 0 &&
        written_total_ > cancel_after_bytes_) {
      cancel_->Cancel();
    }
    // Fault injection (test-only): fail once the execution has attempted to
    // spill more than the configured byte budget. The caller's writer
    // destructor removes its partial file.
    if (fault_after_bytes_ > 0 && written_total_ > fault_after_bytes_) {
      return Status::Internal(
          "injected spill fault after " + std::to_string(written_total_) +
          " bytes (ExecOptions::spill_fault_after_bytes)");
    }
  }
  return CheckCancel();
}

StatusOr<SpillRun> SpillManager::WriteRun(
    const std::vector<RecordBatch>& batches, ExecStats* m) {
  StatusOr<std::string> path = NewRunPath();
  if (!path.ok()) return path.status();
  // All batches are in memory here, so the run-level sketch is just the
  // merge of the per-batch sketches maintained on the append path — cheap,
  // and written into the header before any batch payload.
  ZoneMapSketch sketch;
  for (const RecordBatch& b : batches) sketch.Merge(b.sketch());
  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(*path, &sketch);
  if (!writer.ok()) return writer.status();
  SpillRun run;
  run.path = *path;
  run.sketch = std::move(sketch);
  for (const RecordBatch& b : batches) {
    BLACKBOX_RETURN_NOT_OK(CheckFault(static_cast<int64_t>(b.bytes())));
    BLACKBOX_RETURN_NOT_OK(writer->WriteBatch(b));
    run.rows += b.size();
    run.payload_bytes += b.bytes();
  }
  BLACKBOX_RETURN_NOT_OK(writer->Close());
  run.file_bytes = writer->bytes_written();
  if (m) m->disk_bytes += run.file_bytes;
  return run;
}

void SpillManager::RemoveRun(const SpillRun& run) {
  std::remove(run.path.c_str());
}

// --- BudgetPool --------------------------------------------------------------

Status BudgetPool::Carve(double bytes) {
  if (bytes <= 0) {
    return Status::InvalidArgument("budget carve must be positive, got " +
                                   std::to_string(bytes));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (carved_ + bytes > capacity_) {
    return Status::OutOfRange(
        "budget pool exhausted: carve of " + std::to_string(bytes) +
        " bytes over " + std::to_string(carved_) + " already carved exceeds " +
        std::to_string(capacity_) + " capacity");
  }
  carved_ += bytes;
  if (carved_ > carved_high_water_) carved_high_water_ = carved_;
  return Status::OK();
}

void BudgetPool::Reclaim(double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  carved_ -= bytes;
}

void BudgetPool::AddLive(int64_t delta) {
  int64_t now = live_.fetch_add(delta, std::memory_order_relaxed) + delta;
  // Lock-free high-water mark; a stale maximum is retried, never lowered.
  int64_t hw = live_high_water_.load(std::memory_order_relaxed);
  while (now > hw &&
         !live_high_water_.compare_exchange_weak(hw, now,
                                                 std::memory_order_relaxed)) {
  }
  if (static_cast<double>(now) > capacity_) {
    violations_.fetch_add(1, std::memory_order_relaxed);
  }
}

double BudgetPool::carved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return carved_;
}

double BudgetPool::carved_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return carved_high_water_;
}

// --- MemoryLedger ------------------------------------------------------------

int MemoryLedger::Register(Spillable* s) {
  int id = next_id_++;
  entries_[id] = Entry{s, /*pinned=*/false};
  return id;
}

void MemoryLedger::Unregister(int id) { entries_.erase(id); }

Status MemoryLedger::Reserve(int64_t bytes, ExecStats* m) {
  live_ += bytes;
  lifetime_ += bytes;
  if (live_ > peak_) peak_ = live_;
  if (parent_ != nullptr) parent_->AddLive(bytes);
  return Rebalance(m);
}

Status MemoryLedger::Rebalance(ExecStats* m) {
  while (static_cast<double>(live_) > budget_) {
    // Deterministic victim choice: largest in-memory footprint, lowest id
    // on ties (the map iterates ids ascending, > keeps the first maximum).
    Spillable* victim = nullptr;
    size_t victim_bytes = 0;
    for (const auto& [id, e] : entries_) {
      if (e.pinned) continue;
      size_t mb = e.s->spillable_mem_bytes();
      if (mb > victim_bytes) {
        victim_bytes = mb;
        victim = e.s;
      }
    }
    if (victim == nullptr || victim_bytes == 0) break;  // nothing evictable
    // Minimum spill granularity: when pinned residents sit near the budget,
    // evicting whatever tiny tail the victim holds would degenerate into a
    // run file per few records. Below a quarter-budget footprint, tolerate
    // the overshoot instead — unless the instance is running away (over
    // twice its budget), where correctness of the bound beats file count.
    if (static_cast<double>(victim_bytes) < budget_ / 4 &&
        static_cast<double>(live_) <= 2 * budget_) {
      break;
    }
    BLACKBOX_RETURN_NOT_OK(victim->SpillMem(m));
    if (victim->spillable_mem_bytes() >= victim_bytes) {
      return Status::Internal("spill victim did not shrink");
    }
  }
  return Status::OK();
}

// --- SpillableBuffer ---------------------------------------------------------

SpillableBuffer::SpillableBuffer(MemoryLedger* ledger, SpillManager* spill,
                                 size_t batch_capacity)
    : ledger_(ledger), spill_(spill), capacity_(batch_capacity) {
  id_ = ledger_->Register(this);
}

SpillableBuffer::~SpillableBuffer() {
  ledger_->Release(static_cast<int64_t>(mem_bytes_));
  ledger_->Unregister(id_);
  drain_reader_.reset();  // close before removing files
  for (size_t i = drain_run_; i < runs_.size(); ++i) {
    SpillManager::RemoveRun(runs_[i]);
  }
}

Status SpillableBuffer::Push(Record r, size_t serialized_bytes, ExecStats* m,
                             BatchPool* pool) {
  assert(!draining_ && "Push after drain started");
  // Reserve first: the eviction this may trigger spills the current
  // in-memory run, and the new record then starts the next one.
  Status reserved = ledger_->Reserve(static_cast<int64_t>(serialized_bytes), m);
  if (!reserved.ok()) {
    // Reserve accounts the bytes before rebalancing, so a failure mid-
    // eviction (cancellation, injected fault) leaves them counted live.
    // The record is never appended on this path — refund the reservation,
    // or the unwinding query would leak it into the parent pool forever.
    ledger_->Release(static_cast<int64_t>(serialized_bytes));
    return reserved;
  }
  if (mem_.empty() || mem_.back().size() >= capacity_) {
    mem_.push_back(pool != nullptr && pool->free_count() > 0
                       ? pool->Acquire(capacity_)
                       : arena_.Acquire(capacity_));
  }
  mem_.back().AppendWithSize(std::move(r), serialized_bytes);
  mem_bytes_ += serialized_bytes;
  total_rows_ += 1;
  total_payload_ += serialized_bytes;
  return Status::OK();
}

Status SpillableBuffer::SpillMem(ExecStats* m) {
  if (mem_.empty()) return Status::OK();
  assert(!draining_ && "evicting a buffer that is being drained");
  // Cut the eviction into runs of at most a quarter budget each instead of
  // one monolithic dump. Each run then covers a narrow arrival window, so
  // its header sketch covers a narrow key range whenever the stream is
  // key-clustered — the granularity zone-map run skipping needs to refute
  // anything (DESIGN.md §2.5). The cut points depend only on batch sizes,
  // never on the skipping switch or thread count.
  const double run_target = ledger_->budget_bytes() / 4;
  std::vector<RecordBatch> chunk;
  size_t chunk_bytes = 0;
  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    StatusOr<SpillRun> run = spill_->WriteRun(chunk, m);
    if (!run.ok()) return run.status();
    runs_.push_back(std::move(run).value());
    // Spilled batches keep their backing stores in the arena for the next
    // in-memory run.
    for (RecordBatch& b : chunk) arena_.Release(std::move(b));
    chunk.clear();
    chunk_bytes = 0;
    return Status::OK();
  };
  for (RecordBatch& b : mem_) {
    if (!chunk.empty() &&
        static_cast<double>(chunk_bytes + b.bytes()) > run_target) {
      BLACKBOX_RETURN_NOT_OK(flush_chunk());
    }
    chunk_bytes += b.bytes();
    chunk.push_back(std::move(b));
  }
  BLACKBOX_RETURN_NOT_OK(flush_chunk());
  ledger_->Release(static_cast<int64_t>(mem_bytes_));
  mem_.clear();
  mem_bytes_ = 0;
  return Status::OK();
}

bool SpillableBuffer::SpilledRunsAreKeyClustered(
    const std::vector<dataflow::AttrId>& key) const {
  if (runs_.size() < 2 || key.empty()) return false;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (!runs_[i].sketch.has_value()) continue;
    for (size_t j = i + 1; j < runs_.size(); ++j) {
      if (!runs_[j].sketch.has_value()) continue;
      for (dataflow::AttrId k : key) {
        if (!RangesMayIntersect(
                runs_[i].sketch->ColumnRange(static_cast<size_t>(k)),
                runs_[j].sketch->ColumnRange(static_cast<size_t>(k)))) {
          return true;
        }
      }
    }
  }
  return false;
}

Status SpillableBuffer::ForEachBatch(
    ExecStats* m, BatchPool* pool,
    const std::function<Status(const RecordBatch&)>& fn, const SkipFn* skip) {
  // A scan cannot resume a drain's position (a mid-run drain cursor would
  // make it re-deliver consumed batches), and its unpin-on-exit would strip
  // the drain's pin — mixing the two is a caller bug.
  assert(!draining_ && "ForEachBatch after drain started");
  PinGuard pin(ledger_, id_);
  for (size_t ri = 0; ri < runs_.size(); ++ri) {
    BLACKBOX_RETURN_NOT_OK(spill_->CheckCancel());
    if (skip != nullptr && runs_[ri].sketch.has_value() &&
        (*skip)(*runs_[ri].sketch)) {
      // Refuted against the run-header sketch: the whole run is skipped
      // without opening the file — the read that never happened is metered
      // as skipped_spill_bytes instead of disk_bytes.
      if (m) m->skipped_spill_bytes += runs_[ri].file_bytes;
      continue;
    }
    StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(runs_[ri].path);
    if (!reader.ok()) return reader.status();
    // Meter the header read too: a run read to the end then costs exactly
    // its file_bytes — the same number a refuted run credits to
    // skipped_spill_bytes, keeping disk + skipped invariant across the
    // skipping switch.
    if (m) m->disk_bytes += reader->header_bytes();
    for (;;) {
      BLACKBOX_RETURN_NOT_OK(spill_->CheckCancel());
      RecordBatch b;
      int64_t fb = 0;
      StatusOr<bool> has = reader->ReadBatch(pool, capacity_, &b, &fb);
      if (!has.ok()) return has.status();
      if (!*has) break;
      if (m) m->disk_bytes += fb;
      BLACKBOX_RETURN_NOT_OK(fn(b));
      pool->Release(std::move(b));
    }
  }
  for (size_t i = 0; i < mem_.size(); ++i) {
    BLACKBOX_RETURN_NOT_OK(spill_->CheckCancel());
    if (skip != nullptr && (*skip)(mem_[i].sketch())) {
      if (m) ++m->skipped_batches;
      continue;
    }
    BLACKBOX_RETURN_NOT_OK(fn(mem_[i]));
  }
  return Status::OK();
}

StatusOr<bool> SpillableBuffer::NextDrained(RecordBatch* out, BatchPool* pool,
                                            ExecStats* m) {
  BLACKBOX_RETURN_NOT_OK(spill_->CheckCancel());
  if (!draining_) {
    draining_ = true;
    // References into the in-memory tail may be live in the caller; the
    // buffer must not be picked as an eviction victim mid-drain.
    ledger_->Pin(id_);
  }
  while (drain_run_ < runs_.size()) {
    if (!drain_reader_) {
      StatusOr<BatchSpillReader> reader =
          BatchSpillReader::Open(runs_[drain_run_].path);
      if (!reader.ok()) return reader.status();
      drain_reader_ = std::move(reader).value();
    }
    RecordBatch b;
    int64_t fb = 0;
    StatusOr<bool> has = drain_reader_->ReadBatch(pool, capacity_, &b, &fb);
    if (!has.ok()) return has.status();
    if (*has) {
      if (m) m->disk_bytes += fb;
      *out = std::move(b);
      return true;
    }
    drain_reader_.reset();
    SpillManager::RemoveRun(runs_[drain_run_]);
    ++drain_run_;
  }
  if (drain_mem_ < mem_.size()) {
    RecordBatch b = std::move(mem_[drain_mem_]);
    ++drain_mem_;
    // The cached sizes released here ARE the meter (and the ledger refund);
    // verify the double-tracked sizes never drifted from the records.
    b.DebugCheckSizes();
    ledger_->Release(static_cast<int64_t>(b.bytes()));
    mem_bytes_ -= b.bytes();
    *out = std::move(b);
    return true;
  }
  return false;
}

// --- ExternalSorter ----------------------------------------------------------

struct ExternalSorter::Source {
  // Spilled-run source (reader set) or the in-memory tail (reader unset).
  std::optional<BatchSpillReader> reader;
  RecordBatch batch;
  size_t idx = 0;
  size_t mem_idx = 0;
  bool from_mem = false;
  bool have_batch = false;

  bool done = false;
  std::vector<Value> key;
  Record rec;
  size_t bytes = 0;
};

ExternalSorter::ExternalSorter(MemoryLedger* ledger, SpillManager* spill,
                               std::vector<dataflow::AttrId> key,
                               size_t batch_capacity)
    : ledger_(ledger),
      spill_(spill),
      key_(std::move(key)),
      capacity_(batch_capacity) {
  id_ = ledger_->Register(this);
}

ExternalSorter::~ExternalSorter() {
  ledger_->Release(static_cast<int64_t>(mem_bytes_));
  ledger_->Unregister(id_);
  sources_.clear();  // close readers before removing files
  for (const SpillRun& run : runs_) SpillManager::RemoveRun(run);
}

Status ExternalSorter::Push(Record r, size_t serialized_bytes, ExecStats* m) {
  assert(!finished_ && "Push after Finish");
  Status reserved = ledger_->Reserve(static_cast<int64_t>(serialized_bytes), m);
  if (!reserved.ok()) {
    // Same refund as SpillableBuffer::Push: the failed reservation is
    // already counted but the entry below is never added, so mem_bytes_
    // (and the destructor's release) would miss it.
    ledger_->Release(static_cast<int64_t>(serialized_bytes));
    return reserved;
  }
  Entry e;
  e.key = KeyOf(r, key_);
  e.rec = std::move(r);
  e.bytes = serialized_bytes;
  entries_.push_back(std::move(e));
  mem_bytes_ += serialized_bytes;
  return Status::OK();
}

Status ExternalSorter::SpillMem(ExecStats* m) {
  if (entries_.empty()) return Status::OK();
  assert(!finished_ && "evicting a sorter that is streaming its merge");
  // A spilled run is stable-sorted, and runs are chronological slices of the
  // arrival order — the merge's recency tie-break restores global stability.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return KeyLess(a.key, b.key);
                   });
  std::vector<RecordBatch> batches;
  for (Entry& e : entries_) {
    if (batches.empty() || batches.back().size() >= capacity_) {
      batches.emplace_back(capacity_);
    }
    batches.back().AppendWithSize(std::move(e.rec), e.bytes);
  }
  StatusOr<SpillRun> run = spill_->WriteRun(batches, m);
  if (!run.ok()) return run.status();
  runs_.push_back(std::move(run).value());
  ledger_->Release(static_cast<int64_t>(mem_bytes_));
  entries_.clear();
  mem_bytes_ = 0;
  return Status::OK();
}

Status ExternalSorter::AdvanceSource(Source* src, ExecStats* m) {
  if (src->from_mem) {
    if (src->mem_idx >= entries_.size()) {
      src->done = true;
      return Status::OK();
    }
    Entry& e = entries_[src->mem_idx++];
    src->key = std::move(e.key);
    src->rec = std::move(e.rec);
    src->bytes = e.bytes;
    return Status::OK();
  }
  while (!src->have_batch || src->idx >= src->batch.size()) {
    BLACKBOX_RETURN_NOT_OK(spill_->CheckCancel());
    if (src->have_batch) {
      pool_.Release(std::move(src->batch));
      src->have_batch = false;
    }
    RecordBatch b;
    int64_t fb = 0;
    StatusOr<bool> has = src->reader->ReadBatch(&pool_, capacity_, &b, &fb);
    if (!has.ok()) return has.status();
    if (!*has) {
      src->done = true;
      return Status::OK();
    }
    if (m) m->disk_bytes += fb;
    src->batch = std::move(b);
    src->have_batch = true;
    src->idx = 0;
  }
  src->rec = std::move(src->batch.mutable_record(src->idx));
  src->bytes = src->batch.record_bytes(src->idx);
  src->key = KeyOf(src->rec, key_);
  ++src->idx;
  return Status::OK();
}

StatusOr<SpillRun> ExternalSorter::MergeRunGroup(size_t begin, size_t end,
                                                 ExecStats* m) {
  std::vector<std::unique_ptr<Source>> srcs;
  for (size_t i = begin; i < end; ++i) {
    auto src = std::make_unique<Source>();
    StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(runs_[i].path);
    if (!reader.ok()) return reader.status();
    src->reader = std::move(reader).value();
    BLACKBOX_RETURN_NOT_OK(AdvanceSource(src.get(), m));
    srcs.push_back(std::move(src));
  }
  // Stream the merge straight back to disk: one output batch in flight.
  StatusOr<std::string> path = spill_->NewRunPath();
  if (!path.ok()) return path.status();
  StatusOr<BatchSpillWriter> writer = BatchSpillWriter::Create(*path);
  if (!writer.ok()) return writer.status();
  SpillRun out;
  out.path = *path;
  RecordBatch cur(capacity_);
  auto flush = [&]() -> Status {
    BLACKBOX_RETURN_NOT_OK(spill_->CheckFault(static_cast<int64_t>(cur.bytes())));
    BLACKBOX_RETURN_NOT_OK(writer->WriteBatch(cur));
    out.rows += cur.size();
    out.payload_bytes += cur.bytes();
    cur.Clear();
    return Status::OK();
  };
  for (;;) {
    Source* best = nullptr;
    for (auto& s : srcs) {
      if (s->done) continue;
      if (best == nullptr || KeyLess(s->key, best->key)) best = s.get();
      // Equal keys: the earlier source (older run) wins — srcs is iterated
      // in chronological order and KeyLess is strict, so `best` stays.
    }
    if (best == nullptr) break;
    if (cur.size() >= capacity_) BLACKBOX_RETURN_NOT_OK(flush());
    cur.AppendWithSize(std::move(best->rec), best->bytes);
    BLACKBOX_RETURN_NOT_OK(AdvanceSource(best, m));
  }
  if (cur.size() > 0) BLACKBOX_RETURN_NOT_OK(flush());
  BLACKBOX_RETURN_NOT_OK(writer->Close());
  out.file_bytes = writer->bytes_written();
  if (m) m->disk_bytes += out.file_bytes;
  return out;
}

Status ExternalSorter::Finish(ExecStats* m) {
  assert(!finished_);
  // Make room before the merge holds batches from every run: co-resident
  // buffers (and possibly this sorter itself) are evicted down to budget.
  BLACKBOX_RETURN_NOT_OK(ledger_->Rebalance(m));
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return KeyLess(a.key, b.key);
                   });
  ledger_->Pin(id_);
  finished_ = true;
  // Compact to at most kMergeFanIn runs, merging chronological groups so the
  // recency tie-break keeps meaning arrival order. Each pass is a real
  // external-sort pass: its writes and re-reads are metered.
  while (runs_.size() > kMergeFanIn) {
    std::vector<SpillRun> next;
    for (size_t begin = 0; begin < runs_.size(); begin += kMergeFanIn) {
      size_t end = std::min(runs_.size(), begin + kMergeFanIn);
      if (end - begin == 1) {
        next.push_back(runs_[begin]);
        continue;
      }
      StatusOr<SpillRun> merged = MergeRunGroup(begin, end, m);
      if (!merged.ok()) return merged.status();
      for (size_t i = begin; i < end; ++i) SpillManager::RemoveRun(runs_[i]);
      next.push_back(std::move(merged).value());
    }
    runs_ = std::move(next);
  }
  // Open the final sources: every run plus the in-memory tail (the newest
  // slice — highest tie-break recency).
  for (const SpillRun& run : runs_) {
    auto src = std::make_unique<Source>();
    StatusOr<BatchSpillReader> reader = BatchSpillReader::Open(run.path);
    if (!reader.ok()) return reader.status();
    src->reader = std::move(reader).value();
    BLACKBOX_RETURN_NOT_OK(AdvanceSource(src.get(), m));
    sources_.push_back(std::move(src));
  }
  auto mem_src = std::make_unique<Source>();
  mem_src->from_mem = true;
  BLACKBOX_RETURN_NOT_OK(AdvanceSource(mem_src.get(), m));
  sources_.push_back(std::move(mem_src));
  return Status::OK();
}

Status ExternalSorter::Next(ExecStats* m, bool* done, std::vector<Value>* key,
                            Record* rec, size_t* bytes) {
  assert(finished_ && "Next before Finish");
  Source* best = nullptr;
  for (auto& s : sources_) {
    if (s->done) continue;
    if (best == nullptr || KeyLess(s->key, best->key)) best = s.get();
  }
  if (best == nullptr) {
    *done = true;
    return Status::OK();
  }
  *done = false;
  *key = std::move(best->key);
  *rec = std::move(best->rec);
  *bytes = best->bytes;
  return AdvanceSource(best, m);
}

// --- PresortedStream ---------------------------------------------------------

Status PresortedStream::Next(ExecStats* m, bool* done, std::vector<Value>* key,
                             Record* rec, size_t* bytes) {
  while (!have_batch_ || idx_ >= batch_.size()) {
    if (have_batch_) {
      pool_->Release(std::move(batch_));
      have_batch_ = false;
    }
    RecordBatch b;
    StatusOr<bool> has = in_->NextDrained(&b, pool_, m);
    if (!has.ok()) return has.status();
    if (!*has) {
      *done = true;
      return Status::OK();
    }
    batch_ = std::move(b);
    have_batch_ = true;
    idx_ = 0;
  }
  *done = false;
  *rec = std::move(batch_.mutable_record(idx_));
  *bytes = batch_.record_bytes(idx_);
  *key = KeyOf(*rec, key_);
  ++idx_;
  // Correctness must never depend on the optimizer's presorted claim: a
  // violated order is a hard error, not silent wrong groups.
  if (have_prev_ && KeyLess(*key, prev_key_)) {
    return Status::Internal(
        "input claimed presorted, but the key order is violated");
  }
  prev_key_ = *key;
  have_prev_ = true;
  return Status::OK();
}

// --- GroupReader -------------------------------------------------------------

StatusOr<bool> GroupReader::NextGroup(ExecStats* m, std::vector<Value>* key,
                                      std::vector<Record>* members) {
  if (done_) return false;
  if (!primed_) {
    bool done = false;
    BLACKBOX_RETURN_NOT_OK(
        stream_->Next(m, &done, &pending_key_, &pending_rec_, &pending_bytes_));
    if (done) {
      done_ = true;
      return false;
    }
    primed_ = true;
  }
  *key = std::move(pending_key_);
  members->clear();
  members->push_back(std::move(pending_rec_));
  for (;;) {
    bool done = false;
    BLACKBOX_RETURN_NOT_OK(
        stream_->Next(m, &done, &pending_key_, &pending_rec_, &pending_bytes_));
    if (done) {
      done_ = true;
      primed_ = false;
      break;
    }
    // The stream is non-decreasing, so the next key equals the group key iff
    // it is not strictly greater.
    if (KeyLess(*key, pending_key_)) break;  // next group begins
    members->push_back(std::move(pending_rec_));
  }
  return true;
}

}  // namespace engine
}  // namespace blackbox
