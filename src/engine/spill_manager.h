// Budget-respecting spill layer of the execution engine (DESIGN.md §2.3).
//
// One MemoryLedger per simulated instance (hash partition) accounts every
// serialized byte a materialized inter-operator buffer holds in memory.
// When a reservation pushes an instance past ExecOptions::mem_budget_bytes,
// the ledger evicts registered spillables — buffers serialize their
// in-memory RecordBatch run to a temp file through the shared SpillManager,
// sorters write a sorted run — until the instance is back under budget.
// Because every buffered byte flows through Reserve/Release and every spill
// is a measured file write, the disk meter and the spill decision can never
// disagree (they are the same code path).
//
// The enforced bound: per-instance peak stays within the budget plus
// bounded slack — the record being appended, plus co-resident holders the
// quarter-budget eviction floor leaves alone (spilling those would
// degenerate into per-record run files), with a hard valve at twice the
// budget. The differential oracle asserts this as "budget + one batch of
// slack".
//
// Thread model: a MemoryLedger and everything registered with it belong to
// exactly one partition — touched either by that partition's task or by the
// serial shuffle, never concurrently (DESIGN.md §2.1). The SpillManager is
// shared across partitions and thread-safe (unique run names, the
// fault-injection byte counter, lazy directory creation).

#ifndef BLACKBOX_ENGINE_SPILL_MANAGER_H_
#define BLACKBOX_ENGINE_SPILL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "dataflow/attr_set.h"
#include "record/record.h"
#include "record/record_batch.h"
#include "record/spill_file.h"

namespace blackbox {
namespace engine {

struct ExecStats;

// --- key helpers (shared by the executor and the sort machinery) -----------

/// Key extracted at the given global positions.
std::vector<Value> KeyOf(const Record& r,
                         const std::vector<dataflow::AttrId>& key);
uint64_t KeyHash(const std::vector<Value>& key);
bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b);

// --- spill manager ----------------------------------------------------------

/// One spilled run on disk.
struct SpillRun {
  std::string path;
  int64_t file_bytes = 0;   // headers included; what the write meter charged
  size_t rows = 0;
  size_t payload_bytes = 0;  // sum of cached record sizes
  /// Zone-map sketch over every record in the run, kept in memory so skip
  /// decisions never open the file (the same sketch is embedded in the run
  /// header). nullopt for streamed runs (sort merges) — never skippable.
  std::optional<ZoneMapSketch> sketch;
};

/// Shared spill-file factory: owns the (lazily created) temp run directory,
/// names runs, meters writes, and injects test faults. Thread-safe.
class SpillManager {
 public:
  /// `dir_hint` "" means the system temp directory; `tag` is an optional
  /// suffix for the (always process-unique) run directory name
  /// (ExecOptions::spill_tag); `fault_after_bytes` > 0 makes every spill
  /// write fail once that many bytes were written across the whole
  /// execution (ExecOptions::spill_fault_after_bytes, test-only).
  /// `cancel` (borrowed, may be null) is the execution's CancelToken,
  /// polled on every spill write and read-back so evictions, run re-scans,
  /// drains, and merge passes unwind promptly; `cancel_after_bytes` > 0
  /// fires the token once that many payload bytes were spilled
  /// (ExecOptions::cancel_after_spill_bytes, test-only).
  SpillManager(std::string dir_hint, std::string tag,
               int64_t fault_after_bytes, CancelToken* cancel = nullptr,
               int64_t cancel_after_bytes = 0)
      : dir_hint_(std::move(dir_hint)),
        tag_(std::move(tag)),
        fault_after_bytes_(fault_after_bytes),
        cancel_(cancel),
        cancel_after_bytes_(cancel_after_bytes) {}

  /// The cancellation poll every spill-layer loop goes through: OK without
  /// a token, the token's verdict with one. Cheap enough to call per batch.
  Status CheckCancel() const {
    return cancel_ != nullptr ? cancel_->Check() : Status::OK();
  }

  /// Writes `batches` as one run; charges the written file bytes to
  /// `m->disk_bytes` (when m is non-null).
  StatusOr<SpillRun> WriteRun(const std::vector<RecordBatch>& batches,
                              ExecStats* m);

  /// A fresh unique run path (directory created on first use) for callers
  /// that stream a run through their own BatchSpillWriter (the sorter's
  /// merge passes). Thread-safe.
  StatusOr<std::string> NewRunPath();

  /// Advances the fault-injection odometer by the payload about to be
  /// written and fails if the injected budget is exhausted. Callers writing
  /// through their own writer invoke this per batch; WriteRun does it
  /// internally.
  Status CheckFault(int64_t about_to_write_bytes);

  /// Best-effort early removal of a fully consumed run (the directory
  /// destructor is the backstop).
  static void RemoveRun(const SpillRun& run);

 private:
  Status EnsureDir();

  std::string dir_hint_;
  std::string tag_;
  int64_t fault_after_bytes_;
  CancelToken* cancel_;            // borrowed; null outside cancellable runs
  int64_t cancel_after_bytes_;     // test-only mid-spill cancel trigger
  std::mutex mu_;
  std::optional<SpillDirectory> dir_;   // created on first spill
  Status dir_status_;                   // sticky failure
  int64_t written_total_ = 0;           // fault-injection odometer
};

// --- hierarchical budget pool -----------------------------------------------

/// Thread-safe parent budget for concurrent executions (DESIGN.md §2.4).
/// The serving layer carves a per-query child budget from one global
/// capacity at admission time and reclaims it on completion; each admitted
/// query's per-instance MemoryLedgers report their live-byte deltas here, so
/// the pool tracks the *measured* aggregate footprint across all queries in
/// flight. Because admission never over-carves (Carve fails instead) and
/// every per-instance ledger keeps its instance within its own budget plus
/// bounded slack, aggregate peak memory is bounded by construction —
/// violations() counts the observations where the measured aggregate still
/// exceeded the capacity, the invariant the serving bench asserts is zero.
class BudgetPool {
 public:
  explicit BudgetPool(double capacity_bytes) : capacity_(capacity_bytes) {}
  BudgetPool(const BudgetPool&) = delete;
  BudgetPool& operator=(const BudgetPool&) = delete;

  /// Carves `bytes` from the capacity for one query. OutOfRange when the
  /// remaining capacity is too small (the admission queue's signal to hold
  /// the query), InvalidArgument for a non-positive carve.
  Status Carve(double bytes);

  /// Returns a completed query's carve to the pool.
  void Reclaim(double bytes);

  /// Live-byte delta reported by a child ledger (any thread).
  void AddLive(int64_t delta);

  double capacity_bytes() const { return capacity_; }
  /// Currently carved (granted) bytes and their lifetime high-water mark.
  double carved_bytes() const;
  double carved_high_water() const;
  /// Measured aggregate in-memory bytes across every child ledger, and the
  /// lifetime high-water mark of that aggregate.
  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t live_high_water() const {
    return live_high_water_.load(std::memory_order_relaxed);
  }
  /// Number of AddLive observations where the aggregate exceeded capacity.
  int64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

 private:
  const double capacity_;
  mutable std::mutex mu_;  // guards the carve accounting
  double carved_ = 0;
  double carved_high_water_ = 0;
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> live_high_water_{0};
  std::atomic<int64_t> violations_{0};
};

// --- memory ledger ----------------------------------------------------------

/// A budget-managed holder of in-memory serialized record bytes.
class Spillable {
 public:
  virtual ~Spillable() = default;
  /// Serialized bytes currently held in memory by this holder.
  virtual size_t spillable_mem_bytes() const = 0;
  /// Writes the in-memory portion to a spill run and releases its bytes.
  virtual Status SpillMem(ExecStats* m) = 0;
};

/// Per-instance byte ledger: the single authority on both the peak meter and
/// the spill decision. Not thread-safe (one partition, one owner) — but it
/// may report its live-byte deltas to a thread-safe parent BudgetPool, the
/// hierarchy that lets concurrent queries share one global budget
/// (DESIGN.md §2.4). The parent sees accounting only; spill decisions stay
/// per-instance against this ledger's own budget.
class MemoryLedger {
 public:
  void Init(double budget_bytes, BudgetPool* parent = nullptr) {
    budget_ = budget_bytes;
    parent_ = parent;
  }

  int Register(Spillable* s);
  void Unregister(int id);
  void Pin(int id) { entries_[id].pinned = true; }
  void Unpin(int id) { entries_[id].pinned = false; }

  /// Accounts `bytes` of new in-memory data, then evicts unpinned
  /// spillables (largest in-memory footprint first, lowest id on ties —
  /// deterministic) until the instance is back under budget or nothing
  /// evictable remains.
  Status Reserve(int64_t bytes, ExecStats* m);

  void Release(int64_t bytes) {
    live_ -= bytes;
    if (parent_ != nullptr) parent_->AddLive(-bytes);
  }

  /// Evicts without reserving — used at breaker entry so co-resident input
  /// buffers make room before a new buffer starts growing.
  Status Rebalance(ExecStats* m);

  int64_t live_bytes() const { return live_; }
  int64_t peak_bytes() const { return peak_; }
  double budget_bytes() const { return budget_; }
  /// Lifetime sum of reserved bytes; lets callers assert a code path
  /// buffered nothing (the presorted fast-path contract).
  int64_t lifetime_reserved() const { return lifetime_; }

 private:
  struct Entry {
    Spillable* s = nullptr;
    bool pinned = false;
  };
  std::map<int, Entry> entries_;
  int next_id_ = 0;
  double budget_ = 0;
  BudgetPool* parent_ = nullptr;  // borrowed; null outside the serving layer
  int64_t live_ = 0;
  int64_t peak_ = 0;
  int64_t lifetime_ = 0;
};

/// RAII pin: the buffer cannot be chosen as an eviction victim while a scan
/// or drain holds references into its in-memory batches.
class PinGuard {
 public:
  PinGuard(MemoryLedger* ledger, int id) : ledger_(ledger), id_(id) {
    ledger_->Pin(id_);
  }
  ~PinGuard() { ledger_->Unpin(id_); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  MemoryLedger* ledger_;
  int id_;
};

/// RAII resident reservation for memory that must not be evicted (an
/// in-memory hash-join build side): counts against the ledger but is not
/// registered as a victim.
class PinnedBytes {
 public:
  explicit PinnedBytes(MemoryLedger* ledger) : ledger_(ledger) {}
  ~PinnedBytes() { ledger_->Release(total_); }
  PinnedBytes(const PinnedBytes&) = delete;
  PinnedBytes& operator=(const PinnedBytes&) = delete;

  Status Add(int64_t bytes, ExecStats* m) {
    total_ += bytes;
    return ledger_->Reserve(bytes, m);
  }

 private:
  MemoryLedger* ledger_;
  int64_t total_ = 0;
};

// --- spillable buffer --------------------------------------------------------

/// A materialized inter-operator buffer: the unit of record flow between
/// chains. Appends accumulate into in-memory batches; when the owning
/// instance runs past its budget the ledger evicts the in-memory run to
/// disk. Scans and drains yield batches in append order (spilled runs
/// first — they always hold the older prefix — then the in-memory tail).
class SpillableBuffer : public Spillable {
 public:
  SpillableBuffer(MemoryLedger* ledger, SpillManager* spill,
                  size_t batch_capacity);
  ~SpillableBuffer() override;
  SpillableBuffer(const SpillableBuffer&) = delete;
  SpillableBuffer& operator=(const SpillableBuffer&) = delete;

  /// Appends a record whose serialized size is already cached. A non-null
  /// `pool` lets the tail batch draw a recycled backing store from the
  /// caller (the shuffle feeds its drained input batches back this way —
  /// §2.2's arena-reuse contract); otherwise the buffer's own arena of
  /// spilled-and-cleared batches is used.
  Status Push(Record r, size_t serialized_bytes, ExecStats* m,
              BatchPool* pool = nullptr);
  /// Terminal write: computes the serialized size exactly once — the single
  /// point where sizes enter the cache (DESIGN.md §2.2).
  Status PushOwned(Record r, ExecStats* m) {
    size_t bytes = r.SerializedSize();
    return Push(std::move(r), bytes, m);
  }

  size_t rows() const { return total_rows_; }
  /// Total payload bytes (in-memory + spilled) — the quantity the breaker
  /// strategy decisions compare against the budget.
  size_t payload_bytes() const { return total_payload_; }

  size_t spillable_mem_bytes() const override { return mem_bytes_; }
  Status SpillMem(ExecStats* m) override;

  /// Decides whether a run or batch may be skipped given its zone-map
  /// sketch; true = skip. Soundness is the caller's: returning true asserts
  /// that no value the sketch admits can matter to the consumer.
  using SkipFn = std::function<bool(const ZoneMapSketch&)>;

  /// Non-destructive scan in append order; spilled runs are read back
  /// transiently through `pool` (each read metered). Restartable, but not
  /// legal once draining started (asserted): a scan cannot see what a drain
  /// already consumed, and its pin bookkeeping would fight the drain's.
  /// A non-null `skip` is consulted per spilled run (runs without a sketch
  /// are never skipped; a skipped run charges skipped_spill_bytes instead of
  /// disk_bytes) and per in-memory batch (charging skipped_batches).
  Status ForEachBatch(ExecStats* m, BatchPool* pool,
                      const std::function<Status(const RecordBatch&)>& fn,
                      const SkipFn* skip = nullptr);

  /// True when some pair of sketched spilled runs is disjoint on a column of
  /// `key` — evidence that the stream arrived key-clustered, so a consumer
  /// that re-scans runs per probe batch (the block hash join) will be able
  /// to refute runs. Full pairwise disjointness is deliberately NOT required:
  /// a hash shuffle interleaves producers whose slices each span the whole
  /// key range, so runs cut mid-stream overlap across producers even when
  /// the underlying table is perfectly clustered; one disjoint pair already
  /// proves narrow runs exist. Reads only the in-memory run sketches, never
  /// the files, and is independent of ExecOptions::enable_data_skipping — a
  /// strategy decision must not depend on the skipping switch, or the
  /// disk + skipped_spill_bytes invariant across that switch breaks.
  bool SpilledRunsAreKeyClustered(
      const std::vector<dataflow::AttrId>& key) const;

  /// Destructive pull-cursor in append order: each call hands out the next
  /// batch (ownership moves to the caller), releasing its ledger bytes /
  /// deleting exhausted run files as it goes. Returns false when empty.
  /// Once draining starts, Push is no longer legal.
  StatusOr<bool> NextDrained(RecordBatch* out, BatchPool* pool, ExecStats* m);

  /// Push-style drain: the NextDrained error/EOF protocol centralized. `fn`
  /// takes ownership of each batch (release it to a pool or keep it).
  Status DrainBatches(ExecStats* m, BatchPool* pool,
                      const std::function<Status(RecordBatch&&)>& fn) {
    for (;;) {
      RecordBatch b;
      StatusOr<bool> has = NextDrained(&b, pool, m);
      if (!has.ok()) return has.status();
      if (!*has) return Status::OK();
      BLACKBOX_RETURN_NOT_OK(fn(std::move(b)));
    }
  }

 private:
  MemoryLedger* ledger_;
  SpillManager* spill_;
  size_t capacity_;
  int id_;

  std::vector<SpillRun> runs_;
  std::vector<RecordBatch> mem_;
  /// Freelist of this buffer's own spilled-and-cleared batches: tail
  /// allocations after a spill reuse their backing stores (the arena-reuse
  /// contract of DESIGN.md §2.2, carried into the spill path).
  BatchPool arena_;
  size_t mem_bytes_ = 0;
  size_t total_rows_ = 0;
  size_t total_payload_ = 0;

  // Drain cursor state.
  bool draining_ = false;
  size_t drain_run_ = 0;
  size_t drain_mem_ = 0;
  std::optional<BatchSpillReader> drain_reader_;
};

// --- sorted streams ----------------------------------------------------------

/// A stream of records in non-decreasing key order.
class KeyedStream {
 public:
  virtual ~KeyedStream() = default;
  /// Advances to the next record; *done=true (with no record) at the end.
  virtual Status Next(ExecStats* m, bool* done, std::vector<Value>* key,
                      Record* rec, size_t* bytes) = 0;
};

/// External merge sorter: buffers (key, record) entries in memory, spills
/// stable-sorted runs under budget pressure, and after Finish() merges the
/// runs plus the in-memory tail into one key-ordered stream. The sort is
/// globally stable: runs hold arrival-contiguous slices, each run is
/// stable-sorted, and merges tie-break equal keys by run recency — so equal
/// keys stream in arrival order, exactly like the old in-memory std::map
/// grouping.
class ExternalSorter : public Spillable, public KeyedStream {
 public:
  /// Merge fan-in: more runs than this are first compacted in multi-pass
  /// merges (each a metered write+read), bounding open files.
  static constexpr size_t kMergeFanIn = 16;

  ExternalSorter(MemoryLedger* ledger, SpillManager* spill,
                 std::vector<dataflow::AttrId> key, size_t batch_capacity);
  ~ExternalSorter() override;
  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Push(Record r, size_t serialized_bytes, ExecStats* m);

  /// Sorts what is still in memory, compacts runs to <= kMergeFanIn, and
  /// pins the sorter; afterwards Next() yields the merged stream.
  Status Finish(ExecStats* m);

  size_t spillable_mem_bytes() const override { return mem_bytes_; }
  Status SpillMem(ExecStats* m) override;

  Status Next(ExecStats* m, bool* done, std::vector<Value>* key, Record* rec,
              size_t* bytes) override;

 private:
  struct Entry {
    std::vector<Value> key;
    Record rec;
    size_t bytes;
  };
  /// One merge source: a spilled sorted run or the in-memory tail.
  struct Source;

  Status OpenSources(ExecStats* m);
  Status AdvanceSource(Source* src, ExecStats* m);
  StatusOr<SpillRun> MergeRunGroup(size_t begin, size_t end, ExecStats* m);

  MemoryLedger* ledger_;
  SpillManager* spill_;
  std::vector<dataflow::AttrId> key_;
  size_t capacity_;
  int id_;

  std::vector<Entry> entries_;  // arrival order until sorted at spill/finish
  size_t mem_bytes_ = 0;
  std::vector<SpillRun> runs_;  // chronological

  bool finished_ = false;
  std::vector<std::unique_ptr<Source>> sources_;
  BatchPool pool_;  // read-back arena for the merge
};

/// Pass-through stream over a buffer the plan established as presorted on
/// the key: drains the buffer in order, extracting keys on the fly and
/// verifying the claimed order (a violated claim is an Internal error, so
/// correctness never silently depends on the optimizer). Registers nothing
/// with the ledger — this is the Reduce fast path that buffers zero bytes.
class PresortedStream : public KeyedStream {
 public:
  PresortedStream(SpillableBuffer* in, std::vector<dataflow::AttrId> key,
                  BatchPool* pool)
      : in_(in), key_(std::move(key)), pool_(pool) {}

  Status Next(ExecStats* m, bool* done, std::vector<Value>* key, Record* rec,
              size_t* bytes) override;

 private:
  SpillableBuffer* in_;
  std::vector<dataflow::AttrId> key_;
  BatchPool* pool_;
  RecordBatch batch_;
  size_t idx_ = 0;
  bool have_batch_ = false;
  std::vector<Value> prev_key_;
  bool have_prev_ = false;
};

/// Groups a KeyedStream into equal-key runs of owned records.
class GroupReader {
 public:
  explicit GroupReader(KeyedStream* stream) : stream_(stream) {}

  /// Fills *key and *members with the next group; false at end of stream.
  StatusOr<bool> NextGroup(ExecStats* m, std::vector<Value>* key,
                           std::vector<Record>* members);

 private:
  KeyedStream* stream_;
  bool primed_ = false;
  bool done_ = false;
  std::vector<Value> pending_key_;
  Record pending_rec_;
  size_t pending_bytes_ = 0;
};

}  // namespace engine
}  // namespace blackbox

#endif  // BLACKBOX_ENGINE_SPILL_MANAGER_H_
