#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>

#include "common/task_pool.h"
#include "interp/interp.h"
#include "reorder/plan.h"

namespace blackbox {
namespace engine {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using interp::CallInputs;
using interp::FieldTranslation;
using interp::Interpreter;
using optimizer::LocalStrategy;
using optimizer::PhysicalNode;
using optimizer::ShipStrategy;

namespace {

using Partitions = std::vector<std::vector<Record>>;

/// Key extracted at the given global positions.
std::vector<Value> KeyOf(const Record& r, const std::vector<AttrId>& key) {
  std::vector<Value> k;
  k.reserve(key.size());
  for (AttrId a : key) {
    k.push_back(a < static_cast<int>(r.num_fields()) ? r.field(a) : Value());
  }
  return k;
}

uint64_t KeyHash(const std::vector<Value>& key) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

size_t PartitionBytes(const std::vector<Record>& part) {
  size_t total = 0;
  for (const Record& r : part) total += r.SerializedSize();
  return total;
}

bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// One partition's records paired with their extracted keys and stable-sorted
/// by key: the per-partition input of a merge join. The stable sort keeps the
/// arrival order within equal keys, so a stream that already carries a
/// serving sort order passes through unchanged.
struct SortedRun {
  std::vector<std::pair<std::vector<Value>, const Record*>> entries;

  SortedRun(const std::vector<Record>& part,
            const std::vector<AttrId>& key) {
    entries.reserve(part.size());
    for (const Record& r : part) entries.emplace_back(KeyOf(r, key), &r);
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       return KeyLess(a.first, b.first);
                     });
  }

  /// End of the equal-key run starting at `begin`.
  size_t RunEnd(size_t begin) const {
    size_t end = begin + 1;
    while (end < entries.size() &&
           !KeyLess(entries[begin].first, entries[end].first)) {
      ++end;
    }
    return end;
  }
};

class ExecContext {
 public:
  ExecContext(const dataflow::AnnotatedFlow& af,
              const std::map<int, const DataSet*>& sources,
              const ExecOptions& options, TaskPool* pool, ExecStats* stats)
      : af_(af),
        sources_(sources),
        options_(options),
        pool_(pool),
        stats_(stats) {}

  StatusOr<Partitions> Exec(const PhysicalNode& node) {
    const dataflow::Operator& op = af_.flow->op(node.op_id);
    switch (op.kind) {
      case OpKind::kSource:
        return Scan(node);
      case OpKind::kSink: {
        StatusOr<Partitions> in = Exec(*node.children[0]);
        if (!in.ok()) return in.status();
        return in;  // projection to the sink schema happens in Execute()
      }
      case OpKind::kMap:
        return ExecMap(node, op);
      case OpKind::kReduce:
        return ExecReduce(node, op);
      case OpKind::kMatch:
        return ExecMatch(node, op);
      case OpKind::kCross:
        return ExecCross(node, op);
      case OpKind::kCoGroup:
        return ExecCoGroup(node, op);
    }
    return Status::Internal("unreachable operator kind");
  }

 private:
  /// Builds the redirection tables for one operator occurrence: local field
  /// index -> global record position (Definition 1's α map), with concat
  /// ownership derived from the actual child subtrees of this plan.
  FieldTranslation MakeTranslation(const PhysicalNode& node) {
    const OpProperties& p = af_.of(node.op_id);
    FieldTranslation t;
    t.global_width = af_.global.size();
    t.input_maps.resize(p.in_schemas.size());
    for (size_t i = 0; i < p.in_schemas.size(); ++i) {
      t.input_maps[i].assign(p.in_schemas[i].begin(), p.in_schemas[i].end());
    }
    t.output_map.assign(p.out_schema.begin(), p.out_schema.end());
    // Extend input maps so writes of *new* attributes on copied input records
    // resolve (positions >= original input arity map to the new attrs).
    for (auto& m : t.input_maps) {
      for (size_t pos = m.size(); pos < p.out_schema.size(); ++pos) {
        m.push_back(p.out_schema[pos]);
      }
    }
    // Concat ownership: the attributes actually originating in each child
    // subtree of *this* plan (not the original flow) — reordering moves
    // attribute origins across join inputs.
    if (node.children.size() == 2) {
      t.concat_positions.resize(2);
      for (int i = 0; i < 2; ++i) {
        t.concat_positions[i] = LiveAttrs(*node.children[i]);
      }
    }
    return t;
  }

  std::vector<int> LiveAttrs(const PhysicalNode& node) {
    std::set<AttrId> acc;
    std::function<void(const PhysicalNode&)> walk = [&](const PhysicalNode& n) {
      const OpProperties& p = af_.of(n.op_id);
      for (AttrId a : p.introduced.listed()) acc.insert(a);
      for (const auto& c : n.children) walk(*c);
    };
    walk(node);
    return std::vector<int>(acc.begin(), acc.end());
  }

  /// Runs body(pi, &meters) for every partition as independent tasks on the
  /// pool. The per-partition meters are merged into stats_ in partition
  /// order and the lowest-partition error (if any) is returned, so both the
  /// outcome and the meters are independent of scheduling order.
  Status ForEachPartition(
      const std::function<Status(size_t, ExecStats*)>& body) {
    const size_t n = static_cast<size_t>(options_.dop);
    std::vector<Status> statuses(n);
    std::vector<ExecStats> meters(n);
    pool_->ParallelFor(
        n, [&](size_t pi) { statuses[pi] = body(pi, &meters[pi]); });
    for (size_t pi = 0; pi < n; ++pi) {
      if (!statuses[pi].ok()) return statuses[pi];
    }
    if (stats_) {
      for (size_t pi = 0; pi < n; ++pi) stats_->AddCounters(meters[pi]);
    }
    return Status::OK();
  }

  StatusOr<Partitions> Scan(const PhysicalNode& node) {
    auto it = sources_.find(node.op_id);
    if (it == sources_.end()) {
      return Status::InvalidArgument("no data bound for source " +
                                     af_.flow->op(node.op_id).name);
    }
    const OpProperties& p = af_.of(node.op_id);
    const int width = af_.global.size();
    const std::vector<Record>& src_records = it->second->records();
    const size_t dop = static_cast<size_t>(options_.dop);
    Partitions parts(dop);
    // Partition pi owns source indices pi, pi+dop, ... — the same
    // round-robin assignment as a serial scan, widened in parallel.
    pool_->ParallelFor(dop, [&](size_t pi) {
      for (size_t i = pi; i < src_records.size(); i += dop) {
        const Record& src = src_records[i];
        Record wide;
        if (width > 0) wide.SetField(width - 1, Value::Null());
        for (size_t f = 0; f < src.num_fields() && f < p.out_schema.size();
             ++f) {
          wide.SetField(p.out_schema[f], src.field(f));
        }
        parts[pi].push_back(std::move(wide));
      }
    });
    return parts;
  }

  /// Applies a shipping strategy, metering network bytes. Runs on the
  /// calling thread: shuffles move records *between* partitions, so they are
  /// the serial barrier separating parallel per-partition stages.
  Partitions Ship(Partitions in, ShipStrategy strategy,
                  const std::vector<AttrId>& key) {
    switch (strategy) {
      case ShipStrategy::kForward:
        return in;
      case ShipStrategy::kPartitionHash: {
        Partitions out(options_.dop);
        for (size_t from = 0; from < in.size(); ++from) {
          for (Record& r : in[from]) {
            size_t to = KeyHash(KeyOf(r, key)) % options_.dop;
            if (to != from && stats_) {
              stats_->network_bytes += r.SerializedSize();
            }
            out[to].push_back(std::move(r));
          }
        }
        return out;
      }
      case ShipStrategy::kBroadcast: {
        std::vector<Record> all;
        for (auto& part : in) {
          for (Record& r : part) all.push_back(std::move(r));
        }
        if (stats_) {
          size_t bytes = 0;
          for (const Record& r : all) bytes += r.SerializedSize();
          stats_->network_bytes +=
              static_cast<int64_t>(bytes) * (options_.dop - 1);
        }
        Partitions out(options_.dop, all);
        return out;
      }
    }
    return in;
  }

  void MeterSpill(size_t bytes, ExecStats* meters) {
    if (static_cast<double>(bytes) > options_.mem_budget_bytes) {
      meters->disk_bytes += static_cast<int64_t>(2 * bytes);
    }
  }

  static Status CallUdf(const Interpreter& interp, const CallInputs& inputs,
                        const FieldTranslation& t, std::vector<Record>* out,
                        ExecStats* meters) {
    interp::RunStats rs;
    BLACKBOX_RETURN_NOT_OK(interp.Run(inputs, t, out, &rs));
    meters->udf_calls++;
    meters->interp_instructions += rs.instructions;
    meters->cpu_burn_units += rs.cpu_burn_units;
    return Status::OK();
  }

  StatusOr<Partitions> ExecMap(const PhysicalNode& node,
                               const dataflow::Operator& op) {
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    Partitions in = Ship(std::move(in_or).value(), node.ships[0], {});
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());  // task-local interpreter
      for (const Record& r : in[pi]) {
        CallInputs ci;
        ci.groups = {{&r}};
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &out[pi], meters));
        meters->records_processed++;
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return out;
  }

  /// One sort-group pass over `in`, calling the UDF once per key group.
  /// Shared by the plain Reduce, the combiner's pre-aggregation pass, and
  /// the combiner's post-shuffle pass.
  Status SortGroupPass(const Partitions& in, const dataflow::Operator& op,
                       const std::vector<AttrId>& key,
                       const FieldTranslation& t, bool meter_spill,
                       Partitions* out) {
    return ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      if (meter_spill) MeterSpill(PartitionBytes(in[pi]), meters);
      // Partition-local sorted groups (std::map orders keys canonically).
      std::map<std::vector<Value>, std::vector<const Record*>> groups;
      for (const Record& r : in[pi]) {
        groups[KeyOf(r, key)].push_back(&r);
        meters->records_processed++;
      }
      for (const auto& [k, members] : groups) {
        CallInputs ci;
        ci.groups = {members};
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &(*out)[pi], meters));
      }
      return Status::OK();
    });
  }

  StatusOr<Partitions> ExecReduce(const PhysicalNode& node,
                                  const dataflow::Operator& op) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    Partitions in = std::move(in_or).value();
    FieldTranslation t = MakeTranslation(node);
    if (node.local == LocalStrategy::kPreAggregate) {
      // Combiner: aggregate each producer partition's local groups *before*
      // the shuffle. The partial records use the Reduce's own output layout
      // (combinability guarantees it coincides with the input layout), so
      // the post-shuffle pass below runs the identical UDF unchanged and the
      // shuffle ships at most (distinct keys × dop) records.
      Partitions combined(options_.dop);
      Status st = SortGroupPass(in, op, p.keys[0], t, /*meter_spill=*/true,
                                &combined);
      if (!st.ok()) return st;
      in = std::move(combined);
    }
    in = Ship(std::move(in), node.ships[0], p.keys[0]);
    Partitions out(options_.dop);
    // A presorted forward input streams its groups: no sort buffer, no spill.
    bool meter_spill = node.local == LocalStrategy::kPreAggregate ||
                       node.input_presorted.empty() ||
                       !node.input_presorted[0];
    Status st = SortGroupPass(in, op, p.keys[0], t, meter_spill, &out);
    if (!st.ok()) return st;
    return out;
  }

  StatusOr<Partitions> ExecMatch(const PhysicalNode& node,
                                 const dataflow::Operator& op) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    FieldTranslation t = MakeTranslation(node);
    if (node.local == LocalStrategy::kSortMergeJoin) {
      return MergeJoin(node, op, p, left, right, t);
    }
    bool build_left = node.local == LocalStrategy::kHashJoinBuildLeft;
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      const std::vector<Record>& build = build_left ? left[pi] : right[pi];
      const std::vector<Record>& probe = build_left ? right[pi] : left[pi];
      const std::vector<AttrId>& build_key = build_left ? p.keys[0] : p.keys[1];
      const std::vector<AttrId>& probe_key = build_left ? p.keys[1] : p.keys[0];
      MeterSpill(PartitionBytes(build), meters);
      // Partition-local build table.
      std::map<std::vector<Value>, std::vector<const Record*>> table;
      for (const Record& r : build) {
        table[KeyOf(r, build_key)].push_back(&r);
        meters->records_processed++;
      }
      for (const Record& r : probe) {
        meters->records_processed++;
        auto it = table.find(KeyOf(r, probe_key));
        if (it == table.end()) continue;
        for (const Record* b : it->second) {
          CallInputs ci;
          const Record* lrec = build_left ? b : &r;
          const Record* rrec = build_left ? &r : b;
          ci.groups = {{lrec}, {rrec}};
          BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &out[pi], meters));
        }
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return out;
  }

  /// Sort-merge equi-join of two shipped sides. Both sides are stable-sorted
  /// by their join key per partition — a no-op reordering when the optimizer
  /// reused an existing sort order, but always executed so correctness never
  /// depends on the claimed order — then equal-key runs are joined pairwise.
  /// Output order is key-major; within one key the left run is streamed
  /// outermost in arrival order (stable), so a downstream operator grouping
  /// on this key sees members in the same relative order a hash join
  /// probing a sorted stream would deliver.
  StatusOr<Partitions> MergeJoin(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const OpProperties& p, const Partitions& left,
                                 const Partitions& right,
                                 const FieldTranslation& t) {
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      // Sort buffers spill like any other materialization — except for a
      // side the plan established as presorted, which streams straight
      // through the (no-op) stable sort.
      if (node.input_presorted.size() < 2 || !node.input_presorted[0]) {
        MeterSpill(PartitionBytes(left[pi]), meters);
      }
      if (node.input_presorted.size() < 2 || !node.input_presorted[1]) {
        MeterSpill(PartitionBytes(right[pi]), meters);
      }
      SortedRun ls(left[pi], p.keys[0]);
      SortedRun rs(right[pi], p.keys[1]);
      meters->records_processed +=
          static_cast<int64_t>(left[pi].size() + right[pi].size());
      size_t li = 0, ri = 0;
      while (li < ls.entries.size() && ri < rs.entries.size()) {
        const std::vector<Value>& lk = ls.entries[li].first;
        const std::vector<Value>& rk = rs.entries[ri].first;
        if (KeyLess(lk, rk)) {
          li = ls.RunEnd(li);
          continue;
        }
        if (KeyLess(rk, lk)) {
          ri = rs.RunEnd(ri);
          continue;
        }
        size_t lend = ls.RunEnd(li), rend = rs.RunEnd(ri);
        for (size_t a = li; a < lend; ++a) {
          for (size_t b = ri; b < rend; ++b) {
            CallInputs ci;
            ci.groups = {{ls.entries[a].second}, {rs.entries[b].second}};
            BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &out[pi], meters));
          }
        }
        li = lend;
        ri = rend;
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return out;
  }

  StatusOr<Partitions> ExecCross(const PhysicalNode& node,
                                 const dataflow::Operator& op) {
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], {});
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], {});
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      for (const Record& l : left[pi]) {
        for (const Record& r : right[pi]) {
          CallInputs ci;
          ci.groups = {{&l}, {&r}};
          BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &out[pi], meters));
        }
      }
      meters->records_processed +=
          static_cast<int64_t>(left[pi].size() + right[pi].size());
      return Status::OK();
    });
    if (!st.ok()) return st;
    return out;
  }

  StatusOr<Partitions> ExecCoGroup(const PhysicalNode& node,
                                   const dataflow::Operator& op) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      // Per-side sort buffers (matching the cost model); a presorted side
      // streams its groups and never spills.
      if (node.input_presorted.size() < 2 || !node.input_presorted[0]) {
        MeterSpill(PartitionBytes(left[pi]), meters);
      }
      if (node.input_presorted.size() < 2 || !node.input_presorted[1]) {
        MeterSpill(PartitionBytes(right[pi]), meters);
      }
      std::map<std::vector<Value>, CallInputs> groups;
      for (const Record& r : left[pi]) {
        auto& ci = groups[KeyOf(r, p.keys[0])];
        if (ci.groups.empty()) ci.groups.resize(2);
        ci.groups[0].push_back(&r);
        meters->records_processed++;
      }
      for (const Record& r : right[pi]) {
        auto& ci = groups[KeyOf(r, p.keys[1])];
        if (ci.groups.empty()) ci.groups.resize(2);
        ci.groups[1].push_back(&r);
        meters->records_processed++;
      }
      for (const auto& [key, ci] : groups) {
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &out[pi], meters));
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return out;
  }

  const dataflow::AnnotatedFlow& af_;
  const std::map<int, const DataSet*>& sources_;
  const ExecOptions& options_;
  TaskPool* pool_;
  ExecStats* stats_;
};

}  // namespace

void ExecStats::AddCounters(const ExecStats& other) {
  network_bytes += other.network_bytes;
  disk_bytes += other.disk_bytes;
  udf_calls += other.udf_calls;
  interp_instructions += other.interp_instructions;
  cpu_burn_units += other.cpu_burn_units;
  records_processed += other.records_processed;
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "net=" + std::to_string(network_bytes) + "B";
  out += " disk=" + std::to_string(disk_bytes) + "B";
  out += " udf_calls=" + std::to_string(udf_calls);
  out += " instrs=" + std::to_string(interp_instructions);
  out += " cpu_burn=" + std::to_string(cpu_burn_units);
  out += " records=" + std::to_string(records_processed);
  out += " out_rows=" + std::to_string(output_rows);
  out += " wall=" + std::to_string(wall_seconds) + "s";
  out += " simulated=" + std::to_string(simulated_seconds) + "s";
  return out;
}

StatusOr<DataSet> Executor::Execute(const optimizer::PhysicalPlan& plan,
                                    ExecStats* stats) {
  if (!plan.root) return Status::InvalidArgument("empty physical plan");
  auto start = std::chrono::steady_clock::now();
  if (!pool_) pool_ = std::make_unique<TaskPool>(options_.num_threads);
  ExecContext ctx(*af_, sources_, options_, pool_.get(), stats);
  StatusOr<Partitions> out = ctx.Exec(*plan.root);
  if (!out.ok()) return out.status();

  // Gather and project onto the sink schema so alternative plans of the same
  // flow produce directly comparable records. Partitions are concatenated in
  // index order — the canonical output order for every thread count.
  const OpProperties& sink = af_->of(plan.root->op_id);
  DataSet result;
  for (const auto& part : *out) {
    for (const Record& wide : part) {
      Record compact;
      for (size_t i = 0; i < sink.out_schema.size(); ++i) {
        AttrId a = sink.out_schema[i];
        compact.Append(a < static_cast<int>(wide.num_fields()) ? wide.field(a)
                                                               : Value());
      }
      result.Add(std::move(compact));
    }
  }
  auto end = std::chrono::steady_clock::now();
  if (stats) {
    stats->output_rows = static_cast<int64_t>(result.size());
    stats->wall_seconds = std::chrono::duration<double>(end - start).count();
    // simulated_seconds is a pure function of the meters (machine model),
    // deliberately NOT of wall_seconds: the simulated cluster's runtime must
    // not depend on how many real threads executed the simulation.
    double compute_seconds =
        static_cast<double>(stats->interp_instructions) /
            options_.interp_instructions_per_s +
        static_cast<double>(stats->cpu_burn_units) /
            options_.cpu_burn_units_per_s +
        static_cast<double>(stats->records_processed) / options_.records_per_s;
    stats->simulated_seconds =
        compute_seconds +
        static_cast<double>(stats->network_bytes) /
            options_.net_bandwidth_bytes_per_s +
        static_cast<double>(stats->disk_bytes) /
            options_.disk_bandwidth_bytes_per_s;
  }
  return result;
}

}  // namespace engine
}  // namespace blackbox
