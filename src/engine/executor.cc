#include "engine/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <map>

#include "common/task_pool.h"
#include "engine/spill_manager.h"
#include "interp/interp.h"
#include "record/column_view.h"
#include "record/zone_map.h"
#include "reorder/plan.h"
#include "sca/refute.h"
#include "tac/fuse.h"

namespace blackbox {
namespace engine {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using interp::CallInputs;
using interp::FieldTranslation;
using interp::Interpreter;
using optimizer::LocalStrategy;
using optimizer::PhysicalNode;
using optimizer::ShipStrategy;

namespace {

/// One partition's materialized inter-operator buffer: a budget-aware
/// SpillableBuffer on that instance's MemoryLedger (DESIGN.md §2.3). A
/// Partitions is one such buffer per simulated instance — a pipeline
/// breaker's input or output.
using Partitions = std::vector<std::unique_ptr<SpillableBuffer>>;

/// Compacts a wide (global-layout) record onto the sink schema. The single
/// definition of sink projection: used by the fused chain's sink stage and
/// by the unfused gather, whose outputs the differential contract requires
/// to be byte-identical.
Record ProjectToSinkSchema(const Record& wide,
                           const std::vector<AttrId>& sink_schema) {
  Record compact;
  for (AttrId a : sink_schema) {
    compact.Append(a < static_cast<int>(wide.num_fields()) ? wide.field(a)
                                                           : Value());
  }
  return compact;
}

/// One record-at-a-time stage of a fused chain: a streaming Map, or the
/// sink's projection onto the sink schema (op == nullptr).
struct ChainStage {
  const PhysicalNode* node = nullptr;
  const dataflow::Operator* op = nullptr;  // null: sink projection stage
  FieldTranslation translation;            // Map only
  std::vector<AttrId> sink_schema;         // sink only
  /// Batch refuter for data skipping (nullopt: the UDF cannot be soundly
  /// analyzed, or skipping is disabled). Built only after the stage vector
  /// reaches its final storage — the refuter points into `translation`.
  std::optional<sca::BatchRefuter> refuter;
};

/// Everything one chain executes per input record, decided once at chain
/// assignment: the collected stages, and — when specialization succeeded —
/// the single fused TAC program that replaces them (DESIGN.md §2.6). The
/// fused members are immovable once built: the fused refuter points into
/// `fused->fn` and `fused_translation`.
struct ChainPlan {
  std::vector<ChainStage> stages;  // bottom-up; staged fallback path
  /// Fused specialization of `stages` (nullopt: specialization off, no Map
  /// stage in the chain, or the fuser bailed — staged path runs instead).
  std::optional<tac::FusedChainProgram> fused;
  /// Identity translation for RunFusedChain: empty maps, global_width = the
  /// emitted width (sink schema size for a sink-terminated chain, else the
  /// in-flight width).
  interp::FieldTranslation fused_translation;
  /// In-flight (chain input) record width: the ColumnView's column count.
  int input_width = 0;
  /// Refuter over the fused program (data skipping on fused chains). Reads
  /// are at global positions already, so it consumes chain-input ranges
  /// directly.
  std::optional<sca::BatchRefuter> fused_refuter;
};

/// Target in-memory footprint of one pending fused-chain batch: the adaptive
/// capacity divides this by the observed bytes per row (DESIGN.md §2.6), so
/// wide-record chains flush smaller batches and narrow-record chains
/// amortize the per-flush work over more rows.
constexpr size_t kAdaptiveBatchBytes = 32 * 1024;

/// The per-global-position ranges a batch sketch admits, in the layout
/// BatchRefuter::RefutesEmit consumes.
std::vector<ValueRange> SketchRanges(const ZoneMapSketch& sketch) {
  std::vector<ValueRange> cols;
  cols.reserve(sketch.num_columns());
  for (size_t c = 0; c < sketch.num_columns(); ++c) {
    cols.push_back(sketch.ColumnRange(c));
  }
  return cols;
}

/// Per-partition chain executor: the producer (scan or breaker) pushes its
/// emitted records here; full batches are pulled through every stage in one
/// pass and the final stage's output lands in the chain's materialized
/// output buffer. In-flight records between stages are plain vectors — their
/// serialized sizes are cached exactly once, at the terminal write into the
/// output buffer (the only place byte meters ever read them). All state —
/// the pending buffer, the ping-pong scratch buffers (cleared, never shrunk:
/// arena reuse across flushes), one Interpreter per Map stage — is owned by
/// one partition task (DESIGN.md §2.1).
class ChainRunner {
 public:
  ChainRunner(const ChainPlan* plan, size_t capacity, SpillableBuffer* out,
              ExecStats* meters, const CancelToken* cancel = nullptr)
      : plan_(plan),
        capacity_(capacity),
        out_(out),
        cancel_(cancel),
        meters_(meters) {
    pending_.reserve(capacity);
    if (plan_ == nullptr) return;
    if (plan_->fused) {
      fused_interp_ = std::make_unique<Interpreter>(&plan_->fused->fn);
      fused_interp_->set_cancel(cancel_);
    } else {
      for (const ChainStage& s : plan_->stages) {
        interps_.push_back(s.op ? std::make_unique<Interpreter>(s.op->udf.get())
                                : nullptr);
        if (interps_.back()) interps_.back()->set_cancel(cancel_);
      }
    }
  }

  /// Moves a producer's emitted records into the pending buffer, flushing
  /// through the chain whenever it fills. Clears *emitted.
  Status Consume(std::vector<Record>* emitted) {
    for (Record& r : *emitted) {
      BLACKBOX_RETURN_NOT_OK(Push(std::move(r)));
    }
    emitted->clear();
    return Status::OK();
  }

  Status Push(Record r) {
    pending_.push_back(std::move(r));
    if (pending_.size() >= capacity_) return Flush();
    return Status::OK();
  }

  /// Drains the pending buffer through the chain; flushing an empty buffer
  /// is a no-op (the end-of-partition call on an exactly-full stream).
  Status Flush() {
    if (pending_.empty()) return Status::OK();
    BLACKBOX_RETURN_NOT_OK(ProcessBatch(&pending_));
    pending_.clear();
    return Status::OK();
  }

 private:
  Status ProcessBatch(std::vector<Record>* batch) {
    // Batch-boundary cancellation point: a cancelled or past-deadline query
    // stops before the next batch enters the chain, so unwind latency is
    // bounded by one batch of work. The poll is read-only — a token that
    // never fires changes no output or meter.
    if (cancel_ != nullptr) BLACKBOX_RETURN_NOT_OK(cancel_->Check());
    // Adapt from the first flushed batch in EVERY mode, fused or staged:
    // the flush cadence decides when the terminal buffer's ledger sees
    // reserves, and under a tight budget that interleaving steers eviction —
    // so it must be a property of the chain, never of the specialization
    // switch (the §2.6 oracles compare byte meters across modes exactly).
    AdaptCapacity(*batch);
    if (plan_ != nullptr && plan_->fused) return ProcessFusedBatch(batch);
    std::vector<Record>* cur = batch;
    if (plan_ != nullptr) {
      size_t flip = 0;
      for (size_t si = 0; si < plan_->stages.size(); ++si) {
        const ChainStage& s = plan_->stages[si];
        if (s.refuter) {
          // Data skipping (DESIGN.md §2.5): summarize the in-flight batch
          // and try to refute this stage against it. A refuted stage
          // provably emits nothing for every record here, so the whole
          // batch — and everything downstream of it — is dropped without an
          // interpreter call. Verdicts depend only on batch content, so
          // meters stay deterministic for every thread count.
          ZoneMapSketch sk;
          for (const Record& r : *cur) sk.Observe(r);
          if (s.refuter->RefutesEmit(SketchRanges(sk))) {
            ++meters_->skipped_batches;
            return Status::OK();
          }
        }
        std::vector<Record>* next = &scratch_[flip];
        next->clear();
        if (s.op != nullptr) {
          interp::RunStats rs;
          Status st = interps_[si]->RunBatch(*cur, s.translation, next, &rs);
          meters_->udf_calls += static_cast<int64_t>(cur->size());
          meters_->records_processed += static_cast<int64_t>(cur->size());
          meters_->interp_instructions += rs.instructions;
          meters_->cpu_burn_units += rs.cpu_burn_units;
          BLACKBOX_RETURN_NOT_OK(st);
        } else {
          // Sink projection stage (unmetered in both modes, like the
          // unfused gather-time projection it replaces).
          for (const Record& wide : *cur) {
            next->push_back(ProjectToSinkSchema(wide, s.sink_schema));
          }
        }
        cur = next;
        flip ^= 1;
      }
    }
    // Terminal write: the single point where serialized sizes are computed
    // and cached (PushOwned), feeding every downstream byte meter — and
    // where the owning instance's ledger may decide to spill.
    for (Record& r : *cur) {
      BLACKBOX_RETURN_NOT_OK(out_->PushOwned(std::move(r), meters_));
    }
    return Status::OK();
  }

  /// Specialized path (DESIGN.md §2.6): the whole stage pipeline is one TAC
  /// program executed per input row over a lazy ColumnView of the batch. The
  /// terminal write is the same PushOwned as the staged path, so every byte
  /// meter (network/disk/peak/skipped_spill) is identical in both modes; the
  /// CPU meters (udf_calls, interp_instructions) legitimately differ and the
  /// differential oracles never compare them across modes.
  Status ProcessFusedBatch(std::vector<Record>* batch) {
    const size_t width = static_cast<size_t>(plan_->input_width);
    ColumnView view(batch->data(), batch->size(), width);
    if (plan_->fused_refuter) {
      // One refutation per flush, with ranges computed only for the global
      // positions the fused body actually reads (everything else is Top, a
      // sound over-approximation the refuter cannot lean on). Range() folds
      // straight off the rows without materializing any column.
      std::vector<ValueRange> cols(width, ValueRange::Top());
      for (int p : plan_->fused->input_reads) {
        if (p >= 0 && static_cast<size_t>(p) < width) {
          cols[static_cast<size_t>(p)] = view.Range(static_cast<size_t>(p));
        }
      }
      if (plan_->fused_refuter->RefutesEmit(cols)) {
        ++meters_->skipped_batches;
        return Status::OK();
      }
    }
    std::vector<Record>* next = &scratch_[0];
    next->clear();
    interp::RunStats rs;
    Status st = fused_interp_->RunFusedChain(
        *batch, view, plan_->fused_translation, plan_->fused->body_start, next,
        &rs, &chain_state_);
    const int64_t n = static_cast<int64_t>(batch->size());
    meters_->udf_calls += n;  // one fused invocation per input row
    meters_->records_processed += n;
    meters_->interp_instructions += rs.instructions;
    meters_->cpu_burn_units += rs.cpu_burn_units;
    meters_->specialized_instructions_saved +=
        plan_->fused->static_saved_per_record * n;
    meters_->projected_fields_skipped +=
        static_cast<int64_t>(width - view.materialized_columns());
    BLACKBOX_RETURN_NOT_OK(st);
    for (Record& r : *next) {
      BLACKBOX_RETURN_NOT_OK(out_->PushOwned(std::move(r), meters_));
    }
    return Status::OK();
  }

  /// Adaptive pending capacity, set once from the first flushed batch's
  /// observed bytes per row — identical in fused and staged mode (the first
  /// flush happens at the configured capacity either way, so both modes
  /// measure the same rows and adapt to the same threshold). Affects only
  /// the pending flush threshold — the terminal SpillableBuffer keeps the
  /// configured batch_capacity, so batch layouts downstream are untouched.
  /// A pure function of (plan, data, dop), never of thread count.
  void AdaptCapacity(const std::vector<Record>& batch) {
    if (capacity_adapted_ || batch.empty()) return;
    capacity_adapted_ = true;
    size_t total = 0;
    for (const Record& r : batch) total += r.SerializedSize();
    size_t bpr = std::max<size_t>(1, total / batch.size());
    capacity_ = std::clamp<size_t>(kAdaptiveBatchBytes / bpr, 16, 4096);
  }

  const ChainPlan* plan_;  // may be null (no chain)
  size_t capacity_;
  std::vector<Record> pending_;
  std::vector<Record> scratch_[2];  // ping-pong stage outputs, reused
  SpillableBuffer* out_;
  const CancelToken* cancel_;  // borrowed; null when not cancellable
  std::vector<std::unique_ptr<Interpreter>> interps_;
  std::unique_ptr<Interpreter> fused_interp_;  // set iff plan_->fused
  Interpreter::ChainState chain_state_;
  bool capacity_adapted_ = false;
  ExecStats* meters_;
};

class ExecContext {
 public:
  ExecContext(const dataflow::AnnotatedFlow& af,
              const std::map<int, const DataSet*>& sources,
              const ExecOptions& options, TaskPool* pool, ExecStats* stats)
      : af_(af),
        sources_(sources),
        options_(options),
        pool_(pool),
        stats_(stats),
        spill_(options.spill_dir, options.spill_tag,
               options.spill_fault_after_bytes, options.cancel,
               options.cancel_after_spill_bytes),
        ledgers_(static_cast<size_t>(options.dop)) {
    for (MemoryLedger& l : ledgers_) {
      l.Init(options.mem_budget_bytes, options.ledger_parent);
    }
  }

  /// Executes the chain whose top is `top`: collects the run of streaming
  /// stages (fused mode), then dispatches on the chain's producer. Returns
  /// the chain's materialized output — the only materialization between this
  /// producer and the next breaker above.
  StatusOr<Partitions> Exec(const PhysicalNode& top) {
    ChainPlan plan;
    std::vector<ChainStage>& stages = plan.stages;  // collected top-down
    const PhysicalNode* n = &top;
    if (options_.fuse_chains) {
      while (optimizer::IsStreamingStage(af_.flow->op(n->op_id), *n)) {
        stages.push_back(MakeStage(*n));
        n = n->children[0].get();
      }
      // Stages apply bottom-up from the producer.
      std::reverse(stages.begin(), stages.end());
      if (options_.enable_chain_specialization) TryFuse(&plan);
      if (options_.enable_data_skipping) {
        if (plan.fused) {
          // One refuter over the whole fused program; its reads are global
          // positions, so the identity translation is the right frame.
          plan.fused_refuter = sca::BatchRefuter::Make(plan.fused->fn,
                                                       plan.fused_translation);
        } else {
          // Built only now: the refuter borrows the stage's own translation,
          // so the vector must not grow (or be copied) afterwards.
          for (ChainStage& s : stages) {
            if (s.op != nullptr && s.op->udf != nullptr) {
              s.refuter = sca::BatchRefuter::Make(*s.op->udf, s.translation);
            }
          }
        }
      }
    }
    const dataflow::Operator& op = af_.flow->op(n->op_id);
    switch (op.kind) {
      case OpKind::kSource:
        return Scan(*n, plan);
      case OpKind::kSink: {
        // Unfused mode only (a forward-shipped sink is always a stage when
        // fusing): projection to the sink schema happens in Execute().
        StatusOr<Partitions> in = Exec(*n->children[0]);
        if (!in.ok()) return in.status();
        return in;
      }
      case OpKind::kMap:
        return ExecMap(*n, op, plan);
      case OpKind::kReduce:
        return ExecReduce(*n, op, plan);
      case OpKind::kMatch:
        return ExecMatch(*n, op, plan);
      case OpKind::kCross:
        return ExecCross(*n, op, plan);
      case OpKind::kCoGroup:
        return ExecCoGroup(*n, op, plan);
    }
    return Status::Internal("unreachable operator kind");
  }

  /// Chain specialization (DESIGN.md §2.6): constant-folds the chain's
  /// stages into one fused program. Only chains with at least one Map stage
  /// are fused — fusing a bare sink projection would move an unmetered copy
  /// loop into metered interpreter instructions for zero saved work. A sink
  /// stage, when present, is always last (chains are collected top-down from
  /// the plan root); anything unexpected just leaves the staged path in
  /// place, as does a fuser bail.
  void TryFuse(ChainPlan* plan) {
    bool has_map = false;
    for (const ChainStage& s : plan->stages) has_map |= (s.op != nullptr);
    if (!has_map) return;
    std::vector<tac::FuseStage> fs;
    const std::vector<int>* sink_positions = nullptr;
    for (size_t i = 0; i < plan->stages.size(); ++i) {
      const ChainStage& s = plan->stages[i];
      if (s.op == nullptr) {
        if (i + 1 != plan->stages.size()) return;  // sink must be terminal
        sink_positions = &s.sink_schema;
        break;
      }
      if (s.op->udf == nullptr) return;
      tac::FuseStage f;
      f.fn = s.op->udf.get();
      f.input_map = s.translation.input_maps.empty()
                        ? nullptr
                        : &s.translation.input_maps[0];
      f.output_map = s.translation.output_map.empty()
                         ? nullptr
                         : &s.translation.output_map;
      fs.push_back(f);
    }
    const int width = static_cast<int>(af_.global.size());
    std::optional<tac::FusedChainProgram> fused =
        tac::FuseMapChain(fs, width, sink_positions);
    if (!fused) return;
    plan->fused = std::move(fused);
    plan->input_width = width;
    plan->fused_translation.global_width =
        sink_positions ? static_cast<int>(sink_positions->size()) : width;
    // Exec recursion is serial (producers run their subtree to completion
    // before partition tasks start), so this is an unsynchronized counter.
    if (stats_) stats_->fused_chains++;
  }

  /// True if the executed chains already projected the sink output (the
  /// root chain contained the sink stage), so Execute() must not re-project.
  bool sink_projected() const { return sink_projected_; }

  /// The peak-memory meter (DESIGN.md §2.3): the highest in-memory buffer
  /// footprint any single instance reached. Each instance's ledger is
  /// touched only by its own partition task or the serial shuffle, so the
  /// maximum is a pure function of (plan, data, dop, budget, mode).
  int64_t peak_bytes() const {
    int64_t peak = 0;
    for (const MemoryLedger& l : ledgers_) {
      peak = std::max(peak, l.peak_bytes());
    }
    return peak;
  }

 private:
  Partitions NewPartitions() {
    Partitions parts;
    parts.reserve(ledgers_.size());
    for (MemoryLedger& l : ledgers_) {
      parts.push_back(std::make_unique<SpillableBuffer>(
          &l, &spill_, options_.batch_capacity));
    }
    return parts;
  }

  ChainStage MakeStage(const PhysicalNode& node) {
    const dataflow::Operator& op = af_.flow->op(node.op_id);
    ChainStage s;
    s.node = &node;
    if (op.kind == OpKind::kSink) {
      const OpProperties& p = af_.of(node.op_id);
      s.sink_schema.assign(p.out_schema.begin(), p.out_schema.end());
      sink_projected_ = true;
    } else {
      s.op = &op;
      s.translation = MakeTranslation(node);
    }
    return s;
  }

  /// Builds the redirection tables for one operator occurrence: local field
  /// index -> global record position (Definition 1's α map), with concat
  /// ownership derived from the actual child subtrees of this plan.
  FieldTranslation MakeTranslation(const PhysicalNode& node) {
    const OpProperties& p = af_.of(node.op_id);
    FieldTranslation t;
    t.global_width = af_.global.size();
    t.input_maps.resize(p.in_schemas.size());
    for (size_t i = 0; i < p.in_schemas.size(); ++i) {
      t.input_maps[i].assign(p.in_schemas[i].begin(), p.in_schemas[i].end());
    }
    t.output_map.assign(p.out_schema.begin(), p.out_schema.end());
    // Extend input maps so writes of *new* attributes on copied input records
    // resolve (positions >= original input arity map to the new attrs).
    for (auto& m : t.input_maps) {
      for (size_t pos = m.size(); pos < p.out_schema.size(); ++pos) {
        m.push_back(p.out_schema[pos]);
      }
    }
    // Concat ownership: the attributes actually originating in each child
    // subtree of *this* plan (not the original flow) — reordering moves
    // attribute origins across join inputs.
    if (node.children.size() == 2) {
      t.concat_positions.resize(2);
      for (int i = 0; i < 2; ++i) {
        t.concat_positions[i] = LiveAttrs(*node.children[i]);
      }
    }
    return t;
  }

  std::vector<int> LiveAttrs(const PhysicalNode& node) {
    std::set<AttrId> acc;
    std::function<void(const PhysicalNode&)> walk = [&](const PhysicalNode& n) {
      const OpProperties& p = af_.of(n.op_id);
      for (AttrId a : p.introduced.listed()) acc.insert(a);
      for (const auto& c : n.children) walk(*c);
    };
    walk(node);
    return std::vector<int>(acc.begin(), acc.end());
  }

  /// Runs body(pi, &meters) for every partition as independent tasks on the
  /// pool. The per-partition meters are merged into stats_ in partition
  /// order and the lowest-partition error (if any) is returned, so both the
  /// outcome and the meters are independent of scheduling order.
  Status ForEachPartition(
      const std::function<Status(size_t, ExecStats*)>& body) {
    const size_t n = static_cast<size_t>(options_.dop);
    std::vector<Status> statuses(n);
    std::vector<ExecStats> meters(n);
    pool_->ParallelFor(
        n,
        [&](size_t pi) {
          // Per-task cancellation point: a partition task that starts after
          // the token fired returns immediately instead of running its whole
          // body, so wide fan-outs unwind without finishing every split.
          if (options_.cancel != nullptr) {
            statuses[pi] = options_.cancel->Check();
            if (!statuses[pi].ok()) return;
          }
          statuses[pi] = body(pi, &meters[pi]);
        },
        options_.task_priority);
    for (size_t pi = 0; pi < n; ++pi) {
      if (!statuses[pi].ok()) return statuses[pi];
    }
    if (stats_) {
      for (size_t pi = 0; pi < n; ++pi) stats_->AddCounters(meters[pi]);
    }
    return Status::OK();
  }

  StatusOr<Partitions> Scan(const PhysicalNode& node, const ChainPlan& chain) {
    auto it = sources_.find(node.op_id);
    if (it == sources_.end()) {
      return Status::InvalidArgument("no data bound for source " +
                                     af_.flow->op(node.op_id).name);
    }
    const OpProperties& p = af_.of(node.op_id);
    const int width = af_.global.size();
    const DataSet& src = *it->second;
    const size_t dop = static_cast<size_t>(options_.dop);
    Partitions parts = NewPartitions();
    // Partition pi scans the contiguous split [pi·N/dop, (pi+1)·N/dop) —
    // the byte-range split assignment of a distributed file scan. Contiguous
    // splits preserve any physical clustering of the input (e.g. TPC-H
    // lineitem's orderkey order), which downstream batch and run-header
    // sketches inherit (DESIGN.md §2.5); a round-robin assignment would
    // interleave the whole table into every partition and make every sketch
    // full-range. The widened record enters the chain: with fused stages
    // above, it streams through them batch-wise and never materializes on
    // its own.
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      ChainRunner runner(&chain, options_.batch_capacity, parts[pi].get(),
                         meters, options_.cancel);
      const size_t lo = pi * src.size() / dop;
      const size_t hi = (pi + 1) * src.size() / dop;
      for (size_t i = lo; i < hi; ++i) {
        const Record& rec = src.record(i);
        Record wide;
        if (width > 0) wide.SetField(width - 1, Value::Null());
        for (size_t f = 0; f < rec.num_fields() && f < p.out_schema.size();
             ++f) {
          wide.SetField(p.out_schema[f], rec.field(f));
        }
        BLACKBOX_RETURN_NOT_OK(runner.Push(std::move(wide)));
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    return parts;
  }

  /// Applies a shipping strategy, metering network bytes from the batches'
  /// cached record sizes. Runs on the calling thread: shuffles move records
  /// *between* partitions, so they are the serial barrier separating
  /// parallel per-partition stages. Destination buffers live on the
  /// destination instances' ledgers and spill under their budgets.
  StatusOr<Partitions> Ship(Partitions in, ShipStrategy strategy,
                            const std::vector<AttrId>& key) {
    switch (strategy) {
      case ShipStrategy::kForward:
        return in;
      case ShipStrategy::kPartitionHash: {
        ExecStats local;  // serial-phase meters, merged below
        Partitions out = NewPartitions();
        BatchPool pool;
        for (size_t from = 0; from < in.size(); ++from) {
          Status st = in[from]->DrainBatches(
              &local, &pool, [&](RecordBatch&& b) -> Status {
                // The cached sizes ARE the meter; this guards the cache
                // against ever drifting from Record::SerializedSize.
                assert(b.bytes() == b.RecomputeBytes());
                for (size_t i = 0; i < b.size(); ++i) {
                  Record& r = b.mutable_record(i);
                  size_t to = KeyHash(KeyOf(r, key)) % options_.dop;
                  if (to != from) local.network_bytes += b.record_bytes(i);
                  // Drained input batches cycle through the pool into the
                  // destination buffers' tails: the shuffle rewrites
                  // partitions without reallocating batch backing stores.
                  BLACKBOX_RETURN_NOT_OK(out[to]->Push(
                      std::move(r), b.record_bytes(i), &local, &pool));
                }
                pool.Release(std::move(b));
                return Status::OK();
              });
          if (!st.ok()) return st;
        }
        if (stats_) stats_->AddCounters(local);
        return out;
      }
      case ShipStrategy::kBroadcast: {
        ExecStats local;
        Partitions out = NewPartitions();
        BatchPool pool;
        // Stage the gathered stream in instance 0's buffer (in partition
        // order, like a serial gather), then replicate it to every other
        // instance — each copy is resident on its own instance's ledger and
        // spills under that instance's budget.
        for (size_t from = 0; from < in.size(); ++from) {
          Status st = in[from]->DrainBatches(
              &local, &pool, [&](RecordBatch&& b) -> Status {
                for (size_t i = 0; i < b.size(); ++i) {
                  BLACKBOX_RETURN_NOT_OK(
                      out[0]->Push(std::move(b.mutable_record(i)),
                                   b.record_bytes(i), &local, &pool));
                }
                pool.Release(std::move(b));
                return Status::OK();
              });
          if (!st.ok()) return st;
        }
        int64_t staged = static_cast<int64_t>(out[0]->payload_bytes());
        if (options_.dop > 1) {
          Status st = out[0]->ForEachBatch(
              &local, &pool, [&](const RecordBatch& b) -> Status {
                for (size_t i = 0; i < b.size(); ++i) {
                  for (int to = 1; to < options_.dop; ++to) {
                    Record copy = b.record(i);
                    BLACKBOX_RETURN_NOT_OK(out[to]->Push(
                        std::move(copy), b.record_bytes(i), &local));
                  }
                }
                return Status::OK();
              });
          if (!st.ok()) return st;
          local.network_bytes += staged * (options_.dop - 1);
        }
        if (stats_) stats_->AddCounters(local);
        return out;
      }
    }
    return in;
  }

  static Status CallUdf(const Interpreter& interp, const CallInputs& inputs,
                        const FieldTranslation& t, std::vector<Record>* out,
                        ExecStats* meters) {
    interp::RunStats rs;
    BLACKBOX_RETURN_NOT_OK(interp.Run(inputs, t, out, &rs));
    meters->udf_calls++;
    meters->interp_instructions += rs.instructions;
    meters->cpu_burn_units += rs.cpu_burn_units;
    return Status::OK();
  }

  /// Unfused Map (fuse_chains off, or a defensively non-forward ship): one
  /// materialized pass, the pre-streaming behavior.
  StatusOr<Partitions> ExecMap(const PhysicalNode& node,
                               const dataflow::Operator& op,
                               const ChainPlan& chain) {
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    StatusOr<Partitions> shipped =
        Ship(std::move(in_or).value(), node.ships[0], {});
    if (!shipped.ok()) return shipped.status();
    Partitions in = std::move(shipped).value();
    FieldTranslation t = MakeTranslation(node);
    // Unfused batch skipping: the materialized input batches carry their
    // sketches from the append path, so refutation here reads them for free.
    std::optional<sca::BatchRefuter> refuter;
    if (options_.enable_data_skipping && op.udf != nullptr) {
      refuter = sca::BatchRefuter::Make(*op.udf, t);
    }
    Partitions out = NewPartitions();
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());  // task-local interpreter
      ChainRunner runner(&chain, options_.batch_capacity, out[pi].get(),
                         meters, options_.cancel);
      BatchPool pool;
      std::vector<Record> emitted;
      BLACKBOX_RETURN_NOT_OK(in[pi]->DrainBatches(
          meters, &pool, [&](RecordBatch&& b) -> Status {
            if (refuter && refuter->RefutesEmit(SketchRanges(b.sketch()))) {
              ++meters->skipped_batches;
              pool.Release(std::move(b));
              return Status::OK();
            }
            for (size_t i = 0; i < b.size(); ++i) {
              CallInputs ci;
              ci.groups = {{&b.record(i)}};
              BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
              meters->records_processed++;
              BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
            }
            pool.Release(std::move(b));
            return Status::OK();
          }));
      return runner.Flush();
    });
    if (!st.ok()) return st;
    return out;
  }

  /// Builds the key-ordered stream of one partition's input: the external
  /// sorter by default, or the zero-buffering pass-through when the plan
  /// established the input as presorted on the key — the fast path is
  /// decided here, next to the spill machinery, not by the caller.
  StatusOr<std::unique_ptr<KeyedStream>> MakeKeyedStream(
      size_t pi, SpillableBuffer* in, const std::vector<AttrId>& key,
      bool presorted, BatchPool* pool, ExecStats* m) {
    if (presorted) {
      return std::unique_ptr<KeyedStream>(
          std::make_unique<PresortedStream>(in, key, pool));
    }
    auto sorter = std::make_unique<ExternalSorter>(&ledgers_[pi], &spill_, key,
                                                   options_.batch_capacity);
    BLACKBOX_RETURN_NOT_OK(
        in->DrainBatches(m, pool, [&](RecordBatch&& b) -> Status {
          for (size_t i = 0; i < b.size(); ++i) {
            BLACKBOX_RETURN_NOT_OK(sorter->Push(std::move(b.mutable_record(i)),
                                                b.record_bytes(i), m));
          }
          pool->Release(std::move(b));
          return Status::OK();
        }));
    BLACKBOX_RETURN_NOT_OK(sorter->Finish(m));
    return std::unique_ptr<KeyedStream>(std::move(sorter));
  }

  /// One sort-group pass over `in`, calling the UDF once per key group.
  /// Shared by the plain Reduce, the combiner's pre-aggregation pass, and
  /// the combiner's post-shuffle pass. Emitted records stream through the
  /// chain `stages` (empty for the pre-aggregation pass). With `presorted`
  /// the input streams its groups directly — no sort buffer, no spill, zero
  /// bytes registered with the ledger (asserted).
  Status SortGroupPass(Partitions* in, const dataflow::Operator& op,
                       const std::vector<AttrId>& key,
                       const FieldTranslation& t, bool presorted,
                       const ChainPlan& chain, Partitions* out) {
    return ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&chain, options_.batch_capacity, (*out)[pi].get(),
                         meters, options_.cancel);
      BatchPool pool;
      meters->records_processed +=
          static_cast<int64_t>((*in)[pi]->rows());
#ifndef NDEBUG
      // The presorted fast path's contract: the input stream registers zero
      // bytes with the ledger — every byte reserved during this pass must be
      // an output push (checked against the output buffer's growth below).
      const int64_t reserved_before = ledgers_[pi].lifetime_reserved();
      const int64_t out_before =
          static_cast<int64_t>((*out)[pi]->payload_bytes());
#endif
      StatusOr<std::unique_ptr<KeyedStream>> stream =
          MakeKeyedStream(pi, (*in)[pi].get(), key, presorted, &pool, meters);
      if (!stream.ok()) return stream.status();
      GroupReader groups(stream->get());
      std::vector<Value> gkey;
      std::vector<Record> members;
      std::vector<Record> emitted;
      for (;;) {
        StatusOr<bool> has = groups.NextGroup(meters, &gkey, &members);
        if (!has.ok()) return has.status();
        if (!*has) break;
        CallInputs ci;
        ci.groups.resize(1);
        ci.groups[0].reserve(members.size());
        for (const Record& r : members) ci.groups[0].push_back(&r);
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
        BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
      }
      BLACKBOX_RETURN_NOT_OK(runner.Flush());
#ifndef NDEBUG
      assert(!presorted ||
             ledgers_[pi].lifetime_reserved() - reserved_before ==
                 static_cast<int64_t>((*out)[pi]->payload_bytes()) -
                     out_before);
#endif
      return Status::OK();
    });
  }

  StatusOr<Partitions> ExecReduce(const PhysicalNode& node,
                                  const dataflow::Operator& op,
                                  const ChainPlan& chain) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    Partitions in = std::move(in_or).value();
    FieldTranslation t = MakeTranslation(node);
    static const ChainPlan kNoChain;
    if (node.local == LocalStrategy::kPreAggregate) {
      // Combiner: aggregate each producer partition's local groups *before*
      // the shuffle. The partial records use the Reduce's own output layout
      // (combinability guarantees it coincides with the input layout), so
      // the post-shuffle pass below runs the identical UDF unchanged and the
      // shuffle ships at most (distinct keys × dop) records.
      Partitions combined = NewPartitions();
      BLACKBOX_RETURN_NOT_OK(SortGroupPass(&in, op, p.keys[0], t,
                                           /*presorted=*/false, kNoChain,
                                           &combined));
      in = std::move(combined);
    }
    StatusOr<Partitions> shipped =
        Ship(std::move(in), node.ships[0], p.keys[0]);
    if (!shipped.ok()) return shipped.status();
    in = std::move(shipped).value();
    Partitions out = NewPartitions();
    // A presorted forward input streams its groups: no sort buffer, no
    // spill — the stream choice (and the zero-buffering assert) live in
    // MakeKeyedStream, next to the spill machinery.
    bool presorted = node.local != LocalStrategy::kPreAggregate &&
                     !node.input_presorted.empty() && node.input_presorted[0];
    BLACKBOX_RETURN_NOT_OK(
        SortGroupPass(&in, op, p.keys[0], t, presorted, chain, &out));
    return out;
  }

  /// Sort-merge equi-join of one partition: both sides as key-ordered
  /// streams (external sorter, or the free pass-through for a side the plan
  /// established as presorted — the claimed order is still verified at run
  /// time), equal-key runs joined pairwise with the left run streamed
  /// outermost in arrival order. The stable sorts keep arrival order within
  /// equal keys, so a downstream operator grouping on this key sees members
  /// in the same relative order a hash join probing a sorted stream would
  /// deliver.
  Status MergeJoinPartition(size_t pi, SpillableBuffer* left,
                            SpillableBuffer* right,
                            const std::vector<AttrId>& lkey,
                            const std::vector<AttrId>& rkey, bool lsorted,
                            bool rsorted, const Interpreter& interp,
                            const FieldTranslation& t, ChainRunner* runner,
                            ExecStats* meters) {
    BatchPool pool;
    meters->records_processed +=
        static_cast<int64_t>(left->rows() + right->rows());
    // The left sorter fills and finishes first; while it grows, the
    // still-undrained right buffer remains an eviction candidate, so the
    // instance never holds both sides' sort buffers un-spilled over budget.
    StatusOr<std::unique_ptr<KeyedStream>> ls =
        MakeKeyedStream(pi, left, lkey, lsorted, &pool, meters);
    if (!ls.ok()) return ls.status();
    StatusOr<std::unique_ptr<KeyedStream>> rs =
        MakeKeyedStream(pi, right, rkey, rsorted, &pool, meters);
    if (!rs.ok()) return rs.status();
    GroupReader gl(ls->get());
    GroupReader gr(rs->get());
    std::vector<Value> lk, rk;
    std::vector<Record> lmem, rmem;
    std::vector<Record> emitted;
    StatusOr<bool> lh = gl.NextGroup(meters, &lk, &lmem);
    if (!lh.ok()) return lh.status();
    StatusOr<bool> rh = gr.NextGroup(meters, &rk, &rmem);
    if (!rh.ok()) return rh.status();
    while (*lh && *rh) {
      if (KeyLess(lk, rk)) {
        lh = gl.NextGroup(meters, &lk, &lmem);
        if (!lh.ok()) return lh.status();
        continue;
      }
      if (KeyLess(rk, lk)) {
        rh = gr.NextGroup(meters, &rk, &rmem);
        if (!rh.ok()) return rh.status();
        continue;
      }
      for (const Record& a : lmem) {
        for (const Record& b : rmem) {
          CallInputs ci;
          ci.groups = {{&a}, {&b}};
          BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
          BLACKBOX_RETURN_NOT_OK(runner->Consume(&emitted));
        }
      }
      lh = gl.NextGroup(meters, &lk, &lmem);
      if (!lh.ok()) return lh.status();
      rh = gr.NextGroup(meters, &rk, &rmem);
      if (!rh.ok()) return rh.status();
    }
    return Status::OK();
  }

  /// Budget-respecting hash join of one partition that preserves the exact
  /// output sequence of the in-memory path (probe arrival order, matches in
  /// build arrival order): the probe side is drained batch-wise, and for
  /// each probe batch the build side is re-scanned (spilled runs re-read,
  /// metered) one batch at a time — each build batch gets a transient
  /// key table, matches accumulate per probe record in build-batch order
  /// (batches are arrival-contiguous, so that IS build arrival order), and
  /// emission is probe-record-major. A probe batch's accumulated matches are
  /// pinned working set on the partition's ledger — the table holds record
  /// copies that cannot be evicted mid-probe, so they must count against the
  /// instance like the resident build side of the in-memory path
  /// (DESIGN.md §2.3).
  Status BlockHashJoinPartition(size_t pi, SpillableBuffer* build,
                                SpillableBuffer* probe,
                                const std::vector<AttrId>& build_key,
                                const std::vector<AttrId>& probe_key,
                                bool build_left, const Interpreter& interp,
                                const FieldTranslation& t, ChainRunner* runner,
                                ExecStats* meters) {
    BatchPool pool;
    meters->records_processed +=
        static_cast<int64_t>(build->rows() + probe->rows());
    std::vector<Record> emitted;
    return probe->DrainBatches(
        meters, &pool, [&](RecordBatch&& pb) -> Status {
          std::vector<std::vector<Value>> probe_keys(pb.size());
          std::vector<std::vector<Record>> matches(pb.size());
          for (size_t i = 0; i < pb.size(); ++i) {
            probe_keys[i] = KeyOf(pb.record(i), probe_key);
          }
          // Run skipping (DESIGN.md §2.5): a build run (or in-memory batch)
          // whose key-column ranges cannot intersect this probe batch's
          // cannot contribute a match — its re-read is elided entirely.
          // Value equality is exact-type, so each key column is refuted
          // per-type by RangesMayIntersect.
          SpillableBuffer::SkipFn skip_fn;
          const SpillableBuffer::SkipFn* skip = nullptr;
          if (options_.enable_data_skipping) {
            std::vector<ValueRange> probe_ranges(build_key.size());
            for (size_t k = 0; k < build_key.size(); ++k) {
              probe_ranges[k] =
                  pb.sketch().ColumnRange(static_cast<size_t>(probe_key[k]));
            }
            // By value: the ranges must outlive this block (the predicate
            // runs inside ForEachBatch below).
            skip_fn = [probe_ranges = std::move(probe_ranges),
                       &build_key](const ZoneMapSketch& s) -> bool {
              for (size_t k = 0; k < build_key.size(); ++k) {
                if (!RangesMayIntersect(
                        probe_ranges[k],
                        s.ColumnRange(static_cast<size_t>(build_key[k])))) {
                  return true;
                }
              }
              return false;
            };
            skip = &skip_fn;
          }
          PinnedBytes resident(&ledgers_[pi]);
          Status st = build->ForEachBatch(
              meters, &pool,
              [&](const RecordBatch& bb) -> Status {
                std::map<std::vector<Value>, std::vector<size_t>> table;
                for (size_t j = 0; j < bb.size(); ++j) {
                  table[KeyOf(bb.record(j), build_key)].push_back(j);
                }
                for (size_t i = 0; i < pb.size(); ++i) {
                  auto it = table.find(probe_keys[i]);
                  if (it == table.end()) continue;
                  for (size_t j : it->second) {
                    BLACKBOX_RETURN_NOT_OK(resident.Add(
                        static_cast<int64_t>(bb.record_bytes(j)), meters));
                    matches[i].push_back(bb.record(j));
                  }
                }
                return Status::OK();
              },
              skip);
          BLACKBOX_RETURN_NOT_OK(st);
          for (size_t i = 0; i < pb.size(); ++i) {
            for (const Record& b : matches[i]) {
              CallInputs ci;
              const Record* lrec = build_left ? &b : &pb.record(i);
              const Record* rrec = build_left ? &pb.record(i) : &b;
              ci.groups = {{lrec}, {rrec}};
              BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
              BLACKBOX_RETURN_NOT_OK(runner->Consume(&emitted));
            }
          }
          pool.Release(std::move(pb));
          return Status::OK();
        });
  }

  StatusOr<Partitions> ExecMatch(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const ChainPlan& chain) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    StatusOr<Partitions> ls =
        Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    if (!ls.ok()) return ls.status();
    StatusOr<Partitions> rs =
        Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    if (!rs.ok()) return rs.status();
    Partitions left = std::move(ls).value();
    Partitions right = std::move(rs).value();
    FieldTranslation t = MakeTranslation(node);
    if (node.local == LocalStrategy::kSortMergeJoin) {
      Partitions out = NewPartitions();
      Status st =
          ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
            Interpreter interp(op.udf.get());
            ChainRunner runner(&chain, options_.batch_capacity,
                               out[pi].get(), meters, options_.cancel);
            bool lsorted = node.input_presorted.size() >= 2 &&
                           node.input_presorted[0];
            bool rsorted = node.input_presorted.size() >= 2 &&
                           node.input_presorted[1];
            BLACKBOX_RETURN_NOT_OK(MergeJoinPartition(
                pi, left[pi].get(), right[pi].get(), p.keys[0], p.keys[1],
                lsorted, rsorted, interp, t, &runner, meters));
            return runner.Flush();
          });
      if (!st.ok()) return st;
      return out;
    }
    bool build_left = node.local == LocalStrategy::kHashJoinBuildLeft;
    Partitions out = NewPartitions();
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&chain, options_.batch_capacity, out[pi].get(),
                         meters, options_.cancel);
      SpillableBuffer* build = (build_left ? left : right)[pi].get();
      SpillableBuffer* probe = (build_left ? right : left)[pi].get();
      const std::vector<AttrId>& build_key = build_left ? p.keys[0] : p.keys[1];
      const std::vector<AttrId>& probe_key = build_left ? p.keys[1] : p.keys[0];
      // The spill manager decides the strategy: a build side that fits the
      // instance budget is pinned in memory and probed in arrival order
      // (the classic path below); a larger one cannot be held as a table at
      // all. Then, when no downstream consumer can rely on this node's
      // output order (the planner tracked none), the partition executes as
      // an external sort-merge join — key-major output, which key-grouped
      // consumers see identically (DESIGN.md §3.1). When the plan DOES
      // carry an output order (the probe side's, which hash joins
      // propagate), key-major output could break a downstream presorted
      // claim, so the partition runs a block hash join instead — probe
      // order preserved exactly (DESIGN.md §2.3). A build side whose
      // spilled runs show key clustering (detected from the run-header
      // sketches alone) also takes the block join: the per-probe-batch
      // re-scan can then refute narrow runs (DESIGN.md §2.5), where the
      // merge join would pay a full external sort of both sides. That test
      // reads sketches, never the skipping switch, so the chosen strategy —
      // and with it the disk + skipped_spill_bytes sum — is identical with
      // skipping on and off.
      if (static_cast<double>(build->payload_bytes()) >
          options_.mem_budget_bytes) {
        if (node.sort_order.empty() &&
            !build->SpilledRunsAreKeyClustered(build_key)) {
          BLACKBOX_RETURN_NOT_OK(MergeJoinPartition(
              pi, left[pi].get(), right[pi].get(), p.keys[0], p.keys[1],
              /*lsorted=*/false, /*rsorted=*/false, interp, t, &runner,
              meters));
        } else {
          BLACKBOX_RETURN_NOT_OK(BlockHashJoinPartition(
              pi, build, probe, build_key, probe_key, build_left, interp, t,
              &runner, meters));
        }
        return runner.Flush();
      }
      BatchPool pool;
      meters->records_processed +=
          static_cast<int64_t>(build->rows() + probe->rows());
      // Materialize the build side resident (pinned: the table references
      // its records, so it must not be evicted mid-probe; co-resident
      // buffers are evicted to make room — it fits by the check above).
      PinnedBytes resident(&ledgers_[pi]);
      std::vector<RecordBatch> build_run;
      BLACKBOX_RETURN_NOT_OK(build->DrainBatches(
          meters, &pool, [&](RecordBatch&& b) -> Status {
            BLACKBOX_RETURN_NOT_OK(
                resident.Add(static_cast<int64_t>(b.bytes()), meters));
            build_run.push_back(std::move(b));
            return Status::OK();
          }));
      // Partition-local build table.
      std::map<std::vector<Value>, std::vector<const Record*>> table;
      for (const RecordBatch& b : build_run) {
        for (size_t i = 0; i < b.size(); ++i) {
          table[KeyOf(b.record(i), build_key)].push_back(&b.record(i));
        }
      }
      std::vector<Record> emitted;
      BLACKBOX_RETURN_NOT_OK(probe->DrainBatches(
          meters, &pool, [&](RecordBatch&& pb) -> Status {
            for (size_t i = 0; i < pb.size(); ++i) {
              const Record& r = pb.record(i);
              auto it = table.find(KeyOf(r, probe_key));
              if (it == table.end()) continue;
              for (const Record* b : it->second) {
                CallInputs ci;
                const Record* lrec = build_left ? b : &r;
                const Record* rrec = build_left ? &r : b;
                ci.groups = {{lrec}, {rrec}};
                BLACKBOX_RETURN_NOT_OK(
                    CallUdf(interp, ci, t, &emitted, meters));
                BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
              }
            }
            pool.Release(std::move(pb));
            return Status::OK();
          }));
      return runner.Flush();
    });
    if (!st.ok()) return st;
    return out;
  }

  StatusOr<Partitions> ExecCross(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const ChainPlan& chain) {
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    StatusOr<Partitions> ls = Ship(std::move(l_or).value(), node.ships[0], {});
    if (!ls.ok()) return ls.status();
    StatusOr<Partitions> rs = Ship(std::move(r_or).value(), node.ships[1], {});
    if (!rs.ok()) return rs.status();
    Partitions left = std::move(ls).value();
    Partitions right = std::move(rs).value();
    FieldTranslation t = MakeTranslation(node);
    Partitions out = NewPartitions();
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&chain, options_.batch_capacity, out[pi].get(),
                         meters, options_.cancel);
      BatchPool pool;
      SpillableBuffer* lbuf = left[pi].get();
      SpillableBuffer* rbuf = right[pi].get();
      meters->records_processed +=
          static_cast<int64_t>(lbuf->rows() + rbuf->rows());
      std::vector<Record> emitted;
      if (static_cast<double>(rbuf->payload_bytes()) <=
          options_.mem_budget_bytes) {
        // Inner side fits: pin it resident and loop exactly like the
        // in-memory engine (left-record-major across the whole right side).
        PinnedBytes resident(&ledgers_[pi]);
        std::vector<RecordBatch> right_run;
        BLACKBOX_RETURN_NOT_OK(rbuf->DrainBatches(
            meters, &pool, [&](RecordBatch&& b) -> Status {
              BLACKBOX_RETURN_NOT_OK(
                  resident.Add(static_cast<int64_t>(b.bytes()), meters));
              right_run.push_back(std::move(b));
              return Status::OK();
            }));
        BLACKBOX_RETURN_NOT_OK(lbuf->DrainBatches(
            meters, &pool, [&](RecordBatch&& lb) -> Status {
              for (size_t i = 0; i < lb.size(); ++i) {
                for (const RecordBatch& rb : right_run) {
                  for (size_t j = 0; j < rb.size(); ++j) {
                    CallInputs ci;
                    ci.groups = {{&lb.record(i)}, {&rb.record(j)}};
                    BLACKBOX_RETURN_NOT_OK(
                        CallUdf(interp, ci, t, &emitted, meters));
                    BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
                  }
                }
              }
              pool.Release(std::move(lb));
              return Status::OK();
            }));
      } else {
        // Block nested loop: the right side stays partially on disk and is
        // re-scanned once per LEFT BATCH (each re-read metered). Pairs come
        // out block-major — a permutation of the in-memory order, covered by
        // the sorted-sink differential contract (the planner tracks no
        // output order through a Cross, so no presorted claim can break).
        BLACKBOX_RETURN_NOT_OK(lbuf->DrainBatches(
            meters, &pool, [&](RecordBatch&& lb) -> Status {
              Status st2 = rbuf->ForEachBatch(
                  meters, &pool, [&](const RecordBatch& rb) -> Status {
                    for (size_t i = 0; i < lb.size(); ++i) {
                      for (size_t j = 0; j < rb.size(); ++j) {
                        CallInputs ci;
                        ci.groups = {{&lb.record(i)}, {&rb.record(j)}};
                        BLACKBOX_RETURN_NOT_OK(
                            CallUdf(interp, ci, t, &emitted, meters));
                        BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
                      }
                    }
                    return Status::OK();
                  });
              BLACKBOX_RETURN_NOT_OK(st2);
              pool.Release(std::move(lb));
              return Status::OK();
            }));
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    return out;
  }

  StatusOr<Partitions> ExecCoGroup(const PhysicalNode& node,
                                   const dataflow::Operator& op,
                                   const ChainPlan& chain) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    StatusOr<Partitions> ls =
        Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    if (!ls.ok()) return ls.status();
    StatusOr<Partitions> rs =
        Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    if (!rs.ok()) return rs.status();
    Partitions left = std::move(ls).value();
    Partitions right = std::move(rs).value();
    FieldTranslation t = MakeTranslation(node);
    Partitions out = NewPartitions();
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&chain, options_.batch_capacity, out[pi].get(),
                         meters, options_.cancel);
      BatchPool pool;
      meters->records_processed += static_cast<int64_t>(
          left[pi]->rows() + right[pi]->rows());
      // Per-side key-ordered streams (a presorted side streams its groups
      // for free and never spills); the union of keys is walked in key
      // order, exactly the old sorted-map iteration.
      bool lsorted =
          node.input_presorted.size() >= 2 && node.input_presorted[0];
      bool rsorted =
          node.input_presorted.size() >= 2 && node.input_presorted[1];
      StatusOr<std::unique_ptr<KeyedStream>> lstream = MakeKeyedStream(
          pi, left[pi].get(), p.keys[0], lsorted, &pool, meters);
      if (!lstream.ok()) return lstream.status();
      StatusOr<std::unique_ptr<KeyedStream>> rstream = MakeKeyedStream(
          pi, right[pi].get(), p.keys[1], rsorted, &pool, meters);
      if (!rstream.ok()) return rstream.status();
      GroupReader gl(lstream->get());
      GroupReader gr(rstream->get());
      std::vector<Value> lk, rk;
      std::vector<Record> lmem, rmem;
      std::vector<Record> emitted;
      StatusOr<bool> lh = gl.NextGroup(meters, &lk, &lmem);
      if (!lh.ok()) return lh.status();
      StatusOr<bool> rh = gr.NextGroup(meters, &rk, &rmem);
      if (!rh.ok()) return rh.status();
      while (*lh || *rh) {
        bool take_left = *lh && (!*rh || !KeyLess(rk, lk));
        bool take_right = *rh && (!*lh || !KeyLess(lk, rk));
        CallInputs ci;
        ci.groups.resize(2);
        if (take_left) {
          ci.groups[0].reserve(lmem.size());
          for (const Record& r : lmem) ci.groups[0].push_back(&r);
        }
        if (take_right) {
          ci.groups[1].reserve(rmem.size());
          for (const Record& r : rmem) ci.groups[1].push_back(&r);
        }
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
        BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
        if (take_left) {
          lh = gl.NextGroup(meters, &lk, &lmem);
          if (!lh.ok()) return lh.status();
        }
        if (take_right) {
          rh = gr.NextGroup(meters, &rk, &rmem);
          if (!rh.ok()) return rh.status();
        }
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    return out;
  }

  const dataflow::AnnotatedFlow& af_;
  const std::map<int, const DataSet*>& sources_;
  const ExecOptions& options_;
  TaskPool* pool_;
  ExecStats* stats_;
  bool sink_projected_ = false;
  /// Shared spill-file factory (thread-safe) and one byte ledger per
  /// simulated instance: the spill manager layer (DESIGN.md §2.3).
  SpillManager spill_;
  std::vector<MemoryLedger> ledgers_;
};

}  // namespace

void ExecStats::AddCounters(const ExecStats& other) {
  network_bytes += other.network_bytes;
  disk_bytes += other.disk_bytes;
  udf_calls += other.udf_calls;
  interp_instructions += other.interp_instructions;
  cpu_burn_units += other.cpu_burn_units;
  records_processed += other.records_processed;
  skipped_batches += other.skipped_batches;
  skipped_spill_bytes += other.skipped_spill_bytes;
  fused_chains += other.fused_chains;
  specialized_instructions_saved += other.specialized_instructions_saved;
  projected_fields_skipped += other.projected_fields_skipped;
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "net=" + std::to_string(network_bytes) + "B";
  out += " disk=" + std::to_string(disk_bytes) + "B";
  out += " peak=" + std::to_string(peak_bytes) + "B";
  out += " udf_calls=" + std::to_string(udf_calls);
  out += " instrs=" + std::to_string(interp_instructions);
  out += " cpu_burn=" + std::to_string(cpu_burn_units);
  out += " records=" + std::to_string(records_processed);
  out += " skipped_batches=" + std::to_string(skipped_batches);
  out += " skipped_spill=" + std::to_string(skipped_spill_bytes) + "B";
  out += " fused_chains=" + std::to_string(fused_chains);
  out += " spec_saved=" + std::to_string(specialized_instructions_saved);
  out += " proj_skipped=" + std::to_string(projected_fields_skipped);
  out += " out_rows=" + std::to_string(output_rows);
  out += " wall=" + std::to_string(wall_seconds) + "s";
  out += " simulated=" + std::to_string(simulated_seconds) + "s";
  return out;
}

StatusOr<DataSet> Executor::Execute(const optimizer::PhysicalPlan& plan,
                                    ExecStats* stats) {
  if (!plan.root) return Status::InvalidArgument("empty physical plan");
  if (options_.batch_capacity < 1) {
    return Status::InvalidArgument("batch_capacity must be >= 1");
  }
  // A non-positive budget is a configuration bug, not a degraded mode: with
  // budget <= 0 every reservation is over budget and eviction degenerates
  // into a run file per record. Surface it cleanly (DESIGN.md §2.3).
  if (!(options_.mem_budget_bytes > 0)) {
    return Status::InvalidArgument(
        "mem_budget_bytes must be positive, got " +
        std::to_string(options_.mem_budget_bytes));
  }
  // Entry cancellation point: a query cancelled while queued — or submitted
  // with an already-expired deadline — never touches a source batch.
  if (options_.cancel != nullptr) {
    BLACKBOX_RETURN_NOT_OK(options_.cancel->Check());
  }
  auto start = std::chrono::steady_clock::now();
  TaskPool* workers = options_.worker_pool;
  if (workers == nullptr) {
    if (!pool_) pool_ = std::make_unique<TaskPool>(options_.num_threads);
    workers = pool_.get();
  }
  ExecContext ctx(*af_, sources_, options_, workers, stats);
  StatusOr<Partitions> out = ctx.Exec(*plan.root);
  if (!out.ok()) return out.status();

  // Gather in partition index order — the canonical output order for every
  // thread count. With a fused root chain the sink projection already ran
  // inside the chain; otherwise project onto the sink schema here so
  // alternative plans of the same flow produce directly comparable records.
  // Root buffers that spilled under the budget are streamed back from disk
  // (metered) — the gathered DataSet is the client-side result, outside the
  // budget's scope like the bound sources.
  const OpProperties& sink = af_->of(plan.root->op_id);
  ExecStats gather;
  BatchPool pool;
  DataSet result;
  for (std::unique_ptr<SpillableBuffer>& part : *out) {
    Status st = part->DrainBatches(
        &gather, &pool, [&](RecordBatch&& b) -> Status {
          for (size_t i = 0; i < b.size(); ++i) {
            if (ctx.sink_projected()) {
              // Chain output records ARE the final records: reuse their
              // cached sizes instead of re-walking every payload.
              result.AddWithSize(std::move(b.mutable_record(i)),
                                 b.record_bytes(i));
              continue;
            }
            result.Add(ProjectToSinkSchema(b.record(i), sink.out_schema));
          }
          pool.Release(std::move(b));
          return Status::OK();
        });
    if (!st.ok()) return st;
  }
  auto end = std::chrono::steady_clock::now();
  if (stats) {
    stats->AddCounters(gather);
    stats->output_rows = static_cast<int64_t>(result.size());
    stats->peak_bytes = ctx.peak_bytes();
    stats->wall_seconds = std::chrono::duration<double>(end - start).count();
    // simulated_seconds is a pure function of the meters (machine model),
    // deliberately NOT of wall_seconds: the simulated cluster's runtime must
    // not depend on how many real threads executed the simulation.
    double compute_seconds =
        static_cast<double>(stats->interp_instructions) /
            options_.interp_instructions_per_s +
        static_cast<double>(stats->cpu_burn_units) /
            options_.cpu_burn_units_per_s +
        static_cast<double>(stats->records_processed) / options_.records_per_s;
    stats->simulated_seconds =
        compute_seconds +
        static_cast<double>(stats->network_bytes) /
            options_.net_bandwidth_bytes_per_s +
        static_cast<double>(stats->disk_bytes) /
            options_.disk_bandwidth_bytes_per_s;
  }
  return result;
}

}  // namespace engine
}  // namespace blackbox
