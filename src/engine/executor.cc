#include "engine/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <map>

#include "common/task_pool.h"
#include "interp/interp.h"
#include "reorder/plan.h"

namespace blackbox {
namespace engine {

using dataflow::AttrId;
using dataflow::OpKind;
using dataflow::OpProperties;
using interp::CallInputs;
using interp::FieldTranslation;
using interp::Interpreter;
using optimizer::LocalStrategy;
using optimizer::PhysicalNode;
using optimizer::ShipStrategy;

namespace {

/// One partition's records, packed into batches with cached serialized
/// sizes; a Partitions is one materialized inter-operator buffer (a pipeline
/// breaker's input or output).
using BatchRun = std::vector<RecordBatch>;
using Partitions = std::vector<BatchRun>;

/// Key extracted at the given global positions.
std::vector<Value> KeyOf(const Record& r, const std::vector<AttrId>& key) {
  std::vector<Value> k;
  k.reserve(key.size());
  for (AttrId a : key) {
    k.push_back(a < static_cast<int>(r.num_fields()) ? r.field(a) : Value());
  }
  return k;
}

uint64_t KeyHash(const std::vector<Value>& key) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// One partition's records paired with their extracted keys and stable-sorted
/// by key: the per-partition input of a merge join. The stable sort keeps the
/// arrival order within equal keys, so a stream that already carries a
/// serving sort order passes through unchanged.
struct SortedRun {
  std::vector<std::pair<std::vector<Value>, const Record*>> entries;

  SortedRun(const BatchRun& part, const std::vector<AttrId>& key) {
    entries.reserve(BatchesRows(part));
    for (const RecordBatch& b : part) {
      for (size_t i = 0; i < b.size(); ++i) {
        entries.emplace_back(KeyOf(b.record(i), key), &b.record(i));
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       return KeyLess(a.first, b.first);
                     });
  }

  /// End of the equal-key run starting at `begin`.
  size_t RunEnd(size_t begin) const {
    size_t end = begin + 1;
    while (end < entries.size() &&
           !KeyLess(entries[begin].first, entries[end].first)) {
      ++end;
    }
    return end;
  }
};

/// Compacts a wide (global-layout) record onto the sink schema. The single
/// definition of sink projection: used by the fused chain's sink stage and
/// by the unfused gather, whose outputs the differential contract requires
/// to be byte-identical.
Record ProjectToSinkSchema(const Record& wide,
                           const std::vector<AttrId>& sink_schema) {
  Record compact;
  for (AttrId a : sink_schema) {
    compact.Append(a < static_cast<int>(wide.num_fields()) ? wide.field(a)
                                                           : Value());
  }
  return compact;
}

/// One record-at-a-time stage of a fused chain: a streaming Map, or the
/// sink's projection onto the sink schema (op == nullptr).
struct ChainStage {
  const PhysicalNode* node = nullptr;
  const dataflow::Operator* op = nullptr;  // null: sink projection stage
  FieldTranslation translation;            // Map only
  std::vector<AttrId> sink_schema;         // sink only
};

/// Per-partition chain executor: the producer (scan or breaker) pushes its
/// emitted records here; full batches are pulled through every stage in one
/// pass and the final stage's output is packed into the chain's materialized
/// output run. In-flight records between stages are plain vectors — their
/// serialized sizes are cached exactly once, at the terminal write into the
/// output run (the only place byte meters ever read them). All state — the
/// pending buffer, the ping-pong scratch buffers (cleared, never shrunk:
/// arena reuse across flushes), one Interpreter per Map stage — is owned by
/// one partition task (DESIGN.md §2.1).
class ChainRunner {
 public:
  ChainRunner(const std::vector<ChainStage>* stages, size_t capacity,
              BatchRun* out, ExecStats* meters)
      : stages_(stages),
        capacity_(capacity),
        writer_(out, capacity),
        meters_(meters) {
    pending_.reserve(capacity);
    if (stages_) {
      for (const ChainStage& s : *stages_) {
        interps_.push_back(s.op ? std::make_unique<Interpreter>(s.op->udf.get())
                                : nullptr);
      }
    }
  }

  /// Moves a producer's emitted records into the pending buffer, flushing
  /// through the chain whenever it fills. Clears *emitted.
  Status Consume(std::vector<Record>* emitted) {
    for (Record& r : *emitted) {
      BLACKBOX_RETURN_NOT_OK(Push(std::move(r)));
    }
    emitted->clear();
    return Status::OK();
  }

  Status Push(Record r) {
    pending_.push_back(std::move(r));
    if (pending_.size() >= capacity_) return Flush();
    return Status::OK();
  }

  /// Drains the pending buffer through the chain; flushing an empty buffer
  /// is a no-op (the end-of-partition call on an exactly-full stream).
  Status Flush() {
    if (pending_.empty()) return Status::OK();
    BLACKBOX_RETURN_NOT_OK(ProcessBatch(&pending_));
    pending_.clear();
    return Status::OK();
  }

 private:
  Status ProcessBatch(std::vector<Record>* batch) {
    std::vector<Record>* cur = batch;
    if (stages_) {
      size_t flip = 0;
      for (size_t si = 0; si < stages_->size(); ++si) {
        const ChainStage& s = (*stages_)[si];
        std::vector<Record>* next = &scratch_[flip];
        next->clear();
        if (s.op != nullptr) {
          interp::RunStats rs;
          Status st = interps_[si]->RunBatch(*cur, s.translation, next, &rs);
          meters_->udf_calls += static_cast<int64_t>(cur->size());
          meters_->records_processed += static_cast<int64_t>(cur->size());
          meters_->interp_instructions += rs.instructions;
          meters_->cpu_burn_units += rs.cpu_burn_units;
          BLACKBOX_RETURN_NOT_OK(st);
        } else {
          // Sink projection stage (unmetered in both modes, like the
          // unfused gather-time projection it replaces).
          for (const Record& wide : *cur) {
            next->push_back(ProjectToSinkSchema(wide, s.sink_schema));
          }
        }
        cur = next;
        flip ^= 1;
      }
    }
    // Terminal write: the single point where serialized sizes are computed
    // and cached (writer_.Append), feeding every downstream byte meter.
    for (Record& r : *cur) writer_.Append(std::move(r));
    return Status::OK();
  }

  const std::vector<ChainStage>* stages_;  // bottom-up; may be null/empty
  size_t capacity_;
  std::vector<Record> pending_;
  std::vector<Record> scratch_[2];  // ping-pong stage outputs, reused
  BatchWriter writer_;
  std::vector<std::unique_ptr<Interpreter>> interps_;
  ExecStats* meters_;
};

class ExecContext {
 public:
  ExecContext(const dataflow::AnnotatedFlow& af,
              const std::map<int, const DataSet*>& sources,
              const ExecOptions& options, TaskPool* pool, ExecStats* stats)
      : af_(af),
        sources_(sources),
        options_(options),
        pool_(pool),
        stats_(stats) {}

  /// Executes the chain whose top is `top`: collects the run of streaming
  /// stages (fused mode), then dispatches on the chain's producer. Returns
  /// the chain's materialized output — the only materialization between this
  /// producer and the next breaker above.
  StatusOr<Partitions> Exec(const PhysicalNode& top) {
    std::vector<ChainStage> stages;  // collected top-down
    const PhysicalNode* n = &top;
    if (options_.fuse_chains) {
      while (optimizer::IsStreamingStage(af_.flow->op(n->op_id), *n)) {
        stages.push_back(MakeStage(*n));
        n = n->children[0].get();
      }
      // Stages apply bottom-up from the producer.
      std::reverse(stages.begin(), stages.end());
    }
    const dataflow::Operator& op = af_.flow->op(n->op_id);
    switch (op.kind) {
      case OpKind::kSource:
        return Scan(*n, stages);
      case OpKind::kSink: {
        // Unfused mode only (a forward-shipped sink is always a stage when
        // fusing): projection to the sink schema happens in Execute().
        StatusOr<Partitions> in = Exec(*n->children[0]);
        if (!in.ok()) return in.status();
        return in;
      }
      case OpKind::kMap:
        return ExecMap(*n, op, stages);
      case OpKind::kReduce:
        return ExecReduce(*n, op, stages);
      case OpKind::kMatch:
        return ExecMatch(*n, op, stages);
      case OpKind::kCross:
        return ExecCross(*n, op, stages);
      case OpKind::kCoGroup:
        return ExecCoGroup(*n, op, stages);
    }
    return Status::Internal("unreachable operator kind");
  }

  /// True if the executed chains already projected the sink output (the
  /// root chain contained the sink stage), so Execute() must not re-project.
  bool sink_projected() const { return sink_projected_; }

  int64_t peak_bytes() const { return peak_bytes_; }

 private:
  ChainStage MakeStage(const PhysicalNode& node) {
    const dataflow::Operator& op = af_.flow->op(node.op_id);
    ChainStage s;
    s.node = &node;
    if (op.kind == OpKind::kSink) {
      const OpProperties& p = af_.of(node.op_id);
      s.sink_schema.assign(p.out_schema.begin(), p.out_schema.end());
      sink_projected_ = true;
    } else {
      s.op = &op;
      s.translation = MakeTranslation(node);
    }
    return s;
  }

  /// Peak-memory ledger (DESIGN.md §2.2). Updated only at the serial
  /// materialization boundaries between parallel stages, so the high-water
  /// mark is a pure function of the plan — identical for every thread
  /// count. Retain before Release at each hand-off: a breaker's input and
  /// output coexist while it runs.
  void Retain(size_t bytes) {
    live_bytes_ += static_cast<int64_t>(bytes);
    peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  }
  void Release(size_t bytes) { live_bytes_ -= static_cast<int64_t>(bytes); }
  size_t PartitionsBytes(const Partitions& parts) const {
    size_t total = 0;
    for (const BatchRun& part : parts) total += BatchesBytes(part);
    return total;
  }

  /// Builds the redirection tables for one operator occurrence: local field
  /// index -> global record position (Definition 1's α map), with concat
  /// ownership derived from the actual child subtrees of this plan.
  FieldTranslation MakeTranslation(const PhysicalNode& node) {
    const OpProperties& p = af_.of(node.op_id);
    FieldTranslation t;
    t.global_width = af_.global.size();
    t.input_maps.resize(p.in_schemas.size());
    for (size_t i = 0; i < p.in_schemas.size(); ++i) {
      t.input_maps[i].assign(p.in_schemas[i].begin(), p.in_schemas[i].end());
    }
    t.output_map.assign(p.out_schema.begin(), p.out_schema.end());
    // Extend input maps so writes of *new* attributes on copied input records
    // resolve (positions >= original input arity map to the new attrs).
    for (auto& m : t.input_maps) {
      for (size_t pos = m.size(); pos < p.out_schema.size(); ++pos) {
        m.push_back(p.out_schema[pos]);
      }
    }
    // Concat ownership: the attributes actually originating in each child
    // subtree of *this* plan (not the original flow) — reordering moves
    // attribute origins across join inputs.
    if (node.children.size() == 2) {
      t.concat_positions.resize(2);
      for (int i = 0; i < 2; ++i) {
        t.concat_positions[i] = LiveAttrs(*node.children[i]);
      }
    }
    return t;
  }

  std::vector<int> LiveAttrs(const PhysicalNode& node) {
    std::set<AttrId> acc;
    std::function<void(const PhysicalNode&)> walk = [&](const PhysicalNode& n) {
      const OpProperties& p = af_.of(n.op_id);
      for (AttrId a : p.introduced.listed()) acc.insert(a);
      for (const auto& c : n.children) walk(*c);
    };
    walk(node);
    return std::vector<int>(acc.begin(), acc.end());
  }

  /// Runs body(pi, &meters) for every partition as independent tasks on the
  /// pool. The per-partition meters are merged into stats_ in partition
  /// order and the lowest-partition error (if any) is returned, so both the
  /// outcome and the meters are independent of scheduling order.
  Status ForEachPartition(
      const std::function<Status(size_t, ExecStats*)>& body) {
    const size_t n = static_cast<size_t>(options_.dop);
    std::vector<Status> statuses(n);
    std::vector<ExecStats> meters(n);
    pool_->ParallelFor(
        n, [&](size_t pi) { statuses[pi] = body(pi, &meters[pi]); });
    for (size_t pi = 0; pi < n; ++pi) {
      if (!statuses[pi].ok()) return statuses[pi];
    }
    if (stats_) {
      for (size_t pi = 0; pi < n; ++pi) stats_->AddCounters(meters[pi]);
    }
    return Status::OK();
  }

  StatusOr<Partitions> Scan(const PhysicalNode& node,
                            const std::vector<ChainStage>& stages) {
    auto it = sources_.find(node.op_id);
    if (it == sources_.end()) {
      return Status::InvalidArgument("no data bound for source " +
                                     af_.flow->op(node.op_id).name);
    }
    const OpProperties& p = af_.of(node.op_id);
    const int width = af_.global.size();
    const DataSet& src = *it->second;
    const size_t dop = static_cast<size_t>(options_.dop);
    Partitions parts(dop);
    // Partition pi owns source indices pi, pi+dop, ... — the same
    // round-robin assignment as a serial scan. The widened record enters the
    // chain: with fused stages above, it streams through them batch-wise and
    // never materializes on its own.
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      ChainRunner runner(&stages, options_.batch_capacity, &parts[pi], meters);
      for (size_t i = pi; i < src.size(); i += dop) {
        const Record& rec = src.record(i);
        Record wide;
        if (width > 0) wide.SetField(width - 1, Value::Null());
        for (size_t f = 0; f < rec.num_fields() && f < p.out_schema.size();
             ++f) {
          wide.SetField(p.out_schema[f], rec.field(f));
        }
        BLACKBOX_RETURN_NOT_OK(runner.Push(std::move(wide)));
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(parts));
    return parts;
  }

  /// Applies a shipping strategy, metering network bytes from the batches'
  /// cached record sizes. Runs on the calling thread: shuffles move records
  /// *between* partitions, so they are the serial barrier separating
  /// parallel per-partition stages.
  Partitions Ship(Partitions in, ShipStrategy strategy,
                  const std::vector<AttrId>& key) {
    switch (strategy) {
      case ShipStrategy::kForward:
        return in;
      case ShipStrategy::kPartitionHash: {
        size_t in_bytes = PartitionsBytes(in);
        Partitions out(options_.dop);
        // Drained input batches are recycled into the output through the
        // pool, so the shuffle rewrites partitions without reallocating
        // batch backing stores.
        BatchPool pool;
        std::vector<BatchWriter> writers;
        writers.reserve(out.size());
        for (BatchRun& part : out) {
          writers.emplace_back(&part, options_.batch_capacity, &pool);
        }
        for (size_t from = 0; from < in.size(); ++from) {
          for (RecordBatch& b : in[from]) {
            // The cached sizes ARE the meter; this guards the cache against
            // ever drifting from Record::SerializedSize.
            assert(b.bytes() == b.RecomputeBytes());
            for (size_t i = 0; i < b.size(); ++i) {
              Record& r = b.mutable_record(i);
              size_t to = KeyHash(KeyOf(r, key)) % options_.dop;
              if (to != from && stats_) {
                stats_->network_bytes += b.record_bytes(i);
              }
              writers[to].AppendWithSize(std::move(r), b.record_bytes(i));
            }
            pool.Release(std::move(b));
          }
          in[from].clear();
        }
        // Bytes are conserved across a hash shuffle; swap the ledger entry.
        Retain(PartitionsBytes(out));
        Release(in_bytes);
        return out;
      }
      case ShipStrategy::kBroadcast: {
        size_t in_bytes = PartitionsBytes(in);
        BatchRun all;
        BatchPool pool;
        BatchWriter writer(&all, options_.batch_capacity, &pool);
        for (BatchRun& part : in) {
          for (RecordBatch& b : part) {
            for (size_t i = 0; i < b.size(); ++i) {
              writer.AppendWithSize(std::move(b.mutable_record(i)),
                                    b.record_bytes(i));
            }
            pool.Release(std::move(b));
          }
          part.clear();
        }
        if (stats_) {
          stats_->network_bytes += static_cast<int64_t>(BatchesBytes(all)) *
                                   (options_.dop - 1);
        }
        Partitions out(options_.dop, all);
        Retain(PartitionsBytes(out));
        Release(in_bytes);
        return out;
      }
    }
    return in;
  }

  void MeterSpill(size_t bytes, ExecStats* meters) {
    if (static_cast<double>(bytes) > options_.mem_budget_bytes) {
      meters->disk_bytes += static_cast<int64_t>(2 * bytes);
    }
  }

  static Status CallUdf(const Interpreter& interp, const CallInputs& inputs,
                        const FieldTranslation& t, std::vector<Record>* out,
                        ExecStats* meters) {
    interp::RunStats rs;
    BLACKBOX_RETURN_NOT_OK(interp.Run(inputs, t, out, &rs));
    meters->udf_calls++;
    meters->interp_instructions += rs.instructions;
    meters->cpu_burn_units += rs.cpu_burn_units;
    return Status::OK();
  }

  /// Unfused Map (fuse_chains off, or a defensively non-forward ship): one
  /// materialized pass, the pre-streaming behavior.
  StatusOr<Partitions> ExecMap(const PhysicalNode& node,
                               const dataflow::Operator& op,
                               const std::vector<ChainStage>& stages) {
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    Partitions in = Ship(std::move(in_or).value(), node.ships[0], {});
    size_t in_bytes = PartitionsBytes(in);
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());  // task-local interpreter
      ChainRunner runner(&stages, options_.batch_capacity, &out[pi], meters);
      std::vector<Record> emitted;
      for (const RecordBatch& b : in[pi]) {
        for (size_t i = 0; i < b.size(); ++i) {
          CallInputs ci;
          ci.groups = {{&b.record(i)}};
          BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
          meters->records_processed++;
          BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
        }
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  /// One sort-group pass over `in`, calling the UDF once per key group.
  /// Shared by the plain Reduce, the combiner's pre-aggregation pass, and
  /// the combiner's post-shuffle pass. Emitted records stream through the
  /// chain `stages` (empty for the pre-aggregation pass).
  Status SortGroupPass(const Partitions& in, const dataflow::Operator& op,
                       const std::vector<AttrId>& key,
                       const FieldTranslation& t, bool meter_spill,
                       const std::vector<ChainStage>& stages,
                       Partitions* out) {
    return ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&stages, options_.batch_capacity, &(*out)[pi],
                         meters);
      if (meter_spill) MeterSpill(BatchesBytes(in[pi]), meters);
      // Partition-local sorted groups (std::map orders keys canonically).
      std::map<std::vector<Value>, std::vector<const Record*>> groups;
      for (const RecordBatch& b : in[pi]) {
        for (size_t i = 0; i < b.size(); ++i) {
          groups[KeyOf(b.record(i), key)].push_back(&b.record(i));
          meters->records_processed++;
        }
      }
      std::vector<Record> emitted;
      for (const auto& [k, members] : groups) {
        CallInputs ci;
        ci.groups = {members};
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
        BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
      }
      return runner.Flush();
    });
  }

  StatusOr<Partitions> ExecReduce(const PhysicalNode& node,
                                  const dataflow::Operator& op,
                                  const std::vector<ChainStage>& stages) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> in_or = Exec(*node.children[0]);
    if (!in_or.ok()) return in_or.status();
    Partitions in = std::move(in_or).value();
    FieldTranslation t = MakeTranslation(node);
    static const std::vector<ChainStage> kNoStages;
    if (node.local == LocalStrategy::kPreAggregate) {
      // Combiner: aggregate each producer partition's local groups *before*
      // the shuffle. The partial records use the Reduce's own output layout
      // (combinability guarantees it coincides with the input layout), so
      // the post-shuffle pass below runs the identical UDF unchanged and the
      // shuffle ships at most (distinct keys × dop) records.
      size_t in_bytes = PartitionsBytes(in);
      Partitions combined(options_.dop);
      Status st = SortGroupPass(in, op, p.keys[0], t, /*meter_spill=*/true,
                                kNoStages, &combined);
      if (!st.ok()) return st;
      Retain(PartitionsBytes(combined));
      Release(in_bytes);
      in = std::move(combined);
    }
    in = Ship(std::move(in), node.ships[0], p.keys[0]);
    size_t in_bytes = PartitionsBytes(in);
    Partitions out(options_.dop);
    // A presorted forward input streams its groups: no sort buffer, no spill.
    bool meter_spill = node.local == LocalStrategy::kPreAggregate ||
                       node.input_presorted.empty() ||
                       !node.input_presorted[0];
    Status st = SortGroupPass(in, op, p.keys[0], t, meter_spill, stages, &out);
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  StatusOr<Partitions> ExecMatch(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const std::vector<ChainStage>& stages) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    size_t in_bytes = PartitionsBytes(left) + PartitionsBytes(right);
    FieldTranslation t = MakeTranslation(node);
    if (node.local == LocalStrategy::kSortMergeJoin) {
      return MergeJoin(node, op, p, left, right, t, in_bytes, stages);
    }
    bool build_left = node.local == LocalStrategy::kHashJoinBuildLeft;
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&stages, options_.batch_capacity, &out[pi], meters);
      const BatchRun& build = build_left ? left[pi] : right[pi];
      const BatchRun& probe = build_left ? right[pi] : left[pi];
      const std::vector<AttrId>& build_key = build_left ? p.keys[0] : p.keys[1];
      const std::vector<AttrId>& probe_key = build_left ? p.keys[1] : p.keys[0];
      MeterSpill(BatchesBytes(build), meters);
      // Partition-local build table.
      std::map<std::vector<Value>, std::vector<const Record*>> table;
      for (const RecordBatch& b : build) {
        for (size_t i = 0; i < b.size(); ++i) {
          table[KeyOf(b.record(i), build_key)].push_back(&b.record(i));
          meters->records_processed++;
        }
      }
      std::vector<Record> emitted;
      for (const RecordBatch& pb : probe) {
        for (size_t i = 0; i < pb.size(); ++i) {
          const Record& r = pb.record(i);
          meters->records_processed++;
          auto it = table.find(KeyOf(r, probe_key));
          if (it == table.end()) continue;
          for (const Record* b : it->second) {
            CallInputs ci;
            const Record* lrec = build_left ? b : &r;
            const Record* rrec = build_left ? &r : b;
            ci.groups = {{lrec}, {rrec}};
            BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
            BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
          }
        }
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  /// Sort-merge equi-join of two shipped sides. Both sides are stable-sorted
  /// by their join key per partition — a no-op reordering when the optimizer
  /// reused an existing sort order, but always executed so correctness never
  /// depends on the claimed order — then equal-key runs are joined pairwise.
  /// Output order is key-major; within one key the left run is streamed
  /// outermost in arrival order (stable), so a downstream operator grouping
  /// on this key sees members in the same relative order a hash join
  /// probing a sorted stream would deliver.
  StatusOr<Partitions> MergeJoin(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const OpProperties& p, const Partitions& left,
                                 const Partitions& right,
                                 const FieldTranslation& t, size_t in_bytes,
                                 const std::vector<ChainStage>& stages) {
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&stages, options_.batch_capacity, &out[pi], meters);
      // Sort buffers spill like any other materialization — except for a
      // side the plan established as presorted, which streams straight
      // through the (no-op) stable sort.
      if (node.input_presorted.size() < 2 || !node.input_presorted[0]) {
        MeterSpill(BatchesBytes(left[pi]), meters);
      }
      if (node.input_presorted.size() < 2 || !node.input_presorted[1]) {
        MeterSpill(BatchesBytes(right[pi]), meters);
      }
      SortedRun ls(left[pi], p.keys[0]);
      SortedRun rs(right[pi], p.keys[1]);
      meters->records_processed +=
          static_cast<int64_t>(BatchesRows(left[pi]) + BatchesRows(right[pi]));
      size_t li = 0, ri = 0;
      std::vector<Record> emitted;
      while (li < ls.entries.size() && ri < rs.entries.size()) {
        const std::vector<Value>& lk = ls.entries[li].first;
        const std::vector<Value>& rk = rs.entries[ri].first;
        if (KeyLess(lk, rk)) {
          li = ls.RunEnd(li);
          continue;
        }
        if (KeyLess(rk, lk)) {
          ri = rs.RunEnd(ri);
          continue;
        }
        size_t lend = ls.RunEnd(li), rend = rs.RunEnd(ri);
        for (size_t a = li; a < lend; ++a) {
          for (size_t b = ri; b < rend; ++b) {
            CallInputs ci;
            ci.groups = {{ls.entries[a].second}, {rs.entries[b].second}};
            BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
            BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
          }
        }
        li = lend;
        ri = rend;
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  StatusOr<Partitions> ExecCross(const PhysicalNode& node,
                                 const dataflow::Operator& op,
                                 const std::vector<ChainStage>& stages) {
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], {});
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], {});
    size_t in_bytes = PartitionsBytes(left) + PartitionsBytes(right);
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&stages, options_.batch_capacity, &out[pi], meters);
      std::vector<Record> emitted;
      for (const RecordBatch& lb : left[pi]) {
        for (size_t i = 0; i < lb.size(); ++i) {
          for (const RecordBatch& rb : right[pi]) {
            for (size_t j = 0; j < rb.size(); ++j) {
              CallInputs ci;
              ci.groups = {{&lb.record(i)}, {&rb.record(j)}};
              BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
              BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
            }
          }
        }
      }
      meters->records_processed +=
          static_cast<int64_t>(BatchesRows(left[pi]) + BatchesRows(right[pi]));
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  StatusOr<Partitions> ExecCoGroup(const PhysicalNode& node,
                                   const dataflow::Operator& op,
                                   const std::vector<ChainStage>& stages) {
    const OpProperties& p = af_.of(node.op_id);
    StatusOr<Partitions> l_or = Exec(*node.children[0]);
    if (!l_or.ok()) return l_or.status();
    StatusOr<Partitions> r_or = Exec(*node.children[1]);
    if (!r_or.ok()) return r_or.status();
    Partitions left = Ship(std::move(l_or).value(), node.ships[0], p.keys[0]);
    Partitions right = Ship(std::move(r_or).value(), node.ships[1], p.keys[1]);
    size_t in_bytes = PartitionsBytes(left) + PartitionsBytes(right);
    FieldTranslation t = MakeTranslation(node);
    Partitions out(options_.dop);
    Status st = ForEachPartition([&](size_t pi, ExecStats* meters) -> Status {
      Interpreter interp(op.udf.get());
      ChainRunner runner(&stages, options_.batch_capacity, &out[pi], meters);
      // Per-side sort buffers (matching the cost model); a presorted side
      // streams its groups and never spills.
      if (node.input_presorted.size() < 2 || !node.input_presorted[0]) {
        MeterSpill(BatchesBytes(left[pi]), meters);
      }
      if (node.input_presorted.size() < 2 || !node.input_presorted[1]) {
        MeterSpill(BatchesBytes(right[pi]), meters);
      }
      std::map<std::vector<Value>, CallInputs> groups;
      for (const RecordBatch& b : left[pi]) {
        for (size_t i = 0; i < b.size(); ++i) {
          auto& ci = groups[KeyOf(b.record(i), p.keys[0])];
          if (ci.groups.empty()) ci.groups.resize(2);
          ci.groups[0].push_back(&b.record(i));
          meters->records_processed++;
        }
      }
      for (const RecordBatch& b : right[pi]) {
        for (size_t i = 0; i < b.size(); ++i) {
          auto& ci = groups[KeyOf(b.record(i), p.keys[1])];
          if (ci.groups.empty()) ci.groups.resize(2);
          ci.groups[1].push_back(&b.record(i));
          meters->records_processed++;
        }
      }
      std::vector<Record> emitted;
      for (const auto& [key, ci] : groups) {
        BLACKBOX_RETURN_NOT_OK(CallUdf(interp, ci, t, &emitted, meters));
        BLACKBOX_RETURN_NOT_OK(runner.Consume(&emitted));
      }
      return runner.Flush();
    });
    if (!st.ok()) return st;
    Retain(PartitionsBytes(out));
    Release(in_bytes);
    return out;
  }

  const dataflow::AnnotatedFlow& af_;
  const std::map<int, const DataSet*>& sources_;
  const ExecOptions& options_;
  TaskPool* pool_;
  ExecStats* stats_;
  bool sink_projected_ = false;
  int64_t live_bytes_ = 0;
  int64_t peak_bytes_ = 0;
};

}  // namespace

void ExecStats::AddCounters(const ExecStats& other) {
  network_bytes += other.network_bytes;
  disk_bytes += other.disk_bytes;
  udf_calls += other.udf_calls;
  interp_instructions += other.interp_instructions;
  cpu_burn_units += other.cpu_burn_units;
  records_processed += other.records_processed;
}

std::string ExecStats::ToString() const {
  std::string out;
  out += "net=" + std::to_string(network_bytes) + "B";
  out += " disk=" + std::to_string(disk_bytes) + "B";
  out += " peak=" + std::to_string(peak_bytes) + "B";
  out += " udf_calls=" + std::to_string(udf_calls);
  out += " instrs=" + std::to_string(interp_instructions);
  out += " cpu_burn=" + std::to_string(cpu_burn_units);
  out += " records=" + std::to_string(records_processed);
  out += " out_rows=" + std::to_string(output_rows);
  out += " wall=" + std::to_string(wall_seconds) + "s";
  out += " simulated=" + std::to_string(simulated_seconds) + "s";
  return out;
}

StatusOr<DataSet> Executor::Execute(const optimizer::PhysicalPlan& plan,
                                    ExecStats* stats) {
  if (!plan.root) return Status::InvalidArgument("empty physical plan");
  if (options_.batch_capacity < 1) {
    return Status::InvalidArgument("batch_capacity must be >= 1");
  }
  auto start = std::chrono::steady_clock::now();
  if (!pool_) pool_ = std::make_unique<TaskPool>(options_.num_threads);
  ExecContext ctx(*af_, sources_, options_, pool_.get(), stats);
  StatusOr<Partitions> out = ctx.Exec(*plan.root);
  if (!out.ok()) return out.status();

  // Gather in partition index order — the canonical output order for every
  // thread count. With a fused root chain the sink projection already ran
  // inside the chain; otherwise project onto the sink schema here so
  // alternative plans of the same flow produce directly comparable records.
  const OpProperties& sink = af_->of(plan.root->op_id);
  DataSet result;
  for (BatchRun& part : *out) {
    for (RecordBatch& b : part) {
      for (size_t i = 0; i < b.size(); ++i) {
        if (ctx.sink_projected()) {
          // Chain output records ARE the final records: reuse their cached
          // sizes instead of re-walking every payload.
          result.AddWithSize(std::move(b.mutable_record(i)),
                             b.record_bytes(i));
          continue;
        }
        result.Add(ProjectToSinkSchema(b.record(i), sink.out_schema));
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  if (stats) {
    stats->output_rows = static_cast<int64_t>(result.size());
    stats->peak_bytes = ctx.peak_bytes();
    stats->wall_seconds = std::chrono::duration<double>(end - start).count();
    // simulated_seconds is a pure function of the meters (machine model),
    // deliberately NOT of wall_seconds: the simulated cluster's runtime must
    // not depend on how many real threads executed the simulation.
    double compute_seconds =
        static_cast<double>(stats->interp_instructions) /
            options_.interp_instructions_per_s +
        static_cast<double>(stats->cpu_burn_units) /
            options_.cpu_burn_units_per_s +
        static_cast<double>(stats->records_processed) / options_.records_per_s;
    stats->simulated_seconds =
        compute_seconds +
        static_cast<double>(stats->network_bytes) /
            options_.net_bandwidth_bytes_per_s +
        static_cast<double>(stats->disk_bytes) /
            options_.disk_bandwidth_bytes_per_s;
  }
  return result;
}

}  // namespace engine
}  // namespace blackbox
