// Attribute sets over the global record (Definition 1). Read and write sets
// (Definitions 2 and 3) are sets of global attribute ids.
//
// A subtlety forces a complement representation: a UDF that *implicitly
// projects* (default output constructor, §5) drops every attribute except the
// ones it explicitly copies — including attributes that only exist in *other*
// plans where an upstream operator was reordered below it. Its write set is
// therefore "everything except the kept attributes", an open set relative to
// the global record. Representing it as a complement set keeps the conflict
// test safe under all reorderings.

#ifndef BLACKBOX_DATAFLOW_ATTR_SET_H_
#define BLACKBOX_DATAFLOW_ATTR_SET_H_

#include <set>
#include <string>

namespace blackbox {
namespace dataflow {

using AttrId = int;

class AttrSet {
 public:
  AttrSet() = default;

  static AttrSet None() { return AttrSet(); }
  static AttrSet All() {
    AttrSet s;
    s.complement_ = true;
    return s;
  }
  static AttrSet Of(std::initializer_list<AttrId> ids) {
    AttrSet s;
    for (AttrId a : ids) s.set_.insert(a);
    return s;
  }
  /// Everything except the given attributes.
  static AttrSet AllExcept(std::set<AttrId> kept) {
    AttrSet s;
    s.complement_ = true;
    s.set_ = std::move(kept);
    return s;
  }

  void Add(AttrId a) {
    if (complement_) {
      set_.erase(a);  // remove from the excluded set
    } else {
      set_.insert(a);
    }
  }

  bool Contains(AttrId a) const {
    return complement_ ? set_.count(a) == 0 : set_.count(a) > 0;
  }

  bool Empty() const { return !complement_ && set_.empty(); }
  bool is_complement() const { return complement_; }

  /// The explicitly listed ids (meaning depends on is_complement()).
  const std::set<AttrId>& listed() const { return set_; }

  bool Intersects(const AttrSet& other) const;
  AttrSet Union(const AttrSet& other) const;

  /// True if every attribute of *this is in `other`. For complement sets this
  /// can only hold when `other` is also (a superset-)complement.
  bool IsSubsetOf(const AttrSet& other) const;

  bool operator==(const AttrSet& other) const {
    return complement_ == other.complement_ && set_ == other.set_;
  }

  std::string ToString() const;

 private:
  bool complement_ = false;
  std::set<AttrId> set_;
};

}  // namespace dataflow
}  // namespace blackbox

#endif  // BLACKBOX_DATAFLOW_ATTR_SET_H_
