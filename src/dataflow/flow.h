// Logical PACT data flows (Section 2.3): tree-shaped programs of data
// sources, a data sink, and operators formed by a second-order function
// (Map, Reduce, Cross, Match, CoGroup) with a first-order TAC UDF.

#ifndef BLACKBOX_DATAFLOW_FLOW_H_
#define BLACKBOX_DATAFLOW_FLOW_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sca/summary.h"
#include "tac/tac.h"

namespace blackbox {
namespace dataflow {

enum class OpKind { kSource, kSink, kMap, kReduce, kCross, kMatch, kCoGroup };

const char* OpKindName(OpKind kind);

/// Returns true for operators whose UDF is called with a list of records per
/// input (key-at-a-time: Reduce, CoGroup) — §2.3.
bool IsKat(OpKind kind);

/// Returns the number of data inputs of an operator kind (sink and unary
/// operators: 1; sources: 0; binary operators: 2).
int NumInputs(OpKind kind);

/// Optimizer hints (§7.1): "Average Number of Records Emitted per UDF Call",
/// "CPU Cost per UDF Call", "Number of Distinct Values per Key-Set". Provided
/// by the user, a language compiler, or runtime profiling.
struct Hints {
  double selectivity = 1.0;        // avg records emitted per UDF call
  double cpu_cost_per_call = 1.0;  // relative CPU weight of one call
  int64_t distinct_keys = -1;      // distinct key values (KAT / join keys)
};

/// Key-at-a-time behaviour that cannot be derived by SCA but can be declared
/// manually (used by the KGP check when reordering two KAT operators).
enum class KatBehavior {
  kUnknown,          // conservative default (SCA always reports this)
  kPerRecordOneToOne,  // emits exactly one record per input record
  kGroupWiseFilter,    // emits all records of a group unchanged, or none
};

/// A logical operator node. Owned by DataFlow; identified by a dense id.
struct Operator {
  int id = -1;
  std::string name;
  OpKind kind = OpKind::kMap;

  /// The black-box first-order function (absent for sources and sinks).
  std::shared_ptr<const tac::Function> udf;

  /// Key field indices (local to each input). Reduce/CoGroup: grouping keys;
  /// Match: equi-join keys. key_fields[i] is input i's key.
  std::vector<std::vector<int>> key_fields;

  Hints hints;

  /// Manual annotation: hand-written properties equivalent to what SCA
  /// derives. When the optimizer runs in manual mode it uses these instead of
  /// analyzing the UDF code.
  std::optional<sca::LocalUdfSummary> manual_summary;
  KatBehavior kat_behavior = KatBehavior::kUnknown;

  // --- Source-only fields ---
  int source_arity = 0;
  int64_t source_rows = 0;        // cardinality hint
  double source_avg_bytes = 64;   // avg record bytes hint
  std::vector<int> source_unique_fields;  // primary key (empty: none)

  // NOTE on referential integrity: the invariant-grouping transformation of
  // §4.3.2 needs to know that one join side's key is unique. This is schema
  // knowledge (not a UDF property), declared via source_unique_fields on the
  // data sources and derived by reorder::SubtreeUniqueOnKey — available to
  // both annotation modes, mirroring the paper.

  /// Inputs as operator ids (empty for sources).
  std::vector<int> inputs;
};

/// A tree-shaped logical data flow. The root is the sink.
class DataFlow {
 public:
  /// Adds a data source with the given schema arity and cardinality hints.
  int AddSource(std::string name, int arity, int64_t rows, double avg_bytes,
                std::vector<int> unique_fields = {});

  /// Adds a Map operator over `input`.
  int AddMap(std::string name, int input,
             std::shared_ptr<const tac::Function> udf, Hints hints = {});

  /// Adds a Reduce operator grouping `input` on `key_fields`.
  int AddReduce(std::string name, int input, std::vector<int> key_fields,
                std::shared_ptr<const tac::Function> udf, Hints hints = {});

  /// Adds a Match (equi-join) of `left` and `right`.
  int AddMatch(std::string name, int left, int right,
               std::vector<int> left_key, std::vector<int> right_key,
               std::shared_ptr<const tac::Function> udf, Hints hints = {});

  /// Adds a Cross (Cartesian product) of `left` and `right`.
  int AddCross(std::string name, int left, int right,
               std::shared_ptr<const tac::Function> udf, Hints hints = {});

  /// Adds a CoGroup of `left` and `right` on the given keys.
  int AddCoGroup(std::string name, int left, int right,
                 std::vector<int> left_key, std::vector<int> right_key,
                 std::shared_ptr<const tac::Function> udf, Hints hints = {});

  /// Sets the sink; must be called exactly once, after which the flow is
  /// complete.
  int SetSink(std::string name, int input);

  Operator& op(int id) { return ops_[id]; }
  const Operator& op(int id) const { return ops_[id]; }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  int sink_id() const { return sink_id_; }

  /// Validates tree shape: exactly one sink, every non-sink operator consumed
  /// exactly once, no cycles, inputs exist.
  Status Validate() const;

  std::string ToString() const;

 private:
  int Add(Operator op);

  std::vector<Operator> ops_;
  int sink_id_ = -1;
};

}  // namespace dataflow
}  // namespace blackbox

#endif  // BLACKBOX_DATAFLOW_FLOW_H_
