#include "dataflow/annotate.h"

#include <map>
#include <sstream>

#include "sca/analyzer.h"

namespace blackbox {
namespace dataflow {

namespace {

using sca::FieldWrite;
using sca::LocalUdfSummary;
using sca::OutputKind;

/// Combiner legality for a Reduce (see OpProperties::combinable). Checked in
/// the UDF's *local* field indices: the summary alone decides, so both
/// annotation modes (SCA and manual) derive the same verdict from the same
/// evidence.
bool DeriveCombinable(const Operator& op, const LocalUdfSummary& summary,
                      const std::vector<std::vector<AttrId>>& in_schemas) {
  if (summary.num_inputs != 1 || op.key_fields.empty()) return false;
  // Exactly one record per group: a partial group must stand in for the full
  // group without changing cardinality.
  if (summary.min_emits != 1 || summary.max_emits != 1) return false;
  // The partial record must use the *input* layout, so the second (post-
  // shuffle) application reads its aggregates at the positions it wrote them:
  // copy-of-first-record output, no attributes introduced.
  if (summary.out_kind != OutputKind::kCopyOfInput || summary.copy_input != 0) {
    return false;
  }
  if (summary.writes_all || summary.reads[0].all) return false;
  const int width = static_cast<int>(in_schemas[0].size());
  const std::set<int> key_fields(op.key_fields[0].begin(),
                                 op.key_fields[0].end());
  std::set<int> aggregated;  // fields written in place (read ∩ write)
  for (const FieldWrite& w : summary.writes) {
    if (w.kind == FieldWrite::Kind::kExplicitCopy && w.from_input == 0 &&
        w.from_field == w.out_pos) {
      continue;  // identity copy: carried through unchanged
    }
    if (w.out_pos >= width) return false;  // introduces an attribute
    if (key_fields.count(w.out_pos) > 0) return false;  // rewrites the key
    if (w.kind == FieldWrite::Kind::kExplicitProject) {
      continue;  // nulling a field is idempotent across both passes
    }
    if (w.kind != FieldWrite::Kind::kModify) return false;
    if (!summary.reads[0].Contains(w.out_pos)) return false;  // not in place
    aggregated.insert(w.out_pos);
  }
  // Every non-key read must be one of the in-place aggregates — a field that
  // is read but carried from the first record would make the second pass see
  // a partial's copy instead of real group data.
  for (int f : summary.reads[0].fields) {
    if (key_fields.count(f) == 0 && aggregated.count(f) == 0) return false;
  }
  // Branch decisions must depend on key fields only: keys are constant per
  // group, so both passes take the same branches. A decision on an
  // aggregated field would branch on partial sums in the second pass, and a
  // decision on a carried field on one subgroup's copy.
  if (summary.decision_reads.empty() || summary.decision_reads[0].all) {
    return false;
  }
  for (int f : summary.decision_reads[0].fields) {
    if (key_fields.count(f) == 0) return false;
  }
  return !aggregated.empty();
}

/// Resolves one operator's local summary against its input schemas,
/// producing global sets and the output schema. Appends new attributes to the
/// global record.
Status ResolveOperator(const Operator& op, const LocalUdfSummary& summary,
                       const std::vector<std::vector<AttrId>>& in_schemas,
                       GlobalRecord* global, OpProperties* out) {
  out->in_schemas = in_schemas;
  out->min_emits = summary.min_emits;
  out->max_emits = summary.max_emits;
  out->kat_behavior = op.kat_behavior;

  const int num_inputs = static_cast<int>(in_schemas.size());
  if (summary.num_inputs != num_inputs) {
    return Status::InvalidArgument("summary input count mismatch for " +
                                   op.name);
  }

  // --- Read set from getField accesses. ---
  for (int i = 0; i < num_inputs; ++i) {
    if (summary.reads[i].all) {
      for (AttrId a : in_schemas[i]) out->read.Add(a);
    } else {
      for (int f : summary.reads[i].fields) {
        if (f < 0 || f >= static_cast<int>(in_schemas[i].size())) {
          return Status::InvalidArgument("read of field " + std::to_string(f) +
                                         " beyond input schema in " + op.name);
        }
        out->read.Add(in_schemas[i][f]);
      }
    }
    if (summary.decision_reads[i].all) {
      for (AttrId a : in_schemas[i]) out->decision.Add(a);
    } else {
      for (int f : summary.decision_reads[i].fields) {
        out->decision.Add(in_schemas[i][f]);
      }
    }
  }

  // --- Key attributes: always part of the read set (Definition 3 note for
  // KAT operators; the f' transformation of §4.3.1 for Match). They also
  // influence grouping, hence the decision set. ---
  out->keys.resize(num_inputs);
  for (size_t i = 0; i < op.key_fields.size(); ++i) {
    for (int f : op.key_fields[i]) {
      if (f < 0 || f >= static_cast<int>(in_schemas[i].size())) {
        return Status::InvalidArgument("key field out of range in " + op.name);
      }
      AttrId a = in_schemas[i][f];
      out->keys[i].push_back(a);
      out->read.Add(a);
      out->decision.Add(a);
    }
  }

  // --- Output schema and write set. ---
  // Collect explicit writes by output position (conservative union already
  // done by the analyzer).
  std::map<int, FieldWrite> writes_by_pos;
  for (const FieldWrite& w : summary.writes) {
    auto it = writes_by_pos.find(w.out_pos);
    if (it == writes_by_pos.end()) {
      writes_by_pos[w.out_pos] = w;
    } else if (it->second.kind != w.kind ||
               it->second.from_input != w.from_input ||
               it->second.from_field != w.from_field) {
      // Conflicting writes to the same position on different paths: treat as
      // modification (safe).
      it->second.kind = FieldWrite::Kind::kModify;
    }
  }

  auto fresh_attr = [&](int pos) {
    return global->Register(op.name + ".out" + std::to_string(pos));
  };

  switch (summary.out_kind) {
    case OutputKind::kCopyOfInput: {
      const auto& base = in_schemas[summary.copy_input];
      out->out_schema = base;
      int width = static_cast<int>(base.size());
      int max_pos = std::max(summary.max_out_pos, width - 1);
      for (int pos = 0; pos <= max_pos; ++pos) {
        auto it = writes_by_pos.find(pos);
        if (it == writes_by_pos.end()) {
          if (pos >= width) {
            return Status::InvalidArgument("gap in output layout of " +
                                           op.name);
          }
          continue;  // carried through unchanged
        }
        const FieldWrite& w = it->second;
        if (pos < width) {
          // Existing attribute: keeps identity; its value may change.
          switch (w.kind) {
            case FieldWrite::Kind::kExplicitCopy:
              // Copying a field onto an existing position both modifies that
              // position's attribute and is a read of the source — treat as
              // modify (the analyzer recorded the read separately).
              if (!(w.from_input == summary.copy_input &&
                    w.from_field == pos)) {
                out->write.Add(base[pos]);
              }
              break;
            case FieldWrite::Kind::kExplicitProject:
            case FieldWrite::Kind::kModify:
            case FieldWrite::Kind::kAdd:
              out->write.Add(base[pos]);
              break;
          }
        } else {
          // New attribute (Definition 2 case 1).
          AttrId a = fresh_attr(pos);
          out->out_schema.push_back(a);
          out->write.Add(a);
          out->introduced.Add(a);
        }
      }
      break;
    }
    case OutputKind::kConcat: {
      if (num_inputs != 2) {
        return Status::InvalidArgument("concat output in unary UDF " +
                                       op.name);
      }
      out->out_schema = in_schemas[0];
      for (AttrId a : in_schemas[1]) out->out_schema.push_back(a);
      int width = static_cast<int>(out->out_schema.size());
      int max_pos = std::max(summary.max_out_pos, width - 1);
      for (int pos = 0; pos <= max_pos; ++pos) {
        auto it = writes_by_pos.find(pos);
        if (it == writes_by_pos.end()) {
          if (pos >= width) {
            return Status::InvalidArgument("gap in output layout of " +
                                           op.name);
          }
          continue;
        }
        const FieldWrite& w = it->second;
        if (pos < width) {
          bool identity_copy = false;
          if (w.kind == FieldWrite::Kind::kExplicitCopy) {
            int base_pos = w.from_input == 0
                               ? w.from_field
                               : static_cast<int>(in_schemas[0].size()) +
                                     w.from_field;
            identity_copy = base_pos == pos;
          }
          if (!identity_copy) out->write.Add(out->out_schema[pos]);
        } else {
          AttrId a = fresh_attr(pos);
          out->out_schema.push_back(a);
          out->write.Add(a);
          out->introduced.Add(a);
        }
      }
      break;
    }
    case OutputKind::kProjection: {
      // Implicit projection: the write set is "everything except the
      // explicitly kept attributes" (complement set — see attr_set.h).
      std::set<AttrId> kept;
      int max_pos = summary.max_out_pos;
      out->out_schema.assign(max_pos + 1, -1);
      for (int pos = 0; pos <= max_pos; ++pos) {
        auto it = writes_by_pos.find(pos);
        if (it == writes_by_pos.end()) {
          // Position never written on any path: placeholder attribute.
          AttrId a = fresh_attr(pos);
          out->out_schema[pos] = a;
          out->introduced.Add(a);
          continue;
        }
        const FieldWrite& w = it->second;
        if (w.kind == FieldWrite::Kind::kExplicitCopy) {
          AttrId a = in_schemas[w.from_input][w.from_field];
          out->out_schema[pos] = a;
          kept.insert(a);
        } else {
          AttrId a = fresh_attr(pos);
          out->out_schema[pos] = a;
          out->introduced.Add(a);
        }
      }
      out->write = AttrSet::AllExcept(std::move(kept));
      break;
    }
  }

  if (summary.writes_all) {
    // A computed setField index may hit any attribute of the output layout —
    // and, after reordering, any attribute flowing through. Full write set.
    out->write = AttrSet::All();
  }

  if (op.kind == OpKind::kReduce) {
    out->combinable = DeriveCombinable(op, summary, in_schemas);
  }

  return Status::OK();
}

}  // namespace

std::string AnnotatedFlow::ToString() const {
  std::ostringstream out;
  for (int i = 0; i < flow->num_ops(); ++i) {
    const Operator& op = flow->op(i);
    const OpProperties& p = props[i];
    out << i << ": " << OpKindName(op.kind) << " \"" << op.name << "\""
        << " R=" << p.read.ToString() << " W=" << p.write.ToString()
        << " emits=[" << p.min_emits << ","
        << (p.max_emits < 0 ? std::string("inf")
                            : std::to_string(p.max_emits))
        << "]\n";
  }
  return out.str();
}

StatusOr<AnnotatedFlow> Annotate(const DataFlow& flow, AnnotationMode mode) {
  BLACKBOX_RETURN_NOT_OK(flow.Validate());
  AnnotatedFlow af;
  af.flow = &flow;
  af.mode = mode;
  af.props.resize(flow.num_ops());

  // Operators are topologically ordered by construction (inputs have smaller
  // ids), so one forward pass resolves all schemas.
  for (int id = 0; id < flow.num_ops(); ++id) {
    const Operator& op = flow.op(id);
    OpProperties& p = af.props[id];
    switch (op.kind) {
      case OpKind::kSource: {
        for (int f = 0; f < op.source_arity; ++f) {
          AttrId a = af.global.Register(op.name + "." + std::to_string(f));
          p.out_schema.push_back(a);
          p.introduced.Add(a);
        }
        p.min_emits = p.max_emits = 1;
        break;
      }
      case OpKind::kSink: {
        p.in_schemas = {af.props[op.inputs[0]].out_schema};
        p.out_schema = p.in_schemas[0];
        p.min_emits = p.max_emits = 1;
        break;
      }
      default: {
        std::vector<std::vector<AttrId>> in_schemas;
        for (int in : op.inputs) {
          in_schemas.push_back(af.props[in].out_schema);
        }
        LocalUdfSummary summary;
        if (mode == AnnotationMode::kManual) {
          if (!op.manual_summary.has_value()) {
            return Status::InvalidArgument("operator " + op.name +
                                           " has no manual annotation");
          }
          summary = *op.manual_summary;
        } else {
          if (!op.udf) {
            return Status::InvalidArgument("operator " + op.name +
                                           " has no UDF to analyze");
          }
          StatusOr<LocalUdfSummary> s = sca::AnalyzeUdf(*op.udf);
          if (!s.ok()) return s.status();
          summary = std::move(s).value();
        }
        BLACKBOX_RETURN_NOT_OK(
            ResolveOperator(op, summary, in_schemas, &af.global, &p));
        break;
      }
    }
  }
  return af;
}

StatusOr<AnnotatedFlow> Annotate(std::shared_ptr<const DataFlow> flow,
                                 AnnotationMode mode) {
  if (!flow) return Status::InvalidArgument("Annotate: null flow");
  StatusOr<AnnotatedFlow> af = Annotate(*flow, mode);
  if (!af.ok()) return af.status();
  af->owner = std::move(flow);
  af->flow = af->owner.get();
  return af;
}

}  // namespace dataflow
}  // namespace blackbox
