#include "dataflow/attr_set.h"

#include <algorithm>
#include <sstream>

namespace blackbox {
namespace dataflow {

bool AttrSet::Intersects(const AttrSet& other) const {
  if (!complement_ && !other.complement_) {
    const AttrSet* small = this;
    const AttrSet* big = &other;
    if (small->set_.size() > big->set_.size()) std::swap(small, big);
    for (AttrId a : small->set_) {
      if (big->set_.count(a)) return true;
    }
    return false;
  }
  if (complement_ && other.complement_) {
    // Two cofinite sets over an infinite-ish universe always intersect.
    return true;
  }
  // One positive, one complement: they intersect unless the positive set is
  // fully contained in the complement's excluded list.
  const AttrSet& pos = complement_ ? other : *this;
  const AttrSet& comp = complement_ ? *this : other;
  if (pos.set_.empty()) return false;
  for (AttrId a : pos.set_) {
    if (comp.set_.count(a) == 0) return true;
  }
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet out;
  if (!complement_ && !other.complement_) {
    out.set_ = set_;
    out.set_.insert(other.set_.begin(), other.set_.end());
    return out;
  }
  if (complement_ && other.complement_) {
    out.complement_ = true;
    // Excluded = intersection of the two excluded lists.
    for (AttrId a : set_) {
      if (other.set_.count(a)) out.set_.insert(a);
    }
    return out;
  }
  const AttrSet& pos = complement_ ? other : *this;
  const AttrSet& comp = complement_ ? *this : other;
  out.complement_ = true;
  for (AttrId a : comp.set_) {
    if (pos.set_.count(a) == 0) out.set_.insert(a);
  }
  return out;
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  if (!complement_) {
    for (AttrId a : set_) {
      if (!other.Contains(a)) return false;
    }
    return true;
  }
  if (!other.complement_) return false;  // cofinite ⊄ finite
  // this ⊆ other  <=>  other's excluded ⊆ this's excluded.
  for (AttrId a : other.set_) {
    if (set_.count(a) == 0) return false;
  }
  return true;
}

std::string AttrSet::ToString() const {
  std::ostringstream out;
  if (complement_) out << "ALL \\ ";
  out << "{";
  bool first = true;
  for (AttrId a : set_) {
    if (!first) out << ",";
    out << a;
    first = false;
  }
  out << "}";
  return out.str();
}

}  // namespace dataflow
}  // namespace blackbox
