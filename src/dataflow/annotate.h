// Resolution of UDF summaries against the flow: builds the global record
// (Definition 1), the redirection map α(D, n), and per-operator global read /
// write / decision sets. This is the bridge between local SCA results (or
// manual annotations) and the order-independent conflict reasoning of §4.

#ifndef BLACKBOX_DATAFLOW_ANNOTATE_H_
#define BLACKBOX_DATAFLOW_ANNOTATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/attr_set.h"
#include "dataflow/flow.h"
#include "sca/summary.h"

namespace blackbox {
namespace dataflow {

/// How UDF properties are obtained (Table 1 compares the two).
enum class AnnotationMode {
  kManual,  // use Operator::manual_summary (error if absent)
  kSca,     // statically analyze the UDF code
};

/// The global record: a unique naming of all base and intermediate attributes
/// in the data flow (Definition 1). Attribute ids double as positions in the
/// in-flight record layout used by the execution engine.
class GlobalRecord {
 public:
  AttrId Register(std::string name) {
    names_.push_back(std::move(name));
    return static_cast<AttrId>(names_.size()) - 1;
  }
  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(AttrId a) const { return names_[a]; }

 private:
  std::vector<std::string> names_;
};

/// Resolved, order-independent properties of one operator.
struct OpProperties {
  /// Read set R_f (Definition 3), including key attributes of KAT operators
  /// and the implicit equi-join keys of Match (the f' transformation of
  /// §4.3.1 folds them into the read set).
  AttrSet read;

  /// Write set W_f (Definition 2): modified attributes, newly created
  /// attributes, and — for implicitly projecting UDFs — the complement of the
  /// kept attributes.
  AttrSet write;

  /// Attributes that can influence the UDF's emit decision; used for the KGP
  /// condition (Definition 5 case 2).
  AttrSet decision;

  /// Attributes newly created by this operator.
  AttrSet introduced;

  /// Emit cardinality bounds per UDF call (max == -1: unbounded).
  int min_emits = 0;
  int max_emits = 0;

  /// Reduce only: the UDF qualifies for combiner (pre-aggregation) insertion.
  /// Derived from the summary (SCA or manual): exactly one emitted record per
  /// group, built as a copy of the group's first record, where every modified
  /// field is an in-place aggregate of itself (read and written at the same
  /// position), no new attributes are introduced, the write set is disjoint
  /// from the grouping key, every non-key read field is one of the
  /// aggregated fields, and branch decisions read key fields only (keys are
  /// constant per group, so both passes branch identically). Under these
  /// conditions applying the UDF to
  /// partition-local subgroups and re-applying it to the partial results is
  /// byte-identical to one application per group, provided the in-place
  /// aggregation is associative and commutative — the one property static
  /// analysis takes on faith (like the PACT "combinable" contract); the
  /// differential plan-equivalence test validates it at runtime.
  bool combinable = false;

  /// Grouping / join key attributes (global ids) per input.
  std::vector<std::vector<AttrId>> keys;

  /// Output schema: global attr id at each output position of the operator's
  /// own output layout.
  std::vector<AttrId> out_schema;

  /// Input schemas as seen in the *original* flow (the layout UDF code was
  /// written against) — the redirection map α for this operator.
  std::vector<std::vector<AttrId>> in_schemas;

  /// KAT behaviour for the KGP check between two KAT operators.
  KatBehavior kat_behavior = KatBehavior::kUnknown;

  /// touched = read ∪ write, the set used by the binary reordering conditions
  /// of §4.3 ((R_f ∪ W_f) ∩ S = ∅ etc.).
  AttrSet Touched() const { return read.Union(write); }
};

/// A fully annotated flow: the global record plus properties for every
/// operator. Immutable once built; the enumerator and optimizer only read it.
struct AnnotatedFlow {
  const DataFlow* flow = nullptr;
  GlobalRecord global;
  std::vector<OpProperties> props;  // indexed by operator id
  AnnotationMode mode = AnnotationMode::kSca;

  /// When the annotation was produced from an owned snapshot (the api layer's
  /// AnnotationProvider path), `owner` keeps that snapshot alive and `flow`
  /// points into it; otherwise `owner` is null and the caller guarantees the
  /// flow outlives this annotation.
  std::shared_ptr<const DataFlow> owner;

  const OpProperties& of(int op_id) const { return props[op_id]; }

  std::string ToString() const;
};

/// Builds the annotation. In kSca mode every UDF is statically analyzed; in
/// kManual mode the hand-written summaries are used. Source uniqueness and
/// Match left/right uniqueness hints are honoured in both modes (they are
/// schema knowledge, not UDF properties).
StatusOr<AnnotatedFlow> Annotate(const DataFlow& flow, AnnotationMode mode);

/// As above, but the annotation takes (shared) ownership of the flow, making
/// the result self-contained — safe to move across scopes that outlive the
/// original builder.
StatusOr<AnnotatedFlow> Annotate(std::shared_ptr<const DataFlow> flow,
                                 AnnotationMode mode);

}  // namespace dataflow
}  // namespace blackbox

#endif  // BLACKBOX_DATAFLOW_ANNOTATE_H_
