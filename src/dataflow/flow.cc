#include "dataflow/flow.h"

#include <sstream>

namespace blackbox {
namespace dataflow {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource: return "Source";
    case OpKind::kSink: return "Sink";
    case OpKind::kMap: return "Map";
    case OpKind::kReduce: return "Reduce";
    case OpKind::kCross: return "Cross";
    case OpKind::kMatch: return "Match";
    case OpKind::kCoGroup: return "CoGroup";
  }
  return "?";
}

bool IsKat(OpKind kind) {
  return kind == OpKind::kReduce || kind == OpKind::kCoGroup;
}

int NumInputs(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return 0;
    case OpKind::kSink:
    case OpKind::kMap:
    case OpKind::kReduce:
      return 1;
    case OpKind::kCross:
    case OpKind::kMatch:
    case OpKind::kCoGroup:
      return 2;
  }
  return 0;
}

int DataFlow::Add(Operator op) {
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

int DataFlow::AddSource(std::string name, int arity, int64_t rows,
                        double avg_bytes, std::vector<int> unique_fields) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kSource;
  op.source_arity = arity;
  op.source_rows = rows;
  op.source_avg_bytes = avg_bytes;
  op.source_unique_fields = std::move(unique_fields);
  return Add(std::move(op));
}

int DataFlow::AddMap(std::string name, int input,
                     std::shared_ptr<const tac::Function> udf, Hints hints) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kMap;
  op.udf = std::move(udf);
  op.hints = hints;
  op.inputs = {input};
  return Add(std::move(op));
}

int DataFlow::AddReduce(std::string name, int input,
                        std::vector<int> key_fields,
                        std::shared_ptr<const tac::Function> udf,
                        Hints hints) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kReduce;
  op.udf = std::move(udf);
  op.key_fields = {std::move(key_fields)};
  op.hints = hints;
  op.inputs = {input};
  return Add(std::move(op));
}

int DataFlow::AddMatch(std::string name, int left, int right,
                       std::vector<int> left_key, std::vector<int> right_key,
                       std::shared_ptr<const tac::Function> udf, Hints hints) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kMatch;
  op.udf = std::move(udf);
  op.key_fields = {std::move(left_key), std::move(right_key)};
  op.hints = hints;
  op.inputs = {left, right};
  return Add(std::move(op));
}

int DataFlow::AddCross(std::string name, int left, int right,
                       std::shared_ptr<const tac::Function> udf, Hints hints) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kCross;
  op.udf = std::move(udf);
  op.hints = hints;
  op.inputs = {left, right};
  return Add(std::move(op));
}

int DataFlow::AddCoGroup(std::string name, int left, int right,
                         std::vector<int> left_key,
                         std::vector<int> right_key,
                         std::shared_ptr<const tac::Function> udf,
                         Hints hints) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kCoGroup;
  op.udf = std::move(udf);
  op.key_fields = {std::move(left_key), std::move(right_key)};
  op.hints = hints;
  op.inputs = {left, right};
  return Add(std::move(op));
}

int DataFlow::SetSink(std::string name, int input) {
  Operator op;
  op.name = std::move(name);
  op.kind = OpKind::kSink;
  op.inputs = {input};
  int id = Add(std::move(op));
  sink_id_ = id;
  return id;
}

Status DataFlow::Validate() const {
  if (sink_id_ < 0) return Status::InvalidArgument("flow has no sink");
  std::vector<int> consumers(ops_.size(), 0);
  for (const Operator& op : ops_) {
    if (static_cast<int>(op.inputs.size()) != NumInputs(op.kind)) {
      return Status::InvalidArgument("operator " + op.name +
                                     " has wrong input count");
    }
    for (int in : op.inputs) {
      if (in < 0 || in >= static_cast<int>(ops_.size())) {
        return Status::InvalidArgument("operator " + op.name +
                                       " references unknown input");
      }
      if (in >= op.id) {
        return Status::InvalidArgument("operator " + op.name +
                                       " references a later operator (cycle)");
      }
      consumers[in]++;
    }
    if (op.kind != OpKind::kSource && op.kind != OpKind::kSink && !op.udf) {
      return Status::InvalidArgument("operator " + op.name + " lacks a UDF");
    }
  }
  for (const Operator& op : ops_) {
    int expected = op.id == sink_id_ ? 0 : 1;
    if (consumers[op.id] != expected) {
      return Status::InvalidArgument(
          "operator " + op.name + " consumed " +
          std::to_string(consumers[op.id]) + " times; flow must be a tree");
    }
  }
  return Status::OK();
}

std::string DataFlow::ToString() const {
  std::ostringstream out;
  for (const Operator& op : ops_) {
    out << op.id << ": " << OpKindName(op.kind) << " \"" << op.name << "\"";
    if (!op.inputs.empty()) {
      out << " <- (";
      for (size_t i = 0; i < op.inputs.size(); ++i) {
        if (i) out << ", ";
        out << op.inputs[i];
      }
      out << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dataflow
}  // namespace blackbox
