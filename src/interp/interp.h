// TAC interpreter: executes one UDF invocation. The engine calls this once
// per record (RAT operators) or once per key group / co-group (KAT
// operators). The interpreter is deliberately side-effect free — a UDF can
// only observe its input records and only act by emitting output records,
// which is exactly the "no hidden communication channels" restriction the
// paper's reordering theory assumes (Section 3).
//
// Field translation: UDF code addresses fields by *static indices into its
// original input layout*. After reordering, the physical record layout is the
// global record (Definition 1), so every access goes through a redirection
// table local index -> global position supplied by the caller.

#ifndef BLACKBOX_INTERP_INTERP_H_
#define BLACKBOX_INTERP_INTERP_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "record/record.h"
#include "tac/tac.h"

namespace blackbox {

class ColumnView;

namespace interp {

/// Redirection configuration for one UDF invocation site (one operator
/// placement inside one plan).
struct FieldTranslation {
  /// For each input: local field index -> position in the in-flight (global)
  /// record. Identity translation if empty.
  std::vector<std::vector<int>> input_maps;

  /// Output local field index -> global position. Identity if empty.
  std::vector<int> output_map;

  /// Width of in-flight records; emitted records are resized to this. 0 means
  /// "whatever the constructor produced" (raw mode for unit tests).
  int global_width = 0;

  /// For kConcatRecords: positions (global) owned by each input; the merge
  /// takes input-0 positions from src0 and input-1 positions from src1.
  /// Unused in raw mode (raw concat appends).
  std::vector<std::vector<int>> concat_positions;
};

/// Per-invocation resource metering.
struct RunStats {
  int64_t instructions = 0;
  int64_t cpu_burn_units = 0;
  int64_t emits = 0;
};

/// One invocation's inputs: for RAT inputs the group has exactly one record.
struct CallInputs {
  /// groups[i] is the key group of input i (size 1 for RAT inputs).
  std::vector<std::vector<const Record*>> groups;
};

class Interpreter {
 private:
  /// Reusable per-invocation state. Sized to the function's register count
  /// once; Reset() restores the fresh-call contents without reallocating.
  struct Workspace {
    std::vector<Value> vals;
    std::vector<Record> recs;
    std::vector<int> rec_input;
    std::vector<Record> emitted;  // RunBatch's per-call emit buffer

    /// First-use sizing on a fresh workspace: resize value-initializes vals
    /// and recs, so only rec_input's "no provenance" sentinel needs filling.
    /// The emit buffer's capacity is reserved here once — per-call use only
    /// clears it, so steady-state batch runs never reallocate it.
    void Resize(size_t num_registers) {
      vals.resize(num_registers);
      recs.resize(num_registers);
      rec_input.assign(num_registers, -2);
      emitted.reserve(8);
    }
    /// Between-record reuse (RunBatch): restore the fresh-call contents
    /// without reallocating.
    void Reset() {
      std::fill(vals.begin(), vals.end(), Value());
      std::fill(recs.begin(), recs.end(), Record());
      std::fill(rec_input.begin(), rec_input.end(), -2);
    }
  };

 public:
  /// Upper bound on executed instructions per invocation; guards against
  /// accidental infinite loops in hand-written UDFs.
  static constexpr int64_t kDefaultStepLimit = 50'000'000;

  /// Records between two cancellation polls inside a batch loop: frequent
  /// enough that a chain stuck in a long batch of expensive UDF calls still
  /// unwinds promptly, rare enough that the relaxed load never shows up in
  /// profiles.
  static constexpr size_t kCancelCheckStride = 64;

  explicit Interpreter(const tac::Function* fn) : fn_(fn) {}

  /// Arms the batch loops' amortized cancellation poll (every
  /// kCancelCheckStride records). Null (the default) disables it. The token
  /// is borrowed and only ever read — a token that never fires leaves
  /// output and RunStats byte-identical to no token at all.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  /// Persistent state for RunFusedChain, owned by one chain runner and
  /// reused across all its batches: the register workspace (sized once, and
  /// NOT reset between records — every fused-body register is written before
  /// read on the path that reads it, see src/tac/fuse.h) plus whether the
  /// constant preamble has run.
  class ChainState {
   private:
    friend class Interpreter;
    Workspace ws_;
    bool preamble_done_ = false;
  };

  /// Runs the UDF on the given inputs, appending emitted records to *out.
  ///
  /// Thread-safety: Run is re-entrant — all interpreter state (registers,
  /// record slots, step counter) lives on the caller's stack, and the shared
  /// kCpuBurn sink is a relaxed atomic. The engine relies on this to run one
  /// Interpreter per partition task concurrently (DESIGN.md §2.1).
  Status Run(const CallInputs& inputs, const FieldTranslation& translation,
             std::vector<Record>* out, RunStats* stats = nullptr) const;

  /// Batch entry point for RAT operators (DESIGN.md §2.2): one UDF
  /// invocation per record of `in`, with the per-invocation setup — the
  /// register / record-slot / provenance workspaces the FieldTranslation is
  /// applied through — allocated once and reused across the whole batch.
  /// Emitted records are appended to *out. Byte-equivalent to calling Run()
  /// once per record; `stats` accumulates over the batch.
  Status RunBatch(const std::vector<Record>& in,
                  const FieldTranslation& translation,
                  std::vector<Record>* out, RunStats* stats = nullptr) const;

  /// Fused-chain entry point (DESIGN.md §2.6): runs a program produced by
  /// tac::FuseMapChain over a batch of chain-input rows. The constant
  /// preamble [0, body_start) executes once per ChainState lifetime; the
  /// body runs once per row with kGetInputField reads served by `cols`
  /// (which must view exactly `in`). `translation` must be the identity
  /// translation of the emitted width (empty maps + global_width). Emitted
  /// records are appended to *out in row order.
  Status RunFusedChain(const std::vector<Record>& in, const ColumnView& cols,
                       const FieldTranslation& translation, int body_start,
                       std::vector<Record>* out, RunStats* stats,
                       ChainState* state) const;

 private:
  /// Chain-input access for one fused body execution: the batch's lazy
  /// column view plus the current row index.
  struct FusedInput {
    const ColumnView* cols;
    size_t row;
  };

  Status RunInternal(const CallInputs& inputs,
                     const FieldTranslation& translation,
                     std::vector<Record>* out, RunStats* stats, Workspace* ws,
                     int start_pc, int end_pc, const FusedInput* fused) const;

  const tac::Function* fn_;
  const CancelToken* cancel_ = nullptr;  // borrowed; null disables polling
};

}  // namespace interp
}  // namespace blackbox

#endif  // BLACKBOX_INTERP_INTERP_H_
