#include "interp/interp.h"

#include <atomic>
#include <cmath>
#include <functional>

#include "record/column_view.h"

namespace blackbox {
namespace interp {

namespace {

using tac::Opcode;

/// Shared sink so kCpuBurn work is not optimized away. Relaxed atomic: the
/// value is meaningless, but partition tasks burn concurrently and a plain
/// (or volatile) global would be a data race.
std::atomic<uint64_t> g_burn_sink{0};

int64_t ValueAsBool(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return v.AsInt() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    case ValueType::kNull:
      return 0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return 0;
}

Value Arith(Opcode op, const Value& a, const Value& b) {
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case Opcode::kAdd: return Value(x + y);
      case Opcode::kSub: return Value(x - y);
      case Opcode::kMul: return Value(x * y);
      case Opcode::kDiv: return Value(y == 0 ? int64_t{0} : x / y);
      case Opcode::kMod: return Value(y == 0 ? int64_t{0} : x % y);
      default: break;
    }
  }
  double x = a.ToDouble(), y = b.ToDouble();
  switch (op) {
    case Opcode::kAdd: return Value(x + y);
    case Opcode::kSub: return Value(x - y);
    case Opcode::kMul: return Value(x * y);
    case Opcode::kDiv: return Value(y == 0.0 ? 0.0 : x / y);
    case Opcode::kMod: return Value(y == 0.0 ? 0.0 : std::fmod(x, y));
    default: break;
  }
  return Value();
}

int Compare(const Value& a, const Value& b) {
  // Numeric cross-type comparison; strings compare lexicographically.
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return a.AsString().compare(b.AsString());
  }
  double x = a.ToDouble(), y = b.ToDouble();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

Status Interpreter::Run(const CallInputs& inputs,
                        const FieldTranslation& translation,
                        std::vector<Record>* out, RunStats* stats) const {
  Workspace ws;
  ws.Resize(fn_->num_registers());
  const int n = static_cast<int>(fn_->instrs().size());
  return RunInternal(inputs, translation, out, stats, &ws, 0, n, nullptr);
}

Status Interpreter::RunBatch(const std::vector<Record>& in,
                             const FieldTranslation& translation,
                             std::vector<Record>* out,
                             RunStats* stats) const {
  Workspace ws;
  ws.Resize(fn_->num_registers());
  CallInputs ci;
  ci.groups.resize(1);
  ci.groups[0].resize(1);
  const int n = static_cast<int>(fn_->instrs().size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (cancel_ != nullptr && i % kCancelCheckStride == 0) {
      BLACKBOX_RETURN_NOT_OK(cancel_->Check());
    }
    ci.groups[0][0] = &in[i];
    ws.emitted.clear();
    BLACKBOX_RETURN_NOT_OK(
        RunInternal(ci, translation, &ws.emitted, stats, &ws, 0, n, nullptr));
    for (Record& r : ws.emitted) out->push_back(std::move(r));
    if (i + 1 < in.size()) ws.Reset();
  }
  return Status::OK();
}

Status Interpreter::RunFusedChain(const std::vector<Record>& in,
                                  const ColumnView& cols,
                                  const FieldTranslation& translation,
                                  int body_start, std::vector<Record>* out,
                                  RunStats* stats, ChainState* state) const {
  Workspace& ws = state->ws_;
  if (ws.vals.size() != static_cast<size_t>(fn_->num_registers())) {
    ws.Resize(fn_->num_registers());
  }
  CallInputs ci;
  ci.groups.resize(1);
  ci.groups[0].resize(1);
  const int n = static_cast<int>(fn_->instrs().size());
  if (!state->preamble_done_) {
    // Constant preamble: once per chain-runner lifetime. It touches no
    // input, but RunInternal wants a non-null input slot.
    Record empty;
    ci.groups[0][0] = &empty;
    BLACKBOX_RETURN_NOT_OK(RunInternal(ci, translation, out, stats, &ws, 0,
                                       body_start, nullptr));
    state->preamble_done_ = true;
  }
  // No ws.Reset() between rows: fused bodies write every register before
  // reading it on the path that reads it (tac/fuse.h), and preamble
  // constants must persist.
  for (size_t r = 0; r < in.size(); ++r) {
    if (cancel_ != nullptr && r % kCancelCheckStride == 0) {
      BLACKBOX_RETURN_NOT_OK(cancel_->Check());
    }
    ci.groups[0][0] = &in[r];
    FusedInput fi{&cols, r};
    BLACKBOX_RETURN_NOT_OK(RunInternal(ci, translation, out, stats, &ws,
                                       body_start, n, &fi));
  }
  return Status::OK();
}

Status Interpreter::RunInternal(const CallInputs& inputs,
                                const FieldTranslation& translation,
                                std::vector<Record>* out, RunStats* stats,
                                Workspace* ws, int start_pc, int end_pc,
                                const FusedInput* fused) const {
  const auto& instrs = fn_->instrs();
  std::vector<Value>& vals = ws->vals;
  std::vector<Record>& recs = ws->recs;

  auto input_pos = [&](int input, int local) -> int {
    if (translation.input_maps.empty()) return local;
    const auto& map = translation.input_maps[input];
    if (local < 0 || local >= static_cast<int>(map.size())) return -1;
    return map[local];
  };
  auto output_pos = [&](int local) -> int {
    if (translation.output_map.empty()) return local;
    if (local < 0 || local >= static_cast<int>(translation.output_map.size())) {
      return -1;
    }
    return translation.output_map[local];
  };

  // Which input each record register currently carries (-1 = output record).
  // Needed to translate field indices: reads of records loaded from input i
  // use input i's map; reads of constructed output records use the output
  // map. Copies inherit the source record's provenance.
  std::vector<int>& rec_input = ws->rec_input;

  int64_t steps = 0;
  int pc = start_pc;
  while (pc < end_pc) {
    if (++steps > kDefaultStepLimit) {
      return Status::Internal("UDF " + fn_->name() + " exceeded step limit");
    }
    const tac::Instr& i = instrs[pc];
    int next = pc + 1;
    switch (i.op) {
      case Opcode::kConstInt:
        vals[i.dst] = Value(i.imm_int);
        break;
      case Opcode::kConstDouble:
        vals[i.dst] = Value(i.imm_double);
        break;
      case Opcode::kConstStr:
        vals[i.dst] = Value(i.imm_str);
        break;
      case Opcode::kConstNull:
        vals[i.dst] = Value::Null();
        break;
      case Opcode::kMove:
        vals[i.dst] = vals[i.src0];
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
        vals[i.dst] = Arith(i.op, vals[i.src0], vals[i.src1]);
        break;
      case Opcode::kNeg:
        if (vals[i.src0].type() == ValueType::kInt) {
          vals[i.dst] = Value(-vals[i.src0].AsInt());
        } else {
          vals[i.dst] = Value(-vals[i.src0].ToDouble());
        }
        break;
      case Opcode::kCmpLt:
        vals[i.dst] = Value(int64_t{Compare(vals[i.src0], vals[i.src1]) < 0});
        break;
      case Opcode::kCmpLe:
        vals[i.dst] = Value(int64_t{Compare(vals[i.src0], vals[i.src1]) <= 0});
        break;
      case Opcode::kCmpGt:
        vals[i.dst] = Value(int64_t{Compare(vals[i.src0], vals[i.src1]) > 0});
        break;
      case Opcode::kCmpGe:
        vals[i.dst] = Value(int64_t{Compare(vals[i.src0], vals[i.src1]) >= 0});
        break;
      case Opcode::kCmpEq:
        vals[i.dst] = Value(int64_t{vals[i.src0] == vals[i.src1]});
        break;
      case Opcode::kCmpNe:
        vals[i.dst] = Value(int64_t{vals[i.src0] != vals[i.src1]});
        break;
      case Opcode::kAnd:
        vals[i.dst] =
            Value(int64_t{ValueAsBool(vals[i.src0]) && ValueAsBool(vals[i.src1])});
        break;
      case Opcode::kOr:
        vals[i.dst] =
            Value(int64_t{ValueAsBool(vals[i.src0]) || ValueAsBool(vals[i.src1])});
        break;
      case Opcode::kNot:
        vals[i.dst] = Value(int64_t{!ValueAsBool(vals[i.src0])});
        break;
      case Opcode::kStrLen:
        vals[i.dst] = Value(static_cast<int64_t>(
            vals[i.src0].type() == ValueType::kString
                ? vals[i.src0].AsString().size()
                : 0));
        break;
      case Opcode::kStrConcat: {
        std::string s;
        if (vals[i.src0].type() == ValueType::kString) s += vals[i.src0].AsString();
        if (vals[i.src1].type() == ValueType::kString) s += vals[i.src1].AsString();
        vals[i.dst] = Value(std::move(s));
        break;
      }
      case Opcode::kStrContains: {
        bool hit = false;
        if (vals[i.src0].type() == ValueType::kString &&
            vals[i.src1].type() == ValueType::kString) {
          hit = vals[i.src0].AsString().find(vals[i.src1].AsString()) !=
                std::string::npos;
        }
        vals[i.dst] = Value(int64_t{hit});
        break;
      }
      case Opcode::kStrHashMod: {
        uint64_t h = vals[i.src0].Hash();
        int64_t mod = i.imm_int <= 0 ? 1 : i.imm_int;
        vals[i.dst] = Value(static_cast<int64_t>(h % static_cast<uint64_t>(mod)));
        break;
      }
      case Opcode::kGoto:
        next = i.target;
        break;
      case Opcode::kBranchIfTrue:
        if (ValueAsBool(vals[i.src0])) next = i.target;
        break;
      case Opcode::kBranchIfFalse:
        if (!ValueAsBool(vals[i.src0])) next = i.target;
        break;
      case Opcode::kReturn:
        if (stats) stats->instructions += steps;
        return Status::OK();
      case Opcode::kGetField: {
        int local = i.index_is_reg
                        ? static_cast<int>(vals[i.src1].ToDouble())
                        : static_cast<int>(i.imm_int);
        const Record& rec = recs[i.src0];
        int provenance = rec_input[i.src0];
        int pos;
        if (provenance >= 0) {
          pos = input_pos(provenance, local);
        } else {
          pos = output_pos(local);
        }
        if (pos < 0 || pos >= static_cast<int>(rec.num_fields())) {
          vals[i.dst] = Value::Null();
        } else {
          vals[i.dst] = rec.field(pos);
        }
        break;
      }
      case Opcode::kSetField: {
        int local = i.index_is_reg
                        ? static_cast<int>(vals[i.src1].ToDouble())
                        : static_cast<int>(i.imm_int);
        int provenance = rec_input[i.dst];
        int pos = provenance >= 0 ? input_pos(provenance, local)
                                  : output_pos(local);
        if (pos < 0) {
          return Status::OutOfRange("setField position out of range in " +
                                    fn_->name());
        }
        recs[i.dst].SetField(pos, vals[i.src0]);
        break;
      }
      case Opcode::kCopyRecord:
        recs[i.dst] = recs[i.src0];
        rec_input[i.dst] = rec_input[i.src0];
        break;
      case Opcode::kNewRecord: {
        Record r;
        if (translation.global_width > 0) {
          // Pre-size to the global record so emitted records are uniform.
          r.SetField(translation.global_width - 1, Value::Null());
        }
        recs[i.dst] = std::move(r);
        rec_input[i.dst] = -1;
        break;
      }
      case Opcode::kConcatRecords: {
        if (translation.concat_positions.empty()) {
          recs[i.dst] = Record::Concat(recs[i.src0], recs[i.src1]);
        } else {
          // Global-record merge: take each input's owned positions.
          Record r;
          if (translation.global_width > 0) {
            r.SetField(translation.global_width - 1, Value::Null());
          }
          const Record& a = recs[i.src0];
          const Record& b = recs[i.src1];
          for (int pos : translation.concat_positions[0]) {
            if (pos < static_cast<int>(a.num_fields())) {
              r.SetField(pos, a.field(pos));
            }
          }
          for (int pos : translation.concat_positions[1]) {
            if (pos < static_cast<int>(b.num_fields())) {
              r.SetField(pos, b.field(pos));
            }
          }
          recs[i.dst] = std::move(r);
        }
        rec_input[i.dst] = -1;
        break;
      }
      case Opcode::kEmit: {
        Record r = recs[i.src0];
        if (translation.global_width > 0 &&
            static_cast<int>(r.num_fields()) < translation.global_width) {
          r.SetField(translation.global_width - 1, Value::Null());
        }
        out->push_back(std::move(r));
        if (stats) stats->emits++;
        break;
      }
      case Opcode::kInputRecord: {
        const auto& group = inputs.groups[i.imm_int];
        if (group.empty()) {
          return Status::Internal("empty RAT input in " + fn_->name());
        }
        recs[i.dst] = *group[0];
        rec_input[i.dst] = static_cast<int>(i.imm_int);
        break;
      }
      case Opcode::kGetInputField:
        if (fused == nullptr) {
          return Status::Internal("get_input_field outside a fused chain in " +
                                  fn_->name());
        }
        vals[i.dst] = fused->cols->ValueAt(static_cast<size_t>(i.imm_int),
                                           fused->row);
        break;
      case Opcode::kInputCount:
        vals[i.dst] = Value(
            static_cast<int64_t>(inputs.groups[i.imm_int].size()));
        break;
      case Opcode::kInputAt: {
        const auto& group = inputs.groups[i.imm_int];
        int64_t pos = static_cast<int64_t>(vals[i.src0].ToDouble());
        if (pos < 0 || pos >= static_cast<int64_t>(group.size())) {
          return Status::OutOfRange("input_at out of range in " + fn_->name());
        }
        recs[i.dst] = *group[pos];
        rec_input[i.dst] = static_cast<int>(i.imm_int);
        break;
      }
      case Opcode::kCpuBurn: {
        uint64_t acc = g_burn_sink.load(std::memory_order_relaxed);
        for (int64_t k = 0; k < i.imm_int; ++k) {
          acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        g_burn_sink.store(acc, std::memory_order_relaxed);
        if (stats) stats->cpu_burn_units += i.imm_int;
        break;
      }
    }
    pc = next;
  }
  if (stats) stats->instructions += steps;
  return Status::OK();
}

}  // namespace interp
}  // namespace blackbox
