#include "sca/analyzer.h"

#include <map>
#include <sstream>

namespace blackbox {
namespace sca {

using tac::Instr;
using tac::Opcode;

namespace {

/// Provenance of a record register at a use site: which input's layout its
/// field indices refer to, or the output layout (-1), or mixed (-2).
constexpr int kOutput = -1;
constexpr int kMixed = -2;

/// Traces the record used at `instr` via register `reg` back to its
/// constructor site(s). Returns the set of constructor instruction indices.
std::set<int> TraceRecordOrigins(const ControlFlowGraph& cfg, int instr,
                                 int reg) {
  std::set<int> origins;
  std::set<std::pair<int, int>> visited;
  std::vector<std::pair<int, int>> work{{instr, reg}};
  while (!work.empty()) {
    auto [at, r] = work.back();
    work.pop_back();
    if (!visited.insert({at, r}).second) continue;
    for (int d : cfg.UseDefs(at, r)) {
      const Instr& di = cfg.fn().instrs()[d];
      switch (di.op) {
        case Opcode::kInputRecord:
        case Opcode::kInputAt:
        case Opcode::kNewRecord:
        case Opcode::kConcatRecords:
          origins.insert(d);
          break;
        case Opcode::kCopyRecord:
          // A copy's indices refer to the source's layout.
          work.emplace_back(d, di.src0);
          break;
        case Opcode::kSetField:
          // Mutation re-defines the record; keep tracing through it.
          work.emplace_back(d, di.dst);
          break;
        default:
          break;
      }
    }
  }
  return origins;
}

/// Resolves provenance from constructor origins: input index, kOutput for
/// constructed records (projection/concat layouts), kMixed if ambiguous.
int ProvenanceFromOrigins(const ControlFlowGraph& cfg,
                          const std::set<int>& origins) {
  int prov = -3;  // unset
  for (int o : origins) {
    const Instr& oi = cfg.fn().instrs()[o];
    int p;
    if (oi.op == Opcode::kInputRecord || oi.op == Opcode::kInputAt) {
      p = static_cast<int>(oi.imm_int);
    } else {
      p = kOutput;
    }
    if (prov == -3) {
      prov = p;
    } else if (prov != p) {
      return kMixed;
    }
  }
  return prov == -3 ? kMixed : prov;
}

}  // namespace

std::string LocalUdfSummary::ToString() const {
  std::ostringstream out;
  out << "summary{reads=[";
  for (int i = 0; i < num_inputs; ++i) {
    if (i) out << "; ";
    if (reads[i].all) {
      out << "ALL";
    } else {
      bool first = true;
      for (int f : reads[i].fields) {
        if (!first) out << ",";
        out << f;
        first = false;
      }
    }
  }
  out << "], out=";
  switch (out_kind) {
    case OutputKind::kCopyOfInput:
      out << "copy(" << copy_input << ")";
      break;
    case OutputKind::kProjection:
      out << "projection";
      break;
    case OutputKind::kConcat:
      out << "concat";
      break;
  }
  out << ", writes=[";
  if (writes_all) out << "ALL ";
  for (const FieldWrite& w : writes) {
    out << w.out_pos;
    switch (w.kind) {
      case FieldWrite::Kind::kExplicitCopy:
        out << "<-" << w.from_input << "." << w.from_field;
        break;
      case FieldWrite::Kind::kExplicitProject:
        out << ":null";
        break;
      case FieldWrite::Kind::kModify:
        out << ":mod";
        break;
      case FieldWrite::Kind::kAdd:
        out << ":add";
        break;
    }
    out << " ";
  }
  out << "], emits=[" << min_emits << ","
      << (max_emits < 0 ? std::string("inf") : std::to_string(max_emits))
      << "]}";
  return out.str();
}

StatusOr<LocalUdfSummary> AnalyzeUdf(const tac::Function& fn) {
  StatusOr<ControlFlowGraph> cfg_or = ControlFlowGraph::Build(fn);
  if (!cfg_or.ok()) return cfg_or.status();
  const ControlFlowGraph& cfg = cfg_or.value();
  const auto& instrs = fn.instrs();
  const int n = static_cast<int>(instrs.size());

  LocalUdfSummary s;
  s.num_inputs = fn.num_inputs();
  s.reads.resize(fn.num_inputs());
  s.decision_reads.resize(fn.num_inputs());

  // --- Read set: getField statements whose result is used (§5 ¶4). ---
  for (int i = 0; i < n; ++i) {
    const Instr& in = instrs[i];
    if (in.op != Opcode::kGetField) continue;
    if (cfg.DefUses(i).empty()) continue;  // value never used
    std::set<int> origins = TraceRecordOrigins(cfg, i, in.src0);
    int prov = ProvenanceFromOrigins(cfg, origins);
    // Reads of self-constructed output records don't touch input attributes.
    if (prov == kOutput) continue;
    auto add_read = [&](int input, const Instr& gf, int at) {
      if (gf.index_is_reg) {
        int64_t c;
        if (cfg.ResolveConstInt(at, gf.src1, &c)) {
          s.reads[input].Add(static_cast<int>(c));
        } else {
          s.reads[input].AddAll();  // computed index: conservative
        }
      } else {
        s.reads[input].Add(static_cast<int>(gf.imm_int));
      }
    };
    if (prov == kMixed) {
      // Could be any input: widen all.
      for (int k = 0; k < fn.num_inputs(); ++k) add_read(k, in, i);
    } else {
      add_read(prov, in, i);
    }
  }

  // --- Output construction: trace every emit to its constructor (§5 ¶6). ---
  bool saw_copy = false, saw_projection = false, saw_concat = false;
  int copy_input = -1;
  bool copy_input_conflict = false;
  std::set<int> emitted_regs_origins;
  for (int i = 0; i < n; ++i) {
    if (instrs[i].op != Opcode::kEmit) continue;
    std::set<int> origins = TraceRecordOrigins(cfg, i, instrs[i].src0);
    if (origins.empty()) {
      return Status::Corruption("emit of untraceable record in " + fn.name());
    }
    for (int o : origins) {
      emitted_regs_origins.insert(o);
      const Instr& oi = instrs[o];
      switch (oi.op) {
        case Opcode::kNewRecord:
          saw_projection = true;
          break;
        case Opcode::kConcatRecords:
          saw_concat = true;
          break;
        case Opcode::kInputRecord:
        case Opcode::kInputAt: {
          // Emitting the input record directly behaves like an unmodified
          // copy of that input.
          saw_copy = true;
          int inp = static_cast<int>(oi.imm_int);
          if (copy_input >= 0 && copy_input != inp) copy_input_conflict = true;
          copy_input = inp;
          break;
        }
        default:
          break;
      }
    }
    // Copies are traced *through* by TraceRecordOrigins, so a copy of input
    // shows up as kInputRecord/kInputAt origin above. A copy of a new record
    // shows as kNewRecord. Nothing more to do here.
  }
  if (saw_concat && !saw_projection && !saw_copy) {
    s.out_kind = OutputKind::kConcat;
  } else if (saw_copy && !saw_projection && !saw_concat &&
             !copy_input_conflict) {
    s.out_kind = OutputKind::kCopyOfInput;
    s.copy_input = copy_input;
  } else {
    // Mixed constructor paths: implicit projection is the safe choice (§5).
    s.out_kind = OutputKind::kProjection;
  }

  // --- Field writes: all setField statements on records that can reach an
  // emit. Conservative union over paths. ---
  int input_arity_hint = -1;  // filled by the dataflow layer; here we only
                              // classify by copy-source matching.
  (void)input_arity_hint;
  for (int i = 0; i < n; ++i) {
    const Instr& in = instrs[i];
    if (in.op != Opcode::kSetField) continue;
    FieldWrite w;
    if (in.index_is_reg) {
      int64_t c;
      if (cfg.ResolveConstInt(i, in.src1, &c)) {
        w.out_pos = static_cast<int>(c);
      } else {
        s.writes_all = true;  // computed write index: every field may change
        continue;
      }
    } else {
      w.out_pos = static_cast<int>(in.imm_int);
    }
    s.max_out_pos = std::max(s.max_out_pos, w.out_pos);

    // Classify the written value (§5): null const -> explicit projection;
    // unique getField def -> explicit copy; anything else -> modification.
    const std::set<int>& vdefs = cfg.UseDefs(i, in.src0);
    if (vdefs.size() == 1) {
      const Instr& vd = instrs[*vdefs.begin()];
      if (vd.op == Opcode::kConstNull) {
        w.kind = FieldWrite::Kind::kExplicitProject;
        s.writes.push_back(w);
        continue;
      }
      if (vd.op == Opcode::kGetField && !vd.index_is_reg) {
        std::set<int> rec_origins =
            TraceRecordOrigins(cfg, *vdefs.begin(), vd.src0);
        int prov = ProvenanceFromOrigins(cfg, rec_origins);
        if (prov >= 0) {
          w.kind = FieldWrite::Kind::kExplicitCopy;
          w.from_input = prov;
          w.from_field = static_cast<int>(vd.imm_int);
          s.writes.push_back(w);
          continue;
        }
      }
    }
    w.kind = FieldWrite::Kind::kModify;  // kAdd decided by the dataflow layer
    s.writes.push_back(w);
  }

  // --- Emit cardinality bounds. ---
  cfg.EmitBounds(&s.min_emits, &s.max_emits);

  // --- Decision reads: fields flowing into any branch condition. ---
  for (int i = 0; i < n; ++i) {
    const Instr& in = instrs[i];
    if (in.op != Opcode::kBranchIfTrue && in.op != Opcode::kBranchIfFalse) {
      continue;
    }
    std::set<int> gfs = cfg.BackwardSliceGetFields(i, in.src0);
    for (int g : gfs) {
      const Instr& gf = instrs[g];
      std::set<int> origins = TraceRecordOrigins(cfg, g, gf.src0);
      int prov = ProvenanceFromOrigins(cfg, origins);
      auto add = [&](int input) {
        if (gf.index_is_reg) {
          int64_t c;
          if (cfg.ResolveConstInt(g, gf.src1, &c)) {
            s.decision_reads[input].Add(static_cast<int>(c));
          } else {
            s.decision_reads[input].AddAll();
          }
        } else {
          s.decision_reads[input].Add(static_cast<int>(gf.imm_int));
        }
      };
      if (prov == kOutput) continue;
      if (prov == kMixed) {
        for (int k = 0; k < fn.num_inputs(); ++k) add(k);
      } else {
        add(prov);
      }
    }
  }

  return s;
}

}  // namespace sca
}  // namespace blackbox
