#include "sca/cfg.h"

#include <algorithm>
#include <map>

namespace blackbox {
namespace sca {

using tac::Instr;
using tac::Opcode;

const std::set<int> ControlFlowGraph::kEmptySet;

DefUseInfo GetDefUse(const Instr& i) {
  DefUseInfo info;
  switch (i.op) {
    case Opcode::kConstInt:
    case Opcode::kConstDouble:
    case Opcode::kConstStr:
    case Opcode::kConstNull:
    case Opcode::kNewRecord:
    case Opcode::kInputRecord:
    case Opcode::kInputCount:
    case Opcode::kGetInputField:
      info.def = i.dst;
      break;
    case Opcode::kInputAt:
      info.def = i.dst;
      info.uses.push_back(i.src0);
      break;
    case Opcode::kMove:
    case Opcode::kNeg:
    case Opcode::kNot:
    case Opcode::kStrLen:
    case Opcode::kStrHashMod:
    case Opcode::kCopyRecord:
      info.def = i.dst;
      info.uses.push_back(i.src0);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kStrConcat:
    case Opcode::kStrContains:
    case Opcode::kConcatRecords:
      info.def = i.dst;
      info.uses.push_back(i.src0);
      info.uses.push_back(i.src1);
      break;
    case Opcode::kGetField:
      info.def = i.dst;
      info.uses.push_back(i.src0);
      if (i.index_is_reg) info.uses.push_back(i.src1);
      break;
    case Opcode::kSetField:
      // Mutation: uses the old record and the value, re-defines the record.
      info.def = i.dst;
      info.uses.push_back(i.dst);
      info.uses.push_back(i.src0);
      if (i.index_is_reg) info.uses.push_back(i.src1);
      break;
    case Opcode::kEmit:
      info.uses.push_back(i.src0);
      break;
    case Opcode::kBranchIfTrue:
    case Opcode::kBranchIfFalse:
      info.uses.push_back(i.src0);
      break;
    case Opcode::kGoto:
    case Opcode::kReturn:
    case Opcode::kCpuBurn:
      break;
  }
  return info;
}

StatusOr<ControlFlowGraph> ControlFlowGraph::Build(const tac::Function& fn) {
  ControlFlowGraph cfg;
  cfg.fn_ = &fn;
  const auto& instrs = fn.instrs();
  const int n = static_cast<int>(instrs.size());
  if (n == 0) return Status::InvalidArgument("empty function");

  // Identify leaders.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (int i = 0; i < n; ++i) {
    const Instr& in = instrs[i];
    if (in.op == Opcode::kGoto || in.op == Opcode::kBranchIfTrue ||
        in.op == Opcode::kBranchIfFalse) {
      if (in.target < n) leader[in.target] = true;
      if (i + 1 < n) leader[i + 1] = true;
    } else if (in.op == Opcode::kReturn && i + 1 < n) {
      leader[i + 1] = true;
    }
  }

  // Build blocks.
  cfg.block_of_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    if (leader[i]) {
      BasicBlock b;
      b.begin = i;
      cfg.blocks_.push_back(b);
    }
    cfg.blocks_.back().end = i + 1;
    cfg.block_of_[i] = static_cast<int>(cfg.blocks_.size()) - 1;
  }

  // Edges.
  for (size_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Instr& last = instrs[block.end - 1];
    auto add_edge = [&](int target_instr) {
      int succ = cfg.block_of_[target_instr];
      block.successors.push_back(succ);
      cfg.blocks_[succ].predecessors.push_back(static_cast<int>(b));
    };
    switch (last.op) {
      case Opcode::kGoto:
        if (last.target < n) add_edge(last.target);
        break;
      case Opcode::kBranchIfTrue:
      case Opcode::kBranchIfFalse:
        if (last.target < n) add_edge(last.target);
        if (block.end < n) add_edge(block.end);
        break;
      case Opcode::kReturn:
        break;
      default:
        if (block.end < n) add_edge(block.end);
        break;
    }
  }

  cfg.ComputeReachingDefs();
  cfg.ComputeSccs();
  return cfg;
}

void ControlFlowGraph::ComputeReachingDefs() {
  const auto& instrs = fn_->instrs();
  const int n = static_cast<int>(instrs.size());
  const int nb = static_cast<int>(blocks_.size());

  // Per-block GEN/KILL over definition sites.
  std::vector<std::map<int, int>> last_def_in_block(nb);  // reg -> instr
  std::vector<std::set<int>> defines_regs(nb);
  for (int b = 0; b < nb; ++b) {
    for (int i = blocks_[b].begin; i < blocks_[b].end; ++i) {
      DefUseInfo du = GetDefUse(instrs[i]);
      if (du.def >= 0) {
        last_def_in_block[b][du.def] = i;
        defines_regs[b].insert(du.def);
      }
    }
  }

  // IN/OUT as sets of definition sites; iterate to fixpoint.
  std::vector<std::set<int>> in(nb), out_sets(nb);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < nb; ++b) {
      std::set<int> new_in;
      for (int p : blocks_[b].predecessors) {
        new_in.insert(out_sets[p].begin(), out_sets[p].end());
      }
      std::set<int> new_out;
      for (int d : new_in) {
        int reg = GetDefUse(instrs[d]).def;
        if (defines_regs[b].count(reg) == 0) new_out.insert(d);
      }
      for (const auto& [reg, site] : last_def_in_block[b]) {
        new_out.insert(site);
      }
      if (new_in != in[b] || new_out != out_sets[b]) {
        in[b] = std::move(new_in);
        out_sets[b] = std::move(new_out);
        changed = true;
      }
    }
  }

  // Per-instruction reaching-in by walking each block.
  reaching_in_.assign(n, {});
  for (int b = 0; b < nb; ++b) {
    std::map<int, std::set<int>> live;  // reg -> def sites
    for (int d : in[b]) {
      live[GetDefUse(instrs[d]).def].insert(d);
    }
    for (int i = blocks_[b].begin; i < blocks_[b].end; ++i) {
      std::set<int> here;
      for (const auto& [reg, sites] : live) {
        here.insert(sites.begin(), sites.end());
      }
      reaching_in_[i] = std::move(here);
      DefUseInfo du = GetDefUse(instrs[i]);
      if (du.def >= 0) {
        live[du.def] = {i};
      }
    }
  }

  // USE-DEF and DEF-USE chains.
  use_defs_.assign(n, {});
  def_uses_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    DefUseInfo du = GetDefUse(instrs[i]);
    for (int reg : du.uses) {
      std::set<int> defs;
      for (int d : reaching_in_[i]) {
        if (GetDefUse(instrs[d]).def == reg) defs.insert(d);
      }
      for (int d : defs) def_uses_[d].insert(i);
      use_defs_[i].emplace_back(reg, std::move(defs));
    }
  }
}

void ControlFlowGraph::ComputeSccs() {
  // Iterative Tarjan over blocks.
  const int nb = static_cast<int>(blocks_.size());
  scc_of_block_.assign(nb, -1);
  block_in_loop_.assign(nb, false);
  std::vector<int> index(nb, -1), low(nb, 0);
  std::vector<bool> on_stack(nb, false);
  std::vector<int> stack;
  int next_index = 0, next_scc = 0;

  struct Frame {
    int v;
    size_t child;
  };
  for (int start = 0; start < nb; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[start] = low[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      int v = f.v;
      if (f.child < blocks_[v].successors.size()) {
        int w = blocks_[v].successors[f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          int size = 0;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_of_block_[w] = next_scc;
            ++size;
            if (w == v) break;
          }
          if (size > 1) {
            for (int b = 0; b < nb; ++b) {
              if (scc_of_block_[b] == next_scc) block_in_loop_[b] = true;
            }
          } else {
            // Self-loop?
            for (int s : blocks_[v].successors) {
              if (s == v) block_in_loop_[v] = true;
            }
          }
          ++next_scc;
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().v;
          low[parent] = std::min(low[parent], low[v]);
        }
      }
    }
  }
}

const std::set<int>& ControlFlowGraph::UseDefs(int instr, int reg) const {
  for (const auto& [r, defs] : use_defs_[instr]) {
    if (r == reg) return defs;
  }
  return kEmptySet;
}

const std::set<int>& ControlFlowGraph::DefUses(int instr) const {
  return def_uses_[instr];
}

bool ControlFlowGraph::ResolveConstInt(int instr, int reg, int64_t* out) const {
  const std::set<int>& defs = UseDefs(instr, reg);
  if (defs.size() != 1) return false;
  const Instr& d = fn_->instrs()[*defs.begin()];
  if (d.op == Opcode::kConstInt) {
    *out = d.imm_int;
    return true;
  }
  if (d.op == Opcode::kMove) {
    return ResolveConstInt(*defs.begin(), d.src0, out);
  }
  return false;
}

std::set<int> ControlFlowGraph::BackwardSliceGetFields(int instr,
                                                       int reg) const {
  std::set<int> result;
  std::set<std::pair<int, int>> visited;
  std::vector<std::pair<int, int>> work{{instr, reg}};
  while (!work.empty()) {
    auto [at, r] = work.back();
    work.pop_back();
    if (!visited.insert({at, r}).second) continue;
    for (int d : UseDefs(at, r)) {
      const Instr& di = fn_->instrs()[d];
      if (di.op == Opcode::kGetField) {
        result.insert(d);
        // A dynamic index feeding a getField also taints the slice.
        if (di.index_is_reg) work.emplace_back(d, di.src1);
      } else {
        DefUseInfo du = GetDefUse(di);
        for (int u : du.uses) {
          // Only follow value registers; record provenance is handled
          // separately by the analyzer.
          if (fn_->reg_type(u) == tac::RegType::kValue) {
            work.emplace_back(d, u);
          }
        }
      }
    }
  }
  return result;
}

bool ControlFlowGraph::InLoop(int instr) const {
  return block_in_loop_[block_of_[instr]];
}

void ControlFlowGraph::EmitBounds(int* min_emits, int* max_emits) const {
  const auto& instrs = fn_->instrs();
  const int nb = static_cast<int>(blocks_.size());

  // Per-block emit count; emits in loops make max unbounded.
  std::vector<int> emits(nb, 0);
  bool unbounded = false;
  for (int b = 0; b < nb; ++b) {
    for (int i = blocks_[b].begin; i < blocks_[b].end; ++i) {
      if (instrs[i].op == Opcode::kEmit) {
        ++emits[b];
        if (block_in_loop_[b]) unbounded = true;
      }
    }
  }

  // Min/max emits along paths from entry to exit blocks, over the SCC
  // condensation (so cycles don't trap the DP). For min, a loop can run zero
  // times only if it can be bypassed; since our loop headers always have an
  // exit edge, treating each SCC's internal emits as optional-for-min is
  // conservative (may under-estimate min, which is safe for KGP).
  int nscc = 0;
  for (int b = 0; b < nb; ++b) nscc = std::max(nscc, scc_of_block_[b] + 1);
  std::vector<std::set<int>> scc_succ(nscc);
  std::vector<int> scc_min(nscc, 0), scc_max(nscc, 0);
  std::vector<bool> scc_loop(nscc, false);
  for (int b = 0; b < nb; ++b) {
    int s = scc_of_block_[b];
    scc_min[s] += block_in_loop_[b] ? 0 : emits[b];
    scc_max[s] += emits[b];
    if (block_in_loop_[b]) scc_loop[s] = true;
    for (int succ : blocks_[b].successors) {
      int t = scc_of_block_[succ];
      if (t != s) scc_succ[s].insert(t);
    }
  }
  // Note: within one SCC that is not a loop (single block), min = max =
  // emits. For multi-block non-loop paths the DP below handles branching.
  // For simplicity we approximate the per-SCC min of a loop as 0 and handle
  // straight-line/branching structure at block granularity when no loops
  // exist.
  if (!unbounded && std::none_of(scc_loop.begin(), scc_loop.end(),
                                 [](bool x) { return x; })) {
    // Acyclic CFG: exact DP over blocks in reverse topological order
    // (instruction order is a topological order for structured builders, but
    // compute properly via DFS post-order to be safe).
    std::vector<int> order;
    std::vector<int> state(nb, 0);
    std::vector<std::pair<int, size_t>> stack{{0, 0}};
    state[0] = 1;
    while (!stack.empty()) {
      auto& [v, child] = stack.back();
      if (child < blocks_[v].successors.size()) {
        int w = blocks_[v].successors[child++];
        if (state[w] == 0) {
          state[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
    std::vector<int> mn(nb, 0), mx(nb, 0);
    for (int v : order) {
      if (blocks_[v].successors.empty()) {
        mn[v] = mx[v] = emits[v];
      } else {
        int best_min = INT32_MAX, best_max = 0;
        for (int w : blocks_[v].successors) {
          best_min = std::min(best_min, mn[w]);
          best_max = std::max(best_max, mx[w]);
        }
        mn[v] = emits[v] + best_min;
        mx[v] = emits[v] + best_max;
      }
    }
    *min_emits = mn[0];
    *max_emits = mx[0];
    return;
  }

  // Loopy CFG: min over condensation with loop-SCCs contributing 0; max
  // unbounded if any emit is in a loop, else DP over condensation.
  std::vector<int> scc_of_entry{scc_of_block_[0]};
  // DP over condensation (it is a DAG).
  std::vector<int> mn(nscc, -1), mx(nscc, -1);
  // Build reverse topo order of condensation via DFS.
  std::vector<int> order;
  std::vector<int> state(nscc, 0);
  std::vector<std::pair<int, std::set<int>::iterator>> stack2;
  int entry = scc_of_block_[0];
  stack2.push_back({entry, scc_succ[entry].begin()});
  state[entry] = 1;
  while (!stack2.empty()) {
    auto& [v, it] = stack2.back();
    if (it != scc_succ[v].end()) {
      int w = *it;
      ++it;
      if (state[w] == 0) {
        state[w] = 1;
        stack2.push_back({w, scc_succ[w].begin()});
      }
    } else {
      order.push_back(v);
      stack2.pop_back();
    }
  }
  for (int v : order) {
    if (scc_succ[v].empty()) {
      mn[v] = scc_min[v];
      mx[v] = scc_max[v];
    } else {
      int best_min = INT32_MAX, best_max = 0;
      for (int w : scc_succ[v]) {
        if (mn[w] < 0) continue;
        best_min = std::min(best_min, mn[w]);
        best_max = std::max(best_max, mx[w]);
      }
      if (best_min == INT32_MAX) best_min = 0;
      mn[v] = scc_min[v] + best_min;
      mx[v] = scc_max[v] + best_max;
    }
  }
  *min_emits = mn[entry] < 0 ? 0 : mn[entry];
  *max_emits = unbounded ? -1 : (mx[entry] < 0 ? 0 : mx[entry]);
}

}  // namespace sca
}  // namespace blackbox
