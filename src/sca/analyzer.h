// Static code analysis of UDFs (paper Section 5): derives a conservative
// LocalUdfSummary from the three-address code of a first-order function.
//
// Safety contract ("safety through conservatism", §5): the returned read and
// write sets are supersets of the true sets for any input data set, emit
// bounds enclose the true bounds, and unresolvable constructs (computed field
// indices, mixed constructor paths) degrade to "all fields" / "projection".
// Supersets can only *add* conflicts, so the enabled reorderings are a subset
// of the truly valid ones — the optimizer never produces a wrong plan.

#ifndef BLACKBOX_SCA_ANALYZER_H_
#define BLACKBOX_SCA_ANALYZER_H_

#include "common/status.h"
#include "sca/cfg.h"
#include "sca/summary.h"
#include "tac/tac.h"

namespace blackbox {
namespace sca {

/// Analyzes one UDF. Fails only on malformed code (e.g., emitting a record
/// whose origin cannot be traced at all).
StatusOr<LocalUdfSummary> AnalyzeUdf(const tac::Function& fn);

}  // namespace sca
}  // namespace blackbox

#endif  // BLACKBOX_SCA_ANALYZER_H_
