// The result of statically analyzing one UDF: a conservative summary of its
// data access behaviour in terms of *local* field indices (positions in the
// UDF's own input/output layout). The dataflow layer resolves local indices
// against input schemas and the global record (Definition 1) to obtain global
// read/write sets.

#ifndef BLACKBOX_SCA_SUMMARY_H_
#define BLACKBOX_SCA_SUMMARY_H_

#include <set>
#include <string>
#include <vector>

namespace blackbox {
namespace sca {

/// A set of local field indices of one input, with a conservative "all
/// fields" escape hatch for statically unresolvable (computed) indices.
struct LocalFieldSet {
  std::set<int> fields;
  bool all = false;  // computed index: every field may be accessed

  bool Contains(int f) const { return all || fields.count(f) > 0; }
  void Add(int f) { fields.insert(f); }
  void AddAll() { all = true; }
  bool Empty() const { return !all && fields.empty(); }
};

/// How the UDF constructs the records it emits (§5 write-set estimation).
enum class OutputKind {
  kCopyOfInput,  // copy constructor: implicit copy of input `copy_input`
  kProjection,   // default constructor: implicit projection of everything
  kConcat,       // binary concat constructor: implicit copy of both inputs
};

/// One (conservatively merged) field write on the output record.
struct FieldWrite {
  enum class Kind {
    kExplicitCopy,     // setField(p, t) with t = getField(input, n): keeps
                       // the attribute's identity (not a modification)
    kExplicitProject,  // setField(p, null)
    kModify,           // setField(p, computed) at a position < input arity
    kAdd,              // setField(p, computed) at a new position
  };
  int out_pos = -1;
  Kind kind = Kind::kModify;
  int from_input = -1;  // kExplicitCopy: source input
  int from_field = -1;  // kExplicitCopy: source field
};

/// Conservative summary of one UDF (the "opened black box").
struct LocalUdfSummary {
  int num_inputs = 1;

  /// Read set estimate per input: fields whose getField result is used
  /// (paper §5, DEF-USE non-empty).
  std::vector<LocalFieldSet> reads;

  /// Output record construction.
  OutputKind out_kind = OutputKind::kProjection;
  int copy_input = 0;  // for kCopyOfInput

  /// All field writes that can reach an emit (conservative union).
  std::vector<FieldWrite> writes;

  /// A setField with a computed index was seen: every field of the output
  /// may be modified.
  bool writes_all = false;

  /// Emit cardinality bounds per invocation; max_emits == -1 is unbounded.
  int min_emits = 0;
  int max_emits = 0;

  /// Fields (per input) that can influence control flow, i.e. the emit
  /// decision — used to check the KGP condition (Definition 5 case 2).
  std::vector<LocalFieldSet> decision_reads;

  /// Highest output position written explicitly (for layout sizing).
  int max_out_pos = -1;

  std::string ToString() const;
};

}  // namespace sca
}  // namespace blackbox

#endif  // BLACKBOX_SCA_SUMMARY_H_
