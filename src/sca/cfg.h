// Control-flow graph over TAC functions plus the classic data-flow analyses
// the paper's SCA relies on (Section 5): reaching definitions and the derived
// USE-DEF / DEF-USE chains.

#ifndef BLACKBOX_SCA_CFG_H_
#define BLACKBOX_SCA_CFG_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "tac/tac.h"

namespace blackbox {
namespace sca {

/// A basic block: [begin, end) range of instruction indices.
struct BasicBlock {
  int begin = 0;
  int end = 0;
  std::vector<int> successors;    // block ids
  std::vector<int> predecessors;  // block ids
};

/// Which registers an instruction defines and uses. setField both uses and
/// (re)defines its record register — a record mutation is modelled as a
/// definition so provenance tracking stays conservative.
struct DefUseInfo {
  int def = -1;            // register defined (-1 if none)
  std::vector<int> uses;   // registers read
};

DefUseInfo GetDefUse(const tac::Instr& instr);

/// CFG + reaching definitions for one function. "Definition" means an
/// instruction index whose def-register reaches a program point unredefined.
class ControlFlowGraph {
 public:
  static StatusOr<ControlFlowGraph> Build(const tac::Function& fn);

  const tac::Function& fn() const { return *fn_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  int block_of(int instr) const { return block_of_[instr]; }

  /// USE-DEF chain (paper §5): all definitions of `reg` that may reach the
  /// use at instruction `instr`.
  const std::set<int>& UseDefs(int instr, int reg) const;

  /// DEF-USE chain: all instructions that may use the value defined at
  /// instruction `instr`.
  const std::set<int>& DefUses(int instr) const;

  /// Resolves a register use at `instr` to a compile-time integer constant if
  /// it has a unique reaching definition that is a kConstInt ("literals and
  /// final variables" — §7.3). Returns false otherwise.
  bool ResolveConstInt(int instr, int reg, int64_t* out) const;

  /// Transitive backward slice: all getField instructions whose value can
  /// flow (through value registers) into the use of `reg` at `instr`.
  std::set<int> BackwardSliceGetFields(int instr, int reg) const;

  /// True if `instr` lies inside a cycle of the CFG (i.e., in a non-trivial
  /// strongly connected component or a self-loop block).
  bool InLoop(int instr) const;

  /// Emit-count bounds over all execution paths: max == -1 means unbounded
  /// (an emit inside a loop).
  void EmitBounds(int* min_emits, int* max_emits) const;

 private:
  ControlFlowGraph() = default;

  void ComputeReachingDefs();
  void ComputeSccs();

  const tac::Function* fn_ = nullptr;
  std::vector<BasicBlock> blocks_;
  std::vector<int> block_of_;

  // reaching_in_[instr] = set of definition sites reaching before instr.
  std::vector<std::set<int>> reaching_in_;
  // use_defs_[instr][slot] for each used reg (parallel to DefUseInfo::uses).
  // Flattened: key (instr, reg) via map; small functions, so a vector of
  // per-instr maps is fine.
  std::vector<std::vector<std::pair<int, std::set<int>>>> use_defs_;
  std::vector<std::set<int>> def_uses_;

  std::vector<int> scc_of_block_;
  std::vector<bool> block_in_loop_;

  static const std::set<int> kEmptySet;
};

}  // namespace sca
}  // namespace blackbox

#endif  // BLACKBOX_SCA_CFG_H_
