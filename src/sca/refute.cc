#include "sca/refute.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace blackbox {
namespace sca {

namespace {

using tac::Opcode;

constexpr double kInf = std::numeric_limits<double>::infinity();
// Ints beyond this magnitude get unbounded treatment: double bounds stop
// being exact past 2^53, and int64 arithmetic can wrap near 2^63 — both
// would make a "bounded" abstract interval exclude concrete results.
constexpr double kIntSafe = 4.0e18;
constexpr int64_t kExactInt = int64_t{1} << 53;

/// Abstract value: per-type possibility flags plus bounds. The numeric
/// bounds are shared by the int and double possibilities (over-approximate
/// but sound — Value's exact equality is still tested per type flag).
struct AV {
  bool null_ = false;
  bool int_ = false;
  bool dbl_ = false;
  double nlo = kInf, nhi = -kInf;  // valid when int_ || dbl_
  bool str_ = false;
  std::string slo, shi;
  bool shi_open = false;

  bool IsNothing() const { return !null_ && !int_ && !dbl_ && !str_; }
  bool OnlyInt() const { return int_ && !null_ && !dbl_ && !str_; }
};

AV NullAV() {
  AV a;
  a.null_ = true;
  return a;
}

AV IntConstAV(int64_t v) {
  AV a;
  a.int_ = true;
  if (v >= -kExactInt && v <= kExactInt) {
    a.nlo = a.nhi = static_cast<double>(v);
  } else {
    a.nlo = -kInf;
    a.nhi = kInf;
  }
  return a;
}

AV DblConstAV(double v) {
  AV a;
  a.dbl_ = true;
  if (std::isnan(v)) {
    a.nlo = -kInf;
    a.nhi = kInf;
  } else {
    a.nlo = a.nhi = v;
  }
  return a;
}

AV StrConstAV(const std::string& s) {
  AV a;
  a.str_ = true;
  a.slo = s;
  a.shi = s;
  return a;
}

AV TopAV() {
  AV a;
  a.null_ = a.int_ = a.dbl_ = a.str_ = true;
  a.nlo = -kInf;
  a.nhi = kInf;
  a.shi_open = true;
  return a;
}

/// may0/may1 -> the int {0,1} subset a comparison or logic op can produce.
AV BoolAV(bool may0, bool may1) {
  AV a;
  if (!may0 && !may1) return a;  // bottom: no concrete execution reaches
  a.int_ = true;
  a.nlo = may0 ? 0 : 1;
  a.nhi = may1 ? 1 : 0;
  return a;
}

AV FromRange(const ValueRange& r) {
  AV a;
  a.null_ = r.may_null;
  if (r.may_int) {
    a.int_ = true;
    double lo = (r.int_lo >= -kExactInt && r.int_lo <= kExactInt)
                    ? static_cast<double>(r.int_lo)
                    : -kInf;
    double hi = (r.int_hi >= -kExactInt && r.int_hi <= kExactInt)
                    ? static_cast<double>(r.int_hi)
                    : kInf;
    a.nlo = std::min(a.nlo, lo);
    a.nhi = std::max(a.nhi, hi);
  }
  if (r.may_double) {
    a.dbl_ = true;
    a.nlo = std::min(a.nlo, r.dbl_lo);
    a.nhi = std::max(a.nhi, r.dbl_hi);
  }
  if (r.may_str) {
    a.str_ = true;
    a.slo = r.str_lo;
    a.shi = r.str_hi;
    a.shi_open = r.str_hi_open;
  }
  return a;
}

void JoinAV(AV* a, const AV& b) {
  a->null_ |= b.null_;
  if (b.int_ || b.dbl_) {
    a->nlo = std::min(a->nlo, b.nlo);
    a->nhi = std::max(a->nhi, b.nhi);
  }
  a->int_ |= b.int_;
  a->dbl_ |= b.dbl_;
  if (b.str_) {
    if (!a->str_) {
      a->str_ = true;
      a->slo = b.slo;
      a->shi = b.shi;
      a->shi_open = b.shi_open;
    } else {
      if (b.slo < a->slo) a->slo = b.slo;
      if (b.shi_open) {
        a->shi_open = true;
        a->shi.clear();
      } else if (!a->shi_open && b.shi > a->shi) {
        a->shi = b.shi;
      }
    }
  }
}

/// The image of an AV under Value::ToDouble (null and string map to 0.0).
struct Interval {
  double lo = kInf, hi = -kInf;
  bool has = false;
};

Interval NumImage(const AV& a) {
  Interval v;
  if (a.int_ || a.dbl_) {
    v.lo = a.nlo;
    v.hi = a.nhi;
    v.has = true;
  }
  if (a.null_ || a.str_) {
    v.lo = std::min(v.lo, 0.0);
    v.hi = std::max(v.hi, 0.0);
    v.has = true;
  }
  return v;
}

/// Outward-widens an arithmetic result interval: absorbs double rounding in
/// the bound computation itself (concrete int64 math is exact where doubles
/// round past 2^53).
void Widen(double* lo, double* hi) {
  if (std::isfinite(*lo)) *lo -= std::fabs(*lo) * 1e-9 + 1e-9;
  if (std::isfinite(*hi)) *hi += std::fabs(*hi) * 1e-9 + 1e-9;
}

AV ArithAV(Opcode op, const AV& a, const AV& b) {
  if (a.IsNothing() || b.IsNothing()) return AV();
  AV r;
  r.int_ = a.int_ && b.int_;              // the int/int fast path
  r.dbl_ = !(a.OnlyInt() && b.OnlyInt());  // any other operand pair
  Interval x = NumImage(a), y = NumImage(b);
  double lo = -kInf, hi = kInf;
  bool finite_in = std::isfinite(x.lo) && std::isfinite(x.hi) &&
                   std::isfinite(y.lo) && std::isfinite(y.hi);
  if (finite_in) {
    switch (op) {
      case Opcode::kAdd:
        lo = x.lo + y.lo;
        hi = x.hi + y.hi;
        break;
      case Opcode::kSub:
        lo = x.lo - y.hi;
        hi = x.hi - y.lo;
        break;
      case Opcode::kMul: {
        double p1 = x.lo * y.lo, p2 = x.lo * y.hi, p3 = x.hi * y.lo,
               p4 = x.hi * y.hi;
        lo = std::min(std::min(p1, p2), std::min(p3, p4));
        hi = std::max(std::max(p1, p2), std::max(p3, p4));
        break;
      }
      default:
        // kDiv / kMod: division by a zero-spanning divisor and truncation
        // semantics make tight bounds fiddly; unbounded is always sound.
        lo = -kInf;
        hi = kInf;
        break;
    }
  }
  if (std::isnan(lo) || std::isnan(hi)) {
    lo = -kInf;
    hi = kInf;
  }
  Widen(&lo, &hi);
  // Concrete int64 arithmetic can wrap near 2^63; once bounds approach that
  // region the interval no longer contains the wrapped result.
  if (r.int_ && (lo < -kIntSafe || hi > kIntSafe)) {
    lo = -kInf;
    hi = kInf;
  }
  r.nlo = lo;
  r.nhi = hi;
  return r;
}

struct Truth {
  bool may_true = false, may_false = false;
};

Truth TruthOf(const AV& a) {
  Truth t;
  if (a.null_) t.may_false = true;
  if (a.int_ || a.dbl_) {
    if (a.nlo <= 0 && 0 <= a.nhi) t.may_false = true;
    if (a.nlo < 0 || a.nhi > 0) t.may_true = true;
  }
  if (a.str_) {
    if (a.slo.empty()) t.may_false = true;  // "" admitted
    if (a.shi_open || !a.shi.empty()) t.may_true = true;
  }
  return t;
}

struct Signs {
  bool neg = false, zero = false, pos = false;
};

/// Possible results of interp's Compare(a, b): lexicographic when both are
/// strings, ToDouble comparison otherwise.
Signs CompareAV(const AV& a, const AV& b) {
  Signs s;
  if (a.IsNothing() || b.IsNothing()) return s;
  if (a.str_ && b.str_) {
    if (b.shi_open || a.slo < b.shi) s.neg = true;
    if (a.shi_open || b.slo < a.shi) s.pos = true;
    bool a_below_b = !a.shi_open && a.shi < b.slo;
    bool b_below_a = !b.shi_open && b.shi < a.slo;
    if (!a_below_b && !b_below_a) s.zero = true;
  }
  bool a_nonstr = a.null_ || a.int_ || a.dbl_;
  bool b_nonstr = b.null_ || b.int_ || b.dbl_;
  if (a_nonstr || b_nonstr) {  // some operand pair takes the numeric path
    Interval x = NumImage(a), y = NumImage(b);
    if (x.has && y.has) {
      if (x.lo < y.hi) s.neg = true;
      if (x.hi > y.lo) s.pos = true;
      if (x.lo <= y.hi && y.lo <= x.hi) s.zero = true;
    }
  }
  return s;
}

/// Could values admitted by `a` and `b` be exactly equal (Value::operator==)?
bool EqPossible(const AV& a, const AV& b) {
  if (a.null_ && b.null_) return true;
  if ((a.int_ && b.int_) || (a.dbl_ && b.dbl_)) {
    if (a.nlo <= b.nhi && b.nlo <= a.nhi) return true;
  }
  if (a.str_ && b.str_) {
    bool a_below_b = !a.shi_open && a.shi < b.slo;
    bool b_below_a = !b.shi_open && b.shi < a.slo;
    if (!a_below_b && !b_below_a) return true;
  }
  return false;
}

/// Abstract record register: which translation map field indices resolve
/// through, and whether static getFields still see the raw input columns.
struct RecAV {
  bool maybe_input = false;
  bool maybe_output = true;  // covers fresh (-2) and constructed (-1) records
  bool fields_known = false;  // unmodified input record: reads hit `cols`
};

void JoinRec(RecAV* a, const RecAV& b) {
  a->maybe_input |= b.maybe_input;
  a->maybe_output |= b.maybe_output;
  a->fields_known = a->fields_known && b.fields_known;
}

struct State {
  std::vector<AV> vals;
  std::vector<RecAV> recs;
};

void JoinState(State* a, const State& b) {
  for (size_t i = 0; i < a->vals.size(); ++i) JoinAV(&a->vals[i], b.vals[i]);
  for (size_t i = 0; i < a->recs.size(); ++i) JoinRec(&a->recs[i], b.recs[i]);
}

}  // namespace

std::optional<BatchRefuter> BatchRefuter::Make(
    const tac::Function& fn, const interp::FieldTranslation& translation) {
  if (fn.kind() != tac::UdfKind::kRat || fn.num_inputs() != 1) {
    return std::nullopt;
  }
  auto input_pos = [&](int local) -> int {
    if (translation.input_maps.empty()) return local;
    const auto& map = translation.input_maps[0];
    if (local < 0 || local >= static_cast<int>(map.size())) return -1;
    return map[local];
  };
  auto output_pos = [&](int local) -> int {
    if (translation.output_map.empty()) return local;
    if (local < 0 || local >= static_cast<int>(translation.output_map.size())) {
      return -1;
    }
    return translation.output_map[local];
  };

  BatchRefuter r(&fn, &translation);
  const auto& instrs = fn.instrs();
  for (size_t i = 0; i < instrs.size(); ++i) {
    const tac::Instr& ins = instrs[i];
    switch (ins.op) {
      case Opcode::kGoto:
      case Opcode::kBranchIfTrue:
      case Opcode::kBranchIfFalse:
        // Only forward control flow: a backward edge means loops, whose
        // step-limit error the abstraction cannot rule out.
        if (ins.target <= static_cast<int>(i)) return std::nullopt;
        break;
      case Opcode::kInputCount:
      case Opcode::kInputAt:
        return std::nullopt;  // KAT access; groups are not modeled
      case Opcode::kInputRecord:
        if (ins.imm_int != 0) return std::nullopt;
        break;
      case Opcode::kSetField: {
        // A setField whose translated position resolves negative is a
        // runtime error (interp returns OutOfRange) — skipping would
        // swallow it. Require both possible resolutions to be in range.
        if (ins.index_is_reg) return std::nullopt;
        int local = static_cast<int>(ins.imm_int);
        if (input_pos(local) < 0 || output_pos(local) < 0) return std::nullopt;
        break;
      }
      case Opcode::kGetField:
        if (!ins.index_is_reg) {
          int pos = input_pos(static_cast<int>(ins.imm_int));
          if (pos >= 0) r.read_positions_.push_back(pos);
        }
        break;
      case Opcode::kGetInputField:
        // Fused chain-input read (tac/fuse.h): imm_int is already a global
        // position, no translation applies.
        r.read_positions_.push_back(static_cast<int>(ins.imm_int));
        break;
      default:
        break;
    }
  }
  std::sort(r.read_positions_.begin(), r.read_positions_.end());
  r.read_positions_.erase(
      std::unique(r.read_positions_.begin(), r.read_positions_.end()),
      r.read_positions_.end());
  return r;
}

bool BatchRefuter::RefutesEmit(const std::vector<ValueRange>& cols) const {
  const auto& instrs = fn_->instrs();
  const int n = static_cast<int>(instrs.size());
  auto input_pos = [&](int local) -> int {
    if (translation_->input_maps.empty()) return local;
    const auto& map = translation_->input_maps[0];
    if (local < 0 || local >= static_cast<int>(map.size())) return -1;
    return map[local];
  };

  const int nregs = fn_->num_registers();
  std::vector<std::optional<State>> in(n);
  if (n == 0) return true;  // no instructions: nothing emits, nothing errors
  State init;
  init.vals.assign(nregs, NullAV());  // registers start value-initialized
  init.recs.assign(nregs, RecAV());
  in[0] = std::move(init);

  auto merge_into = [&](int t, const State& s) {
    if (t >= n) return;  // falling off the end is a clean return
    if (!in[t]) {
      in[t] = s;
    } else {
      JoinState(&*in[t], s);
    }
  };

  for (int pc = 0; pc < n; ++pc) {
    if (!in[pc]) continue;  // unreachable under every admitted record
    State st = std::move(*in[pc]);
    const tac::Instr& i = instrs[pc];
    switch (i.op) {
      case Opcode::kEmit:
        return false;  // an emit is reachable: cannot refute
      case Opcode::kConstInt:
        st.vals[i.dst] = IntConstAV(i.imm_int);
        break;
      case Opcode::kConstDouble:
        st.vals[i.dst] = DblConstAV(i.imm_double);
        break;
      case Opcode::kConstStr:
        st.vals[i.dst] = StrConstAV(i.imm_str);
        break;
      case Opcode::kConstNull:
        st.vals[i.dst] = NullAV();
        break;
      case Opcode::kMove:
        st.vals[i.dst] = st.vals[i.src0];
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
        st.vals[i.dst] = ArithAV(i.op, st.vals[i.src0], st.vals[i.src1]);
        break;
      case Opcode::kNeg: {
        const AV& a = st.vals[i.src0];
        if (a.IsNothing()) {
          st.vals[i.dst] = AV();
          break;
        }
        AV r;
        r.int_ = a.int_;
        r.dbl_ = a.dbl_ || a.null_ || a.str_;
        Interval x = NumImage(a);
        double lo = -x.hi, hi = -x.lo;
        Widen(&lo, &hi);
        if (r.int_ && (lo < -kIntSafe || hi > kIntSafe)) {
          lo = -kInf;
          hi = kInf;
        }
        r.nlo = lo;
        r.nhi = hi;
        st.vals[i.dst] = r;
        break;
      }
      case Opcode::kCmpLt: {
        Signs s = CompareAV(st.vals[i.src0], st.vals[i.src1]);
        st.vals[i.dst] = BoolAV(s.zero || s.pos, s.neg);
        break;
      }
      case Opcode::kCmpLe: {
        Signs s = CompareAV(st.vals[i.src0], st.vals[i.src1]);
        st.vals[i.dst] = BoolAV(s.pos, s.neg || s.zero);
        break;
      }
      case Opcode::kCmpGt: {
        Signs s = CompareAV(st.vals[i.src0], st.vals[i.src1]);
        st.vals[i.dst] = BoolAV(s.neg || s.zero, s.pos);
        break;
      }
      case Opcode::kCmpGe: {
        Signs s = CompareAV(st.vals[i.src0], st.vals[i.src1]);
        st.vals[i.dst] = BoolAV(s.neg, s.zero || s.pos);
        break;
      }
      case Opcode::kCmpEq: {
        bool none = st.vals[i.src0].IsNothing() || st.vals[i.src1].IsNothing();
        st.vals[i.dst] =
            none ? AV()
                 : BoolAV(true, EqPossible(st.vals[i.src0], st.vals[i.src1]));
        break;
      }
      case Opcode::kCmpNe: {
        bool none = st.vals[i.src0].IsNothing() || st.vals[i.src1].IsNothing();
        st.vals[i.dst] =
            none ? AV()
                 : BoolAV(EqPossible(st.vals[i.src0], st.vals[i.src1]), true);
        break;
      }
      case Opcode::kAnd: {
        Truth a = TruthOf(st.vals[i.src0]), b = TruthOf(st.vals[i.src1]);
        st.vals[i.dst] = BoolAV(a.may_false || b.may_false,
                                a.may_true && b.may_true);
        break;
      }
      case Opcode::kOr: {
        Truth a = TruthOf(st.vals[i.src0]), b = TruthOf(st.vals[i.src1]);
        st.vals[i.dst] =
            BoolAV(a.may_false && b.may_false, a.may_true || b.may_true);
        break;
      }
      case Opcode::kNot: {
        Truth a = TruthOf(st.vals[i.src0]);
        st.vals[i.dst] = BoolAV(a.may_true, a.may_false);
        break;
      }
      case Opcode::kStrLen: {
        AV r;
        if (!st.vals[i.src0].IsNothing()) {
          r.int_ = true;
          r.nlo = 0;
          r.nhi = kInf;
        }
        st.vals[i.dst] = r;
        break;
      }
      case Opcode::kStrConcat: {
        AV r;
        if (!st.vals[i.src0].IsNothing() && !st.vals[i.src1].IsNothing()) {
          r.str_ = true;
          r.shi_open = true;
        }
        st.vals[i.dst] = r;
        break;
      }
      case Opcode::kStrContains: {
        const AV& a = st.vals[i.src0];
        const AV& b = st.vals[i.src1];
        st.vals[i.dst] = (a.IsNothing() || b.IsNothing())
                             ? AV()
                             : BoolAV(true, a.str_ && b.str_);
        break;
      }
      case Opcode::kStrHashMod: {
        AV r;
        if (!st.vals[i.src0].IsNothing()) {
          int64_t mod = i.imm_int <= 0 ? 1 : i.imm_int;
          r.int_ = true;
          r.nlo = 0;
          r.nhi = static_cast<double>(mod - 1);
        }
        st.vals[i.dst] = r;
        break;
      }
      case Opcode::kGoto:
        merge_into(i.target, st);
        continue;  // no fall-through
      case Opcode::kBranchIfTrue: {
        Truth t = TruthOf(st.vals[i.src0]);
        if (t.may_true) merge_into(i.target, st);
        if (!t.may_false) continue;  // fall-through impossible
        break;
      }
      case Opcode::kBranchIfFalse: {
        Truth t = TruthOf(st.vals[i.src0]);
        if (t.may_false) merge_into(i.target, st);
        if (!t.may_true) continue;  // fall-through impossible
        break;
      }
      case Opcode::kReturn:
        continue;  // clean end of invocation
      case Opcode::kGetField: {
        const RecAV& rec = st.recs[i.src0];
        if (i.index_is_reg || !rec.fields_known) {
          st.vals[i.dst] = TopAV();
          break;
        }
        int pos = input_pos(static_cast<int>(i.imm_int));
        if (pos < 0) {
          st.vals[i.dst] = NullAV();  // untranslated position reads null
        } else if (pos < static_cast<int>(cols.size())) {
          st.vals[i.dst] = FromRange(cols[pos]);
        } else {
          // Past every admitted record's width: getField yields null
          // (ColumnRange's convention for absent columns).
          st.vals[i.dst] = NullAV();
        }
        break;
      }
      case Opcode::kSetField:
        // Resolutions were verified non-negative in Make, so no error;
        // the record's raw input columns are no longer readable though.
        st.recs[i.dst].fields_known = false;
        break;
      case Opcode::kCopyRecord:
        st.recs[i.dst] = st.recs[i.src0];
        break;
      case Opcode::kNewRecord:
      case Opcode::kConcatRecords: {
        RecAV r;
        r.maybe_output = true;
        st.recs[i.dst] = r;
        break;
      }
      case Opcode::kInputRecord: {
        RecAV r;
        r.maybe_input = true;
        r.maybe_output = false;
        r.fields_known = true;
        st.recs[i.dst] = r;
        break;
      }
      case Opcode::kInputCount:
      case Opcode::kInputAt:
        return false;  // unreachable (Make rejects these); stay safe
      case Opcode::kGetInputField: {
        // Untranslated read of a global chain-input position (fused chains).
        int pos = static_cast<int>(i.imm_int);
        st.vals[i.dst] = pos < static_cast<int>(cols.size())
                             ? FromRange(cols[pos])
                             : NullAV();
        break;
      }
      case Opcode::kCpuBurn:
        break;  // no data effect (the elided burn is the point of skipping)
    }
    merge_into(pc + 1, st);
  }
  return true;  // no emit was reachable, and no error path exists
}

}  // namespace sca
}  // namespace blackbox
