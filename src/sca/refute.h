// Batch refutation for data skipping (DESIGN.md §2.5). Given a RAT Map UDF,
// its field translation, and a zone-map summary of a batch (per-global-
// position ValueRanges), BatchRefuter decides whether ANY record the summary
// admits could make the UDF emit. If provably none can — and provably no
// invocation can error — the engine may skip the whole batch without
// interpreting a record, and the skipped work is unobservable downstream.
//
// Soundness contract: RefutesEmit(cols) == true asserts that for EVERY
// record r whose field values are admitted by `cols`, running the UDF on r
// (a) emits nothing and (b) returns OK. The analysis is a forward abstract
// interpretation over the TAC that mirrors interp.cc's concrete semantics
// exactly (ToDouble coercions, exact-type equality, truthiness, null
// out-of-range getField) and over-approximates at every join point. Anything
// it cannot model soundly — loops (step-limit errors), KAT input access,
// dynamic setField, a setField whose translated position could be negative —
// makes construction fail instead: "cannot analyze" degrades to "cannot
// skip", never the reverse.

#ifndef BLACKBOX_SCA_REFUTE_H_
#define BLACKBOX_SCA_REFUTE_H_

#include <optional>
#include <vector>

#include "interp/interp.h"
#include "record/zone_map.h"
#include "tac/tac.h"

namespace blackbox {
namespace sca {

class BatchRefuter {
 public:
  /// Builds a refuter for one UDF invocation site. nullopt when the function
  /// cannot be soundly analyzed (see header comment) — the caller simply
  /// never skips for that operator. `fn` and `translation` must outlive the
  /// refuter.
  static std::optional<BatchRefuter> Make(
      const tac::Function& fn, const interp::FieldTranslation& translation);

  /// Global record positions the analysis reads through static getFields on
  /// input records. A caller building ranges by hand only needs to supply
  /// real information at these positions; everything else may be Top.
  const std::vector<int>& read_positions() const { return read_positions_; }

  /// True iff no record admitted by `cols` (indexed by global position;
  /// positions at or past cols.size() are null-only, matching
  /// ZoneMapSketch::ColumnRange) can reach an emit or an error. False means
  /// "might emit" — including every case the abstraction is too coarse to
  /// decide.
  bool RefutesEmit(const std::vector<ValueRange>& cols) const;

 private:
  BatchRefuter(const tac::Function* fn,
               const interp::FieldTranslation* translation)
      : fn_(fn), translation_(translation) {}

  const tac::Function* fn_;
  const interp::FieldTranslation* translation_;
  std::vector<int> read_positions_;
};

}  // namespace sca
}  // namespace blackbox

#endif  // BLACKBOX_SCA_REFUTE_H_
