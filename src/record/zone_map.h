// Zone-map sketches for data skipping (DESIGN.md §2.5). A ZoneMapSketch
// summarizes a run of records with, per attribute position, the set of value
// types seen plus min/max bounds per type — the classic zone map, adapted to
// the engine's dynamically-typed values. Sketches are maintained incrementally
// on the batch append path (RecordBatch::AppendWithSize) and merged into
// per-run summaries when batches spill, so both in-memory batches and
// spill-run headers carry one.
//
// The single soundness rule: a sketch may only ever OVER-approximate the
// values actually present. Every consumer (the filter-chain refuter in
// sca/refute.h, the join-run intersection test below) treats the sketch as
// "these values might be present" and skips only when a property is
// impossible for every value the sketch admits. Bounds that cannot be
// maintained exactly (long strings, NaN) widen to unbounded instead of
// guessing.

#ifndef BLACKBOX_RECORD_ZONE_MAP_H_
#define BLACKBOX_RECORD_ZONE_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/record.h"

namespace blackbox {

/// An over-approximation of the values one attribute position may hold:
/// per-type possibility flags plus bounds for the types that have them.
/// Matches Value's exact-equality semantics — int and double ranges are kept
/// separate because Value(5) never equals Value(5.0).
struct ValueRange {
  bool may_null = false;
  bool may_int = false;
  int64_t int_lo = 0, int_hi = 0;
  bool may_double = false;
  double dbl_lo = 0, dbl_hi = 0;
  bool may_str = false;
  /// str_lo is a valid lower bound but may be a truncated prefix of the true
  /// minimum (a prefix is always <= the full string). str_hi is exact unless
  /// str_hi_open, which means "no upper bound" (set when a string longer than
  /// kMaxTrackedStringBytes was observed).
  std::string str_lo, str_hi;
  bool str_hi_open = false;

  /// The range admitting every value — what consumers use for columns they
  /// have no information about.
  static ValueRange Top();

  /// True when no value at all is admitted (empty batch / empty run).
  bool Nothing() const {
    return !may_null && !may_int && !may_double && !may_str;
  }
};

/// Could a value admitted by `a` compare equal (Value::operator==: exact type
/// and content) to a value admitted by `b`? False only when provably
/// impossible — the join-key refutation test.
bool RangesMayIntersect(const ValueRange& a, const ValueRange& b);

class ZoneMapSketch {
 public:
  /// String bounds are tracked up to this many bytes. Longer strings keep a
  /// truncated lower bound and widen the upper bound to +inf, keeping sketch
  /// memory bounded no matter the payload (textmining documents).
  static constexpr size_t kMaxTrackedStringBytes = 32;

  /// Folds one record into the sketch. Positions past the record's width
  /// count as null (mirroring kGetField / KeyOf out-of-range semantics).
  void Observe(const Record& r);

  /// Folds another sketch in; the result admits everything either admitted.
  void Merge(const ZoneMapSketch& other);

  void Clear() {
    rows_ = 0;
    cols_.clear();
  }

  uint64_t rows() const { return rows_; }
  size_t num_columns() const { return cols_.size(); }

  /// The value range of attribute position `c`. Positions the sketch never
  /// saw a value for are null-only; a zero-row sketch admits nothing.
  ValueRange ColumnRange(size_t c) const;

  /// Appends the wire encoding to *out (the spill-run header block).
  void EncodeTo(std::string* out) const;

  /// Decodes a sketch from [data, data+size), advancing *pos. Truncated or
  /// malformed input is a Corruption error.
  static StatusOr<ZoneMapSketch> Decode(const char* data, size_t size,
                                        size_t* pos);

 private:
  struct Column {
    uint64_t non_null = 0;
    bool has_int = false;
    int64_t imin = 0, imax = 0;
    bool has_dbl = false;
    double dmin = 0, dmax = 0;
    bool has_str = false;
    std::string smin, smax;
    bool smax_open = false;  // upper bound widened to +inf (long string seen)
  };

  uint64_t rows_ = 0;
  std::vector<Column> cols_;
};

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_ZONE_MAP_H_
