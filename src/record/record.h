// Record and DataSet: the Stratosphere record data model of Section 2.2.
// A data set is an *unordered list* (bag) of records; a record is an ordered
// tuple of values. Equality of data sets is bag equality (there exist
// orderings making them pairwise equal).

#ifndef BLACKBOX_RECORD_RECORD_H_
#define BLACKBOX_RECORD_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/value.h"

namespace blackbox {

/// An ordered tuple of values r = <v1, ..., vm>.
class Record {
 public:
  Record() = default;
  explicit Record(std::vector<Value> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }

  const Value& field(size_t i) const { return fields_[i]; }

  /// Sets field i, growing the record with nulls if i is past the end. This
  /// mirrors the paper's record API where setField can *add* attributes
  /// (which then join the global record).
  void SetField(size_t i, Value v) {
    if (i >= fields_.size()) fields_.resize(i + 1);
    fields_[i] = std::move(v);
  }

  void Append(Value v) { fields_.push_back(std::move(v)); }

  /// Concatenation r|s used by the Cartesian-product normalization (§4.3.1).
  static Record Concat(const Record& r, const Record& s);

  /// Record equality per §2.2: same arity, pairwise equal values.
  bool operator==(const Record& other) const { return fields_ == other.fields_; }
  bool operator!=(const Record& other) const { return !(*this == other); }
  bool operator<(const Record& other) const;

  uint64_t Hash() const;
  size_t SerializedSize() const;
  std::string ToString() const;

 private:
  std::vector<Value> fields_;
};

class RecordBatch;

/// An unordered list (bag) of records, stored as a run of fixed-capacity
/// RecordBatches (DESIGN.md §2.2): every batch except the last holds exactly
/// RecordBatch::kDefaultCapacity records, so record(i) is O(1) index math
/// and SerializedBytes() reads the batches' cached size sums. DataSet itself
/// is a thin view over the batches — the engine scans and gathers batch
/// runs directly.
class DataSet {
 public:
  DataSet();
  ~DataSet();
  DataSet(DataSet&&) noexcept;
  DataSet& operator=(DataSet&&) noexcept;
  DataSet(const DataSet&);
  DataSet& operator=(const DataSet&);
  explicit DataSet(std::vector<Record> records);

  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  const Record& record(size_t i) const;

  /// The underlying batch run (uniformly packed; see class comment).
  const std::vector<RecordBatch>& batches() const { return batches_; }

  /// Flattened copy of all records, in order. Compatibility accessor for
  /// callers that need one contiguous vector (sorting, snapshots); batch
  /// iteration is the cheap path.
  std::vector<Record> records() const;

  void Add(Record r);
  /// Add for callers that already know the record's serialized size (the
  /// engine's sink gather moves batch records whose sizes are cached),
  /// skipping the payload walk Add() performs.
  void AddWithSize(Record r, size_t serialized_bytes);
  void Append(DataSet other);

  /// Bag equality D1 ≡ D2 per §2.2: equal after some reordering.
  /// Implemented by sorting canonical forms — O(n log n).
  bool BagEquals(const DataSet& other) const;

  /// Total serialized size from the batches' cached per-record sizes; the
  /// engine's byte meters build on this.
  size_t SerializedBytes() const;

  std::string ToString(size_t max_records = 20) const;

 private:
  std::vector<RecordBatch> batches_;
  size_t rows_ = 0;
};

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_RECORD_H_
