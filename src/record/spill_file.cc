#include "record/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace blackbox {

namespace {

constexpr uint64_t kMagic = 0x324C4C4950534242ULL;  // "BBSPILL2" little-endian

// A cap on the header sketch block: a batch run's sketch is a few dozen bytes
// per column, so anything past this is a garbled length prefix, not a sketch.
constexpr uint32_t kMaxSketchBytes = 1u << 24;

template <typename T>
void AppendPod(const T& v, std::string* out) {
  const char* p = reinterpret_cast<const char*>(&v);
  out->append(p, sizeof(T));
}

template <typename T>
bool ReadPod(const char** p, const char* end, T* out) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) return false;
  std::memcpy(out, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      AppendPod<int64_t>(v.AsInt(), out);
      break;
    case ValueType::kDouble:
      AppendPod<double>(v.AsDouble(), out);
      break;
    case ValueType::kString: {
      const std::string& s = v.AsString();
      AppendPod<uint32_t>(static_cast<uint32_t>(s.size()), out);
      out->append(s);
      break;
    }
  }
}

}  // namespace

void EncodeRecord(const Record& r, std::string* out) {
  AppendPod<uint32_t>(static_cast<uint32_t>(r.num_fields()), out);
  for (size_t i = 0; i < r.num_fields(); ++i) EncodeValue(r.field(i), out);
}

StatusOr<Record> DecodeRecord(const char* data, size_t size) {
  const char* p = data;
  const char* end = data + size;
  uint32_t nfields = 0;
  if (!ReadPod(&p, end, &nfields)) {
    return Status::Corruption("spill record truncated in field count");
  }
  Record rec;
  for (uint32_t i = 0; i < nfields; ++i) {
    if (p >= end) return Status::Corruption("spill record truncated in tag");
    ValueType type = static_cast<ValueType>(*p++);
    switch (type) {
      case ValueType::kNull:
        rec.Append(Value::Null());
        break;
      case ValueType::kInt: {
        int64_t v;
        if (!ReadPod(&p, end, &v)) {
          return Status::Corruption("spill record truncated in int value");
        }
        rec.Append(Value(v));
        break;
      }
      case ValueType::kDouble: {
        double v;
        if (!ReadPod(&p, end, &v)) {
          return Status::Corruption("spill record truncated in double value");
        }
        rec.Append(Value(v));
        break;
      }
      case ValueType::kString: {
        uint32_t len;
        if (!ReadPod(&p, end, &len) ||
            static_cast<size_t>(end - p) < static_cast<size_t>(len)) {
          return Status::Corruption("spill record truncated in string value");
        }
        rec.Append(Value(std::string(p, len)));
        p += len;
        break;
      }
      default:
        return Status::Corruption("spill record has unknown value tag");
    }
  }
  if (p != end) {
    return Status::Corruption("spill record has trailing bytes");
  }
  return rec;
}

// --- BatchSpillWriter -------------------------------------------------------

BatchSpillWriter& BatchSpillWriter::operator=(BatchSpillWriter&& other) noexcept {
  if (this != &other) {
    if (file_) {
      std::fclose(file_);
      std::remove(path_.c_str());
    }
    file_ = other.file_;
    path_ = std::move(other.path_);
    buf_ = std::move(other.buf_);
    bytes_written_ = other.bytes_written_;
    closed_ = other.closed_;
    other.file_ = nullptr;
    other.closed_ = true;
  }
  return *this;
}

BatchSpillWriter::~BatchSpillWriter() {
  if (file_) {
    std::fclose(file_);
    // Destroyed without Close(): an aborted spill. Remove the partial file so
    // a failed run never leaks.
    std::remove(path_.c_str());
  }
}

StatusOr<BatchSpillWriter> BatchSpillWriter::Create(std::string path,
                                                    const ZoneMapSketch* sketch) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return Status::InvalidArgument("cannot create spill file " + path + ": " +
                                   std::strerror(errno));
  }
  BatchSpillWriter w;
  w.file_ = f;
  w.path_ = std::move(path);
  w.buf_.clear();
  AppendPod<uint64_t>(kMagic, &w.buf_);
  std::string sketch_block;
  if (sketch != nullptr) sketch->EncodeTo(&sketch_block);
  AppendPod<uint32_t>(static_cast<uint32_t>(sketch_block.size()), &w.buf_);
  w.buf_.append(sketch_block);
  if (std::fwrite(w.buf_.data(), 1, w.buf_.size(), f) != w.buf_.size()) {
    return Status::Internal("short write on spill file header");
  }
  w.bytes_written_ = static_cast<int64_t>(w.buf_.size());
  return w;
}

Status BatchSpillWriter::WriteBatch(const RecordBatch& batch) {
  if (!file_) return Status::Internal("spill writer is closed");
  buf_.clear();
  AppendPod<uint32_t>(static_cast<uint32_t>(batch.size()), &buf_);
  for (size_t i = 0; i < batch.size(); ++i) {
    AppendPod<uint32_t>(static_cast<uint32_t>(batch.record_bytes(i)), &buf_);
    size_t before = buf_.size();
    EncodeRecord(batch.record(i), &buf_);
    if (buf_.size() - before != batch.record_bytes(i)) {
      // The cached size IS the meter; encoding to a different length means
      // the cache drifted from Record::SerializedSize.
      return Status::Internal("cached record size drifted from encoding");
    }
  }
  if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
    return Status::Internal("short write on spill file " + path_);
  }
  bytes_written_ += static_cast<int64_t>(buf_.size());
  return Status::OK();
}

Status BatchSpillWriter::Close() {
  if (!file_) return Status::Internal("spill writer is closed");
  int rc = std::fclose(file_);
  file_ = nullptr;
  closed_ = true;
  if (rc != 0) {
    std::remove(path_.c_str());
    return Status::Internal("error closing spill file " + path_);
  }
  return Status::OK();
}

// --- BatchSpillReader -------------------------------------------------------

BatchSpillReader& BatchSpillReader::operator=(BatchSpillReader&& other) noexcept {
  if (this != &other) {
    if (file_) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    scratch_ = std::move(other.scratch_);
    sketch_ = std::move(other.sketch_);
    header_bytes_ = other.header_bytes_;
    other.file_ = nullptr;
  }
  return *this;
}

BatchSpillReader::~BatchSpillReader() {
  if (file_) std::fclose(file_);
}

StatusOr<BatchSpillReader> BatchSpillReader::Open(std::string path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return Status::NotFound("cannot open spill file " + path + ": " +
                            std::strerror(errno));
  }
  uint64_t magic = 0;
  if (std::fread(&magic, 1, sizeof(magic), f) != sizeof(magic) ||
      magic != kMagic) {
    std::fclose(f);
    return Status::Corruption("spill file " + path + " has a bad header");
  }
  uint32_t sketch_len = 0;
  if (std::fread(&sketch_len, 1, sizeof(sketch_len), f) != sizeof(sketch_len) ||
      sketch_len > kMaxSketchBytes) {
    std::fclose(f);
    return Status::Corruption("spill file " + path + " has a bad sketch block");
  }
  BatchSpillReader r;
  r.file_ = f;
  r.path_ = std::move(path);
  r.header_bytes_ = static_cast<int64_t>(sizeof(magic) + sizeof(sketch_len)) +
                    sketch_len;
  if (sketch_len > 0) {
    r.scratch_.resize(sketch_len);
    if (std::fread(r.scratch_.data(), 1, sketch_len, f) != sketch_len) {
      return Status::Corruption("spill file " + r.path_ +
                                " truncated in sketch block");
    }
    size_t pos = 0;
    StatusOr<ZoneMapSketch> sketch =
        ZoneMapSketch::Decode(r.scratch_.data(), sketch_len, &pos);
    if (!sketch.ok()) return sketch.status();
    if (pos != sketch_len) {
      return Status::Corruption("spill file " + r.path_ +
                                " has trailing bytes in sketch block");
    }
    r.sketch_ = std::move(sketch).value();
  }
  return r;
}

StatusOr<bool> BatchSpillReader::ReadBatch(BatchPool* pool, size_t capacity,
                                           RecordBatch* out,
                                           int64_t* file_bytes) {
  *file_bytes = 0;
  if (!file_) return Status::Internal("spill reader is closed");
  uint32_t nrecords = 0;
  size_t got = std::fread(&nrecords, 1, sizeof(nrecords), file_);
  if (got == 0) {
    if (std::feof(file_)) return false;  // clean end of run
    return Status::Internal("read error on spill file " + path_);
  }
  if (got != sizeof(nrecords)) {
    return Status::Corruption("spill file " + path_ +
                              " truncated in batch header");
  }
  int64_t consumed = static_cast<int64_t>(sizeof(nrecords));
  RecordBatch batch = pool->Acquire(capacity);
  for (uint32_t i = 0; i < nrecords; ++i) {
    uint32_t size = 0;
    if (std::fread(&size, 1, sizeof(size), file_) != sizeof(size)) {
      pool->Release(std::move(batch));
      return Status::Corruption("spill file " + path_ +
                                " truncated in record header");
    }
    // Sanity-check the size prefix before allocating for it: a garbled
    // prefix must surface as Corruption, not as a multi-GiB allocation.
    constexpr uint32_t kMaxRecordBytes = 1u << 28;
    if (size > kMaxRecordBytes) {
      pool->Release(std::move(batch));
      return Status::Corruption("spill file " + path_ +
                                " has an implausible record size");
    }
    scratch_.resize(size);
    if (size > 0 && std::fread(scratch_.data(), 1, size, file_) != size) {
      pool->Release(std::move(batch));
      return Status::Corruption("spill file " + path_ +
                                " truncated in record payload");
    }
    StatusOr<Record> rec = DecodeRecord(scratch_.data(), size);
    if (!rec.ok()) {
      pool->Release(std::move(batch));
      return rec.status();
    }
    // Restores the cached size without re-walking the payload.
    batch.AppendWithSize(std::move(rec).value(), size);
    consumed += static_cast<int64_t>(sizeof(size)) + size;
  }
  *out = std::move(batch);
  *file_bytes = consumed;
  return true;
}

// --- SpillDirectory ---------------------------------------------------------

SpillDirectory& SpillDirectory::operator=(SpillDirectory&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    next_run_ = other.next_run_;
    other.path_.clear();
  }
  return *this;
}

SpillDirectory::~SpillDirectory() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }
}

StatusOr<SpillDirectory> SpillDirectory::Create(const std::string& parent,
                                                const std::string& tag) {
  std::error_code ec;
  std::filesystem::path base =
      parent.empty() ? std::filesystem::temp_directory_path(ec)
                     : std::filesystem::path(parent);
  if (ec) {
    return Status::InvalidArgument("no system temp directory: " + ec.message());
  }
  // A unique subdirectory per SpillDirectory instance; the pid plus a
  // process-wide counter keeps concurrent processes and instances apart.
  // The optional tag only labels the directory (sanitized so a caller-
  // supplied query name cannot escape the parent) — uniqueness never
  // depends on it.
  static std::atomic<uint64_t> counter{0};
  uint64_t n = counter.fetch_add(1);
  std::string name = "blackbox-spill-" + std::to_string(::getpid()) + "-" +
                     std::to_string(n);
  if (!tag.empty()) {
    name += '-';
    for (char c : tag) {
      name += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
               c == '_')
                  ? c
                  : '_';
    }
  }
  std::filesystem::path dir = base / name;
  if (!std::filesystem::create_directories(dir, ec) || ec) {
    return Status::InvalidArgument("cannot create spill directory " +
                                   dir.string() + ": " +
                                   (ec ? ec.message() : "already exists"));
  }
  SpillDirectory d;
  d.path_ = dir.string();
  return d;
}

std::string SpillDirectory::NewRunPath() {
  char name[32];
  std::snprintf(name, sizeof(name), "run-%06d.spill", next_run_++);
  return (std::filesystem::path(path_) / name).string();
}

}  // namespace blackbox
