#include "record/column_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace blackbox {

namespace {
const Value& NullValue() {
  static const Value kNull;
  return kNull;
}
}  // namespace

const Value& ColumnView::ValueAt(size_t col, size_t row) const {
  if (col >= cols_.size() || row >= num_rows_) return NullValue();
  std::vector<const Value*>& c = cols_[col];
  if (c.empty()) {
    c.resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      const Record& r = rows_[i];
      c[i] = col < r.num_fields() ? &r.field(col) : &NullValue();
    }
    ++materialized_;
  }
  return *c[row];
}

ValueRange ColumnView::Range(size_t col) const {
  ValueRange r;  // admits nothing until a row widens it
  bool have_int = false, have_dbl = false, have_str = false;
  for (size_t i = 0; i < num_rows_; ++i) {
    const Record& rec = rows_[i];
    const Value& v =
        col < rec.num_fields() ? rec.field(col) : NullValue();
    switch (v.type()) {
      case ValueType::kNull:
        r.may_null = true;
        break;
      case ValueType::kInt: {
        int64_t x = v.AsInt();
        if (!have_int) {
          have_int = r.may_int = true;
          r.int_lo = r.int_hi = x;
        } else {
          r.int_lo = std::min(r.int_lo, x);
          r.int_hi = std::max(r.int_hi, x);
        }
        break;
      }
      case ValueType::kDouble: {
        double x = v.AsDouble();
        r.may_double = true;
        if (std::isnan(x)) {
          // NaN breaks ordered comparison; widen to unbounded, as the
          // sketch does, so no consumer refutes it away.
          have_dbl = true;
          r.dbl_lo = -std::numeric_limits<double>::infinity();
          r.dbl_hi = std::numeric_limits<double>::infinity();
          break;
        }
        if (!have_dbl) {
          have_dbl = true;
          r.dbl_lo = r.dbl_hi = x;
        } else {
          r.dbl_lo = std::min(r.dbl_lo, x);
          r.dbl_hi = std::max(r.dbl_hi, x);
        }
        break;
      }
      case ValueType::kString: {
        const std::string& s = v.AsString();
        bool truncated = s.size() > ZoneMapSketch::kMaxTrackedStringBytes;
        // A prefix is always <= the full string, so a truncated lower
        // bound stays valid; the upper bound widens to open.
        std::string lo = s.substr(0, ZoneMapSketch::kMaxTrackedStringBytes);
        if (!have_str) {
          have_str = r.may_str = true;
          r.str_lo = std::move(lo);
          if (truncated) {
            r.str_hi_open = true;
            r.str_hi.clear();
          } else {
            r.str_hi = s;
          }
        } else {
          if (lo < r.str_lo) r.str_lo = std::move(lo);
          if (truncated) {
            r.str_hi_open = true;
            r.str_hi.clear();
          } else if (!r.str_hi_open && s > r.str_hi) {
            r.str_hi = s;
          }
        }
        break;
      }
    }
  }
  return r;
}

}  // namespace blackbox
