#include "record/record.h"

#include <algorithm>

#include "common/str_util.h"
#include "record/record_batch.h"

namespace blackbox {

Record Record::Concat(const Record& r, const Record& s) {
  std::vector<Value> fields;
  fields.reserve(r.num_fields() + s.num_fields());
  for (size_t i = 0; i < r.num_fields(); ++i) fields.push_back(r.field(i));
  for (size_t i = 0; i < s.num_fields(); ++i) fields.push_back(s.field(i));
  return Record(std::move(fields));
}

bool Record::operator<(const Record& other) const {
  return std::lexicographical_compare(fields_.begin(), fields_.end(),
                                      other.fields_.begin(),
                                      other.fields_.end());
}

uint64_t Record::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const Value& v : fields_) {
    h ^= v.Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

size_t Record::SerializedSize() const {
  size_t total = 4;  // field count header
  for (const Value& v : fields_) total += v.SerializedSize();
  return total;
}

std::string Record::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Value& v : fields_) parts.push_back(v.ToString());
  return "<" + Join(parts, ", ") + ">";
}

DataSet::DataSet() = default;
DataSet::~DataSet() = default;
DataSet::DataSet(DataSet&&) noexcept = default;
DataSet& DataSet::operator=(DataSet&&) noexcept = default;
DataSet::DataSet(const DataSet&) = default;
DataSet& DataSet::operator=(const DataSet&) = default;

DataSet::DataSet(std::vector<Record> records) {
  for (Record& r : records) Add(std::move(r));
}

const Record& DataSet::record(size_t i) const {
  // Uniform packing invariant: every batch but the last is exactly full.
  return batches_[i / RecordBatch::kDefaultCapacity]
      .record(i % RecordBatch::kDefaultCapacity);
}

std::vector<Record> DataSet::records() const {
  std::vector<Record> out;
  out.reserve(rows_);
  for (const RecordBatch& b : batches_) {
    for (size_t i = 0; i < b.size(); ++i) out.push_back(b.record(i));
  }
  return out;
}

void DataSet::Add(Record r) {
  BatchWriter(&batches_, RecordBatch::kDefaultCapacity).Append(std::move(r));
  ++rows_;
}

void DataSet::AddWithSize(Record r, size_t serialized_bytes) {
  BatchWriter(&batches_, RecordBatch::kDefaultCapacity)
      .AppendWithSize(std::move(r), serialized_bytes);
  ++rows_;
}

void DataSet::Append(DataSet other) {
  // Record-wise so the uniform-packing invariant survives a partial tail
  // batch in `other`.
  BatchWriter writer(&batches_, RecordBatch::kDefaultCapacity);
  for (RecordBatch& b : other.batches_) {
    for (size_t i = 0; i < b.size(); ++i) {
      writer.AppendWithSize(std::move(b.mutable_record(i)), b.record_bytes(i));
    }
  }
  rows_ += other.rows_;
}

bool DataSet::BagEquals(const DataSet& other) const {
  if (rows_ != other.rows_) return false;
  std::vector<Record> a = records();
  std::vector<Record> b = other.records();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

size_t DataSet::SerializedBytes() const { return BatchesBytes(batches_); }

std::string DataSet::ToString(size_t max_records) const {
  std::string out = "[";
  for (size_t i = 0; i < rows_ && i < max_records; ++i) {
    if (i > 0) out += ", ";
    out += record(i).ToString();
  }
  if (rows_ > max_records) out += ", ...";
  out += "] (" + std::to_string(rows_) + " records)";
  return out;
}

}  // namespace blackbox
