#include "record/record.h"

#include <algorithm>

#include "common/str_util.h"

namespace blackbox {

Record Record::Concat(const Record& r, const Record& s) {
  std::vector<Value> fields;
  fields.reserve(r.num_fields() + s.num_fields());
  for (size_t i = 0; i < r.num_fields(); ++i) fields.push_back(r.field(i));
  for (size_t i = 0; i < s.num_fields(); ++i) fields.push_back(s.field(i));
  return Record(std::move(fields));
}

bool Record::operator<(const Record& other) const {
  return std::lexicographical_compare(fields_.begin(), fields_.end(),
                                      other.fields_.begin(),
                                      other.fields_.end());
}

uint64_t Record::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const Value& v : fields_) {
    h ^= v.Hash();
    h *= 0x100000001B3ULL;
  }
  return h;
}

size_t Record::SerializedSize() const {
  size_t total = 4;  // field count header
  for (const Value& v : fields_) total += v.SerializedSize();
  return total;
}

std::string Record::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Value& v : fields_) parts.push_back(v.ToString());
  return "<" + Join(parts, ", ") + ">";
}

void DataSet::Append(DataSet other) {
  records_.reserve(records_.size() + other.records_.size());
  for (Record& r : other.records_) records_.push_back(std::move(r));
}

bool DataSet::BagEquals(const DataSet& other) const {
  if (records_.size() != other.records_.size()) return false;
  std::vector<Record> a = records_;
  std::vector<Record> b = other.records_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

size_t DataSet::SerializedBytes() const {
  size_t total = 0;
  for (const Record& r : records_) total += r.SerializedSize();
  return total;
}

std::string DataSet::ToString(size_t max_records) const {
  std::string out = "[";
  for (size_t i = 0; i < records_.size() && i < max_records; ++i) {
    if (i > 0) out += ", ";
    out += records_[i].ToString();
  }
  if (records_.size() > max_records) out += ", ...";
  out += "] (" + std::to_string(records_.size()) + " records)";
  return out;
}

}  // namespace blackbox
