// Value type for record fields. The paper (Section 2.2) leaves value
// semantics to the UDFs; we provide the small set of types the evaluation
// workloads need: 64-bit integers, doubles, strings, and null (used for
// explicit projection via setField(..., null)).

#ifndef BLACKBOX_RECORD_VALUE_H_
#define BLACKBOX_RECORD_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace blackbox {

enum class ValueType { kNull = 0, kInt, kDouble, kString };

/// A dynamically-typed field value. Small (32 bytes) and cheap to move.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  static Value Null() { return Value(); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors. Calling the wrong accessor is a programming error; callers in
  /// the interpreter validate types first and surface Status errors.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric coercion: ints widen to double; anything else is 0.0.
  double ToDouble() const {
    switch (type()) {
      case ValueType::kInt:
        return static_cast<double>(AsInt());
      case ValueType::kDouble:
        return AsDouble();
      default:
        return 0.0;
    }
  }

  /// Exact equality (type and content). Int and double never compare equal,
  /// mirroring the paper's record-equality definition over raw values.
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// Stable 64-bit hash used for hash partitioning and join tables.
  uint64_t Hash() const;

  /// Serialized size in bytes under the engine's wire format; drives the
  /// network/disk byte accounting of the execution simulator.
  size_t SerializedSize() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_VALUE_H_
