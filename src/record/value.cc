#include "record/value.h"

#include <functional>

namespace blackbox {

bool Value::operator<(const Value& other) const {
  // Order first by type tag, then by content; gives a total order usable for
  // sorting in sort-based grouping and canonical data set comparison.
  if (repr_.index() != other.repr_.index()) {
    return repr_.index() < other.repr_.index();
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return AsInt() < other.AsInt();
    case ValueType::kDouble:
      return AsDouble() < other.AsDouble();
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  constexpr uint64_t kSeed = 0x9E3779B97F4A7C15ULL;
  switch (type()) {
    case ValueType::kNull:
      return kSeed;
    case ValueType::kInt: {
      uint64_t x = static_cast<uint64_t>(AsInt()) * 0xBF58476D1CE4E5B9ULL;
      return x ^ (x >> 31);
    }
    case ValueType::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      uint64_t x = bits * 0x94D049BB133111EBULL;
      return x ^ (x >> 29);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString()) ^ kSeed;
  }
  return kSeed;
}

size_t Value::SerializedSize() const {
  // 1 type byte plus the payload.
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
  }
  return 1;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case ValueType::kString:
      return "\"" + AsString() + "\"";
  }
  return "?";
}

}  // namespace blackbox
