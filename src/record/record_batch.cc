#include "record/record_batch.h"

#include <cassert>

namespace blackbox {

size_t RecordBatch::RecomputeBytes() const {
  size_t total = 0;
  for (const Record& r : records_) total += r.SerializedSize();
  return total;
}

void RecordBatch::DebugCheckSizes() const {
#ifndef NDEBUG
  for (size_t i = 0; i < records_.size(); ++i) {
    assert(sizes_[i] == records_[i].SerializedSize());
  }
#endif
}

RecordBatch BatchPool::Acquire(size_t capacity) {
  while (!free_.empty()) {
    RecordBatch b = std::move(free_.back());
    free_.pop_back();
    // A recycled batch is only reusable at the same capacity watermark; a
    // mismatched one (callers switching capacities mid-run) is dropped.
    if (b.capacity() == capacity) return b;
  }
  return RecordBatch(capacity);
}

void BatchPool::Release(RecordBatch batch) {
  batch.Clear();
  free_.push_back(std::move(batch));
}

size_t BatchesRows(const std::vector<RecordBatch>& batches) {
  size_t rows = 0;
  for (const RecordBatch& b : batches) rows += b.size();
  return rows;
}

size_t BatchesBytes(const std::vector<RecordBatch>& batches) {
  size_t bytes = 0;
  for (const RecordBatch& b : batches) bytes += b.bytes();
  return bytes;
}

}  // namespace blackbox
