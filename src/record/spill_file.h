// Spill file format for the engine's external (larger-than-memory) operators
// (DESIGN.md §2.3). A spill run is one temp file holding a sequence of whole
// RecordBatches in the engine's wire format — the same format whose sizes
// Record::SerializedSize describes, so the bytes a run occupies on disk are
// exactly the cached sizes the byte meters read, plus small fixed headers.
//
// Layout:
//   u64  magic ("BBSPILL2")
//   u32  sketch block length in bytes (0 = no sketch)
//   the encoded ZoneMapSketch over every record in the run (zone_map.h) —
//     written by batch-run spillers whose batches all exist up front;
//     streaming writers (external-sort merges) write length 0, which
//     consumers must treat as "cannot skip"
//   repeated batches until EOF:
//     u32  record count
//     per record: u32 payload size, then the encoded record
//       (u32 field count, then per value: u8 type tag + payload)
//
// The magic was bumped from BBSPILL1 when the sketch block was added (spill
// files never outlive a process, so there is no migration path — an old
// magic is simply Corruption).
//
// The per-record size prefix is the record's cached serialized size: the
// writer verifies the encoding matches it (the cache can never silently
// drift from what is spilled), and the reader restores it without re-walking
// the payload (RecordBatch::AppendWithSize). Readers draw batch backing
// stores from a BatchPool, so read-back recycles the same arenas the rest of
// the data plane uses. Any truncated or malformed file surfaces a Corruption
// Status — never a crash.

#ifndef BLACKBOX_RECORD_SPILL_FILE_H_
#define BLACKBOX_RECORD_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "common/status.h"
#include "record/record_batch.h"
#include "record/zone_map.h"

namespace blackbox {

/// Appends the wire-format encoding of `r` to *out. The number of appended
/// bytes always equals r.SerializedSize().
void EncodeRecord(const Record& r, std::string* out);

/// Decodes one record from exactly [data, data+size). Trailing or missing
/// bytes are a Corruption error.
StatusOr<Record> DecodeRecord(const char* data, size_t size);

/// Writes one spill run. Create → WriteBatch* → Close; the file is removed
/// again if the writer is destroyed without a successful Close (a failed
/// spill never leaks a temp file).
class BatchSpillWriter {
 public:
  BatchSpillWriter() = default;
  BatchSpillWriter(BatchSpillWriter&& other) noexcept { *this = std::move(other); }
  BatchSpillWriter& operator=(BatchSpillWriter&& other) noexcept;
  BatchSpillWriter(const BatchSpillWriter&) = delete;
  BatchSpillWriter& operator=(const BatchSpillWriter&) = delete;
  ~BatchSpillWriter();

  /// Creates/truncates `path` and writes the header, embedding `sketch` (a
  /// zone map over every record the run will hold) when one is given.
  /// Writers that stream records without knowing the whole run up front pass
  /// nullptr — readers then see a run that can never be skipped.
  /// InvalidArgument if the target directory is missing or unwritable.
  static StatusOr<BatchSpillWriter> Create(
      std::string path, const ZoneMapSketch* sketch = nullptr);

  Status WriteBatch(const RecordBatch& batch);

  /// Flushes and closes; the file stays on disk. The writer is unusable
  /// afterwards.
  Status Close();

  /// File bytes written so far, headers included — what the disk meter
  /// charges for the write side of a spill.
  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string buf_;  // per-batch staging, reused across WriteBatch calls
  int64_t bytes_written_ = 0;
  bool closed_ = false;
};

/// Reads one spill run back batch-by-batch.
class BatchSpillReader {
 public:
  BatchSpillReader() = default;
  BatchSpillReader(BatchSpillReader&& other) noexcept { *this = std::move(other); }
  BatchSpillReader& operator=(BatchSpillReader&& other) noexcept;
  BatchSpillReader(const BatchSpillReader&) = delete;
  BatchSpillReader& operator=(const BatchSpillReader&) = delete;
  ~BatchSpillReader();

  static StatusOr<BatchSpillReader> Open(std::string path);

  /// The run-level zone-map sketch from the header, when the writer embedded
  /// one. nullopt means the run cannot be skipped.
  const std::optional<ZoneMapSketch>& run_sketch() const { return sketch_; }

  /// File bytes consumed by the header (magic + sketch block), set by
  /// Open(). Together with the per-batch file bytes from ReadBatch this
  /// accounts for every byte of the file, so a scan that reads a run to the
  /// end meters exactly the run's file_bytes — the same number a skipped
  /// run credits to skipped_spill_bytes.
  int64_t header_bytes() const { return header_bytes_; }

  /// Reads the next batch into *out (backing store from `pool`, watermark
  /// `capacity`). Returns false at a clean end-of-file; a partial batch or
  /// garbage is Corruption. *file_bytes is set to the file bytes consumed by
  /// this batch — the read side of the disk meter.
  StatusOr<bool> ReadBatch(BatchPool* pool, size_t capacity, RecordBatch* out,
                           int64_t* file_bytes);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string scratch_;  // payload staging, reused
  std::optional<ZoneMapSketch> sketch_;
  int64_t header_bytes_ = 0;
};

/// A process-unique temporary directory holding spill run files. Created
/// once, hands out unique run paths (callers serialize NewRunPath — the
/// engine's SpillManager does), and removes itself with everything in it on
/// destruction — the backstop that guarantees no temp files outlive an
/// execution, even one that failed mid-spill.
class SpillDirectory {
 public:
  SpillDirectory() = default;
  SpillDirectory(SpillDirectory&& other) noexcept { *this = std::move(other); }
  SpillDirectory& operator=(SpillDirectory&& other) noexcept;
  SpillDirectory(const SpillDirectory&) = delete;
  SpillDirectory& operator=(const SpillDirectory&) = delete;
  ~SpillDirectory();

  /// Creates a fresh directory under `parent` ("" = the system temp
  /// directory). The directory name is always process-unique (pid plus a
  /// process-wide counter), so concurrent executions sharing one parent can
  /// never collide; `tag` appends a sanitized human-readable suffix (the
  /// serving layer tags each query's spill directory with its query id).
  /// A missing or unwritable parent is an InvalidArgument error.
  static StatusOr<SpillDirectory> Create(const std::string& parent,
                                         const std::string& tag = "");

  /// A new unique file path inside the directory (no file is created).
  std::string NewRunPath();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int next_run_ = 0;  // guarded by the caller (SpillManager serializes)
};

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_SPILL_FILE_H_
