// ColumnView: a lazy column-major view over a row-major run of records
// (DESIGN.md §2.6). Fused chain programs read their input through
// kGetInputField, which resolves here — the first read of a column
// materializes a per-field vector of borrowed Value pointers, so a narrow
// Map chain touches exactly the columns its SCA read set names and the
// engine can meter `projected_fields_skipped` as width minus materialized
// columns.
//
// Lifetime contract: the view BORROWS the records. It must not outlive
// them, and the records must not be moved or mutated while the view is
// alive. The engine satisfies this by scoping one view to one
// ProcessBatch call over the runner's pending rows.

#ifndef BLACKBOX_RECORD_COLUMN_VIEW_H_
#define BLACKBOX_RECORD_COLUMN_VIEW_H_

#include <cstddef>
#include <vector>

#include "record/record.h"
#include "record/zone_map.h"

namespace blackbox {

class ColumnView {
 public:
  /// Views `num_rows` records with a nominal width of `width` attribute
  /// positions (positions at or past `width` read as Null without being
  /// tracked as columns).
  ColumnView(const Record* rows, size_t num_rows, size_t width)
      : rows_(rows), num_rows_(num_rows), cols_(width) {}

  size_t num_rows() const { return num_rows_; }
  size_t width() const { return cols_.size(); }

  /// Field `col` of row `row`, materializing the column on first access.
  /// Positions a record does not reach (or past the view's width) are Null —
  /// the same semantics as kGetField on an out-of-range static index.
  const Value& ValueAt(size_t col, size_t row) const;

  /// The over-approximating value range of column `col`, computed straight
  /// from the rows with the same folding rules as ZoneMapSketch::Observe.
  /// Deliberately does NOT materialize the column: batch refutation must not
  /// defeat the projection accounting of the run it skips.
  ValueRange Range(size_t col) const;

  /// Number of columns materialized so far by ValueAt.
  size_t materialized_columns() const { return materialized_; }

 private:
  const Record* rows_;
  size_t num_rows_;
  // One lazily-filled pointer vector per column; empty = not materialized
  // (a materialized column always holds num_rows entries, possibly pointing
  // at the shared null).
  mutable std::vector<std::vector<const Value*>> cols_;
  mutable size_t materialized_ = 0;
};

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_COLUMN_VIEW_H_
