#include "record/zone_map.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace blackbox {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(const char* data, size_t size, size_t* pos, T* out) {
  if (size - *pos < sizeof(T)) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

bool ReadString(const char* data, size_t size, size_t* pos, std::string* out) {
  uint32_t len = 0;
  if (!ReadPod(data, size, pos, &len)) return false;
  if (size - *pos < len) return false;
  out->assign(data + *pos, len);
  *pos += len;
  return true;
}

constexpr uint8_t kHasInt = 1u << 0;
constexpr uint8_t kHasDbl = 1u << 1;
constexpr uint8_t kHasStr = 1u << 2;
constexpr uint8_t kStrMaxOpen = 1u << 3;

}  // namespace

ValueRange ValueRange::Top() {
  ValueRange r;
  r.may_null = true;
  r.may_int = true;
  r.int_lo = std::numeric_limits<int64_t>::min();
  r.int_hi = std::numeric_limits<int64_t>::max();
  r.may_double = true;
  r.dbl_lo = -std::numeric_limits<double>::infinity();
  r.dbl_hi = std::numeric_limits<double>::infinity();
  r.may_str = true;
  r.str_lo.clear();
  r.str_hi.clear();
  r.str_hi_open = true;
  return r;
}

bool RangesMayIntersect(const ValueRange& a, const ValueRange& b) {
  if (a.may_null && b.may_null) return true;
  if (a.may_int && b.may_int && a.int_lo <= b.int_hi && b.int_lo <= a.int_hi) {
    return true;
  }
  if (a.may_double && b.may_double && a.dbl_lo <= b.dbl_hi &&
      b.dbl_lo <= a.dbl_hi) {
    return true;
  }
  if (a.may_str && b.may_str) {
    bool a_below_b = !a.str_hi_open && a.str_hi < b.str_lo;
    bool b_below_a = !b.str_hi_open && b.str_hi < a.str_lo;
    if (!a_below_b && !b_below_a) return true;
  }
  return false;
}

void ZoneMapSketch::Observe(const Record& r) {
  ++rows_;
  size_t n = r.num_fields();
  if (cols_.size() < n) cols_.resize(n);
  for (size_t f = 0; f < n; ++f) {
    const Value& v = r.field(f);
    Column& c = cols_[f];
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt: {
        ++c.non_null;
        int64_t x = v.AsInt();
        if (!c.has_int) {
          c.has_int = true;
          c.imin = c.imax = x;
        } else {
          c.imin = std::min(c.imin, x);
          c.imax = std::max(c.imax, x);
        }
        break;
      }
      case ValueType::kDouble: {
        ++c.non_null;
        double x = v.AsDouble();
        if (std::isnan(x)) {
          // NaN breaks ordered comparison; widen the whole double range so
          // no consumer ever refutes based on bounds that exclude it.
          c.has_dbl = true;
          c.dmin = -std::numeric_limits<double>::infinity();
          c.dmax = std::numeric_limits<double>::infinity();
          break;
        }
        if (!c.has_dbl) {
          c.has_dbl = true;
          c.dmin = c.dmax = x;
        } else {
          c.dmin = std::min(c.dmin, x);
          c.dmax = std::max(c.dmax, x);
        }
        break;
      }
      case ValueType::kString: {
        ++c.non_null;
        const std::string& s = v.AsString();
        bool truncated = s.size() > kMaxTrackedStringBytes;
        // A prefix is always <= the full string, so it stays a valid lower
        // bound even when truncated.
        if (!c.has_str) {
          c.has_str = true;
          c.smin = s.substr(0, kMaxTrackedStringBytes);
          if (truncated) {
            c.smax_open = true;
            c.smax.clear();
          } else {
            c.smax = s;
          }
        } else if (truncated) {
          if (s.compare(0, kMaxTrackedStringBytes, c.smin) < 0) {
            c.smin = s.substr(0, kMaxTrackedStringBytes);
          }
          c.smax_open = true;
          c.smax.clear();
        } else {
          if (s < c.smin) c.smin = s;
          if (!c.smax_open && s > c.smax) c.smax = s;
        }
        break;
      }
    }
  }
}

void ZoneMapSketch::Merge(const ZoneMapSketch& other) {
  rows_ += other.rows_;
  if (cols_.size() < other.cols_.size()) cols_.resize(other.cols_.size());
  for (size_t i = 0; i < other.cols_.size(); ++i) {
    const Column& o = other.cols_[i];
    Column& c = cols_[i];
    c.non_null += o.non_null;
    if (o.has_int) {
      if (!c.has_int) {
        c.has_int = true;
        c.imin = o.imin;
        c.imax = o.imax;
      } else {
        c.imin = std::min(c.imin, o.imin);
        c.imax = std::max(c.imax, o.imax);
      }
    }
    if (o.has_dbl) {
      if (!c.has_dbl) {
        c.has_dbl = true;
        c.dmin = o.dmin;
        c.dmax = o.dmax;
      } else {
        c.dmin = std::min(c.dmin, o.dmin);
        c.dmax = std::max(c.dmax, o.dmax);
      }
    }
    if (o.has_str) {
      if (!c.has_str) {
        c.has_str = true;
        c.smin = o.smin;
        c.smax = o.smax;
        c.smax_open = o.smax_open;
      } else {
        if (o.smin < c.smin) c.smin = o.smin;
        if (o.smax_open) {
          c.smax_open = true;
          c.smax.clear();
        } else if (!c.smax_open && o.smax > c.smax) {
          c.smax = o.smax;
        }
      }
    }
  }
}

ValueRange ZoneMapSketch::ColumnRange(size_t c) const {
  ValueRange r;
  if (rows_ == 0) return r;  // nothing present at all
  if (c >= cols_.size()) {
    r.may_null = true;  // every row is (implicitly) null at this position
    return r;
  }
  const Column& col = cols_[c];
  r.may_null = col.non_null < rows_;
  if (col.has_int) {
    r.may_int = true;
    r.int_lo = col.imin;
    r.int_hi = col.imax;
  }
  if (col.has_dbl) {
    r.may_double = true;
    r.dbl_lo = col.dmin;
    r.dbl_hi = col.dmax;
  }
  if (col.has_str) {
    r.may_str = true;
    r.str_lo = col.smin;
    r.str_hi = col.smax;
    r.str_hi_open = col.smax_open;
  }
  return r;
}

void ZoneMapSketch::EncodeTo(std::string* out) const {
  AppendPod<uint64_t>(out, rows_);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(cols_.size()));
  for (const Column& c : cols_) {
    AppendPod<uint64_t>(out, c.non_null);
    uint8_t flags = 0;
    if (c.has_int) flags |= kHasInt;
    if (c.has_dbl) flags |= kHasDbl;
    if (c.has_str) flags |= kHasStr;
    if (c.smax_open) flags |= kStrMaxOpen;
    AppendPod<uint8_t>(out, flags);
    if (c.has_int) {
      AppendPod<int64_t>(out, c.imin);
      AppendPod<int64_t>(out, c.imax);
    }
    if (c.has_dbl) {
      AppendPod<double>(out, c.dmin);
      AppendPod<double>(out, c.dmax);
    }
    if (c.has_str) {
      AppendPod<uint32_t>(out, static_cast<uint32_t>(c.smin.size()));
      out->append(c.smin);
      AppendPod<uint32_t>(out, static_cast<uint32_t>(c.smax.size()));
      out->append(c.smax);
    }
  }
}

StatusOr<ZoneMapSketch> ZoneMapSketch::Decode(const char* data, size_t size,
                                              size_t* pos) {
  ZoneMapSketch s;
  uint32_t ncols = 0;
  if (!ReadPod(data, size, pos, &s.rows_) ||
      !ReadPod(data, size, pos, &ncols)) {
    return Status::Corruption("truncated zone-map sketch header");
  }
  // A column costs at least 9 encoded bytes; anything claiming more columns
  // than the remaining bytes could hold is garbage, not a huge allocation.
  if (ncols > (size - *pos) / 9 + 1) {
    return Status::Corruption("zone-map sketch column count implausible");
  }
  s.cols_.resize(ncols);
  for (Column& c : s.cols_) {
    uint8_t flags = 0;
    if (!ReadPod(data, size, pos, &c.non_null) ||
        !ReadPod(data, size, pos, &flags)) {
      return Status::Corruption("truncated zone-map sketch column");
    }
    c.has_int = flags & kHasInt;
    c.has_dbl = flags & kHasDbl;
    c.has_str = flags & kHasStr;
    c.smax_open = flags & kStrMaxOpen;
    if (c.has_int &&
        (!ReadPod(data, size, pos, &c.imin) ||
         !ReadPod(data, size, pos, &c.imax))) {
      return Status::Corruption("truncated zone-map sketch int bounds");
    }
    if (c.has_dbl &&
        (!ReadPod(data, size, pos, &c.dmin) ||
         !ReadPod(data, size, pos, &c.dmax))) {
      return Status::Corruption("truncated zone-map sketch double bounds");
    }
    if (c.has_str &&
        (!ReadString(data, size, pos, &c.smin) ||
         !ReadString(data, size, pos, &c.smax))) {
      return Status::Corruption("truncated zone-map sketch string bounds");
    }
  }
  return s;
}

}  // namespace blackbox
