// RecordBatch: the unit of record flow through the streaming data plane
// (DESIGN.md §2.2). A batch is a fixed-capacity run of records with the
// serialized size of every record cached at append time, so the engine's
// byte meters (shipping, spilling, peak memory) read cached integers instead
// of re-walking value payloads per record per meter. Batches are reused
// through a BatchPool: Clear() keeps the backing vectors' capacity, so a
// pooled batch that cycles through an operator chain allocates only on its
// first trips (the arena-reuse contract the per-partition chain runners rely
// on).

#ifndef BLACKBOX_RECORD_RECORD_BATCH_H_
#define BLACKBOX_RECORD_RECORD_BATCH_H_

#include <cstdint>
#include <vector>

#include "record/record.h"
#include "record/zone_map.h"

namespace blackbox {

class RecordBatch {
 public:
  /// Default number of records per batch; chosen so a batch of typical
  /// workload records stays well under L2 while amortizing per-batch
  /// bookkeeping over enough records to be negligible.
  static constexpr size_t kDefaultCapacity = 256;

  RecordBatch() = default;
  explicit RecordBatch(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  bool full() const { return records_.size() >= capacity_; }

  /// Appends a record, caching its serialized size. A batch may be filled
  /// past capacity() (one UDF call can emit several records mid-batch);
  /// full() turning true is the producer's signal to flush, not a hard cap.
  void Append(Record r) {
    size_t bytes = r.SerializedSize();
    AppendWithSize(std::move(r), bytes);
  }

  /// Appends a record whose serialized size the caller already knows (moving
  /// records between batches carries the cached size instead of re-deriving
  /// it).
  void AppendWithSize(Record r, size_t serialized_bytes) {
    sketch_.Observe(r);
    records_.push_back(std::move(r));
    sizes_.push_back(serialized_bytes);
    bytes_ += serialized_bytes;
  }

  const Record& record(size_t i) const { return records_[i]; }
  /// Mutable access for move-out consumers (shipping drains batches).
  Record& mutable_record(size_t i) { return records_[i]; }
  size_t record_bytes(size_t i) const { return sizes_[i]; }

  /// Total serialized bytes of the batch, from the cached per-record sizes.
  size_t bytes() const { return bytes_; }

  /// Re-derives bytes() from Record::SerializedSize — the slow path the
  /// cache replaces. Used by tests and debug assertions to prove the cached
  /// meters match the old per-record computation.
  size_t RecomputeBytes() const;

  /// Debug-build check of the double-tracking invariant: every cached size
  /// still equals its record's SerializedSize. The append path caches sizes
  /// and never revisits them, so a consumer that mutated a record in place
  /// (or a caller that passed a stale size to AppendWithSize) silently skews
  /// every downstream byte meter — this catches it at drain time, where the
  /// cached sizes are about to feed the meters. No-op in Release builds.
  void DebugCheckSizes() const;

  /// The zone-map sketch over every record appended since the last Clear —
  /// maintained incrementally on the append path (DESIGN.md §2.5). Consumers
  /// must treat it as an over-approximation of the batch's contents.
  const ZoneMapSketch& sketch() const { return sketch_; }

  /// Empties the batch but keeps the backing vectors' capacity (arena
  /// reuse); the capacity() watermark is preserved.
  void Clear() {
    records_.clear();
    sizes_.clear();
    bytes_ = 0;
    sketch_.Clear();
  }

 private:
  std::vector<Record> records_;
  std::vector<size_t> sizes_;  // sizes_[i] == records_[i].SerializedSize()
  size_t bytes_ = 0;
  size_t capacity_ = kDefaultCapacity;
  ZoneMapSketch sketch_;
};

/// A freelist of cleared batches. Not thread-safe by design: every
/// partition task owns its own pool, matching the engine's task-local state
/// rule (DESIGN.md §2.1).
class BatchPool {
 public:
  /// Returns a cleared batch with the given capacity watermark — a recycled
  /// one (backing storage intact) when available.
  RecordBatch Acquire(size_t capacity);

  /// Clears the batch and shelves its storage for the next Acquire.
  void Release(RecordBatch batch);

  size_t free_count() const { return free_.size(); }

 private:
  std::vector<RecordBatch> free_;
};

/// Packs records into a vector of batches, filling each to exactly
/// `capacity` before starting the next — the invariant DataSet's O(1)
/// record(i) indexing and the engine's partition buffers rely on. With a
/// pool, new tail batches draw recycled backing stores instead of
/// allocating (the shuffle's drain-and-rewrite loop feeds consumed input
/// batches back through one).
class BatchWriter {
 public:
  BatchWriter(std::vector<RecordBatch>* out, size_t capacity,
              BatchPool* pool = nullptr)
      : out_(out), capacity_(capacity), pool_(pool) {}

  void Append(Record r) {
    Tail()->Append(std::move(r));
  }
  void AppendWithSize(Record r, size_t serialized_bytes) {
    Tail()->AppendWithSize(std::move(r), serialized_bytes);
  }

 private:
  RecordBatch* Tail() {
    if (out_->empty() || out_->back().size() >= capacity_) {
      out_->push_back(pool_ ? pool_->Acquire(capacity_)
                            : RecordBatch(capacity_));
    }
    return &out_->back();
  }

  std::vector<RecordBatch>* out_;
  size_t capacity_;
  BatchPool* pool_;
};

/// Total rows across a run of batches.
size_t BatchesRows(const std::vector<RecordBatch>& batches);

/// Total serialized bytes across a run of batches, from the cached sizes.
size_t BatchesBytes(const std::vector<RecordBatch>& batches);

}  // namespace blackbox

#endif  // BLACKBOX_RECORD_RECORD_BATCH_H_
