#include "reorder/plan.h"

#include <functional>
#include <sstream>

namespace blackbox {
namespace reorder {

using dataflow::AttrId;
using dataflow::AttrSet;
using dataflow::DataFlow;
using dataflow::OpKind;

PlanPtr PlanFromFlow(const DataFlow& flow) {
  std::function<PlanPtr(int)> build = [&](int id) -> PlanPtr {
    const dataflow::Operator& op = flow.op(id);
    std::vector<PlanPtr> children;
    children.reserve(op.inputs.size());
    for (int in : op.inputs) children.push_back(build(in));
    return PlanNode::Make(id, std::move(children));
  };
  return build(flow.sink_id());
}

std::string CanonicalString(const PlanPtr& plan) {
  std::ostringstream out;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& n) {
    out << n->op_id;
    if (!n->children.empty()) {
      out << "(";
      for (size_t i = 0; i < n->children.size(); ++i) {
        if (i) out << ",";
        walk(n->children[i]);
      }
      out << ")";
    }
  };
  walk(plan);
  return out.str();
}

std::string PlanToString(const PlanPtr& plan, const DataFlow& flow) {
  std::ostringstream out;
  std::function<void(const PlanPtr&, int)> walk = [&](const PlanPtr& n,
                                                      int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
    const dataflow::Operator& op = flow.op(n->op_id);
    out << dataflow::OpKindName(op.kind) << " \"" << op.name << "\"\n";
    for (const PlanPtr& c : n->children) walk(c, depth + 1);
  };
  walk(plan, 0);
  return out.str();
}

std::string PlanToDot(const PlanPtr& plan, const DataFlow& flow) {
  std::ostringstream out;
  out << "digraph plan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  int next_id = 0;
  std::function<int(const PlanPtr&)> walk = [&](const PlanPtr& n) -> int {
    int my_id = next_id++;
    const dataflow::Operator& op = flow.op(n->op_id);
    const char* shape = "box";
    switch (op.kind) {
      case OpKind::kSource:
        shape = "cylinder";
        break;
      case OpKind::kSink:
        shape = "invhouse";
        break;
      default:
        break;
    }
    out << "  n" << my_id << " [label=\"" << dataflow::OpKindName(op.kind)
        << "\\n" << op.name << "\", shape=" << shape << "];\n";
    for (const PlanPtr& c : n->children) {
      int child_id = walk(c);
      out << "  n" << child_id << " -> n" << my_id << ";\n";
    }
    return my_id;
  };
  walk(plan);
  out << "}\n";
  return out.str();
}

AttrSet SubtreeAttrs(const PlanPtr& plan, const dataflow::AnnotatedFlow& af) {
  AttrSet attrs;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& n) {
    const dataflow::OpProperties& p = af.of(n->op_id);
    attrs = attrs.Union(p.introduced);
    for (const PlanPtr& c : n->children) walk(c);
  };
  walk(plan);
  return attrs;
}

bool SubtreeUniqueOnKey(const PlanPtr& plan, const dataflow::AnnotatedFlow& af,
                        const std::vector<AttrId>& key) {
  const dataflow::Operator& op = af.flow->op(plan->op_id);
  if (op.kind == OpKind::kSource) {
    if (op.source_unique_fields.empty()) return false;
    const dataflow::OpProperties& p = af.of(plan->op_id);
    // Unique if the source's primary-key attributes are all in `key`.
    for (int f : op.source_unique_fields) {
      AttrId a = p.out_schema[f];
      bool found = false;
      for (AttrId k : key) found |= (k == a);
      if (!found) return false;
    }
    return true;
  }
  // Uniqueness propagates through operators that emit at most one record per
  // input record and do not modify the key attributes.
  if (op.kind == OpKind::kMap) {
    const dataflow::OpProperties& p = af.of(plan->op_id);
    if (p.max_emits > 1 || p.max_emits < 0) return false;
    for (AttrId k : key) {
      if (p.write.Contains(k)) return false;
    }
    return SubtreeUniqueOnKey(plan->children[0], af, key);
  }
  // Conservative for everything else (mirrors the paper's restriction to
  // base-relation FK/PK knowledge).
  return false;
}

}  // namespace reorder
}  // namespace blackbox
