// The reordering conditions of Section 4, evaluated over resolved operator
// properties: ROC (Definition 4), KGP (Definition 5), and the per-pair
// predicates of Theorems 1-4 and Lemma 1. The oracle answers "may these two
// adjacent operators be swapped?" — the enumerator asks, the oracle never
// looks at operator semantics, only at the conflict structure.

#ifndef BLACKBOX_REORDER_CONDITIONS_H_
#define BLACKBOX_REORDER_CONDITIONS_H_

#include <vector>

#include "dataflow/annotate.h"
#include "reorder/plan.h"

namespace blackbox {
namespace reorder {

class ReorderOracle {
 public:
  explicit ReorderOracle(const dataflow::AnnotatedFlow* af) : af_(af) {}

  /// Read-only conflict condition (Definition 4):
  /// R_f ∩ W_g = W_f ∩ R_g = W_f ∩ W_g = ∅.
  bool Roc(int f_op, int g_op) const;

  /// Key group preservation (Definition 5) of a RAT unary operator's UDF
  /// with respect to key attribute set K: the UDF emits exactly one record
  /// per input (case 1), or at most one with the emit decision depending only
  /// on attributes in K (case 2).
  bool Kgp(int op, const std::vector<dataflow::AttrId>& key) const;

  /// KGP extension for KAT operators: requires declared KAT behaviour
  /// (kPerRecordOneToOne, or kGroupWiseFilter with decision ⊆ K). SCA cannot
  /// derive this, so in SCA mode it holds only if manually declared.
  bool KatKgp(int op, const std::vector<dataflow::AttrId>& key) const;

  /// Can unary r (currently the parent) swap with unary s (its child)?
  /// Covers Theorem 1 (Map-Map), Theorem 2 (Map-Reduce) and the
  /// Reduce-Reduce case.
  bool CanSwapUnaryUnary(int r, int s) const;

  /// Can unary u and binary b be adjacent-swapped such that u sits on side
  /// `side` of b below it (or is pulled up from that side)? `side_subtree`
  /// is b's child subtree on that side *excluding u*, `other_subtree` the
  /// child on the opposite side. Covers Theorem 3 (Map past a product),
  /// Theorem 4 + invariant grouping (Reduce past Match/Cross), and the
  /// CoGroup tagged-union push-down of §4.3.2.
  bool CanSwapUnaryBinary(int u, int b, int side, const PlanPtr& side_subtree,
                          const PlanPtr& other_subtree) const;

  /// Can binary r (parent) rotate with binary s (child)? After rotation s
  /// becomes the parent, `staying` remains s's child, and r joins the moving
  /// grandchild with `outer` (r's other child). Covers Lemma 1 (Match-Match)
  /// and the analogous Match/Cross combinations.
  bool CanRotateBinaryBinary(int r, int s, const PlanPtr& staying,
                             const PlanPtr& outer) const;

  const dataflow::AnnotatedFlow& af() const { return *af_; }

 private:
  bool TouchesSubtree(int op, const PlanPtr& subtree) const;

  const dataflow::AnnotatedFlow* af_;
};

}  // namespace reorder
}  // namespace blackbox

#endif  // BLACKBOX_REORDER_CONDITIONS_H_
