#include "reorder/conditions.h"

namespace blackbox {
namespace reorder {

using dataflow::AttrId;
using dataflow::AttrSet;
using dataflow::KatBehavior;
using dataflow::OpKind;
using dataflow::OpProperties;

namespace {

AttrSet KeyAsSet(const std::vector<AttrId>& key) {
  AttrSet s;
  for (AttrId a : key) s.Add(a);
  return s;
}

}  // namespace

bool ReorderOracle::Roc(int f_op, int g_op) const {
  const OpProperties& f = af_->of(f_op);
  const OpProperties& g = af_->of(g_op);
  return !f.read.Intersects(g.write) && !f.write.Intersects(g.read) &&
         !f.write.Intersects(g.write);
}

bool ReorderOracle::Kgp(int op, const std::vector<AttrId>& key) const {
  const OpProperties& p = af_->of(op);
  if (p.max_emits < 0 || p.max_emits > 1) return false;
  if (p.min_emits == 1 && p.max_emits == 1) return true;  // Def. 5 case 1
  // Case 2: at most one emit, decision determined by attributes within K.
  return p.decision.IsSubsetOf(KeyAsSet(key));
}

bool ReorderOracle::KatKgp(int op, const std::vector<AttrId>& key) const {
  const OpProperties& p = af_->of(op);
  switch (p.kat_behavior) {
    case KatBehavior::kPerRecordOneToOne:
      return true;
    case KatBehavior::kGroupWiseFilter:
      return p.decision.IsSubsetOf(KeyAsSet(key));
    case KatBehavior::kUnknown:
      return false;
  }
  return false;
}

bool ReorderOracle::CanSwapUnaryUnary(int r, int s) const {
  const OpKind rk = af_->flow->op(r).kind;
  const OpKind sk = af_->flow->op(s).kind;
  if (!Roc(r, s)) return false;
  if (rk == OpKind::kMap && sk == OpKind::kMap) {
    return true;  // Theorem 1
  }
  if (rk == OpKind::kMap && sk == OpKind::kReduce) {
    return Kgp(r, af_->of(s).keys[0]);  // Theorem 2
  }
  if (rk == OpKind::kReduce && sk == OpKind::kMap) {
    return Kgp(s, af_->of(r).keys[0]);  // Theorem 2 (mirrored)
  }
  if (rk == OpKind::kReduce && sk == OpKind::kReduce) {
    return KatKgp(r, af_->of(s).keys[0]) && KatKgp(s, af_->of(r).keys[0]);
  }
  return false;
}

bool ReorderOracle::TouchesSubtree(int op, const PlanPtr& subtree) const {
  return af_->of(op).Touched().Intersects(SubtreeAttrs(subtree, *af_));
}

bool ReorderOracle::CanSwapUnaryBinary(int u, int b, int side,
                                       const PlanPtr& side_subtree,
                                       const PlanPtr& other_subtree) const {
  (void)side_subtree;
  const OpKind uk = af_->flow->op(u).kind;
  const OpKind bk = af_->flow->op(b).kind;
  if (uk != OpKind::kMap && uk != OpKind::kReduce) return false;

  // The unary operator must not touch attributes of the opposite input
  // (Theorem 3: (R_f ∪ W_f) ∩ S = ∅) and must commute with the binary
  // operator's (conceptually Map-ified, §4.3.1) UDF f'.
  if (!Roc(u, b)) return false;
  if (TouchesSubtree(u, other_subtree)) return false;

  const OpProperties& bp = af_->of(b);

  if (uk == OpKind::kMap) {
    switch (bk) {
      case OpKind::kMatch:
      case OpKind::kCross:
        return true;  // Theorem 3 + Theorem 1 on f'
      case OpKind::kCoGroup:
        // §4.3.2: CoGroup ~ Reduce over a tagged union; pushing a Map below
        // it needs the Theorem 2 conditions against the side's key.
        return Kgp(u, bp.keys[side]);
      default:
        return false;
    }
  }

  // u is a Reduce: Theorem 4 / invariant grouping.
  const OpProperties& up = af_->of(u);
  if (bk == OpKind::kMatch) {
    // The Reduce key must contain the Match key of the side the Reduce moves
    // to/from (F ⊆ K), and the opposite side must be unique on its join key
    // so the join neither duplicates records within a group (uniqueness) nor
    // splits key groups (F ⊆ K ⇒ whole groups match or drop together).
    AttrSet reduce_key = KeyAsSet(up.keys[0]);
    for (AttrId a : bp.keys[side]) {
      if (!reduce_key.Contains(a)) return false;
    }
    return SubtreeUniqueOnKey(other_subtree, *af_, bp.keys[1 - side]);
  }
  if (bk == OpKind::kCross) {
    // Theorem 4 as stated requires the Reduce key to cover all attributes of
    // the other side; the practical special case is a single-record side
    // (e.g. a scalar subquery result).
    const dataflow::Operator& other_op = af_->flow->op(other_subtree->op_id);
    return other_op.kind == OpKind::kSource && other_op.source_rows == 1;
  }
  return false;  // Reduce vs. CoGroup: conservative
}

bool ReorderOracle::CanRotateBinaryBinary(int r, int s, const PlanPtr& staying,
                                          const PlanPtr& outer) const {
  const OpKind rk = af_->flow->op(r).kind;
  const OpKind sk = af_->flow->op(s).kind;
  // Only RAT binaries rotate (Lemma 1 and its Cross analogues); CoGroup
  // rotations would need group-preservation reasoning we conservatively skip.
  auto rotatable = [](OpKind k) {
    return k == OpKind::kMatch || k == OpKind::kCross;
  };
  if (!rotatable(rk) || !rotatable(sk)) return false;
  if (!Roc(r, s)) return false;
  // r must not touch the grandchild that stays under s; s must not touch r's
  // outer child (Lemma 1: (R_f' ∪ W_f) ∩ T = ∅ and (R_g' ∪ W_g) ∩ R = ∅).
  if (TouchesSubtree(r, staying)) return false;
  if (TouchesSubtree(s, outer)) return false;
  return true;
}

}  // namespace reorder
}  // namespace blackbox
