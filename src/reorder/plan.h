// Immutable plan trees over the operators of an annotated flow. Enumeration
// produces many plans sharing subtrees, so nodes are shared_ptr-shared and
// never mutated.

#ifndef BLACKBOX_REORDER_PLAN_H_
#define BLACKBOX_REORDER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "dataflow/annotate.h"
#include "dataflow/flow.h"

namespace blackbox {
namespace reorder {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// One operator occurrence in a plan tree. `op_id` indexes the original
/// flow's operator table; the same operator appears in many alternative plans
/// at different positions.
struct PlanNode {
  int op_id = -1;
  std::vector<PlanPtr> children;

  static PlanPtr Make(int op_id, std::vector<PlanPtr> children = {}) {
    auto n = std::make_shared<PlanNode>();
    n->op_id = op_id;
    n->children = std::move(children);
    return n;
  }
};

/// Builds the plan tree of the original flow (rooted at the sink).
PlanPtr PlanFromFlow(const dataflow::DataFlow& flow);

/// Canonical string form, e.g. "7(5(3(0),4(1)),2)". Used for deduplication
/// and as memo-table key material.
std::string CanonicalString(const PlanPtr& plan);

/// Pretty multi-line rendering with operator names.
std::string PlanToString(const PlanPtr& plan, const dataflow::DataFlow& flow);

/// Graphviz rendering of a plan tree (one node per operator occurrence,
/// edges from inputs to consumers). Paste into `dot -Tsvg` to visualize
/// alternative flows side by side.
std::string PlanToDot(const PlanPtr& plan, const dataflow::DataFlow& flow);

/// Union of all attributes originating in this subtree: source attributes
/// plus attributes introduced by operators (§4.3 uses these as the "attribute
/// set of S" in conditions like (R_f ∪ W_f) ∩ S = ∅).
dataflow::AttrSet SubtreeAttrs(const PlanPtr& plan,
                               const dataflow::AnnotatedFlow& af);

/// True if the subtree's output is unique on the given key attributes. Like
/// the paper, we only derive uniqueness from base data sources annotated with
/// a primary key; uniqueness is preserved through operators that emit at most
/// one record per input and don't modify the key.
bool SubtreeUniqueOnKey(const PlanPtr& plan, const dataflow::AnnotatedFlow& af,
                        const std::vector<dataflow::AttrId>& key);

}  // namespace reorder
}  // namespace blackbox

#endif  // BLACKBOX_REORDER_PLAN_H_
