#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace blackbox {
namespace serve {

namespace {

// Nearest-rank: the smallest sample with at least p% of the mass at or
// below it. Exact for the sample set, no interpolation surprises at the
// tails.
double NearestRank(const std::vector<double>& sorted, double p) {
  double clamped = std::min(100.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, p);
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  s.p50 = NearestRank(sorted, 50);
  s.p99 = NearestRank(sorted, 99);
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.max = sorted.back();
  return s;
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::Max() const {
  double m = 0;
  for (double s : samples_) m = std::max(m, s);
  return m;
}

void ServerMetrics::OnSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
}

void ServerMetrics::OnRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServerMetrics::OnQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_high_water_ = std::max(queue_high_water_, depth);
}

void ServerMetrics::OnAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++admitted_;
}

void ServerMetrics::OnPlanCache(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++plan_cache_hits_;
  } else {
    ++plan_cache_misses_;
  }
}

void ServerMetrics::OnFinished(const std::string& workload_class, bool ok,
                               double exec_seconds, double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  exec_latency_[workload_class].Record(exec_seconds);
  total_latency_[workload_class].Record(total_seconds);
}

MetricsSnapshot ServerMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.submitted = submitted_;
  snap.rejected = rejected_;
  snap.admitted = admitted_;
  snap.completed = completed_;
  snap.failed = failed_;
  snap.queue_high_water = queue_high_water_;
  snap.plan_cache_hits = plan_cache_hits_;
  snap.plan_cache_misses = plan_cache_misses_;
  for (const auto& [cls, rec] : total_latency_) {
    snap.total_latency[cls] = rec.Summarize();
  }
  for (const auto& [cls, rec] : exec_latency_) {
    snap.exec_latency[cls] = rec.Summarize();
  }
  return snap;
}

}  // namespace serve
}  // namespace blackbox
