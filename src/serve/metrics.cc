#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace blackbox {
namespace serve {

namespace {

// Nearest-rank: the smallest sample with at least p% of the mass at or
// below it. Exact for the sample set, no interpolation surprises at the
// tails.
double NearestRank(const std::vector<double>& sorted, double p) {
  double clamped = std::min(100.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

const std::vector<double>& LatencyRecorder::Sorted() const {
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  return sorted_;
}

double LatencyRecorder::Percentile(double p) const {
  if (samples_.empty()) return 0;
  return NearestRank(Sorted(), p);
}

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  const std::vector<double>& sorted = Sorted();
  s.p50 = NearestRank(sorted, 50);
  s.p99 = NearestRank(sorted, 99);
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.max = sorted.back();
  return s;
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::Max() const {
  // The back of the sorted cache, NOT a fold from 0 — an all-negative
  // sample set must return its true (negative) maximum.
  if (samples_.empty()) return 0;
  return Sorted().back();
}

void ServerMetrics::OnSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
}

void ServerMetrics::OnRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServerMetrics::OnQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_high_water_ = std::max(queue_high_water_, depth);
}

void ServerMetrics::OnAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++admitted_;
}

void ServerMetrics::OnPlanCache(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++plan_cache_hits_;
  } else {
    ++plan_cache_misses_;
  }
}

void ServerMetrics::OnFinished(const std::string& workload_class,
                               Status::Code code, double exec_seconds,
                               double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (code) {
    case Status::Code::kOk:
      ++completed_;
      break;
    case Status::Code::kCancelled:
      ++cancelled_;
      break;
    case Status::Code::kDeadlineExceeded:
      ++deadline_exceeded_;
      break;
    default:
      ++failed_;
      break;
  }
  exec_latency_[workload_class].Record(exec_seconds);
  total_latency_[workload_class].Record(total_seconds);
}

void ServerMetrics::OnCancelledBeforeAdmission(Status::Code code) {
  std::lock_guard<std::mutex> lock(mu_);
  if (code == Status::Code::kDeadlineExceeded) {
    ++deadline_exceeded_;
  } else {
    ++cancelled_;
  }
}

MetricsSnapshot ServerMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.submitted = submitted_;
  snap.rejected = rejected_;
  snap.admitted = admitted_;
  snap.completed = completed_;
  snap.failed = failed_;
  snap.cancelled = cancelled_;
  snap.deadline_exceeded = deadline_exceeded_;
  snap.queue_high_water = queue_high_water_;
  snap.plan_cache_hits = plan_cache_hits_;
  snap.plan_cache_misses = plan_cache_misses_;
  for (const auto& [cls, rec] : total_latency_) {
    snap.total_latency[cls] = rec.Summarize();
  }
  for (const auto& [cls, rec] : exec_latency_) {
    snap.exec_latency[cls] = rec.Summarize();
  }
  return snap;
}

}  // namespace serve
}  // namespace blackbox
