// Admission control for the serving subsystem (DESIGN.md §2.4): a bounded,
// per-tenant fair-share wait queue. Queries enter per-tenant FIFO lanes;
// when the server has an execution slot it asks for the next candidate and
// the queue answers with the head of the lane whose tenant currently uses
// the least of the server — fewest queries in flight, then fewest admitted
// overall, then tenant name as the deterministic tie-break. Within a lane
// order is strictly FIFO, so one tenant's queries never overtake each other.
//
// The queue holds opaque query ids; the QueryServer owns the id → query
// state map. Not thread-safe — the server serializes all access under its
// own mutex, which also makes the peek-then-admit handshake (peek a
// candidate, try to carve its budget, only then pop) race-free.

#ifndef BLACKBOX_SERVE_ADMISSION_H_
#define BLACKBOX_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "common/status.h"

namespace blackbox {
namespace serve {

/// The candidate Peek() proposes: which query would be admitted next, and
/// for which tenant.
struct AdmissionCandidate {
  std::string tenant;
  uint64_t query_id = 0;
};

class FairShareQueue {
 public:
  /// `max_queued` bounds the total waiting queries across all tenants;
  /// 0 means no waiting room (every query must be admitted immediately or
  /// rejected).
  explicit FairShareQueue(size_t max_queued) : max_queued_(max_queued) {}

  /// Appends a query to its tenant's lane. OutOfRange when the queue is at
  /// capacity — the caller surfaces that as an admission rejection.
  Status Enqueue(const std::string& tenant, uint64_t query_id);

  /// The fair-share candidate: head of the least-served tenant's lane.
  /// nullopt when nothing is waiting. Does not modify the queue.
  std::optional<AdmissionCandidate> Peek() const;

  /// Pops the current candidate after the caller secured its resources.
  /// Must be passed exactly the tenant Peek() returned. A tenant with no
  /// waiting query is rejected (returns false, queue unchanged) rather than
  /// corrupting the lane state — the guard holds in Release builds too.
  bool PopAdmitted(const std::string& tenant);

  /// Releases one in-flight slot for `tenant` when its query finishes.
  /// Returns false (and changes nothing) when the tenant has no query in
  /// flight — a double-complete must not underflow the fair-share counters.
  /// A lane left with nothing waiting and nothing in flight is erased (see
  /// EraseIfIdle) so a churn of one-shot tenants cannot grow lanes_ forever.
  bool OnComplete(const std::string& tenant);

  /// Removes one waiting entry (a cancelled query) from its tenant's lane,
  /// wherever it sits in the FIFO. Returns false when the id is not waiting
  /// under that tenant — already admitted, already removed, or never
  /// enqueued. Idle lanes are erased just like in OnComplete.
  bool Remove(const std::string& tenant, uint64_t query_id);

  size_t size() const { return size_; }
  size_t max_queued() const { return max_queued_; }

  /// Lanes currently tracked (waiting or in flight) — the quantity the idle
  /// GC bounds; exposed for tests.
  size_t num_lanes() const { return lanes_.size(); }

 private:
  struct TenantLane {
    std::deque<uint64_t> waiting;
    int inflight = 0;          // admitted, not yet completed
    int64_t admitted_total = 0;  // lifetime admissions, the long-run share
  };

  /// Erases `it`'s lane once it has nothing waiting and nothing in flight,
  /// first folding its admitted_total into admitted_floor_ so the fair-share
  /// history survives the erasure: a returning tenant re-enters at the floor
  /// instead of looking brand new and jumping the least-served order.
  void EraseIfIdle(std::map<std::string, TenantLane>::iterator it);

  std::map<std::string, TenantLane> lanes_;
  size_t size_ = 0;
  const size_t max_queued_;

  /// Ratchet over every erased lane's admitted_total; new lanes start here.
  /// Keeps the least-served tie-break meaningful across lane GC without
  /// remembering per-tenant history for tenants that may never return.
  int64_t admitted_floor_ = 0;
};

}  // namespace serve
}  // namespace blackbox

#endif  // BLACKBOX_SERVE_ADMISSION_H_
