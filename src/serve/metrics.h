// Server-level observability for the serving subsystem (DESIGN.md §2.4).
// Two pieces: LatencyRecorder keeps raw wall-clock samples and answers
// percentile queries by nearest-rank over a sorted copy, and ServerMetrics
// aggregates the admission lifecycle counters plus per-workload-class
// latency recorders behind one mutex.
//
// Latencies here are deliberately wall-clock: serving latency is a property
// of the real machine (queueing, thread scheduling, disk), unlike the
// engine's simulated_seconds which stays thread-invariant by derivation
// from the byte meters. The two are reported side by side in the serving
// bench JSON and must not be conflated — see DESIGN.md §2.4.

#ifndef BLACKBOX_SERVE_METRICS_H_
#define BLACKBOX_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace blackbox {
namespace serve {

/// Aggregated latency statistics for one workload class, one latency kind.
struct LatencySummary {
  size_t count = 0;
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
};

/// Raw latency samples with percentile queries. Not thread-safe; owned per
/// workload class under ServerMetrics' mutex.
class LatencyRecorder {
 public:
  void Record(double seconds) { samples_.push_back(seconds); }

  size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile, p in [0, 100]. 0 with no samples. Copies and
  /// sorts the samples on every call — fine for a one-off query; snapshot
  /// paths use Summarize(), which sorts once for all of its statistics.
  double Percentile(double p) const;

  double Mean() const;
  double Max() const;

  /// All summary statistics from a single sorted pass: one copy + sort
  /// yields p50 and p99 by nearest rank, the mean by accumulation, and the
  /// max as the last sorted element. Snapshot() calls this per recorder —
  /// previously it sorted the sample vector twice per recorder per snapshot.
  LatencySummary Summarize() const;

 private:
  std::vector<double> samples_;
};

/// A point-in-time copy of everything ServerMetrics tracks — what the
/// serving bench serializes into BENCH_serving.json.
struct MetricsSnapshot {
  int64_t submitted = 0;  // Submit() calls, accepted or not
  int64_t rejected = 0;   // bounced at admission (queue full / oversized)
  int64_t admitted = 0;   // granted a budget carve and started
  int64_t completed = 0;  // finished with an OK status
  int64_t failed = 0;     // finished with a non-OK status
  size_t queue_high_water = 0;  // max queued-at-once across the run

  /// Plan-cache provenance of accepted queries: whether the submitted
  /// program's plans came from the process-wide plan cache
  /// (optimizer/plan_cache.h) or from a cold optimization. A hit here means
  /// the server never paid for UDF analysis, enumeration, or costing on
  /// that program's behalf.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;

  /// Per workload class: end-to-end (submit → result) and execution-only
  /// wall-clock latency summaries.
  std::map<std::string, LatencySummary> total_latency;
  std::map<std::string, LatencySummary> exec_latency;
};

/// Thread-safe lifecycle counters + per-class latency recorders for one
/// QueryServer.
class ServerMetrics {
 public:
  void OnSubmitted();
  void OnRejected();
  void OnQueueDepth(size_t depth);  // records the high-water mark
  void OnAdmitted();

  /// Called once per accepted query with the program's plan-cache
  /// provenance (OptimizedProgram::from_plan_cache()).
  void OnPlanCache(bool hit);

  /// Called once per finished query. `ok` picks completed vs failed;
  /// latencies are recorded either way (a failed query still occupied the
  /// server for that long).
  void OnFinished(const std::string& workload_class, bool ok,
                  double exec_seconds, double total_seconds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t admitted_ = 0;
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  size_t queue_high_water_ = 0;
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;
  std::map<std::string, LatencyRecorder> total_latency_;
  std::map<std::string, LatencyRecorder> exec_latency_;
};

}  // namespace serve
}  // namespace blackbox

#endif  // BLACKBOX_SERVE_METRICS_H_
