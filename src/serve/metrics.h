// Server-level observability for the serving subsystem (DESIGN.md §2.4).
// Two pieces: LatencyRecorder keeps raw wall-clock samples and answers
// percentile queries by nearest-rank over a sorted copy, and ServerMetrics
// aggregates the admission lifecycle counters plus per-workload-class
// latency recorders behind one mutex.
//
// Latencies here are deliberately wall-clock: serving latency is a property
// of the real machine (queueing, thread scheduling, disk), unlike the
// engine's simulated_seconds which stays thread-invariant by derivation
// from the byte meters. The two are reported side by side in the serving
// bench JSON and must not be conflated — see DESIGN.md §2.4.

#ifndef BLACKBOX_SERVE_METRICS_H_
#define BLACKBOX_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace blackbox {
namespace serve {

/// Aggregated latency statistics for one workload class, one latency kind.
struct LatencySummary {
  size_t count = 0;
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
};

/// Raw latency samples with percentile queries. Not thread-safe; owned per
/// workload class under ServerMetrics' mutex.
///
/// Queries share one lazily-maintained sorted copy of the samples: the
/// first query after a Record() sorts once and caches, every further query
/// (Percentile at any p, Max, Summarize) reads the cache. A
/// record-heavy/query-light workload pays nothing per Record beyond the
/// dirty flag; a query-heavy tail (a dashboard polling several percentiles)
/// no longer re-copies and re-sorts per call.
class LatencyRecorder {
 public:
  void Record(double seconds) {
    samples_.push_back(seconds);
    dirty_ = true;
  }

  size_t count() const { return samples_.size(); }

  /// Nearest-rank percentile, p in [0, 100]. 0 with no samples.
  double Percentile(double p) const;

  double Mean() const;

  /// Largest sample; 0 with no samples. Correct for any sample values —
  /// all-negative samples return the (negative) maximum, not 0.
  double Max() const;

  /// All summary statistics from the shared sorted cache: p50 and p99 by
  /// nearest rank, the mean by accumulation, the max as the last sorted
  /// element.
  LatencySummary Summarize() const;

 private:
  /// Sorts into sorted_ iff samples were recorded since the last query.
  const std::vector<double>& Sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache, rebuilt when dirty_
  mutable bool dirty_ = false;
};

/// A point-in-time copy of everything ServerMetrics tracks — what the
/// serving bench serializes into BENCH_serving.json.
struct MetricsSnapshot {
  int64_t submitted = 0;  // Submit() calls, accepted or not
  int64_t rejected = 0;   // bounced at admission (queue full / oversized)
  int64_t admitted = 0;   // granted a budget carve and started
  int64_t completed = 0;  // finished with an OK status
  int64_t failed = 0;     // finished with a non-OK status (not cancel/deadline)
  int64_t cancelled = 0;  // unwound via QueryHandle::Cancel (any stage)
  int64_t deadline_exceeded = 0;  // unwound via an expired deadline
  size_t queue_high_water = 0;  // max queued-at-once across the run

  /// Plan-cache provenance of accepted queries: whether the submitted
  /// program's plans came from the process-wide plan cache
  /// (optimizer/plan_cache.h) or from a cold optimization. A hit here means
  /// the server never paid for UDF analysis, enumeration, or costing on
  /// that program's behalf.
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;

  /// Per workload class: end-to-end (submit → result) and execution-only
  /// wall-clock latency summaries.
  std::map<std::string, LatencySummary> total_latency;
  std::map<std::string, LatencySummary> exec_latency;
};

/// Thread-safe lifecycle counters + per-class latency recorders for one
/// QueryServer.
class ServerMetrics {
 public:
  void OnSubmitted();
  void OnRejected();
  void OnQueueDepth(size_t depth);  // records the high-water mark
  void OnAdmitted();

  /// Called once per accepted query with the program's plan-cache
  /// provenance (OptimizedProgram::from_plan_cache()).
  void OnPlanCache(bool hit);

  /// Called once per query that finished on a driver thread. The status
  /// code routes the lifecycle counter — OK → completed, kCancelled →
  /// cancelled, kDeadlineExceeded → deadline_exceeded, anything else →
  /// failed; latencies are recorded for every code (the query occupied the
  /// server for that long regardless of how it ended).
  void OnFinished(const std::string& workload_class, Status::Code code,
                  double exec_seconds, double total_seconds);

  /// Called for a query cancelled (or found past-deadline) before it ever
  /// started executing — still waiting for admission. Counts toward
  /// cancelled / deadline_exceeded but records no latency samples: the
  /// query never occupied the server, so folding its queue wait into the
  /// class percentiles would pollute them.
  void OnCancelledBeforeAdmission(Status::Code code);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t admitted_ = 0;
  int64_t completed_ = 0;
  int64_t failed_ = 0;
  int64_t cancelled_ = 0;
  int64_t deadline_exceeded_ = 0;
  size_t queue_high_water_ = 0;
  int64_t plan_cache_hits_ = 0;
  int64_t plan_cache_misses_ = 0;
  std::map<std::string, LatencyRecorder> total_latency_;
  std::map<std::string, LatencyRecorder> exec_latency_;
};

}  // namespace serve
}  // namespace blackbox

#endif  // BLACKBOX_SERVE_METRICS_H_
