#include "serve/admission.h"

#include <algorithm>

namespace blackbox {
namespace serve {

Status FairShareQueue::Enqueue(const std::string& tenant, uint64_t query_id) {
  if (size_ >= max_queued_) {
    return Status::OutOfRange("admission queue full (" +
                              std::to_string(max_queued_) +
                              " waiting); rejecting query for tenant \"" +
                              tenant + "\"");
  }
  auto [it, inserted] = lanes_.try_emplace(tenant);
  // A tenant whose lane was garbage-collected (or that was never seen)
  // starts at the floor, not at zero: erased history must not turn into a
  // fairness advantage on return.
  if (inserted) it->second.admitted_total = admitted_floor_;
  it->second.waiting.push_back(query_id);
  ++size_;
  return Status::OK();
}

std::optional<AdmissionCandidate> FairShareQueue::Peek() const {
  const std::string* best_tenant = nullptr;
  const TenantLane* best = nullptr;
  for (const auto& [tenant, lane] : lanes_) {
    if (lane.waiting.empty()) continue;
    // Least-served first: fewest in flight, then fewest lifetime
    // admissions; std::map iteration order makes tenant name the final
    // deterministic tie-break.
    if (best == nullptr || lane.inflight < best->inflight ||
        (lane.inflight == best->inflight &&
         lane.admitted_total < best->admitted_total)) {
      best_tenant = &tenant;
      best = &lane;
    }
  }
  if (best == nullptr) return std::nullopt;
  return AdmissionCandidate{*best_tenant, best->waiting.front()};
}

bool FairShareQueue::PopAdmitted(const std::string& tenant) {
  // Real guards, not assert: a mismatched pop in a Release build must be a
  // rejected no-op, never an end() dereference or a size_ underflow that
  // poisons fair-share ordering for the rest of the server's life.
  auto it = lanes_.find(tenant);
  if (it == lanes_.end() || it->second.waiting.empty()) return false;
  it->second.waiting.pop_front();
  ++it->second.inflight;
  ++it->second.admitted_total;
  if (size_ > 0) --size_;
  return true;
}

bool FairShareQueue::OnComplete(const std::string& tenant) {
  auto it = lanes_.find(tenant);
  if (it == lanes_.end() || it->second.inflight <= 0) return false;
  --it->second.inflight;
  EraseIfIdle(it);
  return true;
}

bool FairShareQueue::Remove(const std::string& tenant, uint64_t query_id) {
  auto it = lanes_.find(tenant);
  if (it == lanes_.end()) return false;
  std::deque<uint64_t>& waiting = it->second.waiting;
  for (auto wi = waiting.begin(); wi != waiting.end(); ++wi) {
    if (*wi == query_id) {
      waiting.erase(wi);
      if (size_ > 0) --size_;
      EraseIfIdle(it);
      return true;
    }
  }
  return false;
}

void FairShareQueue::EraseIfIdle(
    std::map<std::string, TenantLane>::iterator it) {
  if (!it->second.waiting.empty() || it->second.inflight > 0) return;
  admitted_floor_ = std::max(admitted_floor_, it->second.admitted_total);
  lanes_.erase(it);
}

}  // namespace serve
}  // namespace blackbox
