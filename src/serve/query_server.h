// QueryServer — the serving subsystem's front door (DESIGN.md §2.4).
// Admits many concurrent OptimizedPrograms onto one shared TaskPool under
// one global memory budget:
//
//   Submit → bounded fair-share wait queue (admission.h)
//          → budget carve from the global BudgetPool (dop × (per-instance
//            budget + slack), the worst-case aggregate the query's ledgers
//            can reach; by default the per-instance budget is first shrunk
//            to the optimizer's estimated peak for the chosen plan, so
//            conservatively-budgeted queries pack tighter)
//          → driver thread runs OptimizedProgram::RunWith with the server's
//            worker pool, a per-query spill tag, and the pool as the
//            ledger parent
//          → completion reclaims the carve, releases the tenant's slot, and
//            wakes the admission loop for the next candidate.
//
// Invariant (tested): because admission never lets Σ carves exceed the pool
// capacity and every per-instance ledger stays within budget + bounded
// slack (DESIGN.md §2.3), the pool's measured live high-water never exceeds
// capacity — violations() == 0 by construction, not by luck.
//
// Execution results are unchanged by serving: each query's output is
// byte-identical to running it solo, because the engine's determinism
// contract is per-execution and shares only the (order-oblivious) worker
// pool. Only wall-clock latency varies with load — which is exactly what
// the metrics record.

#ifndef BLACKBOX_SERVE_QUERY_SERVER_H_
#define BLACKBOX_SERVE_QUERY_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/optimized_program.h"
#include "common/cancel.h"
#include "common/status.h"
#include "common/task_pool.h"
#include "engine/executor.h"
#include "engine/spill_manager.h"
#include "serve/admission.h"
#include "serve/metrics.h"

namespace blackbox {
namespace serve {

struct ServeOptions {
  /// Max queries executing at once; further admissions wait in the queue.
  int max_inflight = 4;

  /// Max queries waiting for admission (across all tenants) before Submit
  /// rejects outright.
  size_t max_queued = 64;

  /// Global memory budget all concurrent queries' carves draw from.
  double global_budget_bytes = 64.0 * (1 << 20);

  /// Per-instance slack added to each query's carve on top of its
  /// mem_budget_bytes — covers the bounded overshoot a ledger is allowed
  /// (the record in flight plus sub-quarter-budget holders, DESIGN.md
  /// §2.3). Must be at least that overshoot for the no-violation invariant
  /// to hold by construction.
  double per_instance_slack_bytes = 16.0 * 1024;

  /// Size each query's carve from the optimizer's estimated peak
  /// (OptimizedProgram::EstimatedPeakBytes) instead of the caller's
  /// worst-case mem_budget_bytes, whenever the estimate is smaller. The
  /// per-instance ledger budget shrinks with the carve, so the no-violation
  /// invariant holds unchanged — an under-estimate only costs extra
  /// spilling, never extra memory, and outputs stay byte-identical. Lets
  /// many conservatively-budgeted queries pack into one global budget.
  bool carve_from_estimate = true;

  /// Floor for the estimate-derived per-instance budget: a plan with no
  /// (or tiny) pipeline breakers still needs working room for batches.
  double min_estimated_budget_bytes = 4096;

  /// Worker threads in the shared pool; <= 0 picks hardware concurrency.
  int num_threads = 0;

  /// Parent directory for all queries' spill subdirectories; "" uses the
  /// system temp directory. Each query gets its own tagged subdirectory.
  std::string spill_root;
};

struct QueryRequest {
  /// Borrowed; must outlive the query (sources stay bound by the caller).
  const api::OptimizedProgram* program = nullptr;

  /// Which ranked alternative to execute (0 = cheapest).
  size_t plan_index = 0;

  /// Fair-share identity: admissions balance across tenants.
  std::string tenant = "default";

  /// Metrics bucket: latency percentiles are reported per class.
  std::string workload_class = "default";

  /// Worker-pool priority for this query's partition tasks; > 0 jumps the
  /// shared pool's queue (for short interactive classes).
  int priority = 0;

  /// Optional absolute deadline. Armed on the query's CancelToken at
  /// Submit, so it covers queue wait AND execution: a query that waits past
  /// its deadline is culled at admission, one that runs past it unwinds at
  /// the next engine checkpoint — either way the result's status is
  /// DeadlineExceeded and the metrics count it as such, not as a failure.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Per-query execution options (dop, per-instance budget, batch
  /// capacity). The server overrides worker_pool, ledger_parent,
  /// spill_dir, spill_tag, task_priority, and cancel — those belong to
  /// serving.
  engine::ExecOptions exec;
};

struct QueryResult {
  Status status = Status::OK();
  DataSet output;
  engine::ExecStats stats;
  double queue_seconds = 0;  // submit → execution start
  double exec_seconds = 0;   // execution start → result
  double total_seconds = 0;  // submit → result
  uint64_t query_id = 0;
};

class QueryServer;

/// Shared rendezvous between outstanding QueryHandles and their server:
/// handles route Cancel() through it, and the server's destructor nulls the
/// back-pointer so a handle outliving the server degrades to a plain token
/// cancel instead of a dangling call.
struct CancelHub {
  std::mutex mu;
  QueryServer* server = nullptr;  // guarded by mu
};

/// Future-like completion handle. Wait() blocks until the server fulfilled
/// the result; the reference stays valid as long as the handle lives.
class QueryHandle {
 public:
  const QueryResult& Wait();

  /// Non-blocking: true once the result is available.
  bool Done() const;

  /// Requests cancellation from any thread, at any stage. Still queued: the
  /// query leaves its tenant's lane immediately, never carves budget, and
  /// the handle is fulfilled with Cancelled. Already executing: the engine
  /// unwinds at its next checkpoint (at most one batch of work), the carve
  /// is reclaimed in full, the tenant slot is released, and the tagged
  /// spill directory is removed — exactly the completion path, with a
  /// Cancelled status. Idempotent; a no-op once the query finished.
  void Cancel();

 private:
  friend class QueryServer;
  void Fulfill(QueryResult result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  QueryResult result_;

  std::shared_ptr<CancelToken> token_;  // set by the server at Submit
  std::shared_ptr<CancelHub> hub_;
  uint64_t id_ = 0;
};

class QueryServer {
 public:
  explicit QueryServer(ServeOptions options);

  /// Drains outstanding work before shutdown.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Accepts a query for execution. Returns immediately with a handle;
  /// rejects with InvalidArgument for a malformed request and OutOfRange
  /// when the wait queue is full or the query's carve can never fit the
  /// global budget. Thread-safe.
  StatusOr<std::shared_ptr<QueryHandle>> Submit(QueryRequest request);

  /// Blocks until every queued and in-flight query has finished and joins
  /// the finished driver threads. Safe to call repeatedly.
  void Drain();

  /// The bytes Submit would carve from the global pool for this request —
  /// the worst-case aggregate memory its dop ledgers can reach. Exposed so
  /// harnesses can size global budgets deliberately. With
  /// carve_from_estimate set this consults the program's
  /// EstimatedPeakBytes, so the result can be smaller than
  /// dop × (mem_budget_bytes + slack).
  static double CarveBytes(const QueryRequest& request,
                           const ServeOptions& options);

  /// The per-instance memory budget Submit would actually run this request
  /// with: the requested exec.mem_budget_bytes, shrunk to the optimizer's
  /// estimated peak (floored at min_estimated_budget_bytes) when
  /// carve_from_estimate is set. CarveBytes is dop × (this + slack).
  static double EffectiveBudgetBytes(const QueryRequest& request,
                                     const ServeOptions& options);

  const engine::BudgetPool& budget_pool() const { return budget_; }
  const ServerMetrics& metrics() const { return metrics_; }
  const ServeOptions& options() const { return options_; }

  /// Driver threads not yet reaped: running queries plus finished drivers
  /// whose handles await the next join sweep. Bounded by max_inflight plus
  /// the sweep lag (one admission or drain), unlike the old accumulate-
  /// until-Drain vector — exposed for the thread-leak regression test.
  size_t live_drivers() const;

 private:
  friend class QueryHandle;  // Cancel() routes to OnCancel via the hub

  struct QueryState {
    QueryRequest request;
    std::shared_ptr<QueryHandle> handle;
    std::shared_ptr<CancelToken> cancel;
    uint64_t id = 0;
    double carve_bytes = 0;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// Admits fair-share candidates while slots and budget allow; culls
  /// cancelled / past-deadline candidates without carving. Caller holds mu_.
  void AdmitLocked();

  /// Driver-thread body: one admitted query start to finish.
  void RunQuery(std::shared_ptr<QueryState> query);

  /// QueryHandle::Cancel for a query still waiting for admission: removes
  /// it from its lane, fulfills the handle with Cancelled, and counts the
  /// metric. A query already admitted (or finished) is left alone — its
  /// driver observes the token and finishes through the normal path.
  void OnCancel(uint64_t id);

  /// Moves finished driver handles out of reap_ and joins them. Never
  /// called from a driver thread; caller must NOT hold mu_.
  void ReapFinishedDrivers();

  const ServeOptions options_;
  engine::BudgetPool budget_;
  TaskPool workers_;
  ServerMetrics metrics_;
  std::shared_ptr<CancelHub> hub_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  // signaled when a query finishes
  FairShareQueue queue_;
  std::map<uint64_t, std::shared_ptr<QueryState>> waiting_;  // queued, by id
  std::map<uint64_t, std::thread> drivers_;  // running, by query id
  std::vector<std::thread> reap_;  // finished, awaiting join
  int inflight_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace serve
}  // namespace blackbox

#endif  // BLACKBOX_SERVE_QUERY_SERVER_H_
