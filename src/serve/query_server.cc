#include "serve/query_server.h"

#include <algorithm>
#include <utility>

namespace blackbox {
namespace serve {

// --- QueryHandle ------------------------------------------------------------

const QueryResult& QueryHandle::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

bool QueryHandle::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryHandle::Fulfill(QueryResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

void QueryHandle::Cancel() {
  // Fire the token first: an executing query starts unwinding even if the
  // server is gone and the hub below is dead.
  if (token_) token_->Cancel();
  if (!hub_) return;
  std::lock_guard<std::mutex> lock(hub_->mu);
  if (hub_->server != nullptr) hub_->server->OnCancel(id_);
}

// --- QueryServer ------------------------------------------------------------

QueryServer::QueryServer(ServeOptions options)
    : options_(std::move(options)),
      budget_(options_.global_budget_bytes),
      workers_(options_.num_threads),
      hub_(std::make_shared<CancelHub>()),
      queue_(options_.max_queued) {
  hub_->server = this;
}

QueryServer::~QueryServer() {
  Drain();
  // Outstanding handles may outlive the server; from here their Cancel()
  // degrades to a pure token fire instead of calling into freed memory.
  std::lock_guard<std::mutex> lock(hub_->mu);
  hub_->server = nullptr;
}

double QueryServer::EffectiveBudgetBytes(const QueryRequest& request,
                                         const ServeOptions& options) {
  double budget = request.exec.mem_budget_bytes;
  if (options.carve_from_estimate && request.program != nullptr) {
    double est = request.program->EstimatedPeakBytes(request.plan_index,
                                                     request.exec.dop);
    budget = std::min(budget,
                      std::max(est, options.min_estimated_budget_bytes));
  }
  return budget;
}

double QueryServer::CarveBytes(const QueryRequest& request,
                               const ServeOptions& options) {
  // Worst case the query's ledgers can reach: dop instances, each within
  // its (effective) budget plus the bounded overshoot slack (DESIGN.md
  // §2.3). Shrinking the budget to the optimizer's estimate keeps the
  // invariant: the ledgers enforce whatever budget the query runs with.
  return static_cast<double>(request.exec.dop) *
         (EffectiveBudgetBytes(request, options) +
          options.per_instance_slack_bytes);
}

StatusOr<std::shared_ptr<QueryHandle>> QueryServer::Submit(
    QueryRequest request) {
  metrics_.OnSubmitted();
  if (request.program == nullptr) {
    metrics_.OnRejected();
    return Status::InvalidArgument("query request has no program");
  }
  if (request.plan_index >= request.program->ranked().size()) {
    metrics_.OnRejected();
    return Status::InvalidArgument(
        "plan index " + std::to_string(request.plan_index) +
        " out of range (" + std::to_string(request.program->ranked().size()) +
        " ranked alternatives)");
  }
  if (!(request.exec.mem_budget_bytes > 0)) {
    metrics_.OnRejected();
    return Status::InvalidArgument(
        "query mem_budget_bytes must be positive, got " +
        std::to_string(request.exec.mem_budget_bytes));
  }
  if (request.exec.dop < 1) {
    metrics_.OnRejected();
    return Status::InvalidArgument("query dop must be >= 1, got " +
                                   std::to_string(request.exec.dop));
  }
  // Run with the effective (possibly estimate-shrunk) budget the carve was
  // sized for — carve and ledger enforcement must describe the same bytes.
  request.exec.mem_budget_bytes = EffectiveBudgetBytes(request, options_);
  double carve = CarveBytes(request, options_);
  if (carve > budget_.capacity_bytes()) {
    // Could never be admitted — waiting would deadlock the queue slot.
    metrics_.OnRejected();
    return Status::OutOfRange(
        "query needs a " + std::to_string(carve) +
        "-byte carve but the server's global budget is only " +
        std::to_string(budget_.capacity_bytes()) + " bytes");
  }
  metrics_.OnPlanCache(request.program->from_plan_cache());

  auto state = std::make_shared<QueryState>();
  state->request = std::move(request);
  state->handle = std::make_shared<QueryHandle>();
  state->cancel = std::make_shared<CancelToken>();
  if (state->request.deadline) {
    state->cancel->SetDeadline(*state->request.deadline);
  }
  state->carve_bytes = carve;
  state->submit_time = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_id_++;
    // Arm the handle before the queue can see the query: once Enqueue
    // succeeds, a concurrent Cancel() must find a fully-routed handle.
    state->handle->token_ = state->cancel;
    state->handle->hub_ = hub_;
    state->handle->id_ = state->id;
    Status queued = queue_.Enqueue(state->request.tenant, state->id);
    if (!queued.ok()) {
      metrics_.OnRejected();
      return queued;
    }
    waiting_[state->id] = state;
    metrics_.OnQueueDepth(queue_.size());
    AdmitLocked();
  }
  // Reap outside mu_: drivers finished since the last Submit/Drain are
  // joined here, so the live-thread count stays bounded by max_inflight
  // plus the sweep lag instead of growing for the server's whole life.
  ReapFinishedDrivers();
  return state->handle;
}

void QueryServer::AdmitLocked() {
  while (inflight_ < options_.max_inflight) {
    std::optional<AdmissionCandidate> candidate = queue_.Peek();
    if (!candidate) break;
    auto it = waiting_.find(candidate->query_id);
    std::shared_ptr<QueryState> query = it->second;
    // Cull a candidate whose token already fired (cancelled while queued,
    // or its deadline lapsed in the queue): it leaves its lane without
    // carving budget or consuming the slot, and the loop moves on to the
    // next candidate.
    Status alive = query->cancel->Check();
    if (!alive.ok()) {
      queue_.Remove(candidate->tenant, candidate->query_id);
      waiting_.erase(it);
      metrics_.OnCancelledBeforeAdmission(alive.code());
      QueryResult result;
      result.query_id = query->id;
      result.status = alive;
      result.total_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        query->submit_time)
              .count();
      query->handle->Fulfill(std::move(result));
      idle_cv_.notify_all();
      continue;
    }
    // Carve before committing the admission: on a full pool the candidate
    // stays queued (at its lane's head) until a completion reclaims bytes
    // and re-runs this loop.
    if (!budget_.Carve(query->carve_bytes).ok()) break;
    queue_.PopAdmitted(candidate->tenant);
    waiting_.erase(it);
    ++inflight_;
    metrics_.OnAdmitted();
    uint64_t id = query->id;
    drivers_.emplace(
        id, std::thread(&QueryServer::RunQuery, this, std::move(query)));
  }
}

void QueryServer::RunQuery(std::shared_ptr<QueryState> query) {
  auto exec_start = std::chrono::steady_clock::now();

  engine::ExecOptions exec = query->request.exec;
  exec.worker_pool = &workers_;
  exec.ledger_parent = &budget_;
  exec.spill_dir = options_.spill_root;
  exec.spill_tag =
      "q" + std::to_string(query->id) + "-" + query->request.tenant;
  exec.task_priority = query->request.priority;
  exec.cancel = query->cancel.get();

  QueryResult result;
  result.query_id = query->id;
  StatusOr<DataSet> out = query->request.program->RunWith(
      query->request.plan_index, exec, &result.stats);
  auto exec_end = std::chrono::steady_clock::now();
  if (out.ok()) {
    result.output = std::move(out).value();
  } else {
    result.status = out.status();
  }
  result.queue_seconds =
      std::chrono::duration<double>(exec_start - query->submit_time).count();
  result.exec_seconds =
      std::chrono::duration<double>(exec_end - exec_start).count();
  result.total_seconds =
      std::chrono::duration<double>(exec_end - query->submit_time).count();

  metrics_.OnFinished(query->request.workload_class, result.status.code(),
                      result.exec_seconds, result.total_seconds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    budget_.Reclaim(query->carve_bytes);
    queue_.OnComplete(query->request.tenant);
    --inflight_;
    // Retire this driver's own thread handle into the reap list — the last
    // mu_-protected act, so once inflight_ reads 0 under mu_ every finished
    // driver is already reapable. The handle is just moved, never joined
    // here (a thread cannot join itself).
    auto self = drivers_.find(query->id);
    if (self != drivers_.end()) {
      reap_.push_back(std::move(self->second));
      drivers_.erase(self);
    }
    AdmitLocked();
  }
  idle_cv_.notify_all();
  query->handle->Fulfill(std::move(result));
}

void QueryServer::OnCancel(uint64_t id) {
  std::shared_ptr<QueryState> query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waiting_.find(id);
    // Not waiting: already admitted (its driver sees the fired token and
    // finishes through the normal completion path) or already finished.
    if (it == waiting_.end()) return;
    query = it->second;
    queue_.Remove(query->request.tenant, id);
    waiting_.erase(it);
  }
  metrics_.OnCancelledBeforeAdmission(Status::Code::kCancelled);
  // A Drain() blocked on this queued query must re-check its predicate.
  idle_cv_.notify_all();
  QueryResult result;
  result.query_id = id;
  result.status = Status::Cancelled("query cancelled before admission");
  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    query->submit_time)
          .count();
  query->handle->Fulfill(std::move(result));
}

void QueryServer::ReapFinishedDrivers() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(reap_);
  }
  // Join outside the lock: a reaped driver may still be on its way out
  // (notifying idle_cv_, fulfilling its handle), and joining under mu_
  // could deadlock against a straggler still waiting to take it.
  for (std::thread& t : finished) t.join();
}

size_t QueryServer::live_drivers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drivers_.size() + reap_.size();
}

void QueryServer::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return queue_.size() == 0 && inflight_ == 0; });
  }
  ReapFinishedDrivers();
}

}  // namespace serve
}  // namespace blackbox
