#include "serve/query_server.h"

#include <algorithm>
#include <utility>

namespace blackbox {
namespace serve {

// --- QueryHandle ------------------------------------------------------------

const QueryResult& QueryHandle::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return result_;
}

bool QueryHandle::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryHandle::Fulfill(QueryResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

// --- QueryServer ------------------------------------------------------------

QueryServer::QueryServer(ServeOptions options)
    : options_(std::move(options)),
      budget_(options_.global_budget_bytes),
      workers_(options_.num_threads),
      queue_(options_.max_queued) {}

QueryServer::~QueryServer() { Drain(); }

double QueryServer::EffectiveBudgetBytes(const QueryRequest& request,
                                         const ServeOptions& options) {
  double budget = request.exec.mem_budget_bytes;
  if (options.carve_from_estimate && request.program != nullptr) {
    double est = request.program->EstimatedPeakBytes(request.plan_index,
                                                     request.exec.dop);
    budget = std::min(budget,
                      std::max(est, options.min_estimated_budget_bytes));
  }
  return budget;
}

double QueryServer::CarveBytes(const QueryRequest& request,
                               const ServeOptions& options) {
  // Worst case the query's ledgers can reach: dop instances, each within
  // its (effective) budget plus the bounded overshoot slack (DESIGN.md
  // §2.3). Shrinking the budget to the optimizer's estimate keeps the
  // invariant: the ledgers enforce whatever budget the query runs with.
  return static_cast<double>(request.exec.dop) *
         (EffectiveBudgetBytes(request, options) +
          options.per_instance_slack_bytes);
}

StatusOr<std::shared_ptr<QueryHandle>> QueryServer::Submit(
    QueryRequest request) {
  metrics_.OnSubmitted();
  if (request.program == nullptr) {
    metrics_.OnRejected();
    return Status::InvalidArgument("query request has no program");
  }
  if (request.plan_index >= request.program->ranked().size()) {
    metrics_.OnRejected();
    return Status::InvalidArgument(
        "plan index " + std::to_string(request.plan_index) +
        " out of range (" + std::to_string(request.program->ranked().size()) +
        " ranked alternatives)");
  }
  if (!(request.exec.mem_budget_bytes > 0)) {
    metrics_.OnRejected();
    return Status::InvalidArgument(
        "query mem_budget_bytes must be positive, got " +
        std::to_string(request.exec.mem_budget_bytes));
  }
  if (request.exec.dop < 1) {
    metrics_.OnRejected();
    return Status::InvalidArgument("query dop must be >= 1, got " +
                                   std::to_string(request.exec.dop));
  }
  // Run with the effective (possibly estimate-shrunk) budget the carve was
  // sized for — carve and ledger enforcement must describe the same bytes.
  request.exec.mem_budget_bytes = EffectiveBudgetBytes(request, options_);
  double carve = CarveBytes(request, options_);
  if (carve > budget_.capacity_bytes()) {
    // Could never be admitted — waiting would deadlock the queue slot.
    metrics_.OnRejected();
    return Status::OutOfRange(
        "query needs a " + std::to_string(carve) +
        "-byte carve but the server's global budget is only " +
        std::to_string(budget_.capacity_bytes()) + " bytes");
  }
  metrics_.OnPlanCache(request.program->from_plan_cache());

  auto state = std::make_shared<QueryState>();
  state->request = std::move(request);
  state->handle = std::make_shared<QueryHandle>();
  state->carve_bytes = carve;
  state->submit_time = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mu_);
  state->id = next_id_++;
  Status queued = queue_.Enqueue(state->request.tenant, state->id);
  if (!queued.ok()) {
    metrics_.OnRejected();
    return queued;
  }
  waiting_[state->id] = state;
  metrics_.OnQueueDepth(queue_.size());
  AdmitLocked();
  return state->handle;
}

void QueryServer::AdmitLocked() {
  while (inflight_ < options_.max_inflight) {
    std::optional<AdmissionCandidate> candidate = queue_.Peek();
    if (!candidate) break;
    auto it = waiting_.find(candidate->query_id);
    std::shared_ptr<QueryState> query = it->second;
    // Carve before committing the admission: on a full pool the candidate
    // stays queued (at its lane's head) until a completion reclaims bytes
    // and re-runs this loop.
    if (!budget_.Carve(query->carve_bytes).ok()) break;
    queue_.PopAdmitted(candidate->tenant);
    waiting_.erase(it);
    ++inflight_;
    metrics_.OnAdmitted();
    drivers_.emplace_back(&QueryServer::RunQuery, this, std::move(query));
  }
}

void QueryServer::RunQuery(std::shared_ptr<QueryState> query) {
  auto exec_start = std::chrono::steady_clock::now();

  engine::ExecOptions exec = query->request.exec;
  exec.worker_pool = &workers_;
  exec.ledger_parent = &budget_;
  exec.spill_dir = options_.spill_root;
  exec.spill_tag =
      "q" + std::to_string(query->id) + "-" + query->request.tenant;
  exec.task_priority = query->request.priority;

  QueryResult result;
  result.query_id = query->id;
  StatusOr<DataSet> out = query->request.program->RunWith(
      query->request.plan_index, exec, &result.stats);
  auto exec_end = std::chrono::steady_clock::now();
  if (out.ok()) {
    result.output = std::move(out).value();
  } else {
    result.status = out.status();
  }
  result.queue_seconds =
      std::chrono::duration<double>(exec_start - query->submit_time).count();
  result.exec_seconds =
      std::chrono::duration<double>(exec_end - exec_start).count();
  result.total_seconds =
      std::chrono::duration<double>(exec_end - query->submit_time).count();

  metrics_.OnFinished(query->request.workload_class, result.status.ok(),
                      result.exec_seconds, result.total_seconds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    budget_.Reclaim(query->carve_bytes);
    queue_.OnComplete(query->request.tenant);
    --inflight_;
    AdmitLocked();
  }
  idle_cv_.notify_all();
  query->handle->Fulfill(std::move(result));
}

void QueryServer::Drain() {
  std::vector<std::thread> finished;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return queue_.size() == 0 && inflight_ == 0; });
    finished.swap(drivers_);
  }
  // Join outside the lock: a driver's last steps (fulfilling its handle)
  // happen after it released mu_, and joining under the lock could
  // deadlock against a straggler still waiting to take it.
  for (std::thread& t : finished) t.join();
}

}  // namespace serve
}  // namespace blackbox
