// BlackBoxOptimizer — the public entry point tying the pipeline together
// (paper Section 3): annotate the flow's UDFs (static code analysis or manual
// annotations), enumerate every valid reordered alternative (Section 6),
// cost each alternative with the physical optimizer (Section 7.1), and return
// the ranked plan list.
//
// Typical use:
//
//   dataflow::DataFlow flow = BuildMyFlow();
//   core::BlackBoxOptimizer opt({.mode = dataflow::AnnotationMode::kSca});
//   auto result = opt.Optimize(flow);
//   // result->ranked[0] is the cheapest plan; execute it:
//   engine::Executor exec(&result->annotated);
//   exec.BindSource(src_id, &data);
//   auto out = exec.Execute(result->ranked[0].physical);

#ifndef BLACKBOX_CORE_OPTIMIZER_API_H_
#define BLACKBOX_CORE_OPTIMIZER_API_H_

#include <vector>

#include "common/status.h"
#include "dataflow/annotate.h"
#include "dataflow/flow.h"
#include "enumerate/enumerate.h"
#include "enumerate/ranked.h"
#include "optimizer/physical.h"
#include "reorder/plan.h"

namespace blackbox {
namespace core {

/// How the plan space is explored (DESIGN.md §3.4).
enum class SearchMode {
  /// Best-first anytime search: cost plans in lower-bound order, stop once
  /// the top-k can no longer change (within cost_epsilon). The default —
  /// optimize latency scales with the answer, not the closure.
  kRanked,
  /// Materialize the full reorder closure and cost every member (the
  /// pre-PR 7 behavior). The oracle mode: differential tests iterate it to
  /// validate the ranked search, and the bench figures keep using it so
  /// "ranked list" retains its full-closure meaning there.
  kClosure,
};

/// One costed alternative.
struct PlannedAlternative {
  reorder::PlanPtr logical;
  optimizer::PhysicalPlan physical;
  double cost = 0;
  int rank = 0;  // 1-based rank by ascending estimated cost
};

struct OptimizationResult {
  dataflow::AnnotatedFlow annotated;
  std::vector<PlannedAlternative> ranked;  // ascending (cost, chains, form)
  /// Plans DISCOVERED by the search (kClosure: the closure size; kRanked:
  /// plans_enumerated + plans_pruned).
  size_t num_alternatives = 0;
  /// Plans fully costed. kClosure: equals num_alternatives.
  size_t plans_enumerated = 0;
  /// kRanked only: plans discovered but never costed — their lower bound
  /// could not displace the top-k.
  size_t plans_pruned = 0;
  /// kRanked only: the anytime stop rule fired before the frontier drained.
  /// This is the expected fast path, NOT truncation: the top-k is exact over
  /// the discovered space.
  bool stopped_early = false;
  /// EnumOptions::max_plans was hit: `ranked` covers a partial closure only
  /// (the true optimum may be missing). Never silently dropped — the api
  /// layer warns when this is set.
  bool truncated = false;
  /// Wall time of the enumerator itself (the streaming enumerate+cost stage
  /// minus time spent inside physical costing on this thread).
  double enumeration_seconds = 0;
  /// Aggregate time spent inside physical costing, summed across costing
  /// workers — with N threads this can exceed the stage's wall time.
  double costing_seconds = 0;

  /// The cheapest alternative. Optimize() guarantees at least one entry, so
  /// this can only fail on a default-constructed or hand-assembled result;
  /// aborts with a clear message instead of dereferencing an empty vector.
  const PlannedAlternative& best() const;
};

class BlackBoxOptimizer {
 public:
  struct Options {
    dataflow::AnnotationMode mode = dataflow::AnnotationMode::kSca;
    optimizer::CostWeights weights;
    enumerate::EnumOptions enum_options;

    /// Plan-space exploration strategy; see SearchMode.
    SearchMode search = SearchMode::kRanked;
    /// kRanked: ranked alternatives to return (rejected if <= 0).
    int top_k = 8;
    /// kRanked: anytime slack in absolute cost units (rejected if negative).
    /// 0 keeps the top-k exact over the discovered space, cost ties included.
    double cost_epsilon = 0;

    /// Worker threads for costing enumerated alternatives in kClosure mode
    /// (streamed through a bounded queue; no enumerate-then-cost barrier).
    /// The ranked search is serial by construction — its pop order IS the
    /// algorithm — so kRanked ignores this. Either way the final ranking is
    /// deterministic for every thread count.
    int num_threads = 1;
  };

  BlackBoxOptimizer() : options_(Options()) {}
  explicit BlackBoxOptimizer(Options options) : options_(options) {}

  /// Full pipeline: annotate -> enumerate -> cost -> rank. Returns an error
  /// if zero alternatives survive enumeration (e.g. EnumOptions prunes
  /// everything), so a returned result always has a best() plan.
  StatusOr<OptimizationResult> Optimize(const dataflow::DataFlow& flow) const;

  /// Enumerate -> cost -> rank on an already-annotated flow. This is the
  /// lowering entry point the api layer uses after an AnnotationProvider has
  /// produced the annotation; the result takes ownership of `annotated`.
  StatusOr<OptimizationResult> OptimizeAnnotated(
      dataflow::AnnotatedFlow annotated) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace core
}  // namespace blackbox

#endif  // BLACKBOX_CORE_OPTIMIZER_API_H_
