#include "core/optimizer_api.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "common/task_pool.h"

namespace blackbox {
namespace core {

const PlannedAlternative& OptimizationResult::best() const {
  if (ranked.empty()) {
    std::fprintf(stderr,
                 "OptimizationResult::best(): no ranked alternatives (was "
                 "this result produced by Optimize()?)\n");
    std::abort();
  }
  return ranked.front();
}

StatusOr<OptimizationResult> BlackBoxOptimizer::Optimize(
    const dataflow::DataFlow& flow) const {
  StatusOr<dataflow::AnnotatedFlow> af = dataflow::Annotate(flow, options_.mode);
  if (!af.ok()) return af.status();
  return OptimizeAnnotated(std::move(af).value());
}

namespace {

/// One costed alternative before ranking: its discovery index, the costed
/// plan, and its canonical form (the deterministic tie-break key).
struct CostedSlot {
  PlannedAlternative alt;
  std::string canonical;
  Status status = Status::OK();
  bool filled = false;
};

/// kRanked: delegate to the best-first search and adapt its result. Serial
/// and deterministic; num_threads is irrelevant here.
StatusOr<OptimizationResult> OptimizeRankedImpl(
    const BlackBoxOptimizer::Options& options,
    dataflow::AnnotatedFlow annotated) {
  OptimizationResult result;
  result.annotated = std::move(annotated);

  enumerate::RankedOptions ropts;
  ropts.top_k = static_cast<size_t>(options.top_k);
  ropts.cost_epsilon = options.cost_epsilon;
  ropts.max_plans = options.enum_options.max_plans;
  StatusOr<enumerate::RankedResult> ranked =
      enumerate::RankedEnumerate(result.annotated, options.weights, ropts);
  if (!ranked.ok()) return ranked.status();

  result.plans_enumerated = ranked->plans_enumerated;
  result.plans_pruned = ranked->plans_pruned;
  result.num_alternatives = ranked->plans_enumerated + ranked->plans_pruned;
  result.stopped_early = ranked->stopped_early;
  result.truncated = ranked->truncated;
  result.enumeration_seconds = ranked->search_seconds;
  result.costing_seconds = ranked->costing_seconds;
  result.ranked.reserve(ranked->ranked.size());
  for (enumerate::RankedAlternative& alt : ranked->ranked) {
    PlannedAlternative out;
    out.logical = std::move(alt.logical);
    out.cost = alt.physical.total_cost;
    out.physical = std::move(alt.physical);
    out.rank = static_cast<int>(result.ranked.size()) + 1;
    result.ranked.push_back(std::move(out));
  }
  if (result.ranked.empty()) {
    if (result.truncated) {
      return Status::OutOfRange(
          "optimization produced zero alternatives: EnumOptions::max_plans "
          "pruned everything");
    }
    return Status::InvalidArgument("optimization produced zero alternatives");
  }
  return result;
}

}  // namespace

StatusOr<OptimizationResult> BlackBoxOptimizer::OptimizeAnnotated(
    dataflow::AnnotatedFlow annotated) const {
  if (options_.top_k <= 0) {
    return Status::InvalidArgument(
        "Options::top_k must be positive (got " +
        std::to_string(options_.top_k) + ")");
  }
  if (options_.cost_epsilon < 0) {
    return Status::InvalidArgument(
        "Options::cost_epsilon must be non-negative (got " +
        std::to_string(options_.cost_epsilon) + ")");
  }
  if (options_.search == SearchMode::kRanked) {
    return OptimizeRankedImpl(options_, std::move(annotated));
  }

  OptimizationResult result;
  result.annotated = std::move(annotated);

  // Streaming enumerate+cost: the enumerator (this thread) pushes each
  // discovered alternative through a bounded queue into a pool of costing
  // workers, so costing overlaps enumeration instead of waiting behind a
  // materialize-then-cost barrier. Each alternative's result lands in its
  // discovery-index slot; ranking afterwards is a deterministic sort, so the
  // outcome is identical for every num_threads.
  struct CostJob {
    size_t index;
    reorder::PlanPtr plan;
  };

  TaskPool pool(options_.num_threads);
  std::vector<CostedSlot> slots;
  std::mutex slots_mu;  // guards the slots vector's size; each slot has one writer
  std::atomic<int64_t> costing_nanos{0};  // aggregate across costing workers

  auto cost_into_slot = [&](const CostJob& job) {
    auto c0 = std::chrono::steady_clock::now();
    StatusOr<optimizer::PhysicalPlan> phys = optimizer::OptimizePhysical(
        result.annotated, job.plan, options_.weights);
    costing_nanos.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - c0)
                                .count(),
                            std::memory_order_relaxed);
    CostedSlot slot;
    if (phys.ok()) {
      slot.alt.logical = job.plan;
      slot.alt.cost = phys->total_cost;
      slot.alt.physical = std::move(phys).value();
      slot.canonical = reorder::CanonicalString(job.plan);
    } else {
      slot.status = phys.status();
    }
    slot.filled = true;
    std::lock_guard<std::mutex> lock(slots_mu);
    if (slots.size() <= job.index) slots.resize(job.index + 1);
    slots[job.index] = std::move(slot);
  };

  auto t0 = std::chrono::steady_clock::now();
  StatusOr<enumerate::EnumResult> enum_result =
      Status::Internal("enumeration did not run");
  double enum_wall_seconds = 0;  // parallel path: span of the enumerator only
  if (pool.num_threads() == 1) {
    // Serial path: cost inline as plans stream out of the enumerator.
    enum_result = enumerate::EnumerateAlternatives(
        result.annotated, options_.enum_options,
        [&](const reorder::PlanPtr& plan, size_t index) {
          cost_into_slot(CostJob{index, plan});
        });
  } else {
    BoundedQueue<CostJob> queue(4 * static_cast<size_t>(pool.num_threads()));
    auto consume = [&] {
      while (std::optional<CostJob> job = queue.Pop()) {
        cost_into_slot(*job);
      }
    };
    // The calling thread enumerates (and produces); the pool's worker
    // threads consume concurrently.
    std::vector<std::future<void>> workers;
    workers.reserve(pool.num_threads() - 1);
    for (int i = 0; i < pool.num_threads() - 1; ++i) {
      workers.push_back(pool.Submit(consume));
    }
    enum_result = enumerate::EnumerateAlternatives(
        result.annotated, options_.enum_options,
        [&](const reorder::PlanPtr& plan, size_t index) {
          queue.Push(CostJob{index, plan});
        });
    // The enumerator is done here; everything after is costing tail-drain.
    enum_wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    queue.Close();
    consume();  // help drain the tail once enumeration is done
    for (std::future<void>& w : workers) w.wait();
  }
  if (!enum_result.ok()) return enum_result.status();
  auto t1 = std::chrono::steady_clock::now();
  // Enumeration and costing overlap in the streaming stage. costing_seconds
  // is the aggregate time inside OptimizePhysical across workers;
  // enumeration_seconds is the enumerator's own wall time — serial: stage
  // span minus the inline costing; parallel: the span up to the point the
  // enumerator finished (excluding this thread's tail-drain costing).
  double stage_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.costing_seconds = static_cast<double>(costing_nanos.load()) * 1e-9;
  result.enumeration_seconds =
      pool.num_threads() == 1
          ? std::max(0.0, stage_seconds - result.costing_seconds)
          : enum_wall_seconds;
  result.num_alternatives = enum_result->plans.size();
  result.plans_enumerated = enum_result->plans.size();
  result.truncated = enum_result->truncated;

  // Deterministic error reporting: the lowest-index failure wins, regardless
  // of completion order.
  for (const CostedSlot& slot : slots) {
    if (slot.filled && !slot.status.ok()) return slot.status;
  }

  std::vector<CostedSlot> costed;
  costed.reserve(slots.size());
  for (CostedSlot& slot : slots) {
    if (slot.filled) costed.push_back(std::move(slot));
  }

  // Rank by cost, then by chain count (fewer pipeline breakers win cost
  // ties — the chain-aware tie-break shared with the ranked search), then by
  // canonical plan form, so equal-cost alternatives order identically for
  // every thread count AND for both search modes.
  std::sort(costed.begin(), costed.end(),
            [](const CostedSlot& a, const CostedSlot& b) {
              if (a.alt.cost != b.alt.cost) return a.alt.cost < b.alt.cost;
              if (a.alt.physical.num_chains != b.alt.physical.num_chains) {
                return a.alt.physical.num_chains < b.alt.physical.num_chains;
              }
              return a.canonical < b.canonical;
            });
  result.ranked.reserve(costed.size());
  for (CostedSlot& slot : costed) result.ranked.push_back(std::move(slot.alt));
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    result.ranked[i].rank = static_cast<int>(i) + 1;
  }
  if (result.ranked.empty()) {
    if (result.truncated) {
      return Status::OutOfRange(
          "optimization produced zero alternatives: EnumOptions::max_plans "
          "pruned everything");
    }
    return Status::InvalidArgument("optimization produced zero alternatives");
  }
  return result;
}

}  // namespace core
}  // namespace blackbox
