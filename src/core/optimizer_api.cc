#include "core/optimizer_api.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace blackbox {
namespace core {

const PlannedAlternative& OptimizationResult::best() const {
  if (ranked.empty()) {
    std::fprintf(stderr,
                 "OptimizationResult::best(): no ranked alternatives (was "
                 "this result produced by Optimize()?)\n");
    std::abort();
  }
  return ranked.front();
}

StatusOr<OptimizationResult> BlackBoxOptimizer::Optimize(
    const dataflow::DataFlow& flow) const {
  StatusOr<dataflow::AnnotatedFlow> af = dataflow::Annotate(flow, options_.mode);
  if (!af.ok()) return af.status();
  return OptimizeAnnotated(std::move(af).value());
}

StatusOr<OptimizationResult> BlackBoxOptimizer::OptimizeAnnotated(
    dataflow::AnnotatedFlow annotated) const {
  OptimizationResult result;
  result.annotated = std::move(annotated);

  auto t0 = std::chrono::steady_clock::now();
  StatusOr<enumerate::EnumResult> enum_result =
      enumerate::EnumerateAlternatives(result.annotated,
                                       options_.enum_options);
  if (!enum_result.ok()) return enum_result.status();
  auto t1 = std::chrono::steady_clock::now();
  result.enumeration_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.num_alternatives = enum_result->plans.size();

  result.ranked.reserve(enum_result->plans.size());
  for (const reorder::PlanPtr& plan : enum_result->plans) {
    StatusOr<optimizer::PhysicalPlan> phys =
        optimizer::OptimizePhysical(result.annotated, plan, options_.weights);
    if (!phys.ok()) return phys.status();
    PlannedAlternative alt;
    alt.logical = plan;
    alt.cost = phys->total_cost;
    alt.physical = std::move(phys).value();
    result.ranked.push_back(std::move(alt));
  }
  auto t2 = std::chrono::steady_clock::now();
  result.costing_seconds = std::chrono::duration<double>(t2 - t1).count();

  std::sort(result.ranked.begin(), result.ranked.end(),
            [](const PlannedAlternative& a, const PlannedAlternative& b) {
              return a.cost < b.cost;
            });
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    result.ranked[i].rank = static_cast<int>(i) + 1;
  }
  if (result.ranked.empty()) {
    return Status::InvalidArgument(
        "optimization produced zero alternatives (EnumOptions::max_plans "
        "pruned everything?)");
  }
  return result;
}

}  // namespace core
}  // namespace blackbox
